package comm

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/tslu"
)

func TestPanelSyncsFormulas(t *testing.T) {
	// The headline claim: O(log Tr) vs b synchronizations per panel.
	cases := []struct {
		b, tr   int
		tree    tslu.Tree
		classic bool
		want    int
	}{
		{100, 8, tslu.Binary, true, 100}, // classic GEPP: one per column
		{100, 8, tslu.Binary, false, 3},  // log2(8)
		{100, 16, tslu.Binary, false, 4},
		{100, 8, tslu.Flat, false, 1},    // single merge round
		{100, 16, tslu.Hybrid, false, 3}, // 1 flat + log2(4)
		{100, 1, tslu.Binary, false, 0},  // single thread: no syncs
		{100, 1, tslu.Binary, true, 0},
	}
	for _, c := range cases {
		if got := PanelSyncs(c.b, c.tr, c.tree, c.classic); got != c.want {
			t.Errorf("PanelSyncs(b=%d, tr=%d, %v, classic=%v) = %d want %d",
				c.b, c.tr, c.tree, c.classic, got, c.want)
		}
	}
}

func TestFactorSyncsScalesWithPanels(t *testing.T) {
	// 10 panels of width 100: CALU needs 30 syncs, classic needs 1000.
	ca := FactorSyncs(100000, 1000, 100, 8, tslu.Binary, false)
	classic := FactorSyncs(100000, 1000, 100, 8, tslu.Binary, true)
	if ca != 30 {
		t.Errorf("CALU syncs = %d want 30", ca)
	}
	if classic != 1000 {
		t.Errorf("classic syncs = %d want 1000", classic)
	}
	if classic/ca < 30 {
		t.Errorf("sync reduction factor only %d", classic/ca)
	}
}

func TestAnalyzeCALUVsVendor(t *testing.T) {
	// On a tall-skinny matrix, CALU's critical path (in flops) must be far
	// shorter than the fork-join vendor model's, because the panel is
	// parallelized.
	m, n := 100000, 200
	calu := Analyze(core.BuildCALUGraph(m, n, core.Options{
		BlockSize: 100, PanelThreads: 8, Lookahead: true,
	}))
	vendor := Analyze(baseline.BuildGETRFGraph(m, n, 64, 8))
	if calu.SpanFlops >= vendor.SpanFlops {
		t.Errorf("CALU span %g not below vendor span %g", calu.SpanFlops, vendor.SpanFlops)
	}
	if calu.MaxParallelism <= vendor.MaxParallelism {
		t.Errorf("CALU parallelism %g not above vendor %g", calu.MaxParallelism, vendor.MaxParallelism)
	}
	if calu.Tasks <= vendor.Tasks {
		t.Errorf("CALU should have more (finer) tasks: %d vs %d", calu.Tasks, vendor.Tasks)
	}
}

func TestAnalyzeTrImprovesSpan(t *testing.T) {
	// Increasing Tr shortens the panel critical path on tall-skinny shapes.
	span := func(tr int) float64 {
		g := core.BuildCALUGraph(1000000, 100, core.Options{
			BlockSize: 100, PanelThreads: tr, Lookahead: true,
		})
		return Analyze(g).SpanFlops
	}
	s1, s4, s8 := span(1), span(4), span(8)
	if !(s8 < s4 && s4 < s1) {
		t.Errorf("span not decreasing with Tr: %g %g %g", s1, s4, s8)
	}
	// With a binary tree the span shrinks roughly like 1/Tr plus the
	// logarithmic merge chain; demand at least 3x from Tr=1 to Tr=8.
	if s1/s8 < 3 {
		t.Errorf("Tr=8 span reduction only %.2fx", s1/s8)
	}
}

func TestVolumes(t *testing.T) {
	// Tournament volume: binary over 8 leaves moves 7 candidate blocks.
	v := TSLUVolume(100000, 100, 8, tslu.Binary)
	if v != 7*100*100 {
		t.Errorf("binary volume = %g", v)
	}
	// Flat: same count of moved blocks (7 of 8 move to one place).
	if f := TSLUVolume(100000, 100, 8, tslu.Flat); f != v {
		t.Errorf("flat volume = %g want %g", f, v)
	}
	// Classic panel: b columns x (tr + tr*b) words; for b=100, tr=8 that
	// is 80800 words vs the tournament's 70000 — same order, but paid in
	// b synchronized rounds instead of log2(tr).
	c := ClassicPanelVolume(100000, 100, 8)
	if c != 100*(8+800) {
		t.Errorf("classic volume = %g", c)
	}
	if TSLUVolume(100000, 100, 1, tslu.Binary) != 0 || ClassicPanelVolume(1, 1, 1) != 0 {
		t.Error("single-thread volumes must be zero")
	}
}

func TestSpeedupBound(t *testing.T) {
	m := Metrics{WorkFlops: 100, SpanFlops: 10, MaxParallelism: 10}
	if s := SpeedupBound(m, 4); s != 4 {
		t.Errorf("bound %g want 4 (core limited)", s)
	}
	if s := SpeedupBound(m, 64); s != 10 {
		t.Errorf("bound %g want 10 (span limited)", s)
	}
}
