// Package comm quantifies the communication and synchronization behavior
// that gives communication-avoiding algorithms their name — the paper's
// Sections I-II claims, made measurable:
//
//   - A classic partial-pivoting panel factorization synchronizes once per
//     column (each pivot search is a reduction across the threads sharing
//     the panel): b synchronization points per panel.
//   - TSLU/TSQR synchronize once per reduction-tree level: log2(Tr) points
//     for a binary tree, 1 for a flat tree, 1 + log2(Tr/4) for the hybrid.
//
// The package provides both closed-form counts (PanelSyncs, FactorSyncs)
// and graph-derived metrics (Analyze) computed from the actual task DAGs,
// so the theory can be checked against the implementation.
package comm

import (
	"math"

	"repro/internal/sched"
	"repro/internal/tslu"
)

// PanelSyncs returns the number of synchronization points one panel
// factorization needs when its work is shared by tr threads.
//
// For the classic algorithm (tree-less GEPP), each of the b columns needs a
// pivot search across all participating threads: b synchronizations. For
// ca-pivoting, only the reduction-tree levels synchronize.
func PanelSyncs(b, tr int, tree tslu.Tree, classic bool) int {
	if tr <= 1 {
		return 0 // a single thread never waits
	}
	if classic {
		return b
	}
	steps := tslu.PlanReduction(tr, tree)
	return planDepth(tr, steps)
}

// planDepth computes the level count of a reduction plan.
func planDepth(nLeaves int, steps []tslu.MergeStep) int {
	depth := make(map[int]int, nLeaves+len(steps))
	max := 0
	for _, st := range steps {
		lvl := 0
		for _, in := range st.In {
			if depth[in] > lvl {
				lvl = depth[in]
			}
		}
		depth[st.Out] = lvl + 1
		if lvl+1 > max {
			max = lvl + 1
		}
	}
	return max
}

// FactorSyncs returns the total panel-synchronization count of a full m x n
// factorization with panel width b: panels * syncs-per-panel.
func FactorSyncs(m, n, b, tr int, tree tslu.Tree, classic bool) int {
	_ = m
	panels := (n + b - 1) / b
	return panels * PanelSyncs(b, tr, tree, classic)
}

// Metrics summarizes the parallel structure of a task graph.
type Metrics struct {
	// Tasks and Edges are the graph size.
	Tasks, Edges int
	// SpanTasks is the critical-path length in tasks (unit durations): the
	// minimum number of sequential scheduling rounds.
	SpanTasks float64
	// WorkFlops and SpanFlops are the total and critical-path flop counts;
	// WorkFlops/SpanFlops bounds achievable speedup (Brent's theorem).
	WorkFlops, SpanFlops float64
	// MaxParallelism is WorkFlops / SpanFlops.
	MaxParallelism float64
}

// Analyze computes the metrics of a task graph.
func Analyze(g *sched.Graph) Metrics {
	spanT, _ := g.CriticalPath(func(*sched.Task) float64 { return 1 })
	spanF, workF := g.CriticalPath(func(t *sched.Task) float64 { return t.Flops })
	m := Metrics{
		Tasks:     g.Len(),
		Edges:     g.Edges(),
		SpanTasks: spanT,
		WorkFlops: workF,
		SpanFlops: spanF,
	}
	if spanF > 0 {
		m.MaxParallelism = workF / spanF
	}
	return m
}

// TSLUVolume returns the number of matrix words a tr-way tournament over an
// m x b panel communicates between threads: each reduction step moves the
// loser candidates (b x b words per participant beyond the first). The
// classic algorithm instead broadcasts a pivot row per column (b words per
// thread per column), plus the swap traffic.
func TSLUVolume(m, b, tr int, tree tslu.Tree) float64 {
	if tr <= 1 {
		return 0
	}
	words := 0.0
	for _, st := range tslu.PlanReduction(tr, tree) {
		// Every non-leading input's b x b candidate block moves to the
		// thread performing the merge.
		words += float64(len(st.In)-1) * float64(b) * float64(b)
	}
	return words
}

// ClassicPanelVolume returns the words exchanged by a classic parallel
// panel factorization of an m x b panel over tr threads: per column, the
// pivot candidates (one word per thread) plus the pivot row broadcast
// (b words per thread).
func ClassicPanelVolume(m, b, tr int) float64 {
	if tr <= 1 {
		return 0
	}
	_ = m
	perColumn := float64(tr) /* pivot candidates */ + float64(tr)*float64(b) /* row broadcast */
	return float64(b) * perColumn
}

// SpeedupBound returns the maximum speedup on p cores implied by the
// graph's work/span ratio (Brent): min(p, work/span).
func SpeedupBound(m Metrics, p int) float64 {
	return math.Min(float64(p), m.MaxParallelism)
}
