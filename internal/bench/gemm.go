package bench

// GEMM performance trajectory: the packed Goto-style Dgemm (internal/blas)
// against the frozen pre-refactor reference (internal/baseline), plus the
// BenchmarkEngineReuse-shaped end-to-end LU as the workload-level check.
// cmd/cabench serializes the report to BENCH_gemm.json so the perf
// trajectory is checked in alongside the code, and CI gates on the 512
// square speedup staying above a floor.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/factor"
	"repro/internal/baseline"
	"repro/internal/blas"
)

// GemmCase is one measured GEMM shape.
type GemmCase struct {
	// Name labels the shape (square-512, panel-tall-update, ...).
	Name string `json:"name"`
	M    int    `json:"m"`
	N    int    `json:"n"`
	K    int    `json:"k"`
	// TransA marks cases run as Aᵀ·B ("T"); empty means no transpose. The
	// Larfb-shaped cases exercise the transposed pack path the QR
	// block-reflector applications hit.
	TransA string `json:"trans_a,omitempty"`
	// PackedGFlops is the packed-kernel rate, BaselineGFlops the frozen
	// reference kernel's rate, both measured in this run.
	PackedGFlops   float64 `json:"packed_gflops"`
	BaselineGFlops float64 `json:"baseline_gflops"`
	// Speedup is PackedGFlops / BaselineGFlops.
	Speedup float64 `json:"speedup"`
}

// EngineReuseResult is the end-to-end workload check: the
// BenchmarkEngineReuse shape (repeated 1000x200 CALU through a persistent
// engine) timed against the current BLAS. The "before" side of the
// trajectory lives in EXPERIMENTS.md, measured at the pre-refactor commit.
type EngineReuseResult struct {
	M          int     `json:"m"`
	N          int     `json:"n"`
	BlockSize  int     `json:"block_size"`
	Iterations int     `json:"iterations"`
	MsPerOp    float64 `json:"ms_per_op"`
}

// GemmReport is the serialized BENCH_gemm.json payload.
type GemmReport struct {
	// Kernel identifies the active microkernel (see blas.KernelName).
	Kernel string `json:"kernel"`
	GOARCH string `json:"goarch"`
	GOOS   string `json:"goos"`
	NumCPU int    `json:"num_cpu"`
	// MC, KC, NC are the cache block sizes the packed driver ran with.
	MC int `json:"mc"`
	KC int `json:"kc"`
	NC int `json:"nc"`
	// Cases covers 128-1024 square plus the panel shapes the factorizations
	// actually issue.
	Cases []GemmCase `json:"cases"`
	// EngineReuse is the end-to-end LU workload measurement.
	EngineReuse EngineReuseResult `json:"engine_reuse"`
}

// gemmShapes are the trajectory points: the square sweep the issue names,
// the panel shapes CALU/CAQR trailing updates issue (tall A against a
// narrow panel, and a rank-b trailing update), and the Larfb block-reflector
// shapes (W = Vᵀ·C against a tall-skinny V, the C -= V·W rank-b apply, and
// the small T-sized triangle product) the QR update path spends its time in.
var gemmShapes = []struct {
	name    string
	ta      blas.Transpose
	m, n, k int
}{
	{"square-128", blas.NoTrans, 128, 128, 128},
	{"square-256", blas.NoTrans, 256, 256, 256},
	{"square-512", blas.NoTrans, 512, 512, 512},
	{"square-1024", blas.NoTrans, 1024, 1024, 1024},
	{"panel-tall-update", blas.NoTrans, 1024, 128, 128},
	{"panel-wide-update", blas.NoTrans, 128, 1024, 128},
	{"trailing-rank100", blas.NoTrans, 900, 900, 100},
	{"larfb-vtc", blas.Trans, 64, 256, 1984},
	{"larfb-cvw", blas.NoTrans, 1984, 256, 64},
	{"larfb-small-t", blas.NoTrans, 64, 256, 64},
}

// timeGemm measures one gemm implementation at m x n x k (with op(A) = Aᵀ
// when ta is Trans, so A is stored k x m), repeating until the sample
// exceeds minSample so short cases aren't timer-noise.
func timeGemm(ta blas.Transpose, m, n, k int, minSample time.Duration,
	run func(ta blas.Transpose, m, n, k, lda int, a, b, c []float64)) float64 {
	lda := m
	if ta == blas.Trans {
		lda = k
	}
	a := fillSeq(m * k)
	b := fillSeq(k * n)
	c := make([]float64, m*n)
	// Warm once (pools, page faults).
	run(ta, m, n, k, lda, a, b, c)
	reps := 0
	start := time.Now()
	for {
		run(ta, m, n, k, lda, a, b, c)
		reps++
		if el := time.Since(start); el >= minSample && reps >= 2 {
			return gflops(2*float64(m)*float64(n)*float64(k)*float64(reps), el.Seconds())
		}
	}
}

// fillSeq produces a deterministic non-constant operand.
func fillSeq(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(i%17) - 8
	}
	return s
}

// RunGemmReport measures the full trajectory. minSample bounds per-case
// noise (CI smoke uses a short sample, the checked-in report a longer one).
func RunGemmReport(cfg Config, minSample time.Duration) *GemmReport {
	mc, kc, nc := blas.BlockSizes()
	rep := &GemmReport{
		Kernel: blas.KernelName(),
		GOARCH: runtime.GOARCH,
		GOOS:   runtime.GOOS,
		NumCPU: runtime.NumCPU(),
		MC:     mc,
		KC:     kc,
		NC:     nc,
	}
	for _, s := range gemmShapes {
		progress(cfg, "gemm %s: packed...", s.name)
		packed := timeGemm(s.ta, s.m, s.n, s.k, minSample, func(ta blas.Transpose, m, n, k, lda int, a, b, c []float64) {
			blas.Dgemm(ta, blas.NoTrans, m, n, k, 1, a, lda, b, k, 0, c, m)
		})
		progress(cfg, "gemm %s: baseline...", s.name)
		base := timeGemm(s.ta, s.m, s.n, s.k, minSample, func(ta blas.Transpose, m, n, k, lda int, a, b, c []float64) {
			baseline.RefGemm(ta, blas.NoTrans, m, n, k, 1, a, lda, b, k, 0, c, m)
		})
		gc := GemmCase{Name: s.name, M: s.m, N: s.n, K: s.k,
			PackedGFlops: packed, BaselineGFlops: base}
		if s.ta == blas.Trans {
			gc.TransA = "T"
		}
		if base > 0 {
			gc.Speedup = packed / base
		}
		rep.Cases = append(rep.Cases, gc)
	}
	rep.EngineReuse = runEngineReuse(cfg)
	return rep
}

// runEngineReuse times the BenchmarkEngineReuse workload: repeated
// 1000 x 200 blocked CALU through a persistent engine, clone excluded.
func runEngineReuse(cfg Config) EngineReuseResult {
	const (
		m, n, nb = 1000, 200, 100
		iters    = 10
	)
	progress(cfg, "engine-reuse: %d iterations of %dx%d LU...", iters, m, n)
	orig := factor.Random(m, n, 3)
	opt := factor.Options{BlockSize: nb, PanelThreads: 4}
	eng := factor.NewEngine(4)
	defer eng.Close()
	// Warm the pools as the benchmark's first iterations would.
	if _, err := eng.LU(orig.Clone(), opt); err != nil {
		panic(fmt.Sprintf("bench: engine warmup LU failed: %v", err))
	}
	var total time.Duration
	for i := 0; i < iters; i++ {
		a := orig.Clone()
		start := time.Now()
		if _, err := eng.LU(a, opt); err != nil {
			panic(fmt.Sprintf("bench: engine LU failed: %v", err))
		}
		total += time.Since(start)
	}
	return EngineReuseResult{
		M: m, N: n, BlockSize: nb, Iterations: iters,
		MsPerOp: total.Seconds() * 1e3 / iters,
	}
}

// SpeedupAt returns the measured speedup for the named case, or 0 if the
// report has no such case.
func (r *GemmReport) SpeedupAt(name string) float64 {
	for _, c := range r.Cases {
		if c.Name == name {
			return c.Speedup
		}
	}
	return 0
}

// WriteJSON serializes the report, indented for stable diffs in-tree.
func (r *GemmReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report in the cabench table format.
func (r *GemmReport) Table() *Table {
	t := &Table{
		ID:       "gemm",
		Title:    "Packed Dgemm vs frozen baseline (GFlop/s)",
		PaperRef: "kernel trajectory (doc/KERNELS.md)",
		Columns:  []string{"packed", "baseline", "speedup"},
		Unit:     "GFlop/s (speedup is a ratio)",
		Notes: fmt.Sprintf("kernel=%s MC=%d KC=%d NC=%d; engine-reuse %dx%d LU: %.2f ms/op",
			r.Kernel, r.MC, r.KC, r.NC, r.EngineReuse.M, r.EngineReuse.N, r.EngineReuse.MsPerOp),
	}
	for _, c := range r.Cases {
		t.Rows = append(t.Rows, RowData{
			Label: fmt.Sprintf("%s (%dx%dx%d)", c.Name, c.M, c.N, c.K),
			Values: map[string]float64{
				"packed": c.PackedGFlops, "baseline": c.BaselineGFlops, "speedup": c.Speedup,
			},
		})
	}
	return t
}
