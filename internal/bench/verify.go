package bench

// ABFT verification overhead gate: checksum-guarded factorization
// (factor.Options.Verify) adds O(mn) column-sum work per panel against the
// O(mn^2) factorization, and must stay cheap enough to arm fleet-wide.
// RunVerifyOverhead times the engine-reuse workload with verification on
// and off in alternating rounds of the same process and compares the best
// round of each side, exactly like the obs-overhead gate. cmd/cabench
// -verify-overhead wires this into CI with a percentage ceiling.

import (
	"fmt"
	"math"
	"time"

	"repro/factor"
)

// VerifyOverheadResult is one paired measurement of the ABFT checksum cost.
type VerifyOverheadResult struct {
	// Rounds is how many on/off pairs ran; the reported times are the
	// minimum over rounds (the least-disturbed run of each side).
	Rounds int `json:"rounds"`
	// VerifiedMsPerOp and UnverifiedMsPerOp are the best engine-reuse times
	// with checksum verification on and off.
	VerifiedMsPerOp   float64 `json:"verified_ms_per_op"`
	UnverifiedMsPerOp float64 `json:"unverified_ms_per_op"`
	// OverheadPct is 100 * (on - off) / off; negative values (noise) mean
	// the verified side happened to run faster.
	OverheadPct float64 `json:"overhead_pct"`
}

// RunVerifyOverhead measures the checksum-verification overhead on the
// engine-reuse workload. rounds <= 0 defaults to 3.
func RunVerifyOverhead(cfg Config, rounds int) *VerifyOverheadResult {
	if rounds <= 0 {
		rounds = 3
	}
	const (
		m, n, nb = 1000, 200, 100
		iters    = 10
	)
	orig := factor.Random(m, n, 3)

	// measure times one engine-reuse pass with verification set per round;
	// the engine itself is identical both ways, so the difference isolates
	// the checksum scan, the L-sum accumulation and the V/fin gates.
	measure := func(on bool) float64 {
		eng := factor.NewEngine(4)
		defer eng.Close()
		opt := factor.Options{BlockSize: nb, PanelThreads: 4, Verify: on}
		if _, err := eng.LU(orig.Clone(), opt); err != nil {
			panic(fmt.Sprintf("bench: verify-overhead warmup LU failed: %v", err))
		}
		var total time.Duration
		for i := 0; i < iters; i++ {
			a := orig.Clone()
			start := time.Now()
			if _, err := eng.LU(a, opt); err != nil {
				panic(fmt.Sprintf("bench: verify-overhead LU failed: %v", err))
			}
			total += time.Since(start)
		}
		return total.Seconds() * 1e3 / iters
	}

	minOn, minOff := math.Inf(1), math.Inf(1)
	for r := 0; r < rounds; r++ {
		progress(cfg, "verify-overhead round %d/%d: verified...", r+1, rounds)
		on := measure(true)
		progress(cfg, "verify-overhead round %d/%d: unverified...", r+1, rounds)
		off := measure(false)
		minOn = math.Min(minOn, on)
		minOff = math.Min(minOff, off)
	}
	res := &VerifyOverheadResult{
		Rounds:            rounds,
		VerifiedMsPerOp:   minOn,
		UnverifiedMsPerOp: minOff,
	}
	if minOff > 0 {
		res.OverheadPct = 100 * (minOn - minOff) / minOff
	}
	return res
}
