package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simsched"
	"repro/internal/trace"
)

// traceExperiment reproduces Figs. 3-4: the execution trace of CALU on a
// tall-skinny matrix with Tr=1 (panel serialized, idle bubbles) vs Tr=8
// (panel parallel, cores busy).
func traceExperiment(cfg Config, id string, tr int) *Table {
	t := &Table{
		ID:       id,
		Title:    fmt.Sprintf("CALU execution trace, 10^5 x 1000, b=100, Tr=%d, 8-core Intel", tr),
		PaperRef: "Figure " + map[string]string{"fig3": "3", "fig4": "4"}[id],
		Unit:     "fraction of core-time",
		Columns:  []string{"P", "L", "U", "S", "idle"},
	}
	var tra *trace.Trace
	if cfg.Mode == Modeled {
		progress(cfg, "%s: simulating CALU trace Tr=%d", id, tr)
		mach := machine.Intel8()
		opt := core.Options{BlockSize: 100, PanelThreads: tr, Lookahead: true}
		g := core.BuildCALUGraph(100000, 1000, opt)
		res := simsched.Run(g, mach)
		tra = trace.FromSim(res.Events, g, mach.Cores)
	} else {
		progress(cfg, "%s: measuring CALU trace Tr=%d", id, tr)
		workers := workersOrCPU(cfg)
		a := matrix.Random(4000, 400, 77)
		opt := core.Options{BlockSize: 100, PanelThreads: tr, Workers: workers, Trace: true, Lookahead: true}
		res, err := core.CALU(a, opt)
		if err != nil {
			panic(err)
		}
		tra = trace.FromSched(res.Events, res.Graph, workers)
	}
	stats := tra.Stats()
	t.Rows = append(t.Rows, RowData{Label: "share", Values: map[string]float64{
		"P":    stats.BusyByKind[sched.KindP],
		"L":    stats.BusyByKind[sched.KindL],
		"U":    stats.BusyByKind[sched.KindU],
		"S":    stats.BusyByKind[sched.KindS],
		"idle": stats.Idle,
	}})
	var gantt strings.Builder
	tra.Gantt(&gantt, 100)
	t.Notes = joinNotes(
		"P = panel/tournament tasks, L = panel L blocks, U = pivoting + U row, S = trailing update, '.' = idle:",
		gantt.String())
	return t
}

func init() {
	register(Experiment{
		ID:       "fig3",
		Title:    "CALU trace with Tr=1: panel-induced idle time",
		PaperRef: "Figure 3",
		Run:      func(cfg Config) *Table { return traceExperiment(cfg, "fig3", 1) },
	})
	register(Experiment{
		ID:       "fig4",
		Title:    "CALU trace with Tr=8: parallel panel removes idle time",
		PaperRef: "Figure 4",
		Run:      func(cfg Config) *Table { return traceExperiment(cfg, "fig4", 8) },
	})
}
