package bench

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/ooc"
	"repro/internal/simsched"
	"repro/internal/tslu"
)

// oocExperiment quantifies the sequential (memory-hierarchy) side of
// Section II: words moved between fast and slow memory for one panel, by
// algorithm, simulated on an LRU cache.
func oocExperiment(cfg Config) *Table {
	t := &Table{
		ID:       "ooc",
		Title:    "Sequential communication: words moved per m x 100 panel (LRU cache = 10% of panel)",
		PaperRef: "Section II",
		Unit:     "Mwords moved",
		Columns:  []string{"TSLU-flat", "GEPP-columns", "GEPP-blocked(nb=25)", "GEPP/TSLU"},
	}
	b, blocks := 100, 8
	ms := []int{100000, 400000, 1000000}
	if cfg.Mode == Measured {
		ms = []int{100000}
	}
	for _, m := range ms {
		progress(cfg, "ooc: m=%d", m)
		rows := m / blocks
		cache := int64(m) * int64(b) / 10

		ts := ooc.NewCache(cache)
		ooc.PanelTraceTSLU(ts, m, b, rows)
		pp := ooc.NewCache(cache)
		ooc.PanelTraceGEPP(pp, m, b, rows)
		bl := ooc.NewCache(cache)
		ooc.PanelTraceBlockedGEPP(bl, m, b, rows, 25)

		t.Rows = append(t.Rows, RowData{Label: "m=" + itoa(m), Values: map[string]float64{
			"TSLU-flat":           float64(ts.Moved) / 1e6,
			"GEPP-columns":        float64(pp.Moved) / 1e6,
			"GEPP-blocked(nb=25)": float64(bl.Moved) / 1e6,
			"GEPP/TSLU":           float64(pp.Moved) / float64(ts.Moved),
		}})
	}
	t.Notes = "TSLU with the flat tree streams the panel once (compulsory traffic); column-wise GEPP rescans it per column (~b passes); blocked GEPP lands in between (~b/nb passes). This is the paper's sequential-optimality claim."
	return t
}

// scalingExperiment sweeps the virtual core count for a fixed workload —
// the strong-scaling view the paper's per-machine tables imply.
func scalingExperiment(cfg Config) *Table {
	t := &Table{
		ID:       "scaling",
		Title:    "Strong scaling of CALU vs vendor model (Intel profile, cores swept)",
		PaperRef: "Sections III-IV",
		Unit:     "GFlop/s",
		Columns:  []string{"CALU-tall", "vendor-tall", "CALU-square", "vendor-square"},
	}
	mTall, nTall := 1000000, 100
	nSq := 5000
	if cfg.Mode == Measured {
		mTall, nSq = 100000, 2000
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		progress(cfg, "scaling: cores=%d", p)
		mach := machine.Intel8().WithCores(p)
		canonTall := baseline.LUFlops(mTall, nTall)
		canonSq := baseline.LUFlops(nSq, nSq)
		caluTall := core.BuildCALUGraph(mTall, nTall, core.Options{
			BlockSize: paperB(nTall), PanelThreads: p, Tree: tslu.Binary, Lookahead: true,
		})
		caluSq := core.BuildCALUGraph(nSq, nSq, core.Options{
			BlockSize: paperBlock, PanelThreads: min(p, 4), Tree: tslu.Binary, Lookahead: true,
		})
		t.Rows = append(t.Rows, RowData{Label: "cores=" + itoa(p), Values: map[string]float64{
			"CALU-tall":     simsched.Run(caluTall, mach).GFlops(canonTall),
			"vendor-tall":   simsched.Run(baseline.BuildGETRFGraph(mTall, nTall, vendorNB, p), mach).GFlops(canonTall),
			"CALU-square":   simsched.Run(caluSq, mach).GFlops(canonSq),
			"vendor-square": simsched.Run(baseline.BuildGETRFGraph(nSq, nSq, vendorNB, p), mach).GFlops(canonSq),
		}})
	}
	t.Notes = "On tall-skinny matrices CALU scales with cores (the panel parallelizes, Tr = cores) while the vendor model plateaus at its serial panel; on squares both scale until the update saturates."
	return t
}

func init() {
	register(Experiment{
		ID:       "ooc",
		Title:    "sequential memory-hierarchy traffic (Section II)",
		PaperRef: "Section II",
		Run:      oocExperiment,
	})
	register(Experiment{
		ID:       "scaling",
		Title:    "strong scaling across virtual cores",
		PaperRef: "Sections III-IV",
		Run:      scalingExperiment,
	})
}
