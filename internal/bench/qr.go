package bench

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/simsched"
	"repro/internal/tiled"
	"repro/internal/tslu"
)

// caqrModelGF simulates CAQR at the given size/options.
func caqrModelGF(m, n int, opt core.Options, mach *machine.Model) float64 {
	g := core.BuildCAQRGraph(m, n, opt)
	return simsched.Run(g, mach).GFlops(baseline.QRFlops(m, n))
}

// tsqrOptions is TSQR run as a single CAQR panel: block size = n, binary
// reduction tree over Tr block rows (the configuration the paper's Fig. 8
// labels "TSQR").
func tsqrOptions(n, tr, workers int) core.Options {
	return core.Options{BlockSize: n, PanelThreads: tr, Tree: tslu.Binary, Workers: workers, Lookahead: true}
}

// caqrOptions is the paper's CAQR configuration for Fig. 8: b = min(100,n),
// Tr = 4, and a reduction tree of height one (flat), which the paper found
// the efficient choice.
func caqrOptions(n, workers int) core.Options {
	return core.Options{BlockSize: paperB(n), PanelThreads: 4, Tree: tslu.Flat, Workers: workers, Lookahead: true}
}

func qrRowModel(m, n int, mach *machine.Model) map[string]float64 {
	canon := baseline.QRFlops(m, n)
	vals := map[string]float64{}
	vals["TSQR"] = caqrModelGF(m, n, tsqrOptions(n, mach.Cores, 0), mach)
	vals["CAQR(Tr=4)"] = caqrModelGF(m, n, caqrOptions(n, 0), mach)
	vals["dgeqrf"] = simsched.Run(baseline.BuildGEQRFGraph(m, n, vendorNB, mach.Cores), mach).GFlops(canon)
	vals["dgeqr2"] = simsched.Run(baseline.BuildGEQR2Graph(m, n), mach).GFlops(canon)
	vals["PLASMA"] = simsched.Run(tiled.BuildGEQRFGraph(m, n, tiled.Options{TileSize: plasmaTile, Workers: mach.Cores}), mach).GFlops(canon)
	return vals
}

func qrRowMeasured(m, n, workers int) map[string]float64 {
	canon := baseline.QRFlops(m, n)
	vals := map[string]float64{}
	orig := matrix.Random(m, n, int64(m-n))
	{
		a := orig.Clone()
		secs := timeIt(func() { mustQR(core.CAQR(a, tsqrOptions(n, workers, workers))) })
		vals["TSQR"] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		secs := timeIt(func() { mustQR(core.CAQR(a, caqrOptions(n, workers))) })
		vals["CAQR(Tr=4)"] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		tau := make([]float64, min(m, n))
		secs := timeIt(func() { lapack.PGEQRF(a, tau, vendorNB, workers) })
		vals["dgeqrf"] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		tau := make([]float64, min(m, n))
		secs := timeIt(func() { lapack.GEQR2(a, tau) })
		vals["dgeqr2"] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		secs := timeIt(func() { tiled.GEQRF(a, tiled.Options{TileSize: min(plasmaTile, max(n, 8)), Workers: workers}) })
		vals["PLASMA"] = gflops(canon, secs)
	}
	return vals
}

func init() {
	register(Experiment{
		ID:       "fig8",
		Title:    "QR of tall-skinny matrices, m=10^5, 8-core Intel",
		PaperRef: "Figure 8",
		Run: func(cfg Config) *Table {
			t := &Table{
				ID:       "fig8",
				Title:    "QR of tall-skinny matrices, m=10^5, 8-core Intel",
				PaperRef: "Figure 8",
				Unit:     "GFlop/s",
				Columns:  []string{"TSQR", "CAQR(Tr=4)", "dgeqrf", "dgeqr2", "PLASMA"},
			}
			mach := machine.Intel8()
			var ns []int
			mModel, mMeasured := 100000, 20000
			if cfg.Mode == Modeled {
				ns = []int{10, 25, 50, 100, 150, 200, 500, 1000}
			} else {
				ns = []int{10, 25, 50, 100, 200}
			}
			for _, n := range ns {
				var vals map[string]float64
				m := mModel
				if cfg.Mode == Modeled {
					progress(cfg, "fig8: modeling m=%d n=%d", mModel, n)
					vals = qrRowModel(mModel, n, mach)
				} else {
					m = mMeasured
					progress(cfg, "fig8: measuring m=%d n=%d", mMeasured, n)
					vals = qrRowMeasured(mMeasured, n, workersOrCPU(cfg))
				}
				t.Rows = append(t.Rows, RowData{Label: rowLabel(m, n), Values: vals})
			}
			t.Notes = "TSQR = single-panel CAQR (b=n, binary tree); CAQR uses b=min(100,n), Tr=4, flat (height-1) tree as in the paper."
			return t
		},
	})
	register(Experiment{
		ID:       "table3",
		Title:    "QR of square matrices, 8-core Intel",
		PaperRef: "Table III",
		Run: func(cfg Config) *Table {
			t := &Table{
				ID:       "table3",
				Title:    "QR of square matrices, 8-core Intel",
				PaperRef: "Table III",
				Unit:     "GFlop/s",
				Columns:  []string{"MKL", "PLASMA"},
			}
			trs := []int{1, 2, 4, 8}
			for _, tr := range trs {
				t.Columns = append(t.Columns, "CAQR(Tr="+itoa(tr)+")")
			}
			mach := machine.Intel8()
			sizes := []int{1000, 2000, 3000, 4000, 5000}
			if cfg.Mode == Measured {
				sizes = []int{256, 512, 768}
			}
			for _, n := range sizes {
				canon := baseline.QRFlops(n, n)
				vals := map[string]float64{}
				if cfg.Mode == Modeled {
					progress(cfg, "table3: modeling n=%d", n)
					vals["MKL"] = simsched.Run(baseline.BuildGEQRFGraph(n, n, vendorNB, mach.Cores), mach).GFlops(canon)
					vals["PLASMA"] = simsched.Run(tiled.BuildGEQRFGraph(n, n, tiled.Options{TileSize: plasmaTile, Workers: mach.Cores}), mach).GFlops(canon)
					for _, tr := range trs {
						opt := core.Options{BlockSize: paperBlock, PanelThreads: tr, Tree: tslu.Flat, Lookahead: true}
						vals["CAQR(Tr="+itoa(tr)+")"] = caqrModelGF(n, n, opt, mach)
					}
				} else {
					progress(cfg, "table3: measuring n=%d", n)
					workers := workersOrCPU(cfg)
					orig := matrix.Random(n, n, int64(n+1))
					{
						a := orig.Clone()
						tau := make([]float64, n)
						secs := timeIt(func() { lapack.PGEQRF(a, tau, vendorNB, workers) })
						vals["MKL"] = gflops(canon, secs)
					}
					{
						a := orig.Clone()
						secs := timeIt(func() { tiled.GEQRF(a, tiled.Options{TileSize: 64, Workers: workers}) })
						vals["PLASMA"] = gflops(canon, secs)
					}
					for _, tr := range trs {
						a := orig.Clone()
						opt := core.Options{BlockSize: min(paperBlock, n/4), PanelThreads: tr, Tree: tslu.Flat, Workers: workers, Lookahead: true}
						secs := timeIt(func() { mustQR(core.CAQR(a, opt)) })
						vals["CAQR(Tr="+itoa(tr)+")"] = gflops(canon, secs)
					}
				}
				t.Rows = append(t.Rows, RowData{Label: "m=n=" + itoa(n), Values: vals})
			}
			return t
		},
	})
}

// mustQR discards a benchmark factorization result, panicking on error:
// bench inputs are well-formed by construction, so an error is a bug.
func mustQR(_ *core.QRResult, err error) {
	if err != nil {
		panic(err)
	}
}
