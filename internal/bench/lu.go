package bench

import (
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/simsched"
	"repro/internal/tiled"
	"repro/internal/tslu"
)

// Parameters shared by the paper's experiments.
const (
	paperBlock = 100 // CALU/CAQR block size b = min(100, n)
	vendorNB   = 64  // modeled vendor-library panel width
	plasmaTile = 200 // PLASMA 2.0 default tile size
	acmlCores  = 8   // ACML's effective fork-join scaling on the NUMA Opteron
)

func paperB(n int) int { return min(paperBlock, n) }

func workersOrCPU(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.NumCPU()
}

// caluModelGF simulates CALU at the given size/options and returns GFlop/s
// against the canonical LU count.
func caluModelGF(m, n int, opt core.Options, mach *machine.Model) float64 {
	g := core.BuildCALUGraph(m, n, opt)
	return simsched.Run(g, mach).GFlops(baseline.LUFlops(m, n))
}

// luColumnsModel computes one row of the tall-skinny LU comparison in
// modeled mode.
func luRowModel(m, n int, trs []int, mach *machine.Model, vendorCores int) map[string]float64 {
	vals := map[string]float64{}
	canon := baseline.LUFlops(m, n)
	for _, tr := range trs {
		opt := core.Options{BlockSize: paperB(n), PanelThreads: tr, Tree: tslu.Binary, Lookahead: true}
		vals[caluCol(tr)] = caluModelGF(m, n, opt, mach)
	}
	vals["dgetrf"] = simsched.Run(baseline.BuildGETRFGraph(m, n, vendorNB, vendorCores), mach).GFlops(canon)
	vals["dgetf2"] = simsched.Run(baseline.BuildGETF2Graph(m, n), mach).GFlops(canon)
	vals["PLASMA"] = simsched.Run(tiled.BuildGETRFGraph(m, n, tiled.Options{TileSize: plasmaTile, Workers: mach.Cores}), mach).GFlops(canon)
	return vals
}

// luRowMeasured computes one row with real execution at reduced scale.
func luRowMeasured(m, n int, trs []int, workers int) map[string]float64 {
	vals := map[string]float64{}
	canon := baseline.LUFlops(m, n)
	orig := matrix.Random(m, n, int64(m+n))
	for _, tr := range trs {
		a := orig.Clone()
		opt := core.Options{BlockSize: paperB(n), PanelThreads: tr, Tree: tslu.Binary, Workers: workers, Lookahead: true}
		secs := timeIt(func() {
			if _, err := core.CALU(a, opt); err != nil {
				panic(err)
			}
		})
		vals[caluCol(tr)] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		ipiv := make([]int, min(m, n))
		secs := timeIt(func() {
			if err := lapack.PGETRF(a, ipiv, vendorNB, workers); err != nil {
				panic(err)
			}
		})
		vals["dgetrf"] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		ipiv := make([]int, min(m, n))
		secs := timeIt(func() {
			if err := lapack.GETF2(a, ipiv); err != nil {
				panic(err)
			}
		})
		vals["dgetf2"] = gflops(canon, secs)
	}
	{
		a := orig.Clone()
		secs := timeIt(func() {
			if _, err := tiled.GETRF(a, tiled.Options{TileSize: min(plasmaTile, max(n, 8)), Workers: workers}); err != nil {
				panic(err)
			}
		})
		vals["PLASMA"] = gflops(canon, secs)
	}
	return vals
}

func caluCol(tr int) string {
	return "CALU(Tr=" + itoa(tr) + ")"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// tallSkinnyLU builds the Fig. 5/6/7 table.
func tallSkinnyLU(cfg Config, id, title, ref string, mModel, mMeasured int, trs []int, mach *machine.Model, vendorCores int, vendorName string) *Table {
	t := &Table{
		ID: id, Title: title, PaperRef: ref, Unit: "GFlop/s",
	}
	for _, tr := range trs {
		t.Columns = append(t.Columns, caluCol(tr))
	}
	t.Columns = append(t.Columns, "dgetrf", "dgetf2", "PLASMA")
	var ns []int
	if cfg.Mode == Modeled {
		ns = []int{10, 25, 50, 100, 150, 200, 500, 1000}
	} else {
		ns = []int{10, 25, 50, 100, 200}
	}
	for _, n := range ns {
		var vals map[string]float64
		if cfg.Mode == Modeled {
			progress(cfg, "%s: modeling m=%d n=%d", id, mModel, n)
			vals = luRowModel(mModel, n, trs, mach, vendorCores)
		} else {
			progress(cfg, "%s: measuring m=%d n=%d", id, mMeasured, n)
			vals = luRowMeasured(mMeasured, n, trs, workersOrCPU(cfg))
		}
		m := mModel
		if cfg.Mode == Measured {
			m = mMeasured
		}
		t.Rows = append(t.Rows, RowData{Label: rowLabel(m, n), Values: vals})
	}
	t.Notes = "dgetrf/dgetf2 are the " + vendorName + " stand-ins; PLASMA is the tiled incremental-pivoting LU (tile=" + itoa(plasmaTile) + ")."
	if cfg.Mode == Measured {
		t.Notes = joinNotes(t.Notes, "measured at reduced scale on the reproduction host; parallel speedups require GOMAXPROCS > 1")
	}
	return t
}

// squareLU builds Tables I / II.
func squareLU(cfg Config, id, title, ref string, sizes []int, trs []int, mach *machine.Model, vendorCores int, vendorName string) *Table {
	t := &Table{ID: id, Title: title, PaperRef: ref, Unit: "GFlop/s"}
	t.Columns = append(t.Columns, vendorName, "PLASMA")
	for _, tr := range trs {
		t.Columns = append(t.Columns, caluCol(tr))
	}
	if cfg.Mode == Measured {
		sizes = []int{256, 512, 768}
	}
	for _, n := range sizes {
		canon := baseline.LUFlops(n, n)
		vals := map[string]float64{}
		if cfg.Mode == Modeled {
			progress(cfg, "%s: modeling n=%d", id, n)
			vals[vendorName] = simsched.Run(baseline.BuildGETRFGraph(n, n, vendorNB, vendorCores), mach).GFlops(canon)
			vals["PLASMA"] = simsched.Run(tiled.BuildGETRFGraph(n, n, tiled.Options{TileSize: plasmaTile, Workers: mach.Cores}), mach).GFlops(canon)
			for _, tr := range trs {
				opt := core.Options{BlockSize: paperBlock, PanelThreads: tr, Tree: tslu.Binary, Lookahead: true}
				vals[caluCol(tr)] = caluModelGF(n, n, opt, mach)
			}
		} else {
			progress(cfg, "%s: measuring n=%d", id, n)
			workers := workersOrCPU(cfg)
			orig := matrix.Random(n, n, int64(n))
			{
				a := orig.Clone()
				ipiv := make([]int, n)
				secs := timeIt(func() {
					if err := lapack.PGETRF(a, ipiv, vendorNB, workers); err != nil {
						panic(err)
					}
				})
				vals[vendorName] = gflops(canon, secs)
			}
			{
				a := orig.Clone()
				secs := timeIt(func() {
					if _, err := tiled.GETRF(a, tiled.Options{TileSize: 64, Workers: workers}); err != nil {
						panic(err)
					}
				})
				vals["PLASMA"] = gflops(canon, secs)
			}
			for _, tr := range trs {
				a := orig.Clone()
				opt := core.Options{BlockSize: min(paperBlock, n/4), PanelThreads: tr, Tree: tslu.Binary, Workers: workers, Lookahead: true}
				secs := timeIt(func() {
					if _, err := core.CALU(a, opt); err != nil {
						panic(err)
					}
				})
				vals[caluCol(tr)] = gflops(canon, secs)
			}
		}
		t.Rows = append(t.Rows, RowData{Label: "m=n=" + itoa(n), Values: vals})
	}
	return t
}

func init() {
	register(Experiment{
		ID:       "fig5",
		Title:    "LU of tall-skinny matrices, m=10^5, 8-core Intel",
		PaperRef: "Figure 5",
		Run: func(cfg Config) *Table {
			return tallSkinnyLU(cfg, "fig5",
				"LU of tall-skinny matrices, m=10^5, 8-core Intel",
				"Figure 5", 100000, 20000, []int{8, 4}, machine.Intel8(), machine.Intel8().Cores, "MKL")
		},
	})
	register(Experiment{
		ID:       "fig6",
		Title:    "LU of tall-skinny matrices, m=10^6, 8-core Intel",
		PaperRef: "Figure 6",
		Run: func(cfg Config) *Table {
			return tallSkinnyLU(cfg, "fig6",
				"LU of tall-skinny matrices, m=10^6, 8-core Intel",
				"Figure 6", 1000000, 50000, []int{8, 4}, machine.Intel8(), machine.Intel8().Cores, "MKL")
		},
	})
	register(Experiment{
		ID:       "fig7",
		Title:    "LU of tall-skinny matrices, m=10^5, 16-core AMD",
		PaperRef: "Figure 7",
		Run: func(cfg Config) *Table {
			return tallSkinnyLU(cfg, "fig7",
				"LU of tall-skinny matrices, m=10^5, 16-core AMD",
				"Figure 7", 100000, 20000, []int{16, 8}, machine.AMD16(), acmlCores, "ACML")
		},
	})
	register(Experiment{
		ID:       "table1",
		Title:    "LU of square matrices, 8-core Intel",
		PaperRef: "Table I",
		Run: func(cfg Config) *Table {
			return squareLU(cfg, "table1",
				"LU of square matrices, 8-core Intel",
				"Table I", []int{1000, 2000, 3000, 4000, 5000, 10000},
				[]int{1, 2, 4, 8}, machine.Intel8(), machine.Intel8().Cores, "MKL")
		},
	})
	register(Experiment{
		ID:       "table2",
		Title:    "LU of square matrices, 16-core AMD",
		PaperRef: "Table II",
		Run: func(cfg Config) *Table {
			return squareLU(cfg, "table2",
				"LU of square matrices, 16-core AMD",
				"Table II", []int{1000, 2000, 3000, 4000, 5000},
				[]int{1, 2, 4, 8, 16}, machine.AMD16(), acmlCores, "ACML")
		},
	})
}
