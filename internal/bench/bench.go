// Package bench regenerates every table and figure of the paper's
// evaluation section (Figs. 3-8, Tables I-III), plus the stability study
// and the ablations called out in DESIGN.md.
//
// Each experiment runs in one of two modes:
//
//   - Modeled (default): the algorithms' task graphs are built at the
//     paper's original sizes and executed in virtual time on the calibrated
//     machine models (package simsched + machine). Deterministic, fast, and
//     structurally faithful: the graphs are produced by the same builders
//     the real code uses.
//   - Measured: the real numeric factorizations run on scaled-down sizes
//     and are wall-clock timed. Useful to validate the implementations
//     end-to-end on the reproduction host; absolute numbers depend on the
//     host and on GOMAXPROCS.
//
// The output tables print GFlop/s computed against canonical flop counts,
// exactly as the paper reports.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Mode selects how an experiment obtains its numbers.
type Mode int

// Modes.
const (
	Modeled Mode = iota
	Measured
)

// String names the mode.
func (m Mode) String() string {
	if m == Measured {
		return "measured"
	}
	return "modeled"
}

// Config parameterizes an experiment run.
type Config struct {
	// Mode selects modeled (paper-scale, virtual time) or measured
	// (scaled-down, wall clock).
	Mode Mode
	// Workers is the goroutine count for measured runs; 0 uses NumCPU.
	Workers int
	// Verbose writers get progress lines; nil silences them.
	Verbose io.Writer
}

// Table is one reproduced table or figure (figures are reported as the
// table of series values that would be plotted).
type Table struct {
	// ID is the experiment identifier (fig5, table1, ...).
	ID string
	// Title describes the experiment.
	Title string
	// PaperRef cites the paper artifact this reproduces.
	PaperRef string
	// Columns are the value column names, in display order.
	Columns []string
	// Rows are the data rows, in display order.
	Rows []RowData
	// Unit labels the values (GFlop/s, seconds, growth, ...).
	Unit string
	// Notes holds free-form output such as Gantt charts or commentary.
	Notes string
}

// RowData is one table row.
type RowData struct {
	Label  string
	Values map[string]float64
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "(reproduces %s; values in %s)\n", t.PaperRef, t.Unit)
	// Column widths.
	labelW := 5
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for i, c := range t.Columns {
		fmt.Fprintf(w, " %*s", widths[i], c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", labelW+2, r.Label)
		for i, c := range t.Columns {
			v, ok := r.Values[c]
			if !ok {
				fmt.Fprintf(w, " %*s", widths[i], "-")
				continue
			}
			fmt.Fprintf(w, " %*.2f", widths[i], v)
		}
		fmt.Fprintln(w)
	}
	if t.Notes != "" {
		fmt.Fprintln(w, t.Notes)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered reproduction target.
type Experiment struct {
	// ID is the key used on the command line (fig5, table1, ablation-tree).
	ID string
	// Title is a human-readable summary.
	Title string
	// PaperRef cites the reproduced artifact.
	PaperRef string
	// Run produces the table.
	Run func(cfg Config) *Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// progress emits a progress line when cfg.Verbose is set.
func progress(cfg Config, format string, args ...any) {
	if cfg.Verbose != nil {
		fmt.Fprintf(cfg.Verbose, format+"\n", args...)
	}
}

// timeIt runs f and returns elapsed seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// gflops converts canonical flops and seconds to GFlop/s.
func gflops(canonical, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return canonical / seconds / 1e9
}

// rowLabel formats an m x n size label.
func rowLabel(m, n int) string {
	return fmt.Sprintf("%dx%d", m, n)
}

// joinNotes concatenates note fragments.
func joinNotes(parts ...string) string {
	return strings.Join(parts, "\n")
}

// WriteCSV emits the table as CSV (label plus one column per series).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "label")
	for _, c := range t.Columns {
		fmt.Fprintf(w, ",%s", strings.ReplaceAll(c, ",", ";"))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s", strings.ReplaceAll(r.Label, ",", ";"))
		for _, c := range t.Columns {
			if v, ok := r.Values[c]; ok {
				fmt.Fprintf(w, ",%g", v)
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}
