package bench

import (
	"repro/internal/dist"
	"repro/internal/matrix"
)

// distExperiment measures actual per-process message counts of the
// distributed-memory panel factorizations (the paper's Section II setting)
// on the mini message-passing runtime: tournament pivoting vs classic
// partial pivoting, across process counts.
func distExperiment(cfg Config) *Table {
	t := &Table{
		ID:       "dist",
		Title:    "Distributed panel factorization: messages per process (measured on the message-passing runtime)",
		PaperRef: "Section II",
		Unit:     "messages (max over processes)",
		Columns:  []string{"TSLU", "TSQR", "GEPP", "GEPP/TSLU", "CALU/panel", "CAQR/panel"},
	}
	m, b := 4096, 32
	if cfg.Mode == Measured {
		m = 1024
	}
	for _, p := range []int{2, 4, 8, 16} {
		progress(cfg, "dist: P=%d", p)
		panel := matrix.Random(m, b, int64(p))

		wCA := dist.NewWorld(p)
		dist.TSLU(wCA, panel.Clone(), p)
		ca := float64(wCA.MaxMessagesPerRank())

		wQR := dist.NewWorld(p)
		dist.TSQR(wQR, panel.Clone(), p)
		qr := float64(wQR.MaxMessagesPerRank())

		wPP := dist.NewWorld(p)
		dist.GEPP(wPP, panel.Clone(), p)
		pp := float64(wPP.MaxMessagesPerRank())

		// The full distributed factorizations, amortized per panel.
		nFull := 4 * b
		wFull := dist.NewWorld(p)
		dist.CALU(wFull, matrix.Random(m, nFull, int64(p+1)), b)
		fullLU := float64(wFull.MaxMessagesPerRank()) / float64(nFull/b)
		wQRF := dist.NewWorld(p)
		dist.CAQR(wQRF, matrix.Random(m, nFull, int64(p+2)), b)
		fullQR := float64(wQRF.MaxMessagesPerRank()) / float64(nFull/b)

		t.Rows = append(t.Rows, RowData{Label: "P=" + itoa(p), Values: map[string]float64{
			"TSLU": ca, "TSQR": qr, "GEPP": pp, "GEPP/TSLU": pp / ca,
			"CALU/panel": fullLU, "CAQR/panel": fullQR,
		}})
	}
	t.Notes = "Counts are real messages sent on the simulated network for one m x b panel (b=" + itoa(b) + "). TSLU/TSQR pay O(log P): tree sends plus broadcast forwards. GEPP pays O(b log P): a max-reduction and pivot-row broadcast per column. CALU/panel and CAQR/panel are the full distributed factorizations amortized per panel (CALU: tournament + row swaps + composite/U-row broadcasts; CAQR: tree edges each shipping an R triangle and a trailing carrier block)."
	return t
}

func init() {
	register(Experiment{
		ID:       "dist",
		Title:    "distributed-memory message counts (Section II)",
		PaperRef: "Section II",
		Run:      distExperiment,
	})
}
