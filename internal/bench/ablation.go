package bench

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simsched"
	"repro/internal/tslu"
)

// Ablation experiments for the design choices DESIGN.md calls out. All run
// modeled (the questions are about task-graph structure, which the
// simulator answers deterministically at paper scale); Measured mode uses
// reduced sizes through the same graphs.

type shape struct {
	label string
	m, n  int
}

func ablationShapes(cfg Config) []shape {
	if cfg.Mode == Measured {
		return []shape{
			{"tall 20000x200", 20000, 200},
			{"square 1000", 1000, 1000},
		}
	}
	return []shape{
		{"tall 1e5x200", 100000, 200},
		{"tall 1e5x1000", 100000, 1000},
		{"tall 1e6x100", 1000000, 100},
		{"square 5000", 5000, 5000},
	}
}

// ablationTree compares binary vs flat (height-1) reduction trees for both
// CALU and CAQR panels.
func ablationTree(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-tree",
		Title:    "Reduction tree shape: binary vs flat (height 1)",
		PaperRef: "Sections II-III",
		Unit:     "GFlop/s",
		Columns: []string{
			"CALU-binary", "CALU-flat", "CALU-hybrid",
			"CAQR-binary", "CAQR-flat", "CAQR-hybrid",
		},
	}
	mach := machine.Intel8()
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-tree: %s", s.label)
		vals := map[string]float64{}
		for _, tree := range []tslu.Tree{tslu.Binary, tslu.Flat, tslu.Hybrid} {
			opt := core.Options{BlockSize: paperB(s.n), PanelThreads: 8, Tree: tree, Lookahead: true}
			vals["CALU-"+tree.String()] = caluModelGF(s.m, s.n, opt, mach)
			vals["CAQR-"+tree.String()] = caqrModelGF(s.m, s.n, opt, mach)
		}
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: vals})
	}
	t.Notes = "The flat tree merges all Tr candidate sets in one (larger) GEPP/QR; the binary tree uses log2(Tr) smaller rounds; hybrid (flat groups, then binary — Hadri et al., cited in the paper's conclusion) sits between."
	return t
}

// ablationLookahead turns the column-ordered look-ahead priorities off.
func ablationLookahead(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-lookahead",
		Title:    "Look-ahead priorities on vs off",
		PaperRef: "Section III task-scheduling discussion",
		Unit:     "GFlop/s",
		Columns:  []string{"lookahead", "no-lookahead"},
	}
	mach := machine.Intel8()
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-lookahead: %s", s.label)
		on := core.Options{BlockSize: paperB(s.n), PanelThreads: 8, Lookahead: true}
		off := on
		off.Lookahead = false
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: map[string]float64{
			"lookahead":    caluModelGF(s.m, s.n, on, mach),
			"no-lookahead": caluModelGF(s.m, s.n, off, mach),
		}})
	}
	t.Notes = "Without look-ahead, ready tasks are ordered by iteration, so the next panel waits behind all of the previous iteration's updates."
	return t
}

// ablationBlockSize sweeps the panel width b.
func ablationBlockSize(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-blocksize",
		Title:    "Panel block size b sweep (CALU, Tr=8)",
		PaperRef: "Section IV parameter discussion",
		Unit:     "GFlop/s",
	}
	bs := []int{25, 50, 100, 200}
	for _, b := range bs {
		t.Columns = append(t.Columns, "b="+itoa(b))
	}
	mach := machine.Intel8()
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-blocksize: %s", s.label)
		vals := map[string]float64{}
		for _, b := range bs {
			opt := core.Options{BlockSize: min(b, s.n), PanelThreads: 8, Lookahead: true}
			vals["b="+itoa(b)] = caluModelGF(s.m, s.n, opt, mach)
		}
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: vals})
	}
	t.Notes = "The paper settles on b = min(100, n) on the Intel machine: small b starves BLAS-3 granularity, large b serializes the panel."
	return t
}

// ablationTwoLevel evaluates the paper's future-work two-level blocking
// B = ColsPerTask * b for the trailing update.
func ablationTwoLevel(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-twolevel",
		Title:    "Two-level blocking: trailing-update columns per task (B = c*b)",
		PaperRef: "Section V future work",
		Unit:     "GFlop/s",
	}
	cs := []int{1, 2, 4, 8}
	for _, c := range cs {
		t.Columns = append(t.Columns, "c="+itoa(c))
	}
	mach := machine.Intel8()
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-twolevel: %s", s.label)
		vals := map[string]float64{}
		for _, c := range cs {
			opt := core.Options{BlockSize: paperB(s.n), PanelThreads: 8, Lookahead: true, ColsPerTask: c}
			vals["c="+itoa(c)] = caluModelGF(s.m, s.n, opt, mach)
		}
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: vals})
	}
	t.Notes = "Grouping c block columns per U/S task cuts task count (less scheduling overhead, bigger BLAS-3 calls) at the cost of coarser parallelism — the trade-off the paper's conclusion proposes to explore."
	return t
}

// ablationTr sweeps the panel parallelism knob on its own, holding the
// machine fixed — the paper's central parameter.
func ablationTr(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-tr",
		Title:    "Panel parallelism Tr sweep (CALU, 8-core Intel)",
		PaperRef: "Figures 3-6",
		Unit:     "GFlop/s",
	}
	trs := []int{1, 2, 4, 8, 16}
	for _, tr := range trs {
		t.Columns = append(t.Columns, "Tr="+itoa(tr))
	}
	mach := machine.Intel8()
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-tr: %s", s.label)
		vals := map[string]float64{}
		for _, tr := range trs {
			opt := core.Options{BlockSize: paperB(s.n), PanelThreads: tr, Lookahead: true}
			vals["Tr="+itoa(tr)] = caluModelGF(s.m, s.n, opt, mach)
		}
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: vals})
	}
	t.Notes = "Tr beyond the core count adds tournament rounds without extra parallelism; Tr below it leaves the panel on the critical path — the effect Figs. 3-4 visualize."
	return t
}

// ablationSync counts the synchronization structure: dependency edges and
// critical-path task count, the communication-avoiding metric itself.
func ablationSync(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-sync",
		Title:    "Synchronization structure: CALU vs fork-join vendor model",
		PaperRef: "Sections I-II",
		Unit:     "count",
		Columns:  []string{"CALU-tasks", "CALU-edges", "vendor-tasks", "vendor-edges"},
	}
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-sync: %s", s.label)
		opt := core.Options{BlockSize: paperB(s.n), PanelThreads: 8, Lookahead: true}
		g := core.BuildCALUGraph(s.m, s.n, opt)
		vg := baseline.BuildGETRFGraph(s.m, s.n, vendorNB, 8)
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: map[string]float64{
			"CALU-tasks":   float64(g.Len()),
			"CALU-edges":   float64(g.Edges()),
			"vendor-tasks": float64(vg.Len()),
			"vendor-edges": float64(vg.Edges()),
		}})
	}
	t.Notes = "CALU trades a few extra tournament tasks per panel for the removal of the per-column synchronization inside the panel (O(log Tr) rounds instead of O(b) pivot broadcasts)."
	return t
}

// simsched import is exercised via caluModelGF/caqrModelGF; keep the
// explicit reference for the sync ablation builds too.
var _ = simsched.Run

func init() {
	register(Experiment{ID: "ablation-tree", Title: "binary vs flat reduction tree", PaperRef: "Sections II-III", Run: ablationTree})
	register(Experiment{ID: "ablation-lookahead", Title: "look-ahead priorities on/off", PaperRef: "Section III", Run: ablationLookahead})
	register(Experiment{ID: "ablation-blocksize", Title: "panel block size sweep", PaperRef: "Section IV", Run: ablationBlockSize})
	register(Experiment{ID: "ablation-twolevel", Title: "two-level trailing blocking (future work)", PaperRef: "Section V", Run: ablationTwoLevel})
	register(Experiment{ID: "ablation-tr", Title: "panel parallelism sweep", PaperRef: "Figures 3-6", Run: ablationTr})
	register(Experiment{ID: "ablation-sync", Title: "synchronization structure counts", PaperRef: "Sections I-II", Run: ablationSync})
}

// ablationStructured models the CAQR improvement the paper's conclusion
// anticipates: dense stacked tree merges (the paper's implementation)
// versus structured triangle-on-triangle kernels (TTQRT, as PLASMA's
// follow-up work used).
func ablationStructured(cfg Config) *Table {
	t := &Table{
		ID:       "ablation-structured",
		Title:    "CAQR tree kernels: dense stacked QR vs structured TTQRT",
		PaperRef: "Section V",
		Unit:     "GFlop/s",
		Columns:  []string{"dense-tree", "structured-tree"},
	}
	mach := machine.Intel8()
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "ablation-structured: %s", s.label)
		base := core.Options{BlockSize: paperB(s.n), PanelThreads: 8, Tree: tslu.Binary, Lookahead: true}
		st := base
		st.StructuredTree = true
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: map[string]float64{
			"dense-tree":      caqrModelGF(s.m, s.n, base, mach),
			"structured-tree": caqrModelGF(s.m, s.n, st, mach),
		}})
	}
	t.Notes = "The structured kernel cuts each binary-tree merge from ~(10/3)b^3 to ~b^3 flops and each pair update from 8b^2c to 3b^2c, addressing the paper's note that CAQR performance was still being improved."
	return t
}

func init() {
	register(Experiment{ID: "ablation-structured", Title: "CAQR dense vs structured tree kernels", PaperRef: "Section V", Run: ablationStructured})
}
