package bench

// Observability overhead gate: the scheduler's always-on instrumentation
// (internal/sched per-worker counters and kind histograms) must stay cheap
// enough to leave on in production. RunObsOverhead times the engine-reuse
// workload with instrumentation enabled and disabled in alternating rounds
// of the same process — same heap state, same thermal envelope — and
// compares the best round of each side, so one GC pause or scheduler hiccup
// cannot fake (or hide) a regression. cmd/cabench -obs-overhead wires this
// into CI with a percentage ceiling.

import (
	"fmt"
	"math"
	"time"

	"repro/factor"
	"repro/internal/sched"
)

// ObsOverheadResult is one paired measurement of the instrumentation cost.
type ObsOverheadResult struct {
	// Rounds is how many on/off pairs ran; the reported times are the
	// minimum over rounds (the least-disturbed run of each side).
	Rounds int `json:"rounds"`
	// InstrumentedMsPerOp and UninstrumentedMsPerOp are the best engine-reuse
	// times with scheduler instrumentation on and off.
	InstrumentedMsPerOp   float64 `json:"instrumented_ms_per_op"`
	UninstrumentedMsPerOp float64 `json:"uninstrumented_ms_per_op"`
	// OverheadPct is 100 * (on - off) / off; negative values (noise) mean
	// the instrumented side happened to run faster.
	OverheadPct float64 `json:"overhead_pct"`
}

// RunObsOverhead measures the instrumentation overhead on the engine-reuse
// workload. rounds <= 0 defaults to 3.
func RunObsOverhead(cfg Config, rounds int) *ObsOverheadResult {
	if rounds <= 0 {
		rounds = 3
	}
	const (
		m, n, nb = 1000, 200, 100
		iters    = 10
	)
	orig := factor.Random(m, n, 3)
	opt := factor.Options{BlockSize: nb, PanelThreads: 4}

	// measure times one engine-reuse pass with the package-level
	// instrumentation default set for the engines created inside it, and
	// restores the always-on default before returning.
	measure := func(on bool) float64 {
		sched.SetInstrumentation(on)
		defer sched.SetInstrumentation(true)
		eng := factor.NewEngine(4)
		defer eng.Close()
		if _, err := eng.LU(orig.Clone(), opt); err != nil {
			panic(fmt.Sprintf("bench: obs-overhead warmup LU failed: %v", err))
		}
		var total time.Duration
		for i := 0; i < iters; i++ {
			a := orig.Clone()
			start := time.Now()
			if _, err := eng.LU(a, opt); err != nil {
				panic(fmt.Sprintf("bench: obs-overhead LU failed: %v", err))
			}
			total += time.Since(start)
		}
		return total.Seconds() * 1e3 / iters
	}

	minOn, minOff := math.Inf(1), math.Inf(1)
	for r := 0; r < rounds; r++ {
		progress(cfg, "obs-overhead round %d/%d: instrumented...", r+1, rounds)
		on := measure(true)
		progress(cfg, "obs-overhead round %d/%d: uninstrumented...", r+1, rounds)
		off := measure(false)
		minOn = math.Min(minOn, on)
		minOff = math.Min(minOff, off)
	}
	res := &ObsOverheadResult{
		Rounds:                rounds,
		InstrumentedMsPerOp:   minOn,
		UninstrumentedMsPerOp: minOff,
	}
	if minOff > 0 {
		res.OverheadPct = 100 * (minOn - minOff) / minOff
	}
	return res
}
