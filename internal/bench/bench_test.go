package bench

import (
	"strings"
	"testing"
)

// get returns the value of column c in the row labeled label.
func get(t *testing.T, tb *Table, label, c string) float64 {
	t.Helper()
	for _, r := range tb.Rows {
		if r.Label == label {
			v, ok := r.Values[c]
			if !ok {
				t.Fatalf("%s: row %q has no column %q", tb.ID, label, c)
			}
			return v
		}
	}
	t.Fatalf("%s: no row %q", tb.ID, label)
	return 0
}

func runModeled(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return e.Run(Config{Mode: Modeled})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table1", "table2", "table3", "stability",
		"ablation-tree", "ablation-lookahead", "ablation-blocksize",
		"ablation-twolevel", "ablation-tr", "ablation-sync", "comm", "dist",
		"stability-sweep", "ooc", "scaling", "parity", "ablation-structured",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, e := range Experiments() {
		tb := e.Run(Config{Mode: Modeled})
		if tb.ID != e.ID {
			t.Errorf("%s: table ID %q", e.ID, tb.ID)
		}
		if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
			t.Errorf("%s: empty table", e.ID)
		}
		var b strings.Builder
		tb.Format(&b)
		if !strings.Contains(b.String(), e.PaperRef) {
			t.Errorf("%s: formatted output missing paper ref", e.ID)
		}
	}
}

// TestFig5Shape checks the paper's headline tall-skinny LU claims on the
// modeled 8-core Intel machine.
func TestFig5Shape(t *testing.T) {
	tb := runModeled(t, "fig5")
	for _, n := range []string{"100000x10", "100000x100", "100000x200", "100000x500"} {
		calu := get(t, tb, n, "CALU(Tr=8)")
		mkl := get(t, tb, n, "dgetrf")
		f2 := get(t, tb, n, "dgetf2")
		plasma := get(t, tb, n, "PLASMA")
		if calu <= mkl {
			t.Errorf("%s: CALU %f not above dgetrf %f", n, calu, mkl)
		}
		if calu <= f2 {
			t.Errorf("%s: CALU %f not above dgetf2 %f", n, calu, f2)
		}
		if calu <= plasma {
			t.Errorf("%s: CALU %f not above PLASMA %f", n, calu, plasma)
		}
	}
	// Tr=8 must beat Tr=4 on tall-skinny (more panel parallelism).
	if get(t, tb, "100000x100", "CALU(Tr=8)") <= get(t, tb, "100000x100", "CALU(Tr=4)") {
		t.Error("Tr=8 not above Tr=4 at n=100")
	}
	// PLASMA closes the gap as n grows (paper: speedup decreases with n).
	gap200 := get(t, tb, "100000x200", "CALU(Tr=8)") / get(t, tb, "100000x200", "PLASMA")
	gap1000 := get(t, tb, "100000x1000", "CALU(Tr=8)") / get(t, tb, "100000x1000", "PLASMA")
	if gap1000 >= gap200 {
		t.Errorf("CALU/PLASMA gap does not shrink: %f at n=200 vs %f at n=1000", gap200, gap1000)
	}
}

// TestFig6Shape checks the m=10^6 variant including the ~10x dgetf2 claim.
func TestFig6Shape(t *testing.T) {
	tb := runModeled(t, "fig6")
	calu := get(t, tb, "1000000x100", "CALU(Tr=8)")
	f2 := get(t, tb, "1000000x100", "dgetf2")
	if ratio := calu / f2; ratio < 5 || ratio > 25 {
		t.Errorf("CALU/dgetf2 at 10^6x100 = %f, paper reports ~10x", ratio)
	}
	mkl := get(t, tb, "1000000x500", "dgetrf")
	calu500 := get(t, tb, "1000000x500", "CALU(Tr=8)")
	if ratio := calu500 / mkl; ratio < 1.5 || ratio > 6 {
		t.Errorf("CALU/dgetrf at 10^6x500 = %f, paper reports ~2.3x", ratio)
	}
}

// TestFig7Shape checks the AMD machine: CALU(Tr=16) well above ACML.
func TestFig7Shape(t *testing.T) {
	tb := runModeled(t, "fig7")
	total, count := 0.0, 0
	for _, r := range tb.Rows {
		total += r.Values["CALU(Tr=16)"] / r.Values["dgetrf"]
		count++
	}
	if avg := total / float64(count); avg < 2.5 {
		t.Errorf("average CALU/ACML speedup %f, paper reports ~5x", avg)
	}
}

// TestTable1Shape checks the square-matrix trade-off on Intel: MKL wins at
// small n, CALU competitive at 10000, CALU above PLASMA for n >= 3000.
func TestTable1Shape(t *testing.T) {
	tb := runModeled(t, "table1")
	if get(t, tb, "m=n=1000", "MKL") <= get(t, tb, "m=n=1000", "CALU(Tr=8)") {
		t.Error("MKL should win at n=1000")
	}
	best10000 := 0.0
	for _, tr := range []string{"CALU(Tr=1)", "CALU(Tr=2)", "CALU(Tr=4)", "CALU(Tr=8)"} {
		if v := get(t, tb, "m=n=10000", tr); v > best10000 {
			best10000 = v
		}
	}
	if best10000 < get(t, tb, "m=n=10000", "MKL")*0.95 {
		t.Errorf("best CALU %f should be competitive with MKL %f at n=10000",
			best10000, get(t, tb, "m=n=10000", "MKL"))
	}
	for _, n := range []string{"m=n=4000", "m=n=5000", "m=n=10000"} {
		if get(t, tb, n, "CALU(Tr=2)") <= get(t, tb, n, "PLASMA") {
			t.Errorf("%s: CALU should beat PLASMA", n)
		}
	}
}

// TestTable2Shape checks the AMD square-matrix crossover: ACML wins small,
// CALU overtakes by n=3000-5000, CALU above PLASMA throughout.
func TestTable2Shape(t *testing.T) {
	tb := runModeled(t, "table2")
	bestCALU := func(label string) float64 {
		best := 0.0
		for _, tr := range []string{"CALU(Tr=1)", "CALU(Tr=2)", "CALU(Tr=4)", "CALU(Tr=8)", "CALU(Tr=16)"} {
			if v := get(t, tb, label, tr); v > best {
				best = v
			}
		}
		return best
	}
	if bestCALU("m=n=5000") <= get(t, tb, "m=n=5000", "ACML") {
		t.Error("CALU should overtake ACML by n=5000")
	}
	for _, n := range []string{"m=n=2000", "m=n=3000", "m=n=5000"} {
		if bestCALU(n) <= get(t, tb, n, "PLASMA") {
			t.Errorf("%s: CALU should be above PLASMA", n)
		}
	}
}

// TestFig8Shape checks the QR claims: TSQR dominates everything for small
// n; PLASMA overtakes as n grows; dgeqr2 is far below.
func TestFig8Shape(t *testing.T) {
	tb := runModeled(t, "fig8")
	for _, n := range []string{"100000x10", "100000x100", "100000x200"} {
		tsqr := get(t, tb, n, "TSQR")
		for _, other := range []string{"dgeqrf", "dgeqr2", "PLASMA"} {
			if tsqr <= get(t, tb, n, other) {
				t.Errorf("%s: TSQR %f not above %s %f", n, tsqr, other, get(t, tb, n, other))
			}
		}
	}
	// Paper: TSQR ~5.3x dgeqrf at n=200.
	ratio := get(t, tb, "100000x200", "TSQR") / get(t, tb, "100000x200", "dgeqrf")
	if ratio < 2.5 || ratio > 10 {
		t.Errorf("TSQR/dgeqrf at n=200 = %f, paper reports 5.3x", ratio)
	}
	// Paper: PLASMA overtakes TSQR by n=1000.
	if get(t, tb, "100000x1000", "PLASMA") <= get(t, tb, "100000x1000", "TSQR") {
		t.Error("PLASMA should overtake TSQR at n=1000")
	}
	// CAQR beats plain dgeqrf at n=500..1000 (paper: ~1.6x).
	if get(t, tb, "100000x500", "CAQR(Tr=4)") <= get(t, tb, "100000x500", "dgeqrf") {
		t.Error("CAQR should beat dgeqrf at n=500")
	}
}

// TestTable3Shape checks square QR: MKL above CAQR, PLASMA between.
func TestTable3Shape(t *testing.T) {
	tb := runModeled(t, "table3")
	for _, n := range []string{"m=n=1000", "m=n=3000", "m=n=5000"} {
		mkl := get(t, tb, n, "MKL")
		caqr := get(t, tb, n, "CAQR(Tr=4)")
		if mkl <= caqr {
			t.Errorf("%s: MKL %f should beat CAQR %f on square QR", n, mkl, caqr)
		}
	}
}

// TestFig3Fig4Shape checks the trace experiments: Tr=1 idles, Tr=8 does not.
func TestFig3Fig4Shape(t *testing.T) {
	idle1 := get(t, runModeled(t, "fig3"), "share", "idle")
	idle8 := get(t, runModeled(t, "fig4"), "share", "idle")
	if idle8 >= idle1 {
		t.Errorf("fig4 idle %f not below fig3 idle %f", idle8, idle1)
	}
	if idle1 < 0.15 {
		t.Errorf("fig3 idle %f too low for a serialized panel", idle1)
	}
}

// TestStabilityShape: CALU growth within an order of magnitude of GEPP.
func TestStabilityShape(t *testing.T) {
	tb := runModeled(t, "stability")
	for _, r := range tb.Rows {
		gepp, calu := r.Values["GEPP"], r.Values["CALU"]
		if calu > 20*gepp+10 {
			t.Errorf("%s: CALU growth %f far above GEPP %f", r.Label, calu, gepp)
		}
		if resid := r.Values["CALUresid*1e16"]; resid > 1e4 {
			t.Errorf("%s: CALU residual %g*1e-16 too large", r.Label, resid)
		}
	}
}

// TestAblationShapes: sanity directions for the ablations.
func TestAblationShapes(t *testing.T) {
	tr := runModeled(t, "ablation-tr")
	// On the tall 1e6x100 shape, Tr=8 should beat Tr=1 decisively.
	if get(t, tr, "tall 1e6x100", "Tr=8") <= 2*get(t, tr, "tall 1e6x100", "Tr=1") {
		t.Error("Tr=8 should be >2x Tr=1 on very tall-skinny")
	}
	la := runModeled(t, "ablation-lookahead")
	// Look-ahead should never lose badly, and should help on tall shapes.
	for _, r := range la.Rows {
		if r.Values["lookahead"] < 0.9*r.Values["no-lookahead"] {
			t.Errorf("%s: look-ahead hurt: %f vs %f", r.Label, r.Values["lookahead"], r.Values["no-lookahead"])
		}
	}
	sync := runModeled(t, "ablation-sync")
	if len(sync.Rows) == 0 {
		t.Fatal("ablation-sync empty")
	}
}

func TestCommShape(t *testing.T) {
	tb := runModeled(t, "comm")
	for _, r := range tb.Rows {
		if r.Values["panel-syncs-binary"] >= r.Values["panel-syncs-classic"] {
			t.Errorf("%s: binary tree syncs not below classic", r.Label)
		}
		if r.Values["span-Mflops-CALU"] >= r.Values["span-Mflops-vendor"] {
			t.Errorf("%s: CALU span not below vendor", r.Label)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{
		ID: "x", Columns: []string{"a", "b"},
		Rows: []RowData{{Label: "r1", Values: map[string]float64{"a": 1.5}}},
	}
	var sb strings.Builder
	tb.WriteCSV(&sb)
	want := "label,a,b\nr1,1.5,\n"
	if sb.String() != want {
		t.Fatalf("csv = %q want %q", sb.String(), want)
	}
}

func TestDistShape(t *testing.T) {
	tb := runModeled(t, "dist")
	for _, r := range tb.Rows {
		if r.Values["TSLU"] >= r.Values["GEPP"] {
			t.Errorf("%s: TSLU messages not below GEPP", r.Label)
		}
		if r.Values["GEPP/TSLU"] < 10 {
			t.Errorf("%s: message reduction only %.1fx", r.Label, r.Values["GEPP/TSLU"])
		}
	}
}

func TestStabilitySweepShape(t *testing.T) {
	tb := runModeled(t, "stability-sweep")
	for _, r := range tb.Rows {
		if r.Values["ratio-mean"] > 3 || r.Values["ratio-mean"] < 0.3 {
			t.Errorf("%s: CALU/GEPP mean growth ratio %.2f out of band", r.Label, r.Values["ratio-mean"])
		}
		if r.Values["CALU-max"] > 20*r.Values["GEPP-max"] {
			t.Errorf("%s: CALU max growth far beyond GEPP", r.Label)
		}
	}
}

// TestMeasuredModeSmoke exercises the real-execution path of the harness
// (the one `cabench -measured` uses) on the fastest experiments.
func TestMeasuredModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("measured mode is slow")
	}
	for _, id := range []string{"fig3", "stability", "ablation-sync", "dist"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tb := e.Run(Config{Mode: Measured, Workers: 2})
		if len(tb.Rows) == 0 {
			t.Errorf("%s measured: empty table", id)
		}
	}
}

func TestOOCShape(t *testing.T) {
	tb := runModeled(t, "ooc")
	for _, r := range tb.Rows {
		if r.Values["GEPP/TSLU"] < 50 {
			t.Errorf("%s: I/O gap only %.1fx, want ~b", r.Label, r.Values["GEPP/TSLU"])
		}
		if !(r.Values["TSLU-flat"] < r.Values["GEPP-blocked(nb=25)"] &&
			r.Values["GEPP-blocked(nb=25)"] < r.Values["GEPP-columns"]) {
			t.Errorf("%s: traffic ordering wrong", r.Label)
		}
	}
}

func TestScalingShape(t *testing.T) {
	tb := runModeled(t, "scaling")
	tall1 := get(t, tb, "cores=1", "CALU-tall")
	tall8 := get(t, tb, "cores=8", "CALU-tall")
	if tall8 < 6*tall1 {
		t.Errorf("CALU tall-skinny scaling 1->8 cores only %.1fx", tall8/tall1)
	}
	v1 := get(t, tb, "cores=1", "vendor-tall")
	v8 := get(t, tb, "cores=8", "vendor-tall")
	if v8 > 1.5*v1 {
		t.Errorf("vendor tall-skinny should plateau: %.1f -> %.1f", v1, v8)
	}
}

func TestParityShape(t *testing.T) {
	tb := runModeled(t, "parity")
	var mean float64
	found := false
	for _, r := range tb.Rows {
		if r.Label == "MEAN" {
			mean = r.Values["rel-dev"]
			found = true
		}
	}
	if !found {
		t.Fatal("no MEAN row")
	}
	// The model should track the paper within a mean relative deviation of
	// ~35% across Tables I-III (calibrated on 4 anchors only).
	if mean > 0.35 {
		t.Errorf("mean relative deviation %.2f too large", mean)
	}
}
