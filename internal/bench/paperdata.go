package bench

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/simsched"
	"repro/internal/tiled"
	"repro/internal/tslu"
)

// The paper's published numbers (GFlop/s), transcribed from Tables I-III.
// These are the quantitative ground truth the calibrated model is judged
// against; the parity experiment prints model-vs-paper side by side.

// paperTable1 is Table I: LU of square matrices on the 8-core Intel
// machine. Columns: MKL dgetrf, PLASMA dgetrf, CALU Tr=1, 2, 4, 8.
var paperTable1 = map[int][6]float64{
	1000:  {38.4, 17.8, 15.7, 15.5, 15.1, 13.6},
	2000:  {45.3, 32.6, 26.5, 31.2, 32.9, 30.3},
	3000:  {48.8, 38.8, 33.7, 43.2, 43.6, 40.7},
	4000:  {53.1, 42.5, 38.9, 50.5, 49.9, 47.5},
	5000:  {55.6, 42.3, 42.1, 54.2, 54.1, 51.7},
	10000: {61.39, 48.3, 52.3, 63.5, 62.7, 61.4},
}

// paperTable2 is Table II: LU of square matrices on the 16-core AMD
// machine. Columns: ACML dgetrf, PLASMA dgetrf, CALU Tr=1, 2, 4, 8, 16.
var paperTable2 = map[int][7]float64{
	1000: {16.2, 10.0, 10.8, 10.4, 10.2, 11.5, 11.8},
	2000: {29.6, 25.9, 21.3, 22.6, 28.3, 26.8, 22.1},
	3000: {31.0, 32.2, 27.8, 30.5, 34.4, 34.3, 28.9},
	4000: {26.3, 35.2, 34.5, 36.4, 37.9, 37.8, 34.1},
	5000: {26.8, 38.0, 38.6, 39.5, 39.7, 39.2, 38.9},
}

// paperTable3 is Table III: QR of square matrices on the 8-core Intel
// machine. Columns: MKL dgeqrf, PLASMA dgeqrf, CAQR Tr=1, 2, 4, 8.
var paperTable3 = map[int][6]float64{
	1000: {41.0, 27.3, 4.3, 11.8, 22.6, 17.6},
	2000: {52.1, 41.3, 26.2, 33.3, 37.5, 37.5},
	3000: {50.3, 46.5, 22.1, 40.2, 43.1, 40.9},
	4000: {49.4, 48.4, 38.1, 45.0, 46.0, 44.8},
	5000: {54.5, 49.5, 40.9, 46.7, 47.7, 46.7},
}

// parityExperiment prints the modeled GFlop/s against the paper's published
// numbers for Tables I-III and reports per-table mean relative deviation.
func parityExperiment(cfg Config) *Table {
	t := &Table{
		ID:       "parity",
		Title:    "Model vs paper: published GFlop/s side by side",
		PaperRef: "Tables I-III",
		Unit:     "GFlop/s (paper -> model), deviation as fraction",
		Columns:  []string{"paper", "model", "rel-dev"},
	}
	type point struct {
		label string
		paper float64
		model func() float64
	}
	intel := machine.Intel8()
	amd := machine.AMD16()
	var points []point
	addLU := func(label string, n int, paper float64, tr int, mach *machine.Model, vendor bool, vendorCores int) {
		points = append(points, point{label, paper, func() float64 {
			canon := baseline.LUFlops(n, n)
			if vendor {
				return simsched.Run(baseline.BuildGETRFGraph(n, n, vendorNB, vendorCores), mach).GFlops(canon)
			}
			opt := core.Options{BlockSize: paperBlock, PanelThreads: tr, Tree: tslu.Binary, Lookahead: true}
			return caluModelGF(n, n, opt, mach)
		}})
	}
	// A representative subset of each table (full sweeps are table1-3).
	for _, n := range []int{1000, 5000, 10000} {
		addLU("T1 MKL n="+itoa(n), n, paperTable1[n][0], 0, intel, true, intel.Cores)
		addLU("T1 CALU2 n="+itoa(n), n, paperTable1[n][3], 2, intel, false, 0)
	}
	for _, n := range []int{1000, 3000, 5000} {
		addLU("T2 ACML n="+itoa(n), n, paperTable2[n][0], 0, amd, true, acmlCores)
		addLU("T2 CALU4 n="+itoa(n), n, paperTable2[n][4], 4, amd, false, 0)
	}
	for _, n := range []int{1000, 3000, 5000} {
		n := n
		points = append(points, point{"T3 PLASMA n=" + itoa(n), paperTable3[n][1], func() float64 {
			canon := baseline.QRFlops(n, n)
			return simsched.Run(tiled.BuildGEQRFGraph(n, n, tiled.Options{TileSize: plasmaTile, Workers: intel.Cores}), intel).GFlops(canon)
		}})
		points = append(points, point{"T3 CAQR4 n=" + itoa(n), paperTable3[n][4], func() float64 {
			opt := core.Options{BlockSize: paperBlock, PanelThreads: 4, Tree: tslu.Flat, Lookahead: true}
			return caqrModelGF(n, n, opt, intel)
		}})
	}
	totalDev := 0.0
	for _, pt := range points {
		progress(cfg, "parity: %s", pt.label)
		m := pt.model()
		dev := math.Abs(m-pt.paper) / pt.paper
		totalDev += dev
		t.Rows = append(t.Rows, RowData{Label: pt.label, Values: map[string]float64{
			"paper": pt.paper, "model": m, "rel-dev": dev,
		}})
	}
	t.Rows = append(t.Rows, RowData{Label: "MEAN", Values: map[string]float64{
		"rel-dev": totalDev / float64(len(points)),
	}})
	t.Notes = "Published values transcribed from the paper's Tables I-III. The model is calibrated on four anchors only (see internal/machine); everything else is prediction."
	return t
}

func init() {
	register(Experiment{
		ID:       "parity",
		Title:    "model vs published numbers, side by side",
		PaperRef: "Tables I-III",
		Run:      parityExperiment,
	})
}
