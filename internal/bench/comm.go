package bench

import (
	"repro/internal/baseline"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/tslu"
)

// commExperiment tabulates the synchronization and critical-path structure
// behind the paper's Sections I-II: per-panel synchronization counts for
// classic vs ca-pivoting, and graph-derived span/parallelism for the full
// factorizations.
func commExperiment(cfg Config) *Table {
	t := &Table{
		ID:       "comm",
		Title:    "Synchronization and critical-path structure, CALU vs classic",
		PaperRef: "Sections I-II",
		Unit:     "counts (syncs, tasks) and flops (span)",
		Columns: []string{
			"panel-syncs-classic", "panel-syncs-binary", "panel-syncs-flat", "panel-syncs-hybrid",
			"span-Mflops-CALU", "span-Mflops-vendor", "parallelism-CALU", "parallelism-vendor",
		},
	}
	for _, s := range ablationShapes(cfg) {
		progress(cfg, "comm: %s", s.label)
		b := paperB(s.n)
		caluM := comm.Analyze(core.BuildCALUGraph(s.m, s.n, core.Options{
			BlockSize: b, PanelThreads: 8, Lookahead: true,
		}))
		vendorM := comm.Analyze(baseline.BuildGETRFGraph(s.m, s.n, vendorNB, 8))
		t.Rows = append(t.Rows, RowData{Label: s.label, Values: map[string]float64{
			"panel-syncs-classic": float64(comm.PanelSyncs(b, 8, tslu.Binary, true)),
			"panel-syncs-binary":  float64(comm.PanelSyncs(b, 8, tslu.Binary, false)),
			"panel-syncs-flat":    float64(comm.PanelSyncs(b, 8, tslu.Flat, false)),
			"panel-syncs-hybrid":  float64(comm.PanelSyncs(b, 8, tslu.Hybrid, false)),
			"span-Mflops-CALU":    caluM.SpanFlops / 1e6,
			"span-Mflops-vendor":  vendorM.SpanFlops / 1e6,
			"parallelism-CALU":    caluM.MaxParallelism,
			"parallelism-vendor":  vendorM.MaxParallelism,
		}})
	}
	t.Notes = "Panel syncs: classic GEPP synchronizes once per column (b); ca-pivoting once per tree level (log2 Tr binary, 1 flat). Span and parallelism come from the actual task graphs (Brent bound)."
	return t
}

func init() {
	register(Experiment{
		ID:       "comm",
		Title:    "synchronization structure and critical paths",
		PaperRef: "Sections I-II",
		Run:      commExperiment,
	})
}
