package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/stability"
	"repro/internal/tiled"
)

// stabilityExperiment backs the paper's Section II claim (via [12]) that
// ca-pivoting is as stable as partial pivoting in practice: growth factors
// of GEPP, CALU and tiled (incremental-pivoting) LU across matrix classes.
// It always executes real factorizations; Mode only affects sizes.
func stabilityExperiment(cfg Config) *Table {
	n := 256
	if cfg.Mode == Measured {
		n = 128
	}
	t := &Table{
		ID:       "stability",
		Title:    "LU growth factors across matrix classes",
		PaperRef: "Section II stability discussion",
		Unit:     "growth (gepp/calu/tiled), residual x 1e16 (calu)",
		Columns:  []string{"GEPP", "CALU", "Tiled", "CALUresid*1e16"},
	}
	classes := []struct {
		name string
		gen  func() *matrix.Dense
	}{
		{"random-uniform", func() *matrix.Dense { return matrix.Random(n, n, 1) }},
		{"random-normal", func() *matrix.Dense { return matrix.RandomNormal(n, n, 2) }},
		{"graded", func() *matrix.Dense { return matrix.Graded(n, n, 1.1, 3) }},
		{"near-singular", func() *matrix.Dense { return matrix.NearSingular(n, n, 1e-6, 4) }},
		{"orthogonal-ish", func() *matrix.Dense { return matrix.Orthogonalish(n, n, 5) }},
		{"diag-dominant", func() *matrix.Dense { return matrix.DiagonallyDominant(n, 6) }},
	}
	opt := core.Options{BlockSize: 32, PanelThreads: 4, Workers: workersOrCPU(cfg), Lookahead: true}
	for _, c := range classes {
		progress(cfg, "stability: %s n=%d", c.name, n)
		a := c.gen()
		ref := stability.MeasureGEPP(a)
		calu, err := stability.MeasureCALU(a, opt)
		if err != nil {
			panic(err)
		}
		lu, err := tiled.GETRF(a.Clone(), tiled.Options{TileSize: 32, Workers: opt.Workers})
		if err != nil {
			panic(err)
		}
		maxU := 0.0
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				maxU = math.Max(maxU, math.Abs(lu.A.At(i, j)))
			}
		}
		t.Rows = append(t.Rows, RowData{Label: c.name, Values: map[string]float64{
			"GEPP":           ref.Growth,
			"CALU":           calu.Growth,
			"Tiled":          maxU / a.MaxAbs(),
			"CALUresid*1e16": calu.Residual * 1e16,
		}})
	}
	t.Notes = "CALU growth tracking GEPP across classes reproduces the ca-pivoting stability claim; tiled LU uses incremental pivoting (no global P), whose growth is known to be weaker in adversarial cases."
	return t
}

func init() {
	register(Experiment{
		ID:       "stability",
		Title:    "ca-pivoting stability vs GEPP and incremental pivoting",
		PaperRef: "Section II",
		Run:      stabilityExperiment,
	})
}

// stabilitySweep reproduces the experimental methodology behind the
// paper's stability citation [12] (Grigori, Demmel, Xiang): many random
// samples, comparing the distribution of growth factors between partial
// pivoting and tournament pivoting across Tr. Reported are the mean and
// max growth over the sample set.
func stabilitySweep(cfg Config) *Table {
	n, samples := 96, 12
	if cfg.Mode == Measured {
		n, samples = 64, 6
	}
	t := &Table{
		ID:       "stability-sweep",
		Title:    "Growth-factor distribution: GEPP vs CALU across Tr",
		PaperRef: "Section II (methodology of [12])",
		Unit:     "growth factor over random N(0,1) samples",
		Columns:  []string{"GEPP-mean", "GEPP-max", "CALU-mean", "CALU-max", "ratio-mean"},
	}
	for _, tr := range []int{2, 4, 8, 16} {
		progress(cfg, "stability-sweep: Tr=%d", tr)
		var geppSum, geppMax, caluSum, caluMax float64
		for s := 0; s < samples; s++ {
			a := matrix.RandomNormal(n, n, int64(tr*1000+s))
			ref := stability.MeasureGEPP(a)
			got, err := stability.MeasureCALU(a, core.Options{
				BlockSize: 16, PanelThreads: tr, Workers: workersOrCPU(cfg), Lookahead: true,
			})
			if err != nil {
				panic(err)
			}
			geppSum += ref.Growth
			caluSum += got.Growth
			geppMax = math.Max(geppMax, ref.Growth)
			caluMax = math.Max(caluMax, got.Growth)
		}
		t.Rows = append(t.Rows, RowData{Label: "Tr=" + itoa(tr), Values: map[string]float64{
			"GEPP-mean":  geppSum / float64(samples),
			"GEPP-max":   geppMax,
			"CALU-mean":  caluSum / float64(samples),
			"CALU-max":   caluMax,
			"ratio-mean": caluSum / geppSum,
		}})
	}
	t.Notes = "Tournament pivoting's growth stays within a small constant of partial pivoting's across the whole Tr range — the paper's 'as stable in practice' claim, sampled."
	return t
}

func init() {
	register(Experiment{
		ID:       "stability-sweep",
		Title:    "growth-factor distributions, GEPP vs CALU",
		PaperRef: "Section II",
		Run:      stabilitySweep,
	})
}
