package lapack

import (
	"errors"
	"testing"

	"repro/internal/matrix"
)

// TestShapePanicIsTyped pins the error contract calint enforces: an
// argument-validation panic must carry ErrShape so errors.Is keeps
// working after the scheduler's recover path converts it into an error.
func TestShapePanicIsTyped(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a shape panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value is %T, want error", r)
		}
		if !errors.Is(err, ErrShape) {
			t.Fatalf("errors.Is(%v, ErrShape) = false", err)
		}
	}()
	lu := matrix.New(3, 4) // not square: LUSolve must reject it
	LUSolve(lu, []int{0, 1, 2}, matrix.New(3, 1))
}
