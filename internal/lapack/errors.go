package lapack

import "errors"

// ErrShape is the typed sentinel carried by every argument-validation
// panic in this package (the xerbla analogue). Panicking with
// fmt.Errorf("%w: ...", ErrShape, ...) keeps errors.Is(err, lapack.ErrShape)
// working after the scheduler's recover path converts a task panic into a
// submission error.
var ErrShape = errors.New("lapack: invalid argument")
