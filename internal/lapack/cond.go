package lapack

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// OneNormEst estimates the 1-norm of an implicit n x n operator B given
// only matrix-vector products with B and B^T, using Hager's algorithm (the
// method behind LAPACK's dlacon). apply and applyT overwrite their argument
// with B*x and B^T*x respectively. The estimate is a lower bound that is
// almost always within a small factor of the true norm.
func OneNormEst(n int, apply, applyT func(x []float64)) float64 {
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	apply(x)
	est := norm1(x)
	if n == 1 {
		return est
	}
	xi := make([]float64, n)
	for iter := 0; iter < 5; iter++ {
		for i, v := range x {
			if v >= 0 {
				xi[i] = 1
			} else {
				xi[i] = -1
			}
		}
		z := make([]float64, n)
		copy(z, xi)
		applyT(z)
		j, zmax := 0, 0.0
		for i, v := range z {
			if a := math.Abs(v); a > zmax {
				j, zmax = i, a
			}
		}
		// Convergence: the new direction is no better than the current one.
		dot := 0.0
		for i := range z {
			dot += z[i] * x[i]
		}
		if zmax <= math.Abs(dot) {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
		apply(x)
		newEst := norm1(x)
		if newEst <= est {
			break
		}
		est = newEst
	}
	return est
}

func norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// LUSolveTranspose solves A^T * x = b given the in-place factorization
// produced by GETF2/RGETF2/GETRF: A = P^T L U, so A^T = U^T L^T P and
// x = P^T (L^T)^{-1} (U^T)^{-1} b. b is overwritten with the solution.
func LUSolveTranspose(lu *matrix.Dense, ipiv []int, b *matrix.Dense) {
	if lu.Rows != lu.Cols {
		panic(fmt.Errorf("%w: LUSolveTranspose needs square factor", ErrShape))
	}
	if b.Rows != lu.Rows {
		panic(fmt.Errorf("%w: LUSolveTranspose rhs rows mismatch", ErrShape))
	}
	// U^T is lower triangular: forward substitution with Trans.
	trsmT(lu, b, true)
	trsmT(lu, b, false)
	LASWPBackward(b, ipiv, 0, len(ipiv))
}

// trsmT applies (U^T)^{-1} (upper=true) or (L^T)^{-1} (upper=false) using
// the packed LU factor.
func trsmT(lu *matrix.Dense, b *matrix.Dense, upper bool) {
	n := lu.Rows
	for col := 0; col < b.Cols; col++ {
		x := b.Col(col)
		if upper {
			// Solve U^T y = x: U^T is lower triangular with U's diagonal.
			for i := 0; i < n; i++ {
				sum := x[i]
				for k := 0; k < i; k++ {
					sum -= lu.At(k, i) * x[k]
				}
				x[i] = sum / lu.At(i, i)
			}
		} else {
			// Solve L^T y = x: L^T is unit upper triangular with entries
			// L^T(i, k) = L(k, i) for k > i.
			for i := n - 1; i >= 0; i-- {
				sum := x[i]
				for k := i + 1; k < n; k++ {
					sum -= lu.At(k, i) * x[k]
				}
				x[i] = sum
			}
		}
	}
}

// GECON estimates the reciprocal 1-norm condition number of a square matrix
// from its LU factorization and the 1-norm of the original matrix, like
// LAPACK dgecon: rcond = 1 / (||A||_1 * est(||A^{-1}||_1)). Returns 0 for a
// singular or numerically singular factor.
func GECON(lu *matrix.Dense, ipiv []int, anorm float64) float64 {
	n := lu.Rows
	for i := 0; i < n; i++ {
		if lu.At(i, i) == 0 {
			return 0
		}
	}
	if anorm == 0 {
		return 0
	}
	buf := matrix.New(n, 1)
	invNorm := OneNormEst(n,
		func(x []float64) {
			copy(buf.Col(0), x)
			LUSolve(lu, ipiv, buf)
			copy(x, buf.Col(0))
		},
		func(x []float64) {
			copy(buf.Col(0), x)
			LUSolveTranspose(lu, ipiv, buf)
			copy(x, buf.Col(0))
		})
	if invNorm == 0 || math.IsInf(invNorm, 0) || math.IsNaN(invNorm) {
		return 0
	}
	return 1 / (anorm * invNorm)
}
