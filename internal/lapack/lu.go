// Package lapack implements the LAPACK-style factorization kernels the
// communication-avoiding algorithms are built from: unblocked, blocked and
// recursive LU with partial pivoting, and unblocked, blocked and recursive
// Householder QR with compact-WY block reflectors.
//
// The routines mirror their LAPACK namesakes (GETF2, GETRF, LASWP, GEQR2,
// GEQRF, LARFT, LARFB, ...) so the higher-level algorithm code reads like
// the paper's pseudo-code. All matrices are column-major *matrix.Dense
// values; factorizations are in place.
package lapack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// ErrSingular is reported when a factorization encounters an exactly zero
// pivot. The factorization is still completed as far as possible, matching
// LAPACK's INFO > 0 convention.
var ErrSingular = errors.New("lapack: matrix is exactly singular")

// GETF2 computes the LU factorization with partial pivoting of the m x n
// matrix a using unblocked BLAS-2 operations (the algorithm behind the
// paper's MKL_dgetf2 baseline). On return a holds L (unit lower, below the
// diagonal) and U; ipiv[k] records that row k was swapped with row ipiv[k]
// (0-based, ipiv[k] >= k). len(ipiv) must be min(m, n).
func GETF2(a *matrix.Dense, ipiv []int) error {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(ipiv) != k {
		panic(fmt.Errorf("%w: GETF2 ipiv length %d want %d", ErrShape, len(ipiv), k))
	}
	var err error
	for j := 0; j < k; j++ {
		// Find pivot in column j at or below the diagonal.
		col := a.Col(j)
		p := j + blas.Idamax(m-j, col[j:], 1)
		ipiv[j] = p
		if a.At(p, j) == 0 {
			err = ErrSingular
			continue
		}
		if p != j {
			a.SwapRows(j, p)
		}
		// Scale the sub-column to form L(j+1:m, j).
		blas.Dscal(m-j-1, 1/col[j], col[j+1:], 1)
		// Rank-1 update of the trailing submatrix.
		if j < n-1 {
			trail := a.View(j+1, j+1, m-j-1, n-j-1)
			blas.Dger(trail.Rows, trail.Cols, -1, col[j+1:], 1,
				a.Data[(j+1)*a.Stride+j:], a.Stride, trail.Data, trail.Stride)
		}
	}
	return err
}

// RGETF2 computes the same factorization as GETF2 using Toledo's recursive
// algorithm, which performs almost all of its flops in BLAS-3 calls. It is
// the "rgetf2" kernel the paper uses at the leaves of the TSLU reduction
// tree. Requirements and output convention match GETF2.
func RGETF2(a *matrix.Dense, ipiv []int) error {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(ipiv) != k {
		panic(fmt.Errorf("%w: RGETF2 ipiv length %d want %d", ErrShape, len(ipiv), k))
	}
	return rgetf2(a, ipiv)
}

func rgetf2(a *matrix.Dense, ipiv []int) error {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if k == 0 {
		return nil
	}
	if k == 1 || n == 1 {
		// Base case: a single column (or single row) — plain GEPP step.
		return GETF2(a, ipiv)
	}
	nl := k / 2
	var err error
	// Factor the left half recursively, keeping the first failure (LAPACK
	// info convention).
	left := a.View(0, 0, m, nl)
	if e := rgetf2(left, ipiv[:nl]); e != nil {
		err = e
	}
	// Apply the left half's interchanges to the right half.
	right := a.View(0, nl, m, n-nl)
	LASWP(right, ipiv[:nl], 0, nl)
	// U12 = L11^{-1} A12.
	a11 := a.View(0, 0, nl, nl)
	a12 := right.View(0, 0, nl, n-nl)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, a11, a12)
	// A22 -= L21 U12.
	a21 := a.View(nl, 0, m-nl, nl)
	a22 := right.View(nl, 0, m-nl, n-nl)
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, a21, a12, 1, a22)
	// Factor the trailing part recursively; an earlier failure wins.
	if e := rgetf2(a22, ipiv[nl:k]); e != nil && err == nil {
		err = e
	}
	// Fix up pivot indices and pull the interchanges back across the left
	// columns.
	for i := nl; i < k; i++ {
		ipiv[i] += nl
	}
	LASWP(a.View(0, 0, m, nl), ipiv[:k], nl, k)
	return err
}

// GETRF computes the LU factorization with partial pivoting of the m x n
// matrix a using the classic blocked right-looking algorithm with panel
// width nb (the algorithm behind the paper's MKL_dgetrf baseline, run
// sequentially). Output convention matches GETF2.
func GETRF(a *matrix.Dense, ipiv []int, nb int) error {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(ipiv) != k {
		panic(fmt.Errorf("%w: GETRF ipiv length %d want %d", ErrShape, len(ipiv), k))
	}
	if nb < 1 {
		panic(fmt.Errorf("%w: GETRF block size %d", ErrShape, nb))
	}
	var err error
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		// Factor the panel A[j:m, j:j+jb] with the recursive kernel,
		// keeping the first failure (LAPACK info convention).
		panel := a.View(j, j, m-j, jb)
		if e := RGETF2(panel, ipiv[j:j+jb]); e != nil && err == nil {
			err = e
		}
		// Globalize pivot indices.
		for i := j; i < j+jb; i++ {
			ipiv[i] += j
		}
		// Apply interchanges to the columns left of the panel...
		if j > 0 {
			LASWP(a.View(0, 0, m, j), ipiv[:j+jb], j, j+jb)
		}
		// ...and right of the panel.
		if j+jb < n {
			rest := a.View(0, j+jb, m, n-j-jb)
			LASWP(rest, ipiv[:j+jb], j, j+jb)
			// U12 = L11^{-1} A12.
			l11 := a.View(j, j, jb, jb)
			u12 := a.View(j, j+jb, jb, n-j-jb)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, u12)
			// A22 -= L21 U12.
			if j+jb < m {
				l21 := a.View(j+jb, j, m-j-jb, jb)
				a22 := a.View(j+jb, j+jb, m-j-jb, n-j-jb)
				blas.Gemm(blas.NoTrans, blas.NoTrans, -1, l21, u12, 1, a22)
			}
		}
	}
	return err
}

// LASWP applies the row interchanges recorded in ipiv[k1:k2] to a, in
// forward order: for k = k1..k2-1, swap rows k and ipiv[k]. Indices in ipiv
// are absolute row indices of a.
func LASWP(a *matrix.Dense, ipiv []int, k1, k2 int) {
	if k1 < 0 || k2 > len(ipiv) || k1 > k2 {
		panic(fmt.Errorf("%w: LASWP range [%d, %d) of %d", ErrShape, k1, k2, len(ipiv)))
	}
	for k := k1; k < k2; k++ {
		if p := ipiv[k]; p != k {
			a.SwapRows(k, p)
		}
	}
}

// LASWPBackward applies the interchanges in reverse order, undoing a prior
// LASWP with the same arguments.
func LASWPBackward(a *matrix.Dense, ipiv []int, k1, k2 int) {
	if k1 < 0 || k2 > len(ipiv) || k1 > k2 {
		panic(fmt.Errorf("%w: LASWPBackward range [%d, %d) of %d", ErrShape, k1, k2, len(ipiv)))
	}
	for k := k2 - 1; k >= k1; k-- {
		if p := ipiv[k]; p != k {
			a.SwapRows(k, p)
		}
	}
}

// IpivToPerm converts a LAPACK-style interchange vector into an explicit
// row permutation p of length m such that factored(i, :) == original(p[i], :).
func IpivToPerm(ipiv []int, m int) []int {
	p := make([]int, m)
	for i := range p {
		p[i] = i
	}
	for k, pk := range ipiv {
		p[k], p[pk] = p[pk], p[k]
	}
	return p
}

// LUSolve solves A*x = b given the in-place LU factorization lu and pivot
// vector ipiv produced by GETF2/RGETF2/GETRF on a square matrix. b is
// overwritten with the solution; it must have lu.Rows rows.
func LUSolve(lu *matrix.Dense, ipiv []int, b *matrix.Dense) {
	if lu.Rows != lu.Cols {
		panic(fmt.Errorf("%w: LUSolve needs square factor, got %dx%d", ErrShape, lu.Rows, lu.Cols))
	}
	if b.Rows != lu.Rows {
		panic(fmt.Errorf("%w: LUSolve rhs rows %d want %d", ErrShape, b.Rows, lu.Rows))
	}
	LASWP(b, ipiv, 0, len(ipiv))
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, lu, b)
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, lu, b)
}

// ExtractLU splits an in-place LU factor into explicit L (m x k, unit
// diagonal) and U (k x n) matrices, k = min(m, n). Useful for verification.
func ExtractLU(a *matrix.Dense) (l, u *matrix.Dense) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	l = matrix.New(m, k)
	u = matrix.New(k, n)
	for j := 0; j < k; j++ {
		l.Set(j, j, 1)
		for i := j + 1; i < m; i++ {
			l.Set(i, j, a.At(i, j))
		}
	}
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			u.Set(i, j, a.At(i, j))
		}
	}
	return l, u
}

// GrowthFactor returns the element growth max|U| / max|A| of an in-place LU
// factorization relative to the original matrix orig. It is the quantity the
// paper's stability discussion (via [12]) is about.
func GrowthFactor(lu *matrix.Dense, orig *matrix.Dense) float64 {
	maxA := orig.MaxAbs()
	if maxA == 0 {
		return 0
	}
	return MaxUpper(lu) / maxA
}

// MaxUpper returns max|U|: the largest magnitude on or above the diagonal
// of an in-place LU factor. It is the single source of the numerator in
// every growth computation — GrowthFactor, stability.Growth and the CALU
// runtime guardrail all divide it by a max|A|.
func MaxUpper(lu *matrix.Dense) float64 {
	k := min(lu.Rows, lu.Cols)
	maxU := 0.0
	for i := 0; i < k; i++ {
		for j := i; j < lu.Cols; j++ {
			if v := math.Abs(lu.At(i, j)); v > maxU {
				maxU = v
			}
		}
	}
	return maxU
}

// GETRI computes the inverse of a square matrix from its in-place LU
// factorization and pivot vector (as produced by GETF2/RGETF2/GETRF),
// LAPACK-style: it solves A * X = I block-column by block-column. Returns a
// fresh n x n matrix; the factor is left untouched.
func GETRI(lu *matrix.Dense, ipiv []int) *matrix.Dense {
	n := lu.Rows
	if n != lu.Cols {
		panic(fmt.Errorf("%w: GETRI needs square factor, got %dx%d", ErrShape, n, lu.Cols))
	}
	inv := matrix.Identity(n)
	const nb = 32
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		cols := inv.View(0, j, n, jb)
		LUSolve(lu, ipiv, cols)
	}
	return inv
}
