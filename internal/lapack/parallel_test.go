package lapack

import (
	"errors"
	"testing"

	"repro/internal/matrix"
)

// TestPGETRFReportsFirstSingularPanel is the regression test for the
// info-convention bug: PGETRF used to overwrite an early panel's
// singularity error with a later panel's, so callers saw the LAST failure
// instead of the first. Build a matrix whose column 0 (panel 0) and column
// 6 (panel 1 with nb=4) are both exactly zero: both panels report
// ErrSingular, and the error surfaced must point at panel 0.
func TestPGETRFReportsFirstSingularPanel(t *testing.T) {
	const n, nb = 12, 4
	a := matrix.Random(n, n, 31)
	for i := 0; i < n; i++ {
		a.Set(i, 0, 0) // first singular pivot in panel 0
		a.Set(i, 6, 0) // second singular panel later (column 6 stays zero
		// through the updates: its U12 entry is Trsm of a zero column and
		// the GEMM update adds L21 times that zero)
	}
	ipiv := make([]int, n)
	err := PGETRF(a, ipiv, nb, 2)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("PGETRF = %v, want wrapped ErrSingular", err)
	}
	var pe *PanelError
	if !errors.As(err, &pe) {
		t.Fatalf("PGETRF error %T does not carry panel info", err)
	}
	if pe.Col != 0 {
		t.Fatalf("PGETRF reported panel at column %d, want 0 (first failure)", pe.Col)
	}
}

// TestPGETRFSingularStillFactorsRest mirrors LAPACK's INFO > 0 contract:
// the factorization completes as far as possible despite the zero pivot.
func TestPGETRFSingularStillFactorsRest(t *testing.T) {
	const n, nb = 8, 4
	a := matrix.Random(n, n, 33)
	for i := 0; i < n; i++ {
		a.Set(i, 2, 0)
	}
	ref := a.Clone()
	ipiv := make([]int, n)
	piv := make([]int, n)
	if err := PGETRF(a, ipiv, nb, 3); !errors.Is(err, ErrSingular) {
		t.Fatalf("PGETRF = %v, want ErrSingular", err)
	}
	if err := GETRF(ref, piv, nb); !errors.Is(err, ErrSingular) {
		t.Fatalf("GETRF = %v, want ErrSingular", err)
	}
	if !a.EqualApprox(ref, 1e-13) {
		t.Fatal("PGETRF factors diverge from GETRF on a singular matrix")
	}
}
