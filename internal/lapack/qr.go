package lapack

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Larfg generates an elementary Householder reflector H = I - tau*v*v^T
// with v[0] = 1 such that H * [alpha; x] = [beta; 0]. It returns beta and
// tau and overwrites x with the tail of v. When x is already zero it returns
// tau = 0 (H = I), matching LAPACK dlarfg.
func Larfg(alpha float64, x []float64) (beta, tau float64) {
	xnorm := blas.Dnrm2(len(x), x, 1)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -math.Copysign(dlapy2(alpha, xnorm), alpha)
	tau = (beta - alpha) / beta
	scale := 1 / (alpha - beta)
	blas.Dscal(len(x), scale, x, 1)
	return beta, tau
}

// dlapy2 returns sqrt(x^2 + y^2) without intermediate overflow.
func dlapy2(x, y float64) float64 {
	ax, ay := math.Abs(x), math.Abs(y)
	w, z := ax, ay
	if ay > ax {
		w, z = ay, ax
	}
	if z == 0 {
		return w
	}
	r := z / w
	return w * math.Sqrt(1+r*r)
}

// GEQR2 computes the unblocked Householder QR factorization of the m x n
// matrix a (the algorithm behind the paper's MKL_dgeqr2 baseline). On return
// the upper triangle holds R and the columns below the diagonal hold the
// reflector vectors; tau must have length min(m, n).
func GEQR2(a *matrix.Dense, tau []float64) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(tau) != k {
		panic(fmt.Errorf("%w: GEQR2 tau length %d want %d", ErrShape, len(tau), k))
	}
	work := make([]float64, n)
	for j := 0; j < k; j++ {
		col := a.Col(j)
		beta, t := Larfg(col[j], col[j+1:m])
		tau[j] = t
		col[j] = beta
		if j < n-1 && t != 0 {
			applyReflectorLeft(a, j, t, work)
		}
	}
}

// applyReflectorLeft applies H = I - tau*v*v^T (v stored in column j of a,
// rows j..m with implicit v[j] = 1) to a(j:m, j+1:n) from the left.
func applyReflectorLeft(a *matrix.Dense, j int, tau float64, work []float64) {
	m, n := a.Rows, a.Cols
	rows := m - j
	cols := n - j - 1
	v := a.Col(j)[j:m]
	save := v[0]
	v[0] = 1
	// work = A^T v ; A := A - tau * v * work^T
	sub := a.View(j, j+1, rows, cols)
	w := work[:cols]
	blas.Dgemv(blas.Trans, rows, cols, 1, sub.Data, sub.Stride, v, 1, 0, w, 1)
	blas.Dger(rows, cols, -tau, v, 1, w, 1, sub.Data, sub.Stride)
	v[0] = save
}

// Larft forms the upper-triangular block-reflector factor T of the compact
// WY representation Q = I - V*T*V^T from the k reflectors stored in the
// columns of v (m x k, unit lower trapezoidal, garbage above the diagonal
// ignored) and their scalars tau. t must be k x k and is overwritten.
// This is LAPACK dlarft with DIRECT='F', STOREV='C'.
func Larft(v *matrix.Dense, tau []float64, t *matrix.Dense) {
	m, k := v.Rows, v.Cols
	if t.Rows != k || t.Cols != k {
		panic(fmt.Errorf("%w: Larft T is %dx%d want %dx%d", ErrShape, t.Rows, t.Cols, k, k))
	}
	if len(tau) != k {
		panic(fmt.Errorf("%w: Larft tau length %d want %d", ErrShape, len(tau), k))
	}
	t.Zero()
	for i := 0; i < k; i++ {
		ti := tau[i]
		t.Set(i, i, ti)
		if i == 0 || ti == 0 {
			continue
		}
		// T(0:i, i) = -tau[i] * V(i:m, 0:i)^T * v_i, then T(0:i, i) =
		// T(0:i, 0:i) * T(0:i, i).
		tcol := t.Col(i)[:i]
		// v_i = [1; V(i+1:m, i)], V(i, 0:i) is a dense row.
		for j := 0; j < i; j++ {
			tcol[j] = -ti * v.At(i, j)
		}
		if i+1 < m {
			vsub := v.View(i+1, 0, m-i-1, i)
			vi := v.Col(i)[i+1 : m]
			blas.Dgemv(blas.Trans, m-i-1, i, -ti, vsub.Data, vsub.Stride, vi, 1, 1, tcol, 1)
		}
		blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t.Data, t.Stride, tcol, 1)
	}
}

// Larfb applies the compact-WY block reflector Q = I - V*T*V^T (or its
// transpose) to c from the left: c = op(Q) * c. v is m x k unit lower
// trapezoidal (entries on and above the diagonal are ignored), t is the
// k x k triangular factor from Larft, and c is m x n.
func Larfb(trans blas.Transpose, v, t, c *matrix.Dense) {
	m, k := v.Rows, v.Cols
	if c.Rows != m {
		panic(fmt.Errorf("%w: Larfb C rows %d want %d", ErrShape, c.Rows, m))
	}
	n := c.Cols
	if n == 0 || k == 0 {
		return
	}
	// W = V^T C = V1^T C1 + V2^T C2, with V1 the unit lower triangle.
	w := matrix.New(k, n)
	c1 := c.View(0, 0, k, n)
	w.CopyFrom(c1)
	v1 := v.View(0, 0, k, k)
	blas.Trmm(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, v1, w)
	if m > k {
		v2 := v.View(k, 0, m-k, k)
		c2 := c.View(k, 0, m-k, n)
		blas.Gemm(blas.Trans, blas.NoTrans, 1, v2, c2, 1, w)
	}
	// W = op(T)^T W — note Q = I - V T V^T so Q^T = I - V T^T V^T: applying
	// Q uses T, applying Q^T uses T^T.
	tOp := blas.NoTrans
	if trans == blas.Trans {
		tOp = blas.Trans
	}
	blas.Trmm(blas.Left, blas.Upper, tOp, blas.NonUnit, 1, t, w)
	// C = C - V W.
	if m > k {
		v2 := v.View(k, 0, m-k, k)
		c2 := c.View(k, 0, m-k, n)
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, v2, w, 1, c2)
	}
	blas.Trmm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, v1, w)
	for j := 0; j < n; j++ {
		cj := c1.Col(j)
		wj := w.Col(j)
		for i := range cj {
			cj[i] -= wj[i]
		}
	}
}

// GEQRF computes the blocked Householder QR factorization of a with panel
// width nb (the algorithm behind the paper's MKL_dgeqrf baseline, run
// sequentially). Output convention matches GEQR2.
func GEQRF(a *matrix.Dense, tau []float64, nb int) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(tau) != k {
		panic(fmt.Errorf("%w: GEQRF tau length %d want %d", ErrShape, len(tau), k))
	}
	if nb < 1 {
		panic(fmt.Errorf("%w: GEQRF block size %d", ErrShape, nb))
	}
	t := matrix.New(nb, nb)
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		panel := a.View(j, j, m-j, jb)
		GEQR2(panel, tau[j:j+jb])
		if j+jb < n {
			tj := t.View(0, 0, jb, jb)
			Larft(panel, tau[j:j+jb], tj)
			trail := a.View(j, j+jb, m-j, n-j-jb)
			Larfb(blas.Trans, panel, tj, trail)
		}
	}
}

// GEQR3 computes the QR factorization of the m x n matrix a (m >= n) with
// the recursive algorithm of Elmroth and Gustavson — the "dgeqr3" kernel
// the paper uses at the leaves of the TSQR reduction tree. Unlike GEQRF it
// returns the full n x n block-reflector factor T, so the result can be
// applied with a single Larfb. tau must have length n and t must be n x n.
func GEQR3(a *matrix.Dense, tau []float64, t *matrix.Dense) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Errorf("%w: GEQR3 requires m >= n, got %dx%d", ErrShape, m, n))
	}
	if len(tau) != n {
		panic(fmt.Errorf("%w: GEQR3 tau length %d want %d", ErrShape, len(tau), n))
	}
	if t.Rows != n || t.Cols != n {
		panic(fmt.Errorf("%w: GEQR3 T is %dx%d want %dx%d", ErrShape, t.Rows, t.Cols, n, n))
	}
	if n == 0 {
		return
	}
	if n == 1 {
		col := a.Col(0)
		beta, tv := Larfg(col[0], col[1:m])
		col[0] = beta
		tau[0] = tv
		t.Set(0, 0, tv)
		return
	}
	n1 := n / 2
	n2 := n - n1
	// Factor the left half: A1 = Q1 R1.
	a1 := a.View(0, 0, m, n1)
	t1 := t.View(0, 0, n1, n1)
	GEQR3(a1, tau[:n1], t1)
	// A2 = Q1^T A2.
	a2 := a.View(0, n1, m, n2)
	Larfb(blas.Trans, a1, t1, a2)
	// Factor the bottom-right part: A2(n1:m, :) = Q2 R2.
	a2b := a.View(n1, n1, m-n1, n2)
	t2 := t.View(n1, n1, n2, n2)
	GEQR3(a2b, tau[n1:], t2)
	// T12 = -T1 * (V1^T V2) * T2, where V2 occupies rows n1..m.
	t12 := t.View(0, n1, n1, n2)
	// V1 rows n1..n1+n2 hit V2's unit triangle; the rest is a plain GEMM.
	v1a := a.View(n1, 0, n2, n1)  // rows of V1 aligned with V2's triangle
	v2a := a.View(n1, n1, n2, n2) // V2's unit lower triangle (with R2 above)
	for jj := 0; jj < n2; jj++ {  // t12 = v1a^T, transposed copy
		col := t12.Col(jj)
		for ii := 0; ii < n1; ii++ {
			col[ii] = v1a.At(jj, ii)
		}
	}
	blas.Trmm(blas.Right, blas.Lower, blas.NoTrans, blas.Unit, 1, v2a, t12)
	if m > n1+n2 {
		v1b := a.View(n1+n2, 0, m-n1-n2, n1)
		v2b := a.View(n1+n2, n1, m-n1-n2, n2)
		blas.Gemm(blas.Trans, blas.NoTrans, 1, v1b, v2b, 1, t12)
	}
	blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, -1, t1, t12)
	blas.Trmm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, t2, t12)
}

// ORGQR forms the leading k columns of the orthogonal matrix Q from the
// reflectors produced by GEQR2/GEQRF/GEQR3 stored in a (m x n) and tau.
// It returns a fresh m x k matrix, k <= n.
func ORGQR(a *matrix.Dense, tau []float64, k int) *matrix.Dense {
	m, n := a.Rows, a.Cols
	if k > n || k < 0 {
		panic(fmt.Errorf("%w: ORGQR k=%d out of range n=%d", ErrShape, k, n))
	}
	q := matrix.New(m, k)
	for i := 0; i < k; i++ {
		q.Set(i, i, 1)
	}
	// Apply H1 H2 ... Hkk to I from the left, in reverse order.
	kk := min(len(tau), min(m, n))
	work := make([]float64, k)
	for j := kk - 1; j >= 0; j-- {
		if tau[j] == 0 {
			continue
		}
		v := a.Col(j)[j:m]
		save := v[0]
		v[0] = 1
		sub := q.View(j, 0, m-j, k)
		blas.Dgemv(blas.Trans, m-j, k, 1, sub.Data, sub.Stride, v, 1, 0, work, 1)
		blas.Dger(m-j, k, -tau[j], v, 1, work, 1, sub.Data, sub.Stride)
		v[0] = save
	}
	return q
}

// ExtractR returns the upper-triangular factor R (k x n, k = min(m, n))
// from an in-place QR factorization.
func ExtractR(a *matrix.Dense) *matrix.Dense {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	r := matrix.New(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, a.At(i, j))
		}
	}
	return r
}

// ORMQR applies Q (or Q^T) from a blocked QR factorization (GEQR2/GEQRF/
// GEQR3 output in a, scalars in tau) to the matrix c from the left,
// processing the reflectors in compact-WY blocks of width nb. It is the
// general "multiply by Q without forming it" routine (LAPACK dormqr,
// side='L').
func ORMQR(trans blas.Transpose, a *matrix.Dense, tau []float64, nb int, c *matrix.Dense) {
	m, n := a.Rows, a.Cols
	k := min(min(m, n), len(tau))
	if c.Rows != m {
		panic(fmt.Errorf("%w: ORMQR C rows %d want %d", ErrShape, c.Rows, m))
	}
	if nb < 1 {
		panic(fmt.Errorf("%w: ORMQR block size %d", ErrShape, nb))
	}
	t := matrix.New(nb, nb)
	// Q = H_1 H_2 ... H_k. Q^T C applies blocks forward; Q C backward.
	if trans == blas.Trans {
		for j := 0; j < k; j += nb {
			jb := min(nb, k-j)
			applyOrmqrBlock(trans, a, tau, t, j, jb, c)
		}
		return
	}
	start := ((k - 1) / nb) * nb
	for j := start; j >= 0; j -= nb {
		jb := min(nb, k-j)
		applyOrmqrBlock(trans, a, tau, t, j, jb, c)
	}
}

func applyOrmqrBlock(trans blas.Transpose, a *matrix.Dense, tau []float64, t *matrix.Dense, j, jb int, c *matrix.Dense) {
	m := a.Rows
	v := a.View(j, j, m-j, jb)
	tj := t.View(0, 0, jb, jb)
	Larft(v, tau[j:j+jb], tj)
	sub := c.View(j, 0, m-j, c.Cols)
	Larfb(trans, v, tj, sub)
}
