package lapack

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// denseStackQR is the reference: dense QR of [R; B].
func denseStackQR(r, b *matrix.Dense) *matrix.Dense {
	bw := r.Cols
	stack := matrix.New(bw+b.Rows, bw)
	stack.View(0, 0, bw, bw).CopyFrom(r)
	stack.View(bw, 0, b.Rows, bw).CopyFrom(b)
	tau := make([]float64, bw)
	GEQR2(stack, tau)
	return ExtractR(stack).View(0, 0, bw, bw).Clone()
}

func upperTriRandom(n int, seed int64) *matrix.Dense {
	r := matrix.New(n, n)
	src := matrix.Random(n, n, seed)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			r.Set(i, j, src.At(i, j))
		}
	}
	return r
}

func TestTPQRTMatchesDenseR(t *testing.T) {
	for _, tc := range []struct{ m, b int }{{8, 4}, {20, 8}, {16, 16}, {40, 5}, {1, 3}} {
		r := upperTriRandom(tc.b, int64(tc.m))
		b := matrix.Random(tc.m, tc.b, int64(tc.b))
		want := denseStackQR(r, b)

		rr, bb := r.Clone(), b.Clone()
		tt := matrix.New(tc.b, tc.b)
		TPQRT(rr, bb, tt)
		for i := 0; i < tc.b; i++ {
			for j := i; j < tc.b; j++ {
				if math.Abs(math.Abs(rr.At(i, j))-math.Abs(want.At(i, j))) > 1e-11 {
					t.Fatalf("m=%d b=%d: |R(%d,%d)| %v vs dense %v",
						tc.m, tc.b, i, j, rr.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestTPQRTAnnihilatesB(t *testing.T) {
	// Applying Q^T to the original pair must yield [R'; 0].
	bw, m := 6, 15
	r0 := upperTriRandom(bw, 3)
	b0 := matrix.Random(m, bw, 4)

	r, b := r0.Clone(), b0.Clone()
	tt := matrix.New(bw, bw)
	TPQRT(r, b, tt)

	c1, c2 := r0.Clone(), b0.Clone()
	TPMQRT(blas.Trans, b, tt, c1, c2)
	if !c1.EqualApprox(r, 1e-11) {
		t.Fatal("Q^T [R0; B0] top != new R")
	}
	if c2.MaxAbs() > 1e-11 {
		t.Fatalf("Q^T [R0; B0] bottom not annihilated: %g", c2.MaxAbs())
	}
}

func TestTPMQRTRoundTrip(t *testing.T) {
	bw, m, n := 5, 12, 7
	r := upperTriRandom(bw, 5)
	b := matrix.Random(m, bw, 6)
	tt := matrix.New(bw, bw)
	TPQRT(r, b, tt)

	c1 := matrix.Random(bw, n, 7)
	c2 := matrix.Random(m, n, 8)
	o1, o2 := c1.Clone(), c2.Clone()
	TPMQRT(blas.Trans, b, tt, c1, c2)
	TPMQRT(blas.NoTrans, b, tt, c1, c2)
	if !c1.EqualApprox(o1, 1e-10) || !c2.EqualApprox(o2, 1e-10) {
		t.Fatal("Q Q^T round trip failed")
	}
}

func TestTPMQRTOrthogonality(t *testing.T) {
	// The implicit Q must be orthogonal: norms are preserved.
	bw, m := 4, 10
	r := upperTriRandom(bw, 9)
	b := matrix.Random(m, bw, 10)
	tt := matrix.New(bw, bw)
	TPQRT(r, b, tt)

	c1 := matrix.Random(bw, 3, 11)
	c2 := matrix.Random(m, 3, 12)
	before := frob2(c1) + frob2(c2)
	TPMQRT(blas.Trans, b, tt, c1, c2)
	after := frob2(c1) + frob2(c2)
	if math.Abs(before-after)/before > 1e-12 {
		t.Fatalf("norm not preserved: %v -> %v", before, after)
	}
}

func frob2(a *matrix.Dense) float64 {
	s := 0.0
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			s += v * v
		}
	}
	return s
}

func TestTPQRTEquivalentToGEQR2OnStack(t *testing.T) {
	// Full consistency: the structured reflectors are mathematically the
	// same vectors as the dense stacked ones (the triangle's zeros persist
	// through the elimination), so R and the transformed C must match the
	// dense path exactly (to rounding).
	bw, m, n := 6, 14, 4
	r0 := upperTriRandom(bw, 13)
	b0 := matrix.Random(m, bw, 14)
	c10 := matrix.Random(bw, n, 15)
	c20 := matrix.Random(m, n, 16)

	// Structured path.
	r, b := r0.Clone(), b0.Clone()
	tt := matrix.New(bw, bw)
	TPQRT(r, b, tt)
	c1s, c2s := c10.Clone(), c20.Clone()
	TPMQRT(blas.Trans, b, tt, c1s, c2s)

	// Dense path.
	stack := matrix.New(bw+m, bw)
	stack.View(0, 0, bw, bw).CopyFrom(r0)
	stack.View(bw, 0, m, bw).CopyFrom(b0)
	tau := make([]float64, bw)
	tmat := matrix.New(bw, bw)
	GEQR3(stack, tau, tmat)
	cs := matrix.New(bw+m, n)
	cs.View(0, 0, bw, n).CopyFrom(c10)
	cs.View(bw, 0, m, n).CopyFrom(c20)
	Larfb(blas.Trans, stack, tmat, cs)

	denseR := ExtractR(stack).View(0, 0, bw, bw)
	if !r.EqualApprox(denseR, 1e-11) {
		t.Fatal("structured R differs from dense-stack R")
	}
	if !c1s.EqualApprox(cs.View(0, 0, bw, n), 1e-11) {
		t.Fatal("structured C1 differs from dense path")
	}
	if !c2s.EqualApprox(cs.View(bw, 0, m, n), 1e-11) {
		t.Fatal("structured C2 differs from dense path")
	}
}

func TestTTQRTMatchesDensePath(t *testing.T) {
	// The structured triangle-on-triangle kernel must produce the same R
	// and the same transformed C as the dense stacked QR (the reflectors
	// are mathematically identical: zeros persist).
	for _, bw := range []int{1, 3, 6, 12} {
		r1 := upperTriRandom(bw, int64(bw))
		r2 := upperTriRandom(bw, int64(bw+100))
		c10 := matrix.Random(bw, 4, int64(bw+200))
		c20 := matrix.Random(bw, 4, int64(bw+300))

		// Structured path.
		sr1, sr2 := r1.Clone(), r2.Clone()
		tt := matrix.New(bw, bw)
		TTQRT(sr1, sr2, tt)
		c1s, c2s := c10.Clone(), c20.Clone()
		TTMQRT(blas.Trans, sr2, tt, c1s, c2s)

		// Dense path.
		stack := matrix.New(2*bw, bw)
		stack.View(0, 0, bw, bw).CopyFrom(r1)
		stack.View(bw, 0, bw, bw).CopyFrom(r2)
		tau := make([]float64, bw)
		tmat := matrix.New(bw, bw)
		GEQR3(stack, tau, tmat)
		cs := matrix.New(2*bw, 4)
		cs.View(0, 0, bw, 4).CopyFrom(c10)
		cs.View(bw, 0, bw, 4).CopyFrom(c20)
		Larfb(blas.Trans, stack, tmat, cs)

		denseR := ExtractR(stack).View(0, 0, bw, bw)
		if !sr1.EqualApprox(denseR, 1e-11) {
			t.Fatalf("bw=%d: structured R differs from dense", bw)
		}
		if !c1s.EqualApprox(cs.View(0, 0, bw, 4), 1e-11) {
			t.Fatalf("bw=%d: C1 differs", bw)
		}
		if !c2s.EqualApprox(cs.View(bw, 0, bw, 4), 1e-11) {
			t.Fatalf("bw=%d: C2 differs", bw)
		}
	}
}

func TestTTQRTV2StaysTriangular(t *testing.T) {
	bw := 8
	r1 := upperTriRandom(bw, 1)
	r2 := upperTriRandom(bw, 2)
	tt := matrix.New(bw, bw)
	TTQRT(r1, r2, tt)
	// The reflector block overwrote R2 and must be upper triangular.
	for j := 0; j < bw; j++ {
		for i := j + 1; i < bw; i++ {
			if r2.At(i, j) != 0 {
				t.Fatalf("V2(%d,%d) = %v below the diagonal", i, j, r2.At(i, j))
			}
		}
	}
}

func TestTTMQRTRoundTrip(t *testing.T) {
	bw, n := 5, 3
	r1 := upperTriRandom(bw, 7)
	r2 := upperTriRandom(bw, 8)
	tt := matrix.New(bw, bw)
	TTQRT(r1, r2, tt)
	c1 := matrix.Random(bw, n, 9)
	c2 := matrix.Random(bw, n, 10)
	o1, o2 := c1.Clone(), c2.Clone()
	TTMQRT(blas.Trans, r2, tt, c1, c2)
	TTMQRT(blas.NoTrans, r2, tt, c1, c2)
	if !c1.EqualApprox(o1, 1e-10) || !c2.EqualApprox(o2, 1e-10) {
		t.Fatal("TTMQRT round trip failed")
	}
}
