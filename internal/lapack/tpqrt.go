package lapack

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// TPQRT computes the QR factorization of the stacked pair
//
//	[ R ]   b x b, upper triangular
//	[ B ]   m x b, dense
//
// in place: R is overwritten with the new upper-triangular factor, B with
// the reflector tails V2 (the top part of each reflector is implicitly the
// identity column e_j, exploiting R's triangularity), and t (b x b) with
// the compact-WY factor. This is LAPACK's dtpqrt with a square B — the
// structured "triangle on top of square" kernel PLASMA's TSQRT implements,
// costing ~2*m*b^2 flops instead of the ~2*(m+b)*b^2 + (2/3)b^3 of a dense
// stacked QR, and requiring no gather/scatter of the operands.
func TPQRT(r, b, t *matrix.Dense) {
	bw := r.Cols
	if r.Rows != bw {
		panic(fmt.Errorf("%w: TPQRT R is %dx%d, want square", ErrShape, r.Rows, r.Cols))
	}
	if b.Cols != bw {
		panic(fmt.Errorf("%w: TPQRT B has %d cols, want %d", ErrShape, b.Cols, bw))
	}
	if t.Rows != bw || t.Cols != bw {
		panic(fmt.Errorf("%w: TPQRT T is %dx%d, want %dx%d", ErrShape, t.Rows, t.Cols, bw, bw))
	}
	m := b.Rows
	t.Zero()
	tau := make([]float64, bw)
	for j := 0; j < bw; j++ {
		// Reflector j annihilates B(:, j) against R(j, j). Its vector is
		// [e_j; v2] with v2 dense of length m.
		v2 := b.Col(j)
		beta, tj := Larfg(r.At(j, j), v2)
		r.Set(j, j, beta)
		tau[j] = tj
		if tj == 0 {
			continue
		}
		// Apply H_j to the remaining columns of [R; B]:
		// w = R(j, jj) + v2^T B(:, jj); R(j, jj) -= tau*w; B(:, jj) -= tau*w*v2.
		for jj := j + 1; jj < bw; jj++ {
			cj := b.Col(jj)
			w := r.At(j, jj)
			for i := 0; i < m; i++ {
				w += v2[i] * cj[i]
			}
			tw := tj * w
			r.Set(j, jj, r.At(j, jj)-tw)
			for i := 0; i < m; i++ {
				cj[i] -= tw * v2[i]
			}
		}
	}
	// Form T: T(0:i, i) = -tau_i * T(0:i, 0:i) * (V2(:, 0:i)^T v2_i); the
	// identity tops contribute nothing for i != j.
	for i := 0; i < bw; i++ {
		t.Set(i, i, tau[i])
		if i == 0 || tau[i] == 0 {
			continue
		}
		tcol := t.Col(i)[:i]
		vi := b.Col(i)
		v2sub := b.View(0, 0, m, i)
		blas.Dgemv(blas.Trans, m, i, -tau[i], v2sub.Data, v2sub.Stride, vi, 1, 0, tcol, 1)
		blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t.Data, t.Stride, tcol, 1)
	}
}

// TPMQRT applies the orthogonal factor from TPQRT (or its transpose) to a
// stacked pair [C1; C2] from the left, in place: C1 is b x n, C2 is m x n,
// v and t are the B-part reflectors and compact-WY factor from TPQRT.
// Because the reflector tops are identity columns, the update is simply
//
//	W  = op(T) * (C1 + V2^T C2)
//	C1 -= W
//	C2 -= V2 * W
//
// with no triangular multiplies on the C1 side — the structured savings
// PLASMA's TSMQR realizes.
func TPMQRT(trans blas.Transpose, v, t, c1, c2 *matrix.Dense) {
	bw := v.Cols
	if c1.Rows != bw {
		panic(fmt.Errorf("%w: TPMQRT C1 has %d rows, want %d", ErrShape, c1.Rows, bw))
	}
	if c2.Rows != v.Rows {
		panic(fmt.Errorf("%w: TPMQRT C2 has %d rows, want %d", ErrShape, c2.Rows, v.Rows))
	}
	if c1.Cols != c2.Cols {
		panic(fmt.Errorf("%w: TPMQRT C1/C2 col mismatch %d vs %d", ErrShape, c1.Cols, c2.Cols))
	}
	n := c1.Cols
	if n == 0 || bw == 0 {
		return
	}
	// W = C1 + V2^T C2.
	w := c1.Clone()
	blas.Gemm(blas.Trans, blas.NoTrans, 1, v, c2, 1, w)
	// W = op(T) W. Q = I - V T V^T, so Q uses T and Q^T uses T^T.
	tOp := blas.NoTrans
	if trans == blas.Trans {
		tOp = blas.Trans
	}
	blas.Trmm(blas.Left, blas.Upper, tOp, blas.NonUnit, 1, t, w)
	// C1 -= W; C2 -= V2 W.
	for j := 0; j < n; j++ {
		cj, wj := c1.Col(j), w.Col(j)
		for i := range cj {
			cj[i] -= wj[i]
		}
	}
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, v, w, 1, c2)
}

// TTQRT computes the QR factorization of two stacked b x b upper-triangular
// factors
//
//	[ R1 ]
//	[ R2 ]
//
// in place, exploiting R2's triangularity: the reflector annihilating
// column j of R2 has only j+1 nonzero tail entries, so V2 is itself upper
// triangular and overwrites R2 exactly. This is the triangle-on-triangle
// kernel (PLASMA's TTQRT) that makes TSQR tree merges cost ~(2/3)b^3 flops
// instead of the ~(10/3)b^3 of a dense stacked QR — the optimization the
// paper's conclusion anticipates for CAQR.
func TTQRT(r1, r2, t *matrix.Dense) {
	bw := r1.Cols
	if r1.Rows != bw || r2.Rows != bw || r2.Cols != bw {
		panic(fmt.Errorf("%w: TTQRT wants two %dx%d triangles", ErrShape, bw, bw))
	}
	if t.Rows != bw || t.Cols != bw {
		panic(fmt.Errorf("%w: TTQRT T is %dx%d want %dx%d", ErrShape, t.Rows, t.Cols, bw, bw))
	}
	t.Zero()
	tau := make([]float64, bw)
	for j := 0; j < bw; j++ {
		// Tail = R2(0:j+1, j), head = R1(j, j).
		tail := r2.Col(j)[:j+1]
		beta, tj := Larfg(r1.At(j, j), tail)
		r1.Set(j, j, beta)
		tau[j] = tj
		if tj == 0 {
			continue
		}
		// Apply H_j to the remaining columns of [R1; R2] (only the first
		// j+1 rows of R2 participate).
		for jj := j + 1; jj < bw; jj++ {
			cj := r2.Col(jj)
			w := r1.At(j, jj)
			for i := 0; i <= j; i++ {
				w += tail[i] * cj[i]
			}
			tw := tj * w
			r1.Set(j, jj, r1.At(j, jj)-tw)
			for i := 0; i <= j; i++ {
				cj[i] -= tw * tail[i]
			}
		}
	}
	// T(0:i, i) = -tau_i * T * (V2(:, 0:i)^T v2_i); column j of V2 has
	// rows 0..j, a subset of v2_i's rows 0..i for j < i.
	for i := 0; i < bw; i++ {
		t.Set(i, i, tau[i])
		if i == 0 || tau[i] == 0 {
			continue
		}
		tcol := t.Col(i)[:i]
		vi := r2.Col(i)
		for j := 0; j < i; j++ {
			vj := r2.Col(j)
			s := 0.0
			for r := 0; r <= j; r++ {
				s += vj[r] * vi[r]
			}
			tcol[j] = -tau[i] * s
		}
		blas.Dtrmv(blas.Upper, blas.NoTrans, blas.NonUnit, i, t.Data, t.Stride, tcol, 1)
	}
}

// TTMQRT applies the orthogonal factor from TTQRT (or its transpose) to a
// stacked pair [C1; C2] from the left, in place. v2 is the upper-triangular
// reflector block TTQRT left in R2's place and t its compact-WY factor;
// both C1 and C2 are b x n.
func TTMQRT(trans blas.Transpose, v2, t, c1, c2 *matrix.Dense) {
	bw := v2.Cols
	if c1.Rows != bw || c2.Rows != bw {
		panic(fmt.Errorf("%w: TTMQRT C rows %d/%d want %d", ErrShape, c1.Rows, c2.Rows, bw))
	}
	if c1.Cols != c2.Cols {
		panic(fmt.Errorf("%w: TTMQRT C1/C2 col mismatch %d vs %d", ErrShape, c1.Cols, c2.Cols))
	}
	if c1.Cols == 0 || bw == 0 {
		return
	}
	// W = C1 + V2^T C2; V2 is upper triangular with explicit diagonal.
	w := c2.Clone()
	blas.Trmm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, v2, w)
	for j := 0; j < w.Cols; j++ {
		wj, cj := w.Col(j), c1.Col(j)
		for i := range wj {
			wj[i] += cj[i]
		}
	}
	tOp := blas.NoTrans
	if trans == blas.Trans {
		tOp = blas.Trans
	}
	blas.Trmm(blas.Left, blas.Upper, tOp, blas.NonUnit, 1, t, w)
	// C1 -= W; C2 -= V2 W.
	for j := 0; j < w.Cols; j++ {
		wj, cj := w.Col(j), c1.Col(j)
		for i := range wj {
			cj[i] -= wj[i]
		}
	}
	v2w := w // reuse: W no longer needed after this
	blas.Trmm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, v2, v2w)
	for j := 0; j < w.Cols; j++ {
		wj, cj := v2w.Col(j), c2.Col(j)
		for i := range wj {
			cj[i] -= wj[i]
		}
	}
}
