package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

func TestOneNormEstExactOnExplicitMatrix(t *testing.T) {
	// Estimate ||B||_1 for an explicit matrix via products; Hager's bound
	// should land within a small factor of the truth (often exact).
	b := matrix.Random(30, 30, 3)
	truth := b.NormOne()
	est := OneNormEst(30,
		func(x []float64) {
			y := make([]float64, 30)
			blas.Dgemv(blas.NoTrans, 30, 30, 1, b.Data, b.Stride, x, 1, 0, y, 1)
			copy(x, y)
		},
		func(x []float64) {
			y := make([]float64, 30)
			blas.Dgemv(blas.Trans, 30, 30, 1, b.Data, b.Stride, x, 1, 0, y, 1)
			copy(x, y)
		})
	if est > truth*1.0000001 {
		t.Fatalf("estimate %v exceeds true norm %v", est, truth)
	}
	if est < truth/3 {
		t.Fatalf("estimate %v too far below true norm %v", est, truth)
	}
}

func TestLUSolveTranspose(t *testing.T) {
	n := 25
	orig := matrix.Random(n, n, 5)
	xWant := matrix.Random(n, 2, 6)
	rhs := blas.Mul(blas.Trans, blas.NoTrans, orig, xWant) // A^T x
	lu := orig.Clone()
	ipiv := make([]int, n)
	if err := GETRF(lu, ipiv, 8); err != nil {
		t.Fatal(err)
	}
	LUSolveTranspose(lu, ipiv, rhs)
	if !rhs.EqualApprox(xWant, 1e-9) {
		t.Fatal("transpose solve wrong")
	}
}

func TestGECONWellVsIllConditioned(t *testing.T) {
	// Well conditioned: diagonally dominant. Ill conditioned: near singular.
	well := matrix.DiagonallyDominant(40, 7)
	ill := matrix.NearSingular(40, 40, 1e-10, 8)

	rcond := func(a *matrix.Dense) float64 {
		lu := a.Clone()
		ipiv := make([]int, 40)
		if err := GETRF(lu, ipiv, 8); err != nil {
			t.Fatal(err)
		}
		return GECON(lu, ipiv, a.NormOne())
	}
	rw, ri := rcond(well), rcond(ill)
	if rw < 1e-4 {
		t.Fatalf("well-conditioned rcond %g too small", rw)
	}
	if ri > 1e-6 {
		t.Fatalf("near-singular rcond %g too large", ri)
	}
	if ri >= rw {
		t.Fatalf("rcond ordering wrong: %g vs %g", ri, rw)
	}
}

func TestGECONSingular(t *testing.T) {
	lu := matrix.Identity(5)
	lu.Set(2, 2, 0)
	ipiv := []int{0, 1, 2, 3, 4}
	if rc := GECON(lu, ipiv, 1); rc != 0 {
		t.Fatalf("singular rcond = %v", rc)
	}
	if rc := GECON(matrix.Identity(3), []int{0, 1, 2}, 0); rc != 0 {
		t.Fatalf("anorm=0 rcond = %v", rc)
	}
}

func TestGECONIdentity(t *testing.T) {
	n := 10
	lu := matrix.Identity(n)
	ipiv := make([]int, n)
	for i := range ipiv {
		ipiv[i] = i
	}
	rc := GECON(lu, ipiv, 1)
	if math.Abs(rc-1) > 1e-12 {
		t.Fatalf("identity rcond = %v want 1", rc)
	}
}

// Property: solving with A then with A^T matches the inverse-transpose
// identity (A^{-1})^T = (A^T)^{-1}.
func TestSolveTransposeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 8 + int(uint64(seed)%16)
		a := matrix.DiagonallyDominant(n, seed)
		lu := a.Clone()
		ipiv := make([]int, n)
		if err := GETRF(lu, ipiv, 4); err != nil {
			return false
		}
		// e_j via both routes.
		for j := 0; j < 3 && j < n; j++ {
			e := matrix.New(n, 1)
			e.Set(j, 0, 1)
			x1 := e.Clone()
			LUSolve(lu, ipiv, x1) // column j of A^{-1}
			x2 := e.Clone()
			LUSolveTranspose(lu, ipiv, x2) // column j of (A^T)^{-1} = row j of A^{-1}
			// Check x2[i] == (A^{-1})(j, i): solve for e_i and compare entry j.
			for i := 0; i < 3 && i < n; i++ {
				ei := matrix.New(n, 1)
				ei.Set(i, 0, 1)
				col := ei.Clone()
				LUSolve(lu, ipiv, col)
				if diff := col.At(j, 0) - x2.At(i, 0); diff > 1e-10 || diff < -1e-10 {
					return false
				}
			}
			_ = x1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
