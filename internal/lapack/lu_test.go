package lapack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// luResidual computes ||P*A - L*U||_F / ||A||_F for an in-place factor.
func luResidual(t *testing.T, lu *matrix.Dense, ipiv []int, orig *matrix.Dense) float64 {
	t.Helper()
	l, u := ExtractLU(lu)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	pa := orig.Clone()
	LASWP(pa, ipiv, 0, len(ipiv))
	diff := 0.0
	for j := 0; j < pa.Cols; j++ {
		a, b := pa.Col(j), prod.Col(j)
		for i := range a {
			d := a[i] - b[i]
			diff += d * d
		}
	}
	return math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300)
}

func checkLU(t *testing.T, name string, factor func(a *matrix.Dense, ipiv []int) error, m, n int, seed int64) {
	t.Helper()
	orig := matrix.Random(m, n, seed)
	a := orig.Clone()
	ipiv := make([]int, min(m, n))
	if err := factor(a, ipiv); err != nil {
		t.Fatalf("%s %dx%d: %v", name, m, n, err)
	}
	if res := luResidual(t, a, ipiv, orig); res > 1e-13*float64(max(m, n)) {
		t.Errorf("%s %dx%d residual %g", name, m, n, res)
	}
	// ipiv must be within range and >= k.
	for k, p := range ipiv {
		if p < k || p >= m {
			t.Fatalf("%s: ipiv[%d] = %d out of range", name, k, p)
		}
	}
}

func TestGETF2Shapes(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {5, 5}, {10, 3}, {3, 10}, {40, 40}, {64, 8}, {200, 13}} {
		checkLU(t, "GETF2", GETF2, dims[0], dims[1], int64(dims[0]*100+dims[1]))
	}
}

func TestRGETF2Shapes(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {5, 5}, {10, 3}, {3, 10}, {40, 40}, {64, 8}, {200, 13}, {127, 31}} {
		checkLU(t, "RGETF2", RGETF2, dims[0], dims[1], int64(dims[0]*100+dims[1]))
	}
}

func TestGETRFShapes(t *testing.T) {
	for _, nb := range []int{1, 3, 8, 32} {
		for _, dims := range [][2]int{{5, 5}, {33, 33}, {50, 20}, {20, 50}, {100, 100}} {
			nb := nb
			checkLU(t, "GETRF", func(a *matrix.Dense, ipiv []int) error {
				return GETRF(a, ipiv, nb)
			}, dims[0], dims[1], int64(nb*1000+dims[0]))
		}
	}
}

func TestRGETF2MatchesGETF2Exactly(t *testing.T) {
	// The recursive algorithm must select identical pivots and produce an
	// identical factor (same flop reordering is allowed to give tiny
	// floating-point differences, but pivots must agree).
	for _, dims := range [][2]int{{30, 30}, {64, 16}, {17, 17}} {
		orig := matrix.Random(dims[0], dims[1], 99)
		a1, a2 := orig.Clone(), orig.Clone()
		k := min(dims[0], dims[1])
		p1, p2 := make([]int, k), make([]int, k)
		if err := GETF2(a1, p1); err != nil {
			t.Fatal(err)
		}
		if err := RGETF2(a2, p2); err != nil {
			t.Fatal(err)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%v: pivot %d differs: %d vs %d", dims, i, p1[i], p2[i])
			}
		}
		if !a1.EqualApprox(a2, 1e-11) {
			t.Fatalf("%v: factors differ", dims)
		}
	}
}

func TestGETF2PartialPivotingBoundsL(t *testing.T) {
	// With partial pivoting every multiplier |L(i,j)| <= 1.
	a := matrix.Random(50, 50, 3)
	ipiv := make([]int, 50)
	if err := GETF2(a, ipiv); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 50; j++ {
		for i := j + 1; i < 50; i++ {
			if math.Abs(a.At(i, j)) > 1+1e-15 {
				t.Fatalf("|L(%d,%d)| = %v > 1", i, j, a.At(i, j))
			}
		}
	}
}

func TestGETF2Singular(t *testing.T) {
	a := matrix.New(3, 3) // all zeros
	ipiv := make([]int, 3)
	if err := GETF2(a, ipiv); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestGETRFSingularColumn(t *testing.T) {
	a := matrix.Random(6, 6, 8)
	// Zero out column 2 entirely.
	for i := 0; i < 6; i++ {
		a.Set(i, 2, 0)
	}
	ipiv := make([]int, 6)
	if err := GETRF(a, ipiv, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLASWPRoundTrip(t *testing.T) {
	a := matrix.Random(8, 5, 4)
	orig := a.Clone()
	ipiv := []int{3, 1, 7, 3, 4}
	LASWP(a, ipiv, 0, 5)
	if a.Equal(orig) {
		t.Fatal("LASWP did nothing")
	}
	LASWPBackward(a, ipiv, 0, 5)
	if !a.Equal(orig) {
		t.Fatal("LASWPBackward did not undo LASWP")
	}
}

func TestIpivToPerm(t *testing.T) {
	// A with rows 0..3; swap 0<->2 then 1<->3 gives rows [2 3 0 1].
	ipiv := []int{2, 3}
	p := IpivToPerm(ipiv, 4)
	want := []int{2, 3, 0, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("perm = %v want %v", p, want)
		}
	}
	// Cross-check against actually applying LASWP to a labeled matrix.
	a := matrix.New(4, 1)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i))
	}
	LASWP(a, ipiv, 0, 2)
	for i := 0; i < 4; i++ {
		if int(a.At(i, 0)) != p[i] {
			t.Fatalf("row %d: LASWP gives %v, perm says %d", i, a.At(i, 0), p[i])
		}
	}
}

func TestLUSolve(t *testing.T) {
	n := 30
	orig := matrix.Random(n, n, 5)
	xWant := matrix.Random(n, 2, 6)
	b := blas.Mul(blas.NoTrans, blas.NoTrans, orig, xWant)
	lu := orig.Clone()
	ipiv := make([]int, n)
	if err := GETRF(lu, ipiv, 8); err != nil {
		t.Fatal(err)
	}
	LUSolve(lu, ipiv, b)
	if !b.EqualApprox(xWant, 1e-9) {
		t.Fatal("LUSolve wrong solution")
	}
}

func TestGrowthFactorWilkinson(t *testing.T) {
	// Partial pivoting on the Wilkinson matrix gives growth 2^(n-1).
	n := 10
	w := matrix.Wilkinson(n)
	a := w.Clone()
	ipiv := make([]int, n)
	if err := GETF2(a, ipiv); err != nil {
		t.Fatal(err)
	}
	g := GrowthFactor(a, w)
	want := math.Pow(2, float64(n-1))
	if math.Abs(g-want)/want > 1e-12 {
		t.Fatalf("growth = %v want %v", g, want)
	}
}

func TestPGETRFMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		orig := matrix.Random(60, 60, 7)
		a1, a2 := orig.Clone(), orig.Clone()
		p1, p2 := make([]int, 60), make([]int, 60)
		if err := GETRF(a1, p1, 16); err != nil {
			t.Fatal(err)
		}
		if err := PGETRF(a2, p2, 16, workers); err != nil {
			t.Fatal(err)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("workers=%d: pivot %d differs", workers, i)
			}
		}
		if !a1.EqualApprox(a2, 1e-12) {
			t.Fatalf("workers=%d: factors differ", workers)
		}
	}
}

func TestPGETRFTallSkinny(t *testing.T) {
	checkLU(t, "PGETRF", func(a *matrix.Dense, ipiv []int) error {
		return PGETRF(a, ipiv, 8, 4)
	}, 300, 24, 11)
}

// Property: for random matrices, all three LU variants solve systems to
// high accuracy.
func TestLUVariantsSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 10 + int(uint64(seed)%20)
		orig := matrix.DiagonallyDominant(n, seed)
		x := matrix.Random(n, 1, seed+1)
		b0 := blas.Mul(blas.NoTrans, blas.NoTrans, orig, x)
		for _, factor := range []func(a *matrix.Dense, ipiv []int) error{
			GETF2,
			RGETF2,
			func(a *matrix.Dense, ipiv []int) error { return GETRF(a, ipiv, 4) },
		} {
			lu := orig.Clone()
			ipiv := make([]int, n)
			if err := factor(lu, ipiv); err != nil {
				return false
			}
			b := b0.Clone()
			LUSolve(lu, ipiv, b)
			if !b.EqualApprox(x, 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGETRI(t *testing.T) {
	n := 40
	orig := matrix.Random(n, n, 91)
	lu := orig.Clone()
	ipiv := make([]int, n)
	if err := GETRF(lu, ipiv, 8); err != nil {
		t.Fatal(err)
	}
	inv := GETRI(lu, ipiv)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, orig, inv)
	if !prod.EqualApprox(matrix.Identity(n), 1e-10*float64(n)) {
		t.Fatal("A * A^{-1} != I")
	}
	prod2 := blas.Mul(blas.NoTrans, blas.NoTrans, inv, orig)
	if !prod2.EqualApprox(matrix.Identity(n), 1e-10*float64(n)) {
		t.Fatal("A^{-1} * A != I")
	}
}
