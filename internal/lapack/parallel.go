package lapack

import (
	"fmt"
	"sync"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// PanelError reports the leading column of the first panel whose
// factorization failed, following LAPACK's info convention of surfacing the
// earliest failure rather than the last. It unwraps to the underlying
// error (ErrSingular for a zero pivot), so errors.Is keeps working.
type PanelError struct {
	// Col is the global index of the panel's leading column.
	Col int
	// Err is the panel kernel's error.
	Err error
}

func (e *PanelError) Error() string {
	return fmt.Sprintf("lapack: panel at column %d: %v", e.Col, e.Err)
}

func (e *PanelError) Unwrap() error { return e.Err }

// parallelFor runs body(i) for i in [0, n) across at most workers
// goroutines, blocking until all complete. With workers <= 1 it runs inline.
// This is the fork-join model used by the vendor-library stand-ins: a
// barrier after every bulk operation, which is exactly the synchronization
// pattern the communication-avoiding algorithms are designed to beat.
func parallelFor(n, workers int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	wg.Wait()
}

// PGETRF computes the LU factorization with partial pivoting using the
// classic fork-join parallelization: the panel is factored sequentially
// (BLAS-2 on the critical path, as in vendor dgetrf), then the row swaps,
// TRSM and GEMM of the trailing matrix are split column-block-wise over
// `workers` goroutines with a barrier between iterations. It is the
// multithreaded MKL_dgetrf / ACML_dgetrf stand-in for measured experiments.
func PGETRF(a *matrix.Dense, ipiv []int, nb, workers int) error {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(ipiv) != k {
		panic(fmt.Errorf("%w: PGETRF ipiv length mismatch", ErrShape))
	}
	if nb < 1 || workers < 1 {
		panic(fmt.Errorf("%w: PGETRF bad nb or workers", ErrShape))
	}
	var err error
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		panel := a.View(j, j, m-j, jb)
		// Keep the FIRST failure (LAPACK info convention): a later panel's
		// singularity must not overwrite an earlier one's.
		if e := RGETF2(panel, ipiv[j:j+jb]); e != nil && err == nil {
			err = &PanelError{Col: j, Err: e}
		}
		for i := j; i < j+jb; i++ {
			ipiv[i] += j
		}
		// Swap + update the rest of the matrix in parallel column blocks.
		nLeft := j / nb
		nRight := (n - j - jb + nb - 1) / nb
		parallelFor(nLeft+nRight, workers, func(t int) {
			var cols *matrix.Dense
			if t < nLeft {
				c0 := t * nb
				cols = a.View(0, c0, m, min(nb, j-c0))
				LASWP(cols, ipiv[:j+jb], j, j+jb)
				return
			}
			c0 := j + jb + (t-nLeft)*nb
			cw := min(nb, n-c0)
			cols = a.View(0, c0, m, cw)
			LASWP(cols, ipiv[:j+jb], j, j+jb)
			l11 := a.View(j, j, jb, jb)
			u12 := cols.View(j, 0, jb, cw)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, u12)
			if j+jb < m {
				l21 := a.View(j+jb, j, m-j-jb, jb)
				a22 := cols.View(j+jb, 0, m-j-jb, cw)
				blas.Gemm(blas.NoTrans, blas.NoTrans, -1, l21, u12, 1, a22)
			}
		})
	}
	return err
}

// PGEQRF computes the blocked Householder QR factorization with the same
// fork-join parallelization as PGETRF: sequential panel (GEQR2), parallel
// block-column application of the block reflector. It is the multithreaded
// MKL_dgeqrf stand-in for measured experiments.
func PGEQRF(a *matrix.Dense, tau []float64, nb, workers int) {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(tau) != k {
		panic(fmt.Errorf("%w: PGEQRF tau length mismatch", ErrShape))
	}
	if nb < 1 || workers < 1 {
		panic(fmt.Errorf("%w: PGEQRF bad nb or workers", ErrShape))
	}
	t := matrix.New(nb, nb)
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		panel := a.View(j, j, m-j, jb)
		GEQR2(panel, tau[j:j+jb])
		if j+jb < n {
			tj := t.View(0, 0, jb, jb)
			Larft(panel, tau[j:j+jb], tj)
			nBlocks := (n - j - jb + nb - 1) / nb
			parallelFor(nBlocks, workers, func(bi int) {
				c0 := j + jb + bi*nb
				cw := min(nb, n-c0)
				trail := a.View(j, c0, m-j, cw)
				Larfb(blas.Trans, panel, tj, trail)
			})
		}
	}
}
