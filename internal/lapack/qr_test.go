package lapack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// qrResidual returns ||A - Q*R||_F / ||A||_F from an in-place QR factor.
func qrResidual(t *testing.T, fac *matrix.Dense, tau []float64, orig *matrix.Dense) float64 {
	t.Helper()
	k := min(fac.Rows, fac.Cols)
	q := ORGQR(fac, tau, k)
	r := ExtractR(fac)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
	diff := 0.0
	for j := 0; j < orig.Cols; j++ {
		a, b := orig.Col(j), prod.Col(j)
		for i := range a {
			d := a[i] - b[i]
			diff += d * d
		}
	}
	return math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300)
}

// orthoError returns ||Q^T Q - I||_max.
func orthoError(q *matrix.Dense) float64 {
	qtq := blas.Mul(blas.Trans, blas.NoTrans, q, q)
	for i := 0; i < qtq.Rows; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	return qtq.MaxAbs()
}

func TestGEQR2Shapes(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {5, 5}, {20, 5}, {5, 20}, {50, 50}, {128, 16}} {
		m, n := dims[0], dims[1]
		orig := matrix.Random(m, n, int64(m*31+n))
		a := orig.Clone()
		tau := make([]float64, min(m, n))
		GEQR2(a, tau)
		if res := qrResidual(t, a, tau, orig); res > 1e-13*float64(max(m, n)) {
			t.Errorf("GEQR2 %dx%d residual %g", m, n, res)
		}
		q := ORGQR(a, tau, min(m, n))
		if e := orthoError(q); e > 1e-13*float64(m) {
			t.Errorf("GEQR2 %dx%d orthogonality %g", m, n, e)
		}
	}
}

func TestGEQRFShapes(t *testing.T) {
	for _, nb := range []int{1, 4, 16} {
		for _, dims := range [][2]int{{10, 10}, {60, 25}, {25, 60}, {100, 100}} {
			m, n := dims[0], dims[1]
			orig := matrix.Random(m, n, int64(nb*7+m))
			a := orig.Clone()
			tau := make([]float64, min(m, n))
			GEQRF(a, tau, nb)
			if res := qrResidual(t, a, tau, orig); res > 1e-13*float64(max(m, n)) {
				t.Errorf("GEQRF nb=%d %dx%d residual %g", nb, m, n, res)
			}
		}
	}
}

func TestGEQR3Shapes(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {8, 8}, {20, 7}, {64, 64}, {200, 33}, {37, 37}} {
		m, n := dims[0], dims[1]
		orig := matrix.Random(m, n, int64(m*13+n))
		a := orig.Clone()
		tau := make([]float64, n)
		tmat := matrix.New(n, n)
		GEQR3(a, tau, tmat)
		if res := qrResidual(t, a, tau, orig); res > 1e-13*float64(max(m, n)) {
			t.Errorf("GEQR3 %dx%d residual %g", m, n, res)
		}
	}
}

func TestGEQR3TFactorConsistent(t *testing.T) {
	// The T returned by GEQR3 must satisfy Q = I - V T V^T: applying it via
	// Larfb must match applying reflectors one at a time via ORGQR.
	m, n := 40, 12
	orig := matrix.Random(m, n, 17)
	a := orig.Clone()
	tau := make([]float64, n)
	tmat := matrix.New(n, n)
	GEQR3(a, tau, tmat)

	// Apply Q^T to the original matrix via Larfb: should give R on top.
	c := orig.Clone()
	Larfb(blas.Trans, a, tmat, c)
	r := ExtractR(a)
	top := c.View(0, 0, n, n)
	if !top.EqualApprox(r.View(0, 0, n, n), 1e-11) {
		t.Fatal("Larfb(Q^T, A) top block != R")
	}
	// Bottom must be annihilated.
	bottom := c.View(n, 0, m-n, n)
	if bottom.MaxAbs() > 1e-11 {
		t.Fatalf("Larfb(Q^T, A) bottom not zero: %g", bottom.MaxAbs())
	}
}

func TestLarfbRoundTrip(t *testing.T) {
	// Applying Q then Q^T must restore the input.
	m, n, k := 30, 9, 6
	a := matrix.Random(m, k, 21)
	tau := make([]float64, k)
	tmat := matrix.New(k, k)
	GEQR3(a, tau, tmat)
	c := matrix.Random(m, n, 22)
	orig := c.Clone()
	Larfb(blas.NoTrans, a, tmat, c)
	if c.EqualApprox(orig, 1e-14) {
		t.Fatal("Larfb(Q) was a no-op")
	}
	Larfb(blas.Trans, a, tmat, c)
	if !c.EqualApprox(orig, 1e-11) {
		t.Fatal("Q^T Q C != C")
	}
}

func TestLarftMatchesGEQR3T(t *testing.T) {
	// Larft on the reflectors from GEQR3 must rebuild the same T.
	m, n := 25, 8
	a := matrix.Random(m, n, 23)
	tau := make([]float64, n)
	tmat := matrix.New(n, n)
	GEQR3(a, tau, tmat)
	t2 := matrix.New(n, n)
	Larft(a, tau, t2)
	if !tmat.EqualApprox(t2, 1e-11) {
		t.Fatalf("T mismatch:\nGEQR3 %v\nLarft %v", tmat, t2)
	}
}

func TestLarfgZeroTail(t *testing.T) {
	beta, tau := Larfg(3, []float64{0, 0})
	if tau != 0 || beta != 3 {
		t.Fatalf("Larfg on zero tail: beta=%v tau=%v", beta, tau)
	}
}

func TestLarfgAnnihilates(t *testing.T) {
	x := []float64{4, 3}
	alpha := 0.0
	beta, tau := Larfg(alpha, x)
	// |beta| must equal the norm of [alpha; x] = 5.
	if math.Abs(math.Abs(beta)-5) > 1e-14 {
		t.Fatalf("beta = %v", beta)
	}
	// Applying H to [alpha; xOrig] must give [beta; 0].
	v := []float64{1, x[0], x[1]}
	full := []float64{alpha, 4, 3}
	dot := 0.0
	for i := range v {
		dot += v[i] * full[i]
	}
	for i := range full {
		full[i] -= tau * v[i] * dot
	}
	if math.Abs(full[0]-beta) > 1e-14 || math.Abs(full[1]) > 1e-14 || math.Abs(full[2]) > 1e-14 {
		t.Fatalf("H [alpha;x] = %v, want [%v 0 0]", full, beta)
	}
}

func TestPGEQRFMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		orig := matrix.Random(50, 30, 25)
		a1, a2 := orig.Clone(), orig.Clone()
		t1, t2 := make([]float64, 30), make([]float64, 30)
		GEQRF(a1, t1, 8)
		PGEQRF(a2, t2, 8, workers)
		if !a1.EqualApprox(a2, 1e-12) {
			t.Fatalf("workers=%d: factors differ", workers)
		}
		for i := range t1 {
			if math.Abs(t1[i]-t2[i]) > 1e-13 {
				t.Fatalf("workers=%d: tau differs at %d", workers, i)
			}
		}
	}
}

// Property: R's diagonal magnitudes from QR equal the column norms of the
// successively orthogonalized basis; cheaper invariant: |det(R)| equals
// the product of singular values... instead verify A^T A == R^T R.
func TestQRGramProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := 20 + int(uint64(seed)%20)
		n := 5 + int(uint64(seed)%8)
		orig := matrix.Random(m, n, seed)
		a := orig.Clone()
		tau := make([]float64, n)
		tmat := matrix.New(n, n)
		GEQR3(a, tau, tmat)
		r := ExtractR(a)
		ata := blas.Mul(blas.Trans, blas.NoTrans, orig, orig)
		rtr := blas.Mul(blas.Trans, blas.NoTrans, r, r)
		return ata.EqualApprox(rtr, 1e-9*float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestORMQRMatchesExplicitQ(t *testing.T) {
	m, n := 40, 16
	orig := matrix.Random(m, n, 61)
	a := orig.Clone()
	tau := make([]float64, n)
	GEQRF(a, tau, 8)
	q := ORGQR(a, tau, n)

	c := matrix.Random(m, 5, 62)
	// Q^T c via ORMQR vs explicit.
	got := c.Clone()
	ORMQR(blas.Trans, a, tau, 8, got)
	want := blas.Mul(blas.Trans, blas.NoTrans, q, c)
	if !got.View(0, 0, n, 5).EqualApprox(want, 1e-11) {
		t.Fatal("ORMQR(Q^T) mismatch")
	}
	// Round trip: Q (Q^T c) == c.
	ORMQR(blas.NoTrans, a, tau, 8, got)
	if !got.EqualApprox(c, 1e-10) {
		t.Fatal("ORMQR round trip failed")
	}
}

func TestORMQRBlockSizes(t *testing.T) {
	m, n := 30, 12
	a := matrix.Random(m, n, 63)
	tau := make([]float64, n)
	GEQRF(a, tau, 4)
	c := matrix.Random(m, 3, 64)
	var ref *matrix.Dense
	for _, nb := range []int{1, 3, 5, 12} {
		got := c.Clone()
		ORMQR(blas.Trans, a, tau, nb, got)
		if ref == nil {
			ref = got
		} else if !got.EqualApprox(ref, 1e-12) {
			t.Fatalf("nb=%d differs", nb)
		}
	}
}
