package tsqr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// checkQR verifies A = Q*R, Q^T Q = I and R upper triangular.
func checkQR(t *testing.T, orig *matrix.Dense, tr int, tree Tree) {
	t.Helper()
	m, w := orig.Rows, orig.Cols
	panel := orig.Clone()
	f := Factor(panel, tr, tree)
	r := f.R()
	q := f.ExplicitQ()
	// Orthogonality.
	qtq := blas.Mul(blas.Trans, blas.NoTrans, q, q)
	for i := 0; i < w; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	if e := qtq.MaxAbs(); e > 1e-12*float64(m) {
		t.Errorf("tr=%d tree=%v: ||Q^T Q - I|| = %g", tr, tree, e)
	}
	// Reconstruction.
	qr := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
	if !qr.EqualApprox(orig, 1e-11*float64(m)) {
		t.Errorf("tr=%d tree=%v: A != Q*R", tr, tree)
	}
	// R upper triangular by construction of R(); instead check diagonal
	// magnitudes are nonzero for a random full-rank panel.
	for i := 0; i < w; i++ {
		if r.At(i, i) == 0 {
			t.Errorf("tr=%d tree=%v: zero diagonal in R at %d", tr, tree, i)
		}
	}
}

func TestFactorShapesAndTrees(t *testing.T) {
	for _, tree := range []Tree{Binary, Flat} {
		for _, tc := range []struct{ m, w, tr int }{
			{10, 10, 1}, {40, 5, 2}, {64, 8, 4}, {64, 8, 8},
			{100, 10, 3}, {100, 10, 7}, {200, 25, 16},
			{45, 10, 4},  // ragged last block
			{30, 10, 16}, // tr clamped to m/w
			{12, 1, 4},   // single column
		} {
			orig := matrix.Random(tc.m, tc.w, int64(tc.m*1000+tc.w*10+tc.tr))
			checkQR(t, orig, tc.tr, tree)
		}
	}
}

func TestFactorTr1MatchesGEQR3R(t *testing.T) {
	// With one block TSQR is exactly recursive QR; R must match up to sign
	// conventions (it is literally the same computation).
	orig := matrix.Random(50, 8, 3)
	p1 := orig.Clone()
	f := Factor(p1, 1, Binary)
	if len(f.Levels) != 0 || len(f.Leaves) != 1 {
		t.Fatalf("tr=1 structure: %d leaves %d levels", len(f.Leaves), len(f.Levels))
	}
	r1 := f.R()
	// Reference.
	p2 := orig.Clone()
	FactorLeaf(p2, 0, 50)
	for j := 0; j < 8; j++ {
		for i := 0; i <= j; i++ {
			if math.Abs(r1.At(i, j)-p2.At(i, j)) > 1e-13 {
				t.Fatalf("R(%d,%d) differs: %v vs %v", i, j, r1.At(i, j), p2.At(i, j))
			}
		}
	}
}

func TestRDiagonalMatchesColumnGram(t *testing.T) {
	// |R| from any QR of A satisfies R^T R = A^T A.
	orig := matrix.Random(120, 6, 7)
	for _, tree := range []Tree{Binary, Flat} {
		for _, tr := range []int{1, 2, 4, 8} {
			panel := orig.Clone()
			f := Factor(panel, tr, tree)
			r := f.R()
			ata := blas.Mul(blas.Trans, blas.NoTrans, orig, orig)
			rtr := blas.Mul(blas.Trans, blas.NoTrans, r, r)
			if !ata.EqualApprox(rtr, 1e-10*float64(orig.Rows)) {
				t.Errorf("tr=%d tree=%v: R^T R != A^T A", tr, tree)
			}
		}
	}
}

func TestApplyQTThenQRoundTrip(t *testing.T) {
	orig := matrix.Random(80, 10, 11)
	panel := orig.Clone()
	f := Factor(panel, 4, Binary)
	c := matrix.Random(80, 3, 12)
	saved := c.Clone()
	f.ApplyQT(c)
	if c.EqualApprox(saved, 1e-13) {
		t.Fatal("ApplyQT was a no-op")
	}
	f.ApplyQ(c)
	if !c.EqualApprox(saved, 1e-10) {
		t.Fatal("Q Q^T C != C")
	}
}

func TestApplyQTAnnihilatesPanel(t *testing.T) {
	// Q^T A must equal [R; 0].
	for _, tree := range []Tree{Binary, Flat} {
		orig := matrix.Random(64, 8, 13)
		panel := orig.Clone()
		f := Factor(panel, 4, tree)
		c := orig.Clone()
		f.ApplyQT(c)
		r := f.R()
		top := c.View(0, 0, 8, 8)
		if !top.EqualApprox(r, 1e-11) {
			t.Errorf("tree=%v: top of Q^T A != R", tree)
		}
		bottom := c.View(8, 0, 56, 8)
		if bottom.MaxAbs() > 1e-11 {
			t.Errorf("tree=%v: Q^T A not annihilated below R: %g", tree, bottom.MaxAbs())
		}
	}
}

func TestTreeStructureBinary(t *testing.T) {
	panel := matrix.Random(80, 5, 17)
	f := Factor(panel, 8, Binary)
	if len(f.Leaves) != 8 {
		t.Fatalf("leaves = %d", len(f.Leaves))
	}
	if len(f.Levels) != 3 {
		t.Fatalf("levels = %d want 3", len(f.Levels))
	}
	for l, want := range []int{4, 2, 1} {
		if len(f.Levels[l]) != want {
			t.Fatalf("level %d has %d nodes want %d", l, len(f.Levels[l]), want)
		}
	}
}

func TestTreeStructureFlat(t *testing.T) {
	panel := matrix.Random(80, 5, 18)
	f := Factor(panel, 8, Flat)
	if len(f.Levels) != 1 || len(f.Levels[0]) != 1 {
		t.Fatalf("flat tree levels = %v", f.Levels)
	}
	if got := len(f.Levels[0][0].In); got != 8 {
		t.Fatalf("flat node has %d inputs", got)
	}
}

func TestBinaryOddLeafCount(t *testing.T) {
	// 5 leaves -> levels of 2, 1, 1 nodes (one leaf passes through twice).
	orig := matrix.Random(100, 4, 19)
	panel := orig.Clone()
	f := Factor(panel, 5, Binary)
	if len(f.Leaves) != 5 {
		t.Fatalf("leaves = %d", len(f.Leaves))
	}
	checkQR(t, orig, 5, Binary)
}

func TestLeastSquaresViaTSQR(t *testing.T) {
	// Solve min ||Ax - b|| with A tall and skinny: x = R^{-1} (Q^T b)(0:w).
	m, w := 200, 6
	a := matrix.Random(m, w, 21)
	xWant := matrix.Random(w, 1, 22)
	b := blas.Mul(blas.NoTrans, blas.NoTrans, a, xWant) // consistent system
	panel := a.Clone()
	f := Factor(panel, 8, Binary)
	f.ApplyQT(b)
	x := b.View(0, 0, w, 1)
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, f.R(), x)
	if !x.EqualApprox(xWant, 1e-9) {
		t.Fatal("least squares solution wrong")
	}
}

func TestFactorRInvariantAcrossTrProperty(t *testing.T) {
	// |R(i,i)| is determined by A alone (up to sign), so it must agree
	// across tr and tree shape.
	f := func(seed int64, trRaw, treeRaw uint8) bool {
		tr := int(trRaw)%8 + 1
		tree := Tree(int(treeRaw) % 2)
		m := 40 + int(uint64(seed)%40)
		w := 3 + int(uint64(seed)%5)
		orig := matrix.Random(m, w, seed)
		p1, p2 := orig.Clone(), orig.Clone()
		r1 := Factor(p1, 1, Binary).R()
		r2 := Factor(p2, tr, tree).R()
		for i := 0; i < w; i++ {
			d1, d2 := math.Abs(r1.At(i, i)), math.Abs(r2.At(i, i))
			if math.Abs(d1-d2) > 1e-9*(1+d1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorHybridTree(t *testing.T) {
	for _, tc := range []struct{ m, w, tr int }{
		{64, 8, 4}, {128, 8, 16}, {100, 10, 7}, {200, 25, 8},
	} {
		orig := matrix.Random(tc.m, tc.w, int64(tc.m*7+tc.tr))
		checkQR(t, orig, tc.tr, Hybrid)
	}
}

func TestHybridTreeStructure(t *testing.T) {
	// 16 leaves: level 0 has 4 flat nodes (fan-in 4), then binary levels.
	panel := matrix.Random(320, 4, 31)
	f := Factor(panel, 16, Hybrid)
	if len(f.Leaves) != 16 {
		t.Fatalf("leaves = %d", len(f.Leaves))
	}
	if len(f.Levels) != 3 {
		t.Fatalf("levels = %d want 3", len(f.Levels))
	}
	if len(f.Levels[0]) != 4 || len(f.Levels[0][0].In) != 4 {
		t.Fatalf("hybrid level 0 shape wrong: %d nodes, fan-in %d",
			len(f.Levels[0]), len(f.Levels[0][0].In))
	}
}

func TestFactorStructuredTreeMatchesDense(t *testing.T) {
	for _, tc := range []struct{ m, w, tr int }{
		{64, 8, 4}, {128, 16, 8}, {200, 25, 4}, {90, 10, 3},
	} {
		orig := matrix.Random(tc.m, tc.w, int64(tc.m+tc.w))
		checkQR(t, orig, tc.tr, Binary) // dense baseline, sanity

		panel := orig.Clone()
		f := FactorTree(panel, tc.tr, Binary, true)
		// All eligible nodes must actually be structured.
		for _, lvl := range f.Levels {
			for _, n := range lvl {
				if len(n.In) == 2 && n.In[0].K == tc.w && n.In[1].K == tc.w && !n.Tri {
					t.Fatalf("eligible node not structured: %+v", n.In)
				}
			}
		}
		// R and Q must match the dense tree bit-for-mathematics: the
		// structured reflectors are the same vectors, so R agrees exactly.
		dense := orig.Clone()
		fd := FactorTree(dense, tc.tr, Binary, false)
		if !f.R().EqualApprox(fd.R(), 1e-11) {
			t.Fatalf("%+v: structured R differs from dense R", tc)
		}
		// And the implicit Q behaves: A = Q R.
		q := f.ExplicitQ()
		r := f.R()
		prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
		if !prod.EqualApprox(orig, 1e-11*float64(tc.m)) {
			t.Fatalf("%+v: structured A != Q R", tc)
		}
	}
}

func TestFactorStructuredFlatFallsBack(t *testing.T) {
	// Flat-tree nodes have fan-in > 2 and must fall back to dense merges.
	panel := matrix.Random(120, 6, 44)
	f := FactorTree(panel, 8, Flat, true)
	if len(f.Levels) != 1 || f.Levels[0][0].Tri {
		t.Fatal("flat node should be dense")
	}
	// Still correct.
	q := f.ExplicitQ()
	r := f.R()
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
	if !prod.EqualApprox(matrix.Random(120, 6, 44), 1e-10*120) {
		t.Fatal("flat fallback incorrect")
	}
}
