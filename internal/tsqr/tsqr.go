// Package tsqr implements TSQR, the communication-avoiding QR factorization
// of tall-and-skinny panels, the panel kernel of CAQR.
//
// The panel is split into Tr block rows. Each block is factored
// independently (Householder QR via the recursive dgeqr3 kernel), producing
// local R factors. A reduction tree then repeatedly stacks R factors atop
// one another and factors the stack, until a single R remains. With a binary
// tree the reduction takes log2(Tr) rounds of pairwise [R; R] QRs; with the
// flat (height-1) tree all local Rs are stacked and factored in one round —
// the variant the paper finds competitive on multicore.
//
// Q is never formed explicitly: the factorization object retains the leaf
// reflectors (in the panel, LAPACK-style) and every tree node's reflectors,
// so Q and Q^T can be applied implicitly — including block-wise, which is
// what multithreaded CAQR's trailing-matrix update tasks need.
package tsqr

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/scratch"
	"repro/internal/tslu"
)

// Tree selects the reduction tree shape; the semantics mirror tslu.Tree.
type Tree = tslu.Tree

// Reduction tree shapes, re-exported for convenience.
const (
	Binary = tslu.Binary
	Flat   = tslu.Flat
	Hybrid = tslu.Hybrid
)

// Leaf is the QR factorization of one block row of the panel. Its reflector
// vectors remain stored in the panel below the diagonal of the block; the
// leaf only carries the compact-WY T factor.
type Leaf struct {
	// Row is the global index of the block's first row; Rows its height.
	Row, Rows int
	// K is the number of reflectors, min(Rows, panel width).
	K int
	// T is the K x K compact-WY factor of the block's reflectors.
	T *matrix.Dense
}

// Carrier identifies where an intermediate R factor lives: K rows starting
// at panel row Row.
type Carrier struct {
	Row, K int
}

// Node is one reduction-tree QR of vertically stacked R factors.
type Node struct {
	// In lists the carriers of the stacked operands, top to bottom.
	In []Carrier
	// Out is where the node's result R lives: the leading rows of In[0].
	Out Carrier
	// V holds the node's reflector vectors and T the compact-WY factor.
	// For a dense node V is the factored (sum K_i) x width stack (unit
	// lower trapezoidal); for a structured node (Tri) V is the width x
	// width upper-triangular V2 block produced by lapack.TTQRT, stored in
	// place in the second carrier's rows of the panel.
	V, T *matrix.Dense
	// Tri marks a structured triangle-on-triangle node.
	Tri bool
}

// Factorization is the result of TSQR on a panel: the implicit Q (leaf
// reflectors in the panel plus tree-node reflectors here) and R (in the top
// of the panel).
type Factorization struct {
	// Panel is the factored panel: R in the leading width x width upper
	// triangle, leaf reflectors below the block diagonals.
	Panel *matrix.Dense
	// Width is the panel's column count.
	Width int
	// TreeShape records which reduction tree was used.
	TreeShape Tree
	// Leaves holds the per-block leaf factorizations, in row order.
	Leaves []Leaf
	// Levels holds the reduction rounds: Levels[0] is the first merge
	// round, each level a list of nodes. A flat tree has one level with a
	// single node; tr == 1 yields no levels.
	Levels [][]Node
}

// qrFull factors a (possibly wide or short) block in place and returns its
// compact-WY T. It uses the recursive GEQR3 kernel when the block is tall
// enough, falling back to GEQR2+Larft otherwise.
func qrFull(a *matrix.Dense) *matrix.Dense {
	k := min(a.Rows, a.Cols)
	t := matrix.New(k, k)
	if a.Rows >= a.Cols {
		tau := make([]float64, a.Cols)
		lapack.GEQR3(a, tau, t)
		return t
	}
	tau := make([]float64, k)
	lapack.GEQR2(a, tau)
	lapack.Larft(a.View(0, 0, a.Rows, k), tau[:k], t)
	return t
}

// FactorLeaf factors one block row of the panel in place and returns the
// leaf record. It is exposed separately so multithreaded CAQR can schedule
// it as a task P.
func FactorLeaf(panel *matrix.Dense, row, rows int) Leaf {
	block := panel.View(row, 0, rows, panel.Cols)
	t := qrFull(block)
	return Leaf{Row: row, Rows: rows, K: min(rows, panel.Cols), T: t}
}

// MergeCarriers performs one reduction-tree node: it gathers the R factors
// identified by the carriers from the panel, factors the stack, writes the
// resulting R back into the leading carrier's rows (upper triangle only)
// and returns the node. Exposed for task-based CAQR.
func MergeCarriers(panel *matrix.Dense, in []Carrier) Node {
	w := panel.Cols
	total := 0
	for _, c := range in {
		total += c.K
	}
	stack := matrix.New(total, w)
	at := 0
	for _, c := range in {
		// Gather only the upper-triangular R values; the sub-diagonal of
		// the carrier rows holds reflector data belonging to other nodes.
		for j := 0; j < w; j++ {
			dst := stack.Col(j)
			for i := 0; i < c.K && i <= j; i++ {
				dst[at+i] = panel.At(c.Row+i, j)
			}
		}
		at += c.K
	}
	t := qrFull(stack)
	k := min(total, w)
	out := Carrier{Row: in[0].Row, K: k}
	// Write the merged R back into the leading carrier's upper triangle.
	for j := 0; j < w; j++ {
		for i := 0; i < k && i <= j; i++ {
			panel.Set(out.Row+i, j, stack.At(i, j))
		}
	}
	return Node{In: append([]Carrier(nil), in...), Out: out, V: stack, T: t}
}

// MergeCarriersStructured performs a reduction-tree node with the
// triangle-on-triangle kernel (lapack.TTQRT) when the node merges exactly
// two full-width triangles: the merge runs fully in place on the panel
// (no gather/scatter) at ~1/5 of the dense stacked flops — the CAQR
// optimization the paper's conclusion anticipates. Ineligible nodes
// (flat-tree fan-in > 2, ragged trailing carriers) fall back to the dense
// MergeCarriers.
func MergeCarriersStructured(panel *matrix.Dense, in []Carrier) Node {
	w := panel.Cols
	if len(in) != 2 || in[0].K != w || in[1].K != w {
		return MergeCarriers(panel, in)
	}
	r1 := panel.View(in[0].Row, 0, w, w)
	r2 := panel.View(in[1].Row, 0, w, w)
	t := matrix.New(w, w)
	// TTQRT touches only the upper triangles of both carriers, leaving the
	// leaf reflectors stored strictly below them intact.
	triR2 := extractUpper(r2)
	lapack.TTQRT(r1, triR2, t)
	// Write V2 (upper triangular) back over R2's triangle.
	for j := 0; j < w; j++ {
		dst := r2.Col(j)
		src := triR2.Col(j)
		for i := 0; i <= j; i++ {
			dst[i] = src[i]
		}
	}
	out := Carrier{Row: in[0].Row, K: w}
	return Node{In: append([]Carrier(nil), in...), Out: out, V: triR2, T: t, Tri: true}
}

// extractUpper copies the upper triangle of a square view (zeros below).
func extractUpper(a *matrix.Dense) *matrix.Dense {
	n := a.Cols
	out := matrix.New(n, n)
	for j := 0; j < n; j++ {
		src := a.Col(j)
		dst := out.Col(j)
		for i := 0; i <= j; i++ {
			dst[i] = src[i]
		}
	}
	return out
}

// Plan computes the static shape of a TSQR reduction for an m x w panel
// with tr block rows: the leaf row ranges and, per reduction level, the
// carriers each node merges. V and T in the returned nodes are nil; Factor
// (sequentially) or multithreaded CAQR (as tasks) fill the same structure.
//
// tr is clamped so each block except possibly the last has at least w rows,
// since a merged R needs w rows of its leading carrier's block to live in.
// The paper's tall-and-skinny regime (m >> w*Tr) never clamps.
func Plan(m, w, tr int, tree Tree) (blocks [][2]int, levels [][]Node) {
	if w > 0 && tr > m/w {
		tr = m / w
	}
	if tr < 1 {
		tr = 1
	}
	blocks = tslu.Partition(m, tr)
	if len(blocks) == 1 {
		return blocks, nil
	}
	// Carriers indexed like tslu.PlanReduction's node indices: leaves
	// first, merge outputs appended in step order.
	carriers := make([]Carrier, len(blocks))
	for i, blk := range blocks {
		carriers[i] = Carrier{Row: blk[0], K: min(blk[1]-blk[0], w)}
	}
	depth := make([]int, len(blocks)) // tree level per node index
	steps := tslu.PlanReduction(len(blocks), tree)
	for _, st := range steps {
		total, lvl := 0, 0
		in := make([]Carrier, len(st.In))
		for i, idx := range st.In {
			in[i] = carriers[idx]
			total += carriers[idx].K
			if depth[idx] > lvl {
				lvl = depth[idx]
			}
		}
		node := Node{In: in, Out: Carrier{Row: in[0].Row, K: min(total, w)}}
		carriers = append(carriers, node.Out)
		depth = append(depth, lvl+1)
		for len(levels) < lvl+1 {
			levels = append(levels, nil)
		}
		levels[lvl] = append(levels[lvl], node)
	}
	return blocks, levels
}

// Factor computes the TSQR factorization of the panel (m x w, m >= w) in
// place, using tr block rows and the given reduction tree, with the
// paper-faithful dense tree merges.
func Factor(panel *matrix.Dense, tr int, tree Tree) *Factorization {
	return FactorTree(panel, tr, tree, false)
}

// FactorTree is Factor with a choice of tree-merge kernel: structured true
// uses the triangle-on-triangle TTQRT for eligible nodes.
func FactorTree(panel *matrix.Dense, tr int, tree Tree, structured bool) *Factorization {
	m, w := panel.Rows, panel.Cols
	if m < w {
		panic(fmt.Sprintf("tsqr: panel must be tall, got %dx%d", m, w))
	}
	f := &Factorization{Panel: panel, Width: w, TreeShape: tree}
	if w == 0 {
		return f
	}
	blocks, levels := Plan(m, w, tr, tree)
	for _, blk := range blocks {
		f.Leaves = append(f.Leaves, FactorLeaf(panel, blk[0], blk[1]-blk[0]))
	}
	merge := MergeCarriers
	if structured {
		merge = MergeCarriersStructured
	}
	for _, lvl := range levels {
		nodes := make([]Node, len(lvl))
		for i, n := range lvl {
			nodes[i] = merge(panel, n.In)
		}
		f.Levels = append(f.Levels, nodes)
	}
	return f
}

// R returns a copy of the w x w upper-triangular factor.
func (f *Factorization) R() *matrix.Dense {
	w := f.Width
	r := matrix.New(w, w)
	for j := 0; j < w; j++ {
		for i := 0; i <= j; i++ {
			r.Set(i, j, f.Panel.At(i, j))
		}
	}
	return r
}

// ApplyLeafQT applies leaf i's Q^T to the matching block rows of c, which
// must have the same row count as the panel. This is CAQR's task S at the
// leaves of the tree.
func (f *Factorization) ApplyLeafQT(i int, c *matrix.Dense) {
	f.applyLeaf(i, c, blas.Trans)
}

// ApplyNodeQT applies tree node (level, j)'s Q^T to the carrier rows of c.
// This is CAQR's task S at the inner levels.
func (f *Factorization) ApplyNodeQT(level, j int, c *matrix.Dense) {
	f.applyNode(level, j, c, blas.Trans)
}

func (f *Factorization) applyLeaf(i int, c *matrix.Dense, trans blas.Transpose) {
	if c.Rows != f.Panel.Rows {
		panic(fmt.Sprintf("tsqr: apply rows %d want %d", c.Rows, f.Panel.Rows))
	}
	leaf := f.Leaves[i]
	v := f.Panel.View(leaf.Row, 0, leaf.Rows, leaf.K)
	sub := c.View(leaf.Row, 0, leaf.Rows, c.Cols)
	lapack.Larfb(trans, v, leaf.T, sub)
}

func (f *Factorization) applyNode(level, j int, c *matrix.Dense, trans blas.Transpose) {
	node := f.Levels[level][j]
	if node.Tri {
		w := f.Width
		c1 := c.View(node.In[0].Row, 0, w, c.Cols)
		c2 := c.View(node.In[1].Row, 0, w, c.Cols)
		lapack.TTMQRT(trans, node.V, node.T, c1, c2)
		return
	}
	total := node.V.Rows
	// tmp is a pooled workspace: the gather loop overwrites all of it
	// (the carriers' K sum to total, matching how V was stacked).
	tmp := scratch.Dense(total, c.Cols)
	at := 0
	for _, cr := range node.In {
		tmp.View(at, 0, cr.K, c.Cols).CopyFrom(c.View(cr.Row, 0, cr.K, c.Cols))
		at += cr.K
	}
	lapack.Larfb(trans, node.V, node.T, tmp)
	at = 0
	for _, cr := range node.In {
		c.View(cr.Row, 0, cr.K, c.Cols).CopyFrom(tmp.View(at, 0, cr.K, c.Cols))
		at += cr.K
	}
	scratch.Release(tmp)
}

// ApplyQT overwrites c with Q^T * c, traversing leaves then tree levels in
// order. c must have the panel's row count. On return rows 0..w hold the
// leading block of Q^T c (for least squares, R x = (Q^T b)(0:w)).
func (f *Factorization) ApplyQT(c *matrix.Dense) {
	for i := range f.Leaves {
		f.ApplyLeafQT(i, c)
	}
	for l := range f.Levels {
		for j := range f.Levels[l] {
			f.ApplyNodeQT(l, j, c)
		}
	}
}

// ApplyQ overwrites c with Q * c: the transpose traversal of ApplyQT —
// tree levels from the root down, then leaves.
func (f *Factorization) ApplyQ(c *matrix.Dense) {
	for l := len(f.Levels) - 1; l >= 0; l-- {
		for j := len(f.Levels[l]) - 1; j >= 0; j-- {
			f.applyNode(l, j, c, blas.NoTrans)
		}
	}
	for i := len(f.Leaves) - 1; i >= 0; i-- {
		f.applyLeaf(i, c, blas.NoTrans)
	}
}

// ExplicitQ forms the thin m x w orthogonal factor by applying Q to the
// first w columns of the identity.
func (f *Factorization) ExplicitQ() *matrix.Dense {
	m, w := f.Panel.Rows, f.Width
	q := matrix.New(m, w)
	for i := 0; i < w; i++ {
		q.Set(i, i, 1)
	}
	f.ApplyQ(q)
	return q
}
