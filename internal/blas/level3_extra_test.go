package blas

import (
	"testing"

	"repro/internal/matrix"
)

// These tests close a coverage gap: the transpose paths of Dgemm and the
// Right-side paths of Dtrsm/Dtrmm were only exercised with tight leading
// dimensions (lda == rows) and alpha in {0, 1}. Here every operand is a
// view into a larger parent matrix (lda > rows) and alpha is fractional
// and/or negative, against the same naive references.

// viewOf embeds an r x c random block inside a larger parent so its leading
// dimension exceeds its row count.
func viewOf(r, c int, seed int64) *matrix.Dense {
	parent := matrix.Random(r+9, c+7, seed)
	return parent.View(3, 2, r, c)
}

func TestDgemmTransposePathsStridedAlpha(t *testing.T) {
	const m, n, k = 11, 8, 6
	for _, ta := range []Transpose{NoTrans, Trans} {
		for _, tb := range []Transpose{NoTrans, Trans} {
			ar, ac := m, k
			if ta == Trans {
				ar, ac = k, m
			}
			br, bc := k, n
			if tb == Trans {
				br, bc = n, k
			}
			a := viewOf(ar, ac, 41)
			b := viewOf(br, bc, 42)
			c := viewOf(m, n, 43)
			want := c.Clone()
			refGemm(ta, tb, -2.5, a, b, 0.75, want)
			Gemm(ta, tb, -2.5, a, b, 0.75, c)
			if !c.EqualApprox(want, 1e-12) {
				t.Errorf("Dgemm transA=%v transB=%v with lda>rows, alpha=-2.5 mismatch", ta, tb)
			}
		}
	}
}

func TestDtrsmRightSideStridedAlpha(t *testing.T) {
	const m, n = 9, 6
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := viewOf(n, n, 51)
				for i := 0; i < n; i++ {
					a.Set(i, i, a.At(i, i)+3) // keep the triangle well conditioned
				}
				b := viewOf(m, n, 52)
				x := b.Clone()
				const alpha = -1.5
				Trsm(Right, uplo, trans, diag, alpha, a, x)
				// Verify X * op(T) == alpha * B.
				tri := refTri(uplo, diag, a)
				got := Mul(NoTrans, trans, x, tri)
				want := b.Clone()
				for j := 0; j < n; j++ {
					col := want.Col(j)
					for i := range col {
						col[i] *= alpha
					}
				}
				if !got.EqualApprox(want, 1e-10) {
					t.Errorf("Dtrsm Right uplo=%v trans=%v diag=%v with lda>rows, alpha=%v mismatch",
						uplo, trans, diag, alpha)
				}
			}
		}
	}
}

func TestDtrmmRightSideStridedAlpha(t *testing.T) {
	const m, n = 7, 5
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := viewOf(n, n, 61)
				b := viewOf(m, n, 62)
				x := b.Clone()
				const alpha = 2.25
				Trmm(Right, uplo, trans, diag, alpha, a, x)
				tri := refTri(uplo, diag, a)
				want := matrix.New(m, n)
				refGemm(NoTrans, trans, alpha, b, tri, 0, want)
				if !x.EqualApprox(want, 1e-11) {
					t.Errorf("Dtrmm Right uplo=%v trans=%v diag=%v with lda>rows, alpha=%v mismatch",
						uplo, trans, diag, alpha)
				}
			}
		}
	}
}
