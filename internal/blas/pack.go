package blas

// Packing layer of the Goto-style Dgemm (see doc/KERNELS.md).
//
// The driver partitions C into MC x NC macro-tiles updated by rank-KC
// products. Before the microkernel runs, the corresponding MC x KC block of
// op(A) and KC x NC block of op(B) are copied once into contiguous,
// kernel-shaped scratch buffers:
//
//   - op(A) blocks become row panels of gemmMR-high strips: strip s holds
//     rows [s*MR, s*MR+MR) and stores, for each depth index p, the MR row
//     values contiguously (buf[s*MR*kc + p*MR + i]). alpha is folded in
//     during the copy, so it is applied exactly once per element.
//   - op(B) blocks become column panels of gemmNR-wide strips: strip s
//     holds columns [s*NR, s*NR+NR) and stores, for each p, the NR column
//     values contiguously (buf[s*NR*kc + p*NR + j]).
//
// Fringe strips are zero-padded to the full MR/NR width so the microkernel
// never sees a partial strip; the macrokernel masks the padded rows/columns
// when writing C back. Both packing directions handle NoTrans and Trans
// sources, which is what lets all four Dgemm transpose variants — and the
// Dtrsm/Dtrmm gemm-updates built on them — share the one packed path.

// packA packs the mc x kc block of op(A) whose (0,0) element is a[0] into
// MR-strip format, scaling by alpha. For trans == NoTrans, op(A)[i,p] is
// a[p*lda+i]; for trans == Trans it is a[i*lda+p]. buf must hold at least
// ceilMul(mc, gemmMR)*kc elements; padded rows are zeroed.
func packA(trans Transpose, mc, kc int, alpha float64, a []float64, lda int, buf []float64) {
	for ir := 0; ir < mc; ir += gemmMR {
		ib := min(gemmMR, mc-ir)
		dst := buf[ir*kc : ir*kc+gemmMR*kc]
		if trans == NoTrans {
			// Source columns are contiguous over the row index.
			for p := 0; p < kc; p++ {
				src := a[p*lda+ir : p*lda+ir+ib]
				d := dst[p*gemmMR : p*gemmMR+gemmMR]
				for i, v := range src {
					d[i] = alpha * v
				}
				for i := ib; i < gemmMR; i++ {
					d[i] = 0
				}
			}
			continue
		}
		// Trans: op(A) row i is the contiguous source row a[(ir+i)*lda:].
		if ib < gemmMR {
			for i := range dst {
				dst[i] = 0
			}
		}
		for i := 0; i < ib; i++ {
			src := a[(ir+i)*lda : (ir+i)*lda+kc]
			for p, v := range src {
				dst[p*gemmMR+i] = alpha * v
			}
		}
	}
}

// packB packs the kc x nc block of op(B) whose (0,0) element is b[0] into
// NR-strip format. For trans == NoTrans, op(B)[p,j] is b[j*ldb+p]; for
// trans == Trans it is b[p*ldb+j]. buf must hold at least
// kc*ceilMul(nc, gemmNR) elements; padded columns are zeroed.
func packB(trans Transpose, kc, nc int, b []float64, ldb int, buf []float64) {
	for jr := 0; jr < nc; jr += gemmNR {
		jb := min(gemmNR, nc-jr)
		dst := buf[jr*kc : jr*kc+gemmNR*kc]
		if trans == NoTrans {
			// op(B) column j is the contiguous source column b[(jr+j)*ldb:].
			if jb < gemmNR {
				for i := range dst {
					dst[i] = 0
				}
			}
			for j := 0; j < jb; j++ {
				src := b[(jr+j)*ldb : (jr+j)*ldb+kc]
				for p, v := range src {
					dst[p*gemmNR+j] = v
				}
			}
			continue
		}
		// Trans: for fixed p the NR column values are contiguous in the
		// source row b[p*ldb+jr:].
		for p := 0; p < kc; p++ {
			src := b[p*ldb+jr : p*ldb+jr+jb]
			d := dst[p*gemmNR : p*gemmNR+gemmNR]
			for j, v := range src {
				d[j] = v
			}
			for j := jb; j < gemmNR; j++ {
				d[j] = 0
			}
		}
	}
}

// ceilMul rounds n up to the next multiple of q.
func ceilMul(n, q int) int {
	return (n + q - 1) / q * q
}
