package blas

import (
	"errors"
	"testing"

	"repro/internal/matrix"
)

// TestShapePanicIsTyped pins the error contract calint enforces: an
// argument-validation panic must carry ErrShape so errors.Is keeps
// working after the scheduler's recover path converts it into an error.
func TestShapePanicIsTyped(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a shape panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value is %T, want error", r)
		}
		if !errors.Is(err, ErrShape) {
			t.Fatalf("errors.Is(%v, ErrShape) = false", err)
		}
	}()
	a := matrix.New(2, 3)
	b := matrix.New(4, 5)
	c := matrix.New(2, 2)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
}
