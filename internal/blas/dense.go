package blas

import (
	"fmt"

	"repro/internal/matrix"
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C on Dense operands.
// It is a thin shape-checked wrapper over Dgemm used throughout the
// factorization and test code.
func Gemm(transA, transB Transpose, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	m, ka := a.Rows, a.Cols
	if transA == Trans {
		m, ka = a.Cols, a.Rows
	}
	kb, n := b.Rows, b.Cols
	if transB == Trans {
		kb, n = b.Cols, b.Rows
	}
	if ka != kb || c.Rows != m || c.Cols != n {
		panic(fmt.Errorf("%w: Gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", ErrShape, m, ka, kb, n, c.Rows, c.Cols))
	}
	Dgemm(transA, transB, m, n, ka, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}

// Mul returns op(A)*op(B) in a newly allocated matrix.
func Mul(transA, transB Transpose, a, b *matrix.Dense) *matrix.Dense {
	m := a.Rows
	if transA == Trans {
		m = a.Cols
	}
	n := b.Cols
	if transB == Trans {
		n = b.Rows
	}
	c := matrix.New(m, n)
	Gemm(transA, transB, 1, a, b, 0, c)
	return c
}

// Trsm solves op(A)*X = alpha*B or X*op(A) = alpha*B in place on Dense
// operands; A must be square and match the corresponding dimension of B.
func Trsm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, a, b *matrix.Dense) {
	if a.Rows != a.Cols {
		panic(fmt.Errorf("%w: Trsm triangular matrix not square: %dx%d", ErrShape, a.Rows, a.Cols))
	}
	need := b.Rows
	if side == Right {
		need = b.Cols
	}
	if a.Rows != need {
		panic(fmt.Errorf("%w: Trsm dimension mismatch A=%d B=%dx%d side=%v", ErrShape, a.Rows, b.Rows, b.Cols, side))
	}
	Dtrsm(side, uplo, trans, diag, b.Rows, b.Cols, alpha, a.Data, a.Stride, b.Data, b.Stride)
}

// Trmm computes B = alpha*op(A)*B or B = alpha*B*op(A) in place on Dense
// operands.
func Trmm(side Side, uplo Uplo, trans Transpose, diag Diag, alpha float64, a, b *matrix.Dense) {
	if a.Rows != a.Cols {
		panic(fmt.Errorf("%w: Trmm triangular matrix not square: %dx%d", ErrShape, a.Rows, a.Cols))
	}
	need := b.Rows
	if side == Right {
		need = b.Cols
	}
	if a.Rows != need {
		panic(fmt.Errorf("%w: Trmm dimension mismatch A=%d B=%dx%d side=%v", ErrShape, a.Rows, b.Rows, b.Cols, side))
	}
	Dtrmm(side, uplo, trans, diag, b.Rows, b.Cols, alpha, a.Data, a.Stride, b.Data, b.Stride)
}
