package blas

// Unblocked triangular kernels: the diagonal-block building blocks of the
// blocked Dtrsm/Dtrmm drivers in level3.go. They operate on triangles of at
// most trsmNB order (cache-resident), so the simple column sweeps here are
// adequate; all O(n^2 m) off-diagonal work happens in the packed Dgemm.
// Shape validation happened in the public drivers.

// trsmUnbLeft solves op(A)*X = B in place, column by column, for an m x m
// triangle (alpha already applied by the driver).
func trsmUnbLeft(uplo Uplo, trans Transpose, diag Diag, m, n int, a []float64, lda int, b []float64, ldb int) {
	for j := 0; j < n; j++ {
		Dtrsv(uplo, trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
	}
}

// trsmUnbRight solves X*op(A) = B in place for an n x n triangle, processing
// columns of X in dependency order (alpha already applied by the driver).
func trsmUnbRight(uplo Uplo, trans Transpose, diag Diag, m, n int, a []float64, lda int, b []float64, ldb int) {
	switch {
	case uplo == Upper && trans == NoTrans:
		// X(:,j) = (B(:,j) - sum_{k<j} X(:,k) A(k,j)) / A(j,j)
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for k := 0; k < j; k++ {
				akj := a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= akj * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	case uplo == Lower && trans == NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for k := j + 1; k < n; k++ {
				akj := a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= akj * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	case uplo == Upper && trans == Trans:
		// X * A^T = B with A upper => effective coefficient A(j,k) for k>j.
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for k := j + 1; k < n; k++ {
				ajk := a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= ajk * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	default: // Lower, Trans
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for k := 0; k < j; k++ {
				ajk := a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= ajk * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	}
}

// trmmUnbLeft computes B = alpha*op(A)*B in place for an m x m triangle.
func trmmUnbLeft(uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	for j := 0; j < n; j++ {
		col := b[j*ldb : j*ldb+m]
		Dtrmv(uplo, trans, diag, m, a, lda, col, 1)
		if alpha != 1 {
			for i := range col {
				col[i] *= alpha
			}
		}
	}
}

// trmmUnbRight computes B = alpha*B*op(A) in place for an n x n triangle,
// processing columns in an order that reads only not-yet-overwritten ones.
func trmmUnbRight(uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	switch {
	case uplo == Upper && trans == NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := 0; k < j; k++ {
				akj := alpha * a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += akj * bk[i]
				}
			}
		}
	case uplo == Lower && trans == NoTrans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := j + 1; k < n; k++ {
				akj := alpha * a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += akj * bk[i]
				}
			}
		}
	case uplo == Upper && trans == Trans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := j + 1; k < n; k++ {
				ajk := alpha * a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += ajk * bk[i]
				}
			}
		}
	default: // Lower, Trans
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := 0; k < j; k++ {
				ajk := alpha * a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += ajk * bk[i]
				}
			}
		}
	}
}
