package blas

import "fmt"

// Transpose selects whether a matrix argument is used as-is or transposed.
type Transpose bool

// Transpose values.
const (
	NoTrans Transpose = false
	Trans   Transpose = true
)

// Side selects whether a triangular factor multiplies from the left or the
// right in Dtrsm/Dtrmm.
type Side int

// Side values.
const (
	Left Side = iota
	Right
)

// Uplo selects the triangle of a triangular matrix argument.
type Uplo int

// Uplo values.
const (
	Upper Uplo = iota
	Lower
)

// Diag states whether a triangular matrix has an implicit unit diagonal.
type Diag int

// Diag values.
const (
	NonUnit Diag = iota
	Unit
)

// Dger performs the rank-1 update A = A + alpha * x * y^T where A is m x n
// with leading dimension lda.
//
// The unit-incX path — the inner loop of the rgetf2 panel factorization,
// where this routine is on the critical path of every CALU panel — is
// unrolled over four columns so each x element loaded feeds four column
// updates instead of one.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int, a []float64, lda int) {
	if m < 0 || n < 0 || lda < max(1, m) {
		panic(fmt.Errorf("%w: Dger bad dims m=%d n=%d lda=%d", ErrShape, m, n, lda))
	}
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	if incX == 1 {
		xv := x[:m]
		iy := 0
		j := 0
		for ; j+4 <= n; j += 4 {
			y0 := alpha * y[iy]
			y1 := alpha * y[iy+incY]
			y2 := alpha * y[iy+2*incY]
			y3 := alpha * y[iy+3*incY]
			iy += 4 * incY
			a0 := a[(j+0)*lda : (j+0)*lda+m]
			a1 := a[(j+1)*lda : (j+1)*lda+m]
			a2 := a[(j+2)*lda : (j+2)*lda+m]
			a3 := a[(j+3)*lda : (j+3)*lda+m]
			for i, v := range xv {
				a0[i] += v * y0
				a1[i] += v * y1
				a2[i] += v * y2
				a3[i] += v * y3
			}
		}
		for ; j < n; j++ {
			ajy := alpha * y[iy]
			iy += incY
			if ajy == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			for i, v := range xv {
				col[i] += v * ajy
			}
		}
		return
	}
	iy := 0
	for j := 0; j < n; j++ {
		ajy := alpha * y[iy]
		iy += incY
		if ajy == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		ix := 0
		for i := 0; i < m; i++ {
			col[i] += x[ix] * ajy
			ix += incX
		}
	}
}

// Dgemv computes y = alpha*op(A)*x + beta*y for an m x n matrix A.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, incX int, beta float64, y []float64, incY int) {
	if m < 0 || n < 0 || lda < max(1, m) {
		panic(fmt.Errorf("%w: Dgemv bad dims m=%d n=%d lda=%d", ErrShape, m, n, lda))
	}
	lenY := m
	if trans == Trans {
		lenY = n
	}
	if beta != 1 {
		iy := 0
		for i := 0; i < lenY; i++ {
			if beta == 0 {
				y[iy] = 0
			} else {
				y[iy] *= beta
			}
			iy += incY
		}
	}
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	if trans == NoTrans {
		// y += alpha * A * x, column by column.
		ix := 0
		for j := 0; j < n; j++ {
			ajx := alpha * x[ix]
			ix += incX
			if ajx == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			if incY == 1 {
				for i, v := range col {
					y[i] += ajx * v
				}
			} else {
				iy := 0
				for i := 0; i < m; i++ {
					y[iy] += ajx * col[i]
					iy += incY
				}
			}
		}
		return
	}
	// y += alpha * A^T * x: each y[j] is a dot of column j with x.
	iy := 0
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		sum := 0.0
		if incX == 1 {
			for i, v := range col {
				sum += v * x[i]
			}
		} else {
			ix := 0
			for i := 0; i < m; i++ {
				sum += col[i] * x[ix]
				ix += incX
			}
		}
		y[iy] += alpha * sum
		iy += incY
	}
}

// Dtrsv solves op(A)*x = b in place (x overwrites b) for a triangular n x n
// matrix A.
func Dtrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	if n < 0 || lda < max(1, n) {
		panic(fmt.Errorf("%w: Dtrsv bad dims n=%d lda=%d", ErrShape, n, lda))
	}
	if n == 0 {
		return
	}
	if incX != 1 {
		panic(fmt.Errorf("%w: Dtrsv requires incX == 1", ErrShape))
	}
	switch {
	case uplo == Lower && trans == NoTrans:
		for i := 0; i < n; i++ {
			sum := x[i]
			for k := 0; k < i; k++ {
				sum -= a[k*lda+i] * x[k]
			}
			if diag == NonUnit {
				sum /= a[i*lda+i]
			}
			x[i] = sum
		}
	case uplo == Upper && trans == NoTrans:
		for i := n - 1; i >= 0; i-- {
			sum := x[i]
			for k := i + 1; k < n; k++ {
				sum -= a[k*lda+i] * x[k]
			}
			if diag == NonUnit {
				sum /= a[i*lda+i]
			}
			x[i] = sum
		}
	case uplo == Lower && trans == Trans:
		for i := n - 1; i >= 0; i-- {
			sum := x[i]
			for k := i + 1; k < n; k++ {
				sum -= a[i*lda+k] * x[k]
			}
			if diag == NonUnit {
				sum /= a[i*lda+i]
			}
			x[i] = sum
		}
	default: // Upper, Trans
		for i := 0; i < n; i++ {
			sum := x[i]
			for k := 0; k < i; k++ {
				sum -= a[i*lda+k] * x[k]
			}
			if diag == NonUnit {
				sum /= a[i*lda+i]
			}
			x[i] = sum
		}
	}
}

// Dtrmv computes x = op(A)*x for a triangular n x n matrix A.
func Dtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int, x []float64, incX int) {
	if n < 0 || lda < max(1, n) {
		panic(fmt.Errorf("%w: Dtrmv bad dims n=%d lda=%d", ErrShape, n, lda))
	}
	if n == 0 {
		return
	}
	if incX != 1 {
		panic(fmt.Errorf("%w: Dtrmv requires incX == 1", ErrShape))
	}
	switch {
	case uplo == Upper && trans == NoTrans:
		for i := 0; i < n; i++ {
			sum := 0.0
			if diag == NonUnit {
				sum = a[i*lda+i] * x[i]
			} else {
				sum = x[i]
			}
			for k := i + 1; k < n; k++ {
				sum += a[k*lda+i] * x[k]
			}
			x[i] = sum
		}
	case uplo == Lower && trans == NoTrans:
		for i := n - 1; i >= 0; i-- {
			sum := 0.0
			if diag == NonUnit {
				sum = a[i*lda+i] * x[i]
			} else {
				sum = x[i]
			}
			for k := 0; k < i; k++ {
				sum += a[k*lda+i] * x[k]
			}
			x[i] = sum
		}
	case uplo == Upper && trans == Trans:
		for i := n - 1; i >= 0; i-- {
			sum := 0.0
			if diag == NonUnit {
				sum = a[i*lda+i] * x[i]
			} else {
				sum = x[i]
			}
			for k := 0; k < i; k++ {
				sum += a[i*lda+k] * x[k]
			}
			x[i] = sum
		}
	default: // Lower, Trans
		for i := 0; i < n; i++ {
			sum := 0.0
			if diag == NonUnit {
				sum = a[i*lda+i] * x[i]
			} else {
				sum = x[i]
			}
			for k := i + 1; k < n; k++ {
				sum += a[i*lda+k] * x[k]
			}
			x[i] = sum
		}
	}
}
