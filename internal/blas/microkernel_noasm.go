//go:build !amd64

package blas

// Non-amd64 builds have no assembly microkernel: useAsmKernel stays false
// and dispatch always takes the generic path.

const asmKernelName = "none"

// probeAsmKernel: no assembly kernel exists off amd64.
func probeAsmKernel() bool { return false }

// gemmKernelAsm is never reached when useAsmKernel is false; it exists so
// the dispatch in microkernel.go compiles on every architecture.
func gemmKernelAsm(kc int, a, b, c []float64, ldc int) {
	gemmKernelGeneric(kc, a, b, c, ldc)
}
