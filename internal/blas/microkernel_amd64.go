//go:build amd64

package blas

// AVX2+FMA microkernel selection for amd64. The assembly kernel needs AVX2
// (VBROADCASTSD/VADDPD on YMM), FMA3 and OS support for saving YMM state;
// all three are probed once at init via CPUID/XGETBV and the dispatch falls
// back to the generic Go kernel when anything is missing.

const asmKernelName = "amd64-avx2-fma-8x4"

// probeAsmKernel enables the assembly kernel when the host supports it.
func probeAsmKernel() bool { return hasAVX2FMA() }

// hasAVX2FMA reports whether the CPU and OS support the assembly kernel:
// CPUID.1:ECX must advertise FMA, OSXSAVE and AVX, XCR0 must have the XMM
// and YMM state bits enabled by the OS, and CPUID.7.0:EBX must advertise
// AVX2.
func hasAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// cpuid executes CPUID with the given EAX/ECX inputs.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// gemmKernel8x4Asm accumulates the 8x4 tile C[i + j*ldc] += sum_p
// a[p*8+i]*b[p*4+j] with AVX2 FMA instructions. kc must be >= 1 and c must
// address a full 8x4 tile (the macrokernel guarantees both).
//
//go:noescape
func gemmKernel8x4Asm(kc int, a, b, c *float64, ldc int)

// gemmKernelAsm adapts the slice-based dispatch to the pointer-based
// assembly routine.
func gemmKernelAsm(kc int, a, b, c []float64, ldc int) {
	gemmKernel8x4Asm(kc, &a[0], &b[0], &c[0], ldc)
}
