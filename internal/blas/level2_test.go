package blas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// triRef materializes the triangle op used by Dtrsv/Dtrmv for reference
// computations.
func triRef(uplo Uplo, diag Diag, a *matrix.Dense) *matrix.Dense {
	n := a.Rows
	tri := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (uplo == Upper && j >= i) || (uplo == Lower && j <= i) {
				tri.Set(i, j, a.At(i, j))
			}
		}
		if diag == Unit {
			tri.Set(i, i, 1)
		}
	}
	return tri
}

func TestDtrsvAllVariants(t *testing.T) {
	const n = 9
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := matrix.Random(n, n, 71)
				for i := 0; i < n; i++ {
					a.Set(i, i, a.At(i, i)+4) // well conditioned
				}
				want := matrix.Random(n, 1, 72)
				tri := triRef(uplo, diag, a)
				// b = op(T) * want, then solve and compare.
				b := Mul(trans, NoTrans, tri, want)
				x := b.Col(0)
				Dtrsv(uplo, trans, diag, n, a.Data, a.Stride, x, 1)
				for i := 0; i < n; i++ {
					if math.Abs(x[i]-want.At(i, 0)) > 1e-11 {
						t.Fatalf("uplo=%v trans=%v diag=%v: x[%d]=%v want %v",
							uplo, trans, diag, i, x[i], want.At(i, 0))
					}
				}
			}
		}
	}
}

func TestDtrmvAllVariants(t *testing.T) {
	const n = 8
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				a := matrix.Random(n, n, 73)
				xv := matrix.Random(n, 1, 74)
				tri := triRef(uplo, diag, a)
				want := Mul(trans, NoTrans, tri, xv)
				x := xv.Clone().Col(0)
				Dtrmv(uplo, trans, diag, n, a.Data, a.Stride, x, 1)
				for i := 0; i < n; i++ {
					if math.Abs(x[i]-want.At(i, 0)) > 1e-12 {
						t.Fatalf("uplo=%v trans=%v diag=%v: x[%d]=%v want %v",
							uplo, trans, diag, i, x[i], want.At(i, 0))
					}
				}
			}
		}
	}
}

func TestDtrsvZeroSize(t *testing.T) {
	// n == 0 must be a no-op, not a panic.
	Dtrsv(Upper, NoTrans, NonUnit, 0, nil, 1, nil, 1)
	Dtrmv(Lower, Trans, Unit, 0, nil, 1, nil, 1)
}

func TestDgemvStrided(t *testing.T) {
	// incX = 2, incY = 3 paths.
	const m, n = 4, 3
	a := matrix.Random(m, n, 75)
	x := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		x[2*i] = float64(i + 1)
	}
	y := make([]float64, 3*m)
	Dgemv(NoTrans, m, n, 1, a.Data, a.Stride, x, 2, 0, y, 3)
	for i := 0; i < m; i++ {
		want := 0.0
		for j := 0; j < n; j++ {
			want += a.At(i, j) * float64(j+1)
		}
		if math.Abs(y[3*i]-want) > 1e-13 {
			t.Fatalf("strided Dgemv y[%d] = %v want %v", i, y[3*i], want)
		}
	}
}

func TestDgemvBetaZeroClearsNaN(t *testing.T) {
	a := matrix.Identity(3)
	x := []float64{1, 2, 3}
	y := []float64{math.NaN(), math.NaN(), math.NaN()}
	Dgemv(NoTrans, 3, 3, 1, a.Data, a.Stride, x, 1, 0, y, 1)
	for i, want := range x {
		if y[i] != want {
			t.Fatalf("y = %v", y)
		}
	}
}

func TestDgerZeroAlphaNoop(t *testing.T) {
	a := matrix.Random(3, 3, 76)
	saved := a.Clone()
	Dger(3, 3, 0, []float64{1, 2, 3}, 1, []float64{4, 5, 6}, 1, a.Data, a.Stride)
	if !a.Equal(saved) {
		t.Fatal("alpha=0 Dger changed A")
	}
}

// Property: Dtrsv then Dtrmv (same triangle) is the identity.
func TestTrsvTrmvInverseProperty(t *testing.T) {
	f := func(seed int64, flags uint8) bool {
		n := 3 + int(uint64(seed)%10)
		uplo := Uplo(int(flags) % 2)
		trans := Transpose(flags&2 != 0)
		diag := Diag(int(flags/4) % 2)
		a := matrix.Random(n, n, seed)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+3)
		}
		x := matrix.Random(n, 1, seed+1)
		orig := x.Clone()
		Dtrmv(uplo, trans, diag, n, a.Data, a.Stride, x.Col(0), 1)
		Dtrsv(uplo, trans, diag, n, a.Data, a.Stride, x.Col(0), 1)
		return x.EqualApprox(orig, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
