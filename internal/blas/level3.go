package blas

import (
	"fmt"

	"repro/internal/scratch"
)

// Level 3 drivers. Dgemm is the packed Goto-style implementation described
// in doc/KERNELS.md: the driver validates shapes, applies beta, then loops
// pack -> macrokernel over cache-sized blocks, with the pack buffers
// recycled through internal/scratch. Dtrsm and Dtrmm are blocked drivers
// that solve/multiply NB-wide diagonal blocks with the unblocked kernels in
// level3unb.go and push all off-diagonal work through Dgemm, so every BLAS3
// routine's bulk flops run on the one packed kernel path. The pre-refactor
// unpacked kernels live on as baseline.RefGemm/RefTrsm/RefTrmm, the
// differential-testing references.

// Register tile of the packed microkernel. These are fixed by the kernel
// implementations (microkernel.go, microkernel_amd64.s); the cache block
// sizes gemmMC/gemmKC/gemmNC are tunable via SetBlockSizes.
const (
	gemmMR = 8 // rows of C per register tile (packed A strip height)
	gemmNR = 4 // columns of C per register tile (packed B strip width)
)

// Cache blocking parameters of the packed Dgemm: the KC x NC panel of
// packed B targets outer cache, the MC x KC panel of packed A inner cache,
// and one KC x NR strip of B streams from L1 while a microkernel runs.
// Defaults are conservative for the ~1 MiB-L2 class of machines this code
// targets; cmd/calibrate -tune searches better values for the host.
var (
	gemmMC = 128  // rows of packed A per macro block (multiple of gemmMR)
	gemmKC = 256  // depth of the rank-kc update
	gemmNC = 4096 // columns of packed B per macro block (multiple of gemmNR)
)

// trsmNB is the diagonal block width of the blocked Dtrsm/Dtrmm drivers:
// triangles up to this order solve with the unblocked kernels, larger ones
// split so the off-diagonal updates run through the packed Dgemm.
const trsmNB = 64

// BlockSizes returns the active cache blocking parameters (MC, KC, NC) of
// the packed Dgemm.
func BlockSizes() (mc, kc, nc int) {
	return gemmMC, gemmKC, gemmNC
}

// SetBlockSizes overrides the cache blocking parameters, rounding mc up to
// a multiple of the MR register tile and nc to a multiple of NR. It is
// meant for calibration (cmd/calibrate -tune) and benchmarking; it must not
// be called concurrently with running kernels.
func SetBlockSizes(mc, kc, nc int) error {
	if mc < gemmMR || kc < 1 || nc < gemmNR {
		return fmt.Errorf("%w: SetBlockSizes mc=%d kc=%d nc=%d (need mc>=%d, kc>=1, nc>=%d)", ErrShape, mc, kc, nc, gemmMR, gemmNR)
	}
	gemmMC = ceilMul(mc, gemmMR)
	gemmKC = kc
	gemmNC = ceilMul(nc, gemmNR)
	return nil
}

// Dgemm computes C = alpha*op(A)*op(B) + beta*C where op(A) is m x k and
// op(B) is k x n. All matrices are column-major with leading dimensions
// lda, ldb, ldc.
func Dgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, rowB := m, k
	if transA == Trans {
		rowA = k
	}
	if transB == Trans {
		rowB = n
	}
	if m < 0 || n < 0 || k < 0 || lda < max(1, rowA) || ldb < max(1, rowB) || ldc < max(1, m) {
		panic(fmt.Errorf("%w: Dgemm bad dims m=%d n=%d k=%d lda=%d ldb=%d ldc=%d", ErrShape, m, n, k, lda, ldb, ldc))
	}
	if m == 0 || n == 0 {
		return
	}
	// Scale C by beta first; the packed kernels only accumulate.
	scaleCols(n, m, beta, c, ldc)
	if k == 0 || alpha == 0 {
		return
	}

	// Shrink the cache blocks to the problem so small multiplies do not pay
	// for full-sized pack buffers; strips stay MR/NR aligned.
	mc, kc, nc := gemmMC, gemmKC, gemmNC
	if mc > m {
		mc = ceilMul(m, gemmMR)
	}
	if kc > k {
		kc = k
	}
	if nc > n {
		nc = ceilMul(n, gemmNR)
	}

	ap := scratch.Get(mc * kc)
	defer scratch.Put(ap)
	bp := scratch.Get(kc * nc)
	defer scratch.Put(bp)

	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			boff := jc*ldb + pc
			if transB == Trans {
				boff = pc*ldb + jc
			}
			packB(transB, kcb, ncb, b[boff:], ldb, bp)
			for ic := 0; ic < m; ic += mc {
				mcb := min(mc, m-ic)
				aoff := pc*lda + ic
				if transA == Trans {
					aoff = ic*lda + pc
				}
				packA(transA, mcb, kcb, alpha, a[aoff:], lda, ap)
				macroKernel(mcb, ncb, kcb, ap, bp, c[jc*ldc+ic:], ldc)
			}
		}
	}
}

// scaleCols scales the m-high leading rows of n columns of c by beta
// (beta == 0 overwrites, clearing NaN/Inf).
func scaleCols(n, m int, beta float64, c []float64, ldc int) {
	if beta == 1 {
		return
	}
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (side == Left) or X*op(A) = alpha*B
// (side == Right) for X, overwriting B. A is triangular. The driver is
// blocked: NB-wide diagonal triangles solve with the unblocked kernels and
// every off-diagonal elimination runs through the packed Dgemm.
func Dtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if m < 0 || n < 0 || lda < max(1, na) || ldb < max(1, m) {
		panic(fmt.Errorf("%w: Dtrsm bad dims m=%d n=%d lda=%d ldb=%d", ErrShape, m, n, lda, ldb))
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		scaleCols(n, m, alpha, b, ldb)
	}
	if side == Left {
		trsmLeftBlocked(uplo, trans, diag, m, n, a, lda, b, ldb)
		return
	}
	trsmRightBlocked(uplo, trans, diag, m, n, a, lda, b, ldb)
}

// trsmLeftBlocked solves op(A)*X = B in place for an m x m triangle against
// an m x n right-hand side, one NB-row block at a time.
func trsmLeftBlocked(uplo Uplo, trans Transpose, diag Diag, m, n int, a []float64, lda int, b []float64, ldb int) {
	forward := (uplo == Lower) == (trans == NoTrans)
	for bi := 0; bi < m; bi += trsmNB {
		i0 := bi
		if !forward {
			// Same NB-aligned block grid, visited last block first.
			i0 = (m - bi - 1) / trsmNB * trsmNB
		}
		ib := min(trsmNB, m-i0)
		trsmUnbLeft(uplo, trans, diag, ib, n, a[i0*lda+i0:], lda, b[i0:], ldb)
		x := b[i0:]
		rest := m - i0 - ib
		switch {
		case uplo == Lower && trans == NoTrans && rest > 0:
			// B[i0+ib:] -= A[i0+ib:, i0:i0+ib] * X
			Dgemm(NoTrans, NoTrans, rest, n, ib, -1, a[i0*lda+i0+ib:], lda, x, ldb, 1, b[i0+ib:], ldb)
		case uplo == Upper && trans == NoTrans && i0 > 0:
			// B[0:i0] -= A[0:i0, i0:i0+ib] * X
			Dgemm(NoTrans, NoTrans, i0, n, ib, -1, a[i0*lda:], lda, x, ldb, 1, b, ldb)
		case uplo == Lower && trans == Trans && i0 > 0:
			// B[0:i0] -= (A[i0:i0+ib, 0:i0])^T * X
			Dgemm(Trans, NoTrans, i0, n, ib, -1, a[i0:], lda, x, ldb, 1, b, ldb)
		case uplo == Upper && trans == Trans && rest > 0:
			// B[i0+ib:] -= (A[i0:i0+ib, i0+ib:])^T * X
			Dgemm(Trans, NoTrans, rest, n, ib, -1, a[(i0+ib)*lda+i0:], lda, x, ldb, 1, b[i0+ib:], ldb)
		}
	}
}

// trsmRightBlocked solves X*op(A) = B in place for an n x n triangle
// against an m x n left-hand side, one NB-column block at a time.
func trsmRightBlocked(uplo Uplo, trans Transpose, diag Diag, m, n int, a []float64, lda int, b []float64, ldb int) {
	forward := (uplo == Upper) == (trans == NoTrans)
	for bj := 0; bj < n; bj += trsmNB {
		j0 := bj
		if !forward {
			j0 = (n - bj - 1) / trsmNB * trsmNB
		}
		jb := min(trsmNB, n-j0)
		trsmUnbRight(uplo, trans, diag, m, jb, a[j0*lda+j0:], lda, b[j0*ldb:], ldb)
		x := b[j0*ldb:]
		rest := n - j0 - jb
		switch {
		case uplo == Upper && trans == NoTrans && rest > 0:
			// B[:, j0+jb:] -= X * A[j0:j0+jb, j0+jb:]
			Dgemm(NoTrans, NoTrans, m, rest, jb, -1, x, ldb, a[(j0+jb)*lda+j0:], lda, 1, b[(j0+jb)*ldb:], ldb)
		case uplo == Lower && trans == NoTrans && j0 > 0:
			// B[:, 0:j0] -= X * A[j0:j0+jb, 0:j0]
			Dgemm(NoTrans, NoTrans, m, j0, jb, -1, x, ldb, a[j0:], lda, 1, b, ldb)
		case uplo == Upper && trans == Trans && j0 > 0:
			// B[:, 0:j0] -= X * (A[0:j0, j0:j0+jb])^T
			Dgemm(NoTrans, Trans, m, j0, jb, -1, x, ldb, a[j0*lda:], lda, 1, b, ldb)
		case uplo == Lower && trans == Trans && rest > 0:
			// B[:, j0+jb:] -= X * (A[j0+jb:, j0:j0+jb])^T
			Dgemm(NoTrans, Trans, m, rest, jb, -1, x, ldb, a[j0*lda+j0+jb:], lda, 1, b[(j0+jb)*ldb:], ldb)
		}
	}
}

// Dtrmm computes B = alpha*op(A)*B (side == Left) or B = alpha*B*op(A)
// (side == Right) for triangular A, overwriting B. Like Dtrsm, the driver
// is blocked: diagonal blocks multiply with the unblocked kernels and the
// off-diagonal contributions accumulate through the packed Dgemm, ordered
// so every block reads only not-yet-overwritten parts of B.
func Dtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if m < 0 || n < 0 || lda < max(1, na) || ldb < max(1, m) {
		panic(fmt.Errorf("%w: Dtrmm bad dims m=%d n=%d lda=%d ldb=%d", ErrShape, m, n, lda, ldb))
	}
	if m == 0 || n == 0 {
		return
	}
	if side == Left {
		trmmLeftBlocked(uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
		return
	}
	trmmRightBlocked(uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
}

// trmmLeftBlocked computes B = alpha*op(A)*B in place. A block's result
// needs op(A)'s off-diagonal band times *original* B rows, so the block
// order runs toward the band: forward when the band lies below the
// diagonal block (Upper/NoTrans, Lower/Trans), backward otherwise.
func trmmLeftBlocked(uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	forward := (uplo == Upper) == (trans == NoTrans)
	for bi := 0; bi < m; bi += trsmNB {
		i0 := bi
		if !forward {
			i0 = (m - bi - 1) / trsmNB * trsmNB
		}
		ib := min(trsmNB, m-i0)
		// Diagonal contribution first: B_i = alpha*op(A_ii)*B_i leaves the
		// off-diagonal operand rows untouched.
		trmmUnbLeft(uplo, trans, diag, ib, n, alpha, a[i0*lda+i0:], lda, b[i0:], ldb)
		rest := m - i0 - ib
		switch {
		case uplo == Upper && trans == NoTrans && rest > 0:
			// B_i += alpha * A[i0:i0+ib, i0+ib:] * B_old[i0+ib:]
			Dgemm(NoTrans, NoTrans, ib, n, rest, alpha, a[(i0+ib)*lda+i0:], lda, b[i0+ib:], ldb, 1, b[i0:], ldb)
		case uplo == Lower && trans == NoTrans && i0 > 0:
			// B_i += alpha * A[i0:i0+ib, 0:i0] * B_old[0:i0]
			Dgemm(NoTrans, NoTrans, ib, n, i0, alpha, a[i0:], lda, b, ldb, 1, b[i0:], ldb)
		case uplo == Upper && trans == Trans && i0 > 0:
			// B_i += alpha * (A[0:i0, i0:i0+ib])^T * B_old[0:i0]
			Dgemm(Trans, NoTrans, ib, n, i0, alpha, a[i0*lda:], lda, b, ldb, 1, b[i0:], ldb)
		case uplo == Lower && trans == Trans && rest > 0:
			// B_i += alpha * (A[i0+ib:, i0:i0+ib])^T * B_old[i0+ib:]
			Dgemm(Trans, NoTrans, ib, n, rest, alpha, a[i0*lda+i0+ib:], lda, b[i0+ib:], ldb, 1, b[i0:], ldb)
		}
	}
}

// trmmRightBlocked computes B = alpha*B*op(A) in place, column blocks
// ordered so each reads only original columns of B.
func trmmRightBlocked(uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	forward := (uplo == Lower) == (trans == NoTrans)
	for bj := 0; bj < n; bj += trsmNB {
		j0 := bj
		if !forward {
			j0 = (n - bj - 1) / trsmNB * trsmNB
		}
		jb := min(trsmNB, n-j0)
		trmmUnbRight(uplo, trans, diag, m, jb, alpha, a[j0*lda+j0:], lda, b[j0*ldb:], ldb)
		rest := n - j0 - jb
		switch {
		case uplo == Upper && trans == NoTrans && j0 > 0:
			// B_j += alpha * B_old[:, 0:j0] * A[0:j0, j0:j0+jb]
			Dgemm(NoTrans, NoTrans, m, jb, j0, alpha, b, ldb, a[j0*lda:], lda, 1, b[j0*ldb:], ldb)
		case uplo == Lower && trans == NoTrans && rest > 0:
			// B_j += alpha * B_old[:, j0+jb:] * A[j0+jb:, j0:j0+jb]
			Dgemm(NoTrans, NoTrans, m, jb, rest, alpha, b[(j0+jb)*ldb:], ldb, a[j0*lda+j0+jb:], lda, 1, b[j0*ldb:], ldb)
		case uplo == Upper && trans == Trans && rest > 0:
			// B_j += alpha * B_old[:, j0+jb:] * (A[j0:j0+jb, j0+jb:])^T
			Dgemm(NoTrans, Trans, m, jb, rest, alpha, b[(j0+jb)*ldb:], ldb, a[(j0+jb)*lda+j0:], lda, 1, b[j0*ldb:], ldb)
		case uplo == Lower && trans == Trans && j0 > 0:
			// B_j += alpha * B_old[:, 0:j0] * (A[j0:j0+jb, 0:j0])^T
			Dgemm(NoTrans, Trans, m, jb, j0, alpha, b, ldb, a[j0:], lda, 1, b[j0*ldb:], ldb)
		}
	}
}

// Dsyrk computes C = alpha*A*A^T + beta*C (trans == NoTrans, A is n x k) or
// C = alpha*A^T*A + beta*C (trans == Trans, A is k x n), updating only the
// uplo triangle of the symmetric n x n matrix C.
func Dsyrk(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	rowA := n
	if trans == Trans {
		rowA = k
	}
	if n < 0 || k < 0 || lda < max(1, rowA) || ldc < max(1, n) {
		panic(fmt.Errorf("%w: Dsyrk bad dims n=%d k=%d lda=%d ldc=%d", ErrShape, n, k, lda, ldc))
	}
	if n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			sum := 0.0
			if trans == NoTrans {
				for p := 0; p < k; p++ {
					sum += a[p*lda+i] * a[p*lda+j]
				}
			} else {
				ai := a[i*lda : i*lda+k]
				aj := a[j*lda : j*lda+k]
				for p := range ai {
					sum += ai[p] * aj[p]
				}
			}
			if beta == 0 {
				c[j*ldc+i] = alpha * sum
			} else {
				c[j*ldc+i] = alpha*sum + beta*c[j*ldc+i]
			}
		}
	}
}
