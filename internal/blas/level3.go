package blas

import "fmt"

// Blocking parameters for the cache-blocked Dgemm. These are modest,
// conservative values: kc*mc doubles of the A-panel fit comfortably in L2 on
// any machine this code targets, and the 4-wide register kernel keeps the
// inner loop simple enough for the Go compiler to keep in registers.
const (
	gemmMC = 128 // rows of A per blocked panel
	gemmKC = 256 // depth of the rank-kc update
	gemmNR = 4   // columns of C per register tile
)

// Dgemm computes C = alpha*op(A)*op(B) + beta*C where op(A) is m x k and
// op(B) is k x n. All matrices are column-major with leading dimensions
// lda, ldb, ldc.
func Dgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, rowB := m, k
	if transA == Trans {
		rowA = k
	}
	if transB == Trans {
		rowB = n
	}
	if m < 0 || n < 0 || k < 0 || lda < max(1, rowA) || ldb < max(1, rowB) || ldc < max(1, m) {
		panic(fmt.Errorf("%w: Dgemm bad dims m=%d n=%d k=%d lda=%d ldb=%d ldc=%d", ErrShape, m, n, k, lda, ldb, ldc))
	}
	if m == 0 || n == 0 {
		return
	}
	// Scale C by beta first; the kernels below only accumulate.
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	if transA == NoTrans && transB == NoTrans {
		gemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	if transA == Trans && transB == NoTrans {
		gemmTN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	if transA == NoTrans && transB == Trans {
		gemmNT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	gemmTT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// gemmNN accumulates C += alpha*A*B using cache blocking over k and m and a
// 1x4 column register tile. This is the kernel on the critical path of every
// trailing-matrix update, so it gets the most care.
func gemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for kk := 0; kk < k; kk += gemmKC {
		kb := min(gemmKC, k-kk)
		for ii := 0; ii < m; ii += gemmMC {
			ib := min(gemmMC, m-ii)
			// C[ii:ii+ib, :] += alpha * A[ii:ii+ib, kk:kk+kb] * B[kk:kk+kb, :]
			j := 0
			for ; j+gemmNR <= n; j += gemmNR {
				c0 := c[(j+0)*ldc+ii : (j+0)*ldc+ii+ib]
				c1 := c[(j+1)*ldc+ii : (j+1)*ldc+ii+ib]
				c2 := c[(j+2)*ldc+ii : (j+2)*ldc+ii+ib]
				c3 := c[(j+3)*ldc+ii : (j+3)*ldc+ii+ib]
				for p := 0; p < kb; p++ {
					acol := a[(kk+p)*lda+ii : (kk+p)*lda+ii+ib]
					b0 := alpha * b[(j+0)*ldb+kk+p]
					b1 := alpha * b[(j+1)*ldb+kk+p]
					b2 := alpha * b[(j+2)*ldb+kk+p]
					b3 := alpha * b[(j+3)*ldb+kk+p]
					for i, av := range acol {
						c0[i] += av * b0
						c1[i] += av * b1
						c2[i] += av * b2
						c3[i] += av * b3
					}
				}
			}
			for ; j < n; j++ {
				ccol := c[j*ldc+ii : j*ldc+ii+ib]
				for p := 0; p < kb; p++ {
					bv := alpha * b[j*ldb+kk+p]
					if bv == 0 {
						continue
					}
					acol := a[(kk+p)*lda+ii : (kk+p)*lda+ii+ib]
					for i, av := range acol {
						ccol[i] += av * bv
					}
				}
			}
		}
	}
}

// gemmTN accumulates C += alpha*A^T*B: C(i,j) = dot(A(:,i), B(:,j)).
func gemmTN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		bcol := b[j*ldb : j*ldb+k]
		ccol := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			acol := a[i*lda : i*lda+k]
			sum := 0.0
			for p, av := range acol {
				sum += av * bcol[p]
			}
			ccol[i] += alpha * sum
		}
	}
}

// gemmNT accumulates C += alpha*A*B^T.
func gemmNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		acol := a[p*lda : p*lda+m]
		for j := 0; j < n; j++ {
			bv := alpha * b[p*ldb+j]
			if bv == 0 {
				continue
			}
			ccol := c[j*ldc : j*ldc+m]
			for i, av := range acol {
				ccol[i] += av * bv
			}
		}
	}
}

// gemmTT accumulates C += alpha*A^T*B^T.
func gemmTT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		ccol := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			acol := a[i*lda : i*lda+k]
			sum := 0.0
			for p, av := range acol {
				sum += av * b[p*ldb+j]
			}
			ccol[i] += alpha * sum
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (side == Left) or X*op(A) = alpha*B
// (side == Right) for X, overwriting B. A is triangular.
func Dtrsm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if m < 0 || n < 0 || lda < max(1, na) || ldb < max(1, m) {
		panic(fmt.Errorf("%w: Dtrsm bad dims m=%d n=%d lda=%d ldb=%d", ErrShape, m, n, lda, ldb))
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	if side == Left {
		// Solve op(A) * X = B column by column.
		for j := 0; j < n; j++ {
			Dtrsv(uplo, trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
		return
	}
	// side == Right: X * op(A) = B. Process columns of X in dependency order.
	switch {
	case uplo == Upper && trans == NoTrans:
		// X(:,j) = (B(:,j) - sum_{k<j} X(:,k) A(k,j)) / A(j,j)
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for k := 0; k < j; k++ {
				akj := a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= akj * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	case uplo == Lower && trans == NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for k := j + 1; k < n; k++ {
				akj := a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= akj * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	case uplo == Upper && trans == Trans:
		// X * A^T = B with A upper => effective coefficient A(j,k) for k>j.
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for k := j + 1; k < n; k++ {
				ajk := a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= ajk * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	default: // Lower, Trans
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for k := 0; k < j; k++ {
				ajk := a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= ajk * bk[i]
				}
			}
			if diag == NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	}
}

// Dtrmm computes B = alpha*op(A)*B (side == Left) or B = alpha*B*op(A)
// (side == Right) for triangular A, overwriting B.
func Dtrmm(side Side, uplo Uplo, trans Transpose, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == Right {
		na = n
	}
	if m < 0 || n < 0 || lda < max(1, na) || ldb < max(1, m) {
		panic(fmt.Errorf("%w: Dtrmm bad dims m=%d n=%d lda=%d ldb=%d", ErrShape, m, n, lda, ldb))
	}
	if m == 0 || n == 0 {
		return
	}
	if side == Left {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			Dtrmv(uplo, trans, diag, m, a, lda, col, 1)
			if alpha != 1 {
				for i := range col {
					col[i] *= alpha
				}
			}
		}
		return
	}
	// side == Right: B = alpha * B * op(A).
	switch {
	case uplo == Upper && trans == NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := 0; k < j; k++ {
				akj := alpha * a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += akj * bk[i]
				}
			}
		}
	case uplo == Lower && trans == NoTrans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := j + 1; k < n; k++ {
				akj := alpha * a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += akj * bk[i]
				}
			}
		}
	case uplo == Upper && trans == Trans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := j + 1; k < n; k++ {
				ajk := alpha * a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += ajk * bk[i]
				}
			}
		}
	default: // Lower, Trans
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := 0; k < j; k++ {
				ajk := alpha * a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += ajk * bk[i]
				}
			}
		}
	}
}

// Dsyrk computes C = alpha*A*A^T + beta*C (trans == NoTrans, A is n x k) or
// C = alpha*A^T*A + beta*C (trans == Trans, A is k x n), updating only the
// uplo triangle of the symmetric n x n matrix C.
func Dsyrk(uplo Uplo, trans Transpose, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	rowA := n
	if trans == Trans {
		rowA = k
	}
	if n < 0 || k < 0 || lda < max(1, rowA) || ldc < max(1, n) {
		panic(fmt.Errorf("%w: Dsyrk bad dims n=%d k=%d lda=%d ldc=%d", ErrShape, n, k, lda, ldc))
	}
	if n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			sum := 0.0
			if trans == NoTrans {
				for p := 0; p < k; p++ {
					sum += a[p*lda+i] * a[p*lda+j]
				}
			} else {
				ai := a[i*lda : i*lda+k]
				aj := a[j*lda : j*lda+k]
				for p := range ai {
					sum += ai[p] * aj[p]
				}
			}
			if beta == 0 {
				c[j*ldc+i] = alpha * sum
			} else {
				c[j*ldc+i] = alpha*sum + beta*c[j*ldc+i]
			}
		}
	}
}
