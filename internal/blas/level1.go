// Package blas implements the subset of the BLAS (Basic Linear Algebra
// Subprograms) needed by the LU and QR factorizations in this repository.
//
// All routines operate on column-major storage with an explicit leading
// dimension, mirroring the reference BLAS so that the factorization code
// reads like its LAPACK counterpart. Vector routines take an increment,
// matrix routines take a leading dimension. Routines panic on invalid
// dimensions: these are programming errors in callers, not runtime
// conditions to recover from.
package blas

import (
	"fmt"
	"math"
)

// Idamax returns the index of the element of x with the largest absolute
// value, scanning n elements with stride incX. It returns -1 when n <= 0.
// Ties resolve to the first occurrence, as in the reference BLAS, which the
// pivoting code relies on for determinism.
func Idamax(n int, x []float64, incX int) int {
	if n <= 0 {
		return -1
	}
	if incX <= 0 {
		panic(fmt.Errorf("%w: bad increment %d", ErrShape, incX))
	}
	best, bestAbs := 0, math.Abs(x[0])
	idx := incX
	for i := 1; i < n; i++ {
		if a := math.Abs(x[idx]); a > bestAbs {
			best, bestAbs = i, a
		}
		idx += incX
	}
	return best
}

// Dscal scales n elements of x by alpha: x = alpha * x.
func Dscal(n int, alpha float64, x []float64, incX int) {
	if n <= 0 {
		return
	}
	if incX <= 0 {
		panic(fmt.Errorf("%w: bad increment %d", ErrShape, incX))
	}
	if incX == 1 {
		for i := 0; i < n; i++ {
			x[i] *= alpha
		}
		return
	}
	for i, idx := 0, 0; i < n; i, idx = i+1, idx+incX {
		x[idx] *= alpha
	}
}

// Daxpy computes y = alpha*x + y over n elements.
func Daxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	if n <= 0 || alpha == 0 {
		return
	}
	if incX <= 0 || incY <= 0 {
		panic(fmt.Errorf("%w: bad increments %d %d", ErrShape, incX, incY))
	}
	if incX == 1 && incY == 1 {
		x = x[:n]
		y = y[:n]
		for i, v := range x {
			y[i] += alpha * v
		}
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incX
		iy += incY
	}
}

// Ddot returns the dot product of n elements of x and y.
func Ddot(n int, x []float64, incX int, y []float64, incY int) float64 {
	if n <= 0 {
		return 0
	}
	if incX <= 0 || incY <= 0 {
		panic(fmt.Errorf("%w: bad increments %d %d", ErrShape, incX, incY))
	}
	sum := 0.0
	if incX == 1 && incY == 1 {
		x = x[:n]
		y = y[:n]
		for i, v := range x {
			sum += v * y[i]
		}
		return sum
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		sum += x[ix] * y[iy]
		ix += incX
		iy += incY
	}
	return sum
}

// Dnrm2 returns the Euclidean norm of n elements of x, with scaling to
// avoid overflow/underflow (the LAPACK dlassq approach).
func Dnrm2(n int, x []float64, incX int) float64 {
	if n <= 0 {
		return 0
	}
	if incX <= 0 {
		panic(fmt.Errorf("%w: bad increment %d", ErrShape, incX))
	}
	scale, ssq := 0.0, 1.0
	idx := 0
	for i := 0; i < n; i++ {
		if v := x[idx]; v != 0 {
			a := math.Abs(v)
			if scale < a {
				ssq = 1 + ssq*(scale/a)*(scale/a)
				scale = a
			} else {
				ssq += (a / scale) * (a / scale)
			}
		}
		idx += incX
	}
	return scale * math.Sqrt(ssq)
}

// Dswap exchanges n elements of x and y.
func Dswap(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	if incX <= 0 || incY <= 0 {
		panic(fmt.Errorf("%w: bad increments %d %d", ErrShape, incX, incY))
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incX
		iy += incY
	}
}

// Dcopy copies n elements of x into y.
func Dcopy(n int, x []float64, incX int, y []float64, incY int) {
	if n <= 0 {
		return
	}
	if incX <= 0 || incY <= 0 {
		panic(fmt.Errorf("%w: bad increments %d %d", ErrShape, incX, incY))
	}
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := 0, 0
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incX
		iy += incY
	}
}
