//go:build !race

// The race detector instruments allocations, so the zero-alloc gates only
// run in the regular test job; the CI alloc-gate step invokes them by name
// (-run ZeroAlloc).

package blas

import (
	"testing"

	"repro/internal/scratch"
)

// TestDgemmZeroAlloc pins the packed Dgemm steady state to zero heap
// allocations: pack buffers come from internal/scratch and go back, and the
// box-pooled headers make the round trip free. This is the runtime
// complement of calint's hotpath-alloc check.
func TestDgemmZeroAlloc(t *testing.T) {
	const n = 512
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.5
		b[i] = float64(i%5) * 0.25
	}
	run := func() {
		Dgemm(NoTrans, NoTrans, n, n, n, 1.0, a, n, b, n, 0.0, c, n)
	}
	// Warm the scratch pools (first run allocates the pack buffers and
	// their header boxes; every later run reuses them).
	run()
	run()
	if avg := testing.AllocsPerRun(10, run); avg != 0 {
		t.Fatalf("Dgemm(%d×%d) allocates %.1f objects per call in steady state, want 0", n, n, avg)
	}
}

// TestScratchZeroAlloc pins the Get/Put round trip itself to zero
// allocations once the buffer and its header box are pooled.
func TestScratchZeroAlloc(t *testing.T) {
	s := scratch.Get(1 << 12)
	scratch.Put(s)
	if avg := testing.AllocsPerRun(100, func() {
		s := scratch.Get(1 << 12)
		scratch.Put(s)
	}); avg != 0 {
		t.Fatalf("scratch Get/Put allocates %.1f objects per round trip, want 0", avg)
	}
}
