package blas

// Test hooks for the differential suite (diff_test.go runs every case
// against both microkernel paths) and fringe-size selection.

// Register tile dimensions, exported for fringe-size test construction.
const (
	TestMR = gemmMR
	TestNR = gemmNR
)

// ForceGenericKernel forces (on=true) or restores the microkernel
// dispatch, returning a func that undoes the change. With on=false the
// architecture's probed default is restored.
func ForceGenericKernel(on bool) (restore func()) {
	old := useAsmKernel
	if on {
		useAsmKernel = false
	} else {
		useAsmKernel = probedAsmKernel
	}
	return func() { useAsmKernel = old }
}

// AsmKernelAvailable reports whether the CPU probe enabled the assembly
// microkernel on this host.
func AsmKernelAvailable() bool { return probedAsmKernel }

// probedAsmKernel snapshots the init-time probe result before tests mutate
// the dispatch.
var probedAsmKernel = useAsmKernel
