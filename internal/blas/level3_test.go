package blas

import (
	"math"
	"testing"

	"repro/internal/matrix"
)

// refGemm is a deliberately naive triple loop used as the oracle for the
// blocked Dgemm.
func refGemm(transA, transB Transpose, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) {
	opA := a
	if transA == Trans {
		opA = a.Transpose()
	}
	opB := b
	if transB == Trans {
		opB = b.Transpose()
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			sum := 0.0
			for p := 0; p < opA.Cols; p++ {
				sum += opA.At(i, p) * opB.At(p, j)
			}
			c.Set(i, j, alpha*sum+beta*c.At(i, j))
		}
	}
}

func TestDgemmAllTransposes(t *testing.T) {
	const m, n, k = 13, 9, 7
	for _, ta := range []Transpose{NoTrans, Trans} {
		for _, tb := range []Transpose{NoTrans, Trans} {
			ar, ac := m, k
			if ta == Trans {
				ar, ac = k, m
			}
			br, bc := k, n
			if tb == Trans {
				br, bc = n, k
			}
			a := matrix.Random(ar, ac, 1)
			b := matrix.Random(br, bc, 2)
			c := matrix.Random(m, n, 3)
			want := c.Clone()
			refGemm(ta, tb, 1.5, a, b, 0.5, want)
			Gemm(ta, tb, 1.5, a, b, 0.5, c)
			if !c.EqualApprox(want, 1e-12) {
				t.Errorf("Dgemm transA=%v transB=%v mismatch", ta, tb)
			}
		}
	}
}

func TestDgemmLargeBlocked(t *testing.T) {
	// Exercise the kc/mc blocking boundaries and the 4-wide tail.
	const m, n, k = 300, 17, 520
	a := matrix.Random(m, k, 4)
	b := matrix.Random(k, n, 5)
	c := matrix.New(m, n)
	want := matrix.New(m, n)
	refGemm(NoTrans, NoTrans, 1, a, b, 0, want)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if !c.EqualApprox(want, 1e-10) {
		t.Fatal("blocked Dgemm mismatch on large sizes")
	}
}

func TestDgemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta == 0 must overwrite even NaN entries in C.
	a := matrix.Identity(3)
	b := matrix.Identity(3)
	c := matrix.New(3, 3)
	c.Fill(math.NaN())
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if !c.EqualApprox(matrix.Identity(3), 0) {
		t.Fatalf("beta=0 did not clear NaN: %v", c)
	}
}

func TestDgemmKZero(t *testing.T) {
	a := matrix.New(4, 0)
	b := matrix.New(0, 4)
	c := matrix.Random(4, 4, 6)
	want := c.Clone()
	Gemm(NoTrans, NoTrans, 1, a, b, 1, c)
	if !c.Equal(want) {
		t.Fatal("k=0 with beta=1 must leave C unchanged")
	}
}

func TestGemmShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(NoTrans, NoTrans, 1, matrix.New(2, 3), matrix.New(4, 2), 0, matrix.New(2, 2))
}

func TestDgemmViewStrides(t *testing.T) {
	// Operate on views into a larger matrix so lda > rows.
	parent := matrix.Random(20, 20, 7)
	a := parent.View(2, 3, 6, 4)
	b := parent.View(9, 1, 4, 5)
	c := matrix.New(6, 5)
	want := matrix.New(6, 5)
	refGemm(NoTrans, NoTrans, 2, a, b, 0, want)
	Gemm(NoTrans, NoTrans, 2, a, b, 0, c)
	if !c.EqualApprox(want, 1e-12) {
		t.Fatal("Dgemm with non-tight strides mismatch")
	}
}

func refTri(uplo Uplo, diag Diag, a *matrix.Dense) *matrix.Dense {
	n := a.Rows
	tri := matrix.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			in := (uplo == Upper && j >= i) || (uplo == Lower && j <= i)
			if in {
				tri.Set(i, j, a.At(i, j))
			}
		}
		if diag == Unit {
			tri.Set(i, i, 1)
		}
	}
	return tri
}

func TestDtrsmAllCases(t *testing.T) {
	const m, n = 7, 5
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					na := m
					if side == Right {
						na = n
					}
					a := matrix.Random(na, na, 11)
					// Make diagonal well-conditioned.
					for i := 0; i < na; i++ {
						a.Set(i, i, a.At(i, i)+3)
					}
					b := matrix.Random(m, n, 12)
					x := b.Clone()
					Trsm(side, uplo, trans, diag, 2, a, x)
					// Verify op(T)*X == 2B (or X*op(T) == 2B).
					tri := refTri(uplo, diag, a)
					var got *matrix.Dense
					if side == Left {
						got = Mul(trans, NoTrans, tri, x)
					} else {
						got = Mul(NoTrans, trans, x, tri)
					}
					want := b.Clone()
					for j := 0; j < n; j++ {
						col := want.Col(j)
						for i := range col {
							col[i] *= 2
						}
					}
					if !got.EqualApprox(want, 1e-10) {
						t.Errorf("Dtrsm side=%v uplo=%v trans=%v diag=%v mismatch", side, uplo, trans, diag)
					}
				}
			}
		}
	}
}

func TestDtrmmAllCases(t *testing.T) {
	const m, n = 6, 4
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					na := m
					if side == Right {
						na = n
					}
					a := matrix.Random(na, na, 21)
					b := matrix.Random(m, n, 22)
					x := b.Clone()
					Trmm(side, uplo, trans, diag, 1.5, a, x)
					tri := refTri(uplo, diag, a)
					var want *matrix.Dense
					if side == Left {
						want = Mul(trans, NoTrans, tri, b)
					} else {
						want = Mul(NoTrans, trans, b, tri)
					}
					for j := 0; j < n; j++ {
						col := want.Col(j)
						for i := range col {
							col[i] *= 1.5
						}
					}
					if !x.EqualApprox(want, 1e-11) {
						t.Errorf("Dtrmm side=%v uplo=%v trans=%v diag=%v mismatch", side, uplo, trans, diag)
					}
				}
			}
		}
	}
}

func TestDsyrk(t *testing.T) {
	const n, k = 6, 4
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			ar, ac := n, k
			if trans == Trans {
				ar, ac = k, n
			}
			a := matrix.Random(ar, ac, 31)
			c := matrix.Random(n, n, 32)
			// Symmetrize C so both triangles agree.
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					c.Set(i, j, c.At(j, i))
				}
			}
			want := c.Clone()
			refGemm(trans, oppositeT(trans), 2, a, a, 0.5, want)
			got := c.Clone()
			Dsyrk(uplo, trans, n, k, 2, a.Data, a.Stride, 0.5, got.Data, got.Stride)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					in := (uplo == Upper && j >= i) || (uplo == Lower && j <= i)
					if !in {
						continue
					}
					if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12 {
						t.Errorf("Dsyrk uplo=%v trans=%v at (%d,%d): %v want %v", uplo, trans, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}

func oppositeT(t Transpose) Transpose {
	if t == Trans {
		return NoTrans
	}
	return Trans
}

func TestDgemvBothTransposes(t *testing.T) {
	const m, n = 8, 5
	a := matrix.Random(m, n, 41)
	x := matrix.Random(n, 1, 42).Col(0)
	y := matrix.Random(m, 1, 43).Col(0)
	want := make([]float64, m)
	for i := 0; i < m; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += a.At(i, j) * x[j]
		}
		want[i] = 2*sum + 0.5*y[i]
	}
	Dgemv(NoTrans, m, n, 2, a.Data, a.Stride, x, 1, 0.5, y, 1)
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("Dgemv NoTrans: y=%v want=%v", y, want)
		}
	}

	xt := matrix.Random(m, 1, 44).Col(0)
	yt := make([]float64, n)
	wantT := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += a.At(i, j) * xt[i]
		}
		wantT[j] = sum
	}
	Dgemv(Trans, m, n, 1, a.Data, a.Stride, xt, 1, 0, yt, 1)
	for j := range wantT {
		if math.Abs(yt[j]-wantT[j]) > 1e-12 {
			t.Fatalf("Dgemv Trans: y=%v want=%v", yt, wantT)
		}
	}
}

func TestDgerMatchesGemm(t *testing.T) {
	const m, n = 7, 6
	x := matrix.Random(m, 1, 51)
	y := matrix.Random(n, 1, 52)
	a := matrix.Random(m, n, 53)
	want := a.Clone()
	refGemm(NoTrans, Trans, -1, x, y, 1, want)
	Dger(m, n, -1, x.Col(0), 1, y.Col(0), 1, a.Data, a.Stride)
	if !a.EqualApprox(want, 1e-13) {
		t.Fatal("Dger mismatch vs rank-1 gemm")
	}
}

func TestDtrsvSingularProducesInf(t *testing.T) {
	// A zero pivot must produce Inf/NaN rather than corrupting memory;
	// callers detect singularity separately.
	a := matrix.New(2, 2)
	a.Set(0, 0, 0)
	a.Set(1, 1, 1)
	x := []float64{1, 1}
	Dtrsv(Lower, NoTrans, NonUnit, 2, a.Data, a.Stride, x, 1)
	if !math.IsInf(x[0], 0) && !math.IsNaN(x[0]) {
		t.Fatalf("expected Inf/NaN, got %v", x[0])
	}
}
