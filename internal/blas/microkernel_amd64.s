// AVX2+FMA 8x4 microkernel and CPU feature probes for the packed Dgemm.
// See doc/KERNELS.md for the packed strip layout the kernel consumes.

#include "textflag.h"

// func gemmKernel8x4Asm(kc int, a, b, c *float64, ldc int)
//
// Accumulates C[i + j*ldc] += sum_p a[p*8+i] * b[p*4+j] for the full 8x4
// register tile. a is a packed MR-strip (8 doubles per depth step,
// contiguous), b a packed NR-strip (4 doubles per depth step, contiguous),
// c column-major with leading dimension ldc (in elements).
//
// Register plan: Y0..Y7 are the eight 4-wide accumulators (two YMM per C
// column), Y8/Y9 (and Y14/Y15 in the unrolled half) hold the current A
// column pair, Y10..Y13 the broadcast B values. The k-loop is unrolled by
// two so each accumulator's FMA chain has a full latency window between
// updates.
TEXT ·gemmKernel8x4Asm(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), DX
	SHLQ $3, DX                // ldc in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, AX
	ANDQ $1, AX                // odd leftover iteration?
	SHRQ $1, CX                // k-loop runs in pairs
	JZ   tail

loop2:
	// Rank-1 update p.
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (BX), Y10
	VBROADCASTSD 8(BX), Y11
	VBROADCASTSD 16(BX), Y12
	VBROADCASTSD 24(BX), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

	// Rank-1 update p+1.
	VMOVUPD      64(SI), Y14
	VMOVUPD      96(SI), Y15
	VBROADCASTSD 32(BX), Y10
	VBROADCASTSD 40(BX), Y11
	VBROADCASTSD 48(BX), Y12
	VBROADCASTSD 56(BX), Y13
	VFMADD231PD  Y14, Y10, Y0
	VFMADD231PD  Y15, Y10, Y1
	VFMADD231PD  Y14, Y11, Y2
	VFMADD231PD  Y15, Y11, Y3
	VFMADD231PD  Y14, Y12, Y4
	VFMADD231PD  Y15, Y12, Y5
	VFMADD231PD  Y14, Y13, Y6
	VFMADD231PD  Y15, Y13, Y7

	ADDQ $128, SI
	ADDQ $64, BX
	DECQ CX
	JNZ  loop2

tail:
	TESTQ AX, AX
	JZ    write
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (BX), Y10
	VBROADCASTSD 8(BX), Y11
	VBROADCASTSD 16(BX), Y12
	VBROADCASTSD 24(BX), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7

write:
	// C += accumulators, one column (two YMM) at a time.
	VADDPD  (DI), Y0, Y0
	VADDPD  32(DI), Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y2, Y2
	VADDPD  32(DI), Y3, Y3
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y4, Y4
	VADDPD  32(DI), Y5, Y5
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    DX, DI
	VADDPD  (DI), Y6, Y6
	VADDPD  32(DI), Y7, Y7
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
