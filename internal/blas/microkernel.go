package blas

// Register-blocked inner kernels of the packed Dgemm. The microkernel
// contract (see doc/KERNELS.md): given an MR-strip of packed op(A), an
// NR-strip of packed op(B) and the depth kc, accumulate the full
// gemmMR x gemmNR register tile into C,
//
//	C[i + j*ldc] += sum_p a[p*MR+i] * b[p*NR+j],
//
// reading only contiguous packed memory. alpha is already folded into the
// packed A strip and beta was applied by the driver, so kernels only ever
// accumulate. Fringe tiles never reach a kernel directly: the macrokernel
// routes them through a zeroed MRxNR buffer and masks the padding on
// write-back, so kernels can assume a full tile unconditionally.

// useAsmKernel selects the architecture-specific assembly microkernel.
// probeAsmKernel (defined per architecture) checks the CPU once at package
// init; tests force the generic path through this variable.
var useAsmKernel = probeAsmKernel()

// gemmKernel dispatches one MR x NR tile update to the best available
// implementation.
func gemmKernel(kc int, a, b, c []float64, ldc int) {
	if useAsmKernel {
		gemmKernelAsm(kc, a, b, c, ldc)
		return
	}
	gemmKernelGeneric(kc, a, b, c, ldc)
}

// KernelName identifies the active microkernel implementation, for
// benchmark reports (BENCH_gemm.json) and calibration output.
func KernelName() string {
	if useAsmKernel {
		return asmKernelName
	}
	return "generic-4x4"
}

// gemmKernelGeneric is the portable microkernel: the 8x4 tile is computed
// as two 4x4 halves so that each half's 16 accumulators stay in registers.
// Both halves read the same packed B strip; the second half starts four
// rows into each packed A column.
func gemmKernelGeneric(kc int, a, b, c []float64, ldc int) {
	kernel4x4(kc, a, b, c, ldc)
	kernel4x4(kc, a[4:], b, c[4:], ldc)
}

// kernel4x4 accumulates a 4x4 tile: C[i + j*ldc] += sum_p a[p*MR+i]*b[p*NR+j].
func kernel4x4(kc int, a, b, c []float64, ldc int) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	ia, ib := 0, 0
	for p := 0; p < kc; p++ {
		av := a[ia : ia+4]
		bv := b[ib : ib+4]
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
		ia += gemmMR
		ib += gemmNR
	}
	col := c[0:4]
	col[0] += c00
	col[1] += c10
	col[2] += c20
	col[3] += c30
	col = c[ldc : ldc+4]
	col[0] += c01
	col[1] += c11
	col[2] += c21
	col[3] += c31
	col = c[2*ldc : 2*ldc+4]
	col[0] += c02
	col[1] += c12
	col[2] += c22
	col[3] += c32
	col = c[3*ldc : 3*ldc+4]
	col[0] += c03
	col[1] += c13
	col[2] += c23
	col[3] += c33
}

// macroKernel sweeps the packed mc x kc A panel against the packed kc x nc
// B panel, issuing one microkernel call per MR x NR tile of the C macro
// block. Full tiles update C in place; fringe tiles run against a zeroed
// MRxNR buffer whose valid region is then added to C, masking the packing
// padding.
func macroKernel(mc, nc, kc int, ap, bp, c []float64, ldc int) {
	for jr := 0; jr < nc; jr += gemmNR {
		jb := min(gemmNR, nc-jr)
		bs := bp[jr*kc : jr*kc+gemmNR*kc]
		for ir := 0; ir < mc; ir += gemmMR {
			ib := min(gemmMR, mc-ir)
			as := ap[ir*kc : ir*kc+gemmMR*kc]
			if ib == gemmMR && jb == gemmNR {
				gemmKernel(kc, as, bs, c[jr*ldc+ir:], ldc)
				continue
			}
			var tmp [gemmMR * gemmNR]float64
			gemmKernel(kc, as, bs, tmp[:], gemmMR)
			for j := 0; j < jb; j++ {
				dst := c[(jr+j)*ldc+ir : (jr+j)*ldc+ir+ib]
				src := tmp[j*gemmMR : j*gemmMR+ib]
				for i, v := range src {
					dst[i] += v
				}
			}
		}
	}
}
