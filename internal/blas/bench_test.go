package blas

import (
	"testing"

	"repro/internal/matrix"
)

// Kernel micro-benchmarks: these are the rates the machine models
// abstract, so having them next to the kernels keeps the calibration
// honest (see also cmd/calibrate).

func benchGemm(b *testing.B, m, n, k int) {
	b.Helper()
	x := matrix.Random(m, k, 1)
	y := matrix.Random(k, n, 2)
	c := matrix.New(m, n)
	flops := 2 * float64(m) * float64(n) * float64(k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(NoTrans, NoTrans, 1, x, y, 0, c)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkDgemmSquare256(b *testing.B)  { benchGemm(b, 256, 256, 256) }
func BenchmarkDgemmSquare512(b *testing.B)  { benchGemm(b, 512, 512, 512) }
func BenchmarkDgemmTallUpdate(b *testing.B) { benchGemm(b, 4096, 100, 100) }
func BenchmarkDgemmWideK(b *testing.B)      { benchGemm(b, 128, 128, 2048) }

func BenchmarkDtrsmRightUpper(b *testing.B) {
	// The CALU task-L kernel shape: tall block against a b x b triangle.
	tri := matrix.Random(100, 100, 3)
	for i := 0; i < 100; i++ {
		tri.Set(i, i, tri.At(i, i)+4)
	}
	rhs := matrix.Random(4096, 100, 4)
	flops := float64(4096) * 100 * 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := rhs.Clone()
		b.StartTimer()
		Trsm(Right, Upper, NoTrans, NonUnit, 1, tri, work)
		b.StopTimer()
		_ = work
		b.StartTimer()
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkDgemv(b *testing.B) {
	a := matrix.Random(2048, 2048, 5)
	x := matrix.Random(2048, 1, 6).Col(0)
	y := make([]float64, 2048)
	flops := 2 * float64(2048) * 2048
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemv(NoTrans, 2048, 2048, 1, a.Data, a.Stride, x, 1, 0, y, 1)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkDger(b *testing.B) {
	a := matrix.New(2048, 512)
	x := matrix.Random(2048, 1, 7).Col(0)
	y := matrix.Random(512, 1, 8).Col(0)
	flops := 2 * float64(2048) * 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dger(2048, 512, 1.0001, x, 1, y, 1, a.Data, a.Stride)
	}
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}
