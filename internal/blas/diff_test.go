package blas_test

// Randomized differential tests pitting the packed Level 3 kernels (and the
// unrolled Dger) against the frozen pre-refactor references in
// internal/baseline. Every case runs on both microkernel paths (assembly
// when the host supports it, and the forced-generic Go kernel), with
// lda/ldb slack so out-of-bounds writes into the padding rows are caught by
// whole-slice comparison.

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/blas"
)

// lcg is a tiny deterministic generator so failures reproduce exactly.
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	// Uniform in [-1, 1).
	return float64(int64(*r>>11))/float64(1<<52) - 1
}

func randSlice(n int, r *lcg) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.next()
	}
	return s
}

// bothKernels runs f once per microkernel path available on this host.
func bothKernels(t *testing.T, f func(t *testing.T)) {
	t.Run("generic", func(t *testing.T) {
		defer blas.ForceGenericKernel(true)()
		f(t)
	})
	if blas.AsmKernelAvailable() {
		t.Run("asm", func(t *testing.T) {
			defer blas.ForceGenericKernel(false)()
			f(t)
		})
	}
}

// closeEnough compares with a tolerance scaled to the accumulation depth.
func closeEnough(got, want, scale float64) bool {
	return math.Abs(got-want) <= 1e-12*(scale+math.Abs(want))
}

// gemmSizes are the differential sweep dimensions: every fringe size the
// issue calls out (1..17 covers MR±1 and NR±1 for the 8x4 tile) plus sizes
// spanning the MC/KC/NC cache-block boundaries.
var gemmSizes = []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 31, 100, 129}

func TestDgemmDifferential(t *testing.T) {
	alphas := []float64{1, -0.7, 2.3}
	betas := []float64{0, 1, -1.3}
	bothKernels(t, func(t *testing.T) {
		r := lcg(1)
		caseIdx := 0
		for _, transA := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			for _, transB := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, m := range gemmSizes {
					for _, n := range gemmSizes {
						for _, k := range gemmSizes {
							// Subsample the cube: diagonal-ish cases plus all
							// small-fringe triples keep the sweep fast while
							// still crossing every strip boundary.
							if m > 17 || n > 17 || k > 17 {
								if (m+n+k+caseIdx)%3 != 0 {
									caseIdx++
									continue
								}
							}
							caseIdx++
							alpha := alphas[caseIdx%len(alphas)]
							beta := betas[caseIdx%len(betas)]
							ldSlack := caseIdx % 3 // exercise lda > rows
							rowA, colA := m, k
							if transA == blas.Trans {
								rowA, colA = k, m
							}
							rowB, colB := k, n
							if transB == blas.Trans {
								rowB, colB = n, k
							}
							lda := rowA + ldSlack
							ldb := rowB + ldSlack
							ldc := m + ldSlack
							a := randSlice(lda*colA, &r)
							b := randSlice(ldb*colB, &r)
							c := randSlice(ldc*n, &r)
							want := append([]float64(nil), c...)
							blas.Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
							baseline.RefGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
							for i := range c {
								if !closeEnough(c[i], want[i], float64(k)) {
									t.Fatalf("Dgemm transA=%v transB=%v m=%d n=%d k=%d lda=%d alpha=%g beta=%g: c[%d]=%g want %g",
										transA, transB, m, n, k, lda, alpha, beta, i, c[i], want[i])
								}
							}
						}
					}
				}
			}
		}
	})
}

// triSizes cross the trsmNB=64 diagonal-block boundary on both sides.
var triSizes = []int{1, 2, 5, 8, 9, 17, 63, 64, 65, 100, 130}

// wellConditioned builds a random na x na triangle-bearing matrix whose
// solves stay differentially comparable: off-diagonals are scaled by 1/na
// so Unit-diag solves grow at most like (1+1/na)^na ~ e, and the stored
// diagonal is shifted away from zero for the NonUnit cases.
func wellConditioned(na, lda int, r *lcg) []float64 {
	a := randSlice(lda*na, r)
	scale := 1 / float64(na)
	for i := range a {
		a[i] *= scale
	}
	for i := 0; i < na; i++ {
		a[i*lda+i] += 2
	}
	return a
}

func TestDtrsmDifferential(t *testing.T) {
	bothKernels(t, func(t *testing.T) {
		r := lcg(2)
		caseIdx := 0
		for _, side := range []blas.Side{blas.Left, blas.Right} {
			for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
				for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
					for _, diag := range []blas.Diag{blas.NonUnit, blas.Unit} {
						for _, m := range triSizes {
							for _, n := range triSizes {
								if m > 65 && n > 65 { // keep the sweep fast
									continue
								}
								caseIdx++
								na := m
								if side == blas.Right {
									na = n
								}
								ldSlack := caseIdx % 3
								lda := na + ldSlack
								ldb := m + ldSlack
								alpha := []float64{1, -0.6, 1.8}[caseIdx%3]
								a := wellConditioned(na, lda, &r)
								b := randSlice(ldb*n, &r)
								want := append([]float64(nil), b...)
								blas.Dtrsm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
								baseline.RefTrsm(side, uplo, trans, diag, m, n, alpha, a, lda, want, ldb)
								for i := range b {
									if !closeEnough(b[i], want[i], float64(na)) {
										t.Fatalf("Dtrsm side=%v uplo=%v trans=%v diag=%v m=%d n=%d lda=%d alpha=%g: b[%d]=%g want %g",
											side, uplo, trans, diag, m, n, lda, alpha, i, b[i], want[i])
									}
								}
							}
						}
					}
				}
			}
		}
	})
}

func TestDtrmmDifferential(t *testing.T) {
	bothKernels(t, func(t *testing.T) {
		r := lcg(3)
		caseIdx := 0
		for _, side := range []blas.Side{blas.Left, blas.Right} {
			for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
				for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
					for _, diag := range []blas.Diag{blas.NonUnit, blas.Unit} {
						for _, m := range triSizes {
							for _, n := range triSizes {
								if m > 65 && n > 65 {
									continue
								}
								caseIdx++
								na := m
								if side == blas.Right {
									na = n
								}
								ldSlack := caseIdx % 3
								lda := na + ldSlack
								ldb := m + ldSlack
								alpha := []float64{1, -0.6, 1.8}[caseIdx%3]
								a := wellConditioned(na, lda, &r)
								b := randSlice(ldb*n, &r)
								want := append([]float64(nil), b...)
								blas.Dtrmm(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb)
								baseline.RefTrmm(side, uplo, trans, diag, m, n, alpha, a, lda, want, ldb)
								for i := range b {
									if !closeEnough(b[i], want[i], float64(na)) {
										t.Fatalf("Dtrmm side=%v uplo=%v trans=%v diag=%v m=%d n=%d lda=%d alpha=%g: b[%d]=%g want %g",
											side, uplo, trans, diag, m, n, lda, alpha, i, b[i], want[i])
									}
								}
							}
						}
					}
				}
			}
		}
	})
}

// TestDgerDifferential pits the 4-column unrolled Dger against a naive
// rank-1 loop, covering the unroll tail and strided y.
func TestDgerDifferential(t *testing.T) {
	r := lcg(4)
	for caseIdx, dims := range [][2]int{{1, 1}, {3, 4}, {7, 5}, {8, 8}, {17, 13}, {100, 31}, {129, 65}} {
		m, n := dims[0], dims[1]
		for _, incY := range []int{1, 2} {
			lda := m + caseIdx%3
			alpha := []float64{1, -0.8, 2.1}[caseIdx%3]
			x := randSlice(m, &r)
			y := randSlice(n*incY, &r)
			a := randSlice(lda*n, &r)
			want := append([]float64(nil), a...)
			blas.Dger(m, n, alpha, x, 1, y, incY, a, lda)
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					want[j*lda+i] += alpha * x[i] * y[j*incY]
				}
			}
			for i := range a {
				if !closeEnough(a[i], want[i], 1) {
					t.Fatalf("Dger m=%d n=%d incY=%d alpha=%g: a[%d]=%g want %g", m, n, incY, alpha, i, a[i], want[i])
				}
			}
		}
	}
}
