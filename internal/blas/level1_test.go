package blas

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestIdamax(t *testing.T) {
	cases := []struct {
		x    []float64
		inc  int
		want int
	}{
		{[]float64{1, -5, 3}, 1, 1},
		{[]float64{-2, 2}, 1, 0}, // first occurrence wins on ties
		{[]float64{0, 0, 0}, 1, 0},
		{[]float64{1, 99, 4, 99, -7, 99}, 2, 2}, // strided: sees 1, 4, -7
	}
	for _, c := range cases {
		n := len(c.x)
		if c.inc > 1 {
			n = (len(c.x) + c.inc - 1) / c.inc
		}
		if got := Idamax(n, c.x, c.inc); got != c.want {
			t.Errorf("Idamax(%v, inc=%d) = %d, want %d", c.x, c.inc, got, c.want)
		}
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Errorf("Idamax(0) = %d, want -1", got)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	Dscal(4, 2, x, 1)
	for i, want := range []float64{2, 4, 6, 8} {
		if x[i] != want {
			t.Fatalf("x = %v", x)
		}
	}
	y := []float64{1, 2, 3, 4}
	Dscal(2, 10, y, 2)
	if y[0] != 10 || y[1] != 2 || y[2] != 30 || y[3] != 4 {
		t.Fatalf("strided scal: %v", y)
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(3, 2, x, 1, y, 1)
	for i, want := range []float64{12, 24, 36} {
		if y[i] != want {
			t.Fatalf("y = %v", y)
		}
	}
	// alpha == 0 is a no-op.
	Daxpy(3, 0, x, 1, y, 1)
	if y[0] != 12 {
		t.Fatal("alpha=0 changed y")
	}
}

func TestDdot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 1, y, 1); got != 32 {
		t.Fatalf("Ddot = %v", got)
	}
	if got := Ddot(0, nil, 1, nil, 1); got != 0 {
		t.Fatalf("empty Ddot = %v", got)
	}
}

func TestDnrm2(t *testing.T) {
	x := []float64{3, 4}
	if got := Dnrm2(2, x, 1); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Dnrm2 = %v", got)
	}
	// Overflow safety.
	big := []float64{1e300, 1e300}
	want := 1e300 * math.Sqrt(2)
	if got := Dnrm2(2, big, 1); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Dnrm2 overflow: %v", got)
	}
	// Underflow safety.
	tiny := []float64{1e-300, 1e-300}
	wantT := 1e-300 * math.Sqrt(2)
	if got := Dnrm2(2, tiny, 1); math.Abs(got-wantT)/wantT > 1e-14 {
		t.Fatalf("Dnrm2 underflow: %v", got)
	}
}

func TestDswapDcopy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Dswap(3, x, 1, y, 1)
	if x[0] != 4 || y[2] != 3 {
		t.Fatalf("swap failed: %v %v", x, y)
	}
	z := make([]float64, 3)
	Dcopy(3, x, 1, z, 1)
	if z[0] != 4 || z[1] != 5 || z[2] != 6 {
		t.Fatalf("copy failed: %v", z)
	}
}

func TestDdotCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := matrix.Random(17, 1, seed).Col(0)
		b := matrix.Random(17, 1, seed+1).Col(0)
		return math.Abs(Ddot(17, a, 1, b, 1)-Ddot(17, b, 1, a, 1)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDnrm2MatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := matrix.Random(33, 1, seed).Col(0)
		naive := 0.0
		for _, v := range x {
			naive += v * v
		}
		naive = math.Sqrt(naive)
		return math.Abs(Dnrm2(33, x, 1)-naive) <= 1e-12*(1+naive)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStridedVariants(t *testing.T) {
	// Exercise every strided (incX/incY != 1) code path.
	x := []float64{1, 0, 2, 0, 3, 0}
	y := []float64{10, 0, 0, 20, 0, 0, 30, 0, 0}
	Daxpy(3, 2, x, 2, y, 3)
	if y[0] != 12 || y[3] != 24 || y[6] != 36 {
		t.Fatalf("strided Daxpy: %v", y)
	}
	if got := Ddot(3, x, 2, y, 3); got != 1*12+2*24+3*36 {
		t.Fatalf("strided Ddot = %v", got)
	}
	z := make([]float64, 9)
	Dcopy(3, x, 2, z, 3)
	if z[0] != 1 || z[3] != 2 || z[6] != 3 {
		t.Fatalf("strided Dcopy: %v", z)
	}
	Dswap(3, x, 2, z, 3)
	if x[0] != 1 || z[0] != 1 {
		// Swapping equal values: use distinct ones.
	}
	a := []float64{1, 9, 2, 9}
	b := []float64{5, 6}
	Dswap(2, a, 2, b, 1)
	if a[0] != 5 || a[2] != 6 || b[0] != 1 || b[1] != 2 {
		t.Fatalf("strided Dswap: %v %v", a, b)
	}
	nrm := Dnrm2(2, []float64{3, 99, 4, 99}, 2)
	if math.Abs(nrm-5) > 1e-14 {
		t.Fatalf("strided Dnrm2 = %v", nrm)
	}
}

func TestBadIncrementPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Idamax": func() { Idamax(2, []float64{1, 2}, 0) },
		"Dscal":  func() { Dscal(2, 1, []float64{1, 2}, -1) },
		"Daxpy":  func() { Daxpy(2, 1, []float64{1, 2}, 0, []float64{1, 2}, 1) },
		"Ddot":   func() { Ddot(2, []float64{1, 2}, 1, []float64{1, 2}, 0) },
		"Dnrm2":  func() { Dnrm2(2, []float64{1, 2}, 0) },
		"Dswap":  func() { Dswap(2, []float64{1, 2}, 0, []float64{1, 2}, 1) },
		"Dcopy":  func() { Dcopy(2, []float64{1, 2}, 1, []float64{1, 2}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on bad increment", name)
				}
			}()
			f()
		}()
	}
}

func TestZeroLengthNoops(t *testing.T) {
	// n <= 0 must be a silent no-op for every level-1 routine.
	Dscal(0, 2, nil, 1)
	Daxpy(-1, 2, nil, 1, nil, 1)
	Dswap(0, nil, 1, nil, 1)
	Dcopy(0, nil, 1, nil, 1)
	if Dnrm2(0, nil, 1) != 0 || Ddot(0, nil, 1, nil, 1) != 0 {
		t.Fatal("zero-length reductions must return 0")
	}
}
