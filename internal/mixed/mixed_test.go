package mixed

import (
	"errors"
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
)

func TestConversionRoundTrip(t *testing.T) {
	a := matrix.Random(10, 7, 1)
	back := FromDense(a).ToDense()
	// float32 keeps ~7 digits.
	if !back.EqualApprox(a, 1e-6) {
		t.Fatal("f32 round trip lost too much")
	}
}

func TestGETRF32MatchesF64Pivots(t *testing.T) {
	// On a well-scaled matrix, the f32 factorization should pick the same
	// pivots as the f64 one (max-magnitude selection is robust to rounding
	// except for near-ties).
	orig := matrix.DiagonallyDominant(32, 2)
	lu64 := orig.Clone()
	p64 := make([]int, 32)
	if err := lapack.GETRF(lu64, p64, 8); err != nil {
		t.Fatal(err)
	}
	lu32 := FromDense(orig)
	p32 := make([]int, 32)
	if err := GETRF32(lu32, p32, 8); err != nil {
		t.Fatal(err)
	}
	// Diagonal dominance means no swaps at all in both.
	for i := range p64 {
		if p64[i] != i || p32[i] != i {
			t.Fatalf("unexpected pivoting: f64 %v f32 %v at %d", p64[i], p32[i], i)
		}
	}
	// Factor values agree to f32 accuracy.
	if !lu32.ToDense().EqualApprox(lu64, 1e-4*lu64.MaxAbs()) {
		t.Fatal("f32 factor far from f64 factor")
	}
}

func TestGETRF32Residual(t *testing.T) {
	// P A = L U in float32 arithmetic: residual at f32 level.
	for _, tc := range []struct{ n, nb int }{{16, 4}, {50, 8}, {33, 64}} {
		orig := matrix.Random(tc.n, tc.n, int64(tc.n))
		lu := FromDense(orig)
		ipiv := make([]int, tc.n)
		if err := GETRF32(lu, ipiv, tc.nb); err != nil {
			t.Fatal(err)
		}
		lu64 := lu.ToDense()
		l, u := lapack.ExtractLU(lu64)
		prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
		pa := orig.Clone()
		lapack.LASWP(pa, ipiv, 0, tc.n)
		if !pa.EqualApprox(prod, 1e-4*float64(tc.n)) {
			t.Fatalf("n=%d nb=%d: f32 residual too large", tc.n, tc.nb)
		}
	}
}

func TestSolveReachesDoublePrecision(t *testing.T) {
	// Well-conditioned system: the refined solution must be f64-accurate,
	// far beyond what float32 alone can deliver.
	n := 200
	a := matrix.DiagonallyDominant(n, 5)
	xWant := matrix.Random(n, 1, 6)
	b := blas.Mul(blas.NoTrans, blas.NoTrans, a, xWant)

	res, err := Solve(a, b, 10)
	if err != nil {
		t.Fatalf("Solve: %v (after %d iters, resid %g)", err, res.Iterations, res.Residual)
	}
	maxErr := 0.0
	for i := 0; i < n; i++ {
		maxErr = math.Max(maxErr, math.Abs(b.At(i, 0)-xWant.At(i, 0)))
	}
	if maxErr > 1e-12 {
		t.Fatalf("refined error %g not at double precision (iters %d)", maxErr, res.Iterations)
	}
	if res.Iterations > 6 {
		t.Fatalf("took %d refinement steps", res.Iterations)
	}
	// A pure f32 solve could never do better than ~1e-5 relative — make
	// sure refinement actually beat it by orders of magnitude.
	if maxErr > 1e-9 {
		t.Fatalf("error %g not clearly better than f32-only", maxErr)
	}
}

func TestSolveRandomSystems(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		n := 80
		a := matrix.Random(n, n, seed)
		// Shift the diagonal to keep the condition number moderate.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+8)
		}
		xWant := matrix.Random(n, 1, seed+100)
		b := blas.Mul(blas.NoTrans, blas.NoTrans, a, xWant)
		if _, err := Solve(a, b, 10); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !b.EqualApprox(xWant, 1e-10) {
			t.Fatalf("seed %d: inaccurate", seed)
		}
	}
}

func TestSolveIllConditionedFails(t *testing.T) {
	// Condition number far above 1/eps32: refinement must report failure
	// rather than silently returning garbage.
	n := 64
	a := matrix.NearSingular(n, n, 1e-12, 7)
	b := matrix.Random(n, 1, 8)
	if _, err := Solve(a, b.Clone(), 10); !errors.Is(err, ErrNoConvergence) && !errors.Is(err, ErrSingular) {
		t.Fatalf("expected convergence failure, got %v", err)
	}
}

func TestSolveSingular(t *testing.T) {
	a := matrix.New(8, 8)
	b := matrix.Random(8, 1, 9)
	if _, err := Solve(a, b, 5); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestGETRF32RectangularPanels(t *testing.T) {
	// Tall matrix (the panel shape): factorization must stay consistent.
	m, n := 120, 24
	orig := matrix.Random(m, n, 10)
	lu := FromDense(orig)
	ipiv := make([]int, n)
	if err := GETRF32(lu, ipiv, 8); err != nil {
		t.Fatal(err)
	}
	lu64 := lu.ToDense()
	l, u := lapack.ExtractLU(lu64)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	pa := orig.Clone()
	lapack.LASWP(pa, ipiv, 0, n)
	if !pa.EqualApprox(prod, 1e-4*float64(m)) {
		t.Fatal("tall f32 factorization residual too large")
	}
}
