// Package mixed implements mixed-precision iterative refinement: factor in
// float32, refine in float64 (Langou et al., "Exploiting the performance of
// 32 bit floating point arithmetic...", 2006 — the companion technique from
// the same research group and era as the paper, and a natural extension for
// this library since single precision doubles the effective flop rate of
// every kernel).
//
// The driver Solve converts A to float32, computes a single-precision LU
// with partial pivoting, and then runs double-precision iterative
// refinement: r = b - A*x in float64, correction solve in float32. For
// matrices with condition number safely below ~1/eps32 (~10^7) the refined
// solution reaches full double-precision accuracy in a handful of
// iterations; otherwise Solve reports ErrNoConvergence.
package mixed

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// ErrNoConvergence is returned when refinement stalls: the matrix is too
// ill-conditioned for a single-precision factorization to act as a useful
// preconditioner.
var ErrNoConvergence = errors.New("mixed: iterative refinement did not converge (matrix too ill-conditioned for float32 factorization)")

// ErrSingular is returned when the float32 factorization hits a zero pivot.
var ErrSingular = errors.New("mixed: matrix is singular in float32")

// Dense32 is a minimal column-major float32 matrix (element (i, j) at
// Data[j*Stride+i]), just enough to host the single-precision factorization.
type Dense32 struct {
	Rows, Cols, Stride int
	Data               []float32
}

// New32 allocates a zeroed float32 matrix.
func New32(r, c int) *Dense32 {
	stride := r
	if stride == 0 {
		stride = 1
	}
	return &Dense32{Rows: r, Cols: c, Stride: stride, Data: make([]float32, stride*c)}
}

// FromDense rounds a float64 matrix to float32.
func FromDense(a *matrix.Dense) *Dense32 {
	out := New32(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		src := a.Col(j)
		dst := out.col(j)
		for i, v := range src {
			dst[i] = float32(v)
		}
	}
	return out
}

// ToDense widens back to float64.
func (a *Dense32) ToDense() *matrix.Dense {
	out := matrix.New(a.Rows, a.Cols)
	for j := 0; j < a.Cols; j++ {
		src := a.col(j)
		dst := out.Col(j)
		for i, v := range src {
			dst[i] = float64(v)
		}
	}
	return out
}

func (a *Dense32) col(j int) []float32 {
	return a.Data[j*a.Stride : j*a.Stride+a.Rows]
}

// At returns element (i, j).
func (a *Dense32) At(i, j int) float32 { return a.Data[j*a.Stride+i] }

// Set assigns element (i, j).
func (a *Dense32) Set(i, j int, v float32) { a.Data[j*a.Stride+i] = v }

// view returns a sub-matrix view.
func (a *Dense32) view(i, j, r, c int) *Dense32 {
	return &Dense32{Rows: r, Cols: c, Stride: a.Stride, Data: a.Data[j*a.Stride+i:]}
}

// swapRows exchanges two rows.
func (a *Dense32) swapRows(i1, i2 int) {
	if i1 == i2 {
		return
	}
	for j := 0; j < a.Cols; j++ {
		c := a.col(j)
		c[i1], c[i2] = c[i2], c[i1]
	}
}

// gemm32 computes C -= A * B (the only combination the LU needs), with the
// same 1x4 column register tile as the float64 Dgemm so the two precisions
// are comparable kernel-for-kernel.
func gemm32(a, b, c *Dense32) {
	m, k, n := a.Rows, a.Cols, b.Cols
	j := 0
	for ; j+4 <= n; j += 4 {
		c0, c1 := c.col(j), c.col(j+1)
		c2, c3 := c.col(j+2), c.col(j+3)
		b0, b1 := b.col(j), b.col(j+1)
		b2, b3 := b.col(j+2), b.col(j+3)
		for p := 0; p < k; p++ {
			ap := a.col(p)
			v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
			for i, av := range ap[:m] {
				c0[i] -= av * v0
				c1[i] -= av * v1
				c2[i] -= av * v2
				c3[i] -= av * v3
			}
		}
	}
	for ; j < n; j++ {
		bj := b.col(j)
		cj := c.col(j)
		for p := 0; p < k; p++ {
			bv := bj[p]
			if bv == 0 {
				continue
			}
			ap := a.col(p)
			for i := 0; i < m; i++ {
				cj[i] -= ap[i] * bv
			}
		}
	}
}

// trsmLowerUnit32 solves L * X = B in place for unit lower triangular L.
func trsmLowerUnit32(l, b *Dense32) {
	n := l.Rows
	for j := 0; j < b.Cols; j++ {
		x := b.col(j)
		for i := 0; i < n; i++ {
			s := x[i]
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * x[k]
			}
			x[i] = s
		}
	}
}

// trsmUpper32 solves U * X = B in place for upper triangular U.
func trsmUpper32(u, b *Dense32) {
	n := u.Rows
	for j := 0; j < b.Cols; j++ {
		x := b.col(j)
		for i := n - 1; i >= 0; i-- {
			s := x[i]
			for k := i + 1; k < n; k++ {
				s -= u.At(i, k) * x[k]
			}
			x[i] = s / u.At(i, i)
		}
	}
}

// getf232 is unblocked float32 GEPP.
func getf232(a *Dense32, ipiv []int) error {
	m, n := a.Rows, a.Cols
	k := len(ipiv)
	var err error
	for j := 0; j < k; j++ {
		col := a.col(j)
		p, best := j, float32(math.Abs(float64(col[j])))
		for i := j + 1; i < m; i++ {
			if v := float32(math.Abs(float64(col[i]))); v > best {
				p, best = i, v
			}
		}
		ipiv[j] = p
		if col[p] == 0 {
			err = ErrSingular
			continue
		}
		if p != j {
			a.swapRows(j, p)
		}
		inv := 1 / col[j]
		for i := j + 1; i < m; i++ {
			col[i] *= inv
		}
		if j < n-1 {
			for jj := j + 1; jj < n; jj++ {
				cj := a.col(jj)
				mult := cj[j]
				if mult == 0 {
					continue
				}
				for i := j + 1; i < m; i++ {
					cj[i] -= col[i] * mult
				}
			}
		}
	}
	return err
}

// GETRF32 computes a blocked float32 LU with partial pivoting (panel width
// nb), the single-precision workhorse of the mixed solver.
func GETRF32(a *Dense32, ipiv []int, nb int) error {
	m, n := a.Rows, a.Cols
	k := min(m, n)
	if len(ipiv) != k {
		panic(fmt.Sprintf("mixed: GETRF32 ipiv length %d want %d", len(ipiv), k))
	}
	var err error
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		panel := a.view(j, j, m-j, jb)
		if e := getf232(panel, ipiv[j:j+jb]); e != nil {
			err = e
		}
		for i := j; i < j+jb; i++ {
			ipiv[i] += j
		}
		// Apply swaps across the rest of the matrix.
		for i := j; i < j+jb; i++ {
			if p := ipiv[i]; p != i {
				// Swap full rows outside the panel (panel already swapped).
				for jj := 0; jj < n; jj++ {
					if jj >= j && jj < j+jb {
						continue
					}
					c := a.col(jj)
					c[i], c[p] = c[p], c[i]
				}
			}
		}
		if j+jb < n {
			l11 := a.view(j, j, jb, jb)
			u12 := a.view(j, j+jb, jb, n-j-jb)
			trsmLowerUnit32(l11, u12)
			if j+jb < m {
				l21 := a.view(j+jb, j, m-j-jb, jb)
				a22 := a.view(j+jb, j+jb, m-j-jb, n-j-jb)
				gemm32(l21, u12, a22)
			}
		}
	}
	return err
}

// luSolve32 solves A x = b in float32 given the factorization.
func luSolve32(lu *Dense32, ipiv []int, b []float32) {
	for i, p := range ipiv {
		if p != i {
			b[i], b[p] = b[p], b[i]
		}
	}
	rhs := &Dense32{Rows: lu.Rows, Cols: 1, Stride: lu.Rows, Data: b}
	trsmLowerUnit32(lu, rhs)
	trsmUpper32(lu, rhs)
}

// Result reports how the mixed solve went.
type Result struct {
	// Iterations is the number of refinement steps performed.
	Iterations int
	// Residual is the final ||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf).
	Residual float64
}

// Solve solves A*x = b (single right-hand side) by float32 LU plus float64
// iterative refinement, overwriting b with x. maxIter bounds the
// refinement (8 is plenty when it converges at all).
func Solve(a *matrix.Dense, b *matrix.Dense, maxIter int) (Result, error) {
	n := a.Rows
	if a.Cols != n {
		panic(fmt.Sprintf("mixed: Solve needs square A, got %dx%d", n, a.Cols))
	}
	if b.Rows != n || b.Cols != 1 {
		panic(fmt.Sprintf("mixed: Solve rhs must be %dx1", n))
	}
	lu := FromDense(a)
	ipiv := make([]int, n)
	if err := GETRF32(lu, ipiv, 64); err != nil {
		return Result{}, err
	}

	anorm := a.NormInf()
	bnorm := b.MaxAbs()
	// Initial solve in float32.
	x := make([]float64, n)
	work32 := make([]float32, n)
	for i := 0; i < n; i++ {
		work32[i] = float32(b.At(i, 0))
	}
	luSolve32(lu, ipiv, work32)
	for i := range x {
		x[i] = float64(work32[i])
	}

	res := Result{}
	tol := 4 * 1.1e-16 // a few ulps of normwise backward error
	prev := math.Inf(1)
	for iter := 1; iter <= maxIter; iter++ {
		// r = b - A x in float64.
		r := make([]float64, n)
		for i := range r {
			r[i] = b.At(i, 0)
		}
		blas.Dgemv(blas.NoTrans, n, n, -1, a.Data, a.Stride, x, 1, 1, r, 1)
		rnorm := maxAbs(r)
		xnorm := maxAbs(x)
		res.Iterations = iter
		res.Residual = rnorm / (anorm*xnorm + bnorm + 1e-300)
		if res.Residual <= tol {
			writeBack(b, x)
			return res, nil
		}
		if rnorm >= prev/2 {
			// Stalled: float32 factor is not contracting the error.
			writeBack(b, x)
			return res, ErrNoConvergence
		}
		prev = rnorm
		// Correction solve in float32.
		for i := range r {
			work32[i] = float32(r[i])
		}
		luSolve32(lu, ipiv, work32)
		for i := range x {
			x[i] += float64(work32[i])
		}
	}
	writeBack(b, x)
	return res, ErrNoConvergence
}

func writeBack(b *matrix.Dense, x []float64) {
	for i := range x {
		b.Set(i, 0, x[i])
	}
}

func maxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
