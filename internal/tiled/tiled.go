// Package tiled implements PLASMA-style tiled LU and QR factorizations —
// the "class of parallel tiled linear algebra algorithms" of Buttari,
// Langou, Kurzak and Dongarra that the paper benchmarks CALU and CAQR
// against (PLASMA_dgetrf, PLASMA_dgeqrf).
//
// The matrix is partitioned into t x t tiles. Tiled QR eliminates each
// panel with a flat chain of kernels: GEQRT factors the diagonal tile,
// TSQRT annihilates each sub-diagonal tile against the diagonal R
// (triangle-on-top-of-square QR), and ORMQR/TSMQR propagate the
// transformations across the trailing tiles. Tiled LU replaces pivoted
// panel factorization with incremental (block pairwise) pivoting: GETRF on
// the diagonal tile, TSTRF for each sub-diagonal tile (GEPP of the stacked
// [U; tile] pair), GESSM/SSSSM for the updates.
//
// The defining structural property — and the reason the paper's CALU/CAQR
// beat these algorithms on tall-and-skinny matrices — is that the panel is
// eliminated by a sequential chain of length M (the number of tile rows):
// each TSQRT/TSTRF depends on the previous one. The trade-off is that the
// panel never blocks the trailing updates of *other* columns, which is why
// the tiled algorithms win back ground as n grows.
//
// Like package core, the factorizations execute as task graphs on the
// dynamic scheduler, and the graphs can be built unbound (cost annotations
// only) for virtual-time simulation.
package tiled

import (
	"fmt"

	"repro/internal/sched"
)

// Options configures the tiled algorithms.
type Options struct {
	// TileSize is the tile edge t. PLASMA's default is around 200; the
	// paper's comparisons run it with its default parameters.
	TileSize int
	// Workers is the number of scheduler goroutines.
	Workers int
	// Trace records per-task execution events.
	Trace bool
}

func (o *Options) normalize(n int) {
	if o.TileSize <= 0 {
		o.TileSize = min(200, n)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// grid describes the tile decomposition of an m x n matrix.
type grid struct {
	m, n, t int
	mt, nt  int // tile counts
}

func newGrid(m, n, t int) grid {
	return grid{m: m, n: n, t: t, mt: (m + t - 1) / t, nt: (n + t - 1) / t}
}

// tile returns the row/col offsets and dimensions of tile (i, j).
func (g grid) tile(i, j int) (r0, c0, rows, cols int) {
	r0, c0 = i*g.t, j*g.t
	rows = min(g.t, g.m-r0)
	cols = min(g.t, g.n-c0)
	return r0, c0, rows, cols
}

// writerTable tracks the last task writing each tile, for dependency wiring.
type writerTable struct {
	g grid
	w []*sched.Task
}

func newWriterTable(g grid) *writerTable {
	return &writerTable{g: g, w: make([]*sched.Task, g.mt*g.nt)}
}

func (wt *writerTable) get(i, j int) *sched.Task { return wt.w[i*wt.g.nt+j] }
func (wt *writerTable) set(i, j int, t *sched.Task) {
	wt.w[i*wt.g.nt+j] = t
}

// dep wires deduplicated dependencies.
func dep(g *sched.Graph, t *sched.Task, pres ...*sched.Task) {
	seen := make(map[int]bool, len(pres))
	for _, p := range pres {
		if p == nil || seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		g.AddDep(p, t)
	}
}

// Priorities: like CALU/CAQR, tasks are ordered by the block column they
// touch (PLASMA's left-looking progression emerges from the DAG itself, but
// column-ordered priorities keep the panel chain moving).
func tiledPriority(nt, col, bonus int) int {
	return (nt-col)*1000 + bonus
}

const (
	bonusPanel  = 90
	bonusUpdate = 70
)

// fcube returns float64(n)^3.
func fcube(n int) float64 {
	f := float64(n)
	return f * f * f
}

func panicIf(cond bool, format string, args ...any) {
	if cond {
		panic(fmt.Sprintf(format, args...))
	}
}
