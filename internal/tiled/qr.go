package tiled

import (
	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// qrOp records one elimination step of tiled QR for later implicit-Q
// application: the compact-WY reflectors of a GEQRT (diagonal tile) or
// TSQRT (structured triangle-on-square) kernel.
type qrOp struct {
	k, i int // panel column; tile row (i == k for GEQRT)
	// v holds the reflector vectors: for GEQRT a copy of the rows x kk
	// factored tile (R in its upper triangle is ignored on apply); for
	// TSQRT a view of the sub-diagonal tile, which holds the structured
	// V2 tails in place after the elimination.
	v *matrix.Dense
	// t is the compact-WY triangular factor.
	t *matrix.Dense
}

// QR is a tiled QR factorization (flat-tree PLASMA algorithm).
type QR struct {
	// A holds R in its upper triangle; the tiles below hold reflector data.
	A *matrix.Dense
	// Events is the execution trace, non-nil only when Options.Trace is set.
	Events []sched.Event
	// Graph is the executed task graph.
	Graph *sched.Graph

	g   grid
	ops []*qrOp
}

// GEQRF computes the tiled QR factorization of the m x n matrix a (m >= n),
// in place — the PLASMA_dgeqrf stand-in.
func GEQRF(a *matrix.Dense, opt Options) *QR {
	opt.normalize(a.Cols)
	panicIf(a.Rows < a.Cols, "tiled: GEQRF needs m >= n, got %dx%d", a.Rows, a.Cols)
	res := &QR{A: a, g: newGrid(a.Rows, a.Cols, opt.TileSize)}
	g := buildQRGraph(res.g, res)
	runner := sched.Runner{Workers: opt.Workers, Trace: opt.Trace}
	res.Events = runner.Run(g)
	res.Graph = g
	return res
}

// BuildGEQRFGraph constructs the tiled-QR task graph unbound for
// virtual-time simulation.
func BuildGEQRFGraph(m, n int, opt Options) *sched.Graph {
	opt.normalize(n)
	return buildQRGraph(newGrid(m, n, opt.TileSize), nil)
}

// buildQRGraph wires the classic flat-tree tiled QR DAG:
//
//	GEQRT(k,k) -> ORMQR(k,j)             j > k
//	TSQRT(k,i) chain down the panel       i > k
//	TSMQR(k,i,j) chains down each column  j > k
func buildQRGraph(gr grid, res *QR) *sched.Graph {
	g := sched.NewGraph()
	wt := newWriterTable(gr)
	for k := 0; k < gr.nt; k++ {
		r0, c0, rows, cols := gr.tile(k, k)
		kk := min(rows, cols)

		geqrt := &sched.Task{
			Label:    lbl("GEQRT k=%d", k),
			Kind:     sched.KindP,
			Priority: tiledPriority(gr.nt, k, bonusPanel),
			Flops:    2 * float64(cols) * float64(cols) * (float64(rows) - float64(cols)/3),
			Class:    sched.ClassBLAS3,
		}
		var geqrtOp *qrOp
		if res != nil {
			geqrtOp = &qrOp{k: k, i: k}
			res.ops = append(res.ops, geqrtOp)
			tile := res.A.View(r0, c0, rows, cols)
			op := geqrtOp
			geqrt.Run = func() {
				tmat := matrix.New(kk, kk)
				tau := make([]float64, kk)
				if rows >= cols {
					lapack.GEQR3(tile, tau, tmat)
				} else {
					lapack.GEQR2(tile, tau)
					lapack.Larft(tile.View(0, 0, rows, kk), tau[:kk], tmat)
				}
				op.v = tile.View(0, 0, rows, kk).Clone()
				op.t = tmat
			}
		}
		g.Add(geqrt)
		dep(g, geqrt, wt.get(k, k))
		wt.set(k, k, geqrt)

		ormqrTasks := make([]*sched.Task, gr.nt)
		for j := k + 1; j < gr.nt; j++ {
			_, jc0, _, jcols := gr.tile(k, j)
			ormqr := &sched.Task{
				Label:    lbl("ORMQR k=%d j=%d", k, j),
				Kind:     sched.KindU,
				Priority: tiledPriority(gr.nt, j, bonusUpdate),
				Flops:    3 * float64(rows) * float64(kk) * float64(jcols),
				Class:    sched.ClassBLAS3,
			}
			if res != nil {
				c := res.A.View(r0, jc0, rows, jcols)
				op := geqrtOp
				ormqr.Run = func() {
					lapack.Larfb(blas.Trans, op.v, op.t, c)
				}
			}
			g.Add(ormqr)
			dep(g, ormqr, geqrt, wt.get(k, j))
			wt.set(k, j, ormqr)
			ormqrTasks[j] = ormqr
		}

		prevPanel := geqrt
		prevUpdate := ormqrTasks
		for i := k + 1; i < gr.mt; i++ {
			ir0, _, irows, _ := gr.tile(i, k)
			tsqrt := &sched.Task{
				Label:    lbl("TSQRT k=%d i=%d", k, i),
				Kind:     sched.KindP,
				Priority: tiledPriority(gr.nt, k, bonusPanel),
				Flops:    2 * float64(cols) * float64(cols) * float64(irows),
				Class:    sched.ClassBLAS3,
			}
			var tsqrtOp *qrOp
			if res != nil {
				tsqrtOp = &qrOp{k: k, i: i}
				res.ops = append(res.ops, tsqrtOp)
				// kk == cols for diagonal tiles (m >= n), so the R operand
				// is the tile's leading cols x cols upper triangle.
				diagR := res.A.View(r0, c0, cols, cols)
				tile := res.A.View(ir0, c0, irows, cols)
				op := tsqrtOp
				tsqrt.Run = func() {
					// Structured triangle-on-square QR, fully in place: the
					// diagonal tile's R is updated and the sub-diagonal tile
					// is overwritten with the V2 reflector tails.
					tmat := matrix.New(cols, cols)
					lapack.TPQRT(diagR, tile, tmat)
					op.v = tile
					op.t = tmat
				}
			}
			g.Add(tsqrt)
			dep(g, tsqrt, prevPanel, wt.get(i, k))
			wt.set(i, k, tsqrt)
			wt.set(k, k, tsqrt)
			prevPanel = tsqrt

			nextUpdate := make([]*sched.Task, gr.nt)
			for j := k + 1; j < gr.nt; j++ {
				_, jc0, _, jcols := gr.tile(k, j)
				tsmqr := &sched.Task{
					Label:    lbl("TSMQR k=%d i=%d j=%d", k, i, j),
					Kind:     sched.KindS,
					Priority: tiledPriority(gr.nt, j, bonusUpdate),
					Flops:    4 * float64(irows) * float64(cols) * float64(jcols),
					Class:    sched.ClassBLAS3,
				}
				if res != nil {
					top := res.A.View(r0, jc0, kk, jcols)
					bot := res.A.View(ir0, jc0, irows, jcols)
					op := tsqrtOp
					tsmqr.Run = func() {
						lapack.TPMQRT(blas.Trans, op.v, op.t, top, bot)
					}
				}
				g.Add(tsmqr)
				dep(g, tsmqr, tsqrt, prevUpdate[j], wt.get(i, j))
				wt.set(i, j, tsmqr)
				wt.set(k, j, tsmqr)
				nextUpdate[j] = tsmqr
			}
			prevUpdate = nextUpdate
		}
	}
	return g
}

// R returns a copy of the n x n upper-triangular factor.
func (qr *QR) R() *matrix.Dense {
	n := qr.A.Cols
	r := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			r.Set(i, j, qr.A.At(i, j))
		}
	}
	return r
}

// ApplyQT overwrites c (A.Rows x p) with Q^T c, replaying the elimination
// operations in factorization order.
func (qr *QR) ApplyQT(c *matrix.Dense) {
	panicIf(c.Rows != qr.A.Rows, "tiled: ApplyQT rows %d want %d", c.Rows, qr.A.Rows)
	for _, op := range qr.ops {
		qr.applyOp(op, c, blas.Trans)
	}
}

// ApplyQ overwrites c with Q c (reverse replay).
func (qr *QR) ApplyQ(c *matrix.Dense) {
	panicIf(c.Rows != qr.A.Rows, "tiled: ApplyQ rows %d want %d", c.Rows, qr.A.Rows)
	for i := len(qr.ops) - 1; i >= 0; i-- {
		qr.applyOp(qr.ops[i], c, blas.NoTrans)
	}
}

func (qr *QR) applyOp(op *qrOp, c *matrix.Dense, trans blas.Transpose) {
	r0, _, rows, cols := qr.g.tile(op.k, op.k)
	kk := min(rows, cols)
	if op.i == op.k {
		sub := c.View(r0, 0, rows, c.Cols)
		lapack.Larfb(trans, op.v, op.t, sub)
		return
	}
	ir0, _, irows, _ := qr.g.tile(op.i, op.k)
	lapack.TPMQRT(trans, op.v, op.t, c.View(r0, 0, kk, c.Cols), c.View(ir0, 0, irows, c.Cols))
}

// ExplicitQ forms the thin m x n orthogonal factor.
func (qr *QR) ExplicitQ() *matrix.Dense {
	m, n := qr.A.Rows, qr.A.Cols
	q := matrix.New(m, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1)
	}
	qr.ApplyQ(q)
	return q
}

// LeastSquares solves min ||A*x - rhs||_2, returning the n x p solution.
// rhs is overwritten with Q^T rhs.
func (qr *QR) LeastSquares(rhs *matrix.Dense) *matrix.Dense {
	n := qr.A.Cols
	qr.ApplyQT(rhs)
	x := rhs.View(0, 0, n, rhs.Cols).Clone()
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, qr.R(), x)
	return x
}
