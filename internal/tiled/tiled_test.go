package tiled

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func TestGridTiling(t *testing.T) {
	g := newGrid(25, 10, 8)
	if g.mt != 4 || g.nt != 2 {
		t.Fatalf("grid %dx%d tiles", g.mt, g.nt)
	}
	r0, c0, rows, cols := g.tile(3, 1)
	if r0 != 24 || c0 != 8 || rows != 1 || cols != 2 {
		t.Fatalf("tile(3,1) = %d %d %dx%d", r0, c0, rows, cols)
	}
}

func TestTiledLUSolve(t *testing.T) {
	for _, tc := range []struct{ n, tile, workers int }{
		{24, 8, 1}, {24, 8, 4}, {30, 7, 2}, {50, 16, 4}, {16, 16, 2}, {10, 3, 3},
	} {
		orig := matrix.Random(tc.n, tc.n, int64(tc.n*31+tc.tile))
		xWant := matrix.Random(tc.n, 2, int64(tc.n))
		rhs := blas.Mul(blas.NoTrans, blas.NoTrans, orig, xWant)
		lu, err := GETRF(orig.Clone(), Options{TileSize: tc.tile, Workers: tc.workers})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		lu.Solve(rhs)
		if !rhs.EqualApprox(xWant, 1e-7) {
			t.Errorf("%+v: wrong solution", tc)
		}
	}
}

func TestTiledLUDeterministicAcrossWorkers(t *testing.T) {
	orig := matrix.Random(40, 40, 3)
	var ref *matrix.Dense
	for _, w := range []int{1, 2, 4} {
		a := orig.Clone()
		if _, err := GETRF(a, Options{TileSize: 10, Workers: w}); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = a
		} else if !a.Equal(ref) {
			t.Fatalf("workers=%d changed bits", w)
		}
	}
}

func TestTiledLUUpperTriangularU(t *testing.T) {
	// After incremental pivoting, the upper triangle is a genuine U whose
	// diagonal is nonzero for a well-conditioned matrix.
	a := matrix.DiagonallyDominant(32, 5)
	lu, err := GETRF(a, Options{TileSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if lu.A.At(i, i) == 0 {
			t.Fatalf("zero diagonal at %d", i)
		}
	}
}

func TestTiledLUSingular(t *testing.T) {
	a := matrix.New(16, 16)
	if _, err := GETRF(a, Options{TileSize: 4, Workers: 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestTiledLURectangular(t *testing.T) {
	// m > n rectangular: factor and verify by solving the square top via
	// reconstruction is hard without a global P, so check that factoring
	// completes and the panel chain ran (ops recorded).
	a := matrix.Random(50, 20, 7)
	lu, err := GETRF(a, Options{TileSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// nt=3 panels; ops per panel: 1 GETRF + (mt-k-1) TSTRF.
	wantOps := 0
	g := newGrid(50, 20, 8)
	for k := 0; k < g.nt; k++ {
		wantOps += 1 + (g.mt - k - 1)
	}
	if len(lu.ops) != wantOps {
		t.Fatalf("ops = %d want %d", len(lu.ops), wantOps)
	}
}

func TestTiledQRFactors(t *testing.T) {
	for _, tc := range []struct{ m, n, tile, workers int }{
		{24, 24, 8, 1}, {24, 24, 8, 4}, {40, 16, 8, 2}, {30, 10, 7, 3}, {64, 8, 8, 4},
	} {
		orig := matrix.Random(tc.m, tc.n, int64(tc.m*13+tc.tile))
		qr := GEQRF(orig.Clone(), Options{TileSize: tc.tile, Workers: tc.workers})
		q := qr.ExplicitQ()
		r := qr.R()
		qtq := blas.Mul(blas.Trans, blas.NoTrans, q, q)
		for i := 0; i < tc.n; i++ {
			qtq.Set(i, i, qtq.At(i, i)-1)
		}
		if e := qtq.MaxAbs(); e > 1e-11*float64(tc.m) {
			t.Errorf("%+v: ||Q^T Q - I|| = %g", tc, e)
		}
		prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
		if !prod.EqualApprox(orig, 1e-10*float64(tc.m)) {
			t.Errorf("%+v: A != Q R", tc)
		}
	}
}

func TestTiledQRLeastSquares(t *testing.T) {
	m, n := 60, 10
	a := matrix.Random(m, n, 17)
	xWant := matrix.Random(n, 1, 18)
	rhs := blas.Mul(blas.NoTrans, blas.NoTrans, a, xWant)
	qr := GEQRF(a.Clone(), Options{TileSize: 8, Workers: 3})
	x := qr.LeastSquares(rhs)
	if !x.EqualApprox(xWant, 1e-8) {
		t.Fatal("wrong least-squares solution")
	}
}

func TestTiledQRDeterministicAcrossWorkers(t *testing.T) {
	orig := matrix.Random(32, 32, 19)
	var ref *matrix.Dense
	for _, w := range []int{1, 2, 4} {
		a := orig.Clone()
		GEQRF(a, Options{TileSize: 8, Workers: w})
		if ref == nil {
			ref = a
		} else if !a.Equal(ref) {
			t.Fatalf("workers=%d changed bits", w)
		}
	}
}

func TestTiledGraphShapes(t *testing.T) {
	// For an mt x nt = 4x2 grid: LU tasks = sum_k [1 GETRF + (nt-k-1) GESSM
	// + (mt-k-1)(1 TSTRF + (nt-k-1) SSSSM)].
	gLU := BuildGETRFGraph(32, 16, Options{TileSize: 8, Workers: 1})
	want := 0
	for k := 0; k < 2; k++ {
		want += 1 + (2 - k - 1) + (4-k-1)*(1+(2-k-1))
	}
	if gLU.Len() != want {
		t.Fatalf("LU graph %d tasks want %d", gLU.Len(), want)
	}
	if err := gLU.Validate(); err != nil {
		t.Fatal(err)
	}
	gQR := BuildGEQRFGraph(32, 16, Options{TileSize: 8, Workers: 1})
	if gQR.Len() != want {
		t.Fatalf("QR graph %d tasks want %d", gQR.Len(), want)
	}
	if err := gQR.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTiledPanelChainIsSequential(t *testing.T) {
	// The defining property vs CALU/CAQR: the panel kernels of one column
	// form a dependency chain, so the critical path grows with mt. Check
	// via the graph's critical path under unit task durations.
	gShort := BuildGEQRFGraph(16, 8, Options{TileSize: 8, Workers: 1}) // mt=2
	gTall := BuildGEQRFGraph(128, 8, Options{TileSize: 8, Workers: 1}) // mt=16
	spanShort, _ := gShort.CriticalPath(func(*sched.Task) float64 { return 1 })
	spanTall, _ := gTall.CriticalPath(func(*sched.Task) float64 { return 1 })
	if spanTall < spanShort+10 {
		t.Fatalf("tall panel chain span %v not much larger than short %v", spanTall, spanShort)
	}
}

func TestTiledQRGramProperty(t *testing.T) {
	f := func(seed int64, tileRaw, wRaw uint8) bool {
		m := 20 + int(uint64(seed)%30)
		n := 5 + int(uint64(seed)%10)
		if m < n {
			m = n
		}
		tile := int(tileRaw)%10 + 2
		workers := int(wRaw)%4 + 1
		orig := matrix.Random(m, n, seed)
		qr := GEQRF(orig.Clone(), Options{TileSize: tile, Workers: workers})
		r := qr.R()
		ata := blas.Mul(blas.Trans, blas.NoTrans, orig, orig)
		rtr := blas.Mul(blas.Trans, blas.NoTrans, r, r)
		return ata.EqualApprox(rtr, 1e-9*float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledLUSolveProperty(t *testing.T) {
	f := func(seed int64, tileRaw, wRaw uint8) bool {
		n := 12 + int(uint64(seed)%24)
		tile := int(tileRaw)%10 + 2
		workers := int(wRaw)%4 + 1
		orig := matrix.DiagonallyDominant(n, seed)
		x := matrix.Random(n, 1, seed+1)
		rhs := blas.Mul(blas.NoTrans, blas.NoTrans, orig, x)
		lu, err := GETRF(orig.Clone(), Options{TileSize: tile, Workers: workers})
		if err != nil {
			return false
		}
		lu.Solve(rhs)
		return rhs.EqualApprox(x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// growthFactorTiled measures incremental pivoting's element growth, which
// is known to exceed partial pivoting's — the price PLASMA pays for its
// DAG-friendly panels, and part of why CALU's ca-pivoting matters.
func TestTiledLUGrowthFinite(t *testing.T) {
	orig := matrix.Random(64, 64, 23)
	lu, err := GETRF(orig.Clone(), Options{TileSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	maxU := 0.0
	for j := 0; j < 64; j++ {
		for i := 0; i <= j; i++ {
			if v := math.Abs(lu.A.At(i, j)); v > maxU {
				maxU = v
			}
		}
	}
	if g := maxU / orig.MaxAbs(); g > 1e4 || math.IsNaN(g) {
		t.Fatalf("growth %v unreasonable", g)
	}
}

func TestTiledGraphBoundMatchesUnbound(t *testing.T) {
	// The graph-only builders must produce the same shape as the bound runs.
	opt := Options{TileSize: 8, Workers: 2}
	a := matrix.Random(40, 24, 41)
	lu, err := GETRF(a.Clone(), opt)
	if err != nil {
		t.Fatal(err)
	}
	gLU := BuildGETRFGraph(40, 24, opt)
	if lu.Graph.Len() != gLU.Len() || lu.Graph.Edges() != gLU.Edges() {
		t.Fatalf("LU graphs differ: %d/%d vs %d/%d",
			lu.Graph.Len(), lu.Graph.Edges(), gLU.Len(), gLU.Edges())
	}
	qr := GEQRF(a.Clone(), opt)
	gQR := BuildGEQRFGraph(40, 24, opt)
	if qr.Graph.Len() != gQR.Len() || qr.Graph.Edges() != gQR.Edges() {
		t.Fatalf("QR graphs differ: %d/%d vs %d/%d",
			qr.Graph.Len(), qr.Graph.Edges(), gQR.Len(), gQR.Edges())
	}
}
