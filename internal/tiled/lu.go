package tiled

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// ErrSingular reports a zero pivot during tiled LU.
var ErrSingular = errors.New("tiled: matrix is singular to working precision")

// luOpKind distinguishes the forward-elimination operations recorded for
// later replay when solving systems.
type luOpKind uint8

const (
	opGETRF luOpKind = iota // diagonal-tile GEPP
	opTSTRF                 // stacked [U; tile] GEPP
)

// luOp records one panel elimination step of tiled LU. Incremental pivoting
// never produces a global permutation, so solving requires replaying each
// step's local pivoting and elimination on the right-hand side, in order.
type luOp struct {
	kind luOpKind
	k, i int // panel column; tile row (i == k for opGETRF)
	// fac holds the elimination's L factors: for opGETRF the tile's L is
	// in A itself; for opTSTRF fac is the factored stacked pair (the tile
	// part of L also lands in A, but the rows interleaved into the U tile
	// only live here).
	fac  *matrix.Dense
	ipiv []int
}

// LU is a tiled LU factorization with incremental pivoting.
type LU struct {
	// A holds the factored tiles: U in the upper triangle (genuinely upper
	// triangular), tile L factors below.
	A *matrix.Dense
	// Events is the execution trace, non-nil only when Options.Trace is set.
	Events []sched.Event
	// Graph is the executed task graph.
	Graph *sched.Graph

	g     grid
	ops   []*luOp
	errMu sync.Mutex
	err   error
}

// GETRF computes the tiled LU factorization with incremental pivoting of
// the m x n matrix a (m >= n), in place — the PLASMA_dgetrf stand-in.
func GETRF(a *matrix.Dense, opt Options) (*LU, error) {
	opt.normalize(a.Cols)
	panicIf(a.Rows < a.Cols, "tiled: GETRF needs m >= n, got %dx%d", a.Rows, a.Cols)
	res := &LU{A: a, g: newGrid(a.Rows, a.Cols, opt.TileSize)}
	g := buildLUGraph(res.g, res)
	runner := sched.Runner{Workers: opt.Workers, Trace: opt.Trace}
	res.Events = runner.Run(g)
	res.Graph = g
	return res, res.err
}

// BuildGETRFGraph constructs the tiled-LU task graph unbound (cost
// annotations only) for virtual-time simulation.
func BuildGETRFGraph(m, n int, opt Options) *sched.Graph {
	opt.normalize(n)
	return buildLUGraph(newGrid(m, n, opt.TileSize), nil)
}

// buildLUGraph wires the classic incremental-pivoting DAG:
//
//	GETRF(k,k) -> GESSM(k,j)            j > k
//	TSTRF(k,i) chain down the panel      i > k
//	SSSSM(k,i,j) chains down each column j > k
func buildLUGraph(gr grid, res *LU) *sched.Graph {
	g := sched.NewGraph()
	wt := newWriterTable(gr)
	for k := 0; k < gr.nt; k++ {
		k := k
		r0, c0, rows, cols := gr.tile(k, k)
		kk := min(rows, cols)

		// GETRF on the diagonal tile.
		getrf := &sched.Task{
			Label:    lbl("GETRF k=%d", k),
			Kind:     sched.KindP,
			Priority: tiledPriority(gr.nt, k, bonusPanel),
			Flops:    float64(rows)*float64(cols)*float64(cols) - fcube(cols)/3,
			Class:    sched.ClassBLAS3,
		}
		var getrfOp *luOp
		if res != nil {
			getrfOp = &luOp{kind: opGETRF, k: k, i: k, ipiv: make([]int, kk)}
			res.ops = append(res.ops, getrfOp)
			tile := res.A.View(r0, c0, rows, cols)
			getrf.Run = func() {
				if err := lapack.RGETF2(tile, getrfOp.ipiv); err != nil {
					res.setErr(ErrSingular)
				}
			}
		}
		g.Add(getrf)
		dep(g, getrf, wt.get(k, k))
		wt.set(k, k, getrf)

		// GESSM: apply the diagonal tile's pivoting and L to row tiles.
		gessmTasks := make([]*sched.Task, gr.nt)
		for j := k + 1; j < gr.nt; j++ {
			j := j
			_, jc0, _, jcols := gr.tile(k, j)
			gessm := &sched.Task{
				Label:    lbl("GESSM k=%d j=%d", k, j),
				Kind:     sched.KindU,
				Priority: tiledPriority(gr.nt, j, bonusUpdate),
				Flops:    float64(kk) * float64(kk) * float64(jcols),
				Class:    sched.ClassBLAS3,
			}
			if res != nil {
				c := res.A.View(r0, jc0, rows, jcols)
				diag := res.A.View(r0, c0, rows, cols)
				gessm.Run = func() {
					lapack.LASWP(c, getrfOp.ipiv, 0, kk)
					lkk := diag.View(0, 0, kk, kk)
					blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, lkk, c.View(0, 0, kk, jcols))
					if rows > kk {
						// Rectangular diagonal tile (ragged bottom edge).
						blas.Gemm(blas.NoTrans, blas.NoTrans, -1,
							diag.View(kk, 0, rows-kk, kk), c.View(0, 0, kk, jcols), 1,
							c.View(kk, 0, rows-kk, jcols))
					}
				}
			}
			g.Add(gessm)
			dep(g, gessm, getrf, wt.get(k, j))
			wt.set(k, j, gessm)
			gessmTasks[j] = gessm
		}

		// TSTRF chain down the panel, each with its SSSSM updates.
		prevPanel := getrf
		prevUpdate := gessmTasks
		for i := k + 1; i < gr.mt; i++ {
			i := i
			ir0, _, irows, _ := gr.tile(i, k)
			tstrf := &sched.Task{
				Label:    lbl("TSTRF k=%d i=%d", k, i),
				Kind:     sched.KindP,
				Priority: tiledPriority(gr.nt, k, bonusPanel),
				Flops:    float64(cols)*float64(cols)*float64(irows) + fcube(cols)/3,
				Class:    sched.ClassBLAS3,
			}
			var tstrfOp *luOp
			if res != nil {
				tstrfOp = &luOp{kind: opTSTRF, k: k, i: i, ipiv: make([]int, kk)}
				res.ops = append(res.ops, tstrfOp)
				diag := res.A.View(r0, c0, rows, cols)
				tile := res.A.View(ir0, c0, irows, cols)
				tstrf.Run = func() {
					// GEPP of the stacked pair [U_kk; A_ik]. Only the U
					// rows of the diagonal tile participate.
					stack := matrix.New(kk+irows, cols)
					for j := 0; j < cols; j++ {
						dst := stack.Col(j)
						for ii := 0; ii < kk && ii <= j; ii++ {
							dst[ii] = diag.At(ii, j)
						}
						copy(dst[kk:], tile.Col(j))
					}
					if err := lapack.RGETF2(stack, tstrfOp.ipiv); err != nil {
						res.setErr(ErrSingular)
					}
					tstrfOp.fac = stack
					// Write back: updated U into the diagonal tile's upper
					// triangle, multipliers into the sub-diagonal tile.
					for j := 0; j < cols; j++ {
						src := stack.Col(j)
						for ii := 0; ii < kk && ii <= j; ii++ {
							diag.Set(ii, j, src[ii])
						}
						copy(tile.Col(j), src[kk:])
					}
				}
			}
			g.Add(tstrf)
			dep(g, tstrf, prevPanel, wt.get(i, k))
			wt.set(i, k, tstrf)
			// The diagonal tile's U is rewritten, so later readers of
			// (k,k) must follow; record tstrf as its writer.
			wt.set(k, k, tstrf)
			prevPanel = tstrf

			nextUpdate := make([]*sched.Task, gr.nt)
			for j := k + 1; j < gr.nt; j++ {
				j := j
				_, jc0, _, jcols := gr.tile(k, j)
				ssssm := &sched.Task{
					Label:    lbl("SSSSM k=%d i=%d j=%d", k, i, j),
					Kind:     sched.KindS,
					Priority: tiledPriority(gr.nt, j, bonusUpdate),
					Flops:    float64(kk+2*irows) * float64(kk) * float64(jcols),
					Class:    sched.ClassBLAS3,
				}
				if res != nil {
					top := res.A.View(r0, jc0, kk, jcols)
					bot := res.A.View(ir0, jc0, irows, jcols)
					ssssm.Run = func() {
						applyTSTRF(tstrfOp, top, bot)
					}
				}
				g.Add(ssssm)
				dep(g, ssssm, tstrf, prevUpdate[j], wt.get(i, j))
				wt.set(i, j, ssssm)
				wt.set(k, j, ssssm)
				nextUpdate[j] = ssssm
			}
			prevUpdate = nextUpdate
		}
	}
	return g
}

// applyTSTRF replays one TSTRF elimination on a stacked right-hand pair:
// [top; bot] := L^{-1} P [top; bot] using the op's stored factor.
func applyTSTRF(op *luOp, top, bot *matrix.Dense) {
	kk := top.Rows
	n := top.Cols
	stack := matrix.New(kk+bot.Rows, n)
	stack.View(0, 0, kk, n).CopyFrom(top)
	stack.View(kk, 0, bot.Rows, n).CopyFrom(bot)
	lapack.LASWP(stack, op.ipiv, 0, len(op.ipiv))
	l11 := op.fac.View(0, 0, kk, kk)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, l11, stack.View(0, 0, kk, n))
	if bot.Rows > 0 {
		l21 := op.fac.View(kk, 0, bot.Rows, kk)
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, l21, stack.View(0, 0, kk, n), 1, stack.View(kk, 0, bot.Rows, n))
	}
	top.CopyFrom(stack.View(0, 0, kk, n))
	bot.CopyFrom(stack.View(kk, 0, bot.Rows, n))
}

func (lu *LU) setErr(err error) {
	lu.errMu.Lock()
	if lu.err == nil {
		lu.err = err
	}
	lu.errMu.Unlock()
}

// Solve solves A*x = rhs for the factored square matrix, overwriting rhs.
// Incremental pivoting has no global row permutation, so the forward
// elimination is replayed operation by operation before the triangular
// back-substitution.
func (lu *LU) Solve(rhs *matrix.Dense) {
	panicIf(lu.A.Rows != lu.A.Cols, "tiled: Solve needs square matrix, got %dx%d", lu.A.Rows, lu.A.Cols)
	panicIf(rhs.Rows != lu.A.Rows, "tiled: Solve rhs rows %d want %d", rhs.Rows, lu.A.Rows)
	gr := lu.g
	for _, op := range lu.ops {
		r0, _, rows, cols := gr.tile(op.k, op.k)
		kk := min(rows, cols)
		switch op.kind {
		case opGETRF:
			bk := rhs.View(r0, 0, kk, rhs.Cols)
			lapack.LASWP(bk, op.ipiv, 0, kk)
			diag := lu.A.View(r0, r0, kk, kk)
			blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, diag, bk)
		case opTSTRF:
			ir0, _, irows, _ := gr.tile(op.i, op.k)
			applyTSTRF(op, rhs.View(r0, 0, kk, rhs.Cols), rhs.View(ir0, 0, irows, rhs.Cols))
		}
	}
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, lu.A, rhs)
}

func lbl(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
