package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// mergeChain builds a linear chain of n tasks that append their position to
// out, so execution order within the chain is checkable.
func mergeChain(id int, n int, out *[]int, counter *atomic.Int64) *Graph {
	g := NewGraph()
	var prev *Task
	for i := 0; i < n; i++ {
		i := i
		t := g.Add(&Task{
			Label: fmt.Sprintf("g%d-t%d", id, i),
			Run: func() {
				*out = append(*out, i)
				counter.Add(1)
			},
		})
		if prev != nil {
			g.AddDep(prev, t)
		}
		prev = t
	}
	return g
}

func TestMergeGraphsRenumbersAndValidates(t *testing.T) {
	var c atomic.Int64
	var o1, o2, o3 []int
	g1 := mergeChain(1, 3, &o1, &c)
	g2 := mergeChain(2, 4, &o2, &c)
	g3 := mergeChain(3, 1, &o3, &c)
	merged := MergeGraphs(g1, nil, g2, g3)
	if merged.Len() != 8 {
		t.Fatalf("merged Len = %d, want 8", merged.Len())
	}
	if merged.Edges() != 2+3 {
		t.Fatalf("merged Edges = %d, want 5", merged.Edges())
	}
	for i, task := range merged.Tasks() {
		if task.ID != i {
			t.Fatalf("task %d has ID %d after merge", i, task.ID)
		}
	}
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged graph invalid: %v", err)
	}
	// Ownership transferred: the parts are emptied.
	if g1.Len() != 0 || g2.Len() != 0 || g3.Len() != 0 {
		t.Fatalf("parts not emptied: %d %d %d", g1.Len(), g2.Len(), g3.Len())
	}
}

func TestMergeGraphsExecutesAllParts(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	var c atomic.Int64
	var o1, o2 []int
	merged := MergeGraphs(mergeChain(1, 5, &o1, &c), mergeChain(2, 7, &o2, &c))
	sub, err := pool.Submit(merged, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatalf("merged submission failed: %v", err)
	}
	if c.Load() != 12 {
		t.Fatalf("ran %d tasks, want 12", c.Load())
	}
	// Each chain must still run in its own dependency order.
	for which, o := range [][]int{o1, o2} {
		for i, v := range o {
			if v != i {
				t.Fatalf("chain %d ran out of order: %v", which+1, o)
			}
		}
	}
}

// TestMergeGraphsFailureScope documents the batching trade-off: a panicking
// task fails the whole merged submission (it is one submission), but the
// pool survives and per-part numeric state written before the failure is
// intact.
func TestMergeGraphsFailureScope(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	g1 := NewGraph()
	g1.Add(&Task{Label: "boom", Run: func() { panic(errors.New("injected")) }})
	var c atomic.Int64
	var o []int
	merged := MergeGraphs(g1, mergeChain(2, 3, &o, &c))
	sub, err := pool.Submit(merged, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err == nil {
		t.Fatal("merged submission with panicking part reported success")
	}
	// The pool stays usable for the next submission.
	var c2 atomic.Int64
	var o2 []int
	sub2, err := pool.Submit(mergeChain(3, 2, &o2, &c2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub2.Wait(); err != nil {
		t.Fatalf("pool unusable after merged failure: %v", err)
	}
	if c2.Load() != 2 {
		t.Fatalf("follow-up ran %d tasks, want 2", c2.Load())
	}
}
