// Package sched provides the dynamic task scheduling infrastructure the
// multithreaded CALU and CAQR algorithms run on: a task dependency graph,
// a priority-driven goroutine worker pool for real execution, and tracing
// hooks for the execution-trace experiments (paper Figs. 3-4).
//
// Tasks carry both a closure (for real execution) and a cost annotation
// (kernel class + flop count) so the exact same graph can alternatively be
// run through the deterministic virtual-time simulator in package simsched.
package sched

import "fmt"

// Kind labels a task with the role it plays in the factorization, matching
// the paper's naming: P (panel / tree node), L (panel column of L), U (pivot
// + block row of U), S (trailing-matrix update). Kinds drive trace coloring
// and the priority scheme.
type Kind uint8

// Task kinds.
const (
	KindP Kind = iota // panel factorization / reduction-tree node
	KindL             // block of the panel's L factor
	KindU             // permutation + block of the U row
	KindS             // trailing matrix update
	KindOther
)

// String returns the single-letter name used in traces.
func (k Kind) String() string {
	switch k {
	case KindP:
		return "P"
	case KindL:
		return "L"
	case KindU:
		return "U"
	case KindS:
		return "S"
	default:
		return "?"
	}
}

// Class categorizes the dominant kernel of a task for the machine cost
// model: BLAS-2-bound kernels run at memory-bound rates, BLAS-3 kernels at
// near-peak rates, and small tree-reduction kernels pay a per-task latency.
type Class uint8

// Kernel classes.
const (
	ClassBLAS2     Class = iota // dgetf2/dgeqr2-style, memory bound
	ClassBLAS3                  // dgemm/dtrsm/dlarfb-style, compute bound
	ClassRecursive              // rgetf2/dgeqr3-style recursive panel kernels
	ClassSmall                  // tiny tree-node ops, latency dominated
)

// Task is one schedulable unit of work.
type Task struct {
	// ID is assigned by the Graph and identifies the task in traces.
	ID int
	// Label is a human-readable description ("S k=2 I=1 J=3").
	Label string
	// Kind is the paper's P/L/U/S role.
	Kind Kind
	// Priority orders ready tasks; higher runs first. The look-ahead
	// technique from the paper is expressed entirely through priorities.
	Priority int
	// Run executes the task's numeric work. It may be nil for graphs that
	// are only simulated.
	Run func()
	// Flops is the canonical floating-point operation count of the task,
	// and Class its kernel class; together they give the task's virtual
	// duration under a machine model.
	Flops float64
	// Class is the kernel class used by the cost model.
	Class Class
	// Rows is the dominant operand height of a panel-class task (BLAS2 or
	// recursive). Machine models distinguish cache-resident short panels
	// from streaming tall ones by this hint; zero means unknown/tall.
	Rows int
	// Out, when set, returns the buffer the task writes its result into.
	// It is evaluated only after Run returns, by the pool's PostInterceptor
	// (fault injection targets it to model silent data corruption). The
	// returned slice must alias the live output — a contiguous region whose
	// every element belongs to the task's result — not a copy.
	Out func() []float64

	succs []int
	ndeps int
}

// NumDeps returns the task's dependency count (in-degree).
func (t *Task) NumDeps() int { return t.ndeps }

// Succs returns the IDs of the tasks depending on t. The slice is shared;
// do not mutate it.
func (t *Task) Succs() []int { return t.succs }

// Graph is a task dependency DAG under construction. It is not safe for
// concurrent mutation; build it single-threaded, then execute.
type Graph struct {
	tasks []*Task
	edges int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// Add inserts t into the graph, assigns its ID and returns it.
func (g *Graph) Add(t *Task) *Task {
	t.ID = len(g.tasks)
	g.tasks = append(g.tasks, t)
	return t
}

// AddDep records that post cannot start until pre has completed. Duplicate
// edges are allowed and counted once per call (the executor decrements one
// unit per recorded edge, so duplicates stay balanced).
func (g *Graph) AddDep(pre, post *Task) {
	if pre == nil || post == nil {
		panic("sched: nil task in AddDep")
	}
	if pre == post {
		panic(fmt.Sprintf("sched: self-dependency on task %d (%s)", pre.ID, pre.Label))
	}
	pre.succs = append(pre.succs, post.ID)
	post.ndeps++
	g.edges++
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Edges returns the number of dependency edges.
func (g *Graph) Edges() int { return g.edges }

// Tasks returns the task list in insertion order. The slice is shared; do
// not mutate it.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Task returns the task with the given ID.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// MergeGraphs combines independently built graphs into one
// submission-ready graph, so many small factorizations can ride a single
// Pool submission instead of one apiece — the service-level analogue of the
// paper's aggregation of small operations into fewer, larger ones. Workers
// drain one merged ready set, so a batch keeps them saturated where
// per-request submissions would leave them idling between tiny graphs.
//
// The parts stay fully independent inside the merged graph: no edges are
// added between them, so their tasks interleave freely under the scheduler.
// MergeGraphs takes ownership of the parts — their tasks are renumbered
// into the combined ID space and each input Graph is emptied. Per-part
// priorities are preserved unchanged, which keeps every part's internal
// look-ahead ordering intact while leaving cross-part ordering to the
// ready-set race.
func MergeGraphs(parts ...*Graph) *Graph {
	out := NewGraph()
	for _, g := range parts {
		if g == nil {
			continue
		}
		off := len(out.tasks)
		for _, t := range g.tasks {
			t.ID += off
			for i := range t.succs {
				t.succs[i] += off
			}
			out.tasks = append(out.tasks, t)
		}
		out.edges += g.edges
		g.tasks, g.edges = nil, 0
	}
	return out
}

// Validate checks the graph is acyclic and every dependency count matches
// the edge lists, returning an error describing the first problem found.
func (g *Graph) Validate() error {
	indeg := make([]int, len(g.tasks))
	for _, t := range g.tasks {
		for _, s := range t.succs {
			if s < 0 || s >= len(g.tasks) {
				return fmt.Errorf("sched: task %d has successor %d out of range", t.ID, s)
			}
			indeg[s]++
		}
	}
	queue := make([]int, 0, len(g.tasks))
	for i, t := range g.tasks {
		if indeg[i] != t.ndeps {
			return fmt.Errorf("sched: task %d dependency count %d != in-degree %d", i, t.ndeps, indeg[i])
		}
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range g.tasks[id].succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != len(g.tasks) {
		return fmt.Errorf("sched: graph has a cycle (%d of %d tasks reachable)", seen, len(g.tasks))
	}
	return nil
}

// CriticalPath returns the length of the longest path through the graph in
// virtual seconds under the given per-task duration function, along with the
// total work (sum of all durations). These are the span and work terms of
// the classic parallelism bound work/span.
func (g *Graph) CriticalPath(duration func(*Task) float64) (span, work float64) {
	finish := make([]float64, len(g.tasks))
	indeg := make([]int, len(g.tasks))
	for _, t := range g.tasks {
		for _, s := range t.succs {
			indeg[s]++
		}
	}
	queue := make([]int, 0, len(g.tasks))
	for i := range g.tasks {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		d := duration(g.tasks[id])
		work += d
		f := finish[id] + d
		finish[id] = f
		if f > span {
			span = f
		}
		for _, s := range g.tasks[id].succs {
			if f > finish[s] {
				finish[s] = f
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return span, work
}
