package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestGraphAddAssignsIDs(t *testing.T) {
	g := NewGraph()
	a := g.Add(&Task{Label: "a"})
	b := g.Add(&Task{Label: "b"})
	if a.ID != 0 || b.ID != 1 || g.Len() != 2 {
		t.Fatalf("ids %d %d len %d", a.ID, b.ID, g.Len())
	}
}

func TestAddDepSelfPanics(t *testing.T) {
	g := NewGraph()
	a := g.Add(&Task{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.AddDep(a, a)
}

func TestValidateDetectsCycle(t *testing.T) {
	g := NewGraph()
	a := g.Add(&Task{})
	b := g.Add(&Task{})
	c := g.Add(&Task{})
	g.AddDep(a, b)
	g.AddDep(b, c)
	g.AddDep(c, a)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidateOKChain(t *testing.T) {
	g := NewGraph()
	var prev *Task
	for i := 0; i < 10; i++ {
		cur := g.Add(&Task{})
		if prev != nil {
			g.AddDep(prev, cur)
		}
		prev = cur
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Edges() != 9 {
		t.Fatalf("edges = %d", g.Edges())
	}
}

func TestRunnerRespectsDependencies(t *testing.T) {
	// Build a diamond: a -> {b, c} -> d and verify observed order.
	for _, workers := range []int{1, 2, 4, 8} {
		g := NewGraph()
		var order []int
		var mu sync.Mutex
		rec := func(id int) func() {
			return func() {
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}
		}
		a := g.Add(&Task{Run: rec(0)})
		b := g.Add(&Task{Run: rec(1)})
		c := g.Add(&Task{Run: rec(2)})
		d := g.Add(&Task{Run: rec(3)})
		g.AddDep(a, b)
		g.AddDep(a, c)
		g.AddDep(b, d)
		g.AddDep(c, d)
		(&Runner{Workers: workers}).Run(g)
		if len(order) != 4 || order[0] != 0 || order[3] != 3 {
			t.Fatalf("workers=%d order=%v", workers, order)
		}
	}
}

func TestRunnerPriorityOrderSequential(t *testing.T) {
	// With one worker, independent tasks must run in priority order
	// (ties by insertion order).
	g := NewGraph()
	var order []int
	rec := func(id int) func() { return func() { order = append(order, id) } }
	g.Add(&Task{Run: rec(0), Priority: 1})
	g.Add(&Task{Run: rec(1), Priority: 5})
	g.Add(&Task{Run: rec(2), Priority: 5})
	g.Add(&Task{Run: rec(3), Priority: 9})
	(&Runner{Workers: 1}).Run(g)
	want := []int{3, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
}

func TestRunnerAllTasksRunOnce(t *testing.T) {
	const n = 500
	g := NewGraph()
	var count atomic.Int64
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tasks[i] = g.Add(&Task{Run: func() { count.Add(1) }})
	}
	// Random-ish layered dependencies.
	for i := 10; i < n; i++ {
		g.AddDep(tasks[i-10], tasks[i])
		if i%3 == 0 {
			g.AddDep(tasks[i-7], tasks[i])
		}
	}
	(&Runner{Workers: 4}).Run(g)
	if count.Load() != n {
		t.Fatalf("ran %d tasks, want %d", count.Load(), n)
	}
}

func TestRunnerTraceEvents(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 20; i++ {
		g.Add(&Task{Kind: KindS, Run: func() {}})
	}
	events := (&Runner{Workers: 3, Trace: true}).Run(g)
	if len(events) != 20 {
		t.Fatalf("got %d events", len(events))
	}
	seen := map[int]bool{}
	for _, e := range events {
		if e.Worker < 0 || e.Worker >= 3 {
			t.Fatalf("bad worker %d", e.Worker)
		}
		if e.End < e.Start {
			t.Fatalf("end before start: %+v", e)
		}
		if seen[e.TaskID] {
			t.Fatalf("task %d traced twice", e.TaskID)
		}
		seen[e.TaskID] = true
	}
}

func TestRunnerEmptyGraph(t *testing.T) {
	if ev := (&Runner{Workers: 2, Trace: true}).Run(NewGraph()); ev != nil {
		t.Fatalf("expected nil events, got %v", ev)
	}
}

func TestRunnerInvalidGraphPanics(t *testing.T) {
	g := NewGraph()
	a := g.Add(&Task{})
	b := g.Add(&Task{})
	g.AddDep(a, b)
	g.AddDep(b, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Runner{Workers: 1}).Run(g)
}

func TestCriticalPath(t *testing.T) {
	// Chain of 3 unit tasks plus one independent: span 3, work 4.
	g := NewGraph()
	a := g.Add(&Task{})
	b := g.Add(&Task{})
	c := g.Add(&Task{})
	g.Add(&Task{})
	g.AddDep(a, b)
	g.AddDep(b, c)
	span, work := g.CriticalPath(func(*Task) float64 { return 1 })
	if span != 3 || work != 4 {
		t.Fatalf("span=%v work=%v", span, work)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindP: "P", KindL: "L", KindU: "U", KindS: "S", KindOther: "?"} {
		if k.String() != want {
			t.Fatalf("Kind(%d) = %q", k, k.String())
		}
	}
}

// Property: for random layered DAGs, every topological constraint holds in
// the observed completion order.
func TestRunnerTopologicalProperty(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		w := int(workers)%6 + 1
		g := NewGraph()
		const n = 60
		tasks := make([]*Task, n)
		pos := make([]int64, n) // completion sequence numbers
		var ctr atomic.Int64
		for i := 0; i < n; i++ {
			i := i
			tasks[i] = g.Add(&Task{Run: func() { pos[i] = ctr.Add(1) }})
		}
		s := uint64(seed)
		edges := [][2]int{}
		for i := 1; i < n; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i))
			g.AddDep(tasks[j], tasks[i])
			edges = append(edges, [2]int{j, i})
		}
		(&Runner{Workers: w}).Run(g)
		for _, e := range edges {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerTaskPanicPropagates(t *testing.T) {
	g := NewGraph()
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		g.Add(&Task{Label: "w", Run: func() {
			if i == 7 {
				panic("numeric bug")
			}
			ran.Add(1)
		}})
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected the task panic to reach the caller")
		}
		if msg, ok := p.(error); !ok || msg == nil {
			t.Fatalf("panic payload %v (%T) not the wrapped error", p, p)
		}
	}()
	(&Runner{Workers: 4}).Run(g)
}

func TestRunnerPanicStopsRemainingWork(t *testing.T) {
	// With one worker and a first task that panics, no later task must run.
	g := NewGraph()
	var ran atomic.Int64
	g.Add(&Task{Priority: 10, Run: func() { panic("boom") }})
	for i := 0; i < 5; i++ {
		g.Add(&Task{Run: func() { ran.Add(1) }})
	}
	func() {
		defer func() { recover() }()
		(&Runner{Workers: 1}).Run(g)
	}()
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran after the panic", ran.Load())
	}
}

func TestStealingRunnerAllTasksOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 300
		g := NewGraph()
		var count atomic.Int64
		tasks := make([]*Task, n)
		for i := 0; i < n; i++ {
			tasks[i] = g.Add(&Task{Run: func() { count.Add(1) }})
		}
		for i := 7; i < n; i++ {
			g.AddDep(tasks[i-7], tasks[i])
		}
		count.Store(0)
		(&StealingRunner{Workers: workers}).Run(g)
		if count.Load() != n {
			t.Fatalf("workers=%d: ran %d of %d", workers, count.Load(), n)
		}
	}
}

func TestStealingRunnerTopologicalProperty(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		w := int(workers)%6 + 1
		g := NewGraph()
		const n = 60
		tasks := make([]*Task, n)
		pos := make([]int64, n)
		var ctr atomic.Int64
		for i := 0; i < n; i++ {
			i := i
			tasks[i] = g.Add(&Task{Run: func() { pos[i] = ctr.Add(1) }})
		}
		s := uint64(seed)
		edges := [][2]int{}
		for i := 1; i < n; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i))
			g.AddDep(tasks[j], tasks[i])
			edges = append(edges, [2]int{j, i})
		}
		(&StealingRunner{Workers: w, Seed: seed}).Run(g)
		for _, e := range edges {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStealingRunnerTrace(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 25; i++ {
		g.Add(&Task{Run: func() {}})
	}
	events := (&StealingRunner{Workers: 3, Trace: true}).Run(g)
	if len(events) != 25 {
		t.Fatalf("%d events", len(events))
	}
}

func TestStealingRunnerPanicPropagates(t *testing.T) {
	g := NewGraph()
	g.Add(&Task{Run: func() { panic("steal boom") }})
	for i := 0; i < 10; i++ {
		g.Add(&Task{Run: func() {}})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&StealingRunner{Workers: 3}).Run(g)
}

func TestStealingRunnerEmptyGraph(t *testing.T) {
	if ev := (&StealingRunner{Workers: 2, Trace: true}).Run(NewGraph()); ev != nil {
		t.Fatalf("events %v", ev)
	}
}
