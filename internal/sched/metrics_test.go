package sched

import (
	"sync"
	"testing"
	"time"
)

// buildChain returns a graph of n sequential tasks, each sleeping d.
func buildChain(n int, d time.Duration, kind Kind) *Graph {
	g := NewGraph()
	var prev *Task
	for i := 0; i < n; i++ {
		t := g.Add(&Task{
			Label: "t",
			Kind:  kind,
			Run:   func() { time.Sleep(d) },
		})
		if prev != nil {
			g.AddDep(prev, t)
		}
		prev = t
	}
	return g
}

func TestPoolMetricsBasics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	g := buildChain(6, time.Millisecond, KindS)
	s, err := p.Submit(g, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}

	m := p.Metrics()
	if m.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", m.Workers)
	}
	if m.Completed != 6 {
		t.Fatalf("Completed = %d, want 6", m.Completed)
	}
	if m.Submissions != 1 {
		t.Fatalf("Submissions = %d, want 1", m.Submissions)
	}
	var tasks int64
	for _, n := range m.WorkerTasks {
		tasks += n
	}
	if tasks != 6 {
		t.Fatalf("sum(WorkerTasks) = %d, want 6", tasks)
	}
	if busy := m.BusyTotal(); busy < 6*time.Millisecond {
		t.Fatalf("BusyTotal = %v, want >= 6ms (6 x 1ms sleeps)", busy)
	}
	if m.ReadyDepth != 0 {
		t.Fatalf("ReadyDepth = %d after drain, want 0", m.ReadyDepth)
	}
	if m.ReadyHighWater < 1 {
		t.Fatalf("ReadyHighWater = %d, want >= 1", m.ReadyHighWater)
	}
	if got := m.KindLatency[KindS].Count; got != 6 {
		t.Fatalf("KindLatency[S].Count = %d, want 6", got)
	}
	if got := m.KindLatency[KindP].Count; got != 0 {
		t.Fatalf("KindLatency[P].Count = %d, want 0", got)
	}
	if u := m.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %g, want in (0, 1]", u)
	}
}

// TestPoolMetricsStealing runs a wide graph under the Stealing policy and
// checks the steal accounting moves: with one worker's deque seeded and
// others empty, thieves must record attempts, and any cross-deque execution
// records successes.
func TestPoolMetricsStealing(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	g := NewGraph()
	for i := 0; i < 64; i++ {
		g.Add(&Task{Label: "w", Kind: KindP, Run: func() {
			time.Sleep(200 * time.Microsecond)
		}})
	}
	s, err := p.Submit(g, SubmitOptions{Policy: Stealing})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	if m.StealAttempts == 0 {
		t.Fatal("StealAttempts = 0 after a stealing run with empty deques")
	}
	if m.StealSuccesses > m.StealAttempts {
		t.Fatalf("StealSuccesses %d > StealAttempts %d", m.StealSuccesses, m.StealAttempts)
	}
	if m.KindLatency[KindP].Count != 64 {
		t.Fatalf("KindLatency[P].Count = %d, want 64", m.KindLatency[KindP].Count)
	}
}

// TestPoolMetricsConcurrentSnapshot gathers Metrics while submissions run;
// the race detector validates the locking discipline.
func TestPoolMetricsConcurrentSnapshot(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m := p.Metrics()
				if m.ReadyDepth < 0 {
					t.Error("negative ReadyDepth")
					return
				}
			}
		}
	}()
	for i := 0; i < 8; i++ {
		g := buildChain(4, 50*time.Microsecond, Kind(i%int(KindOther)))
		s, err := p.Submit(g, SubmitOptions{Policy: Policy(i % 2)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	m := p.Metrics()
	if m.Completed != 32 {
		t.Fatalf("Completed = %d, want 32", m.Completed)
	}
	if m.Submissions != 8 {
		t.Fatalf("Submissions = %d, want 8", m.Submissions)
	}
}

// TestSetInstrumentation checks the A/B hook: a pool built with
// instrumentation off records no busy time or kind latency but keeps the
// scheduler-level counters (which cost nothing extra), and the setting is
// captured at NewPool, not read live.
func TestSetInstrumentation(t *testing.T) {
	SetInstrumentation(false)
	p := NewPool(2)
	SetInstrumentation(true) // restore before any test pool is built

	g := buildChain(3, time.Millisecond, KindS)
	s, err := p.Submit(g, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	m := p.Metrics()
	p.Close()
	if m.BusyTotal() != 0 {
		t.Fatalf("BusyTotal = %v with instrumentation off, want 0", m.BusyTotal())
	}
	if m.KindLatency[KindS].Count != 0 {
		t.Fatalf("KindLatency[S].Count = %d with instrumentation off, want 0", m.KindLatency[KindS].Count)
	}
	if m.Completed != 3 {
		t.Fatalf("Completed = %d, want 3 (always on)", m.Completed)
	}
	if m.Submissions != 1 {
		t.Fatalf("Submissions = %d, want 1 (always on)", m.Submissions)
	}
}
