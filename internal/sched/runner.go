package sched

import (
	"fmt"
	"time"
)

// Event records one task execution for tracing (paper Figs. 3-4).
type Event struct {
	TaskID int
	Worker int
	Start  time.Duration // relative to the run start
	End    time.Duration
}

// taskHeap is a max-heap over task priority; ties break toward lower ID,
// which keeps execution order deterministic for equal priorities and favors
// earlier-created (earlier-iteration) tasks as the paper's look-ahead does.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Runner executes one task graph on a private, one-shot Pool with the
// centralized priority policy: whenever a worker is free it picks the
// highest-priority ready task, exactly as the paper's dynamic scheduler
// does. It is a compatibility shim kept for the ablations and simple
// callers; long-lived services should hold a Pool (or factor.Engine) and
// submit graphs to it directly.
type Runner struct {
	// Workers is the number of concurrent goroutines; it plays the role of
	// the number of cores. Must be >= 1.
	Workers int
	// Trace, when true, records an Event per task.
	Trace bool
}

// Run executes every task in g and returns the trace (nil unless Trace is
// set). It panics if the graph fails validation, since a malformed graph is
// a bug in the algorithm that built it.
//
// If a task's Run panics, the panic is captured, remaining work is drained
// without executing further tasks, and the captured error is re-raised as a
// panic on the caller's goroutine once the submission has drained — so a
// numeric bug surfaces as a normal panic at the Run call site rather than
// crashing an anonymous worker goroutine.
func (r *Runner) Run(g *Graph) []Event {
	return runOneShot(g, r.Workers, SubmitOptions{Trace: r.Trace})
}

// runOneShot executes g on a pool created and closed for this single
// submission, preserving the historical Runner contract: invalid graphs and
// task panics surface as panics at the call site.
func runOneShot(g *Graph, workers int, opt SubmitOptions) []Event {
	if workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", workers))
	}
	p := NewPool(workers)
	defer p.Close()
	sub, err := p.Submit(g, opt)
	if err != nil {
		panic(err)
	}
	events, err := sub.Wait()
	if err != nil {
		panic(err)
	}
	return events
}

// runTask executes one task, converting a panic into a returned error. A
// panic that already carries an error — the library packages' typed
// preconditions, e.g. panic(fmt.Errorf("%w: ...", blas.ErrShape, ...)) —
// is wrapped with %w so errors.Is/As keep matching the sentinel through
// Submission.Wait.
//
// When the pool carries an Interceptor it runs first, under the same
// recover barrier: an interceptor error fails the task without running it,
// and an interceptor panic is captured like a task panic. A PostInterceptor
// runs after Run returns, still under the barrier, and only for tasks that
// declare an output buffer — it sees the task's output before any successor
// is enqueued, which is what makes injected output corruption a
// deterministic dataflow event rather than a race.
func runTask(t *Task, ic Interceptor, post PostInterceptor, worker int) (captured error) {
	// calint:ignore hotpath-alloc -- the recover barrier is one closure per task, amortized by the task body it protects
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok {
				// calint:ignore hotpath-alloc -- cold path: runs only after a task panicked
				captured = fmt.Errorf("sched: task %d (%s) panicked: %w", t.ID, t.Label, err)
			} else {
				// calint:ignore hotpath-alloc -- cold path: runs only after a task panicked
				captured = fmt.Errorf("sched: task %d (%s) panicked: %v", t.ID, t.Label, p)
			}
		}
	}()
	if ic != nil {
		if err := ic(TaskInfo{Label: t.Label, Kind: t.Kind, Worker: worker}); err != nil {
			// calint:ignore hotpath-alloc -- cold path: runs only when the interceptor rejects the task
			return fmt.Errorf("sched: task %d (%s) failed: %w", t.ID, t.Label, err)
		}
	}
	t.Run()
	if post != nil && t.Out != nil {
		post(TaskInfo{Label: t.Label, Kind: t.Kind, Worker: worker, Output: t.Out})
	}
	return nil
}

// RunSequential executes the graph on the calling goroutine in priority
// order. Useful in tests to check graph-order independence of results.
func RunSequential(g *Graph) {
	r := Runner{Workers: 1}
	r.Run(g)
}
