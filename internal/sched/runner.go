package sched

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Event records one task execution for tracing (paper Figs. 3-4).
type Event struct {
	TaskID int
	Worker int
	Start  time.Duration // relative to the run start
	End    time.Duration
}

// taskHeap is a max-heap over task priority; ties break toward lower ID,
// which keeps execution order deterministic for equal priorities and favors
// earlier-created (earlier-iteration) tasks as the paper's look-ahead does.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Runner executes task graphs on a pool of goroutine workers with dynamic,
// priority-driven scheduling: whenever a worker is free it picks the
// highest-priority ready task, exactly as the paper's dynamic scheduler
// does.
type Runner struct {
	// Workers is the number of concurrent goroutines; it plays the role of
	// the number of cores. Must be >= 1.
	Workers int
	// Trace, when true, records an Event per task.
	Trace bool
}

// Run executes every task in g and returns the trace (nil unless Trace is
// set). It panics if the graph fails validation, since a malformed graph is
// a bug in the algorithm that built it.
//
// If a task's Run panics, the panic is captured, remaining work is drained
// without executing further tasks, and the panic is re-raised on the
// caller's goroutine once all workers have stopped — so a numeric bug
// surfaces as a normal panic at the Run call site rather than crashing an
// anonymous worker goroutine.
func (r *Runner) Run(g *Graph) []Event {
	if r.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", r.Workers))
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	n := g.Len()
	if n == 0 {
		return nil
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		ready   taskHeap
		deps    = make([]int, n)
		pending = n
		aborted any // first captured task panic
	)
	for i, t := range g.tasks {
		deps[i] = t.ndeps
		if t.ndeps == 0 {
			ready = append(ready, t)
		}
	}
	heap.Init(&ready)

	var events []Event
	if r.Trace {
		events = make([]Event, 0, n)
	}
	start := time.Now()

	var wg sync.WaitGroup
	wg.Add(r.Workers)
	for w := 0; w < r.Workers; w++ {
		go func(worker int) {
			defer wg.Done()
			mu.Lock()
			for {
				for len(ready) == 0 && pending > 0 {
					cond.Wait()
				}
				if pending == 0 {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				t := heap.Pop(&ready).(*Task)
				skip := aborted != nil
				mu.Unlock()

				t0 := time.Since(start)
				if t.Run != nil && !skip {
					if p := runTask(t); p != nil {
						mu.Lock()
						if aborted == nil {
							aborted = p
						}
						mu.Unlock()
					}
				}
				t1 := time.Since(start)

				mu.Lock()
				if r.Trace {
					events = append(events, Event{TaskID: t.ID, Worker: worker, Start: t0, End: t1})
				}
				pending--
				woke := false
				for _, s := range t.succs {
					deps[s]--
					if deps[s] == 0 {
						heap.Push(&ready, g.tasks[s])
						woke = true
					}
				}
				if woke || pending == 0 {
					cond.Broadcast()
				}
			}
		}(w)
	}
	wg.Wait()
	if aborted != nil {
		panic(aborted)
	}
	return events
}

// runTask executes one task, converting a panic into a returned value.
func runTask(t *Task) (captured any) {
	defer func() {
		if p := recover(); p != nil {
			captured = fmt.Errorf("sched: task %d (%s) panicked: %v", t.ID, t.Label, p)
		}
	}()
	t.Run()
	return nil
}

// RunSequential executes the graph on the calling goroutine in priority
// order. Useful in tests to check graph-order independence of results.
func RunSequential(g *Graph) {
	r := Runner{Workers: 1}
	r.Run(g)
}
