package sched

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateChain builds a chain of n tasks counting executions in ran. Task 0
// additionally closes started and then blocks on release, so tests can
// cancel the submission while it is provably mid-run.
func gateChain(n int, ran *atomic.Int32, started, release chan struct{}) *Graph {
	g := NewGraph()
	var prev *Task
	for i := 0; i < n; i++ {
		i := i
		t := g.Add(&Task{Label: "g", Run: func() {
			if i == 0 {
				close(started)
				<-release
			}
			ran.Add(1)
		}})
		if prev != nil {
			g.AddDep(prev, t)
		}
		prev = t
	}
	return g
}

// waitFailed blocks until the submission has been marked failed (the
// watcher has observed the context), so a test can deterministically order
// "cancel observed" before "running task finishes".
func waitFailed(t *testing.T, p *Pool, s *Submission) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		failed := s.failed != nil
		p.mu.Unlock()
		if failed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("submission never observed cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitCtxPreCancelledRejects(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	g := NewGraph()
	g.Add(&Task{Run: func() { ran.Add(1) }})
	if _, err := p.SubmitCtx(ctx, g, SubmitOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx with cancelled ctx = %v, want context.Canceled", err)
	} else if !errors.Is(err, ErrCancelled) {
		t.Fatalf("error %v does not wrap ErrCancelled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("task ran despite pre-cancelled context")
	}

	// The pool must be untouched: a normal submission still completes.
	sub, err := p.Submit(g, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Fatalf("follow-up submission ran %d tasks, want 1", ran.Load())
	}
}

func TestSubmitCtxCancelMidRunDrains(t *testing.T) {
	for _, pol := range []Policy{Priority, Stealing} {
		p := NewPool(2)
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		started := make(chan struct{})
		release := make(chan struct{})
		const n = 20
		sub, err := p.SubmitCtx(ctx, gateChain(n, &ran, started, release), SubmitOptions{Trace: true, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		<-started
		cancel()
		waitFailed(t, p, sub) // cancel observed while task 0 still runs
		close(release)

		events, werr := sub.Wait()
		if !errors.Is(werr, context.Canceled) || !errors.Is(werr, ErrCancelled) {
			t.Fatalf("policy %d: Wait = %v, want wrapped context.Canceled and ErrCancelled", pol, werr)
		}
		if got := ran.Load(); got != 1 {
			t.Fatalf("policy %d: %d tasks ran after mid-run cancel, want 1", pol, got)
		}
		// Drained tasks must leave no trace events: only task 0 executed.
		if len(events) != 1 {
			t.Fatalf("policy %d: %d trace events for 1 executed task", pol, len(events))
		}
		cancel()
		p.Close()
	}
}

func TestSubmitCtxDeadlineExpiry(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	var ran atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	sub, err := p.SubmitCtx(ctx, gateChain(10, &ran, started, release), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	waitFailed(t, p, sub) // the deadline fires while task 0 blocks
	close(release)
	if _, werr := sub.Wait(); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("Wait after deadline = %v, want context.DeadlineExceeded", werr)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d tasks ran past the deadline, want 1", got)
	}
}

// TestSubmitCtxCancelOneOfManyConcurrent is the -race stress test of the
// isolation guarantee: cancelling one submission must not perturb
// concurrent healthy submissions on the same pool, and the pool must stay
// reusable afterwards.
func TestSubmitCtxCancelOneOfManyConcurrent(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	const rounds = 6
	for round := 0; round < rounds; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var victimRan atomic.Int32
		started := make(chan struct{})
		release := make(chan struct{})
		victim, err := p.SubmitCtx(ctx, gateChain(50, &victimRan, started, release), SubmitOptions{Trace: true})
		if err != nil {
			t.Fatal(err)
		}

		const healthy, chain = 4, 40
		var wg sync.WaitGroup
		for s := 0; s < healthy; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				var mu sync.Mutex
				var order []int
				pol := Priority
				if s%2 == 1 {
					pol = Stealing
				}
				sub, err := p.Submit(chainGraph(chain, &mu, &order), SubmitOptions{Policy: pol})
				if err != nil {
					t.Errorf("healthy submit: %v", err)
					return
				}
				if _, err := sub.Wait(); err != nil {
					t.Errorf("healthy wait: %v", err)
					return
				}
				for i, v := range order {
					if v != i {
						t.Errorf("healthy chain order broken at %d", i)
						return
					}
				}
			}(s)
		}

		<-started
		cancel()
		waitFailed(t, p, victim)
		close(release)
		events, werr := victim.Wait()
		if !errors.Is(werr, context.Canceled) {
			t.Fatalf("round %d: victim Wait = %v, want context.Canceled", round, werr)
		}
		if got := victimRan.Load(); int(got) != len(events) {
			t.Fatalf("round %d: %d tasks ran but %d trace events", round, got, len(events))
		}
		wg.Wait()
		cancel()
	}
}

func TestPoolCloseWithTimeoutCancelsStragglers(t *testing.T) {
	p := NewPool(1)
	var ran atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	sub, err := p.Submit(gateChain(8, &ran, started, release), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Task 0 is parked on release, so the pool cannot drain in time.
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(release)
	}()
	if err := p.CloseWithTimeout(5 * time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseWithTimeout = %v, want context.DeadlineExceeded", err)
	}
	if _, werr := sub.Wait(); !errors.Is(werr, context.DeadlineExceeded) || !errors.Is(werr, ErrCancelled) {
		t.Fatalf("straggler Wait = %v, want wrapped DeadlineExceeded and ErrCancelled", werr)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d tasks ran after timed-out close, want 1", got)
	}
	if _, err := p.Submit(NewGraph(), SubmitOptions{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after CloseWithTimeout = %v, want ErrPoolClosed", err)
	}
}

func TestPoolCloseWithTimeoutCleanDrain(t *testing.T) {
	p := NewPool(2)
	var mu sync.Mutex
	var order []int
	sub, err := p.Submit(chainGraph(10, &mu, &order), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CloseWithTimeout(5 * time.Second); err != nil {
		t.Fatalf("clean CloseWithTimeout = %v, want nil", err)
	}
	if _, werr := sub.Wait(); werr != nil {
		t.Fatalf("drained submission failed: %v", werr)
	}
	if len(order) != 10 {
		t.Fatalf("drained submission ran %d of 10 tasks", len(order))
	}
}

// TestDrainedTasksLeaveNoTraceEvents is the regression test for the trace
// bug: tasks skipped while draining a failed submission used to record an
// Event, so traces claimed tasks ran that never did.
func TestDrainedTasksLeaveNoTraceEvents(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	// A chain where task 3 panics: tasks 0-3 execute, 4-9 are drained.
	g := NewGraph()
	var prev *Task
	for i := 0; i < 10; i++ {
		i := i
		t_ := g.Add(&Task{Label: "c", Run: func() {
			if i == 3 {
				panic("induced failure")
			}
		}})
		if prev != nil {
			g.AddDep(prev, t_)
		}
		prev = t_
	}
	sub, err := p.Submit(g, SubmitOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	events, werr := sub.Wait()
	if werr == nil {
		t.Fatal("panicking submission must report an error")
	}
	if len(events) != 4 {
		t.Fatalf("%d trace events, want 4 (tasks 0-3 only)", len(events))
	}
	for _, e := range events {
		if e.TaskID > 3 {
			t.Fatalf("trace claims drained task %d ran", e.TaskID)
		}
	}
}

// TestStealReleasesStolenSlot checks that the thief path does not pin
// stolen tasks: the FIFO re-slice keeps the deque's backing array alive, so
// the vacated slot must be nil'd for the task to become collectable.
func TestStealReleasesStolenSlot(t *testing.T) {
	t1 := &Task{ID: 1}
	t2 := &Task{ID: 2}
	backing := []*Task{t1, t2}
	s := &Submission{deques: [][]*Task{backing, nil}}
	p := &Pool{workers: 2, metrics: newPoolMetrics(2)}
	got := s.take(p, 1, rand.New(rand.NewSource(1))) // worker 1's deque is empty: steal from 0
	if got != t1 {
		t.Fatalf("thief stole task %v, want %v", got, t1)
	}
	if backing[0] != nil {
		t.Fatal("stolen slot still references the task; backing array pins it")
	}
	if len(s.deques[0]) != 1 || s.deques[0][0] != t2 {
		t.Fatalf("victim deque corrupted: %v", s.deques[0])
	}
}
