package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPoolClosed is returned by Pool.Submit after Close.
var ErrPoolClosed = errors.New("sched: pool is closed")

// ErrCancelled marks a submission abandoned before all of its tasks ran:
// its context was cancelled or expired, or the pool was shut down with
// CloseWithTimeout while the submission was still in flight. Errors
// returned by Submission.Wait on such paths wrap both ErrCancelled and the
// underlying context error, so callers can test either
// errors.Is(err, sched.ErrCancelled) or errors.Is(err, context.Canceled) /
// context.DeadlineExceeded.
var ErrCancelled = errors.New("sched: submission cancelled")

// Policy selects how a submission's ready tasks are ordered among the
// pool's workers.
type Policy uint8

// Scheduling policies. Priority is the paper's centralized scheduler: every
// free worker takes the highest-priority ready task, which realizes the
// look-ahead scheme. Stealing is the Cilk-style alternative: each worker
// keeps its own LIFO deque and steals FIFO from victims when empty, trading
// the global priority order for less contention.
const (
	Priority Policy = iota
	Stealing
)

// TaskInfo describes one task execution to an Interceptor: enough identity
// (label, kind, worker) for deterministic fault targeting, without exposing
// the task's closure or graph internals.
type TaskInfo struct {
	// Label is the task's human-readable identity ("S k=2 i=1 j=3").
	Label string
	// Kind is the paper's P/L/U/S role.
	Kind Kind
	// Worker is the index of the pool goroutine about to run the task.
	Worker int
	// Output exposes the task's declared output buffer (Task.Out), when the
	// task declares one. It is non-nil only for post-run hooks
	// (PostInterceptor); pre-run interceptors always see nil, since the
	// buffer's contents are not this task's yet.
	Output func() []float64
}

// Interceptor is a per-task hook invoked by the pool immediately before a
// task's Run. A non-nil return marks the task failed exactly as if its Run
// had returned that error; a panic inside the interceptor is captured by
// the same recover barrier as a task panic. Interceptors exist for fault
// injection in chaos tests (see internal/fault); production pools leave it
// unset and pay a single nil-check per task.
type Interceptor func(TaskInfo) error

// PostInterceptor is a per-task hook invoked immediately after a task's Run
// returns, under the same recover barrier, and only for tasks that declare
// an output buffer (Task.Out non-nil). It exists so fault injection can
// corrupt a task's freshly written output deterministically — successors
// have not been enqueued yet, so whatever the hook writes is exactly what
// the rest of the graph consumes. Production pools leave it unset.
type PostInterceptor func(TaskInfo)

// SubmitOptions configures one graph submission.
type SubmitOptions struct {
	// Trace records an Event per task, retrievable from Submission.Wait.
	Trace bool
	// Policy is the ready-task ordering for this submission.
	Policy Policy
	// Seed perturbs victim selection under the Stealing policy; 0 uses a
	// per-worker default. Victim choice is never fully deterministic on a
	// shared pool, since wall-clock interleaving decides which worker runs
	// which task.
	Seed int64
}

// Pool is a persistent executor: a fixed set of worker goroutines that
// lives for the process (or service) lifetime and accepts concurrent graph
// submissions. Each submission keeps its own ready set, priority space,
// trace and failure state, so several factorizations can interleave on the
// same cores; a panicking task fails only its own submission and leaves the
// pool usable.
//
// Runner and StealingRunner are thin one-shot shims over a private Pool;
// long-lived callers (factor.Engine) hold one Pool and amortize worker
// startup across many factorizations.
type Pool struct {
	workers int

	// completed counts every task accounted for (run or drained) since the
	// pool started. It only ever increases while the pool is live, so a
	// watchdog can detect a wedged scheduler by watching it stand still.
	completed atomic.Uint64

	// metrics is the pool's always-on instrumentation (see metrics.go);
	// its mu-suffixed counters are guarded by mu below.
	metrics *poolMetrics

	mu          sync.Mutex
	cond        *sync.Cond
	subs        []*Submission // submissions with unfinished tasks
	rr          int           // round-robin cursor over subs, for fairness
	closed      bool
	interceptor Interceptor     // per-task pre-run hook; nil in production
	postIc      PostInterceptor // per-task post-run hook; nil in production
	wg          sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines
// (workers >= 1). Call Close to stop them.
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("sched: pool with %d workers", workers))
	}
	p := &Pool{workers: workers, metrics: newPoolMetrics(workers)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		p.spawn(func() { p.worker(w) })
	}
	return p
}

// spawn starts fn on its own goroutine behind a recover barrier. runTask
// already confines task panics to their submission; this barrier is the
// last resort for a panic in the scheduler machinery itself (worker loop,
// drain signalling, ctx watchers). Instead of killing the process — and
// every concurrent submission with it — such a panic fails all in-flight
// submissions with a typed error and releases their waiters, so callers
// observe an error rather than a crash or a deadlocked Wait.
func (p *Pool) spawn(fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.failAll(fmt.Errorf("sched: internal panic: %v", r))
			}
		}()
		fn()
	}()
}

// failAll marks every in-flight submission failed and releases its
// waiters. It is the pool's poison state: after a scheduler panic the
// task accounting cannot be trusted, so the submissions are terminated
// rather than drained.
func (p *Pool) failAll(err error) {
	p.mu.Lock()
	subs := p.subs
	p.subs = nil
	for _, s := range subs {
		if s.failed == nil {
			s.failed = err
		}
		closeDoneLocked(s)
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// closeDoneLocked closes s.done exactly once; failAll may already have
// released the submission's waiters. Caller holds pool.mu, which
// serializes every close of s.done.
func closeDoneLocked(s *Submission) {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// SetInterceptor installs (or, with nil, removes) the pool's per-task hook.
// The hook applies to tasks dispatched after the call; tasks already
// executing keep the hook they started with. Safe to call concurrently
// with Submit.
func (p *Pool) SetInterceptor(fn Interceptor) {
	p.mu.Lock()
	p.interceptor = fn
	p.mu.Unlock()
}

// SetPostInterceptor installs (or, with nil, removes) the pool's post-run
// hook, with the same dispatch semantics as SetInterceptor.
func (p *Pool) SetPostInterceptor(fn PostInterceptor) {
	p.mu.Lock()
	p.postIc = fn
	p.mu.Unlock()
}

// CompletedTasks returns the number of tasks the pool has accounted for
// (executed or drained) since it started. The counter is monotonic while
// the pool is live; a caller that sees it unchanged across a long window
// with submissions in flight is looking at a stalled scheduler.
func (p *Pool) CompletedTasks() uint64 { return p.completed.Load() }

// Close stops accepting submissions, waits for in-flight submissions to
// drain, and joins the workers. It is idempotent and safe to call
// concurrently with Submit (submissions racing with Close either run to
// completion or fail with ErrPoolClosed).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// CloseWithTimeout closes the pool like Close but bounds the wait: if the
// in-flight submissions have not drained within d, every remaining
// submission is cancelled — its unstarted tasks are skipped and its Wait
// returns an error wrapping ErrCancelled and context.DeadlineExceeded — and
// the workers are joined as soon as the tasks already executing finish (a
// running task is never interrupted mid-kernel). It returns nil on a clean
// drain and an error wrapping context.DeadlineExceeded when it had to
// cancel. Like Close it is idempotent and safe to call concurrently with
// Submit.
func (p *Pool) CloseWithTimeout(d time.Duration) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()

	drained := make(chan struct{})
	p.spawn(func() { p.wg.Wait(); close(drained) })
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-drained:
		return nil
	case <-timer.C:
	}
	p.mu.Lock()
	for _, s := range p.subs {
		if s.failed == nil {
			s.failed = fmt.Errorf("%w: pool close timed out: %w", ErrCancelled, context.DeadlineExceeded)
		}
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	return fmt.Errorf("sched: pool close timed out after %v: %w", d, context.DeadlineExceeded)
}

// Submission is one graph handed to a Pool: its own ready set, trace and
// failure state. Wait blocks until every task has been accounted for.
type Submission struct {
	pool  *Pool
	g     *Graph
	opt   SubmitOptions
	start time.Time
	done  chan struct{}

	// The fields below are guarded by pool.mu until done is closed.
	ready   taskHeap  // Priority policy
	deques  [][]*Task // Stealing policy: per-worker deque (LIFO own, FIFO steal)
	deps    []int
	pending int
	failed  error
	events  []Event
}

// Submit validates g and enqueues it for execution. It returns immediately;
// use Wait for completion. An empty graph completes at once.
func (p *Pool) Submit(g *Graph, opt SubmitOptions) (*Submission, error) {
	return p.SubmitCtx(context.Background(), g, opt) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// SubmitCtx is Submit bound to a context. Cancellation is observed between
// tasks: once ctx is cancelled or its deadline expires, the submission stops
// dispatching, its remaining tasks are drained without running (and without
// leaving trace events), and Wait returns an error wrapping ErrCancelled
// and ctx's error. A task already executing when the context fires is never
// interrupted. Cancelling one submission does not disturb the pool or any
// concurrent submission.
//
// An already-cancelled ctx rejects the submission outright: no task runs
// and the wrapped context error is returned here rather than from Wait.
func (p *Pool) SubmitCtx(ctx context.Context, g *Graph, opt SubmitOptions) (*Submission, error) {
	if ctx == nil {
		ctx = context.Background() // calint:ignore ctx-propagation -- nil ctx normalized at the API boundary
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w before start: %w", ErrCancelled, err)
	}
	n := g.Len()
	s := &Submission{pool: p, g: g, opt: opt, start: time.Now(), done: make(chan struct{})}
	if opt.Trace && n > 0 {
		s.events = make([]Event, 0, n)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n == 0 {
		close(s.done)
		p.mu.Unlock()
		return s, nil
	}
	s.pending = n
	s.deps = make([]int, n)
	var initial taskHeap
	for i, t := range g.tasks {
		s.deps[i] = t.ndeps
		if t.ndeps == 0 {
			initial = append(initial, t)
		}
	}
	nready := initial.Len()
	heap.Init(&initial)
	if opt.Policy == Stealing {
		// Seed the deques with the initial ready set in priority order,
		// round-robin across workers, so high-priority panels start first
		// even though stealing gives no global ordering afterwards.
		s.deques = make([][]*Task, p.workers)
		at := 0
		for initial.Len() > 0 {
			t := heap.Pop(&initial).(*Task)
			s.deques[at%p.workers] = append(s.deques[at%p.workers], t)
			at++
		}
	} else {
		s.ready = initial
	}
	p.metrics.submissions++
	p.metrics.readyDelta(int64(nready))
	p.subs = append(p.subs, s)
	p.mu.Unlock()
	p.cond.Broadcast()
	if ctx.Done() != nil {
		// Watcher: marks the submission failed the moment the context fires,
		// so workers skip (drain) everything not yet started. It exits as
		// soon as the submission completes.
		p.spawn(func() {
			select {
			case <-ctx.Done():
				s.cancel(fmt.Errorf("%w: %w", ErrCancelled, ctx.Err()))
			case <-s.done:
			}
		})
	}
	return s, nil
}

// cancel marks the submission failed so that workers drain its remaining
// tasks without running them. After completion it is a no-op; tasks already
// executing finish normally.
func (s *Submission) cancel(err error) {
	p := s.pool
	p.mu.Lock()
	select {
	case <-s.done:
		p.mu.Unlock()
		return
	default:
	}
	if s.failed == nil {
		s.failed = err
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Wait blocks until the submission has finished and returns its trace (nil
// unless SubmitOptions.Trace) and the first task failure, if any. A task
// panic is captured as an error; the remaining tasks of the submission are
// drained without running, and the pool stays usable for other submissions.
// Cancellation (SubmitCtx) surfaces the same way: the error wraps
// ErrCancelled and the context's error. Drained tasks never appear in the
// trace — an Event means the task actually executed.
func (s *Submission) Wait() ([]Event, error) {
	<-s.done
	return s.events, s.failed
}

// Done returns a channel closed when the submission has finished.
func (s *Submission) Done() <-chan struct{} { return s.done }

// take pops one ready task for the given worker, or nil. Caller holds
// pool.mu (which also guards the steal/depth counters updated here).
func (s *Submission) take(p *Pool, worker int, rng *rand.Rand) *Task {
	workers := p.workers
	if s.deques != nil {
		if own := s.deques[worker]; len(own) > 0 {
			t := own[len(own)-1] // LIFO: depth first, cache friendly
			s.deques[worker] = own[:len(own)-1]
			p.metrics.readyDelta(-1)
			return t
		}
		p.metrics.stealAttempts++
		at := worker
		if workers > 1 {
			at = int((int64(rng.Intn(workers)) + s.opt.Seed) % int64(workers))
			if at < 0 {
				at += workers
			}
		}
		for i := 0; i < workers; i++ {
			v := (at + i) % workers
			if v == worker {
				continue
			}
			if q := s.deques[v]; len(q) > 0 {
				t := q[0] // FIFO for thieves
				// The re-slice below keeps the backing array alive for the
				// submission's lifetime; nil the stolen slot so the task
				// does not stay reachable through it.
				q[0] = nil
				s.deques[v] = q[1:]
				p.metrics.stealSuccesses++
				p.metrics.readyDelta(-1)
				return t
			}
		}
		return nil
	}
	if len(s.ready) == 0 {
		return nil
	}
	p.metrics.readyDelta(-1)
	return heap.Pop(&s.ready).(*Task)
}

// push makes a newly ready task available. Caller holds pool.mu.
func (s *Submission) push(p *Pool, t *Task, worker int) {
	p.metrics.readyDelta(1)
	if s.deques != nil {
		s.deques[worker] = append(s.deques[worker], t)
		return
	}
	heap.Push(&s.ready, t)
}

// takeLocked scans the active submissions round-robin for a ready task.
// Caller holds pool.mu.
func (p *Pool) takeLocked(worker int, rng *rand.Rand) (*Submission, *Task) {
	n := len(p.subs)
	for i := 0; i < n; i++ {
		s := p.subs[(p.rr+i)%n]
		if t := s.take(p, worker, rng); t != nil {
			p.rr = (p.rr + i + 1) % n
			return s, t
		}
	}
	return nil, nil
}

// removeLocked drops a finished submission. Caller holds pool.mu.
func (p *Pool) removeLocked(s *Submission) {
	for i, cur := range p.subs {
		if cur == s {
			p.subs = append(p.subs[:i], p.subs[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			return
		}
	}
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(id)*2654435761 + 1))
	p.mu.Lock()
	for {
		s, t := p.takeLocked(id, rng)
		if t == nil {
			if p.closed && len(p.subs) == 0 {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		skip := s.failed != nil
		ic := p.interceptor
		post := p.postIc
		p.mu.Unlock()

		t0 := time.Since(s.start)
		ran := t.Run != nil && !skip
		var failure error
		if ran {
			failure = runTask(t, ic, post, id)
		}
		t1 := time.Since(s.start)
		p.completed.Add(1)
		if ran {
			p.metrics.taskDone(id, t.Kind, t1-t0)
		}

		p.mu.Lock()
		// Tasks skipped while draining a failed or cancelled submission never
		// ran; recording a span for them would make the trace lie.
		if s.opt.Trace && !skip {
			s.events = append(s.events, Event{TaskID: t.ID, Worker: id, Start: t0, End: t1})
		}
		if failure != nil && s.failed == nil {
			s.failed = failure
		}
		woke := false
		for _, succ := range t.succs {
			s.deps[succ]--
			if s.deps[succ] == 0 {
				s.push(p, s.g.tasks[succ], id)
				woke = true
			}
		}
		s.pending--
		if s.pending == 0 {
			p.removeLocked(s)
			closeDoneLocked(s)
			woke = true
		}
		if woke {
			p.cond.Broadcast()
		}
	}
}
