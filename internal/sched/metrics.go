package sched

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metrics.go is the pool's always-on instrumentation: per-worker busy time
// and task counts (lock-free atomics on the worker hot path), steal and
// queue-depth accounting (plain fields guarded by pool.mu, updated where
// the scheduler already holds it), and per-Kind task-latency histograms.
// The paper argues CALU/CAQR from where worker time goes (Figs. 3-4);
// Pool.Metrics is the numeric form of that argument, cheap enough to leave
// enabled under production traffic.

// instrumentationEnabled is the package-level default captured by NewPool.
// It exists for overhead A/B measurement (cabench -obs-overhead builds
// pools with it off) — production code never touches it.
var instrumentationEnabled atomic.Bool

func init() { instrumentationEnabled.Store(true) }

// SetInstrumentation sets whether pools created *after* the call record
// per-task metrics (busy time, kind latency). Existing pools keep the
// setting they were built with. Metrics() stays safe either way; with
// instrumentation off it reports zero busy time and empty histograms.
func SetInstrumentation(on bool) { instrumentationEnabled.Store(on) }

// numKinds sizes the per-Kind histogram array (KindP..KindOther).
const numKinds = int(KindOther) + 1

// poolMetrics holds the pool's instrumentation state. Hot-path fields are
// atomics; the mu-suffixed block is guarded by pool.mu.
type poolMetrics struct {
	enabled bool
	started time.Time

	busy  []atomic.Int64 // per-worker nanoseconds spent inside runTask
	tasks []atomic.Int64 // per-worker tasks executed (skipped drains excluded)

	kindLatency [numKinds]*obs.Histogram // per-Kind task wall time, seconds

	// Guarded by pool.mu (updated where the scheduler already holds it).
	stealAttempts  int64 // empty own deque → scanned victims
	stealSuccesses int64 // scan yielded a task
	readyCount     int64 // tasks currently ready across submissions
	readyHighWater int64 // max readyCount since pool start
	submissions    int64 // graphs accepted since pool start
}

func newPoolMetrics(workers int) *poolMetrics {
	m := &poolMetrics{
		enabled: instrumentationEnabled.Load(),
		started: time.Now(),
		busy:    make([]atomic.Int64, workers),
		tasks:   make([]atomic.Int64, workers),
	}
	for k := range m.kindLatency {
		m.kindLatency[k] = obs.NewHistogram(nil)
	}
	return m
}

// taskDone records one executed task. Called off-lock from the worker loop.
func (m *poolMetrics) taskDone(worker int, kind Kind, d time.Duration) {
	if !m.enabled {
		return
	}
	m.busy[worker].Add(int64(d))
	m.tasks[worker].Add(1)
	if int(kind) >= numKinds {
		kind = KindOther
	}
	m.kindLatency[kind].Observe(d.Seconds())
}

// readyDelta moves the ready-task depth and maintains its high-water mark.
// Caller holds pool.mu.
func (m *poolMetrics) readyDelta(n int64) {
	m.readyCount += n
	if m.readyCount > m.readyHighWater {
		m.readyHighWater = m.readyCount
	}
}

// PoolMetrics is a point-in-time snapshot of a pool's instrumentation,
// taken under the pool mutex so the mu-guarded fields are mutually
// consistent (the atomics are each exact; a task finishing mid-snapshot
// may appear in Completed before its busy time lands — skew bounded by
// the in-flight tasks).
type PoolMetrics struct {
	// Workers is the pool size; Uptime the time since NewPool.
	Workers int
	Uptime  time.Duration
	// Completed counts tasks accounted for (executed or drained) pool-wide;
	// Submissions counts graphs accepted.
	Completed   uint64
	Submissions int64
	// WorkerBusy[w] is the time worker w spent executing tasks;
	// WorkerTasks[w] the number it executed (drained tasks excluded).
	// Idle time for w is Uptime - WorkerBusy[w].
	WorkerBusy  []time.Duration
	WorkerTasks []int64
	// StealAttempts counts deque scans by workers whose own deque was empty
	// (Stealing policy only); StealSuccesses the scans that found a task.
	StealAttempts  int64
	StealSuccesses int64
	// ReadyDepth is the current number of ready tasks across submissions;
	// ReadyHighWater its maximum since pool start.
	ReadyDepth     int64
	ReadyHighWater int64
	// KindLatency[k] is the task wall-time distribution (seconds) for
	// Kind(k), indexed KindP..KindOther. Empty when instrumentation was off
	// at NewPool.
	KindLatency [numKinds]obs.HistogramSnapshot
}

// BusyTotal sums busy time across workers.
func (pm *PoolMetrics) BusyTotal() time.Duration {
	var t time.Duration
	for _, b := range pm.WorkerBusy {
		t += b
	}
	return t
}

// Utilization is the busy fraction of total worker-time since pool start
// (1.0 = every worker always executing).
func (pm *PoolMetrics) Utilization() float64 {
	if pm.Uptime <= 0 || pm.Workers == 0 {
		return 0
	}
	return float64(pm.BusyTotal()) / (float64(pm.Uptime) * float64(pm.Workers))
}

// Metrics snapshots the pool's instrumentation. The mu-guarded counters are
// read under the pool mutex; per-worker atomics and histograms are read
// per-metric exact.
func (p *Pool) Metrics() PoolMetrics {
	m := p.metrics
	pm := PoolMetrics{
		Workers:     p.workers,
		Uptime:      time.Since(m.started),
		Completed:   p.completed.Load(),
		WorkerBusy:  make([]time.Duration, p.workers),
		WorkerTasks: make([]int64, p.workers),
	}
	p.mu.Lock()
	pm.Submissions = m.submissions
	pm.StealAttempts = m.stealAttempts
	pm.StealSuccesses = m.stealSuccesses
	pm.ReadyDepth = m.readyCount
	pm.ReadyHighWater = m.readyHighWater
	p.mu.Unlock()
	for w := 0; w < p.workers; w++ {
		pm.WorkerBusy[w] = time.Duration(m.busy[w].Load())
		pm.WorkerTasks[w] = m.tasks[w].Load()
	}
	for k := range m.kindLatency {
		pm.KindLatency[k] = m.kindLatency[k].Snapshot()
	}
	return pm
}
