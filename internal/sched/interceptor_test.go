package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// icChain builds a linear graph of n tasks, each incrementing ran.
func icChain(n int, ran *atomic.Int64) *Graph {
	g := NewGraph()
	var prev *Task
	for i := 0; i < n; i++ {
		t := g.Add(&Task{Label: fmt.Sprintf("t%d", i), Run: func() { ran.Add(1) }})
		if prev != nil {
			g.AddDep(prev, t)
		}
		prev = t
	}
	return g
}

// TestInterceptorErrorFailsSubmission checks that an interceptor error
// fails the task (and so the submission) with the error preserved for
// errors.Is, without running the task's closure, and that the pool stays
// usable once the interceptor is removed.
func TestInterceptorErrorFailsSubmission(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	sentinel := errors.New("injected")
	var hit atomic.Int64
	p.SetInterceptor(func(info TaskInfo) error {
		if info.Label == "t1" && hit.Add(1) == 1 {
			return sentinel
		}
		return nil
	})
	var ran atomic.Int64
	sub, err := p.Submit(icChain(3, &ran), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait = %v, want wrapped sentinel", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d tasks, want 1 (t0 only: t1 failed, t2 drained)", got)
	}
	p.SetInterceptor(nil)
	ran.Store(0)
	sub, err = p.Submit(icChain(3, &ran), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatalf("clean submission after interceptor removal: %v", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d tasks, want 3", got)
	}
}

// TestInterceptorPanicCaptured checks the recover barrier: an interceptor
// panic fails only its submission, like a task panic would.
func TestInterceptorPanicCaptured(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	sentinel := errors.New("boom")
	p.SetInterceptor(func(info TaskInfo) error {
		if info.Label == "t0" {
			panic(fmt.Errorf("%w: chaos", sentinel))
		}
		return nil
	})
	var ran atomic.Int64
	sub, err := p.Submit(icChain(2, &ran), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait = %v, want wrapped panic error", err)
	}
	p.SetInterceptor(nil)
	sub, err = p.Submit(icChain(2, &ran), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatalf("pool poisoned after interceptor panic: %v", err)
	}
}

// TestCompletedTasksCounts checks the progress counter covers both
// executed and drained tasks, so a stalled-graph watchdog can rely on it
// reaching the submission's task count.
func TestCompletedTasksCounts(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	before := p.CompletedTasks()
	var ran atomic.Int64
	sub, err := p.Submit(icChain(4, &ran), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := p.CompletedTasks() - before; got != 4 {
		t.Fatalf("CompletedTasks advanced by %d, want 4", got)
	}
	// A failing submission still accounts for every task (drained included).
	p.SetInterceptor(func(info TaskInfo) error { return errors.New("fail all") })
	defer p.SetInterceptor(nil)
	before = p.CompletedTasks()
	sub, err = p.Submit(icChain(4, &ran), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err == nil {
		t.Fatal("expected failure")
	}
	if got := p.CompletedTasks() - before; got != 4 {
		t.Fatalf("CompletedTasks advanced by %d after failed submission, want 4", got)
	}
}
