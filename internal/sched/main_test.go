package sched

import (
	"os"
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — a pool left
// open, a ctx watcher never released. The executor's whole point is
// bounded lifecycle (Close joins the workers); a leak here is a bug, not
// noise.
func TestMain(m *testing.M) {
	os.Exit(testutil.LeakCheckMain(m))
}
