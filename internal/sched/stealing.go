package sched

// StealingRunner executes one task graph on a private, one-shot Pool with
// the Cilk-style work-stealing policy: each worker owns a deque, pops its
// own work LIFO (depth-first, cache friendly) and steals FIFO from victims
// when empty. It is the alternative to the paper's centralized priority
// scheduler (Runner): stealing scales better with worker count but cannot
// enforce the global look-ahead priority order, which is exactly the
// trade-off the scheduling ablation probes.
type StealingRunner struct {
	// Workers is the number of concurrent goroutines; must be >= 1.
	Workers int
	// Trace records an Event per task.
	Trace bool
	// Seed perturbs victim selection; execution order is not deterministic
	// either way (real goroutine interleaving decides who steals what).
	Seed int64
}

// Run executes every task of g and returns the trace (nil unless Trace).
// Panics from tasks propagate to the caller, like Runner.Run.
func (r *StealingRunner) Run(g *Graph) []Event {
	return runOneShot(g, r.Workers, SubmitOptions{Trace: r.Trace, Policy: Stealing, Seed: r.Seed})
}
