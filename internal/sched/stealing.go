package sched

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StealingRunner executes task graphs with Cilk-style work stealing: each
// worker owns a deque, pops its own work LIFO (depth-first, cache friendly)
// and steals FIFO from random victims when empty. It is the alternative to
// the paper's centralized priority scheduler (Runner): stealing scales
// better with worker count but cannot enforce the global look-ahead
// priority order, which is exactly the trade-off the scheduling ablation
// probes.
type StealingRunner struct {
	// Workers is the number of concurrent goroutines; must be >= 1.
	Workers int
	// Trace records an Event per task.
	Trace bool
	// Seed makes victim selection deterministic for tests; 0 uses 1.
	Seed int64
}

// deque is a mutex-guarded double-ended queue of tasks. A lock-free deque
// would be faster, but the factorization tasks are large enough (BLAS-3
// kernels) that queue overhead is negligible; clarity wins.
type deque struct {
	mu    sync.Mutex
	items []*Task
}

func (d *deque) pushBottom(t *Task) {
	d.mu.Lock()
	d.items = append(d.items, t)
	d.mu.Unlock()
}

// popBottom removes the newest task (LIFO for the owner).
func (d *deque) popBottom() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil
	}
	t := d.items[n-1]
	d.items = d.items[:n-1]
	return t
}

// stealTop removes the oldest task (FIFO for thieves).
func (d *deque) stealTop() *Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return nil
	}
	t := d.items[0]
	d.items = d.items[1:]
	return t
}

// Run executes every task of g and returns the trace (nil unless Trace).
// Panics from tasks propagate to the caller, like Runner.Run.
func (r *StealingRunner) Run(g *Graph) []Event {
	if r.Workers < 1 {
		panic(fmt.Sprintf("sched: %d workers", r.Workers))
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	n := g.Len()
	if n == 0 {
		return nil
	}

	deps := make([]atomic.Int32, n)
	var initial taskHeap
	for _, t := range g.tasks {
		deps[t.ID].Store(int32(t.ndeps))
		if t.ndeps == 0 {
			initial = append(initial, t)
		}
	}
	// Seed the deques with the initial ready set in priority order,
	// round-robin across workers, so high-priority panels start first even
	// though stealing gives no global ordering afterwards.
	heap.Init(&initial)
	deques := make([]*deque, r.Workers)
	for i := range deques {
		deques[i] = &deque{}
	}
	at := 0
	for initial.Len() > 0 {
		t := heap.Pop(&initial).(*Task)
		deques[at%r.Workers].pushBottom(t)
		at++
	}

	var (
		pending  atomic.Int64
		panicked atomic.Value
		eventsMu sync.Mutex
		events   []Event
	)
	pending.Store(int64(n))
	if r.Trace {
		events = make([]Event, 0, n)
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	start := time.Now()

	var wg sync.WaitGroup
	wg.Add(r.Workers)
	for w := 0; w < r.Workers; w++ {
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(worker)))
			own := deques[worker]
			for pending.Load() > 0 {
				t := own.popBottom()
				if t == nil {
					// Steal from a random victim.
					victim := rng.Intn(r.Workers)
					if victim != worker {
						t = deques[victim].stealTop()
					}
				}
				if t == nil {
					runtime.Gosched()
					continue
				}
				t0 := time.Since(start)
				if t.Run != nil && panicked.Load() == nil {
					if p := runTask(t); p != nil {
						panicked.CompareAndSwap(nil, p)
					}
				}
				t1 := time.Since(start)
				if r.Trace {
					eventsMu.Lock()
					events = append(events, Event{TaskID: t.ID, Worker: worker, Start: t0, End: t1})
					eventsMu.Unlock()
				}
				for _, s := range t.succs {
					if deps[s].Add(-1) == 0 {
						own.pushBottom(g.tasks[s])
					}
				}
				pending.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	return events
}
