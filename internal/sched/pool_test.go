package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// chainGraph builds a linear chain of n tasks, each appending its index to
// out under mu, so execution order within the submission is checkable.
func chainGraph(n int, mu *sync.Mutex, out *[]int) *Graph {
	g := NewGraph()
	var prev *Task
	for i := 0; i < n; i++ {
		i := i
		t := g.Add(&Task{Label: "t", Run: func() {
			mu.Lock()
			*out = append(*out, i)
			mu.Unlock()
		}})
		if prev != nil {
			g.AddDep(prev, t)
		}
		prev = t
	}
	return g
}

func TestPoolConcurrentSubmissions(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	const subs, chain = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var mu sync.Mutex
			var order []int
			pol := Priority
			if s%2 == 1 {
				pol = Stealing
			}
			sub, err := p.Submit(chainGraph(chain, &mu, &order), SubmitOptions{Policy: pol})
			if err != nil {
				t.Errorf("submit %d: %v", s, err)
				return
			}
			if _, err := sub.Wait(); err != nil {
				t.Errorf("wait %d: %v", s, err)
				return
			}
			if len(order) != chain {
				t.Errorf("submission %d ran %d of %d tasks", s, len(order), chain)
				return
			}
			for i, v := range order {
				if v != i {
					t.Errorf("submission %d: chain order broken at %d: %v", s, i, v)
					return
				}
			}
		}(s)
	}
	wg.Wait()
}

func TestPoolPanicFailsOnlyItsSubmission(t *testing.T) {
	p := NewPool(3)
	defer p.Close()

	// A graph whose middle task panics; its successor must not run.
	var after atomic.Int32
	bad := NewGraph()
	t1 := bad.Add(&Task{Label: "ok", Run: func() {}})
	t2 := bad.Add(&Task{Label: "boom", Run: func() { panic("numerical bug") }})
	t3 := bad.Add(&Task{Label: "after", Run: func() { after.Add(1) }})
	bad.AddDep(t1, t2)
	bad.AddDep(t2, t3)

	var mu sync.Mutex
	var order []int
	good := chainGraph(30, &mu, &order)

	badSub, err := p.Submit(bad, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	goodSub, err := p.Submit(good, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badSub.Wait(); err == nil {
		t.Fatal("panicking submission must report an error")
	}
	if after.Load() != 0 {
		t.Fatal("successor of a panicked task ran")
	}
	if _, err := goodSub.Wait(); err != nil {
		t.Fatalf("healthy submission failed: %v", err)
	}
	if len(order) != 30 {
		t.Fatalf("healthy submission ran %d of 30 tasks", len(order))
	}

	// The pool must remain usable after the failure.
	var mu2 sync.Mutex
	var order2 []int
	sub, err := p.Submit(chainGraph(5, &mu2, &order2), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatalf("pool unusable after failure: %v", err)
	}
	if len(order2) != 5 {
		t.Fatalf("post-failure submission ran %d of 5 tasks", len(order2))
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	if _, err := p.Submit(NewGraph(), SubmitOptions{}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}

func TestPoolEmptyGraphCompletesImmediately(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sub, err := p.Submit(NewGraph(), SubmitOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	events, err := sub.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if events != nil {
		t.Fatalf("empty graph produced events: %v", events)
	}
}

func TestPoolTraceCoversEveryTaskOnce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, pol := range []Policy{Priority, Stealing} {
		var mu sync.Mutex
		var order []int
		g := chainGraph(20, &mu, &order)
		sub, err := p.Submit(g, SubmitOptions{Trace: true, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		events, err := sub.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != g.Len() {
			t.Fatalf("policy %d: %d events for %d tasks", pol, len(events), g.Len())
		}
		seen := map[int]bool{}
		for _, e := range events {
			if seen[e.TaskID] {
				t.Fatalf("policy %d: task %d traced twice", pol, e.TaskID)
			}
			seen[e.TaskID] = true
			if e.Worker < 0 || e.Worker >= p.Workers() {
				t.Fatalf("policy %d: bad worker %d", pol, e.Worker)
			}
			if e.End < e.Start {
				t.Fatalf("policy %d: end before start", pol)
			}
		}
	}
}

func TestPoolPriorityOrderSingleWorker(t *testing.T) {
	// With one worker and no dependencies, the Priority policy must run
	// tasks in strict priority order (ties toward lower ID).
	p := NewPool(1)
	defer p.Close()
	var mu sync.Mutex
	var order []int
	g := NewGraph()
	prios := []int{3, 9, 1, 9, 5}
	for i, pr := range prios {
		i := i
		g.Add(&Task{Priority: pr, Run: func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}})
	}
	sub, err := p.Submit(g, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestPoolStealingRunsEverything(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int32
	g := NewGraph()
	// A two-level fan-out: one root, many independent children.
	root := g.Add(&Task{Run: func() { count.Add(1) }})
	for i := 0; i < 40; i++ {
		c := g.Add(&Task{Run: func() { count.Add(1) }})
		g.AddDep(root, c)
	}
	sub, err := p.Submit(g, SubmitOptions{Policy: Stealing, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 41 {
		t.Fatalf("ran %d of 41 tasks", count.Load())
	}
}
