package sched

import (
	"errors"
	"fmt"
	"testing"
)

// TestTypedTaskPanicSurvivesWait pins the contract the error-contract
// check exists for: a task that panics with a typed error (the library
// packages' ErrShape-style preconditions) must surface through
// Submission.Wait with errors.Is still matching the sentinel.
func TestTypedTaskPanicSurvivesWait(t *testing.T) {
	sentinel := errors.New("kernel: invalid argument")
	p := NewPool(2)
	defer p.Close()

	g := NewGraph()
	g.Add(&Task{Label: "typed-boom", Run: func() {
		panic(fmt.Errorf("%w: rows 3 want 4", sentinel))
	}})
	sub, err := p.Submit(g, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sub.Wait()
	if err == nil {
		t.Fatal("Wait returned nil for a panicking task")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through Wait lost the sentinel: %v", err)
	}
}

// TestUntypedTaskPanicStillReports keeps the pre-existing behavior for
// non-error panic values.
func TestUntypedTaskPanicStillReports(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	g := NewGraph()
	g.Add(&Task{Label: "string-boom", Run: func() { panic("raw string") }})
	sub, err := p.Submit(g, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Wait(); err == nil {
		t.Fatal("Wait returned nil for a panicking task")
	}
}
