package dist

import (
	"math"
	"testing"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

func TestWorldPointToPoint(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 9)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv %v", got)
			}
		}
	})
	if w.MessagesSent(0) != 1 || w.WordsSent(0) != 3 {
		t.Fatalf("stats: %d msgs %d words", w.MessagesSent(0), w.WordsSent(0))
	}
	if w.MessagesSent(1) != 0 {
		t.Fatal("receiver should send nothing")
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < size; root++ {
			w := NewWorld(size)
			got := make([][]float64, size)
			w.Run(func(c *Comm) {
				var data []float64
				if c.Rank() == root {
					data = []float64{float64(root), 42}
				}
				got[c.Rank()] = c.Bcast(root, 5, data)
			})
			for r, g := range got {
				if len(g) != 2 || g[0] != float64(root) || g[1] != 42 {
					t.Fatalf("size=%d root=%d rank=%d got %v", size, root, r, g)
				}
			}
			// A binomial broadcast sends exactly size-1 messages in total.
			if w.TotalMessages() != int64(size-1) {
				t.Fatalf("size=%d root=%d: %d messages", size, root, w.TotalMessages())
			}
		}
	}
}

func TestDistTSLUMatchesSharedMemory(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m, b := 128, 8
		panel := matrix.Random(m, b, int64(p*100))
		w := NewWorld(p)
		winners := TSLU(w, panel, p)

		// Shared-memory reference with the same partition and tree.
		blocks := tslu.Partition(m, p)
		leaves := make([]*tslu.Candidates, len(blocks))
		for i, blk := range blocks {
			leaves[i] = tslu.Leaf(panel.View(blk[0], 0, blk[1]-blk[0], b), blk[0])
		}
		want := tslu.Reduce(leaves, tslu.Binary).Idx

		for rank := 0; rank < p; rank++ {
			if len(winners[rank]) != len(want) {
				t.Fatalf("p=%d rank=%d: %d winners want %d", p, rank, len(winners[rank]), len(want))
			}
			for i := range want {
				if winners[rank][i] != want[i] {
					t.Fatalf("p=%d rank=%d: winners %v want %v", p, rank, winners[rank], want)
				}
			}
		}
	}
}

func TestDistGEPPMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m, b := 64, 8
		orig := matrix.Random(m, b, int64(p*31))
		panel := orig.Clone()
		w := NewWorld(p)
		pivots := GEPP(w, panel, p)

		// Sequential reference: GETF2's ipiv[j] is the position of the
		// pivot at step j, exactly the convention the distributed version
		// reports.
		ref := orig.Clone()
		ipiv := make([]int, b)
		if err := lapack.GETF2(ref, ipiv); err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < p; rank++ {
			for j := range ipiv {
				if pivots[rank][j] != ipiv[j] {
					t.Fatalf("p=%d rank=%d: pivots %v want %v", p, rank, pivots[rank], ipiv)
				}
			}
		}
		// The factored panel (written back in position space) must match
		// the sequential in-place factor.
		if !panel.EqualApprox(ref, 1e-12) {
			t.Fatalf("p=%d: distributed factor differs from GETF2", p)
		}
	}
}

func TestDistTSQRMatchesSharedMemory(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		m, b := 160, 10
		panel := matrix.Random(m, b, int64(p*7))
		w := NewWorld(p)
		rs := TSQR(w, panel.Clone(), p)

		ref := tsqrReferenceR(panel, p)
		for rank := 0; rank < p; rank++ {
			r := rs[rank]
			if r.Rows != b || r.Cols != b {
				t.Fatalf("p=%d: R is %dx%d", p, r.Rows, r.Cols)
			}
			for i := 0; i < b; i++ {
				d1, d2 := math.Abs(r.At(i, i)), math.Abs(ref.At(i, i))
				if math.Abs(d1-d2) > 1e-10*(1+d2) {
					t.Fatalf("p=%d rank=%d: |R| diag %d differs: %v vs %v", p, rank, i, d1, d2)
				}
			}
		}
	}
}

func tsqrReferenceR(panel *matrix.Dense, p int) *matrix.Dense {
	work := panel.Clone()
	tau := make([]float64, work.Cols)
	lapack.GEQR2(work, tau)
	return lapack.ExtractR(work).View(0, 0, work.Cols, work.Cols).Clone()
}

// TestMessageCountsTSLUvsGEPP is the paper's Section II claim in numbers:
// ca-pivoting needs O(log P) messages per process where partial pivoting
// needs O(b log P).
func TestMessageCountsTSLUvsGEPP(t *testing.T) {
	m, b, p := 256, 16, 8
	logP := 3

	wCA := NewWorld(p)
	TSLU(wCA, matrix.Random(m, b, 1), p)
	caMax := wCA.MaxMessagesPerRank()
	// Tournament: <= log2(P) candidate sends + log2(P) broadcast forwards.
	if caMax > int64(2*logP) {
		t.Errorf("TSLU max messages per rank %d > 2 log2(P) = %d", caMax, 2*logP)
	}

	wPP := NewWorld(p)
	GEPP(wPP, matrix.Random(m, b, 1), p)
	ppMax := wPP.MaxMessagesPerRank()
	// Partial pivoting pays per-column reductions and broadcasts: at least
	// b messages from the busiest process (in practice ~2b log P overall).
	if ppMax < int64(b) {
		t.Errorf("GEPP max messages per rank %d suspiciously low", ppMax)
	}
	if ppMax < 4*caMax {
		t.Errorf("GEPP (%d msgs) not clearly above TSLU (%d msgs)", ppMax, caMax)
	}
	t.Logf("messages per process: TSLU %d vs GEPP %d (b=%d, P=%d)", caMax, ppMax, b, p)
}

// TestTSQRMessageVolume: the reduction moves one R factor per tree edge.
func TestTSQRMessageVolume(t *testing.T) {
	m, b, p := 320, 10, 8
	w := NewWorld(p)
	TSQR(w, matrix.Random(m, b, 3), p)
	// Tree sends: p-1 R-factors; broadcast: p-1 messages.
	maxPerRank := w.MaxMessagesPerRank()
	if maxPerRank > 2*3 { // log2(8) sends + forwards
		t.Errorf("TSQR max messages per rank %d", maxPerRank)
	}
}

func TestIdleRanksStayConsistent(t *testing.T) {
	// World larger than the useful parallelism: extra ranks must still get
	// the broadcast results.
	m, b, p := 64, 8, 6
	w := NewWorld(p)
	winners := TSLU(w, matrix.Random(m, b, 9), p)
	for rank := 1; rank < p; rank++ {
		for i := range winners[0] {
			if winners[rank][i] != winners[0][i] {
				t.Fatalf("rank %d winners diverge", rank)
			}
		}
	}
}

func TestDistTSLUTreeShapes(t *testing.T) {
	m, b := 128, 8
	for _, tree := range []tslu.Tree{tslu.Binary, tslu.Flat, tslu.Hybrid} {
		for _, p := range []int{2, 4, 6, 8} {
			panel := matrix.Random(m, b, int64(p*10+int(tree)))
			w := NewWorld(p)
			winners := TSLUTree(w, panel, p, tree)

			blocks := tslu.Partition(m, p)
			leaves := make([]*tslu.Candidates, len(blocks))
			for i, blk := range blocks {
				leaves[i] = tslu.Leaf(panel.View(blk[0], 0, blk[1]-blk[0], b), blk[0])
			}
			want := tslu.Reduce(leaves, tree).Idx
			for rank := 0; rank < p; rank++ {
				for i := range want {
					if winners[rank][i] != want[i] {
						t.Fatalf("tree=%v p=%d rank=%d: winners %v want %v",
							tree, p, rank, winners[rank], want)
					}
				}
			}
		}
	}
}

func TestDistFlatTreeMessagePattern(t *testing.T) {
	// Flat tree: every non-root rank sends its candidates once to rank 0
	// (1 tournament message each), plus broadcast forwards.
	m, b, p := 256, 16, 8
	w := NewWorld(p)
	TSLUTree(w, matrix.Random(m, b, 1), p, tslu.Flat)
	// Rank p-1 sends exactly one tournament message and possibly zero
	// broadcast forwards (it is a leaf of the binomial tree).
	if got := w.MessagesSent(p - 1); got != 1 {
		t.Fatalf("flat: last rank sent %d messages, want 1", got)
	}
	// Root sends only broadcast messages (log2(P) of them at most).
	if got := w.MessagesSent(0); got > 3 {
		t.Fatalf("flat: root sent %d messages", got)
	}
}

// distCALUResidual runs the full distributed CALU and returns the
// ||P*A - L*U|| / ||A|| residual of the gathered result.
func distCALUResidual(t *testing.T, m, n, b, p int, seed int64) float64 {
	t.Helper()
	orig := matrix.Random(m, n, seed)
	a := orig.Clone()
	w := NewWorld(p)
	swaps := CALU(w, a, b)

	l, u := lapack.ExtractLU(a)
	prod := mulDense(l, u)
	pa := orig.Clone()
	for k, sw := range swaps {
		tslu.ApplyPivots(pa, sw, k*b)
	}
	diff := 0.0
	for j := 0; j < n; j++ {
		x, y := pa.Col(j), prod.Col(j)
		for i := range x {
			d := x[i] - y[i]
			diff += d * d
		}
	}
	return math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300)
}

func mulDense(a, b *matrix.Dense) *matrix.Dense {
	c := matrix.New(a.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		for p := 0; p < a.Cols; p++ {
			bv := b.At(p, j)
			if bv == 0 {
				continue
			}
			src := a.Col(p)
			dst := c.Col(j)
			for i := range src {
				dst[i] += src[i] * bv
			}
		}
	}
	return c
}

func TestDistCALUFactors(t *testing.T) {
	for _, tc := range []struct{ m, n, b, p int }{
		{64, 64, 8, 1},
		{64, 64, 8, 2},
		{128, 64, 8, 4},
		{128, 128, 16, 8},
		{96, 48, 8, 3},
		{80, 80, 16, 7}, // more ranks than useful: some idle
	} {
		if res := distCALUResidual(t, tc.m, tc.n, tc.b, tc.p, int64(tc.m+tc.p)); res > 1e-11*float64(tc.m) {
			t.Errorf("%+v: residual %g", tc, res)
		}
	}
}

func TestDistCALUSolvesSystem(t *testing.T) {
	n, b, p := 96, 16, 4
	orig := matrix.Random(n, n, 71)
	xWant := matrix.Random(n, 1, 72)
	rhs := mulDense(orig, xWant)

	a := orig.Clone()
	w := NewWorld(p)
	swaps := CALU(w, a, b)
	for k, sw := range swaps {
		tslu.ApplyPivots(rhs, sw, k*b)
	}
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, a, rhs)
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, a, rhs)
	if !rhs.EqualApprox(xWant, 1e-8) {
		t.Fatal("distributed CALU solve wrong")
	}
}

func TestDistCALUMessageScaling(t *testing.T) {
	// Per panel, the busiest process sends O(log P) tournament messages,
	// a few swap rows and broadcast forwards — far below the O(b log P) a
	// distributed partial-pivoting panel costs (TestMessageCountsTSLUvsGEPP).
	m, n, b, p := 256, 64, 16, 8
	w := NewWorld(p)
	CALU(w, matrix.Random(m, n, 3), b)
	panels := n / b
	perPanel := float64(w.MaxMessagesPerRank()) / float64(panels)
	if perPanel > 24 { // log2(8)=3 tournament + <=16 swaps + forwards
		t.Fatalf("max messages per rank per panel = %.1f", perPanel)
	}
	t.Logf("distributed CALU: %.1f messages per rank per panel (P=%d, b=%d)", perPanel, p, b)
}

func TestDistCAQRGram(t *testing.T) {
	// R from distributed CAQR must satisfy R^T R == A^T A, and its
	// diagonal magnitudes must match a sequential Householder QR.
	for _, tc := range []struct{ m, n, b, p int }{
		{64, 64, 8, 1},
		{64, 64, 8, 2},
		{128, 64, 16, 4},
		{128, 32, 16, 8},
		{96, 96, 16, 3},
	} {
		orig := matrix.Random(tc.m, tc.n, int64(tc.m*3+tc.p))
		a := orig.Clone()
		w := NewWorld(tc.p)
		CAQR(w, a, tc.b)

		r := matrix.New(tc.n, tc.n)
		for j := 0; j < tc.n; j++ {
			for i := 0; i <= j; i++ {
				r.Set(i, j, a.At(i, j))
			}
		}
		ata := mulDense(orig.Transpose(), orig)
		rtr := mulDense(r.Transpose(), r)
		if !ata.EqualApprox(rtr, 1e-9*float64(tc.m)) {
			t.Errorf("%+v: R^T R != A^T A", tc)
			continue
		}
		// Diagonal magnitudes vs sequential QR.
		seq := orig.Clone()
		tau := make([]float64, tc.n)
		lapack.GEQRF(seq, tau, tc.b)
		for i := 0; i < tc.n; i++ {
			d1, d2 := math.Abs(r.At(i, i)), math.Abs(seq.At(i, i))
			if math.Abs(d1-d2) > 1e-9*(1+d2) {
				t.Errorf("%+v: |R(%d,%d)| = %v want %v", tc, i, i, d1, d2)
				break
			}
		}
	}
}

func TestDistCAQRMessageScaling(t *testing.T) {
	// Per panel: log2(P) tree edges, each shipping one R triangle and one
	// w x n_trail carrier block (plus its return).
	m, n, b, p := 256, 64, 16, 8
	w := NewWorld(p)
	CAQR(w, matrix.Random(m, n, 5), b)
	panels := n / b
	perPanel := float64(w.MaxMessagesPerRank()) / float64(panels)
	if perPanel > 3*3+1 { // <= 3 tree edges x (R + C2 + back)
		t.Fatalf("max messages per rank per panel = %.1f", perPanel)
	}
	t.Logf("distributed CAQR: %.1f messages per rank per panel (P=%d, b=%d)", perPanel, p, b)
}

func TestDistCAQRRejectsMisaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m not divisible by b")
		}
	}()
	CAQR(NewWorld(2), matrix.Random(30, 8, 1), 8)
}
