package dist

import (
	"fmt"
	"sync"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

// Additional tags for the full factorization.
const (
	tagComposite = iota + 100
	tagURow
)

// CALU performs the complete distributed-memory CALU factorization of
// Section II: an m x n matrix (m >= n) distributed over P contiguous
// block-row processes, with block boundaries aligned to the panel width b
// so each diagonal block lives on one rank. Per panel it runs the
// tournament (binary tree), exchanges the winner rows across ranks,
// broadcasts the composite LU and the U block row, and updates locally —
// the full communication pattern of the original distributed algorithm.
//
// The matrix is shared storage for the simulation, but every rank touches
// only its own rows; all cross-rank data moves through counted messages.
// The returned swap lists (one per panel, global row indices) define P in
// P*A = L*U; unlike the multicore Algorithm 1, swaps are applied to full
// rows immediately, so no deferred left-swap pass is needed.
func CALU(w *World, a *matrix.Dense, b int) [][]int {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("dist: CALU needs m >= n, got %dx%d", m, n))
	}
	if b < 1 {
		panic(fmt.Sprintf("dist: CALU block size %d", b))
	}
	p := w.Size()
	blocks := alignedBlocks(m, b, p)
	nPanels := (n + b - 1) / b
	allSwaps := make([][]int, nPanels)
	var mu sync.Mutex

	w.Run(func(c *Comm) {
		rank := c.Rank()
		myLo, myHi := 0, 0
		if rank < len(blocks) {
			myLo, myHi = blocks[rank][0], blocks[rank][1]
		}
		for k := 0; k < nPanels; k++ {
			r0 := k * b
			wk := min(b, n-r0)

			// --- Tournament over the participating ranks. ---
			participants := activeRanks(blocks, r0)
			winners, composite := c.tournament(a, blocks, participants, r0, wk)
			sw := tslu.BuildSwaps(winners, r0)
			if rank == 0 {
				mu.Lock()
				allSwaps[k] = sw
				mu.Unlock()
			}

			// --- Apply the winner swaps to full rows, exchanging across
			// ranks where needed. Every rank executes the same sequence. ---
			for j, src := range sw {
				dst := r0 + j
				if src == dst {
					continue
				}
				dOwner := ownerOf(blocks, dst)
				sOwner := ownerOf(blocks, src)
				switch {
				case rank == dOwner && rank == sOwner:
					a.SwapRows(dst, src)
				case rank == dOwner:
					c.Send(sOwner, tagRowSwap, a.Row(dst))
					incoming := c.Recv(sOwner, tagRowSwap)
					a.SetRow(dst, incoming)
				case rank == sOwner:
					c.Send(dOwner, tagRowSwap, a.Row(src))
					incoming := c.Recv(dOwner, tagRowSwap)
					a.SetRow(src, incoming)
				}
			}

			// --- The diagonal owner installs the composite L\U. ---
			diagOwner := ownerOf(blocks, r0)
			if rank == diagOwner {
				a.View(r0, r0, wk, wk).CopyFrom(composite)
			}

			// --- Panel L: each rank TRSMs its active rows below the
			// composite (everyone holds the composite). ---
			lo := max(myLo, r0+wk)
			if rank < len(blocks) && lo < myHi {
				ukk := composite
				lblk := a.View(lo, r0, myHi-lo, wk)
				blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, ukk, lblk)
			}

			// --- U block row: computed by the diagonal owner, broadcast. ---
			nTrail := n - r0 - wk
			if nTrail > 0 {
				var uBuf []float64
				if rank == diagOwner {
					ukj := a.View(r0, r0+wk, wk, nTrail)
					blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, composite, ukj)
					uBuf = flatten(ukj)
				}
				uBuf = c.Bcast(diagOwner, tagURow, uBuf)
				uRow := unflatten(uBuf, nTrail)

				// --- Trailing update on local rows. ---
				if rank < len(blocks) && lo < myHi {
					lik := a.View(lo, r0, myHi-lo, wk)
					aij := a.View(lo, r0+wk, myHi-lo, nTrail)
					blas.Gemm(blas.NoTrans, blas.NoTrans, -1, lik, uRow, 1, aij)
				}
			}
		}
	})
	return allSwaps
}

// tournament runs the candidate reduction for one panel and returns the
// winner rows plus the composite factor, identical on every rank.
func (c *Comm) tournament(a *matrix.Dense, blocks [][2]int, participants []int, r0, wk int) ([]int, *matrix.Dense) {
	rank := c.Rank()
	steps := tslu.PlanReduction(len(participants), tslu.Binary)
	// Node index -> owning rank: leaves are the participants in order, and
	// a merge output lives with its first input's owner.
	owner := make([]int, len(participants)+len(steps))
	copy(owner, participants)
	for _, st := range steps {
		owner[st.Out] = owner[st.In[0]]
	}

	cands := map[int]*tslu.Candidates{}
	for leaf, pr := range participants {
		if pr != rank {
			continue
		}
		lo := max(blocks[rank][0], r0)
		hi := blocks[rank][1]
		local := a.View(lo, r0, hi-lo, wk)
		cands[leaf] = tslu.Leaf(local, lo)
	}
	for _, st := range steps {
		dst := owner[st.In[0]]
		for _, in := range st.In[1:] {
			if owner[in] == rank && rank != dst {
				c.Send(dst, tagCandidates, encodeCandidates(cands[in]))
				delete(cands, in)
			}
		}
		if rank == dst {
			ins := make([]*tslu.Candidates, len(st.In))
			for i, in := range st.In {
				if owner[in] == rank {
					ins[i] = cands[in]
					delete(cands, in)
				} else {
					ins[i] = decodeCandidates(c.Recv(owner[in], tagCandidates))
				}
			}
			cands[st.Out] = tslu.MergeMany(ins)
		}
	}
	rootNode := len(participants) + len(steps) - 1
	if len(steps) == 0 {
		rootNode = 0
	}
	rootRank := owner[rootNode]

	// Broadcast winners and the composite together: [wk, idx..., fac...].
	var buf []float64
	if rank == rootRank {
		root := cands[rootNode]
		buf = make([]float64, 0, 1+wk+wk*wk)
		buf = append(buf, float64(wk))
		for i := 0; i < wk; i++ {
			buf = append(buf, float64(root.Idx[i]))
		}
		fac := root.Fac.View(0, 0, wk, wk)
		for j := 0; j < wk; j++ {
			buf = append(buf, fac.Col(j)...)
		}
	}
	buf = c.Bcast(rootRank, tagComposite, buf)
	kw := int(buf[0])
	winners := make([]int, kw)
	for i := range winners {
		winners[i] = int(buf[1+i])
	}
	composite := matrix.New(kw, kw)
	at := 1 + kw
	for j := 0; j < kw; j++ {
		copy(composite.Col(j), buf[at:at+kw])
		at += kw
	}
	return winners, composite
}

// alignedBlocks partitions m rows into at most p contiguous blocks whose
// boundaries are multiples of b (so every b-row diagonal block has a single
// owner).
func alignedBlocks(m, b, p int) [][2]int {
	mb := (m + b - 1) / b // block rows of height b
	parts := tslu.Partition(mb, p)
	out := make([][2]int, len(parts))
	for i, pr := range parts {
		lo := pr[0] * b
		hi := min(m, pr[1]*b)
		out[i] = [2]int{lo, hi}
	}
	return out
}

// activeRanks lists the ranks owning rows at or below r0, in rank order.
func activeRanks(blocks [][2]int, r0 int) []int {
	var out []int
	for r, blk := range blocks {
		if blk[1] > r0 {
			out = append(out, r)
		}
	}
	return out
}
