package dist

import (
	"math"
	"sync"

	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

// Message tags.
const (
	tagCandidates = iota + 1
	tagWinners
	tagPivotMax
	tagPivotRow
	tagRowSwap
	tagRFactor
)

// encodeCandidates packs a candidate set (original rows + global indices)
// into one flat message: [k, b, rows (k*b col-major), idx (k)].
func encodeCandidates(c *tslu.Candidates) []float64 {
	k, b := c.Rows.Rows, c.Rows.Cols
	out := make([]float64, 0, 2+k*b+k)
	out = append(out, float64(k), float64(b))
	for j := 0; j < b; j++ {
		out = append(out, c.Rows.Col(j)...)
	}
	for _, idx := range c.Idx {
		out = append(out, float64(idx))
	}
	return out
}

func decodeCandidates(buf []float64) *tslu.Candidates {
	k, b := int(buf[0]), int(buf[1])
	rows := matrix.New(k, b)
	at := 2
	for j := 0; j < b; j++ {
		copy(rows.Col(j), buf[at:at+k])
		at += k
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = int(buf[at+i])
	}
	return &tslu.Candidates{Rows: rows, Idx: idx}
}

// TSLU runs the distributed tournament-pivoting preprocessing of an m x b
// panel over the world's P processes (1D contiguous block-row layout:
// rank r owns rows blocks[r]), with a binary reduction tree. Every rank
// returns the same winner list (global row indices, pivot order) after a
// binomial broadcast from the root — exactly the communication pattern of
// the paper's Section II.
//
// Per-process communication: at most log2(P) candidate messages up the
// binary tree plus log2(P) forwarding messages of the broadcast.
func TSLU(w *World, panel *matrix.Dense, p int) [][]int {
	return TSLUTree(w, panel, p, tslu.Binary)
}

// TSLUTree is TSLU with a selectable reduction tree shape. The merge
// schedule comes from the same tslu.PlanReduction the shared-memory
// algorithm uses: each merge step runs on the rank owning its first input,
// and every other input's owner sends its candidates there. Flat trees
// concentrate P-1 messages at the root (one round); binary trees spread
// them over log2(P) rounds; hybrid sits between.
func TSLUTree(w *World, panel *matrix.Dense, p int, tree tslu.Tree) [][]int {
	m := panel.Rows
	blocks := tslu.Partition(m, p)
	p = len(blocks)
	steps := tslu.PlanReduction(p, tree)
	// ownerOfNode[idx] = rank holding node idx's candidates (leaves are
	// their own rank; a merge output lives with its first input's owner).
	ownerOfNode := make([]int, p+len(steps))
	for i := 0; i < p; i++ {
		ownerOfNode[i] = i
	}
	for _, st := range steps {
		ownerOfNode[st.Out] = ownerOfNode[st.In[0]]
	}
	winners := make([][]int, w.Size())
	var mu sync.Mutex

	w.Run(func(c *Comm) {
		rank := c.Rank()
		// cands holds the candidate sets this rank currently owns, by
		// node index.
		cands := map[int]*tslu.Candidates{}
		if rank < p {
			blk := blocks[rank]
			local := panel.View(blk[0], 0, blk[1]-blk[0], panel.Cols)
			cands[rank] = tslu.Leaf(local, blk[0])
		}
		for _, st := range steps {
			dst := ownerOfNode[st.In[0]]
			// Send phase: non-leading inputs this rank owns go to dst.
			for _, in := range st.In[1:] {
				if ownerOfNode[in] == rank && rank != dst {
					c.Send(dst, tagCandidates, encodeCandidates(cands[in]))
					delete(cands, in)
				}
			}
			// Merge phase on the destination rank.
			if rank == dst {
				ins := make([]*tslu.Candidates, len(st.In))
				for i, in := range st.In {
					if ownerOfNode[in] == rank {
						ins[i] = cands[in]
						delete(cands, in)
					} else {
						ins[i] = decodeCandidates(c.Recv(ownerOfNode[in], tagCandidates))
					}
				}
				cands[st.Out] = tslu.MergeMany(ins)
			}
		}
		rootNode := p + len(steps) - 1
		if len(steps) == 0 {
			rootNode = 0
		}
		rootRank := ownerOfNode[rootNode]
		var buf []float64
		if rank == rootRank {
			root := cands[rootNode]
			buf = make([]float64, len(root.Idx))
			for i, idx := range root.Idx {
				buf[i] = float64(idx)
			}
		}
		buf = c.Bcast(rootRank, tagWinners, buf)
		got := make([]int, len(buf))
		for i, v := range buf {
			got[i] = int(v)
		}
		mu.Lock()
		winners[rank] = got
		mu.Unlock()
	})
	return winners
}

// GEPP runs classic distributed partial pivoting on an m x b panel over P
// block-row processes — the baseline whose per-column communication the
// paper's ca-pivoting removes. Each column pays a max-reduction to the
// root, a pivot broadcast, and a row exchange, so a process sends
// O(b log P) messages. The panel is factored in place; every rank returns
// the same pivot list (global row indices, in order).
func GEPP(w *World, panel *matrix.Dense, p int) [][]int {
	m, b := panel.Rows, panel.Cols
	blocks := tslu.Partition(m, p)
	p = len(blocks)
	pivots := make([][]int, w.Size())
	var mu sync.Mutex

	// Each rank keeps a private copy of its block, as on distributed
	// memory. Row j's owner is found dynamically, so no constraint on the
	// block sizes is needed.
	locals := make([]*matrix.Dense, p)
	for r, blk := range blocks {
		locals[r] = panel.View(blk[0], 0, blk[1]-blk[0], b).Clone()
	}

	w.Run(func(c *Comm) {
		rank := c.Rank()
		got := make([]int, 0, b)
		if rank < p {
			local := locals[rank]
			r0 := blocks[rank][0]
			for j := 0; j < b; j++ {
				// Local pivot candidate among not-yet-pivoted local rows.
				bestVal, bestRow := 0.0, -1
				for i := 0; i < local.Rows; i++ {
					if r0+i < j {
						continue // rows above the current diagonal are done
					}
					if a := math.Abs(local.At(i, j)); a > bestVal {
						bestVal, bestRow = a, i
					}
				}
				// Reduce (value, globalRow) to rank 0: binary tree.
				cand := []float64{bestVal, float64(r0 + bestRow)}
				if bestRow < 0 {
					cand = []float64{-1, -1}
				}
				for half := 1; half < p; half *= 2 {
					if rank%(2*half) == half {
						c.Send(rank-half, tagPivotMax, cand)
						break
					}
					if rank%(2*half) == 0 && rank+half < p {
						other := c.Recv(rank+half, tagPivotMax)
						if other[0] > cand[0] {
							cand = other
						}
					}
				}
				// Root broadcasts the winning global row.
				win := c.Bcast(0, tagPivotMax, cand)
				pivotRow := int(win[1])
				got = append(got, pivotRow)

				// The pivot row's owner broadcasts the row values.
				owner := ownerOf(blocks, pivotRow)
				var row []float64
				if rank == owner {
					row = localRow(locals[owner], pivotRow-blocks[owner][0])
				}
				row = c.Bcast(owner, tagPivotRow, row)

				// Swap the pivot row with global row j (owner of row j is
				// whoever holds it; with blocks[0] >= b rows that is rank 0).
				jOwner := ownerOf(blocks, j)
				if rank == owner && rank == jOwner {
					if pivotRow != j {
						swapLocalRows(local, pivotRow-r0, j-r0)
					}
				} else {
					if rank == jOwner {
						// Send row j to the pivot owner, adopt the pivot row.
						c.Send(owner, tagRowSwap, localRow(local, j-r0))
						setLocalRow(local, j-r0, row)
					}
					if rank == owner {
						jRow := c.Recv(jOwner, tagRowSwap)
						setLocalRow(local, pivotRow-r0, jRow)
					}
				}

				// Eliminate below row j against the broadcast pivot row.
				piv := row[j]
				for i := 0; i < local.Rows; i++ {
					if r0+i <= j {
						continue
					}
					f := local.At(i, j) / piv
					local.Set(i, j, f)
					for col := j + 1; col < b; col++ {
						local.Set(i, col, local.At(i, col)-f*row[col])
					}
				}
			}
		} else {
			// Idle ranks still participate in the broadcasts.
			for j := 0; j < b; j++ {
				win := c.Bcast(0, tagPivotMax, nil)
				got = append(got, int(win[1]))
				owner := ownerOf(blocks, int(win[1]))
				c.Bcast(owner, tagPivotRow, nil)
			}
		}
		mu.Lock()
		pivots[rank] = got
		mu.Unlock()
	})

	// Write the factored blocks back for inspection.
	for r, blk := range blocks {
		panel.View(blk[0], 0, blk[1]-blk[0], b).CopyFrom(locals[r])
	}
	return pivots
}

// TSQR runs the distributed tall-skinny QR of an m x b panel over P
// block-row processes with a binary reduction tree, returning the final
// b x b R factor (valid on every rank after the broadcast).
func TSQR(w *World, panel *matrix.Dense, p int) []*matrix.Dense {
	m, b := panel.Rows, panel.Cols
	if p > m/b {
		p = m / b
	}
	if p < 1 {
		p = 1
	}
	blocks := tslu.Partition(m, p)
	p = len(blocks)
	results := make([]*matrix.Dense, w.Size())
	var mu sync.Mutex

	w.Run(func(c *Comm) {
		rank := c.Rank()
		var r *matrix.Dense
		if rank < p {
			blk := blocks[rank]
			local := panel.View(blk[0], 0, blk[1]-blk[0], b).Clone()
			tau := make([]float64, min(local.Rows, b))
			lapack.GEQR2(local, tau)
			r = lapack.ExtractR(local)
			for half := 1; half < p; half *= 2 {
				if rank%(2*half) == half {
					c.Send(rank-half, tagRFactor, flatten(r))
					r = nil
					break
				}
				if rank%(2*half) == 0 && rank+half < p {
					other := unflatten(c.Recv(rank+half, tagRFactor), b)
					r = mergeR(r, other)
				}
			}
		}
		var buf []float64
		if rank == 0 {
			buf = flatten(r)
		}
		buf = c.Bcast(0, tagRFactor, buf)
		mu.Lock()
		results[rank] = unflatten(buf, b)
		mu.Unlock()
	})
	return results
}

// mergeR computes the R factor of two stacked upper-triangular/trapezoidal
// factors.
func mergeR(r1, r2 *matrix.Dense) *matrix.Dense {
	b := r1.Cols
	stack := matrix.New(r1.Rows+r2.Rows, b)
	stack.View(0, 0, r1.Rows, b).CopyFrom(r1)
	stack.View(r1.Rows, 0, r2.Rows, b).CopyFrom(r2)
	tau := make([]float64, min(stack.Rows, b))
	lapack.GEQR2(stack, tau)
	return lapack.ExtractR(stack)
}

func flatten(m *matrix.Dense) []float64 {
	out := make([]float64, 0, m.Rows*m.Cols+1)
	out = append(out, float64(m.Rows))
	for j := 0; j < m.Cols; j++ {
		out = append(out, m.Col(j)...)
	}
	return out
}

func unflatten(buf []float64, cols int) *matrix.Dense {
	rows := int(buf[0])
	m := matrix.New(rows, cols)
	at := 1
	for j := 0; j < cols; j++ {
		copy(m.Col(j), buf[at:at+rows])
		at += rows
	}
	return m
}

func ownerOf(blocks [][2]int, row int) int {
	for r, blk := range blocks {
		if row >= blk[0] && row < blk[1] {
			return r
		}
	}
	panic("dist: row out of range")
}

func localRow(local *matrix.Dense, i int) []float64 {
	return local.Row(i)
}

func setLocalRow(local *matrix.Dense, i int, row []float64) {
	local.SetRow(i, row)
}

func swapLocalRows(local *matrix.Dense, i1, i2 int) {
	local.SwapRows(i1, i2)
}
