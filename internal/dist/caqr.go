package dist

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

// Tags for the distributed QR.
const (
	tagQRPair = iota + 200
	tagQRBack
)

// CAQR performs the complete distributed-memory CAQR factorization of
// Section II: an m x n matrix (m >= n, m divisible by the panel width b)
// distributed over P contiguous block-row processes. Each panel runs a
// binary-tree TSQR across the ranks; tree merges use the structured
// triangle-on-triangle kernel, and each merge ships the partner's R factor
// plus its trailing-matrix carrier rows to the leading rank and returns
// the updated rows — the real communication pattern of distributed CAQR
// (one R + one w x n_trail block per tree edge).
//
// On return the matrix's upper triangle holds R (the local leaf reflectors
// remain below, rank by rank, as in the shared-memory algorithm).
func CAQR(w *World, a *matrix.Dense, b int) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("dist: CAQR needs m >= n, got %dx%d", m, n))
	}
	if b < 1 || m%b != 0 {
		panic(fmt.Sprintf("dist: CAQR needs b >= 1 dividing m, got b=%d m=%d", b, m))
	}
	p := w.Size()
	blocks := alignedBlocks(m, b, p)
	nPanels := (n + b - 1) / b

	w.Run(func(c *Comm) {
		rank := c.Rank()
		myLo, myHi := 0, 0
		if rank < len(blocks) {
			myLo, myHi = blocks[rank][0], blocks[rank][1]
		}
		for k := 0; k < nPanels; k++ {
			r0 := k * b
			wk := min(b, n-r0)
			nTrail := n - r0 - wk
			participants := activeRanks(blocks, r0)

			// --- Leaf QR on the local active block, plus local trailing
			// update. Everything here is rank-local. ---
			lo := max(myLo, r0)
			if rank < len(blocks) && lo < myHi {
				local := a.View(lo, r0, myHi-lo, wk)
				tau := make([]float64, wk)
				leafT := matrix.New(wk, wk)
				lapack.GEQR3(local, tau, leafT)
				if nTrail > 0 {
					trail := a.View(lo, r0+wk, myHi-lo, nTrail)
					lapack.Larfb(blas.Trans, local, leafT, trail)
				}
			}

			// --- Binary tree over the participants' R carriers. Each
			// rank's carrier is the top wk rows of its active block. ---
			steps := tslu.PlanReduction(len(participants), tslu.Binary)
			owner := make([]int, len(participants)+len(steps))
			copy(owner, participants)
			carrier := make([]int, len(participants)+len(steps))
			for i, pr := range participants {
				carrier[i] = max(blocks[pr][0], r0)
			}
			for _, st := range steps {
				owner[st.Out] = owner[st.In[0]]
				carrier[st.Out] = carrier[st.In[0]]
			}
			for _, st := range steps {
				dst := owner[st.In[0]]
				srcNode := st.In[1]
				src := owner[srcNode]
				switch rank {
				case src:
					if src == dst {
						break
					}
					// Ship R2 (upper triangle) and the trailing carrier
					// rows to the leading rank; receive the updated
					// trailing rows back. (R2's slot becomes reflector
					// storage conceptually; its value is dead here.)
					row := carrier[srcNode]
					r2 := a.View(row, r0, wk, wk)
					c.Send(dst, tagQRPair, flatten(r2))
					if nTrail > 0 {
						c2 := a.View(row, r0+wk, wk, nTrail)
						c.Send(dst, tagQRPair, flatten(c2))
						back := unflatten(c.Recv(dst, tagQRBack), nTrail)
						c2.CopyFrom(back)
					}
				case dst:
					row1 := carrier[st.In[0]]
					r1 := a.View(row1, r0, wk, wk)
					var r2 *matrix.Dense
					var c2 *matrix.Dense
					if src == dst {
						// Both carriers local (single-rank tail merges).
						row2 := carrier[srcNode]
						r2 = upperInPlace(a.View(row2, r0, wk, wk).Clone())
						if nTrail > 0 {
							c2 = a.View(row2, r0+wk, wk, nTrail)
						}
					} else {
						r2 = unflatten(c.Recv(src, tagQRPair), wk)
						if nTrail > 0 {
							c2 = unflatten(c.Recv(src, tagQRPair), nTrail)
						}
					}
					t := matrix.New(wk, wk)
					lapack.TTQRT(upperInPlace(r1), r2, t)
					if nTrail > 0 {
						c1 := a.View(row1, r0+wk, wk, nTrail)
						lapack.TTMQRT(blas.Trans, r2, t, c1, c2)
						if src != dst {
							c.Send(src, tagQRBack, flatten(c2))
						}
					}
				}
			}
		}
	})
}

// upperInPlace zeroes the strictly-lower part of a square view so TTQRT
// can treat it as a clean triangle (the sub-diagonal holds leaf reflector
// data that belongs to this rank's implicit Q and must not perturb R).
// The reflector data is cleared: in the distributed algorithm the final R
// is the product; per-rank Qs are discarded after the trailing update.
func upperInPlace(r *matrix.Dense) *matrix.Dense {
	for j := 0; j < r.Cols; j++ {
		col := r.Col(j)
		for i := j + 1; i < r.Rows; i++ {
			col[i] = 0
		}
	}
	return r
}
