// Package dist implements the distributed-memory origins of CALU and CAQR
// (paper Section II): TSLU and TSQR over P processes with explicit message
// passing, on a miniature MPI-like runtime that counts every message and
// word exchanged.
//
// The point of the package is to make the paper's communication-optimality
// claims checkable: with a binary reduction tree, the panel factorization
// exchanges O(log P) messages per process, whereas classic partial pivoting
// exchanges O(b log P) — one reduction per column. The tests assert both
// counts against the implementations, and that the distributed tournament
// elects exactly the same pivots as the shared-memory tslu package.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one point-to-point transfer.
type message struct {
	data []float64
	tag  int
}

// World is a group of P simulated processes connected point-to-point.
// Create one with NewWorld, then Run SPMD functions against per-rank Comm
// handles.
type World struct {
	size  int
	links []chan message // links[from*size+to]
	stats []rankStats
}

type rankStats struct {
	msgs  atomic.Int64
	words atomic.Int64
}

// NewWorld creates a world of size processes.
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("dist: world size %d", size))
	}
	w := &World{
		size:  size,
		links: make([]chan message, size*size),
		stats: make([]rankStats, size),
	}
	for i := range w.links {
		// Generous buffering keeps simple SPMD exchanges deadlock-free.
		w.links[i] = make(chan message, 64)
	}
	return w
}

// Size returns the number of processes.
func (w *World) Size() int { return w.size }

// Run executes body once per rank, concurrently, and waits for all ranks.
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
}

// MessagesSent returns the number of messages rank sent.
func (w *World) MessagesSent(rank int) int64 { return w.stats[rank].msgs.Load() }

// WordsSent returns the number of float64 words rank sent.
func (w *World) WordsSent(rank int) int64 { return w.stats[rank].words.Load() }

// TotalMessages returns the message count across all ranks.
func (w *World) TotalMessages() int64 {
	t := int64(0)
	for r := 0; r < w.size; r++ {
		t += w.MessagesSent(r)
	}
	return t
}

// TotalWords returns the word volume across all ranks.
func (w *World) TotalWords() int64 {
	t := int64(0)
	for r := 0; r < w.size; r++ {
		t += w.WordsSent(r)
	}
	return t
}

// MaxMessagesPerRank returns the maximum per-rank message count — the
// quantity the communication lower bounds are stated in.
func (w *World) MaxMessagesPerRank() int64 {
	max := int64(0)
	for r := 0; r < w.size; r++ {
		if m := w.MessagesSent(r); m > max {
			max = m
		}
	}
	return max
}

// Comm is one rank's communicator.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this process's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send transfers data to rank `to` with a tag. The data is copied, so the
// sender may reuse the buffer.
func (c *Comm) Send(to, tag int, data []float64) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("dist: send to rank %d of %d", to, c.world.size))
	}
	cp := append([]float64(nil), data...)
	c.world.stats[c.rank].msgs.Add(1)
	c.world.stats[c.rank].words.Add(int64(len(cp)))
	c.world.links[c.rank*c.world.size+to] <- message{data: cp, tag: tag}
}

// Recv blocks until a message with the given tag arrives from rank `from`.
// Messages from one sender arrive in order; a tag mismatch is a protocol
// bug and panics.
func (c *Comm) Recv(from, tag int) []float64 {
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("dist: recv from rank %d of %d", from, c.world.size))
	}
	m := <-c.world.links[from*c.world.size+c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("dist: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
	}
	return m.data
}

// Bcast broadcasts root's data to all ranks along a binomial tree
// (log2(P) rounds), returning each rank's copy.
func (c *Comm) Bcast(root, tag int, data []float64) []float64 {
	size := c.world.size
	if size == 1 {
		return data
	}
	// Work in root-relative rank space so any root works. Standard
	// binomial tree: in round k, ranks rel < 2^k forward to rel + 2^k.
	rel := (c.rank - root + size) % size
	var buf []float64
	if rel == 0 {
		buf = data
	}
	for k := 0; 1<<k < size; k++ {
		half := 1 << k
		switch {
		case rel < half:
			if rel+half < size {
				c.Send((rel+half+root)%size, tag, buf)
			}
		case rel < 2*half:
			buf = c.Recv((rel-half+root)%size, tag)
		}
	}
	return buf
}
