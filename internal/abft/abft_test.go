package abft

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lapack"
	"repro/internal/matrix"
)

func randDense(rng *rand.Rand, r, c int) *matrix.Dense {
	a := matrix.New(r, c)
	for j := 0; j < c; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return a
}

func TestColumnSums(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	sums := make([]float64, 2)
	ColumnSums(a, sums)
	if sums[0] != 9 || sums[1] != 12 {
		t.Fatalf("sums = %v, want [9 12]", sums)
	}
}

// TestVerifyGEPPPanel factors a random panel with partial pivoting and
// checks that the column-sum identity holds on the clean factor and breaks
// when any single element is corrupted.
func TestVerifyGEPPPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	panel := randDense(rng, 12, 5)
	ws := make([]float64, 5)
	ColumnSums(panel, ws)
	ipiv := make([]int, 5)
	if err := lapack.GETF2(panel, ipiv); err != nil {
		t.Fatal(err)
	}
	tol := 1e-10 * 12 * 5
	if !VerifyGEPPPanel(panel, ws, tol) {
		t.Fatal("clean GEPP panel failed verification")
	}
	for j := 0; j < panel.Cols; j++ {
		for i := 0; i < panel.Rows; i++ {
			save := panel.At(i, j)
			panel.Set(i, j, save+0.5)
			if VerifyGEPPPanel(panel, ws, tol) {
				t.Fatalf("corruption at (%d,%d) not detected", i, j)
			}
			panel.Set(i, j, save)
		}
	}
	// NaN corruption must also be caught.
	panel.Set(3, 2, math.NaN())
	if VerifyGEPPPanel(panel, ws, tol) {
		t.Fatal("NaN corruption not detected")
	}
}

// TestVerifyLUColumns runs the full-matrix identity: factor A = P^T L U in
// place, accumulate L sums per panel, and check every column against the
// original column sums.
func TestVerifyLUColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 16
	a := randDense(rng, n, n)
	ws := make([]float64, n)
	ColumnSums(a, ws)
	ipiv := make([]int, n)
	if err := lapack.GETF2(a, ipiv); err != nil {
		t.Fatal(err)
	}
	vs := make([]float64, n)
	AccumulateLSums(a, 0, n, vs)
	tol := 1e-10 * float64(n*n)
	if bad := VerifyLUColumns(a, 0, n, vs, ws, tol); bad != -1 {
		t.Fatalf("clean factorization flagged at column %d", bad)
	}
	// Corrupt one U entry: every column at or after it must still pass
	// except the corrupted one.
	a.Set(2, 9, a.At(2, 9)+1)
	if bad := VerifyLUColumns(a, 0, n, vs, ws, tol); bad != 9 {
		t.Fatalf("corrupted column not localized: got %d, want 9", bad)
	}
}

// TestVerifyLUPanelSums checks the tournament-composite form of the
// identity: a GEPP factorization of selected rows, verified against the
// pristine source rows through an index vector.
func TestVerifyLUPanelSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 20, 8)
	// "Winner" rows 4..8 of columns 2..7 form the candidate block.
	idx := []int{4, 5, 6, 7, 8}
	c0, w := 2, 5
	fac := matrix.New(len(idx), w)
	for j := 0; j < w; j++ {
		for i, r := range idx {
			fac.Set(i, j, a.At(r, c0+j))
		}
	}
	ipiv := make([]int, w)
	if err := lapack.GETF2(fac, ipiv); err != nil {
		t.Fatal(err)
	}
	// GETF2 permutes fac's rows; permute idx the same way so fac remains
	// the factorization of rows idx in that order.
	for j, p := range ipiv {
		idx[j], idx[p] = idx[p], idx[j]
	}
	tol := 1e-10 * 20 * 8
	if !VerifyLUPanel(a, idx, fac, c0, tol) {
		t.Fatal("clean composite failed verification")
	}
	fac.Set(1, 3, fac.At(1, 3)*1.25)
	if VerifyLUPanel(a, idx, fac, c0, tol) {
		t.Fatal("corrupted composite not detected")
	}
}

// TestVerifyQRColumns exercises the QR identity with an explicit 2x2
// rotation: A = Q R, u = Q^T e.
func TestVerifyQRColumns(t *testing.T) {
	c, s := math.Cos(0.3), math.Sin(0.3)
	r11, r12, r22 := 2.0, -1.0, 1.5
	// A = Q * R with Q = [[c,-s],[s,c]].
	a := matrix.FromRows([][]float64{
		{c * r11, c*r12 - s*r22},
		{s * r11, s*r12 + c*r22},
	})
	ws := make([]float64, 2)
	ColumnSums(a, ws)
	// Stored factorization: R in the upper triangle (below it would be the
	// Householder vector, which the check must ignore).
	fact := matrix.FromRows([][]float64{{r11, r12}, {12345, r22}})
	u := []float64{c + s, -s + c} // Q^T * ones
	tol := 1e-12 * 4
	if bad := VerifyQRColumns(fact, u, 0, 2, ws, tol); bad != -1 {
		t.Fatalf("clean QR flagged at column %d", bad)
	}
	fact.Set(0, 1, r12+0.25)
	if bad := VerifyQRColumns(fact, u, 0, 2, ws, tol); bad != 1 {
		t.Fatalf("corrupted R not localized: got %d, want 1", bad)
	}
}
