// Package abft implements the checksum arithmetic behind algorithm-based
// fault tolerance (Huang–Abraham style) for the CALU and CAQR
// factorizations. The guarded invariant is the column-sum identity: for LU
// with partial-style pivoting, e^T P A = e^T L U, and row interchanges never
// change a column's sum, so
//
//	colsum_j(A) = sum_{t<=j} (1 + sum_{i>t} L(i,t)) * U(t,j)
//
// holds for every column j of the finished factors; for QR, e^T A = u^T R
// with u = Q^T e. Both sides are O(m) per column to evaluate against the
// checksums of the original matrix, so verification costs O(m n) per panel
// against the factorization's O(m n b) — and any silent corruption of a
// factor entry, a trailing-update output or a pivot decision perturbs one
// side of the identity but not the other.
//
// Every function here is a straight loop nest over existing buffers: the
// package is on the hotpath-alloc lint's hot-root list and must stay
// allocation free (internal/scratch is the sanctioned source of temporaries).
package abft

import (
	"math"

	"repro/internal/matrix"
	"repro/internal/scratch"
)

// ColumnSums fills sums[j] with the column sums of a (sums[j] = e^T a e_j)
// for j < min(a.Cols, len(sums)) — the checksum vector of a pristine matrix
// or panel, captured before factoring overwrites it.
func ColumnSums(a *matrix.Dense, sums []float64) {
	n := min(a.Cols, len(sums))
	for j := 0; j < n; j++ {
		s := 0.0
		for _, v := range a.Col(j) {
			s += v
		}
		sums[j] = s
	}
}

// AccumulateLSums fills vsums[t], for t in [c0, c1), with the column sum of
// the finished unit-lower L column t stored in-place in a:
// vsums[t] = 1 + sum_{i>t} a(i,t). Later iterations only permute these rows
// (row swaps within the column), so the sums stay valid for the rest of the
// factorization — each panel's verification task computes them once.
func AccumulateLSums(a *matrix.Dense, c0, c1 int, vsums []float64) {
	for t := c0; t < c1; t++ {
		col := a.Col(t)
		s := 1.0
		for i := t + 1; i < len(col); i++ {
			s += col[i]
		}
		vsums[t] = s
	}
}

// VerifyLUColumns checks the LU column-sum identity for columns [c0, c1) of
// the in-place factors in a: |sum_{t<=j} vsums[t]*a(t,j) - wsums[j]| <= tol,
// where wsums are the original matrix's column sums and vsums the L column
// sums accumulated so far (AccumulateLSums over every finished panel). It
// returns the first offending column index, or -1 when all pass. A NaN
// difference counts as a mismatch — corruption can turn a factor entry into
// NaN, and a comparison that NaN slips through would defeat the check.
func VerifyLUColumns(a *matrix.Dense, c0, c1 int, vsums, wsums []float64, tol float64) int {
	for j := c0; j < c1; j++ {
		col := a.Col(j)
		pred := 0.0
		for t := 0; t <= j; t++ {
			pred += vsums[t] * col[t]
		}
		if !(math.Abs(pred-wsums[j]) <= tol) {
			return j
		}
	}
	return -1
}

// VerifyLUPanel checks a tournament panel's composite factor against the
// matrix it claims to factor, before anything is written back: the winner
// rows idx of a (columns [c0, c0+fac.Cols)) must equal L_kk * U of the
// kk x w composite fac (L unit lower, U upper, packed). The check compares
// column sums of both sides — sum_i a(idx[i], c0+j) against
// sum_t (1 + sum_{i>t} fac(i,t)) * fac(t,j) — within tol. The winner rows
// are still pristine here (tournament tasks factor pooled scratch copies),
// so a mismatch means fac or idx was corrupted somewhere in the reduction
// tree, or an earlier update wrote a wrong value into the panel.
func VerifyLUPanel(a *matrix.Dense, idx []int, fac *matrix.Dense, c0 int, tol float64) bool {
	kk, w := fac.Rows, fac.Cols
	if kk > len(idx) {
		kk = len(idx)
	}
	vf := scratch.Get(kk)
	for t := 0; t < kk; t++ {
		col := fac.Col(t)
		s := 1.0
		for i := t + 1; i < kk; i++ {
			s += col[i]
		}
		vf[t] = s
	}
	ok := true
	for j := 0; j < w; j++ {
		facCol := fac.Col(j)
		actual := 0.0
		for i := 0; i < kk; i++ {
			actual += a.Col(c0 + j)[idx[i]]
		}
		pred := 0.0
		for t := 0; t <= j && t < kk; t++ {
			pred += vf[t] * facCol[t]
		}
		if !(math.Abs(actual-pred) <= tol) {
			ok = false
			break
		}
	}
	scratch.Put(vf)
	return ok
}

// VerifyGEPPPanel checks an in-place GEPP-factored panel (L\U packed, row
// interchanges applied) against ws, the column sums of the panel captured
// before factoring: row swaps leave column sums unchanged, so
// sum_{t<=j} (1 + sum_{i>t} panel(i,t)) * panel(t,j) must reproduce ws[j]
// within tol. This is how a guardrail- or corruption-triggered panel
// recomputation proves itself before its result is written back.
func VerifyGEPPPanel(panel *matrix.Dense, ws []float64, tol float64) bool {
	mr, w := panel.Rows, panel.Cols
	kk := min(mr, w)
	vl := scratch.Get(kk)
	for t := 0; t < kk; t++ {
		col := panel.Col(t)
		s := 1.0
		for i := t + 1; i < mr; i++ {
			s += col[i]
		}
		vl[t] = s
	}
	ok := true
	for j := 0; j < w; j++ {
		col := panel.Col(j)
		pred := 0.0
		for t := 0; t <= j && t < kk; t++ {
			pred += vl[t] * col[t]
		}
		if !(math.Abs(pred-ws[j]) <= tol) {
			ok = false
			break
		}
	}
	scratch.Put(vl)
	return ok
}

// VerifyQRColumns checks the QR column-sum identity for columns [c0, c1) of
// the in-place factorization in a: |sum_{i<=j} u[i]*a(i,j) - wsums[j]| <=
// tol, where u is the carried checksum vector Q^T e (maintained by applying
// every Householder transform to a ones vector alongside the matrix) and
// wsums are the original column sums. Only the upper triangle of a is read —
// that is where R lives; below it are Householder vectors. Returns the first
// offending column, or -1.
func VerifyQRColumns(a *matrix.Dense, u []float64, c0, c1 int, wsums []float64, tol float64) int {
	for j := c0; j < c1; j++ {
		col := a.Col(j)
		pred := 0.0
		for i := 0; i <= j; i++ {
			pred += u[i] * col[i]
		}
		if !(math.Abs(pred-wsums[j]) <= tol) {
			return j
		}
	}
	return -1
}
