//go:build !race

// The race detector instruments allocations, so the zero-alloc gate only
// runs in the regular test job; the CI alloc-gate step invokes it by name
// (-run ZeroAlloc).

package abft

import (
	"math/rand"
	"testing"

	"repro/internal/lapack"
)

// TestVerifyZeroAlloc pins the verification kernels to zero allocations per
// call (after scratch warmup) — they run on every panel in verify mode.
func TestVerifyZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	a := randDense(rng, n, n)
	ws := make([]float64, n)
	vs := make([]float64, n)
	ColumnSums(a, ws)
	ipiv := make([]int, n)
	if err := lapack.GETF2(a, ipiv); err != nil {
		t.Fatal(err)
	}
	AccumulateLSums(a, 0, n, vs)
	panel := randDense(rng, n, 8)
	pw := make([]float64, 8)
	ColumnSums(panel, pw)
	// Warm the scratch pool.
	VerifyGEPPPanel(panel, pw, 1)
	allocs := testing.AllocsPerRun(20, func() {
		ColumnSums(a, ws)
		AccumulateLSums(a, 0, n, vs)
		VerifyLUColumns(a, 0, n, vs, ws, 1e300)
		VerifyGEPPPanel(panel, pw, 1e300)
		VerifyQRColumns(a, vs, 0, n, ws, 1e300)
	})
	if allocs != 0 {
		t.Fatalf("verification kernels allocate: %v allocs/run", allocs)
	}
}
