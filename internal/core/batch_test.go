package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/matrix"
	"repro/internal/sched"
)

// runMerged executes the prepared requests' graphs as one submission on a
// shared pool, returning the submission error.
func runMerged(t *testing.T, workers int, graphs ...*sched.Graph) error {
	t.Helper()
	pool := sched.NewPool(workers)
	defer pool.Close()
	merged := sched.MergeGraphs(graphs...)
	sub, err := pool.Submit(merged, sched.SubmitOptions{})
	if err != nil {
		t.Fatalf("submit merged graph: %v", err)
	}
	_, runErr := sub.Wait()
	return runErr
}

// TestPreparedBatchMatchesSolo factors several matrices through one merged
// submission and checks every factor bit-identical to the solo entry
// points: coalescing must not change a single bit.
func TestPreparedBatchMatchesSolo(t *testing.T) {
	opt := Options{BlockSize: 8, PanelThreads: 2, Workers: 2, Lookahead: true}

	luIn := []*matrix.Dense{
		matrix.Random(40, 24, 1),
		matrix.Random(31, 31, 2),
	}
	qrIn := matrix.Random(37, 16, 3)

	// Solo reference runs.
	luWant := make([]*matrix.Dense, len(luIn))
	var luWantRes []*LUResult
	for i, a := range luIn {
		ref := a.Clone()
		res, err := CALU(ref, opt)
		if err != nil {
			t.Fatalf("solo CALU %d: %v", i, err)
		}
		luWant[i] = ref
		luWantRes = append(luWantRes, res)
	}
	qrWant := qrIn.Clone()
	if _, err := CAQR(qrWant, opt); err != nil {
		t.Fatalf("solo CAQR: %v", err)
	}

	// Batched run: prepare all three, merge, execute once, finish each.
	luBatch := make([]*matrix.Dense, len(luIn))
	luPreps := make([]*PreparedLU, len(luIn))
	var graphs []*sched.Graph
	for i, a := range luIn {
		luBatch[i] = a.Clone()
		p, err := PrepareCALU(luBatch[i], opt)
		if err != nil {
			t.Fatalf("PrepareCALU %d: %v", i, err)
		}
		luPreps[i] = p
		graphs = append(graphs, p.Graph())
	}
	qrBatch := qrIn.Clone()
	qp, err := PrepareCAQR(qrBatch, opt)
	if err != nil {
		t.Fatalf("PrepareCAQR: %v", err)
	}
	graphs = append(graphs, qp.Graph())

	runErr := runMerged(t, 3, graphs...)
	for i, p := range luPreps {
		res, err := p.Finish(runErr)
		if err != nil {
			t.Fatalf("LU Finish %d: %v", i, err)
		}
		if !luBatch[i].Equal(luWant[i]) {
			t.Fatalf("batched LU %d factors differ from solo", i)
		}
		if len(res.Swaps) != len(luWantRes[i].Swaps) {
			t.Fatalf("batched LU %d swap count %d want %d", i, len(res.Swaps), len(luWantRes[i].Swaps))
		}
		for k := range res.Swaps {
			for j := range res.Swaps[k] {
				if res.Swaps[k][j] != luWantRes[i].Swaps[k][j] {
					t.Fatalf("batched LU %d swaps differ at iteration %d", i, k)
				}
			}
		}
	}
	if _, err := qp.Finish(runErr); err != nil {
		t.Fatalf("QR Finish: %v", err)
	}
	if !qrBatch.Equal(qrWant) {
		t.Fatal("batched QR factors differ from solo")
	}
}

// TestPreparedBatchSingularIsolated checks per-request failure isolation
// for input errors: a singular matrix in the batch fails its own Finish
// with ErrSingular while its batch-mates succeed untouched.
func TestPreparedBatchSingularIsolated(t *testing.T) {
	opt := Options{BlockSize: 4, PanelThreads: 2, Workers: 2, Lookahead: true}
	good := matrix.Random(20, 12, 7)
	goodWant := good.Clone()
	if _, err := CALU(goodWant, opt); err != nil {
		t.Fatalf("solo CALU: %v", err)
	}
	sing := matrix.New(16, 16) // all zeros: rank deficient at panel 0

	goodBatch := good.Clone()
	pg, err := PrepareCALU(goodBatch, opt)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := PrepareCALU(sing, opt)
	if err != nil {
		t.Fatal(err)
	}
	runErr := runMerged(t, 2, pg.Graph(), ps.Graph())
	if runErr != nil {
		t.Fatalf("merged run failed: %v", runErr)
	}
	if _, err := pg.Finish(nil); err != nil {
		t.Fatalf("good request failed: %v", err)
	}
	if !goodBatch.Equal(goodWant) {
		t.Fatal("good request's factors differ from solo after batched run")
	}
	if _, err := ps.Finish(nil); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular request Finish = %v, want ErrSingular", err)
	}
}

// TestPrepareRejects covers the validation surface: nil/empty/wide inputs
// and non-finite entries are rejected before any graph is built.
func TestPrepareRejects(t *testing.T) {
	opt := Options{BlockSize: 4, Workers: 1}
	if _, err := PrepareCALU(nil, opt); !errors.Is(err, ErrShape) {
		t.Fatalf("PrepareCALU(nil) = %v, want ErrShape", err)
	}
	if _, err := PrepareCAQR(matrix.New(0, 0), opt); !errors.Is(err, ErrShape) {
		t.Fatalf("PrepareCAQR(empty) = %v, want ErrShape", err)
	}
	wide := matrix.Random(4, 9, 1)
	if _, err := PrepareCALU(wide, opt); !errors.Is(err, ErrShape) {
		t.Fatalf("PrepareCALU(wide) = %v, want ErrShape", err)
	}
	if _, err := PrepareCAQR(wide, opt); !errors.Is(err, ErrShape) {
		t.Fatalf("PrepareCAQR(wide) = %v, want ErrShape", err)
	}
	bad := matrix.Random(8, 8, 2)
	bad.Set(3, 4, math.NaN())
	if _, err := PrepareCALU(bad, opt); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("PrepareCALU(NaN) = %v, want ErrNonFinite", err)
	}
	if _, err := PrepareCAQR(bad, opt); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("PrepareCAQR(NaN) = %v, want ErrNonFinite", err)
	}
}
