package core

// Prepared factorization requests: the graph-construction half of
// CALU/CAQR split from execution, so a service front end can coalesce many
// small factorizations into one merged sched.Pool submission
// (sched.MergeGraphs) — aggregating small operations into fewer, larger
// ones, the communication-avoiding idea applied at the request level.
//
// The split mirrors the single-request entry points exactly: Prepare does
// validation, the finite scan and graph construction; Finish does the
// post-execution bookkeeping (deferred pivot application, per-panel error
// reporting). A prepared request is single-use: its graph is consumed by
// the submission that runs it.

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tslu"
)

// PreparedLU is one validated CALU request whose task graph has been built
// but not yet executed. Run its Graph (typically merged with others into a
// single pool submission), then call Finish.
type PreparedLU struct {
	b   *caluBuilder
	res *LUResult
}

// PrepareCALU validates a and builds its CALU task graph without executing
// it. It requires m >= n: the wide case recurses through sequential
// post-processing that cannot ride a coalesced submission (callers route
// wide matrices through CALUWithPoolCtx instead). Options.Trace is ignored
// — a merged submission's trace cannot be attributed to one request.
func PrepareCALU(a *matrix.Dense, opt Options) (*PreparedLU, error) {
	if err := validateInput(a); err != nil {
		return nil, err
	}
	var wsums []float64
	if opt.Verify {
		wsums = make([]float64, a.Cols)
	}
	maxA, err := scanFinite(a, wsums)
	if err != nil {
		return nil, err
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: prepared CALU requires m >= n, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if err := opt.normalize(a.Rows, a.Cols); err != nil {
		return nil, err
	}
	opt.Trace = false
	res := &LUResult{A: a}
	b := newCALUBuilder(a.Rows, a.Cols, &opt)
	b.bind(a, res)
	b.maxA = maxA
	if opt.Verify {
		b.wsums = wsums
		b.vsums = make([]float64, a.Cols)
		b.recomputed = make([]bool, b.nb)
	}
	b.build()
	return &PreparedLU{b: b, res: res}, nil
}

// Graph returns the request's task graph. Merging it (sched.MergeGraphs)
// empties it in place; Finish does not depend on it afterwards.
func (p *PreparedLU) Graph() *sched.Graph { return p.b.g }

// Finish completes the request after its graph ran: runErr is the combined
// submission's error (nil on a clean run). On success it applies the
// deferred row interchanges to the L blocks left of each panel and reports
// the first singular panel, matching CALUWithPoolCtx; the result
// accompanying a non-nil error is partial and must not be used. The
// Graph/Events fields of a batched result are nil: the merged submission
// owns the combined graph.
func (p *PreparedLU) Finish(runErr error) (*LUResult, error) {
	res := p.res
	res.Swaps = p.b.swaps
	for k, fb := range p.b.fellBack {
		if fb {
			res.FallbackPanels = append(res.FallbackPanels, k)
		}
	}
	for k, rc := range p.b.recomputed {
		if rc {
			res.RecomputedPanels = append(res.RecomputedPanels, k)
		}
	}
	if runErr != nil {
		return res, fmt.Errorf("core: CALU execution failed: %w", runErr)
	}
	bs := p.b.opt.BlockSize
	for k := 1; k < len(p.b.swaps); k++ {
		left := p.b.a.View(0, 0, p.b.a.Rows, k*bs)
		tslu.ApplyPivots(left, p.b.swaps[k], k*bs)
	}
	for k, err := range p.b.errs {
		if err != nil {
			return res, fmt.Errorf("core: CALU panel %d: %w", k, err)
		}
	}
	return res, nil
}

// PreparedQR is one validated CAQR request whose task graph has been built
// but not yet executed, the QR analogue of PreparedLU.
type PreparedQR struct {
	b   *caqrBuilder
	res *QRResult
}

// PrepareCAQR validates a and builds its CAQR task graph without executing
// it, under the same m >= n restriction (and Trace behavior) as PrepareCALU.
func PrepareCAQR(a *matrix.Dense, opt Options) (*PreparedQR, error) {
	if err := validateInput(a); err != nil {
		return nil, err
	}
	var wsums []float64
	if opt.Verify {
		wsums = make([]float64, a.Cols)
	}
	maxA, err := scanFinite(a, wsums)
	if err != nil {
		return nil, err
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: prepared CAQR requires m >= n, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if err := opt.normalize(a.Rows, a.Cols); err != nil {
		return nil, err
	}
	opt.Trace = false
	res := &QRResult{A: a}
	b := newCAQRBuilder(a.Rows, a.Cols, &opt)
	b.bind(a, res)
	b.maxA = maxA
	if opt.Verify {
		b.wsums = wsums
		b.u = onesVector(a.Rows)
	}
	b.build()
	return &PreparedQR{b: b, res: res}, nil
}

// Graph returns the request's task graph; see PreparedLU.Graph.
func (p *PreparedQR) Graph() *sched.Graph { return p.b.g }

// Finish completes the request after its graph ran, matching
// CAQRWithPoolCtx: the result accompanying a non-nil error is partial and
// must not be used.
func (p *PreparedQR) Finish(runErr error) (*QRResult, error) {
	if runErr != nil {
		return p.res, fmt.Errorf("core: CAQR execution failed: %w", runErr)
	}
	return p.res, nil
}
