package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func mkTask(id int) *sched.Task { return &sched.Task{ID: id} }

func ids(tasks []*sched.Task) map[int]bool {
	out := map[int]bool{}
	for _, t := range tasks {
		out[t.ID] = true
	}
	return out
}

func TestFrontierEmptyReads(t *testing.T) {
	var f frontier
	if deps := f.read(0, 100); len(deps) != 0 {
		t.Fatalf("empty frontier returned deps %v", deps)
	}
}

func TestFrontierWriteThenRead(t *testing.T) {
	var f frontier
	a := mkTask(1)
	if deps := f.write(10, 20, a); len(deps) != 0 {
		t.Fatalf("first write had deps %v", deps)
	}
	if deps := ids(f.read(15, 25)); !deps[1] {
		t.Fatal("overlapping read missed writer")
	}
	if deps := f.read(20, 30); len(deps) != 0 {
		t.Fatal("half-open boundary: [20,30) must not overlap [10,20)")
	}
	if deps := f.read(0, 10); len(deps) != 0 {
		t.Fatal("[0,10) must not overlap [10,20)")
	}
}

func TestFrontierSplit(t *testing.T) {
	// Writer A covers [0, 100); writer B overwrites [40, 60): A must remain
	// the last writer of [0,40) and [60,100).
	var f frontier
	a, b := mkTask(1), mkTask(2)
	f.write(0, 100, a)
	deps := ids(f.write(40, 60, b))
	if !deps[1] || len(deps) != 1 {
		t.Fatalf("B deps = %v", deps)
	}
	if d := ids(f.read(0, 10)); !d[1] || d[2] {
		t.Fatalf("left remnant deps = %v", d)
	}
	if d := ids(f.read(45, 50)); !d[2] || d[1] {
		t.Fatalf("middle deps = %v", d)
	}
	if d := ids(f.read(80, 90)); !d[1] || d[2] {
		t.Fatalf("right remnant deps = %v", d)
	}
}

func TestFrontierCoverRemoves(t *testing.T) {
	var f frontier
	a, b := mkTask(1), mkTask(2)
	f.write(10, 20, a)
	f.write(0, 50, b) // fully covers a
	if d := ids(f.read(12, 18)); d[1] || !d[2] {
		t.Fatalf("covered writer still visible: %v", d)
	}
	if len(f.spans) != 1 {
		t.Fatalf("spans = %v", f.spans)
	}
}

func TestFrontierTrimEdges(t *testing.T) {
	var f frontier
	a, b, c := mkTask(1), mkTask(2), mkTask(3)
	f.write(0, 50, a)
	f.write(40, 80, b) // trims a's tail
	f.write(70, 90, c) // trims b's tail
	cases := []struct {
		lo, hi int
		want   int
	}{
		{0, 10, 1}, {35, 40, 1}, {40, 45, 2}, {60, 70, 2}, {75, 85, 3},
	}
	for _, tc := range cases {
		d := ids(f.read(tc.lo, tc.hi))
		if len(d) != 1 || !d[tc.want] {
			t.Fatalf("read [%d,%d) = %v want {%d}", tc.lo, tc.hi, d, tc.want)
		}
	}
}

// Property: after any sequence of writes, (a) spans never overlap, (b) the
// last writer of any point is the most recent write covering it.
func TestFrontierProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var fr frontier
		last := map[int]int{} // point -> task id (oracle)
		for i, op := range ops {
			lo := int(op % 64)
			hi := lo + 1 + int(op/64%32)
			task := mkTask(i + 1)
			fr.write(lo, hi, task)
			for p := lo; p < hi; p++ {
				last[p] = task.ID
			}
		}
		// Check no overlaps.
		for i, s1 := range fr.spans {
			if s1.lo >= s1.hi {
				return false
			}
			for _, s2 := range fr.spans[i+1:] {
				if s1.lo < s2.hi && s2.lo < s1.hi {
					return false
				}
			}
		}
		// Check per-point last-writer agreement.
		for p, want := range last {
			d := ids(fr.read(p, p+1))
			if len(d) != 1 || !d[want] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
