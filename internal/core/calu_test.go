package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

// caluResidual factors a copy of orig and returns ||P*A - L*U||_F / ||A||_F.
func caluResidual(t *testing.T, orig *matrix.Dense, opt Options) float64 {
	t.Helper()
	a := orig.Clone()
	res, err := CALU(a, opt)
	if err != nil {
		t.Fatalf("CALU: %v", err)
	}
	l, u := lapack.ExtractLU(a)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	pa := orig.Clone()
	res.ApplyPerm(pa)
	diff := 0.0
	for j := 0; j < pa.Cols; j++ {
		x, y := pa.Col(j), prod.Col(j)
		for i := range x {
			d := x[i] - y[i]
			diff += d * d
		}
	}
	return math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300)
}

func TestCALUShapes(t *testing.T) {
	cases := []struct {
		m, n, b, tr, workers int
		tree                 tslu.Tree
	}{
		{20, 20, 5, 1, 1, tslu.Binary},
		{20, 20, 5, 2, 2, tslu.Binary},
		{64, 64, 8, 4, 4, tslu.Binary},
		{64, 64, 8, 4, 4, tslu.Flat},
		{100, 40, 10, 4, 3, tslu.Binary},
		{200, 24, 8, 8, 4, tslu.Flat},
		{37, 37, 10, 3, 2, tslu.Binary}, // ragged blocks
		{50, 7, 7, 4, 2, tslu.Binary},   // single panel
		{64, 30, 30, 2, 2, tslu.Binary}, // wide panels
		{30, 30, 1, 2, 2, tslu.Binary},  // b = 1
	}
	for _, tc := range cases {
		orig := matrix.Random(tc.m, tc.n, int64(tc.m*7+tc.n*3+tc.b))
		opt := Options{BlockSize: tc.b, PanelThreads: tc.tr, Tree: tc.tree, Workers: tc.workers, Lookahead: true}
		if res := caluResidual(t, orig, opt); res > 1e-11*float64(tc.m) {
			t.Errorf("case %+v: residual %g", tc, res)
		}
	}
}

func TestCALUDeterministicAcrossWorkers(t *testing.T) {
	orig := matrix.Random(80, 60, 42)
	var ref *matrix.Dense
	for _, workers := range []int{1, 2, 4, 8} {
		a := orig.Clone()
		_, err := CALU(a, Options{BlockSize: 10, PanelThreads: 4, Workers: workers, Lookahead: true})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = a
		} else if !a.Equal(ref) {
			t.Fatalf("workers=%d produced different bits", workers)
		}
	}
}

func TestCALUTr1MatchesGETRF(t *testing.T) {
	// With Tr = 1 tournament pivoting degenerates to GEPP per panel, so
	// CALU must choose the same pivots as blocked dgetrf with the same
	// block size.
	orig := matrix.Random(60, 60, 77)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 10, PanelThreads: 1, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := orig.Clone()
	ipiv := make([]int, 60)
	if err := lapack.GETRF(ref, ipiv, 10); err != nil {
		t.Fatal(err)
	}
	// Compare permutations via labeled vectors.
	lab1 := matrix.New(60, 1)
	for i := 0; i < 60; i++ {
		lab1.Set(i, 0, float64(i))
	}
	lab2 := lab1.Clone()
	res.ApplyPerm(lab1)
	lapack.LASWP(lab2, ipiv, 0, 60)
	if !lab1.Equal(lab2) {
		t.Fatal("Tr=1 permutation differs from GETRF")
	}
	if !a.EqualApprox(ref, 1e-10) {
		t.Fatal("Tr=1 factor differs from GETRF")
	}
}

func TestCALUSolve(t *testing.T) {
	n := 50
	orig := matrix.Random(n, n, 5)
	xWant := matrix.Random(n, 3, 6)
	rhs := blas.Mul(blas.NoTrans, blas.NoTrans, orig, xWant)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 8, PanelThreads: 4, Workers: 4, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Solve(rhs)
	if !rhs.EqualApprox(xWant, 1e-8) {
		t.Fatal("Solve produced wrong solution")
	}
}

func TestCALUSingular(t *testing.T) {
	a := matrix.New(20, 20)
	_, err := CALU(a, Options{BlockSize: 5, PanelThreads: 2, Workers: 2})
	if !errors.Is(err, tslu.ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestCALUColsPerTaskEquivalent(t *testing.T) {
	orig := matrix.Random(60, 60, 9)
	var ref *matrix.Dense
	for _, cpt := range []int{1, 2, 3, 10} {
		a := orig.Clone()
		_, err := CALU(a, Options{BlockSize: 6, PanelThreads: 4, Workers: 3, Lookahead: true, ColsPerTask: cpt})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = a
		} else if !a.EqualApprox(ref, 1e-12) {
			t.Fatalf("ColsPerTask=%d changed the result", cpt)
		}
	}
}

func TestCALULookaheadOffEquivalent(t *testing.T) {
	orig := matrix.Random(48, 48, 10)
	a1, a2 := orig.Clone(), orig.Clone()
	if _, err := CALU(a1, Options{BlockSize: 8, PanelThreads: 4, Workers: 4, Lookahead: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := CALU(a2, Options{BlockSize: 8, PanelThreads: 4, Workers: 4, Lookahead: false}); err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("look-ahead changed numerical result")
	}
}

func TestCALUTraceEvents(t *testing.T) {
	a := matrix.Random(40, 40, 11)
	res, err := CALU(a, Options{BlockSize: 10, PanelThreads: 2, Workers: 2, Trace: true, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != res.Graph.Len() {
		t.Fatalf("%d events for %d tasks", len(res.Events), res.Graph.Len())
	}
	kinds := map[string]int{}
	for _, e := range res.Events {
		kinds[res.Graph.Task(e.TaskID).Kind.String()]++
	}
	for _, k := range []string{"P", "L", "U", "S"} {
		if kinds[k] == 0 {
			t.Fatalf("no %s tasks traced: %v", k, kinds)
		}
	}
}

func TestBuildCALUGraphMatchesBoundGraph(t *testing.T) {
	opt := Options{BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true}
	g := BuildCALUGraph(64, 48, opt)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(64, 48, 12)
	res, err := CALU(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != res.Graph.Len() || g.Edges() != res.Graph.Edges() {
		t.Fatalf("graph-only %d tasks/%d edges, bound %d/%d",
			g.Len(), g.Edges(), res.Graph.Len(), res.Graph.Edges())
	}
	// Flop annotations must be non-negative everywhere.
	for _, task := range g.Tasks() {
		if task.Flops < 0 {
			t.Fatalf("task %q has negative flops", task.Label)
		}
	}
}

func TestCALUGraphTaskCount(t *testing.T) {
	// For a square N-block matrix with Tr leaves per panel and a binary
	// tree: per iteration K (0-based, nb total): Tr leaves + (Tr-1) merges
	// + 1 finalize + Tr L-tasks (while rows remain) + (nb-K-1) U
	// + Tr*(nb-K-1) S, approximately. Sanity-check overall scale.
	opt := Options{BlockSize: 10, PanelThreads: 4, Workers: 1, Lookahead: true}
	g := BuildCALUGraph(400, 40, opt)
	if g.Len() < 40 || g.Len() > 200 {
		t.Fatalf("unexpected task count %d", g.Len())
	}
}

func TestCALUWilkinsonGrowthTr1(t *testing.T) {
	n := 16
	w := matrix.Wilkinson(n)
	a := w.Clone()
	if _, err := CALU(a, Options{BlockSize: 4, PanelThreads: 1, Workers: 2, Lookahead: true}); err != nil {
		t.Fatal(err)
	}
	g := lapack.GrowthFactor(a, w)
	want := math.Pow(2, float64(n-1))
	if math.Abs(g-want)/want > 1e-10 {
		t.Fatalf("growth %v want %v", g, want)
	}
}

func TestCALUPropertySolve(t *testing.T) {
	f := func(seed int64, trRaw, bRaw, wRaw uint8) bool {
		n := 16 + int(uint64(seed)%32)
		tr := int(trRaw)%6 + 1
		bs := int(bRaw)%12 + 1
		workers := int(wRaw)%4 + 1
		orig := matrix.DiagonallyDominant(n, seed)
		x := matrix.Random(n, 1, seed+1)
		rhs := blas.Mul(blas.NoTrans, blas.NoTrans, orig, x)
		a := orig.Clone()
		res, err := CALU(a, Options{BlockSize: bs, PanelThreads: tr, Workers: workers, Lookahead: true})
		if err != nil {
			return false
		}
		res.Solve(rhs)
		return rhs.EqualApprox(x, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCALUHybridTree(t *testing.T) {
	for _, tc := range []struct{ m, n, b, tr, workers int }{
		{64, 64, 8, 4, 4},
		{200, 24, 8, 8, 4},
		{160, 16, 8, 16, 2},
	} {
		orig := matrix.Random(tc.m, tc.n, int64(tc.m*5+tc.n))
		opt := Options{BlockSize: tc.b, PanelThreads: tc.tr, Tree: tslu.Hybrid, Workers: tc.workers, Lookahead: true}
		if res := caluResidual(t, orig, opt); res > 1e-11*float64(tc.m) {
			t.Errorf("hybrid case %+v: residual %g", tc, res)
		}
	}
}

func TestCALUSolveTranspose(t *testing.T) {
	n := 40
	orig := matrix.Random(n, n, 51)
	xWant := matrix.Random(n, 2, 52)
	rhs := blas.Mul(blas.Trans, blas.NoTrans, orig, xWant)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	res.SolveTranspose(rhs)
	if !rhs.EqualApprox(xWant, 1e-8) {
		t.Fatal("SolveTranspose wrong")
	}
}

func TestCALUApplyPermInverse(t *testing.T) {
	n := 30
	orig := matrix.Random(n, n, 53)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 7, PanelThreads: 3, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	v := matrix.Random(n, 1, 54)
	saved := v.Clone()
	res.ApplyPerm(v)
	res.ApplyPermInverse(v)
	if !v.Equal(saved) {
		t.Fatal("ApplyPermInverse did not invert ApplyPerm")
	}
}

func TestCALURCondOrdering(t *testing.T) {
	opt := Options{BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true}
	rcond := func(a *matrix.Dense) float64 {
		anorm := a.NormOne()
		lu := a.Clone()
		res, err := CALU(lu, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.RCond(anorm)
	}
	well := rcond(matrix.DiagonallyDominant(48, 61))
	ill := rcond(matrix.NearSingular(48, 48, 1e-10, 62))
	if well < 1e-4 || ill > 1e-6 || ill >= well {
		t.Fatalf("rcond ordering wrong: well=%g ill=%g", well, ill)
	}
}

func TestCALUSolveRefinedImproves(t *testing.T) {
	n := 64
	orig := matrix.Graded(n, n, 1.3, 63) // moderately ill-conditioned
	xWant := matrix.Random(n, 1, 64)
	rhs := blas.Mul(blas.NoTrans, blas.NoTrans, orig, xWant)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 16, PanelThreads: 4, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	refined := rhs.Clone()
	corr := res.SolveRefined(orig, refined, 3)
	if !refined.EqualApprox(xWant, 1e-6) {
		t.Fatal("refined solution inaccurate")
	}
	if corr > 1e-8*xWant.MaxAbs()+1e-12 {
		t.Fatalf("refinement did not converge: last correction %g", corr)
	}
}

func TestCALUWideMatrix(t *testing.T) {
	// m < n: factor the leading square block, finish U on the right.
	m, n := 24, 60
	orig := matrix.Random(m, n, 81)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 8, PanelThreads: 3, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	l, u := lapack.ExtractLU(a)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	pa := orig.Clone()
	res.ApplyPerm(pa)
	if !pa.EqualApprox(prod, 1e-11*float64(n)) {
		t.Fatal("wide CALU: P*A != L*U")
	}
}

func TestCALUInverse(t *testing.T) {
	n := 48
	orig := matrix.Random(n, n, 92)
	a := orig.Clone()
	res, err := CALU(a, Options{BlockSize: 12, PanelThreads: 4, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	inv := res.Inverse()
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, orig, inv)
	if !prod.EqualApprox(matrix.Identity(n), 1e-9*float64(n)) {
		t.Fatal("A * A^{-1} != I")
	}
}

func TestCALUWorkStealingIdenticalResult(t *testing.T) {
	orig := matrix.Random(72, 72, 93)
	a1, a2 := orig.Clone(), orig.Clone()
	base := Options{BlockSize: 12, PanelThreads: 4, Workers: 4, Lookahead: true}
	if _, err := CALU(a1, base); err != nil {
		t.Fatal(err)
	}
	ws := base
	ws.WorkStealing = true
	if _, err := CALU(a2, ws); err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("work-stealing changed numerical result")
	}
}

func TestCAQRWorkStealingIdenticalResult(t *testing.T) {
	orig := matrix.Random(72, 48, 94)
	a1, a2 := orig.Clone(), orig.Clone()
	base := Options{BlockSize: 12, PanelThreads: 4, Workers: 4, Lookahead: true}
	mustCAQR(t, a1, base)
	ws := base
	ws.WorkStealing = true
	mustCAQR(t, a2, ws)
	if !a1.Equal(a2) {
		t.Fatal("work-stealing changed numerical result")
	}
}

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions(500, 8)
	if opt.BlockSize != 100 || opt.PanelThreads != 8 || opt.Workers != 8 || !opt.Lookahead {
		t.Fatalf("defaults: %+v", opt)
	}
	small := DefaultOptions(30, 0)
	if small.BlockSize != 30 || small.Workers != 1 {
		t.Fatalf("small defaults: %+v", small)
	}
}

func TestOptionsNormalizeClamps(t *testing.T) {
	opt := Options{BlockSize: 500, PanelThreads: -3, Workers: 0, ColsPerTask: -1}
	if err := opt.normalize(100, 40); err != nil {
		t.Fatal(err)
	}
	if opt.BlockSize != 40 || opt.PanelThreads != 1 || opt.Workers != 1 || opt.ColsPerTask != 1 {
		t.Fatalf("normalized: %+v", opt)
	}
	bad := Options{}
	if err := bad.normalize(10, 20); !errors.Is(err, ErrShape) {
		t.Fatalf("normalize(10, 20) = %v, want ErrShape", err)
	}
}

// TestCALUShapeErrors checks that malformed inputs surface as
// ErrShape-wrapped errors instead of panics.
func TestCALUShapeErrors(t *testing.T) {
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("validation panicked: %v", p)
		}
	}()
	if _, err := CALU(nil, Options{}); !errors.Is(err, ErrShape) {
		t.Fatalf("CALU(nil) = %v, want ErrShape", err)
	}
	if _, err := CALU(&matrix.Dense{}, Options{}); !errors.Is(err, ErrShape) {
		t.Fatalf("CALU(empty) = %v, want ErrShape", err)
	}
}
