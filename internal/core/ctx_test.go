package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/sched"
)

func TestCALUWithPoolCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := matrix.Random(60, 30, 1)
	orig := a.Clone()
	_, err := CALUWithPoolCtx(ctx, a, Options{BlockSize: 8, Workers: 2}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CALUWithPoolCtx = %v, want context.Canceled", err)
	}
	// Rejected before submission: not a single task ran, a is untouched.
	if !a.Equal(orig) {
		t.Fatal("pre-cancelled CALU modified the input matrix")
	}
}

func TestCAQRWithPoolCtxDeadlineAlreadyExpired(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	a := matrix.Random(60, 30, 2)
	_, err := CAQRWithPoolCtx(ctx, a, Options{BlockSize: 8, Workers: 2}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CAQRWithPoolCtx = %v, want context.DeadlineExceeded", err)
	}
}

// TestCALUWithPoolCtxWideMatrixPreCancelled covers the wide-matrix (m < n)
// recursion path: the context error must propagate out of the inner call.
func TestCALUWithPoolCtxWideMatrixPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := matrix.Random(20, 50, 3)
	res, err := CALUWithPoolCtx(ctx, a, Options{BlockSize: 8, Workers: 2}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("wide CALUWithPoolCtx = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("wide CALUWithPoolCtx returned a partial result alongside the error")
	}
}

// TestCtxCancelledSharedPoolStaysUsable cancels one factorization on a
// shared pool and checks the pool still serves a fresh one correctly.
func TestCtxCancelledSharedPoolStaysUsable(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	opt := Options{BlockSize: 8, PanelThreads: 2, Workers: 2, Lookahead: true}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CALUWithPoolCtx(ctx, matrix.Random(80, 40, 4), opt, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CALU = %v, want context.Canceled", err)
	}

	a := matrix.Random(80, 40, 5)
	want := a.Clone()
	if _, err := CALU(want, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := CALUWithPool(a, opt, pool); err != nil {
		t.Fatalf("pool unusable after cancelled submission: %v", err)
	}
	if !a.Equal(want) {
		t.Fatal("factors after a cancelled submission differ from a fresh run")
	}
}
