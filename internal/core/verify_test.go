package core_test

// ABFT verify-mode tests: clean runs must be bit-identical to unverified
// runs with zero false positives; injected silent corruption must be
// detected at a panel boundary and either repaired in place (CALU panel
// recompute) or escalated as ErrCorrupted. These run as an external test
// package so they can drive the factorizations through a sched.Pool with
// the fault injector's post-run corruption hook installed.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func randDense(rng *rand.Rand, r, c int) *matrix.Dense {
	a := matrix.New(r, c)
	for j := 0; j < c; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return a
}

func verifyOpts(n int) core.Options {
	opt := core.DefaultOptions(n, 4)
	opt.BlockSize = 16
	opt.PanelThreads = 2
	opt.Verify = true
	return opt
}

// solveCheck factors a clone of a with the given pool/options and checks the
// solution of A x = a*ones against ones.
func solveCheck(t *testing.T, a *matrix.Dense, opt core.Options, pool *sched.Pool) *core.LUResult {
	t.Helper()
	n := a.Cols
	xTrue := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		xTrue.Set(i, 0, 1)
	}
	rhs := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j)
		}
		rhs.Set(i, 0, s)
	}
	res, err := core.CALUWithPool(a.Clone(), opt, pool)
	if err != nil {
		t.Fatalf("CALU: %v", err)
	}
	res.Solve(rhs)
	for i := 0; i < n; i++ {
		if d := math.Abs(rhs.At(i, 0) - 1); d > 1e-6 {
			t.Fatalf("solution off at %d by %g", i, d)
		}
	}
	return res
}

// TestCALUVerifyCleanBitIdentical pins the zero-false-positive guarantee:
// verify mode on a clean run must neither flag anything nor perturb the
// factors.
func TestCALUVerifyCleanBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randDense(rng, 60, 60)
	opt := verifyOpts(60)
	plain := opt
	plain.Verify = false
	r1, err := core.CALU(a.Clone(), plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.CALU(a.Clone(), opt)
	if err != nil {
		t.Fatalf("verify mode flagged a clean run: %v", err)
	}
	if len(r2.RecomputedPanels) != 0 {
		t.Fatalf("clean run recomputed panels %v", r2.RecomputedPanels)
	}
	for j := 0; j < 60; j++ {
		c1, c2 := r1.A.Col(j), r2.A.Col(j)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("factors differ at (%d,%d): %g vs %g", i, j, c1[i], c2[i])
			}
		}
	}
}

// TestCAQRVerifyCleanBitIdentical is the QR analogue.
func TestCAQRVerifyCleanBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randDense(rng, 80, 48)
	opt := verifyOpts(48)
	plain := opt
	plain.Verify = false
	r1, err := core.CAQR(a.Clone(), plain)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.CAQR(a.Clone(), opt)
	if err != nil {
		t.Fatalf("verify mode flagged a clean run: %v", err)
	}
	for j := 0; j < 48; j++ {
		c1, c2 := r1.A.Col(j), r2.A.Col(j)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("factors differ at (%d,%d)", i, j)
			}
		}
	}
}

// TestCALUVerifyWideClean covers the wide-matrix recursion with verify on.
func TestCALUVerifyWideClean(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randDense(rng, 40, 70)
	opt := verifyOpts(40)
	if _, err := core.CALU(a, opt); err != nil {
		t.Fatalf("wide verify run failed: %v", err)
	}
}

// TestCALUVerifyRecoversTournamentCorruption injects a bit flip into one
// tournament leaf's candidate rows. The finalize checksum must catch it and
// recompute the panel from its pristine source, yielding a still-correct
// factorization and recording the panel.
func TestCALUVerifyRecoversTournamentCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randDense(rng, 60, 60)
	opt := verifyOpts(60)
	var detected, recomputed int
	opt.OnCorruption = func(int) { detected++ }
	opt.OnPanelRecompute = func(int) { recomputed++ }

	pool := sched.NewPool(4)
	defer pool.Close()
	// Perturb (rather than a bit flip) guarantees the corrupted candidate row
	// is huge, wins its tournament and lands in the panel factor.
	inj := fault.New(1, fault.Rule{Kind: fault.Corrupt, Match: "P k=1 leaf=0", Rate: 1, Count: 1, Perturb: 1e6})
	pool.SetPostInterceptor(inj.InterceptPost)

	res := solveCheck(t, a, opt, pool)
	if got := inj.Injected(fault.Corrupt); got != 1 {
		t.Fatalf("injected %d corruptions, want 1", got)
	}
	if detected != 1 || recomputed != 1 {
		t.Fatalf("detected=%d recomputed=%d, want 1/1", detected, recomputed)
	}
	if len(res.RecomputedPanels) != 1 || res.RecomputedPanels[0] != 1 {
		t.Fatalf("RecomputedPanels = %v, want [1]", res.RecomputedPanels)
	}
	// The recompute must be visible in the trace labels.
	found := false
	for _, tk := range res.Graph.Tasks() {
		if tk.Label == "F k=1 [abft-recompute]" {
			found = true
		}
	}
	if !found {
		t.Fatal("no [abft-recompute] label in the executed graph")
	}
}

// TestCALUVerifyEscalatesUpdateCorruption injects a bit flip into a trailing
// update's output. There is no pristine source to recompute from, so the
// column checksum must escalate to ErrCorrupted.
func TestCALUVerifyEscalatesUpdateCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randDense(rng, 60, 60)
	opt := verifyOpts(60)

	pool := sched.NewPool(4)
	defer pool.Close()
	inj := fault.New(2, fault.Rule{Kind: fault.Corrupt, Match: "S k=0 i=0 j=2", Rate: 1, Count: 1})
	pool.SetPostInterceptor(inj.InterceptPost)

	_, err := core.CALUWithPool(a.Clone(), opt, pool)
	if got := inj.Injected(fault.Corrupt); got != 1 {
		t.Fatalf("injected %d corruptions, want 1", got)
	}
	if !errors.Is(err, core.ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
}

// TestCAQRVerifyEscalatesCorruption: QR panels are factored in place, so
// any detected corruption escalates.
func TestCAQRVerifyEscalatesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randDense(rng, 64, 48)
	opt := verifyOpts(48)

	for _, match := range []string{"P k=0 leaf=1", "S k=0 leaf=0 j=1"} {
		pool := sched.NewPool(4)
		inj := fault.New(3, fault.Rule{Kind: fault.Corrupt, Match: match, Rate: 1, Count: 1})
		pool.SetPostInterceptor(inj.InterceptPost)
		_, err := core.CAQRWithPool(a.Clone(), opt, pool)
		pool.Close()
		if got := inj.Injected(fault.Corrupt); got != 1 {
			t.Fatalf("%s: injected %d corruptions, want 1", match, got)
		}
		if !errors.Is(err, core.ErrCorrupted) {
			t.Fatalf("%s: err = %v, want ErrCorrupted", match, err)
		}
	}
}

// TestCALUVerifySingularNotMasked: a genuinely singular input must surface
// as ErrSingular even with verify on — the checksum chain goes inert rather
// than converting a permanent error into a retryable one.
func TestCALUVerifySingularNotMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := randDense(rng, 48, 48)
	// Zero out panel 1's columns: they stay exactly zero through the trailing
	// updates, so panel 1 is rank deficient while the rest of the matrix
	// exercises the live checksum chain around the poisoned panel.
	for j := 16; j < 32; j++ {
		clear(a.Col(j))
	}
	opt := verifyOpts(48)
	_, err := core.CALU(a, opt)
	if !errors.Is(err, core.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if errors.Is(err, core.ErrCorrupted) {
		t.Fatalf("singular input misreported as corruption: %v", err)
	}
}

// TestCALUVerifyBudgetExhausted: with local recovery disabled every
// detection escalates immediately.
func TestCALUVerifyBudgetExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	a := randDense(rng, 60, 60)
	opt := verifyOpts(60)
	opt.MaxPanelRecomputes = -1

	pool := sched.NewPool(4)
	defer pool.Close()
	inj := fault.New(1, fault.Rule{Kind: fault.Corrupt, Match: "P k=1 leaf=0", Rate: 1, Count: 1, Perturb: 1e6})
	pool.SetPostInterceptor(inj.InterceptPost)

	_, err := core.CALUWithPool(a.Clone(), opt, pool)
	if !errors.Is(err, core.ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
}
