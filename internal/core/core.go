// Package core implements the paper's contribution: multithreaded
// communication-avoiding LU (CALU, Algorithm 1) and QR (CAQR, Algorithm 2)
// factorizations for multicore architectures.
//
// Both algorithms traverse the matrix by block columns of width b. The
// panel factorization is a TSLU/TSQR reduction over Tr block rows, and all
// work — tournament/tree nodes (task P), panel L blocks (task L), pivoting
// plus U rows (task U) and trailing-matrix updates (task S) — is expressed
// as a task dependency graph executed by the dynamic priority scheduler in
// package sched. Priorities realize the paper's look-ahead-of-1: tasks are
// ordered by the block column they touch, so the moment column K+1 is up to
// date the next panel factorization starts, hiding panel latency behind
// trailing updates.
//
// The task graphs can also be built without binding numeric closures
// (BuildCALUGraph / BuildCAQRGraph), annotated with canonical flop counts
// and kernel classes; package simsched executes such graphs in virtual time
// on a modeled machine, which is how the paper-scale experiments are
// reproduced on hosts with fewer cores.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tslu"
)

// ErrShape reports a malformed input matrix: nil, empty, or otherwise
// unusable for the requested factorization. It is returned (wrapped with
// the offending dimensions) rather than panicking, so service callers can
// reject bad requests without tearing down the process.
var ErrShape = errors.New("core: invalid matrix shape")

// ErrSingular is re-exported from tslu: a panel was rank deficient.
// Errors returned by CALU wrap it, so errors.Is(err, ErrSingular) works.
var ErrSingular = tslu.ErrSingular

// ErrNonFinite reports a NaN or Inf entry in the input matrix. CALU and
// CAQR reject such inputs before building the task graph: a single
// non-finite entry silently poisons the whole factorization (pivot
// comparisons with NaN are false, so even the pivoting goes wrong), and no
// amount of retrying helps — it is a permanent input error, not a
// transient one.
var ErrNonFinite = errors.New("core: matrix contains a non-finite value")

// ErrCorrupted reports that verify mode (Options.Verify) detected silent
// data corruption — a checksum invariant failed at a panel boundary — and
// in-place recovery (recomputing the offending panel from its still-pristine
// source) either was not possible or disagreed again. Unlike ErrSingular or
// ErrNonFinite this is a transient fault, not a property of the input:
// retrying the whole factorization from the original matrix is the correct
// response, and factor.Engine's retry policy treats it that way.
var ErrCorrupted = errors.New("core: checksum mismatch, factorization corrupted")

// Options configures CALU and CAQR.
type Options struct {
	// BlockSize is the panel width b. The paper uses b = min(100, n).
	BlockSize int
	// PanelThreads is Tr, the number of block rows in the panel reduction.
	// Tr = 1 degenerates to a sequential panel (GEPP / recursive QR).
	PanelThreads int
	// Tree is the reduction tree shape (binary or flat height-1).
	Tree tslu.Tree
	// Workers is the number of scheduler goroutines (cores). Defaults to 1.
	Workers int
	// Lookahead enables the paper's look-ahead-of-1 priority scheme
	// (column-ordered priorities). Disabled, tasks run iteration by
	// iteration, which reintroduces the panel idle bubbles of Fig. 3.
	Lookahead bool
	// ColsPerTask groups this many b-wide block columns into each U/S
	// task (the paper's future-work two-level blocking B = ColsPerTask*b).
	// Zero or one keeps the paper's one-column-per-task decomposition.
	ColsPerTask int
	// WorkStealing runs the graph on the Cilk-style work-stealing runner
	// instead of the paper's centralized priority scheduler. Results are
	// bit-identical (tasks write disjoint regions); only the schedule
	// changes. For the scheduling ablation.
	WorkStealing bool
	// GrowthThreshold arms CALU's pivot-growth guardrail: after each
	// panel's tournament, if the composite factor's max|U| exceeds
	// GrowthThreshold * max|A| the panel is re-factored in place with
	// straight partial pivoting (GEPP), whose growth bound 2^k is far
	// stronger than tournament pivoting's 2^(b*H), and the panel index is
	// recorded in LUResult.FallbackPanels. Zero or negative disables the
	// monitor. CAQR ignores it (Householder QR is unconditionally stable).
	GrowthThreshold float64
	// StructuredTree uses the triangle-on-triangle TTQRT kernel for
	// eligible CAQR tree merges instead of the paper's dense stacked QR —
	// the optimization the paper's conclusion anticipates ("we are still
	// working on improving the performance of CAQR"). LU is unaffected.
	StructuredTree bool
	// Trace records per-task execution events (Figs. 3-4).
	Trace bool
	// Verify arms algorithm-based fault tolerance: column checksums of the
	// input are captured up front and the factorization's checksum
	// invariants are re-checked at every panel boundary (see internal/abft).
	// A mismatch in a CALU panel's own factors triggers an in-place
	// recomputation of that panel from its still-pristine source (bounded
	// by MaxPanelRecomputes); a mismatch that recomputation cannot clear —
	// or any mismatch in CAQR, whose panels are factored in place — fails
	// the run with an error wrapping ErrCorrupted, which is retryable.
	Verify bool
	// VerifyTolerance scales the checksum comparison tolerance: a column's
	// predicted and actual checksums may differ by up to
	// VerifyTolerance * m * max|A|. Zero defaults to 1e-8 — roughly six
	// orders of magnitude above the identity's roundoff noise for the sizes
	// this library targets, and twelve below a flipped exponent bit.
	VerifyTolerance float64
	// MaxPanelRecomputes caps how many panels one CALU run may recompute
	// before escalating to ErrCorrupted. Zero defaults to 2; negative
	// disables local recovery (every detection escalates).
	MaxPanelRecomputes int
	// OnCorruption, when set, is called with the panel index every time a
	// checksum mismatch is detected. Called from scheduler workers —
	// implementations must be safe for concurrent use.
	OnCorruption func(panel int)
	// OnPanelRecompute, when set, is called with the panel index after a
	// detected corruption was repaired by recomputing the panel in place.
	// Same concurrency contract as OnCorruption.
	OnPanelRecompute func(panel int)
}

// DefaultOptions returns the paper's defaults for an n-column matrix on
// `workers` cores: b = min(100, n), Tr = workers, binary tree, look-ahead on.
func DefaultOptions(n, workers int) Options {
	b := 100
	if n < b {
		b = n
	}
	if workers < 1 {
		workers = 1
	}
	return Options{
		BlockSize:    b,
		PanelThreads: workers,
		Tree:         tslu.Binary,
		Workers:      workers,
		Lookahead:    true,
	}
}

func (o *Options) normalize(m, n int) error {
	if m < 1 || n < 1 {
		return fmt.Errorf("%w: %dx%d matrix", ErrShape, m, n)
	}
	if m < n {
		return fmt.Errorf("%w: m >= n required, got %dx%d", ErrShape, m, n)
	}
	if o.BlockSize <= 0 {
		o.BlockSize = min(100, n)
	}
	if o.BlockSize > n {
		o.BlockSize = n
	}
	if o.PanelThreads < 1 {
		o.PanelThreads = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.ColsPerTask < 1 {
		o.ColsPerTask = 1
	}
	if o.VerifyTolerance <= 0 {
		o.VerifyTolerance = 1e-8
	}
	if o.MaxPanelRecomputes == 0 {
		o.MaxPanelRecomputes = 2
	}
	return nil
}

// validateInput performs the shape checks shared by CALU and CAQR entry
// points (the wide m < n case is legal there and handled by recursion, so
// it is not rejected here).
func validateInput(a *matrix.Dense) error {
	if a == nil {
		return fmt.Errorf("%w: nil matrix", ErrShape)
	}
	if a.Rows < 1 || a.Cols < 1 {
		return fmt.Errorf("%w: %dx%d matrix", ErrShape, a.Rows, a.Cols)
	}
	return nil
}

// scanFinite walks the matrix once, returning an error wrapping
// ErrNonFinite (with the first offending coordinate) if any entry is NaN
// or Inf, and max|A| otherwise. The max feeds the pivot-growth guardrail's
// denominator, so the pre-factorization scan does double duty in one pass.
// A non-nil colsums (length >= a.Cols) additionally receives the column
// sums of the pristine input — the ABFT checksum vector verify mode checks
// the finished factors against.
func scanFinite(a *matrix.Dense, colsums []float64) (float64, error) {
	maxA := 0.0
	for j := 0; j < a.Cols; j++ {
		sum := 0.0
		for i, v := range a.Col(j) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("%w: A(%d,%d) = %v", ErrNonFinite, i, j, v)
			}
			sum += v
			if v = math.Abs(v); v > maxA {
				maxA = v
			}
		}
		if colsums != nil {
			colsums[j] = sum
		}
	}
	return maxA, nil
}

// priority computes the scheduling priority of a task touching block column
// col (0-based) with the given within-column bonus. With look-ahead,
// priorities are column-ordered: everything touching an earlier column
// outranks everything touching a later one, which makes the critical path
// (panel of column K+1 right after its update) run first. Without
// look-ahead, priorities are iteration-ordered, serializing iterations.
func priority(opt *Options, nBlocks, iter, col, bonus int) int {
	if opt.Lookahead {
		return (nBlocks-col)*1000 + bonus
	}
	return (nBlocks-iter)*1000 + bonus
}

// runGraph executes a built graph on the given pool, or — when pool is nil
// — on a private one-shot pool sized by opt.Workers. Task panics are
// captured per submission and come back as the error; with a shared pool a
// failed submission leaves the pool usable. Cancellation of ctx is observed
// between tasks: the submission drains without running its remaining tasks
// and the returned error wraps ctx's error.
func runGraph(ctx context.Context, g *sched.Graph, opt *Options, pool *sched.Pool) ([]sched.Event, error) {
	if pool == nil {
		pool = sched.NewPool(opt.Workers)
		defer pool.Close()
	}
	so := sched.SubmitOptions{Trace: opt.Trace}
	if opt.WorkStealing {
		so.Policy = sched.Stealing
	}
	sub, err := pool.SubmitCtx(ctx, g, so)
	if err != nil {
		return nil, err
	}
	return sub.Wait()
}

// Within-column task bonuses: the panel chain (P then L) outranks U, which
// outranks S, mirroring the paper's "highest priority to tasks on the
// critical path".
const (
	bonusFinalize = 95
	bonusP        = 90
	bonusL        = 85
	bonusU        = 80
	bonusS        = 70
	bonusV        = 60 // checksum verification rides the schedule's slack
)

// span is a half-open row interval [lo, hi) with the task that last wrote it.
type span struct {
	lo, hi int
	task   *sched.Task
}

// frontier tracks, for one block column, which task last wrote each row
// range. It is how cross-iteration dependencies (an S update of column J at
// iteration K feeding the panel or update of column J at iteration K+1) are
// discovered while building the graph on the fly.
type frontier struct {
	spans []span
}

// overlapping returns the tasks whose spans overlap [lo, hi).
func (f *frontier) overlapping(lo, hi int) []*sched.Task {
	var deps []*sched.Task
	for _, s := range f.spans {
		if s.lo < hi && lo < s.hi {
			deps = append(deps, s.task)
		}
	}
	return deps
}

// write records t as the last writer of [lo, hi), trimming or splitting any
// previous spans it overlaps, and returns the tasks t must depend on.
func (f *frontier) write(lo, hi int, t *sched.Task) []*sched.Task {
	deps := f.overlapping(lo, hi)
	out := f.spans[:0]
	var extra []span
	for _, s := range f.spans {
		switch {
		case s.hi <= lo || hi <= s.lo: // disjoint
			out = append(out, s)
		case s.lo < lo && s.hi > hi: // t's range splits s
			out = append(out, span{s.lo, lo, s.task})
			extra = append(extra, span{hi, s.hi, s.task})
		case s.lo < lo: // s's tail overwritten
			out = append(out, span{s.lo, lo, s.task})
		case s.hi > hi: // s's head overwritten
			out = append(out, span{hi, s.hi, s.task})
		default: // fully covered
		}
	}
	f.spans = append(append(out, extra...), span{lo, hi, t})
	return deps
}

// read returns the tasks a reader of [lo, hi) must depend on, without
// changing the frontier. Anti-dependencies (a later writer must wait for
// this reader) are handled structurally by the algorithms: the only readers
// of a region that is later rewritten are tasks the rewriter already
// depends on transitively.
func (f *frontier) read(lo, hi int) []*sched.Task {
	return f.overlapping(lo, hi)
}
