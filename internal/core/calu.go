package core

import (
	"context"
	"fmt"

	"repro/internal/abft"
	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/scratch"
	"repro/internal/tslu"
)

// LUResult is the outcome of a CALU factorization.
type LUResult struct {
	// A holds the in-place factors: L unit lower (below the diagonal) and
	// U upper, with row interchanges already applied (so P*Aorig = L*U).
	A *matrix.Dense
	// Swaps holds one swap list per iteration, with absolute row indices;
	// iteration K's list starts at row K*b. Together they define P.
	Swaps [][]int
	// Events is the execution trace, non-nil only when Options.Trace is set.
	Events []sched.Event
	// Graph is the executed task graph (retained for inspection).
	Graph *sched.Graph
	// FallbackPanels lists the iterations whose panel the pivot-growth
	// guardrail re-factored with GEPP (see Options.GrowthThreshold), in
	// ascending order. Empty when the guardrail is off or never tripped.
	FallbackPanels []int
	// RecomputedPanels lists the iterations whose panel verify mode
	// (Options.Verify) recomputed in place after a checksum mismatch, in
	// ascending order. Empty when verify is off or nothing was corrupted.
	RecomputedPanels []int
}

// ApplyPerm applies the factorization's full row permutation P to b
// (b := P*b), as needed to solve A x = y via L U x = P y.
func (r *LUResult) ApplyPerm(b *matrix.Dense) {
	for k, sw := range r.Swaps {
		tslu.ApplyPivots(b, sw, r.swapOrigin(k))
	}
}

// swapOrigin returns the row at which iteration k's swaps anchor.
func (r *LUResult) swapOrigin(k int) int {
	at := 0
	for i := 0; i < k; i++ {
		at += len(r.Swaps[i])
	}
	return at
}

// Solve solves A*x = rhs for square factored A, overwriting rhs with x.
func (r *LUResult) Solve(rhs *matrix.Dense) {
	if r.A.Rows != r.A.Cols {
		panic(fmt.Errorf("%w: Solve needs square matrix, got %dx%d", ErrShape, r.A.Rows, r.A.Cols))
	}
	r.ApplyPerm(rhs)
	blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, r.A, rhs)
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, r.A, rhs)
}

// CALU computes the communication-avoiding LU factorization with tournament
// pivoting of the m x n matrix a, in place, using the multithreaded
// Algorithm 1 of the paper: dynamic scheduling of P/L/U/S tasks with
// look-ahead priorities. It returns an error wrapping ErrShape for
// malformed inputs and one wrapping ErrSingular if a panel is rank
// deficient.
//
// Wide matrices (m < n) are handled LAPACK-style: the leading m x m block
// is factored, and the remaining columns are overwritten with
// U(:, m:) = L^{-1} P A(:, m:).
func CALU(a *matrix.Dense, opt Options) (*LUResult, error) {
	return CALUWithPool(a, opt, nil)
}

// CALUWithPool is CALU executed on a caller-owned persistent worker pool:
// the task graph is built as usual and submitted to pool, so many
// factorizations can share (and concurrently occupy) one set of worker
// goroutines. opt.Workers is ignored — the pool's size rules. A nil pool
// falls back to a private one-shot pool, which is exactly CALU.
func CALUWithPool(a *matrix.Dense, opt Options, pool *sched.Pool) (*LUResult, error) {
	return CALUWithPoolCtx(context.Background(), a, opt, pool) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// CALUWithPoolCtx is CALUWithPool bound to a context: once ctx is cancelled
// or its deadline expires, the submission stops dispatching tasks (ones
// already executing finish; the rest are drained unrun) and the call
// returns an error wrapping ctx's error. The returned result, if non-nil,
// is partial and must not be used; the pool itself stays fully usable and
// concurrent submissions are unaffected. Cancelled runs leak nothing: every
// internal/scratch workspace is acquired and released inside a single
// task's Run, so skipped tasks never acquire one.
func CALUWithPoolCtx(ctx context.Context, a *matrix.Dense, opt Options, pool *sched.Pool) (*LUResult, error) {
	if err := validateInput(a); err != nil {
		return nil, err
	}
	var wsums []float64
	if opt.Verify {
		wsums = make([]float64, a.Cols)
	}
	maxA, err := scanFinite(a, wsums)
	if err != nil {
		return nil, err
	}
	if a.Rows < a.Cols {
		left := a.View(0, 0, a.Rows, a.Rows)
		res, err := CALUWithPoolCtx(ctx, left, opt, pool)
		if res == nil || err != nil {
			return nil, err
		}
		res.A = a
		right := a.View(0, a.Rows, a.Rows, a.Cols-a.Rows)
		for k, sw := range res.Swaps {
			tslu.ApplyPivots(right, sw, res.swapOrigin(k))
		}
		blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, left, right)
		return res, err
	}
	if err := opt.normalize(a.Rows, a.Cols); err != nil {
		return nil, err
	}
	res := &LUResult{A: a}
	b := newCALUBuilder(a.Rows, a.Cols, &opt)
	b.bind(a, res)
	b.maxA = maxA
	if opt.Verify {
		b.wsums = wsums[:a.Cols]
		b.vsums = make([]float64, a.Cols)
		b.recomputed = make([]bool, b.nb)
	}
	b.build()
	events, err := runGraph(ctx, b.g, &opt, pool)
	res.Events = events
	res.Graph = b.g
	res.Swaps = b.swaps
	for k, fb := range b.fellBack {
		if fb {
			res.FallbackPanels = append(res.FallbackPanels, k)
		}
	}
	for k, rc := range b.recomputed {
		if rc {
			res.RecomputedPanels = append(res.RecomputedPanels, k)
		}
	}
	if err != nil {
		return res, fmt.Errorf("core: CALU execution failed: %w", err)
	}
	// Deferred application of row interchanges to the L blocks left of each
	// panel (Algorithm 1 line 41).
	for k := 1; k < len(b.swaps); k++ {
		left := a.View(0, 0, a.Rows, k*opt.BlockSize)
		tslu.ApplyPivots(left, b.swaps[k], k*opt.BlockSize)
	}
	for k, err := range b.errs {
		if err != nil {
			return res, fmt.Errorf("core: CALU panel %d: %w", k, err)
		}
	}
	return res, nil
}

// BuildCALUGraph constructs the CALU task graph for an m x n matrix without
// binding numeric work: tasks carry only flop counts, kernel classes and
// priorities. Package simsched executes such graphs in virtual time for the
// paper-scale modeled experiments. It panics on malformed dimensions, since
// the experiment code that calls it is in full control of them.
func BuildCALUGraph(m, n int, opt Options) *sched.Graph {
	if err := opt.normalize(m, n); err != nil {
		panic(err)
	}
	b := newCALUBuilder(m, n, &opt)
	b.build()
	return b.g
}

// caluBuilder holds graph-construction state for one CALU factorization.
type caluBuilder struct {
	g      *sched.Graph
	opt    *Options
	m, n   int
	nb     int // number of block columns
	fronts []frontier

	// Binding state; nil for graph-only builds.
	a        *matrix.Dense
	res      *LUResult
	swaps    [][]int
	errs     []error
	maxA     float64 // max|A| of the input, guardrail denominator
	fellBack []bool  // per iteration: growth guardrail took the GEPP path

	// Verify-mode state (nil / zero unless Options.Verify is set and the
	// builder is bound). wsums holds the pristine input's column sums;
	// vsums accumulates the finished L columns' sums, one panel per V task
	// (the V tasks form a chain, so vsums needs no lock). nRecomp is only
	// touched by finalize tasks, which are transitively ordered.
	wsums      []float64
	vsums      []float64
	vprev      *sched.Task // previous panel's V task (chain)
	vpoison    bool        // a singular panel invalidated the checksum chain
	nRecomp    int         // panel recomputations spent against MaxPanelRecomputes
	recomputed []bool      // per iteration: panel recomputed after corruption
}

// verifyOn reports whether this builder checks ABFT invariants: bound, with
// Options.Verify set.
func (b *caluBuilder) verifyOn() bool { return b.a != nil && b.opt.Verify }

// vtol is the absolute checksum tolerance: predicted and actual column sums
// agree to roughly machine precision times the sum's own magnitude (at most
// m entries of size max|A|, times modest growth), so VerifyTolerance * m *
// max|A| leaves orders of magnitude of slack below any injected fault.
func (b *caluBuilder) vtol() float64 {
	return b.opt.VerifyTolerance * float64(b.m) * b.maxA
}

// taintedBefore reports whether any panel before k failed: a rank-deficient
// panel leaves the trailing matrix meaningless (the zero-diagonal Trsm
// produces non-finite values), so downstream checksum gates must not
// misreport the wreckage as corruption. Finalize tasks are transitively
// ordered, so reading earlier panels' errors here is race-free.
func (b *caluBuilder) taintedBefore(k int) bool {
	for j := 0; j < k; j++ {
		if b.errs[j] != nil {
			return true
		}
	}
	return false
}

func newCALUBuilder(m, n int, opt *Options) *caluBuilder {
	nb := (n + opt.BlockSize - 1) / opt.BlockSize
	return &caluBuilder{
		g:        sched.NewGraph(),
		opt:      opt,
		m:        m,
		n:        n,
		nb:       nb,
		fronts:   make([]frontier, nb),
		swaps:    make([][]int, nb),
		errs:     make([]error, nb),
		fellBack: make([]bool, nb),
	}
}

func (b *caluBuilder) bind(a *matrix.Dense, res *LUResult) {
	b.a = a
	b.res = res
}

// dep adds deduplicated dependencies from each task in pres to t.
func (b *caluBuilder) dep(t *sched.Task, pres ...*sched.Task) {
	seen := make(map[int]bool, len(pres))
	for _, p := range pres {
		if p == nil || seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		b.g.AddDep(p, t)
	}
}

// colRange returns the column range [c0, c1) of block column j.
func (b *caluBuilder) colRange(j int) (int, int) {
	c0 := j * b.opt.BlockSize
	return c0, min(b.n, c0+b.opt.BlockSize)
}

func (b *caluBuilder) build() {
	for k := 0; k < b.nb; k++ {
		b.buildIteration(k)
	}
}

func (b *caluBuilder) buildIteration(k int) {
	opt := b.opt
	r0, _ := b.colRange(k)
	c0, c1 := b.colRange(k)
	w := c1 - c0
	mr := b.m - r0 // active rows

	// --- Panel preprocessing: tournament over Tr block rows (tasks P). ---
	blocks := tslu.Partition(mr, opt.PanelThreads)
	nLeaves := len(blocks)
	// Candidate slots: leaves first, merge results appended after.
	var cands []*tslu.Candidates
	if b.a != nil {
		cands = make([]*tslu.Candidates, nLeaves, 2*nLeaves)
	}

	leafTasks := make([]*sched.Task, nLeaves)
	leafK := make([]int, nLeaves) // candidate row counts per slot
	for i, blk := range blocks {
		i := i
		lo, hi := r0+blk[0], r0+blk[1]
		rows := hi - lo
		kk := min(rows, w)
		leafK[i] = kk
		t := &sched.Task{
			Label:    fmt.Sprintf("P k=%d leaf=%d", k, i),
			Kind:     sched.KindP,
			Priority: priority(opt, b.nb, k, k, bonusP),
			Flops:    luFlops(rows, w),
			Class:    sched.ClassRecursive,
			Rows:     rows,
		}
		if b.a != nil {
			block := b.a.View(lo, c0, rows, w)
			t.Run = func() { cands[i] = tslu.Leaf(block, lo) }
			// The candidate rows are what flows up the tournament; the root
			// node's Out is overridden below to its composite factor.
			t.Out = func() []float64 { return candRows(cands, i) }
		}
		b.g.Add(t)
		b.dep(t, b.fronts[k].read(lo, hi)...)
		leafTasks[i] = t
	}

	// Reduction tree (tasks P at inner nodes). The merge schedule comes
	// from tslu.PlanReduction, so binary, flat and hybrid trees all flow
	// through the same task construction.
	type nodeRef struct {
		task *sched.Task
		slot int // index into cands
		k    int // candidate rows
	}
	nodes := make([]nodeRef, nLeaves)
	for i := range leafTasks {
		nodes[i] = nodeRef{task: leafTasks[i], slot: i, k: leafK[i]}
	}
	for _, st := range tslu.PlanReduction(nLeaves, opt.Tree) {
		total := 0
		deps := make([]*sched.Task, len(st.In))
		ins := make([]int, len(st.In))
		for i, idx := range st.In {
			total += nodes[idx].k
			deps[i] = nodes[idx].task
			ins[i] = nodes[idx].slot
		}
		slot := -1
		if b.a != nil {
			cands = append(cands, nil)
			slot = len(cands) - 1
		}
		t := &sched.Task{
			Label:    fmt.Sprintf("P k=%d merge out=%d", k, st.Out),
			Kind:     sched.KindP,
			Priority: priority(opt, b.nb, k, k, bonusP),
			Flops:    luFlops(total, w),
			Class:    sched.ClassRecursive,
			Rows:     total,
		}
		if b.a != nil {
			t.Run = func() {
				cs := make([]*tslu.Candidates, len(ins))
				for i, s := range ins {
					cs[i] = cands[s]
				}
				cands[slot] = tslu.MergeMany(cs)
			}
			t.Out = func() []float64 { return candRows(cands, slot) }
		}
		b.g.Add(t)
		b.dep(t, deps...)
		nodes = append(nodes, nodeRef{task: t, slot: slot, k: min(total, w)})
	}
	rootRef := nodes[len(nodes)-1]
	if b.a != nil {
		// The tournament root's consequential output is its composite factor
		// (finalize reads Fac and Idx; a root's candidate rows go nowhere).
		rootSlot := rootRef.slot
		rootRef.task.Out = func() []float64 {
			if c := cands[rootSlot]; c != nil {
				return c.Fac.Data
			}
			return nil
		}
	}

	// --- Finalize: build swaps, pivot the panel, write the composite. ---
	fin := &sched.Task{
		Label:    fmt.Sprintf("F k=%d", k),
		Kind:     sched.KindP,
		Priority: priority(opt, b.nb, k, k, bonusFinalize),
		Flops:    float64(w * w), // swap bookkeeping + composite copy
		Class:    sched.ClassSmall,
	}
	if b.a != nil {
		rootSlot := rootRef.slot
		t := fin
		t.Run = func() {
			root := cands[rootSlot]
			// ABFT gate: before anything is written back, the tournament's
			// composite must reproduce the column sums of the winner rows it
			// claims to factor — those rows are still pristine in a, so a
			// mismatch means silent corruption somewhere in the reduction
			// tree, and the panel can be recomputed locally from source. A
			// rank-deficient earlier panel leaves the trailing matrix
			// non-finite, so the gate goes inert then (like the V chain)
			// rather than converting the permanent ErrSingular into a
			// retryable ErrCorrupted.
			if b.verifyOn() && !b.taintedBefore(k) && !abft.VerifyLUPanel(b.a, root.Idx, root.Fac, c0, b.vtol()) {
				if cb := b.opt.OnCorruption; cb != nil {
					cb(k)
				}
				if b.opt.MaxPanelRecomputes < 0 || b.nRecomp >= b.opt.MaxPanelRecomputes {
					panic(fmt.Errorf("%w: CALU panel %d composite checksum mismatch, recompute budget exhausted", ErrCorrupted, k))
				}
				b.nRecomp++
				b.recomputed[k] = true
				t.Label += " [abft-recompute]"
				b.geppFallback(k, r0, c0, w)
				if cb := b.opt.OnPanelRecompute; cb != nil {
					cb(k)
				}
				return
			}
			// Pivot-growth guardrail: tournament pivoting's growth bound
			// (2^(b*H)) is weaker than GEPP's, so when the composite's
			// max|U| blows past the threshold the whole panel is
			// re-factored with straight partial pivoting instead. The
			// tournament tasks never wrote to a (they factor pooled scratch
			// copies), so the panel is still pristine here.
			if thr := b.opt.GrowthThreshold; thr > 0 && b.maxA > 0 &&
				lapack.MaxUpper(root.Fac) > thr*b.maxA {
				b.fellBack[k] = true
				t.Label += " [gepp-fallback]"
				b.geppFallback(k, r0, c0, w)
				return
			}
			sw := tslu.BuildSwaps(root.Idx, r0)
			b.swaps[k] = sw
			colView := b.a.View(0, c0, b.m, w)
			tslu.ApplyPivots(colView, sw, r0)
			kk := root.Fac.Rows
			colView.View(r0, 0, kk, w).CopyFrom(root.Fac)
			if kk < min(mr, w) {
				b.errs[k] = tslu.ErrSingular
				return
			}
			for i := 0; i < min(kk, w); i++ {
				if root.Fac.At(i, i) == 0 {
					b.errs[k] = tslu.ErrSingular
					return
				}
			}
		}
		fin.Out = func() []float64 { return b.a.Col(c0)[r0 : r0+min(mr, w)] }
	}
	b.g.Add(fin)
	b.dep(fin, rootRef.task)
	b.dep(fin, b.fronts[k].write(r0, b.m, fin)...)

	// --- Tasks L: remaining rows of the panel's L factor. ---
	lRows0 := r0 + w
	var lBlocks [][2]int
	if lRows0 < b.m {
		lBlocks = tslu.Partition(b.m-lRows0, opt.PanelThreads)
	}
	lTasks := make([]*sched.Task, len(lBlocks))
	for i, blk := range lBlocks {
		lo, hi := lRows0+blk[0], lRows0+blk[1]
		rows := hi - lo
		t := &sched.Task{
			Label:    fmt.Sprintf("L k=%d i=%d", k, i),
			Kind:     sched.KindL,
			Priority: priority(opt, b.nb, k, k, bonusL),
			Flops:    float64(rows) * float64(w) * float64(w),
			Class:    sched.ClassBLAS3,
		}
		if b.a != nil {
			t.Run = func() {
				ukk := b.a.View(r0, c0, w, w)
				lblk := b.a.View(lo, c0, rows, w)
				blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, ukk, lblk)
			}
			t.Out = func() []float64 { return b.a.Col(c0)[lo:hi] }
		}
		b.g.Add(t)
		b.dep(t, b.fronts[k].write(lo, hi, t)...)
		lTasks[i] = t
	}

	// --- Tasks U and S over the trailing block columns. ---
	for j0 := k + 1; j0 < b.nb; j0 += opt.ColsPerTask {
		j1 := min(b.nb, j0+opt.ColsPerTask)
		gc0, _ := b.colRange(j0)
		_, gc1 := b.colRange(j1 - 1)
		gw := gc1 - gc0

		u := &sched.Task{
			Label:    fmt.Sprintf("U k=%d j=%d", k, j0),
			Kind:     sched.KindU,
			Priority: priority(opt, b.nb, k, j0, bonusU),
			Flops:    float64(w) * float64(w) * float64(gw),
			Class:    sched.ClassBLAS3,
		}
		if b.a != nil {
			t := u
			t.Run = func() {
				colView := b.a.View(0, gc0, b.m, gw)
				tslu.ApplyPivots(colView, b.swaps[k], r0)
				lkk := b.a.View(r0, c0, w, w)
				ukj := b.a.View(r0, gc0, w, gw)
				blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit, 1, lkk, ukj)
			}
			t.Out = func() []float64 { return b.a.Col(gc0)[r0 : r0+w] }
		}
		b.g.Add(u)
		b.dep(u, fin)
		for j := j0; j < j1; j++ {
			b.dep(u, b.fronts[j].write(r0, b.m, u)...)
		}

		for i, blk := range lBlocks {
			lo, hi := lRows0+blk[0], lRows0+blk[1]
			rows := hi - lo
			s := &sched.Task{
				Label:    fmt.Sprintf("S k=%d i=%d j=%d", k, i, j0),
				Kind:     sched.KindS,
				Priority: priority(opt, b.nb, k, j0, bonusS),
				Flops:    2 * float64(rows) * float64(w) * float64(gw),
				Class:    sched.ClassBLAS3,
			}
			if b.a != nil {
				t := s
				t.Run = func() {
					lik := b.a.View(lo, c0, rows, w)
					ukj := b.a.View(r0, gc0, w, gw)
					aij := b.a.View(lo, gc0, rows, gw)
					blas.Gemm(blas.NoTrans, blas.NoTrans, -1, lik, ukj, 1, aij)
				}
				t.Out = func() []float64 { return b.a.Col(gc0)[lo:hi] }
			}
			b.g.Add(s)
			b.dep(s, u, lTasks[i])
			for j := j0; j < j1; j++ {
				b.dep(s, b.fronts[j].write(lo, hi, s)...)
			}
		}
	}

	// --- Task V: ABFT checksum verification of the finished block column.
	// By this point rows [0, r0) of the column hold final U entries (written
	// by earlier panels' U tasks and never touched again — later row swaps
	// anchor below them) and rows [r0, m) hold the panel's L\U, so the
	// column-sum identity over the original matrix is checkable. The V tasks
	// chain (each reads the L sums its predecessors accumulated) and gate
	// nothing but the next V, so verification rides the graph's slack.
	if b.verifyOn() {
		v := &sched.Task{
			Label:    fmt.Sprintf("V k=%d", k),
			Kind:     sched.KindP,
			Priority: priority(opt, b.nb, k, k, bonusV),
			Flops:    2 * float64(b.m) * float64(w),
			Class:    sched.ClassBLAS2,
			Rows:     b.m,
		}
		t := v
		t.Run = func() {
			// A rank-deficient panel leaves the column incomplete; flagging
			// it as corrupted would convert the permanent ErrSingular into a
			// retryable error, so the chain goes inert instead.
			if b.vpoison || b.errs[k] != nil {
				b.vpoison = true
				return
			}
			abft.AccumulateLSums(b.a, c0, c1, b.vsums)
			if bad := abft.VerifyLUColumns(b.a, c0, c1, b.vsums, b.wsums, b.vtol()); bad != -1 {
				if cb := b.opt.OnCorruption; cb != nil {
					cb(k)
				}
				panic(fmt.Errorf("%w: CALU column %d checksum mismatch (panel %d)", ErrCorrupted, bad, k))
			}
		}
		b.g.Add(v)
		b.dep(v, b.fronts[k].read(0, b.m)...)
		b.dep(v, b.vprev)
		b.vprev = v
	}
}

// candRows exposes a tournament candidate's row buffer for fault injection
// (sched.Task.Out); nil until the task has produced its candidate.
func candRows(cands []*tslu.Candidates, slot int) []float64 {
	if c := cands[slot]; c != nil {
		return c.Rows.Data
	}
	return nil
}

// geppFallback re-factors iteration k's panel with straight partial
// pivoting (the recursive GEPP kernel) after the growth guardrail tripped
// or verify mode caught a corrupted tournament, producing output in exactly
// the tournament finalize's shape: the GEPP interchanges become the
// iteration's swap list, applied to the full block column, and the factor's
// leading square block becomes the composite L\U — the downstream L/U/S
// tasks cannot tell which pivoting produced them. A rank-deficient panel is
// recorded in b.errs like the tournament path does. In verify mode the
// recomputed factor must itself reproduce the panel's pre-factoring column
// sums; a recomputation that disagrees again escalates to ErrCorrupted (the
// recovery ladder's next rung: full retry from the original matrix).
func (b *caluBuilder) geppFallback(k, r0, c0, w int) {
	mr := b.m - r0
	panel := scratch.Dense(mr, w)
	panel.CopyFrom(b.a.View(r0, c0, mr, w))
	var ws []float64
	if b.verifyOn() {
		ws = scratch.Get(w)
		defer scratch.Put(ws)
		abft.ColumnSums(panel, ws)
	}
	kk := min(mr, w)
	ipiv := make([]int, kk)
	err := lapack.RGETF2(panel, ipiv)
	if b.verifyOn() && err == nil && !abft.VerifyGEPPPanel(panel, ws, b.vtol()) {
		scratch.Release(panel)
		panic(fmt.Errorf("%w: CALU panel %d recomputation failed verification", ErrCorrupted, k))
	}
	sw := make([]int, kk)
	for j, p := range ipiv {
		sw[j] = r0 + p
	}
	b.swaps[k] = sw
	colView := b.a.View(0, c0, b.m, w)
	tslu.ApplyPivots(colView, sw, r0)
	colView.View(r0, 0, kk, w).CopyFrom(panel.View(0, 0, kk, w))
	scratch.Release(panel)
	if err != nil {
		b.errs[k] = tslu.ErrSingular
	}
}

// luFlops is the canonical GEPP flop count for an r x c block, r >= 0.
func luFlops(r, c int) float64 {
	fr, fc := float64(r), float64(c)
	return fr*fc*fc - fc*fc*fc/3
}

// ApplyPermInverse applies P^T (the inverse row permutation) to b,
// reversing ApplyPerm.
func (r *LUResult) ApplyPermInverse(b *matrix.Dense) {
	for k := len(r.Swaps) - 1; k >= 0; k-- {
		tslu.UndoPivots(b, r.Swaps[k], r.swapOrigin(k))
	}
}

// SolveTranspose solves A^T * x = rhs for square factored A, overwriting
// rhs with x: with P A = L U, A^T = U^T L^T P, so x = P^T (L^T)^-1 (U^T)^-1 rhs.
func (r *LUResult) SolveTranspose(rhs *matrix.Dense) {
	if r.A.Rows != r.A.Cols {
		panic(fmt.Errorf("%w: SolveTranspose needs square matrix, got %dx%d", ErrShape, r.A.Rows, r.A.Cols))
	}
	blas.Trsm(blas.Left, blas.Upper, blas.Trans, blas.NonUnit, 1, r.A, rhs)
	blas.Trsm(blas.Left, blas.Lower, blas.Trans, blas.Unit, 1, r.A, rhs)
	r.ApplyPermInverse(rhs)
}

// RCond estimates the reciprocal 1-norm condition number of the factored
// matrix given the 1-norm of the original (unfactored) matrix, via Hager's
// estimator on the implicit inverse. Returns 0 for a singular factor.
func (r *LUResult) RCond(anorm float64) float64 {
	n := r.A.Rows
	if n != r.A.Cols {
		panic(fmt.Errorf("%w: RCond needs square matrix", ErrShape))
	}
	for i := 0; i < n; i++ {
		if r.A.At(i, i) == 0 {
			return 0
		}
	}
	if anorm == 0 {
		return 0
	}
	buf := matrix.New(n, 1)
	invNorm := lapack.OneNormEst(n,
		func(x []float64) {
			copy(buf.Col(0), x)
			r.Solve(buf)
			copy(x, buf.Col(0))
		},
		func(x []float64) {
			copy(buf.Col(0), x)
			r.SolveTranspose(buf)
			copy(x, buf.Col(0))
		})
	if invNorm <= 0 {
		return 0
	}
	return 1 / (anorm * invNorm)
}

// SolveRefined solves A*x = rhs with iterative refinement: orig must be the
// original (unfactored) matrix. rhs is overwritten with the refined
// solution; the returned value is the final correction's max-norm, a cheap
// convergence indicator.
func (r *LUResult) SolveRefined(orig *matrix.Dense, rhs *matrix.Dense, iters int) float64 {
	if orig.Rows != r.A.Rows || orig.Cols != r.A.Cols {
		panic(fmt.Errorf("%w: SolveRefined original matrix has wrong shape", ErrShape))
	}
	b := rhs.Clone()
	r.Solve(rhs) // rhs now holds x0
	last := 0.0
	for it := 0; it < iters; it++ {
		// residual = b - A x
		resid := b.Clone()
		blas.Gemm(blas.NoTrans, blas.NoTrans, -1, orig, rhs, 1, resid)
		r.Solve(resid)
		for j := 0; j < rhs.Cols; j++ {
			x, d := rhs.Col(j), resid.Col(j)
			for i := range x {
				x[i] += d[i]
			}
		}
		last = resid.MaxAbs()
	}
	return last
}

// Inverse computes A^{-1} from the factorization by solving A X = I. For
// most uses prefer Solve: forming the inverse costs an extra n^3 flops and
// is less accurate.
func (r *LUResult) Inverse() *matrix.Dense {
	n := r.A.Rows
	if n != r.A.Cols {
		panic(fmt.Errorf("%w: Inverse needs square matrix", ErrShape))
	}
	inv := matrix.Identity(n)
	const nb = 32
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		r.Solve(inv.View(0, j, n, jb))
	}
	return inv
}
