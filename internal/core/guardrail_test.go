package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// TestNonFiniteRejected checks the pre-factorization scan: a single NaN or
// Inf anywhere fails fast with ErrNonFinite, before any task runs.
func TestNonFiniteRejected(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		a := matrix.Random(20, 20, 3)
		a.Set(13, 7, bad)
		if _, err := CALU(a, Options{BlockSize: 5}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("CALU with %v entry: err = %v, want ErrNonFinite", bad, err)
		}
		if _, err := CAQR(a, Options{BlockSize: 5}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("CAQR with %v entry: err = %v, want ErrNonFinite", bad, err)
		}
	}
	// The wide (m < n) recursion path scans before recursing.
	wide := matrix.Random(10, 30, 4)
	wide.Set(2, 25, math.NaN()) // in the right block, outside the factored square
	if _, err := CALU(wide, Options{BlockSize: 5}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("wide CALU: err = %v, want ErrNonFinite", err)
	}
}

// TestGuardrailForcedFallbackMatchesGETRF forces the guardrail on every
// panel (threshold far below any real growth) and checks that CALU then
// degenerates to blocked GEPP: same permutation as GETRF with the same
// block size, same factor within stability tolerances, and every panel
// recorded in FallbackPanels.
func TestGuardrailForcedFallbackMatchesGETRF(t *testing.T) {
	const n, b = 60, 10
	orig := matrix.Random(n, n, 21)
	a := orig.Clone()
	res, err := CALU(a, Options{
		BlockSize: b, PanelThreads: 4, Workers: 3, Lookahead: true,
		GrowthThreshold: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := n / b; len(res.FallbackPanels) != want {
		t.Fatalf("FallbackPanels = %v, want all %d panels", res.FallbackPanels, want)
	}
	for k, p := range res.FallbackPanels {
		if p != k {
			t.Fatalf("FallbackPanels = %v, want ascending 0..%d", res.FallbackPanels, n/b-1)
		}
	}
	ref := orig.Clone()
	ipiv := make([]int, n)
	if err := lapack.GETRF(ref, ipiv, b); err != nil {
		t.Fatal(err)
	}
	lab1 := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		lab1.Set(i, 0, float64(i))
	}
	lab2 := lab1.Clone()
	res.ApplyPerm(lab1)
	lapack.LASWP(lab2, ipiv, 0, n)
	if !lab1.Equal(lab2) {
		t.Fatal("forced-fallback permutation differs from GETRF")
	}
	if !a.EqualApprox(ref, 1e-10) {
		t.Fatal("forced-fallback factor differs from GETRF")
	}
}

// TestGuardrailQuietOnBenignMatrix checks both off states: threshold zero
// disables the monitor, and a generous threshold never trips on a random
// (well-conditioned in growth terms) matrix — the factorization is the
// plain tournament one.
func TestGuardrailQuietOnBenignMatrix(t *testing.T) {
	orig := matrix.Random(48, 48, 8)
	plain := orig.Clone()
	if _, err := CALU(plain, Options{BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true}); err != nil {
		t.Fatal(err)
	}
	for _, thr := range []float64{0, 1e6} {
		a := orig.Clone()
		res, err := CALU(a, Options{
			BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true,
			GrowthThreshold: thr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.FallbackPanels) != 0 {
			t.Fatalf("threshold %g: unexpected fallbacks %v", thr, res.FallbackPanels)
		}
		if !a.Equal(plain) {
			t.Fatalf("threshold %g: armed-but-quiet guardrail changed the factor", thr)
		}
	}
}

// wilkinson builds the classic GEPP worst case: unit diagonal, -1 strictly
// below it, +1 in the last column. Element growth under partial pivoting is
// 2^(n-1), so the first panel's U alone exhibits 2^(b-1) growth while
// max|A| = 1 — a crafted trigger for any reasonable threshold.
func wilkinson(n int) *matrix.Dense {
	a := matrix.New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
		a.Set(i, n-1, 1)
		for j := 0; j < i; j++ {
			a.Set(i, j, -1)
		}
	}
	return a
}

// TestGuardrailTripsOnHighGrowth checks the acceptance scenario end to end:
// a crafted high-growth matrix trips the monitor at a moderate threshold,
// the fallback panel is observable both in FallbackPanels and in the task
// trace (the finalize task's label carries the gepp-fallback marker), and
// the factorization still solves to GEPP-level accuracy.
func TestGuardrailTripsOnHighGrowth(t *testing.T) {
	const n, b = 32, 8
	orig := wilkinson(n)
	a := orig.Clone()
	res, err := CALU(a, Options{
		BlockSize: b, PanelThreads: 2, Workers: 2, Lookahead: true,
		GrowthThreshold: 4, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FallbackPanels) == 0 {
		t.Fatal("high-growth matrix tripped no fallback")
	}
	marked := 0
	for _, task := range res.Graph.Tasks() {
		if task.Kind == sched.KindP && strings.Contains(task.Label, "[gepp-fallback]") {
			marked++
		}
	}
	if marked != len(res.FallbackPanels) {
		t.Fatalf("%d tasks carry the fallback marker, want %d", marked, len(res.FallbackPanels))
	}
	if len(res.Events) == 0 {
		t.Fatal("Trace produced no events")
	}
	// Residual check: P*A = L*U still holds (growth 2^(n-1) is inherent to
	// partial pivoting on this matrix, but the factorization must stay
	// exact in the backward sense, scaled by max|U| rather than max|A|).
	l, u := lapack.ExtractLU(a)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	pa := orig.Clone()
	res.ApplyPerm(pa)
	diff := 0.0
	for j := 0; j < n; j++ {
		x, y := pa.Col(j), prod.Col(j)
		for i := range x {
			diff = math.Max(diff, math.Abs(x[i]-y[i]))
		}
	}
	if diff > 1e-10*math.Pow(2, n-1) {
		t.Fatalf("fallback factorization residual %g", diff)
	}
}
