package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/abft"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/tsqr"
)

// QRResult is the outcome of a CAQR factorization. Q is stored implicitly:
// each iteration's TSQR tree (leaf reflectors in A, tree-node reflectors in
// the Factorization) is retained so Q and Q^T can be applied.
type QRResult struct {
	// A holds R in its upper triangle; below the diagonal live the leaf
	// Householder vectors of each panel's TSQR.
	A *matrix.Dense
	// Panels holds one TSQR factorization per block column, whose Panel
	// fields are views into A.
	Panels []*tsqr.Factorization
	// Events is the execution trace, non-nil only when Options.Trace is set.
	Events []sched.Event
	// Graph is the executed task graph (retained for inspection).
	Graph *sched.Graph
}

// R returns a copy of the upper-triangular (m >= n) or upper-trapezoidal
// (m < n) factor, of size min(m, n) x n.
func (r *QRResult) R() *matrix.Dense {
	k := min(r.A.Rows, r.A.Cols)
	n := r.A.Cols
	out := matrix.New(k, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j && i < k; i++ {
			out.Set(i, j, r.A.At(i, j))
		}
	}
	return out
}

// ApplyQT overwrites c (A.Rows x p) with Q^T * c.
func (r *QRResult) ApplyQT(c *matrix.Dense) {
	if c.Rows != r.A.Rows {
		panic(fmt.Errorf("%w: ApplyQT rows %d want %d", ErrShape, c.Rows, r.A.Rows))
	}
	applyPanelsQT(r, c)
}

// applyPanelsQT runs the per-panel implicit Q^T application without the
// row-count check (internal callers pass views of matching height).
func applyPanelsQT(r *QRResult, c *matrix.Dense) {
	for k, f := range r.Panels {
		r0 := r.panelRow(k)
		f.ApplyQT(c.View(r0, 0, c.Rows-r0, c.Cols))
	}
}

// ApplyQ overwrites c (A.Rows x p) with Q * c.
func (r *QRResult) ApplyQ(c *matrix.Dense) {
	if c.Rows != r.A.Rows {
		panic(fmt.Errorf("%w: ApplyQ rows %d want %d", ErrShape, c.Rows, r.A.Rows))
	}
	for k := len(r.Panels) - 1; k >= 0; k-- {
		r0 := r.panelRow(k)
		r.Panels[k].ApplyQ(c.View(r0, 0, c.Rows-r0, c.Cols))
	}
}

// panelRow returns the first row of panel k.
func (r *QRResult) panelRow(k int) int {
	at := 0
	for i := 0; i < k; i++ {
		at += r.Panels[i].Width
	}
	return at
}

// ExplicitQ forms the thin m x min(m, n) orthogonal factor.
func (r *QRResult) ExplicitQ() *matrix.Dense {
	m := r.A.Rows
	k := min(m, r.A.Cols)
	q := matrix.New(m, k)
	for i := 0; i < k; i++ {
		q.Set(i, i, 1)
	}
	r.ApplyQ(q)
	return q
}

// LeastSquares solves min ||A*x - rhs||_2 for the factored m x n matrix
// (m >= n), returning the n x p solution. rhs is overwritten with Q^T rhs.
func (r *QRResult) LeastSquares(rhs *matrix.Dense) *matrix.Dense {
	if r.A.Rows < r.A.Cols {
		panic(fmt.Errorf("%w: LeastSquares needs an overdetermined system, got %dx%d", ErrShape, r.A.Rows, r.A.Cols))
	}
	n := r.A.Cols
	r.ApplyQT(rhs)
	x := rhs.View(0, 0, n, rhs.Cols).Clone()
	rr := r.R()
	blas.Trsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit, 1, rr, x)
	return x
}

// CAQR computes the communication-avoiding QR factorization of the m x n
// matrix a, in place, using the multithreaded Algorithm 2 of the paper:
// per-panel TSQR reduction trees whose node transformations also drive the
// trailing-matrix update tasks, dynamically scheduled with look-ahead
// priorities. It returns an error wrapping ErrShape for malformed inputs.
//
// Wide matrices (m < n) are handled LAPACK-style: the leading m x m block
// is factored and Q^T is applied to the remaining columns, leaving the
// m x n upper-trapezoidal R in place.
func CAQR(a *matrix.Dense, opt Options) (*QRResult, error) {
	return CAQRWithPool(a, opt, nil)
}

// CAQRWithPool is CAQR executed on a caller-owned persistent worker pool,
// mirroring CALUWithPool: opt.Workers is ignored and the graph is submitted
// to pool, sharing its workers with any concurrent submissions. A nil pool
// falls back to a private one-shot pool.
func CAQRWithPool(a *matrix.Dense, opt Options, pool *sched.Pool) (*QRResult, error) {
	return CAQRWithPoolCtx(context.Background(), a, opt, pool) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// CAQRWithPoolCtx is CAQRWithPool bound to a context, with the same
// semantics as CALUWithPoolCtx: cancellation is observed between tasks, the
// remaining tasks drain unrun, the returned error wraps ctx's error, and a
// non-nil result accompanying an error is partial and must not be used.
// The pool and any concurrent submissions are unaffected, and no
// internal/scratch workspace outlives the task that acquired it.
func CAQRWithPoolCtx(ctx context.Context, a *matrix.Dense, opt Options, pool *sched.Pool) (*QRResult, error) {
	if err := validateInput(a); err != nil {
		return nil, err
	}
	var wsums []float64
	if opt.Verify {
		wsums = make([]float64, a.Cols)
	}
	maxA, err := scanFinite(a, wsums)
	if err != nil {
		return nil, err
	}
	if a.Rows < a.Cols {
		left := a.View(0, 0, a.Rows, a.Rows)
		res, err := CAQRWithPoolCtx(ctx, left, opt, pool)
		if err != nil {
			return nil, err
		}
		res.A = a
		right := a.View(0, a.Rows, a.Rows, a.Cols-a.Rows)
		applyPanelsQT(res, right)
		return res, nil
	}
	if err := opt.normalize(a.Rows, a.Cols); err != nil {
		return nil, err
	}
	res := &QRResult{A: a}
	b := newCAQRBuilder(a.Rows, a.Cols, &opt)
	b.bind(a, res)
	b.maxA = maxA
	if opt.Verify {
		b.wsums = wsums
		b.u = onesVector(a.Rows)
	}
	b.build()
	events, err := runGraph(ctx, b.g, &opt, pool)
	res.Events = events
	res.Graph = b.g
	if err != nil {
		return res, fmt.Errorf("core: CAQR execution failed: %w", err)
	}
	return res, nil
}

// BuildCAQRGraph constructs the CAQR task graph without binding numeric
// work, for virtual-time simulation. Like BuildCALUGraph it panics on
// malformed dimensions.
func BuildCAQRGraph(m, n int, opt Options) *sched.Graph {
	if err := opt.normalize(m, n); err != nil {
		panic(err)
	}
	b := newCAQRBuilder(m, n, &opt)
	b.build()
	return b.g
}

type caqrBuilder struct {
	g      *sched.Graph
	opt    *Options
	m, n   int
	nb     int
	fronts []frontier

	a   *matrix.Dense
	res *QRResult

	// Verify-mode state. u is the carried checksum vector: it starts as the
	// ones vector and every Householder transform applied to the trailing
	// matrix is also applied to it (tasks C), so after panel k it holds
	// Q_k^T...Q_1^T e and the identity u^T R = e^T A is checkable column by
	// column. ufront orders the C tasks exactly as the matrix frontier
	// orders the S tasks. wsums holds the pristine input's column sums.
	maxA   float64
	wsums  []float64
	u      *matrix.Dense
	ufront frontier
}

// verifyOn reports whether this builder checks ABFT invariants.
func (b *caqrBuilder) verifyOn() bool { return b.a != nil && b.opt.Verify }

// vtol is the absolute checksum tolerance for the QR identity. The carried
// u has unit columns' worth of mass spread over m entries (|u_i| <= sqrt(m))
// and |R| <= sqrt(m) * max|A|, so predictions scale like m * max|A| with an
// extra sqrt(m) of headroom for the longer accumulation chains.
func (b *caqrBuilder) vtol() float64 {
	fm := float64(b.m)
	return b.opt.VerifyTolerance * fm * math.Sqrt(fm) * b.maxA
}

// onesVector returns the m x 1 ones vector e, the seed of the carried
// checksum u = Q^T e.
func onesVector(m int) *matrix.Dense {
	u := matrix.New(m, 1)
	col := u.Col(0)
	for i := range col {
		col[i] = 1
	}
	return u
}

func newCAQRBuilder(m, n int, opt *Options) *caqrBuilder {
	nb := (n + opt.BlockSize - 1) / opt.BlockSize
	return &caqrBuilder{
		g:      sched.NewGraph(),
		opt:    opt,
		m:      m,
		n:      n,
		nb:     nb,
		fronts: make([]frontier, nb),
	}
}

func (b *caqrBuilder) bind(a *matrix.Dense, res *QRResult) {
	b.a = a
	b.res = res
}

func (b *caqrBuilder) dep(t *sched.Task, pres ...*sched.Task) {
	seen := make(map[int]bool, len(pres))
	for _, p := range pres {
		if p == nil || seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		b.g.AddDep(p, t)
	}
}

func (b *caqrBuilder) colRange(j int) (int, int) {
	c0 := j * b.opt.BlockSize
	return c0, min(b.n, c0+b.opt.BlockSize)
}

func (b *caqrBuilder) build() {
	for k := 0; k < b.nb; k++ {
		b.buildIteration(k)
	}
}

func (b *caqrBuilder) buildIteration(k int) {
	opt := b.opt
	c0, c1 := b.colRange(k)
	w := c1 - c0
	r0 := c0
	mr := b.m - r0

	blocks, levels := tsqr.Plan(mr, w, opt.PanelThreads, opt.Tree)

	var f *tsqr.Factorization
	if b.a != nil {
		f = &tsqr.Factorization{
			Panel:     b.a.View(r0, c0, mr, w),
			Width:     w,
			TreeShape: opt.Tree,
			Leaves:    make([]tsqr.Leaf, len(blocks)),
			Levels:    make([][]tsqr.Node, len(levels)),
		}
		for l := range levels {
			f.Levels[l] = make([]tsqr.Node, len(levels[l]))
		}
		b.res.Panels = append(b.res.Panels, f)
	}

	// producers maps a carrier's panel-relative row to the task that last
	// produced the R living there, wiring tree-node dependencies.
	producers := make(map[int]*sched.Task)

	// --- Leaf P tasks and their trailing updates (leaf S tasks). ---
	leafTasks := make([]*sched.Task, len(blocks))
	for i, blk := range blocks {
		i := i
		lo, hi := blk[0], blk[1] // panel-relative
		rows := hi - lo
		t := &sched.Task{
			Label:    fmt.Sprintf("P k=%d leaf=%d", k, i),
			Kind:     sched.KindP,
			Priority: priority(opt, b.nb, k, k, bonusP),
			Flops:    qrFlops(rows, w),
			Class:    sched.ClassRecursive,
			Rows:     rows,
		}
		if b.a != nil {
			t.Run = func() { f.Leaves[i] = tsqr.FactorLeaf(f.Panel, lo, rows) }
			t.Out = func() []float64 { return b.a.Col(c0)[r0+lo : r0+hi] }
		}
		b.g.Add(t)
		b.dep(t, b.fronts[k].write(r0+lo, r0+hi, t)...)
		leafTasks[i] = t
		producers[lo] = t

		for j0 := k + 1; j0 < b.nb; j0 += opt.ColsPerTask {
			j1 := min(b.nb, j0+opt.ColsPerTask)
			gc0, _ := b.colRange(j0)
			_, gc1 := b.colRange(j1 - 1)
			gw := gc1 - gc0
			s := &sched.Task{
				Label:    fmt.Sprintf("S k=%d leaf=%d j=%d", k, i, j0),
				Kind:     sched.KindS,
				Priority: priority(opt, b.nb, k, j0, bonusS),
				Flops:    4 * float64(rows) * float64(w) * float64(gw),
				Class:    sched.ClassBLAS3,
			}
			if b.a != nil {
				t := s
				t.Run = func() {
					c := b.a.View(r0, gc0, mr, gw)
					f.ApplyLeafQT(i, c)
				}
				t.Out = func() []float64 { return b.a.Col(gc0)[r0+lo : r0+hi] }
			}
			b.g.Add(s)
			b.dep(s, t)
			for j := j0; j < j1; j++ {
				b.dep(s, b.fronts[j].write(r0+lo, r0+hi, s)...)
			}
		}
	}

	// --- Reduction-tree P tasks and their pairwise updates (S tasks). ---
	treeTasks := make([][]*sched.Task, len(levels))
	for l := range levels {
		l := l
		treeTasks[l] = make([]*sched.Task, len(levels[l]))
		for q := range levels[l] {
			q := q
			node := levels[l][q]
			total := 0
			var deps []*sched.Task
			for _, cr := range node.In {
				total += cr.K
				deps = append(deps, producers[cr.Row])
			}
			structured := opt.StructuredTree && len(node.In) == 2 &&
				node.In[0].K == w && node.In[1].K == w
			nodeFlops := qrFlops(total, w)
			if structured {
				// TTQRT: ~(2/3)w^3 elimination + ~(1/3)w^3 T formation.
				nodeFlops = float64(w) * float64(w) * float64(w)
			}
			t := &sched.Task{
				Label:    fmt.Sprintf("P k=%d tree l=%d q=%d", k, l, q),
				Kind:     sched.KindP,
				Priority: priority(opt, b.nb, k, k, bonusP),
				Flops:    nodeFlops,
				Class:    sched.ClassRecursive,
				Rows:     total,
			}
			if b.a != nil {
				in := node.In
				merge := tsqr.MergeCarriers
				if opt.StructuredTree {
					merge = tsqr.MergeCarriersStructured
				}
				t.Run = func() { f.Levels[l][q] = merge(f.Panel, in) }
				out := node.Out
				t.Out = func() []float64 { return b.a.Col(c0)[r0+out.Row : r0+out.Row+out.K] }
			}
			b.g.Add(t)
			b.dep(t, deps...)
			producers[node.Out.Row] = t
			treeTasks[l][q] = t

			for j0 := k + 1; j0 < b.nb; j0 += opt.ColsPerTask {
				j1 := min(b.nb, j0+opt.ColsPerTask)
				gc0, _ := b.colRange(j0)
				_, gc1 := b.colRange(j1 - 1)
				gw := gc1 - gc0
				sFlops := 4 * float64(total) * float64(w) * float64(gw)
				if structured {
					// TTMQRT: three triangular multiplies of w x gw.
					sFlops = 3 * float64(w) * float64(w) * float64(gw)
				}
				s := &sched.Task{
					Label:    fmt.Sprintf("S k=%d tree l=%d q=%d j=%d", k, l, q, j0),
					Kind:     sched.KindS,
					Priority: priority(opt, b.nb, k, j0, bonusS),
					Flops:    sFlops,
					Class:    sched.ClassBLAS3,
				}
				if b.a != nil {
					t := s
					t.Run = func() {
						c := b.a.View(r0, gc0, mr, gw)
						f.ApplyNodeQT(l, q, c)
					}
					cr := node.In[0]
					t.Out = func() []float64 { return b.a.Col(gc0)[r0+cr.Row : r0+cr.Row+cr.K] }
				}
				b.g.Add(s)
				b.dep(s, t)
				for j := j0; j < j1; j++ {
					for _, cr := range node.In {
						b.dep(s, b.fronts[j].write(r0+cr.Row, r0+cr.Row+cr.K, s)...)
					}
				}
			}
		}
	}

	// --- Tasks C and V: carry the checksum vector and verify the column. ---
	// Each C task mirrors one S task's transform onto the carried u (the
	// tree applications are genuine orthogonal transforms, so u really is
	// Q^T...Q^T e), ordered by their own frontier exactly as the S tasks are
	// ordered by the matrix frontiers. V then checks u^T R against the
	// original column sums. QR panels are factored in place — there is no
	// pristine source to recompute from — so a V mismatch always escalates
	// to ErrCorrupted and the full-retry rung of the recovery ladder.
	if b.verifyOn() {
		uview := b.u.View(r0, 0, mr, 1)
		for i, blk := range blocks {
			i := i
			lo, hi := blk[0], blk[1]
			c := &sched.Task{
				Label:    fmt.Sprintf("C k=%d leaf=%d", k, i),
				Kind:     sched.KindS,
				Priority: priority(opt, b.nb, k, k, bonusV),
				Flops:    4 * float64(hi-lo) * float64(w),
				Class:    sched.ClassBLAS2,
			}
			t := c
			t.Run = func() { f.ApplyLeafQT(i, uview) }
			b.g.Add(c)
			b.dep(c, leafTasks[i])
			b.dep(c, b.ufront.write(r0+lo, r0+hi, c)...)
		}
		for l := range levels {
			l := l
			for q := range levels[l] {
				q := q
				node := levels[l][q]
				total := 0
				for _, cr := range node.In {
					total += cr.K
				}
				c := &sched.Task{
					Label:    fmt.Sprintf("C k=%d tree l=%d q=%d", k, l, q),
					Kind:     sched.KindS,
					Priority: priority(opt, b.nb, k, k, bonusV),
					Flops:    4 * float64(total) * float64(w),
					Class:    sched.ClassSmall,
				}
				t := c
				t.Run = func() { f.ApplyNodeQT(l, q, uview) }
				b.g.Add(c)
				b.dep(c, treeTasks[l][q])
				for _, cr := range node.In {
					b.dep(c, b.ufront.write(r0+cr.Row, r0+cr.Row+cr.K, c)...)
				}
			}
		}
		v := &sched.Task{
			Label:    fmt.Sprintf("V k=%d", k),
			Kind:     sched.KindP,
			Priority: priority(opt, b.nb, k, k, bonusV),
			Flops:    2 * float64(c1) * float64(w),
			Class:    sched.ClassBLAS2,
			Rows:     b.m,
		}
		t := v
		t.Run = func() {
			if bad := abft.VerifyQRColumns(b.a, b.u.Col(0), c0, c1, b.wsums, b.vtol()); bad != -1 {
				if cb := b.opt.OnCorruption; cb != nil {
					cb(k)
				}
				panic(fmt.Errorf("%w: CAQR column %d checksum mismatch (panel %d)", ErrCorrupted, bad, k))
			}
		}
		b.g.Add(v)
		b.dep(v, producers[0])
		b.dep(v, b.fronts[k].read(0, b.m)...)
		b.dep(v, b.ufront.read(0, b.m)...)
	}
}

// qrFlops is the canonical Householder QR flop count for an r x c block.
func qrFlops(r, c int) float64 {
	fr, fc := float64(r), float64(c)
	if fr < fc {
		fc = fr
	}
	return 2 * fc * fc * (fr - fc/3)
}
