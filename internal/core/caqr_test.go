package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

// checkCAQR factors a copy of orig and verifies A = Q*R and Q^T Q = I.
func checkCAQR(t *testing.T, orig *matrix.Dense, opt Options) {
	t.Helper()
	a := orig.Clone()
	res := mustCAQR(t, a, opt)
	q := res.ExplicitQ()
	r := res.R()
	qtq := blas.Mul(blas.Trans, blas.NoTrans, q, q)
	for i := 0; i < qtq.Rows; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	if e := qtq.MaxAbs(); e > 1e-11*float64(orig.Rows) {
		t.Errorf("opt %+v: ||Q^T Q - I|| = %g", opt, e)
	}
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
	if !prod.EqualApprox(orig, 1e-10*float64(orig.Rows)) {
		t.Errorf("opt %+v: A != Q*R", opt)
	}
}

func TestCAQRShapes(t *testing.T) {
	cases := []struct {
		m, n, b, tr, workers int
		tree                 tslu.Tree
	}{
		{20, 20, 5, 1, 1, tslu.Binary},
		{20, 20, 5, 2, 2, tslu.Binary},
		{64, 64, 8, 4, 4, tslu.Binary},
		{64, 64, 8, 4, 4, tslu.Flat},
		{100, 40, 10, 4, 3, tslu.Binary},
		{200, 24, 8, 8, 4, tslu.Flat},
		{37, 37, 10, 3, 2, tslu.Binary},
		{50, 7, 7, 4, 2, tslu.Binary},
		{30, 30, 1, 2, 2, tslu.Binary},
		{120, 12, 4, 16, 4, tslu.Binary}, // tr clamping inside tsqr.Plan
	}
	for _, tc := range cases {
		orig := matrix.Random(tc.m, tc.n, int64(tc.m*5+tc.n*11+tc.b))
		opt := Options{BlockSize: tc.b, PanelThreads: tc.tr, Tree: tc.tree, Workers: tc.workers, Lookahead: true}
		checkCAQR(t, orig, opt)
	}
}

func TestCAQRDeterministicAcrossWorkers(t *testing.T) {
	orig := matrix.Random(80, 40, 21)
	var ref *matrix.Dense
	for _, workers := range []int{1, 2, 4, 8} {
		a := orig.Clone()
		mustCAQR(t, a, Options{BlockSize: 10, PanelThreads: 4, Workers: workers, Lookahead: true})
		if ref == nil {
			ref = a
		} else if !a.Equal(ref) {
			t.Fatalf("workers=%d produced different bits", workers)
		}
	}
}

func TestCAQRMatchesGEQRFRDiag(t *testing.T) {
	// |diag(R)| is unique for a full-rank matrix, so CAQR must agree with
	// the classic blocked QR.
	orig := matrix.Random(60, 30, 22)
	a := orig.Clone()
	res := mustCAQR(t, a, Options{BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true})
	r := res.R()
	ref := orig.Clone()
	tau := make([]float64, 30)
	lapack.GEQRF(ref, tau, 8)
	for i := 0; i < 30; i++ {
		d1, d2 := math.Abs(r.At(i, i)), math.Abs(ref.At(i, i))
		if math.Abs(d1-d2) > 1e-10*(1+d2) {
			t.Fatalf("R diag %d differs: %v vs %v", i, d1, d2)
		}
	}
}

func TestCAQRLeastSquares(t *testing.T) {
	m, n := 150, 12
	a := matrix.Random(m, n, 23)
	xWant := matrix.Random(n, 2, 24)
	rhs := blas.Mul(blas.NoTrans, blas.NoTrans, a, xWant)
	res := mustCAQR(t, a.Clone(), Options{BlockSize: 4, PanelThreads: 4, Workers: 3, Lookahead: true})
	x := res.LeastSquares(rhs)
	if !x.EqualApprox(xWant, 1e-8) {
		t.Fatal("least squares solution wrong")
	}
}

func TestCAQRLeastSquaresInconsistent(t *testing.T) {
	// Overdetermined inconsistent system: the residual must be orthogonal
	// to the column space (normal equations hold).
	m, n := 60, 5
	a := matrix.Random(m, n, 25)
	rhs := matrix.Random(m, 1, 26)
	res := mustCAQR(t, a.Clone(), Options{BlockSize: 5, PanelThreads: 2, Workers: 2, Lookahead: true})
	x := res.LeastSquares(rhs.Clone())
	resid := rhs.Clone()
	blas.Gemm(blas.NoTrans, blas.NoTrans, -1, a, x, 1, resid)
	atr := blas.Mul(blas.Trans, blas.NoTrans, a, resid)
	if atr.MaxAbs() > 1e-10*float64(m) {
		t.Fatalf("A^T r = %g, not orthogonal", atr.MaxAbs())
	}
}

func TestCAQRApplyQTThenQ(t *testing.T) {
	a := matrix.Random(70, 30, 27)
	res := mustCAQR(t, a.Clone(), Options{BlockSize: 10, PanelThreads: 4, Workers: 2, Lookahead: true})
	c := matrix.Random(70, 4, 28)
	orig := c.Clone()
	res.ApplyQT(c)
	res.ApplyQ(c)
	if !c.EqualApprox(orig, 1e-9) {
		t.Fatal("Q Q^T C != C")
	}
}

func TestCAQRTraceEvents(t *testing.T) {
	a := matrix.Random(40, 40, 29)
	res := mustCAQR(t, a, Options{BlockSize: 10, PanelThreads: 2, Workers: 2, Trace: true, Lookahead: true})
	if len(res.Events) != res.Graph.Len() {
		t.Fatalf("%d events for %d tasks", len(res.Events), res.Graph.Len())
	}
}

func TestBuildCAQRGraphMatchesBoundGraph(t *testing.T) {
	opt := Options{BlockSize: 8, PanelThreads: 4, Workers: 2, Lookahead: true}
	g := BuildCAQRGraph(64, 48, opt)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(64, 48, 30)
	res := mustCAQR(t, a, opt)
	if g.Len() != res.Graph.Len() || g.Edges() != res.Graph.Edges() {
		t.Fatalf("graph-only %d tasks/%d edges, bound %d/%d",
			g.Len(), g.Edges(), res.Graph.Len(), res.Graph.Edges())
	}
}

func TestCAQRColsPerTaskEquivalent(t *testing.T) {
	orig := matrix.Random(60, 60, 31)
	var ref *matrix.Dense
	for _, cpt := range []int{1, 2, 5} {
		a := orig.Clone()
		mustCAQR(t, a, Options{BlockSize: 6, PanelThreads: 4, Workers: 3, Lookahead: true, ColsPerTask: cpt})
		if ref == nil {
			ref = a
		} else if !a.EqualApprox(ref, 1e-12) {
			t.Fatalf("ColsPerTask=%d changed the result", cpt)
		}
	}
}

func TestCAQRPropertyGram(t *testing.T) {
	// R^T R == A^T A for every configuration.
	f := func(seed int64, trRaw, bRaw, wRaw, treeRaw uint8) bool {
		m := 30 + int(uint64(seed)%30)
		n := 6 + int(uint64(seed)%10)
		tr := int(trRaw)%6 + 1
		bs := int(bRaw)%8 + 1
		workers := int(wRaw)%4 + 1
		tree := tslu.Tree(int(treeRaw) % 2)
		orig := matrix.Random(m, n, seed)
		a := orig.Clone()
		res := mustCAQR(t, a, Options{BlockSize: bs, PanelThreads: tr, Tree: tree, Workers: workers, Lookahead: true})
		r := res.R()
		ata := blas.Mul(blas.Trans, blas.NoTrans, orig, orig)
		rtr := blas.Mul(blas.Trans, blas.NoTrans, r, r)
		return ata.EqualApprox(rtr, 1e-9*float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCAQRHybridTree(t *testing.T) {
	for _, tc := range []struct{ m, n, b, tr, workers int }{
		{64, 64, 8, 4, 4},
		{200, 24, 8, 8, 4},
		{160, 16, 8, 16, 2},
	} {
		orig := matrix.Random(tc.m, tc.n, int64(tc.m*3+tc.n))
		opt := Options{BlockSize: tc.b, PanelThreads: tc.tr, Tree: tslu.Hybrid, Workers: tc.workers, Lookahead: true}
		checkCAQR(t, orig, opt)
	}
}

func TestCAQRWideMatrix(t *testing.T) {
	m, n := 20, 50
	orig := matrix.Random(m, n, 82)
	a := orig.Clone()
	res := mustCAQR(t, a, Options{BlockSize: 5, PanelThreads: 3, Workers: 2, Lookahead: true})
	q := res.ExplicitQ() // m x m
	r := res.R()         // m x n trapezoid
	if q.Cols != m || r.Rows != m || r.Cols != n {
		t.Fatalf("wide QR shapes: Q %dx%d, R %dx%d", q.Rows, q.Cols, r.Rows, r.Cols)
	}
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
	if !prod.EqualApprox(orig, 1e-11*float64(n)) {
		t.Fatal("wide CAQR: A != Q*R")
	}
	qtq := blas.Mul(blas.Trans, blas.NoTrans, q, q)
	for i := 0; i < m; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	if qtq.MaxAbs() > 1e-12*float64(m) {
		t.Fatalf("wide CAQR: Q not orthogonal: %g", qtq.MaxAbs())
	}
}

func TestCAQRLeastSquaresWidePanics(t *testing.T) {
	a := matrix.Random(5, 10, 83)
	res := mustCAQR(t, a, Options{BlockSize: 3, PanelThreads: 2, Workers: 1, Lookahead: true})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for underdetermined LeastSquares")
		}
	}()
	res.LeastSquares(matrix.Random(5, 1, 84))
}

func TestCAQRStructuredTreeMatchesDense(t *testing.T) {
	orig := matrix.Random(120, 60, 95)
	base := Options{BlockSize: 12, PanelThreads: 4, Workers: 3, Lookahead: true}
	a1 := orig.Clone()
	r1 := mustCAQR(t, a1, base)
	st := base
	st.StructuredTree = true
	a2 := orig.Clone()
	r2 := mustCAQR(t, a2, st)
	// Same R (identical reflector mathematics), and both reconstruct A.
	if !r1.R().EqualApprox(r2.R(), 1e-10) {
		t.Fatal("structured tree changed R")
	}
	checkCAQR(t, orig, st)
	// The modeled cost of the structured tree must be lower.
	gd := BuildCAQRGraph(100000, 100, Options{BlockSize: 100, PanelThreads: 8, Lookahead: true})
	gs := BuildCAQRGraph(100000, 100, Options{BlockSize: 100, PanelThreads: 8, Lookahead: true, StructuredTree: true})
	fd, fs := 0.0, 0.0
	for _, task := range gd.Tasks() {
		fd += task.Flops
	}
	for _, task := range gs.Tasks() {
		fs += task.Flops
	}
	if fs >= fd {
		t.Fatalf("structured flops %g not below dense %g", fs, fd)
	}
}

// mustCAQR factors a and fails the test on error; the error-path behavior
// itself is covered by TestCAQRShapeErrors.
func mustCAQR(t testing.TB, a *matrix.Dense, opt Options) *QRResult {
	t.Helper()
	res, err := CAQR(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCAQRShapeErrors checks that malformed inputs surface as
// ErrShape-wrapped errors instead of panics.
func TestCAQRShapeErrors(t *testing.T) {
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("validation panicked: %v", p)
		}
	}()
	if _, err := CAQR(nil, Options{}); !errors.Is(err, ErrShape) {
		t.Fatalf("CAQR(nil) = %v, want ErrShape", err)
	}
	if _, err := CAQR(&matrix.Dense{}, Options{}); !errors.Is(err, ErrShape) {
		t.Fatalf("CAQR(empty) = %v, want ErrShape", err)
	}
}
