// Package machine defines the calibrated multicore performance models used
// to reproduce the paper's experiments at paper scale on hosts with fewer
// cores.
//
// The reproduction substitutes the paper's testbeds (a dual-socket quad-core
// Intel Xeon EMT64 at 2.50 GHz and a four-socket quad-core AMD Opteron at
// 2.194 GHz) with virtual machines: each task of a factorization's task
// graph is charged its canonical flop count divided by a per-kernel-class
// rate, plus a fixed per-task dispatch overhead. The discrete-event list
// scheduler in package simsched then executes the exact same task graphs the
// real algorithms produce, preserving what the paper actually measures —
// critical-path structure, synchronization counts, and the BLAS-2 vs BLAS-3
// panel bottleneck that communication-avoiding algorithms remove.
//
// Rates are calibrated against the paper's own anchor points: MKL dgetrf
// reaching ~61 GFlop/s on the 8-core Intel machine for 10000x10000 (Table
// I), ACML topping out near 31 GFlop/s on the 16-core AMD machine (Table
// II), and the BLAS-2 dgetf2 routine running an order of magnitude slower
// than the blocked code on tall panels (Figs. 5-6).
package machine

import (
	"fmt"

	"repro/internal/sched"
)

// Model is a virtual multicore machine.
type Model struct {
	// Name identifies the machine in reports.
	Name string
	// Cores is the number of virtual cores.
	Cores int
	// RateBLAS3 is the per-core asymptotic rate (flops/s) of compute-bound
	// BLAS-3 kernels (dgemm, dtrsm, dlarfb).
	RateBLAS3 float64
	// RateRecursive is the per-core rate of the recursive panel kernels
	// (rgetf2, dgeqr3): mostly BLAS-3 internally, but on narrow operands.
	RateRecursive float64
	// RateBLAS2 is the per-core rate of memory-bound BLAS-2 kernels
	// (dgetf2, dgeqr2). This is the rate whose gap to RateBLAS3 makes the
	// classic panel factorization the bottleneck the paper attacks.
	RateBLAS2 float64
	// RateSmall is the rate of tiny latency-bound tasks.
	RateSmall float64
	// MemPorts caps how many cores' worth of BLAS-2 bandwidth the memory
	// system sustains: a BLAS-2 kernel parallelized over P cores speeds up
	// by at most min(P, MemPorts).
	MemPorts int
	// TaskOverhead is the fixed dispatch cost per task (seconds),
	// representing the dynamic scheduler's bookkeeping. The paper notes
	// that with too many tasks "the time spent in the scheduling can
	// become significant": this term is what makes that visible.
	TaskOverhead float64
	// GranularityFlops is the kernel size (flops) at which a BLAS-3 task
	// reaches half its asymptotic rate; smaller tasks run proportionally
	// slower (cache warm-up and edge effects on small tiles).
	GranularityFlops float64
	// CacheRows is the panel height below which BLAS-2/recursive panel
	// kernels run out of cache at the boosted CacheBLAS2/CacheRecursive
	// rates instead of the streaming RateBLAS2/RateRecursive.
	CacheRows int
	// CacheRecursive and CacheBLAS2 are the cache-resident panel rates.
	CacheRecursive float64
	CacheBLAS2     float64
}

// Intel8 models the paper's dual-socket quad-core Intel Xeon EMT64 machine
// (8 cores at 2.50 GHz, 4 flops/cycle/core = 10 GFlop/s/core peak).
func Intel8() *Model {
	return &Model{
		Name:             "8-core Intel Xeon EMT64 2.50GHz",
		Cores:            8,
		RateBLAS3:        8.6e9,  // MKL dgemm ~86% of peak
		RateRecursive:    1.7e9,  // streaming recursive panel kernels
		RateBLAS2:        0.95e9, // memory bound
		RateSmall:        2.0e9,
		MemPorts:         2,
		TaskOverhead:     3.5e-5,
		GranularityFlops: 1.1e6,
		CacheRows:        4000,
		CacheRecursive:   4.5e9,
		CacheBLAS2:       3.5e9,
	}
}

// AMD16 models the paper's four-socket quad-core AMD Opteron machine
// (16 cores at 2.194 GHz, 4 flops/cycle/core = 8.8 GFlop/s/core peak).
// Its vendor BLAS (ACML) is calibrated less efficient than MKL, as the
// paper's Table II shows (ACML peaks near 31 GFlop/s, then *drops* as
// square sizes grow — NUMA effects we fold into a lower asymptotic rate).
func AMD16() *Model {
	return &Model{
		Name:             "16-core AMD Opteron 2.194GHz",
		Cores:            16,
		RateBLAS3:        3.2e9,
		RateRecursive:    1.0e9,
		RateBLAS2:        0.45e9,
		RateSmall:        1.2e9,
		MemPorts:         4,
		TaskOverhead:     4.5e-5,
		GranularityFlops: 1.0e6,
		CacheRows:        2000,
		CacheRecursive:   2.4e9,
		CacheBLAS2:       1.6e9,
	}
}

// WithCores returns a copy of the model restricted to p cores (for the
// paper's Tr sweeps, which fix the machine and vary only the algorithm).
func (m *Model) WithCores(p int) *Model {
	c := *m
	c.Cores = p
	c.Name = fmt.Sprintf("%s (%d cores)", m.Name, p)
	return &c
}

// Duration returns the virtual execution time of one task on one core.
// Panel-class tasks (BLAS-2 and recursive) whose operand height fits in
// cache (0 < Rows <= CacheRows) run at boosted cache-resident rates; tall
// panels stream from memory at the base rates.
func (m *Model) Duration(t *sched.Task) float64 {
	f := t.Flops
	cached := t.Rows > 0 && t.Rows <= m.CacheRows
	var rate float64
	switch t.Class {
	case sched.ClassBLAS3:
		rate = m.RateBLAS3 * f / (f + m.GranularityFlops)
	case sched.ClassRecursive:
		base := m.RateRecursive
		if cached {
			base = m.CacheRecursive
		}
		rate = base * f / (f + m.GranularityFlops/4)
	case sched.ClassBLAS2:
		rate = m.RateBLAS2
		if cached {
			rate = m.CacheBLAS2
		}
	default:
		rate = m.RateSmall
	}
	if rate <= 0 || f <= 0 {
		return m.TaskOverhead
	}
	return f/rate + m.TaskOverhead
}

// SequentialDuration models a single sequential routine of the given class
// and flop count running on one core with no task system at all (used for
// the vendor-library BLAS-2 baselines dgetf2/dgeqr2).
func (m *Model) SequentialDuration(class sched.Class, flops float64) float64 {
	t := sched.Task{Flops: flops, Class: class}
	return m.Duration(&t) - m.TaskOverhead
}

// BLAS2ParallelRate returns the aggregate rate of a BLAS-2 operation
// spread over p cores: bandwidth-capped at MemPorts cores' worth.
func (m *Model) BLAS2ParallelRate(p int) float64 {
	eff := min(p, m.MemPorts)
	if eff < 1 {
		eff = 1
	}
	return m.RateBLAS2 * float64(eff)
}
