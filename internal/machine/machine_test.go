package machine

import (
	"math"
	"testing"

	"repro/internal/sched"
)

func TestProfilesSane(t *testing.T) {
	for _, m := range []*Model{Intel8(), AMD16()} {
		if m.Cores < 1 || m.RateBLAS3 <= 0 || m.RateBLAS2 <= 0 || m.RateRecursive <= 0 {
			t.Fatalf("%s: non-positive parameters: %+v", m.Name, m)
		}
		// The defining rate ordering of the paper's analysis.
		if !(m.RateBLAS3 > m.RateRecursive && m.RateRecursive > m.RateBLAS2) {
			t.Fatalf("%s: rate ordering broken", m.Name)
		}
		// Cache-resident panel kernels must be faster than streaming ones.
		if m.CacheRecursive <= m.RateRecursive || m.CacheBLAS2 <= m.RateBLAS2 {
			t.Fatalf("%s: cache rates not above streaming rates", m.Name)
		}
	}
}

func TestDurationMonotoneInFlops(t *testing.T) {
	m := Intel8()
	for _, class := range []sched.Class{sched.ClassBLAS2, sched.ClassBLAS3, sched.ClassRecursive, sched.ClassSmall} {
		prev := 0.0
		for _, f := range []float64{1e3, 1e5, 1e7, 1e9} {
			d := m.Duration(&sched.Task{Flops: f, Class: class})
			if d <= prev {
				t.Fatalf("class %d: duration not increasing at %g flops", class, f)
			}
			prev = d
		}
	}
}

func TestDurationCacheBoost(t *testing.T) {
	m := Intel8()
	flops := 1e8
	tall := m.Duration(&sched.Task{Flops: flops, Class: sched.ClassRecursive, Rows: 100000})
	short := m.Duration(&sched.Task{Flops: flops, Class: sched.ClassRecursive, Rows: 1000})
	if short >= tall {
		t.Fatalf("cache-resident panel not faster: %g vs %g", short, tall)
	}
	unknown := m.Duration(&sched.Task{Flops: flops, Class: sched.ClassRecursive})
	if math.Abs(unknown-tall) > 1e-12 {
		t.Fatalf("Rows=0 should behave as streaming: %g vs %g", unknown, tall)
	}
}

func TestDurationZeroFlops(t *testing.T) {
	m := Intel8()
	if d := m.Duration(&sched.Task{}); d != m.TaskOverhead {
		t.Fatalf("zero-flop task duration %g want overhead %g", d, m.TaskOverhead)
	}
}

func TestGranularityPenalty(t *testing.T) {
	m := Intel8()
	// Effective rate of a task at exactly GranularityFlops must be half
	// the asymptotic BLAS3 rate.
	f := m.GranularityFlops
	d := m.Duration(&sched.Task{Flops: f, Class: sched.ClassBLAS3}) - m.TaskOverhead
	eff := f / d
	if math.Abs(eff-m.RateBLAS3/2)/m.RateBLAS3 > 1e-9 {
		t.Fatalf("half-rate point wrong: %g vs %g", eff, m.RateBLAS3/2)
	}
}

func TestSequentialDuration(t *testing.T) {
	m := Intel8()
	d := m.SequentialDuration(sched.ClassBLAS2, 1e9)
	want := 1e9 / m.RateBLAS2
	if math.Abs(d-want)/want > 1e-12 {
		t.Fatalf("sequential duration %g want %g", d, want)
	}
}

func TestWithCoresIsolation(t *testing.T) {
	base := AMD16()
	sub := base.WithCores(4)
	if sub.Cores != 4 || base.Cores != 16 {
		t.Fatal("WithCores leaked into the base model")
	}
	if sub.RateBLAS3 != base.RateBLAS3 {
		t.Fatal("WithCores changed rates")
	}
}

func TestBLAS2ParallelRate(t *testing.T) {
	m := AMD16() // MemPorts = 4
	if r := m.BLAS2ParallelRate(1); r != m.RateBLAS2 {
		t.Fatalf("1-core rate %g", r)
	}
	if r := m.BLAS2ParallelRate(16); r != 4*m.RateBLAS2 {
		t.Fatalf("16-core rate %g not capped at 4 ports", r)
	}
	if r := m.BLAS2ParallelRate(0); r != m.RateBLAS2 {
		t.Fatalf("0-core rate %g", r)
	}
}
