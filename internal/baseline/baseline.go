// Package baseline builds virtual-time task graphs for the vendor-library
// routines the paper compares against: the BLAS-2 panel factorizations
// dgetf2/dgeqr2 and the blocked, fork-join parallel dgetrf/dgeqrf (the
// MKL/ACML stand-ins).
//
// The blocked routines are modeled the way multithreaded vendor LAPACK
// worked at the time of the paper (and the way the paper describes it):
// the panel is factored with a BLAS-2 kernel on the critical path, then the
// trailing update is split across cores with a barrier before the next
// panel — no look-ahead, no dynamic scheduling. The memory-bound BLAS-2
// panel is exactly the bottleneck that makes these routines slow on tall
// and skinny matrices, which is the effect Figures 5-8 of the paper
// quantify. Measured (real execution) counterparts of these baselines are
// lapack.GETF2/GETRF/PGETRF and lapack.GEQR2/GEQRF/PGEQRF.
package baseline

import (
	"fmt"

	"repro/internal/sched"
)

// LUFlops is the canonical operation count of an LU factorization of an
// m x n matrix (m >= n): m*n^2 - n^3/3.
func LUFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return fm*fn*fn - fn*fn*fn/3
}

// QRFlops is the canonical operation count of a Householder QR
// factorization of an m x n matrix (m >= n): 2*n^2*(m - n/3).
func QRFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	return 2 * fn * fn * (fm - fn/3)
}

// BuildGETF2Graph models the unblocked BLAS-2 LU routine dgetf2 applied to
// the whole matrix: a single memory-bound sequential task.
func BuildGETF2Graph(m, n int) *sched.Graph {
	g := sched.NewGraph()
	g.Add(&sched.Task{
		Label: fmt.Sprintf("dgetf2 %dx%d", m, n),
		Kind:  sched.KindP,
		Flops: LUFlops(m, n),
		Class: sched.ClassBLAS2,
	})
	return g
}

// BuildGEQR2Graph models the unblocked BLAS-2 QR routine dgeqr2.
func BuildGEQR2Graph(m, n int) *sched.Graph {
	g := sched.NewGraph()
	g.Add(&sched.Task{
		Label: fmt.Sprintf("dgeqr2 %dx%d", m, n),
		Kind:  sched.KindP,
		Flops: QRFlops(m, n),
		Class: sched.ClassBLAS2,
	})
	return g
}

// BuildGETRFGraph models blocked dgetrf with panel width nb on the given
// core count, with the one-step look-ahead modern vendor libraries use: per
// iteration a panel task (BLAS-2/recursive, on the critical path), then
// trailing-update tasks of which the first covers exactly the next panel's
// columns — the next panel depends only on that chunk, while the remaining
// chunks barrier against the following iteration's updates.
func BuildGETRFGraph(m, n, nb, cores int) *sched.Graph {
	return buildVendorGraph(m, n, nb, cores, "dgetrf", func(rows, jb, w, trailRows int) (panelFlops, updFlops float64, class sched.Class) {
		return LUFlops(rows, jb),
			float64(jb)*float64(jb)*float64(w) + 2*float64(trailRows)*float64(jb)*float64(w),
			sched.ClassRecursive
	})
}

// BuildGEQRFGraph models blocked dgeqrf with panel width nb: a BLAS-2
// dgeqr2 panel (the paper names MKL_dgeqr2 as dgeqrf's panel kernel), then
// dlarfb update tasks, with the same one-step look-ahead as BuildGETRFGraph.
func BuildGEQRFGraph(m, n, nb, cores int) *sched.Graph {
	return buildVendorGraph(m, n, nb, cores, "dgeqrf", func(rows, jb, w, trailRows int) (panelFlops, updFlops float64, class sched.Class) {
		return QRFlops(rows, jb),
			4 * float64(rows) * float64(jb) * float64(w),
			sched.ClassBLAS2
	})
}

// buildVendorGraph is the shared skeleton of the blocked vendor-library
// models. kernel returns the panel flops, the update flops for a w-column
// chunk, and the panel's kernel class, given the active rows.
func buildVendorGraph(m, n, nb, cores int, name string, kernel func(rows, jb, w, trailRows int) (float64, float64, sched.Class)) *sched.Graph {
	if nb < 1 || cores < 1 {
		panic(fmt.Sprintf("baseline: nb=%d cores=%d", nb, cores))
	}
	g := sched.NewGraph()
	k := min(m, n)
	var prevPanelChunk *sched.Task // update chunk covering the next panel
	var prevBarrier []*sched.Task  // all other update chunks of the previous iteration
	for j := 0; j < k; j += nb {
		jb := min(nb, k-j)
		rows := m - j
		pf, _, class := kernel(rows, jb, 0, 0)
		panel := g.Add(&sched.Task{
			Label: fmt.Sprintf("%s panel j=%d", name, j),
			Kind:  sched.KindP,
			Flops: pf,
			Class: class,
			Rows:  rows,
		})
		if prevPanelChunk != nil {
			g.AddDep(prevPanelChunk, panel)
		}
		trailCols := n - j - jb
		trailRows := m - j - jb
		if trailCols <= 0 {
			prevPanelChunk = panel
			prevBarrier = nil
			continue
		}
		// Chunk 0: the next panel's columns (width min(nb, trailCols)).
		// Remaining columns split over the other cores.
		widths := []int{min(nb, trailCols)}
		rest := trailCols - widths[0]
		if rest > 0 {
			chunks := min(cores-1, rest)
			if chunks < 1 {
				chunks = 1
			}
			base, extra := rest/chunks, rest%chunks
			for c := 0; c < chunks; c++ {
				w := base
				if c < extra {
					w++
				}
				if w > 0 {
					widths = append(widths, w)
				}
			}
		}
		var newBarrier []*sched.Task
		var newPanelChunk *sched.Task
		for c, w := range widths {
			_, uf, _ := kernel(rows, jb, w, trailRows)
			upd := g.Add(&sched.Task{
				Label: fmt.Sprintf("%s update j=%d c=%d", name, j, c),
				Kind:  sched.KindS,
				Flops: uf,
				Class: sched.ClassBLAS3,
			})
			g.AddDep(panel, upd)
			// Column-conflict barrier against the previous iteration's
			// update wave (chunk boundaries shift, so be conservative).
			for _, t := range prevBarrier {
				g.AddDep(t, upd)
			}
			if c == 0 {
				newPanelChunk = upd
			} else {
				newBarrier = append(newBarrier, upd)
			}
		}
		prevPanelChunk = newPanelChunk
		prevBarrier = newBarrier
	}
	return g
}
