package baseline

// Sanity checks for the frozen reference kernels against naive triple
// loops. The packed kernels in internal/blas are differentially tested
// against these references (internal/blas/diff_test.go), so the oracle
// itself must be anchored to the textbook definition here.

import (
	"math"
	"testing"

	"repro/internal/blas"
)

type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(int64(*r>>11))/float64(1<<52) - 1
}

func randSlice(n int, r *lcg) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.next()
	}
	return s
}

func TestRefGemmNaive(t *testing.T) {
	r := lcg(11)
	for _, transA := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		for _, transB := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			m, n, k := 13, 9, 17
			alpha, beta := -0.7, 1.4
			rowA, colA := m, k
			if transA == blas.Trans {
				rowA, colA = k, m
			}
			rowB, colB := k, n
			if transB == blas.Trans {
				rowB, colB = n, k
			}
			lda, ldb, ldc := rowA+2, rowB+1, m+3
			a := randSlice(lda*colA, &r)
			b := randSlice(ldb*colB, &r)
			c := randSlice(ldc*n, &r)
			want := append([]float64(nil), c...)
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					sum := 0.0
					for p := 0; p < k; p++ {
						var av, bv float64
						if transA == blas.Trans {
							av = a[i*lda+p]
						} else {
							av = a[p*lda+i]
						}
						if transB == blas.Trans {
							bv = b[p*ldb+j]
						} else {
							bv = b[j*ldb+p]
						}
						sum += av * bv
					}
					want[j*ldc+i] = alpha*sum + beta*want[j*ldc+i]
				}
			}
			RefGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
			for i := range c {
				if math.Abs(c[i]-want[i]) > 1e-12*(float64(k)+math.Abs(want[i])) {
					t.Fatalf("RefGemm transA=%v transB=%v: c[%d]=%g want %g", transA, transB, i, c[i], want[i])
				}
			}
		}
	}
}

// TestRefTrsmInverts checks RefTrsm by round-trip: X = A^-1 B (RefTrsm)
// followed by A*X (RefTrmm) must reproduce B, for all 16 parameter combos.
func TestRefTrsmInverts(t *testing.T) {
	r := lcg(12)
	for _, side := range []blas.Side{blas.Left, blas.Right} {
		for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
			for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, diag := range []blas.Diag{blas.NonUnit, blas.Unit} {
					m, n := 11, 7
					na := m
					if side == blas.Right {
						na = n
					}
					lda, ldb := na+1, m+2
					a := randSlice(lda*na, &r)
					for i := range a {
						a[i] *= 1 / float64(na)
					}
					for i := 0; i < na; i++ {
						a[i*lda+i] += 2
					}
					b := randSlice(ldb*n, &r)
					orig := append([]float64(nil), b...)
					RefTrsm(side, uplo, trans, diag, m, n, 1, a, lda, b, ldb)
					RefTrmm(side, uplo, trans, diag, m, n, 1, a, lda, b, ldb)
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							idx := j*ldb + i
							if math.Abs(b[idx]-orig[idx]) > 1e-10*(1+math.Abs(orig[idx])) {
								t.Fatalf("trsm/trmm round trip side=%v uplo=%v trans=%v diag=%v: b[%d]=%g want %g",
									side, uplo, trans, diag, idx, b[idx], orig[idx])
							}
						}
					}
				}
			}
		}
	}
}
