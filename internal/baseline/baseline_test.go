package baseline

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/simsched"
)

func TestFlopCounts(t *testing.T) {
	// Square LU: 2/3 n^3; square QR: 4/3 n^3.
	n := 300
	if got, want := LUFlops(n, n), 2.0/3.0*math.Pow(float64(n), 3); math.Abs(got-want) > 1 {
		t.Fatalf("LUFlops = %v want %v", got, want)
	}
	if got, want := QRFlops(n, n), 4.0/3.0*math.Pow(float64(n), 3); math.Abs(got-want) > 1 {
		t.Fatalf("QRFlops = %v want %v", got, want)
	}
	// Tall-skinny dominated by m n^2 / 2 m n^2.
	if got := LUFlops(100000, 10); math.Abs(got-1e7)/1e7 > 0.01 {
		t.Fatalf("tall LUFlops = %v", got)
	}
}

func TestGraphsValidate(t *testing.T) {
	for _, g := range []*sched.Graph{
		BuildGETF2Graph(1000, 100),
		BuildGEQR2Graph(1000, 100),
		BuildGETRFGraph(1000, 500, 64, 8),
		BuildGEQRFGraph(1000, 500, 64, 8),
		BuildGETRFGraph(100, 100, 100, 4), // single panel, no updates
		BuildGETRFGraph(97, 37, 10, 3),    // ragged
	} {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGraphFlopsMatchCanonical(t *testing.T) {
	// The fork-join dgetrf graph's total flops must approximate the
	// canonical count (panel + trsm + gemm telescope to it).
	m, n, nb := 2000, 1000, 64
	g := BuildGETRFGraph(m, n, nb, 8)
	total := 0.0
	for _, task := range g.Tasks() {
		total += task.Flops
	}
	want := LUFlops(m, n)
	if math.Abs(total-want)/want > 0.05 {
		t.Fatalf("graph flops %.3g vs canonical %.3g", total, want)
	}
}

func TestGETF2SingleTask(t *testing.T) {
	g := BuildGETF2Graph(5000, 100)
	if g.Len() != 1 {
		t.Fatalf("dgetf2 graph has %d tasks", g.Len())
	}
	if g.Task(0).Class != sched.ClassBLAS2 {
		t.Fatal("dgetf2 must be BLAS2 class")
	}
}

func TestForkJoinBarrierStructure(t *testing.T) {
	// With fork-join, the second panel depends on every update of the
	// first iteration: critical path in unit time = panels + one update
	// per iteration.
	g := BuildGETRFGraph(40, 40, 10, 4)
	span, work := g.CriticalPath(func(*sched.Task) float64 { return 1 })
	// 4 iterations: panel+update, panel+update, panel+update, panel = 7.
	if span != 7 {
		t.Fatalf("span = %v want 7", span)
	}
	if work <= span {
		t.Fatalf("work %v should exceed span %v", work, span)
	}
}

// TestPanelBoundTallSkinny verifies the modeled headline effect: on a tall
// and skinny matrix, fork-join dgetrf is panel-(BLAS2-)bound, so its
// simulated GFlop/s are far below the machine's BLAS3 capability.
func TestPanelBoundTallSkinny(t *testing.T) {
	mach := machine.Intel8()
	m, n := 100000, 100
	res := simsched.Run(BuildGETRFGraph(m, n, 64, mach.Cores), mach)
	gf := res.GFlops(LUFlops(m, n))
	if gf > 5 {
		t.Fatalf("tall-skinny dgetrf %v GFlop/s: not panel bound?", gf)
	}
	// Square should be much faster (update dominated).
	resSq := simsched.Run(BuildGETRFGraph(5000, 5000, 64, mach.Cores), mach)
	gfSq := resSq.GFlops(LUFlops(5000, 5000))
	if gfSq < 5*gf {
		t.Fatalf("square dgetrf %v vs tall %v: no BLAS3 recovery", gfSq, gf)
	}
}
