package baseline

import (
	"fmt"

	"repro/internal/blas"
)

// This file preserves the pre-packing Level 3 kernels (the cache-blocked
// but unpacked triple loops that shipped before the Goto-style rebuild of
// internal/blas) as differential-testing references and as the "before"
// side of the BENCH_gemm.json perf trajectory. They are bit-for-bit the old
// blas.Dgemm/Dtrsm/Dtrmm implementations; do not optimize them — their
// value is staying exactly what the packed kernels are measured against.
// See doc/KERNELS.md.

// Blocking parameters of the old cache-blocked RefGemm.
const (
	refMC = 128 // rows of A per blocked panel
	refKC = 256 // depth of the rank-kc update
	refNR = 4   // columns of C per register tile
)

// RefGemm computes C = alpha*op(A)*op(B) + beta*C where op(A) is m x k and
// op(B) is k x n, exactly as the pre-refactor blas.Dgemm did: cache-blocked
// over k and m with a 1x4 column register tile, operating directly on the
// lda-strided operands (no packing).
func RefGemm(transA, transB blas.Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	rowA, rowB := m, k
	if transA == blas.Trans {
		rowA = k
	}
	if transB == blas.Trans {
		rowB = n
	}
	if m < 0 || n < 0 || k < 0 || lda < max(1, rowA) || ldb < max(1, rowB) || ldc < max(1, m) {
		panic(fmt.Errorf("%w: RefGemm bad dims m=%d n=%d k=%d lda=%d ldb=%d ldc=%d", blas.ErrShape, m, n, k, lda, ldb, ldc))
	}
	if m == 0 || n == 0 {
		return
	}
	// Scale C by beta first; the kernels below only accumulate.
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	if transA == blas.NoTrans && transB == blas.NoTrans {
		refGemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	if transA == blas.Trans && transB == blas.NoTrans {
		refGemmTN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	if transA == blas.NoTrans && transB == blas.Trans {
		refGemmNT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	refGemmTT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// refGemmNN accumulates C += alpha*A*B using cache blocking over k and m and
// a 1x4 column register tile.
func refGemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for kk := 0; kk < k; kk += refKC {
		kb := min(refKC, k-kk)
		for ii := 0; ii < m; ii += refMC {
			ib := min(refMC, m-ii)
			// C[ii:ii+ib, :] += alpha * A[ii:ii+ib, kk:kk+kb] * B[kk:kk+kb, :]
			j := 0
			for ; j+refNR <= n; j += refNR {
				c0 := c[(j+0)*ldc+ii : (j+0)*ldc+ii+ib]
				c1 := c[(j+1)*ldc+ii : (j+1)*ldc+ii+ib]
				c2 := c[(j+2)*ldc+ii : (j+2)*ldc+ii+ib]
				c3 := c[(j+3)*ldc+ii : (j+3)*ldc+ii+ib]
				for p := 0; p < kb; p++ {
					acol := a[(kk+p)*lda+ii : (kk+p)*lda+ii+ib]
					b0 := alpha * b[(j+0)*ldb+kk+p]
					b1 := alpha * b[(j+1)*ldb+kk+p]
					b2 := alpha * b[(j+2)*ldb+kk+p]
					b3 := alpha * b[(j+3)*ldb+kk+p]
					for i, av := range acol {
						c0[i] += av * b0
						c1[i] += av * b1
						c2[i] += av * b2
						c3[i] += av * b3
					}
				}
			}
			for ; j < n; j++ {
				ccol := c[j*ldc+ii : j*ldc+ii+ib]
				for p := 0; p < kb; p++ {
					bv := alpha * b[j*ldb+kk+p]
					if bv == 0 {
						continue
					}
					acol := a[(kk+p)*lda+ii : (kk+p)*lda+ii+ib]
					for i, av := range acol {
						ccol[i] += av * bv
					}
				}
			}
		}
	}
}

// refGemmTN accumulates C += alpha*A^T*B: C(i,j) = dot(A(:,i), B(:,j)).
func refGemmTN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		bcol := b[j*ldb : j*ldb+k]
		ccol := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			acol := a[i*lda : i*lda+k]
			sum := 0.0
			for p, av := range acol {
				sum += av * bcol[p]
			}
			ccol[i] += alpha * sum
		}
	}
}

// refGemmNT accumulates C += alpha*A*B^T.
func refGemmNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		acol := a[p*lda : p*lda+m]
		for j := 0; j < n; j++ {
			bv := alpha * b[p*ldb+j]
			if bv == 0 {
				continue
			}
			ccol := c[j*ldc : j*ldc+m]
			for i, av := range acol {
				ccol[i] += av * bv
			}
		}
	}
}

// refGemmTT accumulates C += alpha*A^T*B^T.
func refGemmTT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		ccol := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			acol := a[i*lda : i*lda+k]
			sum := 0.0
			for p, av := range acol {
				sum += av * b[p*ldb+j]
			}
			ccol[i] += alpha * sum
		}
	}
}

// RefTrsm solves op(A)*X = alpha*B (side == Left) or X*op(A) = alpha*B
// (side == Right) for X, overwriting B, exactly as the pre-refactor
// blas.Dtrsm did: column-by-column Dtrsv sweeps (Left) and column-oriented
// axpy elimination (Right), with no gemm-blocked updates.
func RefTrsm(side blas.Side, uplo blas.Uplo, trans blas.Transpose, diag blas.Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == blas.Right {
		na = n
	}
	if m < 0 || n < 0 || lda < max(1, na) || ldb < max(1, m) {
		panic(fmt.Errorf("%w: RefTrsm bad dims m=%d n=%d lda=%d ldb=%d", blas.ErrShape, m, n, lda, ldb))
	}
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	if side == blas.Left {
		// Solve op(A) * X = B column by column.
		for j := 0; j < n; j++ {
			blas.Dtrsv(uplo, trans, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
		return
	}
	// side == Right: X * op(A) = B. Process columns of X in dependency order.
	switch {
	case uplo == blas.Upper && trans == blas.NoTrans:
		// X(:,j) = (B(:,j) - sum_{k<j} X(:,k) A(k,j)) / A(j,j)
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for k := 0; k < j; k++ {
				akj := a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= akj * bk[i]
				}
			}
			if diag == blas.NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	case uplo == blas.Lower && trans == blas.NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for k := j + 1; k < n; k++ {
				akj := a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= akj * bk[i]
				}
			}
			if diag == blas.NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	case uplo == blas.Upper && trans == blas.Trans:
		// X * A^T = B with A upper => effective coefficient A(j,k) for k>j.
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for k := j + 1; k < n; k++ {
				ajk := a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= ajk * bk[i]
				}
			}
			if diag == blas.NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	default: // Lower, Trans
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for k := 0; k < j; k++ {
				ajk := a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] -= ajk * bk[i]
				}
			}
			if diag == blas.NonUnit {
				inv := 1 / a[j*lda+j]
				for i := range bj {
					bj[i] *= inv
				}
			}
		}
	}
}

// RefTrmm computes B = alpha*op(A)*B (side == Left) or B = alpha*B*op(A)
// (side == Right) for triangular A, overwriting B, exactly as the
// pre-refactor blas.Dtrmm did.
func RefTrmm(side blas.Side, uplo blas.Uplo, trans blas.Transpose, diag blas.Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	na := m
	if side == blas.Right {
		na = n
	}
	if m < 0 || n < 0 || lda < max(1, na) || ldb < max(1, m) {
		panic(fmt.Errorf("%w: RefTrmm bad dims m=%d n=%d lda=%d ldb=%d", blas.ErrShape, m, n, lda, ldb))
	}
	if m == 0 || n == 0 {
		return
	}
	if side == blas.Left {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			blas.Dtrmv(uplo, trans, diag, m, a, lda, col, 1)
			if alpha != 1 {
				for i := range col {
					col[i] *= alpha
				}
			}
		}
		return
	}
	// side == Right: B = alpha * B * op(A).
	switch {
	case uplo == blas.Upper && trans == blas.NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == blas.NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := 0; k < j; k++ {
				akj := alpha * a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += akj * bk[i]
				}
			}
		}
	case uplo == blas.Lower && trans == blas.NoTrans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == blas.NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := j + 1; k < n; k++ {
				akj := alpha * a[j*lda+k]
				if akj == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += akj * bk[i]
				}
			}
		}
	case uplo == blas.Upper && trans == blas.Trans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == blas.NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := j + 1; k < n; k++ {
				ajk := alpha * a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += ajk * bk[i]
				}
			}
		}
	default: // Lower, Trans
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			diagV := 1.0
			if diag == blas.NonUnit {
				diagV = a[j*lda+j]
			}
			for i := range bj {
				bj[i] *= alpha * diagV
			}
			for k := 0; k < j; k++ {
				ajk := alpha * a[k*lda+j]
				if ajk == 0 {
					continue
				}
				bk := b[k*ldb : k*ldb+m]
				for i := range bj {
					bj[i] += ajk * bk[i]
				}
			}
		}
	}
}
