package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sched"
)

// critpath.go turns the paper's Figs. 3-4 from pictures into numbers: the
// longest dependency chain through an executed graph, how much of each
// kind's time sits on that chain, and where each worker's idle time went.
// The critical path bounds any schedule from below — a makespan close to
// the path length means the scheduler is not the problem, the chain is —
// which is exactly the argument CALU/CAQR make against right-looking
// factorizations with their long panel chains.

// CriticalPath is the result of analyzing one executed (or simulated)
// trace against its dependency graph.
type CriticalPath struct {
	// Path is the longest-duration dependency chain, as task IDs in
	// execution order.
	Path []int
	// Length is the summed duration (seconds) of the tasks on Path; no
	// schedule on any number of workers can finish the graph faster.
	Length float64
	// Makespan is the observed end of the last span.
	Makespan float64
	// Fraction is Length / Makespan: 1.0 means the run was completely
	// serialized on the chain; 1/W means perfect W-worker utilization.
	Fraction float64
	// OnPath and OffPath split total task time (seconds) by kind according
	// to chain membership. A large OnPath[KindP] is the paper's Fig. 3
	// panel bottleneck; CALU's tree shifts that mass off the path.
	OnPath  map[sched.Kind]float64
	OffPath map[sched.Kind]float64
	// WorkerBusy[w] and WorkerIdle[w] attribute each worker's share of the
	// makespan (seconds): busy is its summed span time, idle the remainder.
	WorkerBusy []float64
	WorkerIdle []float64
}

// AnalyzeCriticalPath computes the longest dependency chain of g weighted
// by the measured span durations in t, plus the per-kind and per-worker
// time attribution. Tasks with no span (never executed — e.g. drained after
// a failure, or Run-less bookkeeping nodes) contribute zero duration but
// still propagate dependencies. An empty trace yields a zero analysis.
func AnalyzeCriticalPath(t *Trace, g *sched.Graph) *CriticalPath {
	cp := &CriticalPath{
		OnPath:     map[sched.Kind]float64{},
		OffPath:    map[sched.Kind]float64{},
		WorkerBusy: make([]float64, t.Workers),
		WorkerIdle: make([]float64, t.Workers),
		Makespan:   t.Makespan,
	}
	n := g.Len()
	if n == 0 {
		return cp
	}

	dur := make([]float64, n)
	for _, sp := range t.Spans {
		if sp.TaskID >= 0 && sp.TaskID < n {
			dur[sp.TaskID] += sp.End - sp.Start
		}
	}

	// Longest path by dynamic programming over a Kahn topological order:
	// finish[i] = dur[i] + max over predecessors of finish[pred], tracking
	// the argmax to walk the chain back from the global maximum.
	finish := make([]float64, n)
	via := make([]int, n)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		via[i] = -1
		indeg[i] = g.Task(i).NumDeps()
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			finish[i] = dur[i]
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, succ := range g.Task(i).Succs() {
			if f := finish[i] + dur[succ]; f > finish[succ] ||
				(f == finish[succ] && via[succ] == -1) {
				finish[succ] = f
				via[succ] = i
			}
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}

	end := 0
	for i := 1; i < n; i++ {
		if finish[i] > finish[end] {
			end = i
		}
	}
	cp.Length = finish[end]
	for i := end; i >= 0; i = via[i] {
		cp.Path = append(cp.Path, i)
		if via[i] == -1 {
			break
		}
	}
	for l, r := 0, len(cp.Path)-1; l < r; l, r = l+1, r-1 {
		cp.Path[l], cp.Path[r] = cp.Path[r], cp.Path[l]
	}
	if cp.Makespan > 0 {
		cp.Fraction = cp.Length / cp.Makespan
	}

	onPath := make([]bool, n)
	for _, id := range cp.Path {
		onPath[id] = true
	}
	for _, sp := range t.Spans {
		d := sp.End - sp.Start
		if sp.TaskID >= 0 && sp.TaskID < n && onPath[sp.TaskID] {
			cp.OnPath[sp.Kind] += d
		} else {
			cp.OffPath[sp.Kind] += d
		}
		if sp.Worker >= 0 && sp.Worker < t.Workers {
			cp.WorkerBusy[sp.Worker] += d
		}
	}
	for w := range cp.WorkerIdle {
		cp.WorkerIdle[w] = cp.Makespan - cp.WorkerBusy[w]
	}
	return cp
}

// kindOrder fixes the report ordering for the per-kind maps.
var kindOrder = []sched.Kind{sched.KindP, sched.KindL, sched.KindU, sched.KindS, sched.KindOther}

// Report renders the analysis as the traceview/CLI text block: chain
// length vs makespan, the per-kind on/off-path split, and per-worker idle
// attribution.
func (cp *CriticalPath) Report(w io.Writer) {
	fmt.Fprintf(w, "critical path: %.6fs over %d tasks (makespan %.6fs, fraction %.3f)\n",
		cp.Length, len(cp.Path), cp.Makespan, cp.Fraction)
	fmt.Fprintf(w, "  %-5s %12s %12s\n", "kind", "on-path", "off-path")
	for _, k := range kindOrder {
		on, off := cp.OnPath[k], cp.OffPath[k]
		if on == 0 && off == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-5s %11.6fs %11.6fs\n", k, on, off)
	}
	for wk := range cp.WorkerBusy {
		frac := 0.0
		if cp.Makespan > 0 {
			frac = cp.WorkerIdle[wk] / cp.Makespan
		}
		fmt.Fprintf(w, "  worker %d: busy %.6fs idle %.6fs (%.1f%% idle)\n",
			wk, cp.WorkerBusy[wk], cp.WorkerIdle[wk], 100*frac)
	}
}

// PathLabels returns the chain as "label(kind)" strings for compact
// logging.
func (cp *CriticalPath) PathLabels(g *sched.Graph) []string {
	out := make([]string, len(cp.Path))
	for i, id := range cp.Path {
		task := g.Task(id)
		label := strings.TrimSpace(task.Label)
		if label == "" {
			label = fmt.Sprintf("task%d", id)
		}
		out[i] = fmt.Sprintf("%s(%s)", label, task.Kind)
	}
	return out
}

// IdleTotal sums idle time (seconds) across workers.
func (cp *CriticalPath) IdleTotal() float64 {
	var total float64
	for _, d := range cp.WorkerIdle {
		total += d
	}
	return total
}

// SortedKinds returns the kinds present in either attribution map, in
// canonical P/L/U/S order, for deterministic iteration by callers.
func (cp *CriticalPath) SortedKinds() []sched.Kind {
	var ks []sched.Kind
	for _, k := range kindOrder {
		if cp.OnPath[k] != 0 || cp.OffPath[k] != 0 {
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
