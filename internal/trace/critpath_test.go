package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// chainFixture builds a 3-task sequential chain with durations 1, 2, 3 on
// one worker: the whole run IS the critical path.
func chainFixture() (*Trace, *sched.Graph) {
	g := sched.NewGraph()
	a := g.Add(&sched.Task{Label: "a", Kind: sched.KindP})
	b := g.Add(&sched.Task{Label: "b", Kind: sched.KindL})
	c := g.Add(&sched.Task{Label: "c", Kind: sched.KindS})
	g.AddDep(a, b)
	g.AddDep(b, c)
	tr := &Trace{
		Workers:  1,
		Makespan: 6,
		Spans: []Span{
			{TaskID: a.ID, Worker: 0, Start: 0, End: 1, Kind: sched.KindP, Label: "a"},
			{TaskID: b.ID, Worker: 0, Start: 1, End: 3, Kind: sched.KindL, Label: "b"},
			{TaskID: c.ID, Worker: 0, Start: 3, End: 6, Kind: sched.KindS, Label: "c"},
		},
	}
	return tr, g
}

func TestCriticalPathChain(t *testing.T) {
	tr, g := chainFixture()
	cp := AnalyzeCriticalPath(tr, g)
	if cp.Length != 6 {
		t.Fatalf("Length = %g, want 6", cp.Length)
	}
	if want := []int{0, 1, 2}; !equalInts(cp.Path, want) {
		t.Fatalf("Path = %v, want %v", cp.Path, want)
	}
	if cp.Fraction != 1 {
		t.Fatalf("Fraction = %g, want 1 (fully serialized)", cp.Fraction)
	}
	if cp.OnPath[sched.KindP] != 1 || cp.OnPath[sched.KindL] != 2 || cp.OnPath[sched.KindS] != 3 {
		t.Fatalf("OnPath = %v", cp.OnPath)
	}
	if len(cp.OffPath) != 0 {
		t.Fatalf("OffPath = %v, want empty", cp.OffPath)
	}
	if cp.WorkerIdle[0] != 0 {
		t.Fatalf("WorkerIdle = %v, want 0", cp.WorkerIdle)
	}
}

// diamondFixture: a fans out to b (short) and c (long), both join into d.
// The path must route through c.
func diamondFixture() (*Trace, *sched.Graph) {
	g := sched.NewGraph()
	a := g.Add(&sched.Task{Label: "a", Kind: sched.KindP})
	b := g.Add(&sched.Task{Label: "b", Kind: sched.KindL})
	c := g.Add(&sched.Task{Label: "c", Kind: sched.KindS})
	d := g.Add(&sched.Task{Label: "d", Kind: sched.KindU})
	g.AddDep(a, b)
	g.AddDep(a, c)
	g.AddDep(b, d)
	g.AddDep(c, d)
	tr := &Trace{
		Workers:  2,
		Makespan: 7,
		Spans: []Span{
			{TaskID: a.ID, Worker: 0, Start: 0, End: 1, Kind: sched.KindP, Label: "a"},
			{TaskID: b.ID, Worker: 1, Start: 1, End: 3, Kind: sched.KindL, Label: "b"},
			{TaskID: c.ID, Worker: 0, Start: 1, End: 6, Kind: sched.KindS, Label: "c"},
			{TaskID: d.ID, Worker: 0, Start: 6, End: 7, Kind: sched.KindU, Label: "d"},
		},
	}
	return tr, g
}

func TestCriticalPathDiamond(t *testing.T) {
	tr, g := diamondFixture()
	cp := AnalyzeCriticalPath(tr, g)
	if cp.Length != 7 {
		t.Fatalf("Length = %g, want 7 (a+c+d)", cp.Length)
	}
	if want := []int{0, 2, 3}; !equalInts(cp.Path, want) {
		t.Fatalf("Path = %v, want a,c,d = %v", cp.Path, want)
	}
	if cp.OffPath[sched.KindL] != 2 {
		t.Fatalf("OffPath[L] = %g, want 2 (task b)", cp.OffPath[sched.KindL])
	}
	// Worker 0 runs a, c, d (7s busy, 0 idle); worker 1 runs only b (2s busy,
	// 5s idle).
	if cp.WorkerBusy[0] != 7 || cp.WorkerIdle[0] != 0 {
		t.Fatalf("worker 0 busy/idle = %g/%g, want 7/0", cp.WorkerBusy[0], cp.WorkerIdle[0])
	}
	if cp.WorkerBusy[1] != 2 || cp.WorkerIdle[1] != 5 {
		t.Fatalf("worker 1 busy/idle = %g/%g, want 2/5", cp.WorkerBusy[1], cp.WorkerIdle[1])
	}
	if got := cp.IdleTotal(); got != 5 {
		t.Fatalf("IdleTotal = %g, want 5", got)
	}
}

// calu2x2Fixture is the 2x2-panel CALU shape: panel 0 (P0) gates its U row
// (U0) and L block (L0); the trailing update (S0) needs both; panel 1 (P1)
// needs the update. The chain is P0 -> U0 -> S0 -> P1 when L0 is cheap.
func calu2x2Fixture() (*Trace, *sched.Graph) {
	g := sched.NewGraph()
	p0 := g.Add(&sched.Task{Label: "P k=0", Kind: sched.KindP})
	l0 := g.Add(&sched.Task{Label: "L k=0", Kind: sched.KindL})
	u0 := g.Add(&sched.Task{Label: "U k=0", Kind: sched.KindU})
	s0 := g.Add(&sched.Task{Label: "S k=0", Kind: sched.KindS})
	p1 := g.Add(&sched.Task{Label: "P k=1", Kind: sched.KindP})
	g.AddDep(p0, l0)
	g.AddDep(p0, u0)
	g.AddDep(l0, s0)
	g.AddDep(u0, s0)
	g.AddDep(s0, p1)
	tr := &Trace{
		Workers:  2,
		Makespan: 10,
		Spans: []Span{
			{TaskID: p0.ID, Worker: 0, Start: 0, End: 3, Kind: sched.KindP, Label: "P k=0"},
			{TaskID: l0.ID, Worker: 1, Start: 3, End: 4, Kind: sched.KindL, Label: "L k=0"},
			{TaskID: u0.ID, Worker: 0, Start: 3, End: 5, Kind: sched.KindU, Label: "U k=0"},
			{TaskID: s0.ID, Worker: 0, Start: 5, End: 8, Kind: sched.KindS, Label: "S k=0"},
			{TaskID: p1.ID, Worker: 1, Start: 8, End: 10, Kind: sched.KindP, Label: "P k=1"},
		},
	}
	return tr, g
}

func TestCriticalPathCALU2x2(t *testing.T) {
	tr, g := calu2x2Fixture()
	cp := AnalyzeCriticalPath(tr, g)
	if cp.Length != 10 {
		t.Fatalf("Length = %g, want 10 (P0+U0+S0+P1)", cp.Length)
	}
	if want := []int{0, 2, 3, 4}; !equalInts(cp.Path, want) {
		t.Fatalf("Path = %v, want P0,U0,S0,P1 = %v", cp.Path, want)
	}
	// Panel time on the path: P0 (3) + P1 (2); the only off-path task is L0.
	if cp.OnPath[sched.KindP] != 5 {
		t.Fatalf("OnPath[P] = %g, want 5", cp.OnPath[sched.KindP])
	}
	if cp.OffPath[sched.KindL] != 1 || len(cp.OffPath) != 1 {
		t.Fatalf("OffPath = %v, want only L=1", cp.OffPath)
	}
	if cp.Fraction != 1 {
		t.Fatalf("Fraction = %g, want 1", cp.Fraction)
	}
	var b strings.Builder
	cp.Report(&b)
	out := b.String()
	for _, want := range []string{"critical path:", "worker 0", "worker 1", "on-path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Report missing %q:\n%s", want, out)
		}
	}
	labels := cp.PathLabels(g)
	if len(labels) != 4 || labels[0] != "P k=0(P)" {
		t.Fatalf("PathLabels = %v", labels)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	cp := AnalyzeCriticalPath(&Trace{Workers: 2}, sched.NewGraph())
	if cp.Length != 0 || len(cp.Path) != 0 || cp.Fraction != 0 {
		t.Fatalf("empty analysis = %+v", cp)
	}
}

// TestPerfettoExport validates the exporter per the satellite: the output
// is well-formed JSON with exactly one complete ("X") event per span,
// microsecond timestamps, and per-worker thread metadata.
func TestPerfettoExport(t *testing.T) {
	tr, g := calu2x2Fixture()
	cp := AnalyzeCriticalPath(tr, g)
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b, cp.OnPathSet()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var xEvents, metaEvents int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			xEvents++
			if e.Dur <= 0 {
				t.Fatalf("X event %q has non-positive dur %g", e.Name, e.Dur)
			}
		case "M":
			metaEvents++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if xEvents != len(tr.Spans) {
		t.Fatalf("%d X events for %d spans", xEvents, len(tr.Spans))
	}
	if metaEvents != 1+tr.Workers {
		t.Fatalf("%d metadata events, want %d", metaEvents, 1+tr.Workers)
	}
	// Spot-check the P0 span: 3s -> 3e6 µs, on the critical path.
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.Name == "P k=0" {
			if e.Ts != 0 || e.Dur != 3e6 {
				t.Fatalf("P0 ts/dur = %g/%g, want 0/3e6 µs", e.Ts, e.Dur)
			}
			if on, _ := e.Args["on_critical_path"].(bool); !on {
				t.Fatalf("P0 not marked on_critical_path: %v", e.Args)
			}
		}
		if e.Ph == "X" && e.Name == "L k=0" {
			if on, _ := e.Args["on_critical_path"].(bool); on {
				t.Fatal("L0 wrongly marked on_critical_path")
			}
		}
	}
}

// TestCriticalPathRealCALU is the acceptance-criteria check: on a real
// 4-worker CALU run the reported critical-path fraction and per-worker idle
// must be consistent (within 5%) with the summed trace spans.
func TestCriticalPathRealCALU(t *testing.T) {
	a := matrix.Random(200, 120, 5)
	res, err := core.CALU(a, core.Options{
		BlockSize: 20, PanelThreads: 2, Workers: 4, Trace: true, Lookahead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := FromSched(res.Events, res.Graph, 4)
	cp := AnalyzeCriticalPath(tr, res.Graph)

	if cp.Length <= 0 || cp.Fraction <= 0 || cp.Fraction > 1+1e-9 {
		t.Fatalf("implausible critical path: length %g fraction %g", cp.Length, cp.Fraction)
	}
	// The chain's spans are temporally disjoint, so its length can never
	// exceed the observed makespan.
	if cp.Length > cp.Makespan*(1+1e-9) {
		t.Fatalf("Length %g > Makespan %g", cp.Length, cp.Makespan)
	}
	// Per-worker busy must equal the summed span durations exactly, and
	// busy+idle must reconstruct the makespan within 5%.
	busyFromSpans := make([]float64, 4)
	var total float64
	for _, sp := range tr.Spans {
		busyFromSpans[sp.Worker] += sp.End - sp.Start
		total += sp.End - sp.Start
	}
	for w := 0; w < 4; w++ {
		if math.Abs(cp.WorkerBusy[w]-busyFromSpans[w]) > 1e-12 {
			t.Fatalf("worker %d busy %g != summed spans %g", w, cp.WorkerBusy[w], busyFromSpans[w])
		}
		got := cp.WorkerBusy[w] + cp.WorkerIdle[w]
		if math.Abs(got-cp.Makespan) > 0.05*cp.Makespan {
			t.Fatalf("worker %d busy+idle %g deviates >5%% from makespan %g", w, got, cp.Makespan)
		}
	}
	// On-path + off-path time must account for every span second.
	var attributed float64
	for _, v := range cp.OnPath {
		attributed += v
	}
	for _, v := range cp.OffPath {
		attributed += v
	}
	if math.Abs(attributed-total) > 0.05*total {
		t.Fatalf("kind attribution %g deviates >5%% from span total %g", attributed, total)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
