package trace

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simsched"
)

func sampleTrace() *Trace {
	return &Trace{
		Workers:  2,
		Makespan: 10,
		Spans: []Span{
			{Worker: 0, Start: 0, End: 4, Kind: sched.KindP, Label: "P"},
			{Worker: 0, Start: 4, End: 10, Kind: sched.KindS, Label: "S"},
			{Worker: 1, Start: 2, End: 7, Kind: sched.KindL, Label: "L"},
		},
	}
}

func TestStats(t *testing.T) {
	s := sampleTrace().Stats()
	// Total core time = 20; P=4, S=6, L=5, idle=5.
	if math.Abs(s.BusyByKind[sched.KindP]-0.2) > 1e-12 {
		t.Fatalf("P fraction = %v", s.BusyByKind[sched.KindP])
	}
	if math.Abs(s.BusyByKind[sched.KindS]-0.3) > 1e-12 {
		t.Fatalf("S fraction = %v", s.BusyByKind[sched.KindS])
	}
	if math.Abs(s.Idle-0.25) > 1e-12 {
		t.Fatalf("idle = %v", s.Idle)
	}
}

func TestStatsEmpty(t *testing.T) {
	tr := &Trace{Workers: 2}
	if s := tr.Stats(); s.Idle != 1 {
		t.Fatalf("empty trace idle = %v", s.Idle)
	}
}

func TestGanttRendering(t *testing.T) {
	var b strings.Builder
	sampleTrace().Gantt(&b, 20)
	out := b.String()
	if !strings.Contains(out, "core  0") || !strings.Contains(out, "core  1") {
		t.Fatalf("missing worker rows:\n%s", out)
	}
	// Worker 0 starts with P, ends with S; worker 1 has leading idle.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "P") || !strings.Contains(lines[0], "S") {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if !strings.HasPrefix(strings.SplitN(lines[1], "|", 2)[1], "....") {
		t.Fatalf("row 1 should start idle: %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	sampleTrace().WriteCSV(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "worker,start,end,kind,label" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestFromSched(t *testing.T) {
	g := sched.NewGraph()
	g.Add(&sched.Task{Kind: sched.KindP, Label: "p"})
	g.Add(&sched.Task{Kind: sched.KindS, Label: "s"})
	events := []sched.Event{
		{TaskID: 0, Worker: 0, Start: 0, End: time.Millisecond},
		{TaskID: 1, Worker: 1, Start: time.Millisecond, End: 3 * time.Millisecond},
	}
	tr := FromSched(events, g, 2)
	if len(tr.Spans) != 2 || math.Abs(tr.Makespan-0.003) > 1e-12 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Spans[0].Kind != sched.KindP {
		t.Fatalf("span kind = %v", tr.Spans[0].Kind)
	}
}

// TestFig3Fig4IdleContrast reproduces the paper's Figures 3-4 effect in
// miniature: with Tr=1 the panel serializes and idle time is substantial;
// with Tr=cores the idle fraction drops sharply.
func TestFig3Fig4IdleContrast(t *testing.T) {
	mach := machine.Intel8()
	build := func(tr int) *Trace {
		g := core.BuildCALUGraph(100000, 1000, core.Options{
			BlockSize: 100, PanelThreads: tr, Lookahead: true,
		})
		res := simsched.Run(g, mach)
		return FromSim(res.Events, g, mach.Cores)
	}
	idle1 := build(1).Stats().Idle
	idle8 := build(8).Stats().Idle
	if idle8 >= idle1 {
		t.Fatalf("Tr=8 idle %.3f not below Tr=1 idle %.3f", idle8, idle1)
	}
	if idle1 < 0.2 {
		t.Fatalf("Tr=1 idle %.3f suspiciously low: panel should serialize", idle1)
	}
	if idle8 > 0.35 {
		t.Fatalf("Tr=8 idle %.3f too high: cores should stay busy", idle8)
	}
}

// Real-execution trace should also render end to end.
func TestRealTraceEndToEnd(t *testing.T) {
	a := matrix.Random(60, 60, 3)
	res, err := core.CALU(a, core.Options{BlockSize: 10, PanelThreads: 2, Workers: 2, Trace: true, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := FromSched(res.Events, res.Graph, 2)
	if len(tr.Spans) != res.Graph.Len() {
		t.Fatalf("%d spans for %d tasks", len(tr.Spans), res.Graph.Len())
	}
	var b strings.Builder
	tr.Gantt(&b, 40)
	if !strings.Contains(b.String(), "core") {
		t.Fatal("gantt empty")
	}
}
