package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// perfetto.go exports a Trace in the Chrome trace-event JSON format, which
// Perfetto (ui.perfetto.dev) and chrome://tracing both load directly. Each
// span becomes one complete ("X") event on a track per worker, so a CALU
// run renders as the paper's Fig. 3-4 timelines with full zoom/query
// support instead of an ASCII Gantt.

// chromeTraceEvent is one event in the trace-event format. Only the fields
// the complete-event phase uses are emitted.
type chromeTraceEvent struct {
	Name string `json:"name"`
	// Cat carries the task kind (P/L/U/S) so Perfetto can filter by it.
	Cat string `json:"cat"`
	// Ph is the phase; "X" is a complete event with explicit duration, "M"
	// metadata (process/thread names).
	Ph string `json:"ph"`
	// Ts and Dur are in microseconds, per the format.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// Args carries span details shown in the Perfetto detail pane.
	Args map[string]any `json:"args,omitempty"`
}

type chromeTraceFile struct {
	// DisplayTimeUnit is the UI default zoom unit, not the event unit.
	DisplayTimeUnit string             `json:"displayTimeUnit"`
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
}

// WriteChromeTrace encodes the trace as Chrome trace-event JSON: one "X"
// event per span (pid 0, tid = worker), preceded by metadata events naming
// the process and each worker track. onPath, when non-nil, marks the task
// IDs on the critical path so the exported events carry an on_critical_path
// arg Perfetto queries can filter on; pass nil to skip the annotation.
func (t *Trace) WriteChromeTrace(w io.Writer, onPath map[int]bool) error {
	f := chromeTraceFile{DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, chromeTraceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "sched.Pool"},
	})
	for wk := 0; wk < t.Workers; wk++ {
		f.TraceEvents = append(f.TraceEvents, chromeTraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: wk,
			Args: map[string]any{"name": workerName(wk)},
		})
	}
	for _, sp := range t.Spans {
		name := sp.Label
		if name == "" {
			name = sp.Kind.String()
		}
		args := map[string]any{
			"task_id": sp.TaskID,
			"kind":    sp.Kind.String(),
		}
		if onPath != nil {
			args["on_critical_path"] = onPath[sp.TaskID]
		}
		f.TraceEvents = append(f.TraceEvents, chromeTraceEvent{
			Name: name,
			Cat:  sp.Kind.String(),
			Ph:   "X",
			Ts:   sp.Start * 1e6, // seconds -> microseconds
			Dur:  (sp.End - sp.Start) * 1e6,
			Pid:  0,
			Tid:  sp.Worker,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// OnPathSet converts a critical path into the lookup WriteChromeTrace
// takes.
func (cp *CriticalPath) OnPathSet() map[int]bool {
	m := make(map[int]bool, len(cp.Path))
	for _, id := range cp.Path {
		m[id] = true
	}
	return m
}

func workerName(w int) string {
	return fmt.Sprintf("worker %d", w)
}
