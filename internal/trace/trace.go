// Package trace renders execution traces of the factorization task graphs
// as text Gantt charts and CSV, reproducing the paper's Figures 3 and 4:
// per-core timelines in which the panel factorization (P), the panel's L
// computation (L), the U row (U) and the trailing-matrix update (S) are
// distinguishable, making panel-induced idle time visible.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sched"
	"repro/internal/simsched"
)

// Span is one task execution on one worker, in seconds.
type Span struct {
	// TaskID ties the span back to its graph task, letting the critical-path
	// analyzer and the Perfetto exporter join timing with dependencies.
	TaskID int
	Worker int
	Start  float64
	End    float64
	Kind   sched.Kind
	Label  string
}

// Trace is a complete execution record.
type Trace struct {
	Spans   []Span
	Workers int
	// Makespan is the end of the last span.
	Makespan float64
}

// FromSched converts the real runner's wall-clock events.
func FromSched(events []sched.Event, g *sched.Graph, workers int) *Trace {
	t := &Trace{Workers: workers}
	for _, e := range events {
		task := g.Task(e.TaskID)
		s := Span{
			TaskID: e.TaskID,
			Worker: e.Worker,
			Start:  e.Start.Seconds(),
			End:    e.End.Seconds(),
			Kind:   task.Kind,
			Label:  task.Label,
		}
		t.Spans = append(t.Spans, s)
		if s.End > t.Makespan {
			t.Makespan = s.End
		}
	}
	t.sort()
	return t
}

// FromSim converts the virtual-time simulator's events.
func FromSim(events []simsched.Event, g *sched.Graph, cores int) *Trace {
	t := &Trace{Workers: cores}
	for _, e := range events {
		task := g.Task(e.TaskID)
		s := Span{TaskID: e.TaskID, Worker: e.Core, Start: e.Start, End: e.End, Kind: task.Kind, Label: task.Label}
		t.Spans = append(t.Spans, s)
		if s.End > t.Makespan {
			t.Makespan = s.End
		}
	}
	t.sort()
	return t
}

func (t *Trace) sort() {
	sort.Slice(t.Spans, func(i, j int) bool {
		if t.Spans[i].Worker != t.Spans[j].Worker {
			return t.Spans[i].Worker < t.Spans[j].Worker
		}
		return t.Spans[i].Start < t.Spans[j].Start
	})
}

// Stats aggregates busy time by task kind plus idle time, as fractions of
// workers * makespan. The paper's Fig. 3 vs Fig. 4 comparison is exactly
// "how much idle time does Tr=1 cause vs Tr=8".
type Stats struct {
	// BusyByKind maps P/L/U/S to the fraction of total core-time spent in
	// tasks of that kind.
	BusyByKind map[sched.Kind]float64
	// Idle is the fraction of total core-time no task was running.
	Idle float64
}

// Stats computes the aggregate statistics of the trace.
func (t *Trace) Stats() Stats {
	s := Stats{BusyByKind: map[sched.Kind]float64{}}
	if t.Makespan <= 0 || t.Workers == 0 {
		s.Idle = 1
		return s
	}
	total := t.Makespan * float64(t.Workers)
	busy := 0.0
	for _, sp := range t.Spans {
		d := sp.End - sp.Start
		s.BusyByKind[sp.Kind] += d / total
		busy += d
	}
	s.Idle = 1 - busy/total
	return s
}

// Gantt renders the trace as a text chart of the given width: one row per
// worker, one character per time bucket — P, L, U, S for the dominant task
// kind in that bucket, '.' for idle.
func (t *Trace) Gantt(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	if t.Makespan <= 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	dt := t.Makespan / float64(width)
	for worker := 0; worker < t.Workers; worker++ {
		// For each bucket, pick the kind that occupies the most time.
		occupancy := make([]map[sched.Kind]float64, width)
		for _, sp := range t.Spans {
			if sp.Worker != worker {
				continue
			}
			b0 := int(sp.Start / dt)
			b1 := int(sp.End / dt)
			if b1 >= width {
				b1 = width - 1
			}
			for b := b0; b <= b1; b++ {
				lo := float64(b) * dt
				hi := lo + dt
				overlap := min(sp.End, hi) - max(sp.Start, lo)
				if overlap <= 0 {
					continue
				}
				if occupancy[b] == nil {
					occupancy[b] = map[sched.Kind]float64{}
				}
				occupancy[b][sp.Kind] += overlap
			}
		}
		var row strings.Builder
		for b := 0; b < width; b++ {
			ch := "."
			best := 0.0
			for kind, occ := range occupancy[b] {
				if occ > best {
					best = occ
					ch = kind.String()
				}
			}
			row.WriteString(ch)
		}
		fmt.Fprintf(w, "core %2d |%s|\n", worker, row.String())
	}
	fmt.Fprintf(w, "        %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "        0%*s\n", width, fmt.Sprintf("%.4gs", t.Makespan))
}

// WriteCSV emits the raw spans as CSV (worker,start,end,kind,label).
func (t *Trace) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "worker,start,end,kind,label")
	for _, sp := range t.Spans {
		label := strings.ReplaceAll(sp.Label, ",", ";")
		fmt.Fprintf(w, "%d,%.9f,%.9f,%s,%s\n", sp.Worker, sp.Start, sp.End, sp.Kind, label)
	}
}
