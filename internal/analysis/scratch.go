package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// scratchPkg is the import-path suffix identifying the workspace pool
// package whose acquire/release pairing the check enforces.
const scratchPkg = "internal/scratch"

// scratchReleaseCheck enforces doc/POOLING.md rule 3: every
// scratch.Dense/scratch.Get acquisition must reach a matching
// scratch.Release/scratch.Put on every return path of the acquiring
// function — including early error and ctx.Err() returns — or be covered
// by a defer. A buffer that escapes a return path is stranded the moment a
// cancelled submission drains the task that would have freed it.
//
// The analysis is a structural must-release walk over the function body:
// branches are analyzed with forked live-sets and re-joined with a union
// (a buffer released on only one arm is still live after the join), loops
// conservatively keep pre-loop acquisitions live, and a panic terminates a
// path without a report (the pool's recover path turns panics into errors;
// an unreleased pooled buffer on a panic path is garbage, not corruption).
// Ownership transfer (returning or storing an acquired buffer) is outside
// the invariant — release must happen in the acquiring function — so
// intentional transfers need a `// calint:ignore scratch-release` with a
// rationale.
func scratchReleaseCheck() *Check {
	return &Check{
		Name: "scratch-release",
		Doc:  "internal/scratch acquisitions must be released on every return path of the acquiring function",
		Run:  runScratchRelease,
	}
}

func runScratchRelease(pass *Pass) {
	// The pool package itself hands buffers across its API boundary by
	// design.
	if hasPathSuffix(pass.PkgPath(), scratchPkg) {
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				sa := &scratchAnalysis{pass: pass, bound: make(map[token.Pos]bool)}
				sa.analyzeFunc(body)
				sa.reportUnbound(body)
			}
			// Keep descending: nested literals are analyzed as their own
			// scopes when Inspect reaches them.
			return true
		})
	}
}

// scratchAnalysis tracks live acquisitions through one function body.
type scratchAnalysis struct {
	pass *Pass
	// bound records the positions of acquisition calls that were assigned
	// to a trackable local; acquisitions outside that set (passed straight
	// to another call, returned, stored in a composite) cannot be verified
	// and are reported by reportUnbound.
	bound map[token.Pos]bool
}

// reportUnbound flags acquisition calls the dataflow walk could not bind
// to a local variable, excluding nested literals (they run their own
// analysis).
func (sa *scratchAnalysis) reportUnbound(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !sa.isAcquire(call) || sa.bound[call.Pos()] {
			return true
		}
		sa.pass.Reportf(call.Pos(), "scratch acquisition is not bound to a local variable, so no release can be verified")
		return true
	})
}

// liveSet maps an acquired variable to its acquisition position.
type liveSet map[*types.Var]token.Pos

func (ls liveSet) clone() liveSet {
	out := make(liveSet, len(ls))
	for v, pos := range ls {
		out[v] = pos
	}
	return out
}

// analyzeFunc walks the body; falling off the end of the function is an
// implicit return and must not leave live acquisitions either.
func (sa *scratchAnalysis) analyzeFunc(body *ast.BlockStmt) {
	live := make(liveSet)
	terminated := sa.analyzeStmts(body.List, live)
	if !terminated {
		sa.reportLive(live, body.Rbrace, "function end")
	}
}

// analyzeStmts processes a statement list sequentially, mutating live, and
// reports acquisitions still live at each reachable return. It returns
// true when the list always terminates (return, panic, or branch) before
// falling through.
func (sa *scratchAnalysis) analyzeStmts(stmts []ast.Stmt, live liveSet) bool {
	for _, stmt := range stmts {
		if sa.analyzeStmt(stmt, live) {
			return true
		}
	}
	return false
}

// analyzeStmt handles one statement; the return value reports whether the
// statement always terminates the enclosing path.
func (sa *scratchAnalysis) analyzeStmt(stmt ast.Stmt, live liveSet) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		sa.recordAcquisitions(s, live)
		return false

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if sa.isRelease(call) {
				sa.kill(call, live)
				return false
			}
			if isBuiltinPanic(sa.pass.TypesInfo(), call) {
				// Unwinding discards the path; recovered panics surface as
				// task errors and the pooled buffer is plain garbage.
				return true
			}
		}
		return false

	case *ast.DeferStmt:
		// A deferred release covers every return after registration.
		if sa.isRelease(s.Call) {
			sa.kill(s.Call, live)
		}
		return false

	case *ast.ReturnStmt:
		sa.reportLive(live, s.Return, "this return")
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the current path; the loop join below
		// keeps pre-loop acquisitions conservatively live.
		return true

	case *ast.BlockStmt:
		return sa.analyzeStmts(s.List, live)

	case *ast.LabeledStmt:
		return sa.analyzeStmt(s.Stmt, live)

	case *ast.IfStmt:
		if s.Init != nil {
			sa.analyzeStmt(s.Init, live)
		}
		thenLive := live.clone()
		thenTerm := sa.analyzeStmts(s.Body.List, thenLive)
		elseLive := live.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = sa.analyzeStmt(s.Else, elseLive)
		}
		joinBranches(live, []liveSet{thenLive, elseLive}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm && s.Else != nil

	case *ast.ForStmt:
		if s.Init != nil {
			sa.analyzeStmt(s.Init, live)
		}
		bodyLive := live.clone()
		sa.analyzeStmts(s.Body.List, bodyLive)
		joinBranches(live, []liveSet{bodyLive}, []bool{false})
		return false

	case *ast.RangeStmt:
		bodyLive := live.clone()
		sa.analyzeStmts(s.Body.List, bodyLive)
		joinBranches(live, []liveSet{bodyLive}, []bool{false})
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				sa.analyzeStmt(sw.Init, live)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				sa.analyzeStmt(sw.Init, live)
			}
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		var arms []liveSet
		var terms []bool
		for _, clause := range clauses {
			var body []ast.Stmt
			switch c := clause.(type) {
			case *ast.CaseClause:
				body = c.Body
				hasDefault = hasDefault || c.List == nil
			case *ast.CommClause:
				body = c.Body
				hasDefault = hasDefault || c.Comm == nil
			}
			armLive := live.clone()
			arms = append(arms, armLive)
			terms = append(terms, sa.analyzeStmts(body, armLive))
		}
		allTerm := len(arms) > 0 && hasDefault
		for _, t := range terms {
			allTerm = allTerm && t
		}
		joinBranches(live, arms, terms)
		return allTerm

	default:
		// Declarations, sends, go statements, inc/dec: no effect on the
		// live set (nested literals are analyzed independently).
		return false
	}
}

// joinBranches merges branch live-sets back into live: an acquisition made
// on any non-terminating arm stays live, and an acquisition released on
// only some continuing arms stays live too (must-release).
func joinBranches(live liveSet, arms []liveSet, terms []bool) {
	// Release in the pre-state counts only if every continuing arm agrees.
	for v := range live {
		releasedEverywhere := true
		for i, arm := range arms {
			if terms[i] {
				continue
			}
			if _, still := arm[v]; still {
				releasedEverywhere = false
				break
			}
		}
		if releasedEverywhere && anyContinues(terms, arms) {
			delete(live, v)
		}
	}
	// New acquisitions on continuing arms flow out.
	for i, arm := range arms {
		if terms[i] {
			continue
		}
		for v, pos := range arm {
			if _, ok := live[v]; !ok {
				live[v] = pos
			}
		}
	}
}

// anyContinues reports whether at least one arm falls through the join.
func anyContinues(terms []bool, arms []liveSet) bool {
	if len(arms) == 0 {
		return false
	}
	for _, t := range terms {
		if !t {
			return true
		}
	}
	return false
}

// recordAcquisitions registers scratch acquisitions assigned to local
// variables.
func (sa *scratchAnalysis) recordAcquisitions(s *ast.AssignStmt, live liveSet) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	info := sa.pass.TypesInfo()
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !sa.isAcquire(call) {
			continue
		}
		// Mark the call handled so reportUnbound does not flag it twice.
		sa.bound[call.Pos()] = true
		ident, ok := s.Lhs[i].(*ast.Ident)
		if !ok || ident.Name == "_" {
			// An acquisition whose result is discarded or stored through a
			// non-identifier (field, index) can never be proven released;
			// report at once.
			sa.pass.Reportf(call.Pos(), "scratch acquisition is not bound to a local variable, so no release can be verified")
			continue
		}
		obj := info.Defs[ident]
		if obj == nil {
			obj = info.Uses[ident]
		}
		if v, ok := obj.(*types.Var); ok {
			live[v] = call.Pos()
		}
	}
}

// isAcquire reports a call to scratch.Dense or scratch.Get.
func (sa *scratchAnalysis) isAcquire(call *ast.CallExpr) bool {
	info := sa.pass.TypesInfo()
	return isPkgFunc(info, call, scratchPkg, "Dense") || isPkgFunc(info, call, scratchPkg, "Get")
}

// isRelease reports a call to scratch.Release or scratch.Put.
func (sa *scratchAnalysis) isRelease(call *ast.CallExpr) bool {
	info := sa.pass.TypesInfo()
	return isPkgFunc(info, call, scratchPkg, "Release") || isPkgFunc(info, call, scratchPkg, "Put")
}

// kill removes the released variable from the live set.
func (sa *scratchAnalysis) kill(call *ast.CallExpr, live liveSet) {
	info := sa.pass.TypesInfo()
	for _, arg := range call.Args {
		ident, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := info.Uses[ident].(*types.Var); ok {
			delete(live, v)
		}
	}
}

// reportLive emits one diagnostic per live acquisition at a path exit.
func (sa *scratchAnalysis) reportLive(live liveSet, at token.Pos, where string) {
	for v, pos := range live {
		acquired := sa.pass.Fset().Position(pos)
		sa.pass.Reportf(at, "scratch buffer %q acquired at line %d is not released on %s; release it on every path (doc/POOLING.md rule 3)", v.Name(), acquired.Line, where)
	}
}

// isBuiltinPanic reports a direct call to the builtin panic.
func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || ident.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[ident].(*types.Builtin)
	return isBuiltin
}
