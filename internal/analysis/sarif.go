package analysis

// SARIF 2.1.0 output for GitHub code scanning. The emitted log is the
// minimal-but-valid subset code scanning ingests: one run, the calint
// driver with one reportingDescriptor per registered check, and one result
// per diagnostic with a physical location (module-relative URI against the
// %SRCROOT% base) and a partial fingerprint matching the baseline file's
// (baseline.go), so code-scanning alert identity survives line drift the
// same way baseline entries do.
//
// ValidateSARIF is a structural schema check used by the unit tests and by
// the driver after generation: the network-fetched JSON schema is off the
// table (no deps, no network in CI), so the properties the 2.1.0 schema
// marks required on the path we emit are asserted directly.

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

const (
	sarifVersion   = "2.1.0"
	sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
	toolName       = "calint"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diags as a SARIF 2.1.0 log. File paths are made
// relative to moduleRoot (and slash-separated) so the log is stable across
// checkouts.
func WriteSARIF(w io.Writer, diags []Diagnostic, moduleRoot string) error {
	rules := make([]sarifRule, 0, 8)
	for _, name := range CheckNames() {
		rule := sarifRule{ID: name, ShortDescription: sarifMessage{Text: CheckDocs()[name]}}
		if e, ok := Explain(name); ok {
			// Repo-relative doc link; `calint -explain <check>` prints the
			// same anchor with the rationale inline.
			rule.HelpURI = e.Anchor
		}
		rules = append(rules, rule)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		rel := sarifRelPath(moduleRoot, d.Pos.Filename)
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: rel, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{
				"calint/v1": Fingerprint(d, moduleRoot),
			},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: toolName, InformationURI: "doc/ANALYSIS.md", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifRelPath relativizes and slash-normalizes a diagnostic path.
func sarifRelPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// ValidateSARIF structurally checks that data is a SARIF 2.1.0 log with
// the properties required on the run/tool/driver/result path: version and
// $schema pinned to 2.1.0, at least one run, a named driver, every result
// carrying ruleId/message/locations, every ruleId declared in the driver's
// rules, and every location carrying an artifact URI and a positive
// startLine.
func ValidateSARIF(data []byte) error {
	var log map[string]any
	if err := json.Unmarshal(data, &log); err != nil {
		return fmt.Errorf("sarif: not JSON: %w", err)
	}
	if v, _ := log["version"].(string); v != sarifVersion {
		return fmt.Errorf("sarif: version = %q, want %q", v, sarifVersion)
	}
	if s, _ := log["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		return fmt.Errorf("sarif: $schema %q does not pin 2.1.0", s)
	}
	runs, ok := log["runs"].([]any)
	if !ok || len(runs) == 0 {
		return fmt.Errorf("sarif: runs must be a non-empty array")
	}
	for i, r := range runs {
		run, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d] is not an object", i)
		}
		tool, _ := run["tool"].(map[string]any)
		driver, _ := tool["driver"].(map[string]any)
		name, _ := driver["name"].(string)
		if name == "" {
			return fmt.Errorf("sarif: runs[%d].tool.driver.name missing", i)
		}
		ruleIDs := map[string]bool{}
		if rules, ok := driver["rules"].([]any); ok {
			for j, rr := range rules {
				rule, ok := rr.(map[string]any)
				if !ok {
					return fmt.Errorf("sarif: rules[%d] is not an object", j)
				}
				id, _ := rule["id"].(string)
				if id == "" {
					return fmt.Errorf("sarif: rules[%d].id missing", j)
				}
				ruleIDs[id] = true
			}
		}
		results, ok := run["results"].([]any)
		if !ok {
			return fmt.Errorf("sarif: runs[%d].results missing (must be present, possibly empty)", i)
		}
		for j, rr := range results {
			res, ok := rr.(map[string]any)
			if !ok {
				return fmt.Errorf("sarif: results[%d] is not an object", j)
			}
			rid, _ := res["ruleId"].(string)
			if rid == "" {
				return fmt.Errorf("sarif: results[%d].ruleId missing", j)
			}
			if len(ruleIDs) > 0 && !ruleIDs[rid] {
				return fmt.Errorf("sarif: results[%d].ruleId %q not declared in driver rules", j, rid)
			}
			msg, _ := res["message"].(map[string]any)
			if text, _ := msg["text"].(string); text == "" {
				return fmt.Errorf("sarif: results[%d].message.text missing", j)
			}
			locs, ok := res["locations"].([]any)
			if !ok || len(locs) == 0 {
				return fmt.Errorf("sarif: results[%d].locations missing", j)
			}
			loc, _ := locs[0].(map[string]any)
			phys, _ := loc["physicalLocation"].(map[string]any)
			art, _ := phys["artifactLocation"].(map[string]any)
			if uri, _ := art["uri"].(string); uri == "" {
				return fmt.Errorf("sarif: results[%d] artifactLocation.uri missing", j)
			}
			region, _ := phys["region"].(map[string]any)
			if line, _ := region["startLine"].(float64); line < 1 {
				return fmt.Errorf("sarif: results[%d] region.startLine missing or < 1", j)
			}
		}
	}
	return nil
}
