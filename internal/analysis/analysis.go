// Package analysis is calint's project-specific static-analysis framework:
// a stdlib-only (go/ast, go/parser, go/types, go/token) analyzer suite that
// mechanically enforces the runtime invariants the executor stack documents
// but generic linters cannot know:
//
//   - scratch-release: every internal/scratch acquisition is released on
//     every return path of the acquiring function (doc/POOLING.md rule 3);
//   - ctx-propagation: context-aware code uses the *Ctx entry points and
//     library packages never mint context.Background()/TODO() of their own
//     (doc/CANCELLATION.md);
//   - error-contract: the numerical library packages panic only with typed
//     errors and wrap sentinels with %w, so errors.Is survives the pool's
//     panic-to-error recovery;
//   - goroutine-hygiene: goroutines inside internal/sched go through the
//     pool's recover path, never a naked `go func()`;
//   - metrics-hygiene: Stats/Metrics snapshot methods in factor and
//     internal/sched read their fields via sync/atomic or under the owning
//     mutex, never as plain loads racing the hot path
//     (doc/OBSERVABILITY.md).
//
// On top of the per-package checks sits a stdlib-only dataflow layer — a
// per-function control-flow-graph builder (cfg.go) and a module-wide call
// graph from go/types callee resolution (callgraph.go) — carrying the
// whole-program checks (program.go):
//
//   - lock-order: the global mutex-acquisition graph across internal/sched,
//     factor, internal/obs and internal/trace must be acyclic — a cycle in
//     held-lock → acquired-lock edges is a potential deadlock
//     (doc/ANALYSIS.md#lock-order declares the sanctioned hierarchy);
//   - hotpath-alloc: functions reachable from Dgemm's pack/microkernel
//     driver and sched.runTask must not allocate per call;
//   - atomic-discipline: a field accessed via sync/atomic anywhere must be
//     accessed atomically everywhere;
//   - ctx-propagation (call-graph aware): ctx-bearing code must not reach
//     Pool.Submit through any ctx-less chain, and library packages never
//     mint root contexts (doc/CANCELLATION.md).
//
// Checks run over type-checked packages loaded from source by Loader; the
// cmd/calint driver applies them to the whole module. Individual findings
// can be suppressed with a `// calint:ignore <check> [-- reason]` comment
// on the offending line or the line above it (see ignore.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding of one check.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Check is the name of the check that produced the finding.
	Check string
	// Message describes the violation and the expected idiom.
	Message string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one named invariant analyzer.
type Check struct {
	// Name identifies the check in diagnostics and ignore comments.
	Name string
	// Doc is a one-line description shown by `calint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Checks returns the per-package suite in a stable order. The whole-program
// suite lives in ProgramChecks (program.go); CheckNames covers both.
func Checks() []*Check {
	return []*Check{
		scratchReleaseCheck(),
		errorContractCheck(),
		goroutineHygieneCheck(),
		metricsHygieneCheck(),
	}
}

// CheckNames returns the names of every registered check — per-package
// first, then whole-program — in registry order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	for _, c := range ProgramChecks() {
		names = append(names, c.Name)
	}
	return names
}

// CheckDocs returns name → one-line doc for every registered check.
func CheckDocs() map[string]string {
	docs := make(map[string]string)
	for _, c := range Checks() {
		docs[c.Name] = c.Doc
	}
	for _, c := range ProgramChecks() {
		docs[c.Name] = c.Doc
	}
	return docs
}

// Pass hands one type-checked package to one check and collects its
// diagnostics, applying ignore-comment suppression.
type Pass struct {
	check   string
	fset    *token.FileSet
	pkg     *Package
	ignores ignoreIndex
	diags   *[]Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.fset }

// Files returns the package's parsed files (tests excluded).
func (p *Pass) Files() []*ast.File { return p.pkg.Syntax }

// PkgPath returns the package's import path. For packages loaded with
// LoadAs (golden-test fixtures) this is the masqueraded path.
func (p *Pass) PkgPath() string { return p.pkg.Path }

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.pkg.Info }

// Reportf records a diagnostic at pos unless an ignore comment suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.fset.Position(pos)
	if p.ignores.suppressed(p.check, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// RunChecks applies every given check to the package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func RunChecks(pkg *Package, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	ignores := buildIgnoreIndex(pkg.Fset, pkg.Syntax)
	for _, c := range checks {
		pass := &Pass{
			check:   c.Name,
			fset:    pkg.Fset,
			pkg:     pkg,
			ignores: ignores,
			diags:   &diags,
		}
		c.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// funcObj resolves a call expression's callee to its *types.Func, looking
// through parentheses. It returns nil for builtins, conversions and
// indirect calls through variables.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the named function from a package
// whose import path has the given suffix (suffix matching keeps fixtures
// that import the real runtime packages working under any module root).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	f := funcObj(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil {
		return false
	}
	return hasPathSuffix(f.Pkg().Path(), pkgSuffix)
}

// hasPathSuffix reports whether path equals suffix or ends in "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.AssignableTo(t, errorType)
}
