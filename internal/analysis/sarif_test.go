package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:     token.Position{Filename: "/mod/internal/sched/pool.go", Line: 42, Column: 7},
			Check:   "lock-order",
			Message: "lock order inversion in Pool.drain: acquiring a while holding b",
		},
		{
			Pos:     token.Position{Filename: "/mod/factor/engine.go", Line: 9, Column: 1},
			Check:   "hotpath-alloc",
			Message: "allocation in hot path (Dgemm): make([]T) allocates",
		},
	}
}

// TestSARIFRoundTrip: WriteSARIF output must pass the structural 2.1.0
// validation and carry module-relative URIs and baseline-compatible
// fingerprints.
func TestSARIFRoundTrip(t *testing.T) {
	diags := sampleDiags()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags, "/mod"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("ValidateSARIF rejected our own output: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"uri": "internal/sched/pool.go"`) {
		t.Errorf("URI not module-relative:\n%s", out)
	}
	if !strings.Contains(out, Fingerprint(diags[0], "/mod")) {
		t.Errorf("partialFingerprints missing baseline fingerprint")
	}
	// Every registered check must appear as a rule (default-on contract).
	for _, name := range CheckNames() {
		if !strings.Contains(out, `"id": "`+name+`"`) {
			t.Errorf("rule %s missing from driver rules", name)
		}
	}
}

// TestSARIFEmptyResults: an all-clean run still emits a valid log with an
// empty results array (code scanning requires the property to be present).
func TestSARIFEmptyResults(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, "/mod"); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Fatalf("ValidateSARIF: %v", err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must serialize results as []:\n%s", buf.String())
	}
}

// TestValidateSARIFRejects: tampered logs must fail validation for the
// right reason.
func TestValidateSARIFRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), "/mod"); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	tamper := func(t *testing.T, mutate func(m map[string]any)) []byte {
		t.Helper()
		var m map[string]any
		if err := json.Unmarshal(base, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	run := func(m map[string]any) map[string]any {
		return m["runs"].([]any)[0].(map[string]any)
	}

	cases := []struct {
		name    string
		mutate  func(m map[string]any)
		wantErr string
	}{
		{"wrong version", func(m map[string]any) { m["version"] = "2.0.0" }, "version"},
		{"no runs", func(m map[string]any) { m["runs"] = []any{} }, "runs"},
		{"unnamed driver", func(m map[string]any) {
			run(m)["tool"].(map[string]any)["driver"].(map[string]any)["name"] = ""
		}, "driver.name"},
		{"undeclared ruleId", func(m map[string]any) {
			run(m)["results"].([]any)[0].(map[string]any)["ruleId"] = "no-such-check"
		}, "not declared"},
		{"empty message", func(m map[string]any) {
			run(m)["results"].([]any)[0].(map[string]any)["message"] = map[string]any{"text": ""}
		}, "message.text"},
		{"zero startLine", func(m map[string]any) {
			res := run(m)["results"].([]any)[0].(map[string]any)
			loc := res["locations"].([]any)[0].(map[string]any)
			loc["physicalLocation"].(map[string]any)["region"] = map[string]any{"startLine": 0}
		}, "startLine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSARIF(tamper(t, tc.mutate))
			if err == nil {
				t.Fatal("tampered log validated")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
