package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// errContractPkgs lists the module-relative paths of the numerical library
// packages bound by the typed-error contract (subpackages included).
var errContractPkgs = []string{
	"internal/lapack",
	"internal/blas",
	"internal/core",
	"factor",
}

// errorContractCheck enforces the library error contract:
//
//  1. In the numerical library packages (internal/lapack, internal/blas,
//     internal/core, factor) every panic must carry a typed error value —
//     e.g. panic(fmt.Errorf("%w: ...", ErrShape, ...)) — never a bare
//     string or Sprintf. The scheduler's recover path (sched.runTask)
//     converts task panics into submission errors with %w, so a typed
//     panic keeps errors.Is(err, ErrShape) working end to end while a
//     bare one decays into an opaque string.
//  2. Everywhere: a fmt.Errorf call that passes a typed sentinel
//     (an exported error variable named Err...) must wrap it with %w, or
//     errors.Is on the result silently stops matching.
//
// Test files are exempt (the loader never parses them).
func errorContractCheck() *Check {
	return &Check{
		Name: "error-contract",
		Doc:  "library packages panic only with typed errors; fmt.Errorf must wrap Err... sentinels with %w",
		Run:  runErrorContract,
	}
}

func runErrorContract(pass *Pass) {
	info := pass.TypesInfo()
	inLibrary := errContractScoped(pass)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if inLibrary && isBuiltinPanic(info, call) && len(call.Args) == 1 {
				if t := info.Types[call.Args[0]].Type; !implementsError(t) {
					pass.Reportf(call.Pos(), "bare panic in library package %s; panic with a typed error (e.g. fmt.Errorf(\"%%w: ...\", ErrShape, ...)) so the pool's recover path preserves errors.Is", pass.PkgPath())
				}
			}
			if isPkgFunc(info, call, "fmt", "Errorf") && len(call.Args) >= 2 {
				checkErrorfWrap(pass, call)
			}
			return true
		})
	}
}

// errContractScoped reports whether the package is one of the
// typed-panic-only library packages.
func errContractScoped(pass *Pass) bool {
	rel := passRel(pass)
	for _, p := range errContractPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf calls that pass more Err... sentinels
// than the format string has %w verbs.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo()
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wraps := strings.Count(format, "%w") - strings.Count(format, "%%w")
	var sentinels []string
	for _, arg := range call.Args[1:] {
		if name, ok := sentinelName(info, arg); ok {
			sentinels = append(sentinels, name)
		}
	}
	if len(sentinels) > wraps {
		pass.Reportf(call.Pos(), "fmt.Errorf passes sentinel %s without a matching %%w verb, so errors.Is will not match the result", strings.Join(sentinels, ", "))
	}
}

// sentinelName reports whether arg is a reference to an error variable
// whose name starts with "Err" (the project's sentinel convention).
func sentinelName(info *types.Info, arg ast.Expr) (string, bool) {
	var ident *ast.Ident
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[ident].(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") || !implementsError(v.Type()) {
		return "", false
	}
	return v.Name(), true
}
