package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted regex from a `// want "..."` expectation
// comment in a fixture file.
var wantRe = regexp.MustCompile(`want ("(?:[^"\\]|\\.)*")`)

// expectation is one pending `// want` assertion in a fixture.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TestGolden runs the full suite over each testdata fixture (masqueraded
// onto the import path its checks are scoped to) and asserts that the
// diagnostics match the fixture's `// want "regex"` comments exactly: every
// want is matched by a diagnostic on its line, and no diagnostic escapes a
// want.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir string // under testdata/src
		as  string // masquerade import path
	}{
		{"scratchrelease", "repro/internal/scratchfix"},
		// Pack-buffer paths of the rebuilt BLAS3: a leaked pack buffer in a
		// Dgemm-shaped driver must be flagged under the blas import path.
		{"scratchblas", "repro/internal/blas"},
		{"ctxprop", "repro/internal/ctxlib"},
		{"errcontract", "repro/internal/core/fixture"},
		{"gohygiene", "repro/internal/sched/fixture"},
		// The hygiene scope also covers the engine and the chaos injector.
		{"gohygiene", "repro/factor/fixture"},
		{"gohygiene", "repro/internal/fault/fixture"},
		// Scope probe: the same Background() call that is a finding in a
		// library package must be clean under cmd/.
		{"cmdscope", "repro/cmd/cmdscope"},
		// Scope probe: naked go statements outside the hygiene scope are
		// not findings.
		{"gohygieneoos", "repro/internal/matrix/fixture"},
		// Snapshot-method discipline in both instrumented packages.
		{"metricshygiene", "repro/factor/fixture"},
		{"metricshygiene", "repro/internal/sched/fixture"},
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := loader.LoadAs(dir, tc.as)
			if err != nil {
				t.Fatalf("load %s: %v", tc.dir, err)
			}
			wants, err := collectWants(pkg)
			if err != nil {
				t.Fatal(err)
			}
			diags := RunChecks(pkg, Checks())
			for _, d := range diags {
				if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// collectWants scans the fixture's comments for `// want "..."` assertions.
// The expectation applies to the comment's own line (trailing-comment
// style).
func collectWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range pkg.Syntax {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				raw, err := strconv.Unquote(m[1])
				if err != nil {
					return nil, fmt.Errorf("bad want literal %s: %v", m[1], err)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("bad want regex %q: %v", raw, err)
				}
				pos := pkg.Fset.Position(c.Slash)
				wants = append(wants, &expectation{
					file:    pos.Filename,
					line:    pos.Line,
					pattern: re,
				})
			}
		}
	}
	return wants, nil
}

// claim consumes the first unmatched expectation on the diagnostic's line
// whose regex matches the message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestCheckNamesStable pins the registry order and the names ignore
// comments refer to.
func TestCheckNamesStable(t *testing.T) {
	got := strings.Join(CheckNames(), ",")
	want := "scratch-release,ctx-propagation,error-contract,goroutine-hygiene,metrics-hygiene"
	if got != want {
		t.Fatalf("CheckNames() = %s, want %s", got, want)
	}
}
