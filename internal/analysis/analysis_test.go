package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the quoted regex from a `// want "..."` expectation
// comment in a fixture file.
var wantRe = regexp.MustCompile(`want ("(?:[^"\\]|\\.)*")`)

// expectation is one pending `// want` assertion in a fixture.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TestGolden runs the full suite over each testdata fixture (masqueraded
// onto the import path its checks are scoped to) and asserts that the
// diagnostics match the fixture's `// want "regex"` comments exactly: every
// want is matched by a diagnostic on its line, and no diagnostic escapes a
// want.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir     string // under testdata/src
		as      string // masquerade import path
		program bool   // run the whole-program suite instead of the per-package one
	}{
		{dir: "scratchrelease", as: "repro/internal/scratchfix"},
		// Pack-buffer paths of the rebuilt BLAS3: a leaked pack buffer in a
		// Dgemm-shaped driver must be flagged under the blas import path.
		{dir: "scratchblas", as: "repro/internal/blas"},
		{dir: "ctxprop", as: "repro/internal/ctxlib", program: true},
		{dir: "errcontract", as: "repro/internal/core/fixture"},
		{dir: "gohygiene", as: "repro/internal/sched/fixture"},
		// The hygiene scope also covers the engine and the chaos injector.
		{dir: "gohygiene", as: "repro/factor/fixture"},
		{dir: "gohygiene", as: "repro/internal/fault/fixture"},
		// Scope probe: the same Background() call that is a finding in a
		// library package must be clean under cmd/.
		{dir: "cmdscope", as: "repro/cmd/cmdscope", program: true},
		// Scope probe: naked go statements outside the hygiene scope are
		// not findings.
		{dir: "gohygieneoos", as: "repro/internal/matrix/fixture"},
		// Snapshot-method discipline in both instrumented packages.
		{dir: "metricshygiene", as: "repro/factor/fixture"},
		{dir: "metricshygiene", as: "repro/internal/sched/fixture"},
		// Whole-program dataflow checks: an inverted lock pair inside the
		// lock-order scope, allocating constructs reachable from a Dgemm
		// root, and mixed atomic/plain field access.
		{dir: "lockorder", as: "repro/internal/sched/lockfix", program: true},
		{dir: "hotalloc", as: "repro/internal/blas/hotfix", program: true},
		// The ABFT checksum-verification roots: allocating constructs
		// reachable from a VerifyLUColumns-shaped root under internal/abft.
		{dir: "hotverify", as: "repro/internal/abft/hotfix", program: true},
		{dir: "atomicdisc", as: "repro/internal/atomfix", program: true},
		// Scope probe: the same inverted lock pair outside the lock-order
		// scope is not a finding.
		{dir: "lockorderoos", as: "repro/internal/matrix/lockoos", program: true},
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := loader.LoadAs(dir, tc.as)
			if err != nil {
				t.Fatalf("load %s: %v", tc.dir, err)
			}
			wants, err := collectWants(pkg)
			if err != nil {
				t.Fatal(err)
			}
			var diags []Diagnostic
			if tc.program {
				diags = RunProgramChecks(BuildProgram([]*Package{pkg}), ProgramChecks())
			} else {
				diags = RunChecks(pkg, Checks())
			}
			for _, d := range diags {
				if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// collectWants scans the fixture's comments for `// want "..."` assertions.
// The expectation applies to the comment's own line (trailing-comment
// style).
func collectWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range pkg.Syntax {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				raw, err := strconv.Unquote(m[1])
				if err != nil {
					return nil, fmt.Errorf("bad want literal %s: %v", m[1], err)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("bad want regex %q: %v", raw, err)
				}
				pos := pkg.Fset.Position(c.Slash)
				wants = append(wants, &expectation{
					file:    pos.Filename,
					line:    pos.Line,
					pattern: re,
				})
			}
		}
	}
	return wants, nil
}

// claim consumes the first unmatched expectation on the diagnostic's line
// whose regex matches the message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestExplainComplete: every registered check must have a -explain entry
// with a doc/ANALYSIS.md anchor matching its name.
func TestExplainComplete(t *testing.T) {
	all, err := ExplainAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if e.Rationale == "" {
			t.Errorf("%s: empty rationale", e.Name)
		}
		if want := "doc/ANALYSIS.md#" + e.Name; e.Anchor != want {
			t.Errorf("%s: anchor = %q, want %q", e.Name, e.Anchor, want)
		}
	}
}

// TestCheckNamesStable pins the registry order and the names ignore
// comments refer to.
func TestCheckNamesStable(t *testing.T) {
	got := strings.Join(CheckNames(), ",")
	want := "scratch-release,error-contract,goroutine-hygiene,metrics-hygiene," +
		"ctx-propagation,lock-order,hotpath-alloc,atomic-discipline"
	if got != want {
		t.Fatalf("CheckNames() = %s, want %s", got, want)
	}
}
