package analysis

// lock-order: build the global mutex-acquisition graph and reject cycles.
//
// A node is a lock identity — a struct field ("repro/internal/sched.Pool.mu")
// or a package-level variable ("repro/internal/obs.defaultMu") of a sync
// mutex type; instances of the same field collapse onto one node. An edge
// A → B means some goroutine may acquire B while holding A. The held-lock
// set is computed flow-sensitively per function over the CFG (may-hold
// union join, iterated to fixpoint for loops), and calls propagate
// transitively: at a call site with held set H, every lock the callee may
// acquire — directly or through its own callees, excluding `go` spawns,
// which start with an empty held set — adds edges from each lock of H.
// Any cycle in the resulting graph (including a self-loop: re-acquiring a
// held, non-reentrant lock) is a potential deadlock and is reported on
// every participating edge.
//
// Known imprecision, chosen deliberately:
//   - identities are per-field, not per-instance, so hand-over-hand locking
//     of parent/child nodes of the same type reports a self-cycle — if the
//     sharded-pool work ever needs that pattern, it gets an ignore comment
//     with the instance argument spelled out;
//   - RLock counts as Lock (reader/writer cycles still deadlock through a
//     blocked writer);
//   - a deferred call other than Unlock is analyzed with the held set at
//     the defer statement, not at function exit;
//   - FuncLit bodies are treated as running where the literal appears
//     (immediately-invoked and helper-callback closures); goroutine bodies
//     under `go` are analyzed with an empty held set.
//
// The sanctioned hierarchy for the runtime's locks is declared in
// doc/ANALYSIS.md#lock-order; this check is what makes it binding.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockScopePrefixes are the module-relative trees whose functions are
// analyzed flow-sensitively. Transitive acquire summaries still follow
// callees outside the scope.
var lockScopePrefixes = []string{"internal/sched", "factor", "internal/obs", "internal/trace"}

func lockOrderCheck() *ProgramCheck {
	return &ProgramCheck{
		Name: "lock-order",
		Doc:  "mutex acquisition order must be acyclic across sched, factor, obs and trace (deadlock freedom)",
		Run:  runLockOrder,
	}
}

// lockID names one lock node: "pkg.Type.field" or "pkg.var".
type lockID string

// lockOp classifies a sync mutex method call.
type lockOp int

const (
	lockNone lockOp = iota
	lockAcquire
	lockRelease
)

// lockEdge is one observed held→acquired pair with its earliest example.
type lockEdge struct {
	from, to lockID
	pos      token.Pos
	fn       string // qualified function name for the message
}

func runLockOrder(pass *ProgramPass) {
	g := pass.CallGraph()

	// Pass 1: direct acquisitions per function (everything the function's
	// own goroutine may lock — `go` subtrees excluded).
	direct := make(map[*types.Func]map[lockID]bool)
	for f, node := range g.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		acq := make(map[lockID]bool)
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					_ = gs
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if id, op := classifyLockCall(node.Pkg.Info, call); op == lockAcquire && id != "" {
						acq[id] = true
					}
				}
				return true
			})
		}
		walk(node.Decl.Body)
		if len(acq) > 0 {
			direct[f] = acq
		}
	}

	// Pass 2: transitive may-acquire summaries (fixpoint over call edges,
	// excluding go-spawns).
	may := make(map[*types.Func]map[lockID]bool, len(direct))
	for f, acq := range direct {
		m := make(map[lockID]bool, len(acq))
		for id := range acq {
			m[id] = true
		}
		may[f] = m
	}
	for changed := true; changed; {
		changed = false
		for f, node := range g.Nodes {
			for _, e := range node.Calls {
				if e.Kind == EdgeGo {
					continue
				}
				callee := may[e.Callee]
				if len(callee) == 0 {
					continue
				}
				m := may[f]
				if m == nil {
					m = make(map[lockID]bool, len(callee))
					may[f] = m
				}
				for id := range callee {
					if !m[id] {
						m[id] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: flow-sensitive held-set analysis of in-scope functions,
	// collecting held→acquired edges.
	edges := make(map[lockID]map[lockID]*lockEdge)
	addEdge := func(from, to lockID, pos token.Pos, fn string) {
		m := edges[from]
		if m == nil {
			m = make(map[lockID]*lockEdge)
			edges[from] = m
		}
		if prev, ok := m[to]; !ok || pos < prev.pos {
			m[to] = &lockEdge{from: from, to: to, pos: pos, fn: fn}
		}
	}
	var scoped []*FuncNode
	for _, node := range g.Nodes {
		if inLockScope(node.Pkg.Rel()) && node.Decl.Body != nil {
			scoped = append(scoped, node)
		}
	}
	sort.Slice(scoped, func(i, j int) bool { return scoped[i].Decl.Pos() < scoped[j].Decl.Pos() })
	for _, node := range scoped {
		analyzeLockFlow(node, may, addEdge)
	}

	// Pass 4: SCC cycle detection over the lock graph; report every edge
	// inside a multi-node SCC and every self-loop.
	reportCycleEdges(pass, edges)
}

// inLockScope reports whether a module-relative package path is analyzed.
func inLockScope(rel string) bool {
	for _, p := range lockScopePrefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// analyzeLockFlow runs the may-hold dataflow over one function's CFG.
func analyzeLockFlow(node *FuncNode, may map[*types.Func]map[lockID]bool, addEdge func(from, to lockID, pos token.Pos, fn string)) {
	cfg := BuildCFG(node.Decl.Body)
	fnName := qualifiedName(node.Func)

	in := make([]map[lockID]bool, len(cfg.Blocks))
	out := make([]map[lockID]bool, len(cfg.Blocks))
	for i := range out {
		out[i] = map[lockID]bool{}
		in[i] = map[lockID]bool{}
	}
	// Predecessor lists.
	preds := make([][]int, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}
	// Fixpoint. Edge emission only happens on the final converged pass so
	// transient states don't produce phantom edges (they can't — may-hold
	// grows monotonically — but one emission pass also dedups cleanly).
	transfer := func(b *Block, held map[lockID]bool, emit bool) map[lockID]bool {
		cur := make(map[lockID]bool, len(held))
		for id := range held {
			cur[id] = true
		}
		for _, n := range b.Nodes {
			scanNodeForLocks(node.Pkg.Info, n, cur, may, emit, fnName, addEdge)
		}
		return cur
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			merged := map[lockID]bool{}
			for _, p := range preds[b.Index] {
				for id := range out[p] {
					merged[id] = true
				}
			}
			in[b.Index] = merged
			next := transfer(b, merged, false)
			if !sameLockSet(next, out[b.Index]) {
				out[b.Index] = next
				changed = true
			}
		}
	}
	for _, b := range cfg.Blocks {
		transfer(b, in[b.Index], true)
	}
}

// scanNodeForLocks walks one CFG node in source order, updating the held
// set and (when emit is set) recording held→acquired edges.
func scanNodeForLocks(info *types.Info, n ast.Node, held map[lockID]bool, may map[*types.Func]map[lockID]bool, emit bool, fnName string, addEdge func(from, to lockID, pos token.Pos, fn string)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawned goroutine: fresh held set; its body's direct acquires
			// are covered when its callee/closure is analyzed on its own.
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to exit — a no-op here.
			// Other deferred calls are analyzed with the current held set.
			if _, op := classifyLockCall(info, n.Call); op == lockRelease {
				return false
			}
			return true
		case *ast.CallExpr:
			if id, op := classifyLockCall(info, n); op != lockNone {
				if id == "" {
					return true
				}
				switch op {
				case lockAcquire:
					if emit {
						for h := range held {
							addEdge(h, id, n.Pos(), fnName)
						}
					}
					held[id] = true
				case lockRelease:
					delete(held, id)
				}
				return true
			}
			if f := funcObj(info, n); f != nil {
				if acq := may[f]; len(acq) > 0 && emit {
					for h := range held {
						for id := range acq {
							addEdge(h, id, n.Pos(), fnName)
						}
					}
				}
			}
		}
		return true
	})
}

// sameLockSet reports set equality.
func sameLockSet(a, b map[lockID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// classifyLockCall recognizes sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock
// method calls and names the lock. An empty id with a non-none op means
// "a lock we cannot identify" (local or computed receiver).
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockID, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", lockNone
	}
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", lockNone
	}
	return lockExprID(info, sel.X), op
}

// lockExprID names the lock denoted by a mutex-valued expression: a struct
// field becomes "pkg.Type.field" (per-field identity), a package-level var
// becomes "pkg.var". Locals and computed expressions yield "".
func lockExprID(info *types.Info, x ast.Expr) lockID {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if selection, ok := info.Selections[x]; ok && selection.Kind() == types.FieldVal {
			recv := selection.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockID(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + selection.Obj().Name())
			}
			return ""
		}
		// Package-qualified variable: pkg.Mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockID(v.Pkg().Path() + "." + v.Name())
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockID(v.Pkg().Path() + "." + v.Name())
		}
	}
	return ""
}

// qualifiedName renders pkg-relative "Type.method" / "func" names for
// messages.
func qualifiedName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// reportCycleEdges finds strongly connected components of the lock graph
// and reports every edge whose endpoints share a component (plus
// self-loops), at the acquisition site, in deterministic order.
func reportCycleEdges(pass *ProgramPass, edges map[lockID]map[lockID]*lockEdge) {
	// Collect nodes.
	nodeSet := make(map[lockID]bool)
	for from, m := range edges {
		nodeSet[from] = true
		for to := range m {
			nodeSet[to] = true
		}
	}
	var nodes []lockID
	for id := range nodeSet {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	comp := tarjanSCC(nodes, edges)

	var cyclic []*lockEdge
	for _, m := range edges {
		for _, e := range m {
			if e.from == e.to || comp[e.from] == comp[e.to] && sccSize(comp, comp[e.from]) > 1 {
				cyclic = append(cyclic, e)
			}
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		if cyclic[i].pos != cyclic[j].pos {
			return cyclic[i].pos < cyclic[j].pos
		}
		return cyclic[i].to < cyclic[j].to
	})
	for _, e := range cyclic {
		if e.from == e.to {
			pass.Reportf(e.pos, "lock order inversion in %s: %s acquired while already held; potential self-deadlock (doc/ANALYSIS.md#lock-order)", e.fn, e.to)
			continue
		}
		// Name one reverse-path example for the message.
		back := reversePathExample(edges, comp, e)
		pass.Reportf(e.pos, "lock order inversion in %s: acquiring %s while holding %s, but %s is also acquired while %s is held (in %s); potential deadlock (doc/ANALYSIS.md#lock-order)", e.fn, e.to, e.from, e.from, e.to, back)
	}
}

// sccSize counts members of component c.
func sccSize(comp map[lockID]int, c int) int {
	n := 0
	for _, v := range comp {
		if v == c {
			n++
		}
	}
	return n
}

// reversePathExample names the function holding e.to while (eventually)
// acquiring e.from — the other half of the inversion — preferring a direct
// reverse edge.
func reversePathExample(edges map[lockID]map[lockID]*lockEdge, comp map[lockID]int, e *lockEdge) string {
	if m, ok := edges[e.to]; ok {
		if rev, ok := m[e.from]; ok {
			return rev.fn
		}
		// Any in-component successor keeps the cycle.
		var names []string
		for to, cand := range m {
			if comp[to] == comp[e.from] {
				names = append(names, cand.fn)
			}
		}
		sort.Strings(names)
		if len(names) > 0 {
			return names[0]
		}
	}
	return "another function"
}

// tarjanSCC assigns every node a component index (iterative Tarjan).
func tarjanSCC(nodes []lockID, edges map[lockID]map[lockID]*lockEdge) map[lockID]int {
	succs := func(id lockID) []lockID {
		var out []lockID
		for to := range edges[id] {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	index := make(map[lockID]int)
	low := make(map[lockID]int)
	onStack := make(map[lockID]bool)
	comp := make(map[lockID]int)
	var stack []lockID
	next, ncomp := 0, 0

	type frame struct {
		node  lockID
		succs []lockID
		i     int
	}
	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		var frames []frame
		push := func(n lockID) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack[n] = true
			frames = append(frames, frame{node: n, succs: succs(n)})
		}
		push(start)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					push(w)
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// Pop frame.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[n] < low[parent.node] {
					low[parent.node] = low[n]
				}
			}
			if low[n] == index[n] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == n {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
