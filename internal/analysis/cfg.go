package analysis

// Per-function control-flow graph. The CFG is the flow-sensitive substrate
// the whole-program checks (lock-order in particular) walk instead of the
// raw AST: basic blocks hold statements and conditions in execution order,
// and edges follow every structured-control construct Go has — if/else,
// for/range (with break/continue, labeled or not), switch/type-switch
// (with fallthrough), select, goto and defer. Returns and calls to the
// builtin panic terminate a path (panic unwinds; defers are recorded on
// the CFG rather than modeled as edges).
//
// The builder is deliberately syntactic: it needs no type information, so
// it can run on any parsed function body, and the golden tests in
// cfg_test.go pin the block/edge structure for each construct.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the synthetic block every return (and the fall-off-the-end
	// path) jumps to. It holds no nodes.
	Exit *Block
	// Defers lists the defer statements encountered anywhere in the body,
	// in source order. Deferred calls run at every exit; checks that care
	// (lock-order's unlock handling) consult this list rather than edges.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal straight-line sequence of nodes with
// a single entry and branch-free execution.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind names the construct that created the block ("entry", "if.then",
	// "for.body", "select.case", ...) for dumps and debugging.
	Kind string
	// Nodes are the statements and conditions executed in order. Condition
	// expressions of if/for/switch appear as their own entries.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// BuildCFG constructs the control-flow graph of body. A nil body (function
// declared in assembly) yields a CFG with only entry and exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jumpTo(b.cfg.Exit)
	b.resolveGotos()
	return b.cfg
}

// ctrlTarget is one enclosing breakable/continuable construct.
type ctrlTarget struct {
	label      string // enclosing label, "" when unlabeled
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	cfg     *CFG
	cur     *Block // nil while the current path is terminated
	targets []*ctrlTarget

	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built; loops and switches consume it into their target.
	pendingLabel string
	// labelBlocks maps goto labels to the block beginning the labeled
	// statement; forwardGotos holds edges to labels not yet seen.
	labelBlocks  map[string]*Block
	forwardGotos map[string][]*Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// emit appends a node to the current block, reviving the path into an
// "unreachable" block when control cannot actually get here.
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// link adds an edge from the current block (if live) to blk.
func (b *cfgBuilder) link(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
}

// jumpTo ends the current path with an unconditional edge to blk.
func (b *cfgBuilder) jumpTo(blk *Block) {
	b.link(blk)
	b.cur = nil
}

// startBlock makes blk current, linking it from the live predecessor.
func (b *cfgBuilder) startBlock(blk *Block) {
	b.link(blk)
	b.cur = blk
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget locates the break/continue target for an optional label.
func (b *cfgBuilder) findTarget(label string, needContinue bool) *ctrlTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if needContinue && t.continueTo == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		name := s.Label.Name
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// The loop/switch builder records the label on its target so
			// labeled break/continue resolve; goto to a loop label lands on
			// the loop's head via labelBlocks below.
			b.pendingLabel = name
			lbl := b.newBlock("label." + name)
			b.startBlock(lbl)
			b.registerLabel(name, lbl)
			b.stmt(s.Stmt)
		default:
			lbl := b.newBlock("label." + name)
			b.startBlock(lbl)
			b.registerLabel(name, lbl)
			b.stmt(s.Stmt)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		head := b.cur
		then := b.newBlock("if.then")
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock("if.else")
		}
		done := b.newBlock("if.done")
		head.Succs = append(head.Succs, then)
		if elseB != nil {
			head.Succs = append(head.Succs, elseB)
		} else {
			head.Succs = append(head.Succs, done)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.jumpTo(done)
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.jumpTo(done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.startBlock(head)
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, done)
		}
		var post *Block
		contTo := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			contTo = post
		}
		b.targets = append(b.targets, &ctrlTarget{label: label, breakTo: done, continueTo: contTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jumpTo(contTo)
		b.targets = b.targets[:len(b.targets)-1]
		if post != nil {
			b.cur = post
			b.emit(s.Post)
			b.jumpTo(head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.startBlock(head)
		b.emit(s.X)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		head.Succs = append(head.Succs, body, done)
		b.targets = append(b.targets, &ctrlTarget{label: label, breakTo: done, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.jumpTo(head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.stmt(sw.Init)
			}
			if sw.Tag != nil {
				b.emit(sw.Tag)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.stmt(sw.Init)
			}
			b.emit(sw.Assign)
			clauses = sw.Body.List
		}
		head := b.cur
		if head == nil {
			head = b.newBlock("unreachable")
			b.cur = head
		}
		done := b.newBlock("switch.done")
		bodies := make([]*Block, len(clauses))
		hasDefault := false
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			kind := "switch.case"
			if cc.List == nil {
				kind = "switch.default"
				hasDefault = true
			}
			bodies[i] = b.newBlock(kind)
			head.Succs = append(head.Succs, bodies[i])
		}
		if !hasDefault {
			head.Succs = append(head.Succs, done)
		}
		b.targets = append(b.targets, &ctrlTarget{label: label, breakTo: done})
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			b.cur = bodies[i]
			for _, e := range cc.List {
				b.emit(e)
			}
			fell := b.clauseBody(cc.Body)
			if fell && i+1 < len(bodies) {
				b.jumpTo(bodies[i+1])
			} else {
				b.jumpTo(done)
			}
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock("unreachable")
			b.cur = head
		}
		done := b.newBlock("select.done")
		b.targets = append(b.targets, &ctrlTarget{label: label, breakTo: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jumpTo(done)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.ReturnStmt:
		b.emit(s)
		b.jumpTo(b.cfg.Exit)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(label, false); t != nil {
				b.jumpTo(t.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.findTarget(label, true); t != nil {
				b.jumpTo(t.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			if blk, ok := b.labelBlocks[label]; ok {
				b.jumpTo(blk)
			} else {
				// Forward goto: remember the source block and patch when
				// the label is registered.
				if b.cur != nil {
					if b.forwardGotos == nil {
						b.forwardGotos = make(map[string][]*Block)
					}
					b.forwardGotos[label] = append(b.forwardGotos[label], b.cur)
				}
				b.cur = nil
			}
		}
		// FALLTHROUGH is consumed by clauseBody.

	case *ast.DeferStmt:
		b.emit(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && ident.Name == "panic" {
				// Syntactic: a shadowed panic terminates a path it need not
				// have; acceptable for a conservative CFG.
				b.cur = nil
			}
		}

	default:
		// Assignments, declarations, go, send, inc/dec, empty.
		b.emit(s)
	}
}

// clauseBody builds a case clause's statements and reports whether the
// clause ends in a fallthrough.
func (b *cfgBuilder) clauseBody(list []ast.Stmt) (fallsThrough bool) {
	for i, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i == len(list)-1 {
			return true
		}
		b.stmt(s)
	}
	return false
}

func (b *cfgBuilder) registerLabel(name string, blk *Block) {
	if b.labelBlocks == nil {
		b.labelBlocks = make(map[string]*Block)
	}
	b.labelBlocks[name] = blk
	for _, src := range b.forwardGotos[name] {
		src.Succs = append(src.Succs, blk)
	}
	delete(b.forwardGotos, name)
}

// resolveGotos drops edges for gotos whose labels never appeared (broken
// source); the paths simply terminate.
func (b *cfgBuilder) resolveGotos() { b.forwardGotos = nil }

// Dump renders the CFG in the golden-test format: one line per block,
//
//	b0 entry: x := 0; x < n -> b2 b3
//
// with nodes printed as source (whitespace collapsed) and "-" for an empty
// block. Unreferenced empty blocks are kept so indexes stay stable.
func (c *CFG) Dump() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		if len(blk.Nodes) == 0 {
			sb.WriteString(" -")
		} else {
			parts := make([]string, len(blk.Nodes))
			for i, n := range blk.Nodes {
				parts[i] = renderNode(n)
			}
			sb.WriteString(" " + strings.Join(parts, "; "))
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// renderNode prints a node as single-line source text.
func renderNode(n ast.Node) string {
	var buf bytes.Buffer
	fset := token.NewFileSet()
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
