package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// goroutineHygieneCheck enforces the executor stack's goroutine
// discipline: every `go` statement inside the scoped packages must route
// panics through a recover path. A panic escaping a naked worker, watchdog
// or injector goroutine crashes the whole process and takes every
// concurrent submission with it — the exact failure isolation
// Pool.Submit's panic-to-error contract exists to prevent.
//
// The scope covers the scheduler (internal/sched), the public engine built
// on it (factor — its watchdog and request-serving goroutines), and the
// chaos injector that perturbs both (internal/fault).
//
// A `go` statement passes when:
//   - its function literal installs a defer that calls recover()
//     (directly or inside the deferred closure), or
//   - it invokes a same-package named function whose body installs such a
//     defer (the spawn helper pattern).
func goroutineHygieneCheck() *Check {
	return &Check{
		Name: "goroutine-hygiene",
		Doc:  "go statements in internal/sched, factor and internal/fault must install a recover path (spawn helper or defer/recover)",
		Run:  runGoroutineHygiene,
	}
}

// hygienePkgs are the module-relative package paths the goroutine-hygiene
// check applies to (each including its subpackages).
var hygienePkgs = []string{schedPkg, "factor", "internal/fault"}

func runGoroutineHygiene(pass *Pass) {
	rel := passRel(pass)
	inScope := false
	for _, p := range hygienePkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.TypesInfo()
	// Index same-package function bodies so `go namedFunc(...)` can be
	// vetted against its callee.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn.Body
				}
			}
		}
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if !hasRecoverDefer(fun.Body) {
					pass.Reportf(g.Pos(), "naked go func() in %s: install a defer/recover or use the spawn helper so a panic fails one submission, not the process", rel)
				}
			default:
				callee := funcObj(info, g.Call)
				if callee != nil {
					if body, ok := bodies[callee]; ok && hasRecoverDefer(body) {
						return true
					}
				}
				pass.Reportf(g.Pos(), "go statement in %s outside the pool's recover path: route it through the spawn helper or a function that defers recover()", rel)
			}
			return true
		})
	}
}

// hasRecoverDefer reports whether the function body installs, at its top
// level, a defer whose call (or deferred closure) reaches recover().
func hasRecoverDefer(body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if ident, ok := ast.Unparen(d.Call.Fun).(*ast.Ident); ok && ident.Name == "recover" {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && callsRecover(lit.Body) {
			return true
		}
	}
	return false
}

// callsRecover reports whether the block contains a call to recover(),
// not counting nested function literals.
func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && ident.Name == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
