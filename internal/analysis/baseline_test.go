package analysis

import (
	"bytes"
	"go/token"
	"strings"
	"testing"
)

// TestFingerprintLineIndependent: the identity must survive the finding
// moving to another line (unrelated edits above it) but change when the
// message or file changes.
func TestFingerprintLineIndependent(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "/mod/factor/engine.go", Line: 10, Column: 3},
		Check:   "lock-order",
		Message: "inversion",
	}
	moved := d
	moved.Pos.Line = 200
	moved.Pos.Column = 1
	if Fingerprint(d, "/mod") != Fingerprint(moved, "/mod") {
		t.Error("fingerprint changed when only the line moved")
	}
	other := d
	other.Message = "different"
	if Fingerprint(d, "/mod") == Fingerprint(other, "/mod") {
		t.Error("fingerprint identical for different messages")
	}
	if got := Fingerprint(d, "/mod"); len(got) != 16 {
		t.Errorf("fingerprint %q is not 16 hex chars", got)
	}
}

// TestParseBaseline covers accepted syntax and the mandatory-reason rule.
func TestParseBaseline(t *testing.T) {
	good := `# comment
0123456789abcdef lock-order factor/engine.go:10 -- reviewed: engine watchdog ordering documented
`
	entries, err := ParseBaseline(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseBaseline(good): %v", err)
	}
	if len(entries) != 1 || entries[0].Check != "lock-order" || entries[0].Reason == "" {
		t.Fatalf("entries = %+v", entries)
	}

	bad := []struct {
		name, line, wantErr string
	}{
		{"missing reason", "0123456789abcdef lock-order f.go:1", "missing `-- reason`"},
		{"empty reason", "0123456789abcdef lock-order f.go:1 -- ", "missing `-- reason`"},
		{"todo reason", "0123456789abcdef lock-order f.go:1 -- TODO: justify or fix", "placeholder reason"},
		{"short fingerprint", "0123 lock-order f.go:1 -- fine", "not 16 hex digits"},
		{"missing fields", "0123456789abcdef f.go:1 -- fine", "want `<fingerprint>"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBaseline(strings.NewReader(tc.line + "\n"))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestFilterBaseline: suppressed findings drop out, unmatched entries are
// reported stale.
func TestFilterBaseline(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/mod/a.go", Line: 1}, Check: "lock-order", Message: "one"},
		{Pos: token.Position{Filename: "/mod/b.go", Line: 2}, Check: "hotpath-alloc", Message: "two"},
	}
	entries := []BaselineEntry{
		{Fingerprint: Fingerprint(diags[0], "/mod"), Check: "lock-order", Loc: "a.go:1", Reason: "ok"},
		{Fingerprint: strings.Repeat("0", 16), Check: "gone", Loc: "z.go:9", Reason: "stale"},
	}
	active, suppressed, stale := FilterBaseline(diags, entries, "/mod")
	if suppressed != 1 || len(active) != 1 || active[0].Message != "two" {
		t.Fatalf("active=%v suppressed=%d", active, suppressed)
	}
	if len(stale) != 1 || stale[0].Check != "gone" {
		t.Fatalf("stale=%v", stale)
	}
}

// TestWriteBaselineRoundTrip: -write-baseline output carries TODO reasons
// that ParseBaseline rejects until a human justifies them; with reasons
// written it parses and suppresses the original findings.
func TestWriteBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: "/mod/a.go", Line: 3}, Check: "lock-order", Message: "one"},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, diags, "/mod"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBaseline(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ParseBaseline accepted unjustified TODO entries")
	}
	justified := strings.ReplaceAll(buf.String(), "TODO: justify or fix", "reviewed and accepted")
	entries, err := ParseBaseline(strings.NewReader(justified))
	if err != nil {
		t.Fatalf("ParseBaseline(justified): %v", err)
	}
	active, suppressed, stale := FilterBaseline(diags, entries, "/mod")
	if len(active) != 0 || suppressed != 1 || len(stale) != 0 {
		t.Fatalf("round trip: active=%v suppressed=%d stale=%v", active, suppressed, stale)
	}
}
