package analysis

// Fingerprinted baseline: lets a new check land strict on new code while
// existing findings burn down explicitly instead of blocking the whole
// suite. The file is line-oriented and diff-reviewable:
//
//	# comments and blank lines are skipped
//	<fingerprint> <check> <file>:<line> -- <reason>
//
// The fingerprint is a truncated sha256 over (check, module-relative file,
// message) — deliberately NOT the line number, so a baselined finding
// survives unrelated edits above it; the file:line column is informational
// and refreshed by -write-baseline. The reason after "--" is mandatory: a
// baseline entry without a written justification is itself a finding
// (ParseBaseline rejects it). Entries that no longer match any diagnostic
// are reported as stale so the file shrinks as debt is paid.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BaselineEntry is one accepted pre-existing finding.
type BaselineEntry struct {
	// Fingerprint identifies the finding (see Fingerprint).
	Fingerprint string
	// Check is the check name, informational.
	Check string
	// Loc is the "file:line" recorded when the entry was written,
	// informational (the fingerprint is line-independent).
	Loc string
	// Reason is the mandatory justification.
	Reason string
}

// Fingerprint computes the stable identity of a diagnostic: a 16-hex-digit
// truncation of sha256(check, module-relative slash path, message).
func Fingerprint(d Diagnostic, moduleRoot string) string {
	rel := sarifRelPath(moduleRoot, d.Pos.Filename)
	h := sha256.New()
	io.WriteString(h, d.Check)
	h.Write([]byte{0})
	io.WriteString(h, rel)
	h.Write([]byte{0})
	io.WriteString(h, d.Message)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// ParseBaseline reads baseline entries, rejecting malformed lines and
// entries without a reason.
func ParseBaseline(r io.Reader) ([]BaselineEntry, error) {
	var entries []BaselineEntry
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		body, reason, found := strings.Cut(line, "--")
		reason = strings.TrimSpace(reason)
		if !found || reason == "" {
			return nil, fmt.Errorf("baseline line %d: missing `-- reason` (every baselined finding needs a written justification)", lineno)
		}
		if strings.HasPrefix(reason, "TODO") {
			return nil, fmt.Errorf("baseline line %d: placeholder reason %q — replace the -write-baseline TODO with a real justification", lineno, reason)
		}
		fields := strings.Fields(body)
		if len(fields) != 3 {
			return nil, fmt.Errorf("baseline line %d: want `<fingerprint> <check> <file>:<line> -- <reason>`, got %q", lineno, line)
		}
		if len(fields[0]) != 16 || !isHex(fields[0]) {
			return nil, fmt.Errorf("baseline line %d: fingerprint %q is not 16 hex digits", lineno, fields[0])
		}
		entries = append(entries, BaselineEntry{
			Fingerprint: fields[0],
			Check:       fields[1],
			Loc:         fields[2],
			Reason:      reason,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// FilterBaseline splits diags into active findings and baselined ones, and
// returns the entries that matched nothing (stale — candidates for
// deletion). Multiple diagnostics may share a fingerprint (same message in
// one file); one entry covers them all.
func FilterBaseline(diags []Diagnostic, entries []BaselineEntry, moduleRoot string) (active []Diagnostic, suppressed int, stale []BaselineEntry) {
	byFP := make(map[string]bool, len(entries))
	for _, e := range entries {
		byFP[e.Fingerprint] = true
	}
	used := make(map[string]bool)
	for _, d := range diags {
		fp := Fingerprint(d, moduleRoot)
		if byFP[fp] {
			used[fp] = true
			suppressed++
			continue
		}
		active = append(active, d)
	}
	for _, e := range entries {
		if !used[e.Fingerprint] {
			stale = append(stale, e)
		}
	}
	return active, suppressed, stale
}

// WriteBaseline renders diags as a baseline file. Each entry gets a
// placeholder reason the author must replace — ParseBaseline rejects the
// file until they do, which is the point.
func WriteBaseline(w io.Writer, diags []Diagnostic, moduleRoot string) error {
	if _, err := fmt.Fprintf(w, "# calint baseline — accepted pre-existing findings (doc/ANALYSIS.md#baseline)\n# <fingerprint> <check> <file>:<line> -- <reason>\n"); err != nil {
		return err
	}
	type row struct{ fp, check, loc string }
	var rows []row
	seen := make(map[string]bool)
	for _, d := range diags {
		fp := Fingerprint(d, moduleRoot)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		rel := sarifRelPath(moduleRoot, d.Pos.Filename)
		rows = append(rows, row{fp: fp, check: d.Check, loc: fmt.Sprintf("%s:%d", rel, d.Pos.Line)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].loc != rows[j].loc {
			return rows[i].loc < rows[j].loc
		}
		return rows[i].fp < rows[j].fp
	})
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s %s %s -- TODO: justify or fix\n", r.fp, r.check, r.loc); err != nil {
			return err
		}
	}
	return nil
}
