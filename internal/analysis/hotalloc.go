package analysis

// hotpath-alloc: no per-call allocation in the packed BLAS3 kernels or the
// scheduler's task-execution path.
//
// The hot set is computed by reachability over the module call graph from
// the roots below (the Goto-style Dgemm driver, its pack/microkernel
// helpers, and sched.runTask — the code that runs once per macro-block
// iteration or per task). Inside a hot function the check flags every
// construct that can allocate per call:
//
//   - heap-bound composite literals — &T{}, slice and map literals — and
//     new(T) (plain struct/array value literals stay on the stack and are
//     not flagged; their boxing is caught by the conversion rule);
//   - make of a slice, map or channel;
//   - append to a slice that was not created with an explicit capacity
//     (make([]T, len, cap)) in the same function;
//   - implicit or explicit conversion of a concrete, non-pointer-shaped
//     value (ints, strings, structs) to an interface — including variadic
//     ...any arguments, the fmt.Errorf trap;
//   - func literals that capture variables (a capturing closure is heap-
//     allocated each time the literal is evaluated; inside a loop that is
//     per-iteration).
//
// internal/scratch is the sanctioned allocator: its functions are neither
// flagged nor traversed (Dgemm's pack buffers come from there by design).
// Arguments of the builtin panic are exempt — precondition panics are the
// cold path and deliberately carry rich fmt.Errorf messages. Anything else
// needs a `// calint:ignore hotpath-alloc -- reason` or a baseline entry.
// The runtime complement is the AllocsPerRun gate in CI (alloc_test.go in
// internal/blas and factor): this check explains *where* an allocation
// crept in; the gate proves the steady state is allocation-free.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotRoots names the functions whose transitive callees form the hot set.
// A root matches by function name within a module-relative package tree,
// so fixtures masqueraded under internal/blas/... participate. Extend this
// list when a new subsystem gains a per-iteration path (doc/ANALYSIS.md
// explains the workflow).
var hotRoots = []struct{ pkg, name string }{
	{"internal/blas", "Dgemm"},
	{"internal/blas", "packA"},
	{"internal/blas", "packB"},
	{"internal/blas", "macroKernel"},
	{"internal/sched", "runTask"},
	// ABFT checksum verification runs once per panel inside the task graph
	// (V and finalize tasks); an allocation here taxes every verified
	// factorization and shows up in the cabench verify-overhead gate.
	{"internal/abft", "ColumnSums"},
	{"internal/abft", "AccumulateLSums"},
	{"internal/abft", "VerifyLUColumns"},
	{"internal/abft", "VerifyLUPanel"},
	{"internal/abft", "VerifyGEPPPanel"},
	{"internal/abft", "VerifyQRColumns"},
}

// hotExcludedPkgs are packages whose functions are the sanctioned
// allocation sites: not flagged, not traversed through.
var hotExcludedPkgs = []string{"internal/scratch"}

func hotpathAllocCheck() *ProgramCheck {
	return &ProgramCheck{
		Name: "hotpath-alloc",
		Doc:  "functions reachable from Dgemm's pack/kernel loops and sched.runTask must not allocate per call",
		Run:  runHotpathAlloc,
	}
}

func runHotpathAlloc(pass *ProgramPass) {
	g := pass.CallGraph()

	var roots []*types.Func
	for _, node := range g.Nodes {
		rel := node.Pkg.Rel()
		for _, r := range hotRoots {
			if node.Func.Name() == r.name && underTree(rel, r.pkg) {
				roots = append(roots, node.Func)
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	reached := g.Reachable(roots, func(e CallEdge) bool {
		if node := g.Node(e.Callee); node != nil && hotExcluded(node.Pkg.Rel()) {
			return false
		}
		return true
	})

	// Deterministic function order.
	var hot []*FuncNode
	for f := range reached {
		if node := g.Node(f); node != nil && node.Decl.Body != nil && !hotExcluded(node.Pkg.Rel()) {
			hot = append(hot, node)
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Decl.Pos() < hot[j].Decl.Pos() })

	for _, node := range hot {
		s := &hotScanner{
			pass:     pass,
			info:     node.Pkg.Info,
			chain:    Chain(reached, node.Func),
			presized: collectPresized(node.Pkg.Info, node.Decl.Body),
		}
		s.walk(node.Decl.Body, 0)
	}
}

// underTree reports rel == pkg or rel under pkg/.
func underTree(rel, pkg string) bool {
	return rel == pkg || strings.HasPrefix(rel, pkg+"/")
}

func hotExcluded(rel string) bool {
	for _, p := range hotExcludedPkgs {
		if underTree(rel, p) {
			return true
		}
	}
	return false
}

// collectPresized gathers slice variables assigned from a make with an
// explicit capacity anywhere in the function; appends to them are the
// sanctioned grow-into-capacity pattern.
func collectPresized(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	presized := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if _, ok := info.Uses[id].(*types.Builtin); !ok {
			return
		}
		lid, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Defs[lid]; obj != nil {
			presized[obj] = true
		} else if obj := info.Uses[lid]; obj != nil {
			presized[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return presized
}

// hotScanner walks one hot function body reporting allocation sites.
type hotScanner struct {
	pass     *ProgramPass
	info     *types.Info
	chain    string
	presized map[types.Object]bool
}

// walk recursively visits n; loopDepth counts enclosing for/range loops so
// closure reports can say "per iteration".
func (s *hotScanner) walk(n ast.Node, loopDepth int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				s.walk(n.Init, loopDepth)
			}
			if n.Cond != nil {
				s.walk(n.Cond, loopDepth)
			}
			if n.Post != nil {
				s.walk(n.Post, loopDepth+1)
			}
			s.walk(n.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			s.walk(n.X, loopDepth)
			s.walk(n.Body, loopDepth+1)
			return false
		case *ast.CallExpr:
			return s.call(n, loopDepth)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.report(n, loopDepth, "&T{} escapes to the heap; reuse a value or a scratch buffer")
					// Visit the literal's elements without re-flagging it.
					for _, el := range lit.Elts {
						s.walk(el, loopDepth)
					}
					return false
				}
			}
			return true
		case *ast.CompositeLit:
			// A struct or array *value* literal lives on the stack (boxing
			// into interfaces is caught by the conversion rule); slice and
			// map literals always allocate their backing store.
			switch s.litType(n).(type) {
			case *types.Slice:
				s.report(n, loopDepth, "slice literal allocates its backing array; hoist it or use internal/scratch")
			case *types.Map:
				s.report(n, loopDepth, "map literal allocates; hoist it out of the hot path")
			}
			// Still visit element expressions (nested closures etc.).
			return true
		case *ast.FuncLit:
			if capt := s.captures(n); len(capt) > 0 {
				if loopDepth > 0 {
					s.report(n, loopDepth, "closure captures %s inside a loop — one heap allocation per iteration; hoist the func value or pass parameters", strings.Join(capt, ", "))
				} else {
					s.report(n, loopDepth, "closure captures %s — heap allocation on every call; hoist the func value or pass parameters", strings.Join(capt, ", "))
				}
			}
			s.walk(n.Body, loopDepth)
			return false
		}
		return true
	})
}

// call handles one call expression; returns whether Inspect should descend.
func (s *hotScanner) call(call *ast.CallExpr, loopDepth int) bool {
	// Builtin and conversion dispatch.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// Cold path: precondition panics may allocate their message.
				return false
			case "append":
				s.checkAppend(call, loopDepth)
				for _, a := range call.Args[1:] {
					s.walk(a, loopDepth)
				}
				return false
			case "make":
				s.checkMake(call, loopDepth)
				return true
			case "new":
				s.report(call, loopDepth, "new(T) allocates; reuse a scratch buffer or an existing value")
				return true
			}
		}
	}
	// Explicit conversion T(x)?
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			s.checkIfaceConv(call.Args[0], call, loopDepth)
		}
		return true
	}
	// Ordinary call: implicit interface conversions of arguments.
	s.checkCallArgs(call, loopDepth)
	return true
}

// checkAppend flags appends to slices without an in-function explicit-cap
// make.
func (s *hotScanner) checkAppend(call *ast.CallExpr, loopDepth int) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := s.info.Uses[id]; obj != nil && s.presized[obj] {
			return
		}
	}
	s.report(call, loopDepth, "append without preallocated capacity may reallocate per call; make([]T, 0, n) the backing slice first")
}

// checkMake flags slice/map/chan creation.
func (s *hotScanner) checkMake(call *ast.CallExpr, loopDepth int) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := s.info.Types[call.Args[0]]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		s.report(call, loopDepth, "make(map) allocates; hoist the map or use a preallocated structure")
	case *types.Chan:
		s.report(call, loopDepth, "make(chan) allocates; hoist channel creation out of the hot path")
	case *types.Slice:
		s.report(call, loopDepth, "make([]T) allocates; use internal/scratch or hoist the buffer")
	}
}

// checkCallArgs flags the first argument implicitly converted to an
// interface parameter (one report per call keeps fmt.Errorf-style sites to
// a single diagnostic).
func (s *hotScanner) checkCallArgs(call *ast.CallExpr, loopDepth int) {
	tv, ok := s.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // spread: no element-wise conversion
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		if s.checkIfaceConv(arg, call, loopDepth) {
			return
		}
	}
}

// checkIfaceConv reports arg if converting it to an interface allocates;
// returns whether it reported.
func (s *hotScanner) checkIfaceConv(arg ast.Expr, at ast.Node, loopDepth int) bool {
	tv, ok := s.info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) || pointerShaped(t) {
		return false
	}
	s.report(at, loopDepth, "%s value converted to interface allocates (boxing); avoid interface arguments on the hot path", t.String())
	return true
}

// pointerShaped reports types whose interface representation reuses the
// value word without boxing: pointers, channels, maps, funcs and unsafe
// pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// litType resolves a composite literal's underlying type.
func (s *hotScanner) litType(lit *ast.CompositeLit) types.Type {
	tv, ok := s.info.Types[lit]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// captures lists (sorted) names of variables the literal references but
// does not declare — the closure's captured environment.
func (s *hotScanner) captures(lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Package-level vars are not captured (no allocation).
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		// Declared inside the literal (params, locals): not a capture.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

func (s *hotScanner) report(n ast.Node, loopDepth int, format string, args ...any) {
	msg := "allocation in hot path (" + s.chain + "): " + format + " (doc/ANALYSIS.md#hotpath-alloc)"
	s.pass.Reportf(n.Pos(), msg, args...)
}
