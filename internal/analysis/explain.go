package analysis

// `calint -explain <check>`: the rationale behind each invariant, printed
// so a CI failure is self-explanatory without leaving the terminal. Each
// entry names the doc/ANALYSIS.md anchor carrying the long-form discussion.

import (
	"fmt"
	"sort"
	"strings"
)

// Explanation is the -explain payload for one check.
type Explanation struct {
	// Name is the check name.
	Name string
	// Doc is the registry one-liner.
	Doc string
	// Rationale is the multi-sentence why.
	Rationale string
	// Anchor is the doc/ANALYSIS.md fragment with the full writeup.
	Anchor string
}

// explanations maps check name → rationale + doc anchor.
var explanations = map[string]Explanation{
	"scratch-release": {
		Rationale: "Pooled workspaces from internal/scratch that escape a function on an early " +
			"return (a cancellation exit, an error path) are stranded: the pool never sees them " +
			"again and the allocation win the pool exists for quietly evaporates. Every " +
			"acquisition must reach a Release/Put on every return path, or be covered by defer.",
		Anchor: "doc/ANALYSIS.md#scratch-release",
	},
	"ctx-propagation": {
		Rationale: "Pool.Submit is context-blind: code holding a context.Context that calls it " +
			"(directly, or through any chain of ctx-less helpers — the call graph tracks the " +
			"chain) silently severs the caller's cancellation. Library packages likewise must " +
			"not mint context.Background()/TODO(): contexts flow in from the caller, so a " +
			"request deadline reaches every pool submission it caused.",
		Anchor: "doc/ANALYSIS.md#ctx-propagation",
	},
	"error-contract": {
		Rationale: "The numerical packages panic only with typed errors (panic(fmt.Errorf(\"%w: " +
			"...\", ErrShape, ...))) so the scheduler's recover path preserves errors.Is/As " +
			"matching through Submission.Wait; a bare string panic decays into an opaque " +
			"message. fmt.Errorf calls that pass an Err... sentinel must wrap it with %w.",
		Anchor: "doc/ANALYSIS.md#error-contract",
	},
	"goroutine-hygiene": {
		Rationale: "A panic escaping a naked goroutine kills the whole process and every " +
			"concurrent submission with it. Every `go` statement in internal/sched, factor and " +
			"internal/fault must route panics through a recover barrier (a top-level defer " +
			"reaching recover, or the Pool.spawn helper).",
		Anchor: "doc/ANALYSIS.md#goroutine-hygiene",
	},
	"metrics-hygiene": {
		Rationale: "Stats/Metrics snapshot methods run concurrently with the hot path (a " +
			"/metrics scrape lands mid-factorization). A plain field read in such a method is a " +
			"data race; reads must go through sync/atomic, an obs counter, or happen under the " +
			"owning mutex.",
		Anchor: "doc/ANALYSIS.md#metrics-hygiene",
	},
	"lock-order": {
		Rationale: "Deadlock needs only two locks taken in opposite orders on two goroutines. " +
			"The check builds the global held-lock → acquired-lock graph (flow-sensitively over " +
			"each function's CFG, transitively over the call graph) across internal/sched, " +
			"factor, internal/obs and internal/trace, and rejects any cycle — including " +
			"re-acquiring a held, non-reentrant mutex. The sanctioned hierarchy is declared in " +
			"doc/ANALYSIS.md; code that needs a new edge extends the hierarchy there first.",
		Anchor: "doc/ANALYSIS.md#lock-order",
	},
	"hotpath-alloc": {
		Rationale: "The packed BLAS3 speedup dies silently if an allocation or interface boxing " +
			"sneaks into the jc/pc/ic loops, and the scheduler's per-task path allocates once " +
			"per task forever. Functions reachable from Dgemm's pack/microkernel driver and " +
			"sched.runTask must not allocate per call: no heap composite literals, no " +
			"make/new, no un-presized append, no interface boxing, no capturing closures. " +
			"internal/scratch is the sanctioned allocator. The AllocsPerRun CI gate is the " +
			"runtime complement.",
		Anchor: "doc/ANALYSIS.md#hotpath-alloc",
	},
	"atomic-discipline": {
		Rationale: "A field updated via sync/atomic in one place and read plainly in another is " +
			"a data race the race detector only catches under lucky schedules, and a torn read " +
			"on 32-bit targets. Once any access is atomic, every access must be. Prefer the " +
			"typed atomics (atomic.Int64), which make the mixed pattern unrepresentable.",
		Anchor: "doc/ANALYSIS.md#atomic-discipline",
	},
}

// Explain returns the explanation for a check name.
func Explain(name string) (Explanation, bool) {
	e, ok := explanations[name]
	if !ok {
		return Explanation{}, false
	}
	e.Name = name
	e.Doc = CheckDocs()[name]
	return e, true
}

// ExplainAll lists every explanation in registry order (used by tests to
// keep the map complete).
func ExplainAll() ([]Explanation, error) {
	var out []Explanation
	var missing []string
	for _, name := range CheckNames() {
		e, ok := Explain(name)
		if !ok {
			missing = append(missing, name)
			continue
		}
		out = append(out, e)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("analysis: checks without explanations: %s", strings.Join(missing, ", "))
	}
	return out, nil
}
