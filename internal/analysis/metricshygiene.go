package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// metricsHygieneCheck enforces the observability layer's snapshot
// discipline: a Stats or Metrics method is read concurrently with the hot
// path (a /metrics scrape can land mid-factorization), so every counter it
// reads must go through sync/atomic (an atomic.Int64's Load, an obs.Counter's
// Value) or be read under the owning mutex. A plain field read in a snapshot
// method is a data race that the race detector only catches when a scrape
// happens to collide with an update in a test.
//
// The scope covers the instrumented packages: the scheduler
// (internal/sched, Pool.Metrics) and the engine built on it (factor,
// Engine.Stats).
//
// A snapshot method passes when:
//   - it acquires a mutex (any .Lock()/.RLock() call) before reading, or
//   - every receiver-rooted read of a plain (basic-typed) field goes
//     through a call — an atomic Load, a registered metric's Value(), or an
//     accessor that owns the synchronization.
func metricsHygieneCheck() *Check {
	return &Check{
		Name: "metrics-hygiene",
		Doc:  "Stats/Metrics snapshot methods in factor and internal/sched must read fields via sync/atomic or under the owning mutex",
		Run:  runMetricsHygiene,
	}
}

// metricsPkgs are the module-relative package paths the metrics-hygiene
// check applies to (each including its subpackages).
var metricsPkgs = []string{schedPkg, "factor"}

// snapshotMethodNames are the method names treated as concurrent snapshots.
var snapshotMethodNames = map[string]bool{"Stats": true, "Metrics": true}

func runMetricsHygiene(pass *Pass) {
	rel := passRel(pass)
	inScope := false
	for _, p := range metricsPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !snapshotMethodNames[fn.Name.Name] {
				continue
			}
			checkSnapshotMethod(pass, info, fn)
		}
	}
}

// checkSnapshotMethod vets one Stats/Metrics body.
func checkSnapshotMethod(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	if acquiresLock(fn.Body) {
		// The method snapshots under the owning mutex; its plain reads are
		// ordered against the writers that take the same lock.
		return
	}
	recv := receiverVar(info, fn)
	if recv == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if !rootedAt(info, sel.X, recv) {
			return true
		}
		if _, basic := selection.Type().Underlying().(*types.Basic); !basic {
			// Struct-typed fields (atomic.Int64, *obs.Counter, the mutex
			// itself) are not the race; the leaf read through them is, and
			// lands here as its own selector when unguarded.
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"unsynchronized read of %s in %s: snapshot methods race with the hot path — read it via sync/atomic or take the owning mutex first",
			sel.Sel.Name, fn.Name.Name)
		return true
	})
}

// acquiresLock reports whether the body calls a Lock or RLock method.
func acquiresLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// receiverVar resolves the method's receiver variable, nil when unnamed.
func receiverVar(info *types.Info, fn *ast.FuncDecl) *types.Var {
	if len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fn.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// rootedAt reports whether expr is the receiver itself or a selector chain
// hanging off it (s, s.metrics, s.metrics.inner, ...).
func rootedAt(info *types.Info, expr ast.Expr, recv *types.Var) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.Uses[e] == recv
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}
