package analysis

// Module-wide call graph built from go/types callee resolution. Because the
// Loader shares one *types.Package per import path across the whole load
// (its importer caches), a *types.Func is a stable identity module-wide:
// the node for internal/sched.runTask seen from its own package is the same
// object a factor caller resolves, so whole-program checks (lock-order,
// hotpath-alloc, ctx-propagation) can chase edges across package
// boundaries without any name-based matching.
//
// Resolution is static: direct calls to declared functions and methods
// (including promoted/embedded methods) produce edges; calls through
// function-typed variables, interface methods and builtins do not. Calls
// made inside a FuncLit are attributed to the enclosing declared function —
// a closure's work is its creator's work as far as reachability goes — but
// each edge records whether it sits under a `go` or `defer` statement so
// order-sensitive analyses (lock-order) can ignore spawns, which start a
// fresh goroutine with an empty held-lock set.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies how a call site transfers control.
type EdgeKind int

const (
	// EdgeCall is an ordinary synchronous call.
	EdgeCall EdgeKind = iota
	// EdgeGo is a call that is (or is under) a `go` statement: it runs on a
	// new goroutine.
	EdgeGo
	// EdgeDefer is the deferred call of a `defer` statement: it runs at
	// function exit on the same goroutine.
	EdgeDefer
)

// CallEdge is one resolved call site.
type CallEdge struct {
	// Callee is the invoked function or method.
	Callee *types.Func
	// Pos is the call site, for diagnostics.
	Pos token.Pos
	// Kind records go/defer context.
	Kind EdgeKind
}

// FuncNode is one declared function in the analyzed program.
type FuncNode struct {
	// Func is the function's type object (the graph key).
	Func *types.Func
	// Decl is the declaration carrying the analyzed body.
	Decl *ast.FuncDecl
	// Pkg is the analyzed package the declaration lives in.
	Pkg *Package
	// Calls lists the resolved call sites in source order.
	Calls []CallEdge
}

// CallGraph indexes every declared function of the analyzed packages.
type CallGraph struct {
	// Nodes maps a function object to its node. Only functions declared in
	// the analyzed packages have nodes; edges may point at callees without
	// nodes (stdlib, packages outside the run).
	Nodes map[*types.Func]*FuncNode
}

// Node returns the graph node for f, or nil when f was not declared in an
// analyzed package.
func (g *CallGraph) Node(f *types.Func) *FuncNode { return g.Nodes[f] }

// BuildCallGraph resolves every static call site in the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Func: obj, Decl: fn, Pkg: pkg}
				if fn.Body != nil {
					collectCalls(pkg.Info, fn.Body, EdgeCall, &node.Calls)
				}
				g.Nodes[obj] = node
			}
		}
	}
	return g
}

// collectCalls walks n recording resolved call edges, switching the edge
// kind under go/defer statements.
func collectCalls(info *types.Info, n ast.Node, kind EdgeKind, out *[]CallEdge) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Everything under the statement (the callee and any closure
			// body) runs on the spawned goroutine.
			collectCalls(info, n.Call, EdgeGo, out)
			return false
		case *ast.DeferStmt:
			// The deferred call itself runs at exit; its arguments are
			// evaluated now, but one kind per subtree is precise enough.
			collectCalls(info, n.Call, EdgeDefer, out)
			return false
		case *ast.CallExpr:
			if f := funcObj(info, n); f != nil {
				*out = append(*out, CallEdge{Callee: f, Pos: n.Pos(), Kind: kind})
			}
		}
		return true
	})
}

// Reachable computes the set of functions reachable from the given roots
// along edges accepted by keep (nil keeps every edge), and returns for each
// reached function the call edge and caller that first reached it, so
// diagnostics can print a hot-path chain.
func (g *CallGraph) Reachable(roots []*types.Func, keep func(CallEdge) bool) map[*types.Func]*ReachStep {
	reached := make(map[*types.Func]*ReachStep)
	var queue []*types.Func
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := reached[r]; !ok {
			reached[r] = &ReachStep{} // root: no caller
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		node := g.Nodes[f]
		if node == nil {
			continue
		}
		for _, e := range node.Calls {
			if keep != nil && !keep(e) {
				continue
			}
			if _, ok := reached[e.Callee]; ok {
				continue
			}
			reached[e.Callee] = &ReachStep{Caller: f, Pos: e.Pos}
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// ReachStep records how a function was first reached in a traversal: the
// caller and call position (zero for roots).
type ReachStep struct {
	Caller *types.Func
	Pos    token.Pos
}

// Chain renders the root→f call chain from a Reachable result, e.g.
// "Dgemm → packA → helper", compressing long chains to keep messages
// readable.
func Chain(reached map[*types.Func]*ReachStep, f *types.Func) string {
	var names []string
	for cur := f; cur != nil && len(names) < 16; {
		names = append(names, cur.Name())
		step := reached[cur]
		if step == nil || step.Caller == nil {
			break
		}
		cur = step.Caller
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > 7 {
		names = append([]string{names[0], "…"}, names[len(names)-5:]...)
	}
	out := names[0]
	for _, n := range names[1:] {
		out += " → " + n
	}
	return out
}
