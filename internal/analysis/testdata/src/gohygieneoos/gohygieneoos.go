// Package gohygieneoos is the out-of-scope probe for the goroutine-hygiene
// check: the golden test loads it masqueraded as a package outside the
// check's scope (internal/matrix), where the same naked go statements that
// are findings in internal/sched, factor and internal/fault must be clean.
package gohygieneoos

// NakedGoOutOfScope would be a finding inside the hygiene scope.
func NakedGoOutOfScope(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// NamedOutOfScope likewise.
func NamedOutOfScope(ch chan int) {
	go plain(ch)
}

func plain(ch chan int) {
	ch <- 1
}
