// Package lockorder is a golden-test fixture for the lock-order check. The
// golden test loads it masqueraded as "repro/internal/sched/lockfix" so the
// lock-order scope applies; the same file loaded outside the scope (see
// lockorderoos) produces no findings.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

// AcquireAB takes muA then muB; together with AcquireBA this is the seeded
// two-lock inversion the check must catch.
func AcquireAB() {
	muA.Lock()
	muB.Lock() // want "acquiring repro/internal/sched/lockfix.muB while holding repro/internal/sched/lockfix.muA"
	muB.Unlock()
	muA.Unlock()
}

// AcquireBA inverts AcquireAB's order.
func AcquireBA() {
	muB.Lock()
	muA.Lock() // want "acquiring repro/internal/sched/lockfix.muA while holding repro/internal/sched/lockfix.muB"
	muA.Unlock()
	muB.Unlock()
}

var (
	muC sync.Mutex
	muD sync.RWMutex
)

// ConsistentOuter and ConsistentBranch always take muC before muD — a
// consistent order is clean, including through defer-Unlock and branches.
func ConsistentOuter() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	muD.Unlock()
}

func ConsistentBranch(cond bool) {
	muC.Lock()
	defer muC.Unlock()
	if cond {
		muD.RLock()
		muD.RUnlock()
	}
}

// LoopRelock releases before re-acquiring inside the loop, so the back edge
// carries an empty held set — no self-deadlock.
func LoopRelock(n int) {
	for i := 0; i < n; i++ {
		muC.Lock()
		muC.Unlock()
	}
}

// node's per-field lock identity makes hand-over-hand locking of two
// instances a self-loop: re-acquiring a held, non-reentrant lock class.
type node struct {
	mu sync.Mutex
}

func (nd *node) handOverHand(child *node) {
	nd.mu.Lock()
	child.mu.Lock() // want "node.mu acquired while already held; potential self-deadlock"
	child.mu.Unlock()
	nd.mu.Unlock()
}

var (
	muE sync.Mutex
	muF sync.Mutex
)

// lockE acquires muE on behalf of callers; its summary propagates through
// the call graph.
func lockE() {
	muE.Lock()
	muE.Unlock()
}

// TransitiveInversion holds muF across a call that may acquire muE; paired
// with DirectEF below, the cycle spans a call edge.
func TransitiveInversion() {
	muF.Lock()
	lockE() // want "acquiring repro/internal/sched/lockfix.muE while holding repro/internal/sched/lockfix.muF"
	muF.Unlock()
}

func DirectEF() {
	muE.Lock()
	muF.Lock() // want "acquiring repro/internal/sched/lockfix.muF while holding repro/internal/sched/lockfix.muE"
	muF.Unlock()
	muE.Unlock()
}

var (
	muG sync.Mutex
	muH sync.Mutex
)

// AcquireGH is one half of a cycle whose other half is sanctioned below;
// only this unsuppressed edge is reported.
func AcquireGH() {
	muG.Lock()
	muH.Lock() // want "acquiring repro/internal/sched/lockfix.muH while holding repro/internal/sched/lockfix.muG"
	muH.Unlock()
	muG.Unlock()
}

// SanctionedInversion documents its exception with an ignore comment.
func SanctionedInversion() {
	muH.Lock()
	muG.Lock() // calint:ignore lock-order -- fixture: documented exception half of the G/H cycle
	muG.Unlock()
	muH.Unlock()
}

var muSpawn sync.Mutex

// SpawnClean's goroutine body starts with a fresh held set: the spawned
// acquisition of muB while muSpawn is held by the parent is not an edge.
func SpawnClean() {
	muSpawn.Lock()
	go func() {
		muB.Lock()
		muB.Unlock()
	}()
	muSpawn.Unlock()
}
