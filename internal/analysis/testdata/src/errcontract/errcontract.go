// Package errcontract is a golden-test fixture for the error-contract
// check. The golden test loads it masqueraded as
// "repro/internal/core/fixture" so the library typed-panic rule applies.
package errcontract

import (
	"errors"
	"fmt"
)

// ErrShape mirrors the project's sentinel convention.
var ErrShape = errors.New("fixture: dimension mismatch")

// BarePanicString panics with an untyped string.
func BarePanicString(n int) {
	if n < 0 {
		panic("negative dimension") // want "bare panic in library package"
	}
}

// SprintfPanic formats a string but still panics untyped.
func SprintfPanic(r, c int) {
	if r != c {
		panic(fmt.Sprintf("non-square: %dx%d", r, c)) // want "bare panic in library package"
	}
}

// TypedPanicOK carries the sentinel through the panic value.
func TypedPanicOK(n int) {
	if n < 0 {
		panic(fmt.Errorf("%w: negative dimension %d", ErrShape, n))
	}
}

// ErrorsNewPanicOK panics with any error value.
func ErrorsNewPanicOK() {
	panic(errors.New("typed failure"))
}

// UnwrappedSentinel formats the sentinel with %v, breaking errors.Is.
func UnwrappedSentinel(n int) error {
	return fmt.Errorf("%v: bad dimension %d", ErrShape, n) // want "passes sentinel ErrShape without a matching"
}

// WrappedSentinelOK wraps with %w as the contract requires.
func WrappedSentinelOK(n int) error {
	return fmt.Errorf("%w: bad dimension %d", ErrShape, n)
}

// SuppressedPanic documents an intentionally unreachable guard.
func SuppressedPanic(ok bool) {
	if !ok {
		panic("unreachable by construction") // calint:ignore error-contract -- proven unreachable guard
	}
}
