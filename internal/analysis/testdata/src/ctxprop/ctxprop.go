// Package ctxprop is a golden-test fixture for the ctx-propagation check.
// The golden test loads it masqueraded as "repro/internal/ctxlib" so the
// library-package scope rules apply.
package ctxprop

import (
	"context"

	"repro/internal/sched"
)

// SubmitWithCtx receives a ctx but calls the context-blind entry point,
// severing the caller's cancellation chain.
func SubmitWithCtx(ctx context.Context, p *sched.Pool, g *sched.Graph) error {
	_, err := p.Submit(g, sched.SubmitOptions{}) // want "receives a context.Context but calls Pool.Submit"
	_ = ctx
	return err
}

// SubmitCtxOK propagates the ctx through SubmitCtx.
func SubmitCtxOK(ctx context.Context, p *sched.Pool, g *sched.Graph) error {
	_, err := p.SubmitCtx(ctx, g, sched.SubmitOptions{})
	return err
}

// NoCtxSubmitOK has no ctx parameter, so Submit is the honest spelling.
func NoCtxSubmitOK(p *sched.Pool, g *sched.Graph) error {
	_, err := p.Submit(g, sched.SubmitOptions{})
	return err
}

// MintBackground mints a root context inside a library package.
func MintBackground(p *sched.Pool, g *sched.Graph) error {
	_, err := p.SubmitCtx(context.Background(), g, sched.SubmitOptions{}) // want "calls context.Background"
	return err
}

// MintTODO leaks a placeholder context out of a library package.
func MintTODO() context.Context {
	return context.TODO() // want "calls context.TODO"
}

// SuppressedBridge is the documented ctx-free convenience-wrapper pattern.
func SuppressedBridge(p *sched.Pool, g *sched.Graph) error {
	_, err := p.SubmitCtx(context.Background(), g, sched.SubmitOptions{}) // calint:ignore ctx-propagation -- documented ctx-free wrapper
	return err
}

// submitHelper is a ctx-less helper hiding the blind submission; it is not
// itself a finding (no ctx in scope) but it taints every ctx-bearing caller.
func submitHelper(p *sched.Pool, g *sched.Graph) error {
	_, err := p.Submit(g, sched.SubmitOptions{})
	return err
}

// TransitiveSever reaches Pool.Submit through a ctx-less chain; the call
// graph pins the severing edge at the helper call.
func TransitiveSever(ctx context.Context, p *sched.Pool, g *sched.Graph) error {
	_ = ctx
	return submitHelper(p, g) // want "reaches Pool.Submit via submitHelper"
}

// TransitiveBarrier hands its ctx to a ctx-aware callee; the callee owns the
// propagation decision, so the caller is clean.
func TransitiveBarrier(ctx context.Context, p *sched.Pool, g *sched.Graph) error {
	return SubmitCtxOK(ctx, p, g)
}

// ClosureCapture severs cancellation from inside a closure while the
// enclosing function's ctx is in scope — the rule sees through the literal.
func ClosureCapture(ctx context.Context, p *sched.Pool, g *sched.Graph) func() error {
	_ = ctx
	return func() error {
		_, err := p.Submit(g, sched.SubmitOptions{}) // want "receives a context.Context but calls Pool.Submit"
		return err
	}
}

// LocalCtxSubmit has no ctx parameter but a ctx-typed local in scope when it
// calls the blind entry point.
func LocalCtxSubmit(p *sched.Pool, g *sched.Graph, parent func() context.Context) error {
	ctx := parent()
	_ = ctx
	_, err := p.Submit(g, sched.SubmitOptions{}) // want "has a context.Context in scope but calls Pool.Submit"
	return err
}
