// Package ctxprop is a golden-test fixture for the ctx-propagation check.
// The golden test loads it masqueraded as "repro/internal/ctxlib" so the
// library-package scope rules apply.
package ctxprop

import (
	"context"

	"repro/internal/sched"
)

// SubmitWithCtx receives a ctx but calls the context-blind entry point,
// severing the caller's cancellation chain.
func SubmitWithCtx(ctx context.Context, p *sched.Pool, g *sched.Graph) error {
	_, err := p.Submit(g, sched.SubmitOptions{}) // want "receives a context.Context but calls Pool.Submit"
	_ = ctx
	return err
}

// SubmitCtxOK propagates the ctx through SubmitCtx.
func SubmitCtxOK(ctx context.Context, p *sched.Pool, g *sched.Graph) error {
	_, err := p.SubmitCtx(ctx, g, sched.SubmitOptions{})
	return err
}

// NoCtxSubmitOK has no ctx parameter, so Submit is the honest spelling.
func NoCtxSubmitOK(p *sched.Pool, g *sched.Graph) error {
	_, err := p.Submit(g, sched.SubmitOptions{})
	return err
}

// MintBackground mints a root context inside a library package.
func MintBackground(p *sched.Pool, g *sched.Graph) error {
	_, err := p.SubmitCtx(context.Background(), g, sched.SubmitOptions{}) // want "calls context.Background"
	return err
}

// MintTODO leaks a placeholder context out of a library package.
func MintTODO() context.Context {
	return context.TODO() // want "calls context.TODO"
}

// SuppressedBridge is the documented ctx-free convenience-wrapper pattern.
func SuppressedBridge(p *sched.Pool, g *sched.Graph) error {
	_, err := p.SubmitCtx(context.Background(), g, sched.SubmitOptions{}) // calint:ignore ctx-propagation -- documented ctx-free wrapper
	return err
}
