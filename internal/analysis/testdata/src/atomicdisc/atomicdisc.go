// Package atomicdisc is a golden-test fixture for the atomic-discipline
// check (loaded masqueraded as "repro/internal/atomfix"; the check is
// scope-free, so any path works).
package atomicdisc

import "sync/atomic"

type stats struct {
	// n is atomically updated; every access must be atomic.
	n int64
	// plain is never touched atomically; plain access is fine.
	plain int64
	// typed uses the typed atomics — immune by construction.
	typed atomic.Int64
}

// inc is the sanctioned writer; its &s.n operand is not a finding.
func (s *stats) inc() {
	atomic.AddInt64(&s.n, 1)
	s.plain++
	s.typed.Add(1)
}

// loadOK reads through sync/atomic — sanctioned.
func (s *stats) loadOK() int64 {
	return atomic.LoadInt64(&s.n)
}

// read mixes a plain load with inc's atomic writes.
func (s *stats) read() int64 {
	return s.n // want "n is accessed via sync/atomic .* but read/written plainly here"
}

// write mixes a plain store in as well.
func (s *stats) write(v int64) {
	s.n = v // want "n is accessed via sync/atomic .* but read/written plainly here"
	s.plain = v
	s.typed.Store(v)
}

// reset is the documented exception: single-goroutine construction window.
func (s *stats) reset() {
	s.n = 0 // calint:ignore atomic-discipline -- fixture: pre-publication init
}

// construct uses a keyed literal: the key is a field name, not an access;
// the *value* expression reading another instance's field is one.
func construct(src *stats) stats {
	return stats{n: src.n} // want "n is accessed via sync/atomic .* but read/written plainly here"
}

// pkgHits is a package-level counter updated atomically in hit() and read
// plainly in report().
var pkgHits int64

func hit() {
	atomic.AddInt64(&pkgHits, 1)
}

func report() int64 {
	return pkgHits // want "pkgHits is accessed via sync/atomic .* but read/written plainly here"
}
