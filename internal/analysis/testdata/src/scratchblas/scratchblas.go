// Package scratchblas is a golden-test fixture pinning the scratch-release
// check's coverage of the packed BLAS3 pack-buffer paths: the fixture is
// loaded masqueraded as repro/internal/blas and mirrors the acquisition
// shape of the real Dgemm driver (two pooled pack buffers, early shape
// bail-outs). A pack buffer that escapes an error return would strand a
// pool slot per failed call, so the leak variants below must be flagged.
package scratchblas

import (
	"errors"

	"repro/internal/scratch"
)

var errShape = errors.New("blas: shape mismatch")

// PackedGemmOK mirrors the real driver: both pack buffers are covered by
// defers before any conditional return, so every path is clean.
func PackedGemmOK(m, n, k int) error {
	if m < 0 || n < 0 || k < 0 {
		return errShape
	}
	ap := scratch.Get(m * k)
	defer scratch.Put(ap)
	bp := scratch.Get(k * n)
	defer scratch.Put(bp)
	for i := range ap {
		ap[i] = 0
	}
	for i := range bp {
		bp[i] = 0
	}
	return nil
}

// PackedGemmLeakOnShape acquires the A pack buffer before validating and
// bails out without releasing it — the exact leak the defer-before-validate
// ordering in the real driver exists to prevent.
func PackedGemmLeakOnShape(m, n, k int) error {
	ap := scratch.Get(m * k)
	if n < 0 {
		return errShape // want "scratch buffer \"ap\" acquired at line \\d+ is not released on this return"
	}
	scratch.Put(ap)
	return nil
}

// PackedGemmLeakSecondBuffer releases the A buffer on the early return but
// forgets the B buffer acquired between the two: joins must keep bp live.
func PackedGemmLeakSecondBuffer(m, n, k int, fail bool) error {
	ap := scratch.Get(m * k)
	bp := scratch.Get(k * n)
	if fail {
		scratch.Put(ap)
		return errShape // want "scratch buffer \"bp\" acquired at line \\d+ is not released on this return"
	}
	scratch.Put(bp)
	scratch.Put(ap)
	return nil
}
