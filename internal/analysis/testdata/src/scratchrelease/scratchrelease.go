// Package scratchrelease is a golden-test fixture for the scratch-release
// check: functions below exercise release-on-every-path, defer coverage,
// branch joins and the early-error-return leak the check exists to catch.
package scratchrelease

import (
	"context"
	"errors"

	"repro/internal/matrix"
	"repro/internal/scratch"
)

var errBoom = errors.New("boom")

// LinearOK acquires and releases on the single path.
func LinearOK(r, c int) {
	buf := scratch.Dense(r, c)
	_ = buf
	scratch.Release(buf)
}

// DeferOK covers every return with a deferred release.
func DeferOK(r, c int, fail bool) error {
	buf := scratch.Dense(r, c)
	defer scratch.Release(buf)
	if fail {
		return errBoom
	}
	return nil
}

// SliceOK pairs Get with Put.
func SliceOK(n int) {
	s := scratch.Get(n)
	_ = s
	scratch.Put(s)
}

// EarlyReturnLeak skips the release on the error path — the exact bug a
// cancelled submission turns into a stranded workspace.
func EarlyReturnLeak(r, c int, fail bool) error {
	buf := scratch.Dense(r, c)
	if fail {
		return errBoom // want "scratch buffer \"buf\" acquired at line \\d+ is not released on this return"
	}
	scratch.Release(buf)
	return nil
}

// CtxLeak returns on ctx.Err() without releasing.
func CtxLeak(ctx context.Context, n int) error {
	s := scratch.Get(n)
	if err := ctx.Err(); err != nil {
		return err // want "scratch buffer \"s\" acquired at line \\d+ is not released on this return"
	}
	scratch.Put(s)
	return nil
}

// FallOffEndLeak never releases at all.
func FallOffEndLeak(r, c int) {
	buf := scratch.Dense(r, c)
	_ = buf
} // want "scratch buffer \"buf\" acquired at line \\d+ is not released on function end"

// BothBranchesOK releases on each arm.
func BothBranchesOK(r, c int, flip bool) {
	buf := scratch.Dense(r, c)
	if flip {
		scratch.Release(buf)
	} else {
		scratch.Release(buf)
	}
}

// OneBranchLeak releases on only one arm, so the join keeps it live.
func OneBranchLeak(r, c int, flip bool) {
	buf := scratch.Dense(r, c)
	if flip {
		scratch.Release(buf)
	}
} // want "scratch buffer \"buf\" acquired at line \\d+ is not released on function end"

// PanicPathOK may panic between acquire and release: unwinding is not a
// return path (the pool's recover turns it into a task error).
func PanicPathOK(r, c int, bad bool) {
	buf := scratch.Dense(r, c)
	if bad {
		panic("invariant violated")
	}
	scratch.Release(buf)
}

// ClosureScopes analyzes the literal as its own function.
func ClosureScopes(r, c int, fail bool) func() error {
	return func() error {
		buf := scratch.Dense(r, c)
		if fail {
			return errBoom // want "scratch buffer \"buf\" acquired at line \\d+ is not released on this return"
		}
		scratch.Release(buf)
		return nil
	}
}

// UnboundAcquire discards the buffer, so no release is verifiable.
func UnboundAcquire(r, c int) *matrix.Dense {
	return transform(scratch.Dense(r, c)) // want "scratch acquisition is not bound to a local variable"
}

func transform(d *matrix.Dense) *matrix.Dense { return d }

// SuppressedTransfer hands ownership out on purpose; the ignore comment
// documents it.
func SuppressedTransfer(r, c int) *matrix.Dense {
	buf := scratch.Dense(r, c)
	return buf // calint:ignore scratch-release -- ownership transfer to caller, released by Close
}
