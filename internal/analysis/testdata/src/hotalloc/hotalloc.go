// Package hotalloc is a golden-test fixture for the hotpath-alloc check.
// The golden test loads it masqueraded as "repro/internal/blas/hotfix" so
// its Dgemm matches the hot-root set; everything reachable from it is hot,
// coldSetup is not.
package hotalloc

import "fmt"

// ErrShape mirrors the blas sentinel; package-level init is not a function
// body and is never scanned.
var ErrShape = fmt.Errorf("hotfix: shape")

var sink any

// Dgemm matches the hot root by name under the internal/blas tree. The
// panic argument is the sanctioned cold path.
func Dgemm(m, n int, c []float64) {
	if m < 0 {
		panic(fmt.Errorf("%w: m=%d", ErrShape, m))
	}
	for i := 0; i < m; i++ {
		literals(n)
	}
	makes(n)
	appends(n)
	boxing(m)
	closures(n)
	valueLiteralClean(m, n)
}

type opts struct{ m, n int }

func literals(n int) {
	p := &opts{m: n} // want "&T\\{\\} escapes to the heap"
	_ = p
	s := []int{1, 2, n} // want "slice literal allocates its backing array"
	_ = s
	mp := map[string]int{"n": n} // want "map literal allocates"
	_ = mp
	ig := &opts{n: n} // calint:ignore hotpath-alloc -- fixture: sanctioned escape
	_ = ig
}

func makes(n int) {
	buf := make([]float64, n) // want "make\\(\\[\\]T\\) allocates"
	_ = buf
	m := make(map[int]int, n) // want "make\\(map\\) allocates"
	_ = m
	ch := make(chan int) // want "make\\(chan\\) allocates"
	_ = ch
	q := new(opts) // want "new\\(T\\) allocates"
	_ = q
}

func appends(n int) []int {
	var grow []int
	grow = append(grow, n) // want "append without preallocated capacity"
	out := make([]int, 0, n) // want "make\\(\\[\\]T\\) allocates"
	out = append(out, n) // clean: presized in this function
	return append(grow, out...) // want "append without preallocated capacity"
}

func boxing(v int) {
	take(v)        // want "int value converted to interface allocates \\(boxing\\)"
	sink = any(v)  // want "int value converted to interface allocates \\(boxing\\)"
	take(&v)       // clean: pointers are interface-shaped
	take(sink)     // clean: already an interface
}

func take(x any) { sink = x }

func closures(n int) func() int {
	f := func() int { return n } // want "closure captures n — heap allocation on every call"
	for i := 0; i < 3; i++ {
		g := func() int { return n + i } // want "closure captures i, n inside a loop — one heap allocation per iteration"
		_ = g()
	}
	h := func(x int) int { return x } // clean: captures nothing
	_ = h
	return f
}

// valueLiteralClean: struct and array *value* literals stay on the stack.
func valueLiteralClean(m, n int) int {
	o := opts{m: m, n: n}
	a := [2]int{m, n}
	return o.m + a[1]
}

// coldSetup is not reachable from the root; its allocations are fine.
func coldSetup() []int {
	xs := []int{1, 2, 3}
	return append(xs, 4)
}
