// Package cmdscope is a golden-test fixture proving the path scoping of
// ctx-propagation: loaded masqueraded as "repro/cmd/cmdscope" it must
// produce zero diagnostics, because commands are entitled to mint the
// process root context.
package cmdscope

import "context"

// Root builds the process root context.
func Root() context.Context {
	return context.Background()
}
