// Package gohygiene is a golden-test fixture for the goroutine-hygiene
// check. The golden test loads it masqueraded as
// "repro/internal/sched/fixture", "repro/factor/fixture" and
// "repro/internal/fault/fixture", so every package of the check's scope
// applies; the diagnostics must fire identically under each.
package gohygiene

// NakedGo spawns with no recover path: a panic here kills the process.
func NakedGo(ch chan int) {
	go func() { // want "naked go func"
		ch <- 1
	}()
}

// RecoverDeferOK installs a defer/recover inline.
func RecoverDeferOK(ch chan int) {
	go func() {
		defer func() {
			_ = recover()
		}()
		ch <- 1
	}()
}

// SpawnHelperOK routes through a named same-package helper that defers
// recover — the spawn-helper pattern.
func SpawnHelperOK(ch chan int) {
	go guarded(ch)
}

func guarded(ch chan int) {
	defer func() {
		_ = recover()
	}()
	ch <- 1
}

// NamedWithoutRecover spawns a helper that never recovers.
func NamedWithoutRecover(ch chan int) {
	go unguarded(ch) // want "outside the pool's recover path"
}

func unguarded(ch chan int) {
	ch <- 1
}

// Suppressed documents a goroutine that cannot panic.
func Suppressed(done chan struct{}) {
	go func() { // calint:ignore goroutine-hygiene -- close of an owned channel cannot panic
		close(done)
	}()
}
