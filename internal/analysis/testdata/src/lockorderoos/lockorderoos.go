// Package lockorderoos carries the same inverted lock pair as the lockorder
// fixture but is loaded masqueraded as "repro/internal/matrix/lockoos" —
// outside the lock-order scope — so the golden test asserts zero findings.
package lockorderoos

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

func AcquireAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func AcquireBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
