// Package metricshygiene is a golden-test fixture for the metrics-hygiene
// check. The golden test loads it masqueraded as "repro/factor/fixture" and
// "repro/internal/sched/fixture", so both instrumented packages of the
// check's scope apply; the diagnostics must fire identically under each.
package metricshygiene

import (
	"sync"
	"sync/atomic"
)

// Snapshot is the value a snapshot method returns.
type Snapshot struct {
	Completed int64
	Depth     int64
}

// racyPool keeps plain counters and snapshots them without synchronization.
type racyPool struct {
	completed int64
	depth     int64
}

// Stats reads both fields as plain loads while workers write them: the
// exact race the check exists to flag.
func (p *racyPool) Stats() Snapshot {
	return Snapshot{
		Completed: p.completed, // want "unsynchronized read of completed"
		Depth:     p.depth,     // want "unsynchronized read of depth"
	}
}

// lockedPool guards its counters with the owning mutex.
type lockedPool struct {
	mu        sync.Mutex
	completed int64
	depth     int64
}

// Stats snapshots under the mutex; plain reads are ordered against writers.
func (p *lockedPool) Stats() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Snapshot{Completed: p.completed, Depth: p.depth}
}

// atomicPool keeps counters in atomics.
type atomicPool struct {
	completed atomic.Int64
	inner     struct {
		depth atomic.Int64
	}
}

// Metrics reads through atomic Loads — calls, not plain field reads.
func (p *atomicPool) Metrics() Snapshot {
	return Snapshot{
		Completed: p.completed.Load(),
		Depth:     p.inner.depth.Load(),
	}
}

// nestedRacyPool hides the plain counter one struct deep; the receiver-rooted
// selector chain must still be traced.
type nestedRacyPool struct {
	metrics struct {
		completed int64
	}
}

func (p *nestedRacyPool) Metrics() Snapshot {
	return Snapshot{Completed: p.metrics.completed} // want "unsynchronized read of completed"
}

// accessorPool delegates to a method that owns the locking; calls are the
// accessor pattern and pass.
type accessorPool struct {
	locked lockedPool
}

func (p *accessorPool) Stats() Snapshot {
	return p.locked.Stats()
}

// rwPool uses a read lock, which orders the snapshot too.
type rwPool struct {
	mu        sync.RWMutex
	completed int64
}

func (p *rwPool) Stats() Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return Snapshot{Completed: p.completed}
}

// suppressedPool documents a field that is written once before any reader
// exists; the finding is acknowledged inline.
type suppressedPool struct {
	workers int64
}

func (p *suppressedPool) Stats() Snapshot {
	return Snapshot{Depth: p.workers} // calint:ignore metrics-hygiene -- set once at construction, immutable afterwards
}

// helper below the scoped names: a non-snapshot method reading plain fields
// is not a finding.
func (p *racyPool) describe() int64 {
	return p.completed + p.depth
}
