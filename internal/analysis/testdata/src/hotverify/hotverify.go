// Package hotverify is a golden-test fixture for the hotpath-alloc
// check's ABFT roots. The golden test loads it masqueraded as
// "repro/internal/abft/hotfix" so its VerifyLUColumns matches the
// hot-root set; everything reachable from it is hot, coldReport is not,
// and internal/scratch stays the sanctioned allocator.
package hotverify

import (
	"fmt"

	"repro/internal/scratch"
)

var sink any

// VerifyLUColumns matches the abft hot root by name under the
// internal/abft tree. The panic argument is the sanctioned cold path.
func VerifyLUColumns(col, vsums, wsums []float64, tol float64) int {
	if len(vsums) != len(wsums) {
		panic(fmt.Errorf("hotfix: checksum length %d != %d", len(vsums), len(wsums)))
	}
	for j := range wsums {
		if mismatch(col, vsums, wsums[j], tol) {
			return j
		}
	}
	predSums(col, vsums)
	return -1
}

// mismatch is hot via the root; its temporaries must come from scratch.
func mismatch(col, vsums []float64, want, tol float64) bool {
	pred := scratch.Get(len(col)) // clean: sanctioned allocator
	defer scratch.Put(pred)
	diffs := make([]float64, len(col)) // want "make\\(\\[\\]T\\) allocates"
	bad := map[int]bool{}              // want "map literal allocates"
	s := 0.0
	for t := range col {
		pred[t] = vsums[t] * col[t]
		diffs[t] = pred[t] - want
		s += pred[t]
	}
	_ = bad
	return s-want > tol || want-s > tol
}

// predSums shows the boxing and closure findings on the verify path.
func predSums(col, vsums []float64) {
	var grow []float64
	for t := range col {
		grow = append(grow, vsums[t]*col[t]) // want "append without preallocated capacity"
		f := func() float64 { return col[t] } // want "closure captures col, t inside a loop — one heap allocation per iteration"
		_ = f
	}
	sink = any(len(grow)) // want "int value converted to interface allocates \\(boxing\\)"
}

// coldReport is not reachable from the root; its allocations are fine.
func coldReport(j int) string {
	parts := []string{"column", fmt.Sprint(j)}
	return parts[0] + " " + parts[1]
}
