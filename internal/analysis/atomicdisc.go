package analysis

// atomic-discipline: a field (or package-level variable) that is accessed
// through the sync/atomic free functions anywhere in the program must be
// accessed atomically everywhere. The mixed pattern —
//
//	atomic.AddInt64(&s.n, 1)   // writer
//	if s.n > limit { ... }     // reader, racing the writer
//
// — is a data race the race detector only catches when a test schedule
// happens to interleave the two, and it silently reads torn or stale
// values on 32-bit targets. This is the whole-program generalization of
// metrics-hygiene (which only inspects Stats/Methods snapshots): pass one
// collects every field whose address flows into a sync/atomic call; pass
// two flags every other access to those fields, anywhere in the program.
// The typed atomics (atomic.Int64 & friends) are immune by construction —
// prefer them for new code; this check exists for the pointer-based legacy
// pattern and for fields that grow an atomic access after the fact.
//
// Composite-literal keys are not accesses and are skipped (zero-value
// construction happens before the value is shared).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func atomicDisciplineCheck() *ProgramCheck {
	return &ProgramCheck{
		Name: "atomic-discipline",
		Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
		Run:  runAtomicDiscipline,
	}
}

func runAtomicDiscipline(pass *ProgramPass) {
	// Pass 1: objects whose address is taken inside a sync/atomic call, and
	// the exact operand expressions so pass 2 does not flag the sanctioned
	// sites themselves.
	atomicObjs := make(map[types.Object]token.Pos) // object -> example atomic site
	sanctioned := make(map[ast.Expr]bool)          // &x.f operands inside atomic calls
	for _, pkg := range pass.Packages() {
		info := pkg.Info
		for _, file := range pkg.Syntax {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := funcObj(info, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					operand := ast.Unparen(un.X)
					obj := accessedObject(info, operand)
					if obj == nil {
						continue
					}
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = call.Pos()
					}
					sanctioned[operand] = true
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: every other access.
	type finding struct {
		pos token.Pos
		obj types.Object
	}
	var findings []finding
	for _, pkg := range pass.Packages() {
		info := pkg.Info
		for _, file := range pkg.Syntax {
			var walk func(n ast.Node)
			walk = func(n ast.Node) {
				ast.Inspect(n, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						if sanctioned[n] {
							// The &x.f of an atomic call: walk the base only.
							walk(n.X)
							return false
						}
						if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
							if _, hot := atomicObjs[sel.Obj()]; hot {
								findings = append(findings, finding{n.Pos(), sel.Obj()})
							}
							walk(n.X)
							return false
						}
						// Package-qualified identifier (pkg.Var): check the Sel,
						// skip descending so the bare ident is not re-checked.
						if obj := info.Uses[n.Sel]; obj != nil {
							if _, hot := atomicObjs[obj]; hot && !sanctioned[n] {
								findings = append(findings, finding{n.Pos(), obj})
							}
						}
						walk(n.X)
						return false
					case *ast.Ident:
						if sanctioned[n] {
							return false
						}
						if obj := info.Uses[n]; obj != nil {
							if _, hot := atomicObjs[obj]; hot {
								findings = append(findings, finding{n.Pos(), obj})
							}
						}
						return false
					case *ast.CompositeLit:
						// Keys of keyed struct literals are field names, not
						// accesses; values still count.
						for _, el := range n.Elts {
							if kv, ok := el.(*ast.KeyValueExpr); ok {
								walk(kv.Value)
							} else {
								walk(el)
							}
						}
						return false
					}
					return true
				})
			}
			walk(file)
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	fset := pass.Fset()
	for _, f := range findings {
		at := fset.Position(atomicObjs[f.obj])
		pass.Reportf(f.pos, "%s is accessed via sync/atomic (%s:%d) but read/written plainly here; every access must be atomic (doc/ANALYSIS.md#atomic-discipline)", f.obj.Name(), shortPath(at.Filename), at.Line)
	}
}

// accessedObject resolves the variable an address-of operand denotes: a
// struct field (via selection) or a package-level variable.
func accessedObject(info *types.Info, x ast.Expr) types.Object {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// shortPath trims the path to its last two segments for compact messages.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}
