package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// schedPkg is the import-path suffix of the executor package.
const schedPkg = "internal/sched"

// ctxPropagationCheck enforces doc/CANCELLATION.md's propagation rules,
// whole-program:
//
//  1. Code with a context.Context in scope — a parameter of the function or
//     of an enclosing func literal, or a ctx-typed variable assigned
//     earlier (closures capturing ctx count) — must not call Pool.Submit:
//     the context-blind entry point silently severs the caller's
//     cancellation chain; SubmitCtx is the correct spelling. The call graph
//     extends the rule transitively: a ctx-bearing function must not call
//     a ctx-less module function that (through any chain of ctx-less
//     callees) reaches Pool.Submit, because the severing just moved one
//     frame down. A callee that itself takes a ctx is the barrier — the
//     caller hands the context over and the callee's behavior is its own
//     finding.
//  2. Library packages (anything under internal/ plus the public factor
//     package) must not mint contexts of their own with
//     context.Background() or context.TODO(): contexts flow in from the
//     caller. Documented ctx-free convenience wrappers are the intended
//     exception and carry a `// calint:ignore ctx-propagation` with their
//     rationale — an ignored Submit call also does not taint its callers.
func ctxPropagationCheck() *ProgramCheck {
	return &ProgramCheck{
		Name: "ctx-propagation",
		Doc:  "ctx-bearing code must use SubmitCtx (directly and transitively); library packages must not call context.Background/TODO",
		Run:  runCtxPropagation,
	}
}

func runCtxPropagation(pass *ProgramPass) {
	// Rule 2: no privately minted root contexts in library packages.
	for _, pkg := range pass.Packages() {
		if !isLibraryRel(pkg.Rel()) {
			continue
		}
		info := pkg.Info
		for _, file := range pkg.Syntax {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgFunc(info, call, "context", "Background") {
					pass.Reportf(call.Pos(), "library package %s calls context.Background(); accept a ctx from the caller instead (doc/CANCELLATION.md)", pkg.Path)
				} else if isPkgFunc(info, call, "context", "TODO") {
					pass.Reportf(call.Pos(), "library package %s calls context.TODO(); accept a ctx from the caller instead (doc/CANCELLATION.md)", pkg.Path)
				}
				return true
			})
		}
	}

	// Rule 1, direct: Pool.Submit with a ctx in scope. The same walk seeds
	// the taint set: any function containing an unsuppressed Submit call.
	g := pass.CallGraph()
	tainted := make(map[*types.Func]bool)
	for f, node := range g.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		info := node.Pkg.Info
		ctxVars := collectCtxVars(info, node.Decl)
		hasParam := funcHasCtxParam(info, node.Decl)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPoolSubmit(info, call) {
				return true
			}
			if pass.Suppressed("ctx-propagation", call.Pos()) {
				return true
			}
			tainted[f] = true
			if ctxInScopeAt(ctxVars, call.Pos()) {
				if hasParam {
					pass.Reportf(call.Pos(), "%s receives a context.Context but calls Pool.Submit, severing cancellation; use SubmitCtx (doc/CANCELLATION.md)", node.Decl.Name.Name)
				} else {
					pass.Reportf(call.Pos(), "%s has a context.Context in scope but calls Pool.Submit, severing cancellation; use SubmitCtx (doc/CANCELLATION.md)", node.Decl.Name.Name)
				}
			}
			return true
		})
	}

	// Taint propagation: calling a ctx-less tainted function taints the
	// caller; a ctx-bearing callee is the barrier.
	next := make(map[*types.Func]*types.Func) // example next hop toward Submit
	for changed := true; changed; {
		changed = false
		for f, node := range g.Nodes {
			if tainted[f] {
				continue
			}
			for _, e := range node.Calls {
				if tainted[e.Callee] && !sigHasCtxParam(e.Callee) {
					tainted[f] = true
					next[f] = e.Callee
					changed = true
					break
				}
			}
		}
	}

	// Rule 1, transitive: a ctx-bearing function calling into a tainted
	// ctx-less chain.
	for f, node := range g.Nodes {
		if !sigHasCtxParam(f) || node.Decl.Body == nil {
			continue
		}
		for _, e := range node.Calls {
			if !tainted[e.Callee] || sigHasCtxParam(e.Callee) {
				continue
			}
			pass.Reportf(e.Pos, "%s receives a context.Context but calls %s, which reaches Pool.Submit via %s, severing cancellation; thread the ctx through a *Ctx path (doc/CANCELLATION.md)", node.Decl.Name.Name, e.Callee.Name(), taintChain(next, e.Callee))
		}
	}
}

// taintChain renders the example path from f to the Submit call for the
// transitive message, e.g. "Run → runOneShot → Pool.Submit".
func taintChain(next map[*types.Func]*types.Func, f *types.Func) string {
	var parts []string
	for cur := f; cur != nil && len(parts) < 8; cur = next[cur] {
		parts = append(parts, cur.Name())
	}
	parts = append(parts, "Pool.Submit")
	return strings.Join(parts, " → ")
}

// isLibraryRel reports whether a module-relative package path is part of
// the library surface the no-private-context rule covers: internal/... and
// factor (commands, examples and the repo root are free to mint root
// contexts).
func isLibraryRel(rel string) bool {
	return rel == "factor" || strings.HasPrefix(rel, "factor/") ||
		rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// passRel returns the module-relative package path of a per-package pass.
func passRel(pass *Pass) string {
	if rest, ok := strings.CutPrefix(pass.PkgPath(), pass.pkg.ModulePath+"/"); ok {
		return rest
	}
	if pass.PkgPath() == pass.pkg.ModulePath {
		return ""
	}
	return pass.PkgPath()
}

// ctxVar is one context.Context-typed variable (parameter or local,
// including those of nested func literals) with its declaration position.
type ctxVar struct {
	pos token.Pos
}

// collectCtxVars gathers every ctx-typed variable declared anywhere in the
// function (the declaring ident's position orders it against call sites).
func collectCtxVars(info *types.Info, fn *ast.FuncDecl) []ctxVar {
	var vars []ctxVar
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isContextType(v.Type()) {
			vars = append(vars, ctxVar{pos: id.Pos()})
		}
		return true
	})
	return vars
}

// ctxInScopeAt reports whether some ctx-typed variable is declared before
// pos (a flow approximation of lexical scope: good enough because ctx
// variables are overwhelmingly parameters or early assignments).
func ctxInScopeAt(vars []ctxVar, pos token.Pos) bool {
	for _, v := range vars {
		if v.pos < pos {
			return true
		}
	}
	return false
}

// funcHasCtxParam reports whether any parameter of fn (including unnamed
// ones) has type context.Context.
func funcHasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	return sigHasCtxParam(obj)
}

// sigHasCtxParam reports whether f's signature has a context.Context
// parameter.
func sigHasCtxParam(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isPoolSubmit reports a method call to (*sched.Pool).Submit.
func isPoolSubmit(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok || f.Name() != "Submit" || f.Pkg() == nil {
		return false
	}
	if !hasPathSuffix(f.Pkg().Path(), schedPkg) {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}
