package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// schedPkg is the import-path suffix of the executor package.
const schedPkg = "internal/sched"

// ctxPropagationCheck enforces doc/CANCELLATION.md's propagation rules:
//
//  1. A function that receives a context.Context must not call
//     Pool.Submit — the context-blind entry point silently severs the
//     caller's cancellation chain; SubmitCtx is the correct spelling.
//  2. Library packages (anything under internal/ plus the public factor
//     package) must not mint contexts of their own with
//     context.Background() or context.TODO(): contexts flow in from the
//     caller. Documented ctx-free convenience wrappers are the intended
//     exception and carry a `// calint:ignore ctx-propagation` with their
//     rationale.
func ctxPropagationCheck() *Check {
	return &Check{
		Name: "ctx-propagation",
		Doc:  "ctx-bearing functions must use SubmitCtx; library packages must not call context.Background/TODO",
		Run:  runCtxPropagation,
	}
}

func runCtxPropagation(pass *Pass) {
	info := pass.TypesInfo()
	library := isLibraryPath(pass)
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hasCtx := funcHasCtxParam(info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if hasCtx && isPoolSubmit(info, call) {
					pass.Reportf(call.Pos(), "%s receives a context.Context but calls Pool.Submit, severing cancellation; use SubmitCtx (doc/CANCELLATION.md)", fn.Name.Name)
				}
				if library {
					if isPkgFunc(info, call, "context", "Background") || isPkgFunc(info, call, "context", "TODO") {
						name := "Background"
						if isPkgFunc(info, call, "context", "TODO") {
							name = "TODO"
						}
						pass.Reportf(call.Pos(), "library package %s calls context.%s(); accept a ctx from the caller instead (doc/CANCELLATION.md)", pass.PkgPath(), name)
					}
				}
				return true
			})
		}
	}
}

// isLibraryPath reports whether the package is part of the library surface
// the no-private-context rule covers: internal/... and factor (commands,
// examples and the repo root are free to mint root contexts).
func isLibraryPath(pass *Pass) bool {
	rel := passRel(pass)
	return rel == "factor" || strings.HasPrefix(rel, "factor/") ||
		rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// passRel returns the module-relative package path.
func passRel(pass *Pass) string {
	if rest, ok := strings.CutPrefix(pass.PkgPath(), pass.pkg.ModulePath+"/"); ok {
		return rest
	}
	if pass.PkgPath() == pass.pkg.ModulePath {
		return ""
	}
	return pass.PkgPath()
}

// funcHasCtxParam reports whether any parameter of fn (including unnamed
// ones) has type context.Context.
func funcHasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isPoolSubmit reports a method call to (*sched.Pool).Submit.
func isPoolSubmit(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok || f.Name() != "Submit" || f.Pkg() == nil {
		return false
	}
	if !hasPathSuffix(f.Pkg().Path(), schedPkg) {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}
