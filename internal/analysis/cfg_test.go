package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFuncCFG parses src (a file fragment containing exactly one function)
// and builds the CFG of its body.
func buildFuncCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no function in src")
	return nil
}

// TestCFGDump pins the block/edge structure of every control construct the
// builder handles; the lock-order dataflow runs on exactly these graphs.
func TestCFGDump(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if-else",
			src: `func f(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}`,
			want: `b0 entry: x > 0 -> b2 b3
b1 exit: -
b2 if.then: x++ -> b4
b3 if.else: x-- -> b4
b4 if.done: return x -> b1
`,
		},
		{
			name: "for-break-continue",
			src: `func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i%2 == 0 {
			continue
		}
		n--
	}
}`,
			want: `b0 entry: i := 0 -> b2
b1 exit: -
b2 for.head: i < n -> b3 b4
b3 for.body: i == 3 -> b6 b7
b4 for.done: - -> b1
b5 for.post: i++ -> b2
b6 if.then: - -> b4
b7 if.done: i%2 == 0 -> b8 b9
b8 if.then: - -> b5
b9 if.done: n-- -> b5
`,
		},
		{
			name: "range-labeled-break",
			src: `func f(xs []int) {
outer:
	for _, x := range xs {
		for {
			if x > 0 {
				break outer
			}
			break
		}
	}
}`,
			want: `b0 entry: - -> b2
b1 exit: -
b2 label.outer: - -> b3
b3 range.head: xs -> b4 b5
b4 range.body: - -> b6
b5 range.done: - -> b1
b6 for.head: - -> b7
b7 for.body: x > 0 -> b9 b10
b8 for.done: - -> b3
b9 if.then: - -> b5
b10 if.done: - -> b8
`,
		},
		{
			name: "switch-fallthrough",
			src: `func f(x int) string {
	switch x {
	case 1:
		fallthrough
	case 2:
		return "lo"
	default:
		return "hi"
	}
}`,
			want: `b0 entry: x -> b3 b4 b5
b1 exit: -
b2 switch.done: - -> b1
b3 switch.case: 1 -> b4
b4 switch.case: 2; return "lo" -> b1
b5 switch.default: return "hi" -> b1
`,
		},
		{
			name: "select",
			src: `func f(ch chan int, done chan struct{}) {
	select {
	case v := <-ch:
		_ = v
	case <-done:
		return
	default:
	}
}`,
			want: `b0 entry: - -> b3 b4 b5
b1 exit: -
b2 select.done: - -> b1
b3 select.case: v := <-ch; _ = v -> b2
b4 select.case: <-done; return -> b1
b5 select.default: - -> b2
`,
		},
		{
			name: "defer-panic",
			src: `func f(bad bool) {
	acquire()
	defer release()
	if bad {
		panic("bad")
	}
	work()
}`,
			want: `b0 entry: acquire(); defer release(); bad -> b2 b3
b1 exit: -
b2 if.then: panic("bad")
b3 if.done: work() -> b1
`,
		},
		{
			name: "goto-forward",
			src: `func f(n int) {
	if n > 0 {
		goto end
	}
	n++
end:
	n--
}`,
			want: `b0 entry: n > 0 -> b2 b3
b1 exit: -
b2 if.then: - -> b4
b3 if.done: n++ -> b4
b4 label.end: n-- -> b1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := buildFuncCFG(t, tc.src).Dump()
			if got != tc.want {
				t.Errorf("CFG dump mismatch\n got:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGDefers pins the defer list: defers are recorded, not edges.
func TestCFGDefers(t *testing.T) {
	cfg := buildFuncCFG(t, `func f() {
	defer a()
	if cond() {
		defer b()
	}
}`)
	if len(cfg.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(cfg.Defers))
	}
}

// TestCFGNilBody covers assembly-declared functions.
func TestCFGNilBody(t *testing.T) {
	cfg := BuildCFG(nil)
	if len(cfg.Blocks) != 2 || cfg.Entry == nil || cfg.Exit == nil {
		t.Fatalf("nil body CFG = %s", cfg.Dump())
	}
	if !strings.Contains(cfg.Dump(), "b0 entry") {
		t.Fatalf("dump missing entry: %s", cfg.Dump())
	}
}
