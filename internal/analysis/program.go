package analysis

// Whole-program checks. Where a Check sees one package at a time, a
// ProgramCheck sees every package of the run at once plus the module-wide
// call graph, which is what lock-order (cycles span packages), hotpath-alloc
// (hotness is reachability from roots in other packages) and the
// call-graph-aware ctx-propagation rules need. The cmd/calint driver loads
// all requested packages first, then runs the program suite once over the
// lot; the golden tests build single-package programs from fixtures.

import (
	"fmt"
	"go/token"
	"sort"
)

// ProgramCheck is one named whole-program analyzer.
type ProgramCheck struct {
	// Name identifies the check in diagnostics and ignore comments.
	Name string
	// Doc is a one-line description shown by `calint -list`.
	Doc string
	// Run inspects the whole program and reports through the pass.
	Run func(*ProgramPass)
}

// ProgramChecks returns the whole-program suite in a stable order.
func ProgramChecks() []*ProgramCheck {
	return []*ProgramCheck{
		ctxPropagationCheck(),
		lockOrderCheck(),
		hotpathAllocCheck(),
		atomicDisciplineCheck(),
	}
}

// Program is the unit a ProgramCheck analyzes: the loaded packages, their
// shared call graph, and the merged ignore-comment index.
type Program struct {
	// Fset positions all syntax (shared by every package of one Loader).
	Fset *token.FileSet
	// Packages are the analyzed packages, in load order.
	Packages []*Package
	// CallGraph indexes every declared function across Packages.
	CallGraph *CallGraph

	ignores ignoreIndex
}

// BuildProgram assembles a Program over the given packages. All packages
// must come from one Loader (they share its FileSet; type identities are
// shared through its import cache).
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{CallGraph: BuildCallGraph(pkgs), ignores: make(ignoreIndex)}
	for _, pkg := range pkgs {
		if prog.Fset == nil {
			prog.Fset = pkg.Fset
		}
		prog.Packages = append(prog.Packages, pkg)
		// Filenames are unique across the shared FileSet, so the per-package
		// indexes merge without collisions.
		for file, lines := range buildIgnoreIndex(pkg.Fset, pkg.Syntax) {
			prog.ignores[file] = lines
		}
	}
	return prog
}

// ProgramPass hands the program to one check and collects diagnostics,
// applying ignore-comment suppression.
type ProgramPass struct {
	check string
	prog  *Program
	diags *[]Diagnostic
}

// Program returns the program under analysis.
func (p *ProgramPass) Program() *Program { return p.prog }

// Fset returns the file set positions resolve against.
func (p *ProgramPass) Fset() *token.FileSet { return p.prog.Fset }

// Packages returns the analyzed packages.
func (p *ProgramPass) Packages() []*Package { return p.prog.Packages }

// CallGraph returns the module-wide call graph.
func (p *ProgramPass) CallGraph() *CallGraph { return p.prog.CallGraph }

// Reportf records a diagnostic at pos unless an ignore comment suppresses
// it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.prog.Fset.Position(pos)
	if p.prog.ignores.suppressed(p.check, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether an ignore comment covers the named check at
// pos. Checks that seed dataflow from source facts (ctx-propagation's taint
// from Pool.Submit call sites) consult this so a documented, ignored call
// site does not taint its callers.
func (p *ProgramPass) Suppressed(check string, pos token.Pos) bool {
	return p.prog.ignores.suppressed(check, p.prog.Fset.Position(pos))
}

// RunProgramChecks applies every given check to the program and returns the
// surviving diagnostics sorted by file, line, column, check, message.
func RunProgramChecks(prog *Program, checks []*ProgramCheck) []Diagnostic {
	var diags []Diagnostic
	for _, c := range checks {
		c.Run(&ProgramPass{check: c.Name, prog: prog, diags: &diags})
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, check name and
// message — the diff-stable order CI output and the baseline rely on. The
// driver uses it to merge per-package and whole-program findings.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Check != diags[j].Check {
			return diags[i].Check < diags[j].Check
		}
		return diags[i].Message < diags[j].Message
	})
}
