package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package as the checks see it: syntax, types
// and the import path scope rules key on.
type Package struct {
	// Path is the package's import path; LoadAs may masquerade it so
	// path-scoped checks can be exercised from fixture directories.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// ModulePath is the enclosing module's path (from go.mod).
	ModulePath string
	// Fset positions all syntax.
	Fset *token.FileSet
	// Syntax holds the parsed non-test files, sorted by file name.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checking results for Syntax.
	Info *types.Info
}

// Rel returns the package's module-relative path ("" for the module root):
// the scope key used by path-restricted checks like error-contract.
func (p *Package) Rel() string {
	if p.Path == p.ModulePath {
		return ""
	}
	if rest, ok := strings.CutPrefix(p.Path, p.ModulePath+"/"); ok {
		return rest
	}
	return p.Path
}

// Loader parses and type-checks in-module packages from source, resolving
// module-internal imports against the module tree and everything else
// (the standard library) through go/importer's source importer. It keeps a
// cache so shared dependencies type-check once.
//
// The loader is safe for concurrent use: the driver loads independent
// package directories in parallel and the cache coalesces duplicate work
// (the first goroutine to request an import path type-checks it; others
// wait on its entry). token.FileSet is concurrency-safe; a completed
// *types.Package is immutable; the stdlib source importer is not
// documented as concurrency-safe, so it runs under its own mutex.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet

	stdlibMu sync.Mutex
	stdlib   types.Importer

	mu   sync.Mutex
	pkgs map[string]*pkgEntry
}

// pkgEntry is one cache slot: done closes when the load completes, after
// which pkg/err are immutable.
type pkgEntry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader builds a loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		stdlib:     importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*pkgEntry),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load type-checks the package in dir under its natural import path
// (module path + module-relative directory).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadAs(abs, path)
}

// LoadAs type-checks the package in dir under an explicit import path.
// Golden-test fixtures use it to masquerade as runtime packages so
// path-scoped checks apply to them.
func (l *Loader) LoadAs(dir, pkgPath string) (*Package, error) {
	l.mu.Lock()
	if e, ok := l.pkgs[pkgPath]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &pkgEntry{done: make(chan struct{})}
	l.pkgs[pkgPath] = e
	l.mu.Unlock()
	e.pkg, e.err = l.loadAs(dir, pkgPath)
	close(e.done)
	return e.pkg, e.err
}

// loadAs does the actual parse + type-check for one cache entry.
func (l *Loader) loadAs(dir, pkgPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable non-test Go files in %s", abs)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		Path:       pkgPath,
		Dir:        abs,
		ModulePath: l.ModulePath,
		Fset:       l.fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// parseDir parses every buildable non-test .go file in dir, sorted by name
// for deterministic diagnostics. Build constraints (file suffixes like
// _amd64.go and //go:build lines) are honored for the host GOOS/GOARCH so
// per-architecture pairs such as the blas microkernel files don't collide
// during type-checking.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	bctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := bctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts Loader to types.Importer: module-internal paths
// resolve from source inside the module; everything else (stdlib) falls
// through to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := l.ModuleRoot
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
		}
		p, err := l.LoadAs(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	l.stdlibMu.Lock()
	defer l.stdlibMu.Unlock()
	return l.stdlib.Import(path)
}

// ModuleDirs walks the module tree from root and returns every directory
// containing at least one non-test .go file, skipping testdata, vendor,
// hidden and VCS directories — the expansion of the "./..." pattern.
func ModuleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
