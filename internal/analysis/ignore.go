package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreMarker introduces a suppression comment:
//
//	// calint:ignore <check> [<check>...] [-- reason]
//
// The comment suppresses the named checks' diagnostics on its own line and
// on the line immediately below it, so both trailing and leading placement
// work:
//
//	return LUCtx(context.Background(), a, opt) // calint:ignore ctx-propagation -- ctx-free wrapper
//
//	// calint:ignore ctx-propagation -- ctx-free wrapper
//	return LUCtx(context.Background(), a, opt)
//
// Everything after a "--" separator is free-form rationale; spelling out
// why the invariant does not apply is strongly encouraged (see
// doc/ANALYSIS.md).
const ignoreMarker = "calint:ignore"

// ignoreIndex maps filename -> line -> names of checks suppressed there.
type ignoreIndex map[string]map[int][]string

// buildIgnoreIndex scans every comment in the files for ignore markers.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignoreMarker)
				if !ok {
					continue
				}
				if reason := strings.Index(rest, "--"); reason >= 0 {
					rest = rest[:reason]
				}
				checks := strings.Fields(rest)
				if len(checks) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				// The marker covers its own line (trailing comment) and the
				// next line (leading comment).
				lines[pos.Line] = append(lines[pos.Line], checks...)
				lines[pos.Line+1] = append(lines[pos.Line+1], checks...)
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic of the named check at pos is
// covered by an ignore comment.
func (idx ignoreIndex) suppressed(check string, pos token.Position) bool {
	lines, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, name := range lines[pos.Line] {
		if name == check {
			return true
		}
	}
	return false
}
