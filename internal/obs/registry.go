package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MetricType is the exposition type of a metric family.
type MetricType string

// The metric types the registry supports (and the encoder emits).
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry is an ordered collection of metric families. Registration (the
// Counter/Gauge/Histogram/*Vec/*Func constructors) takes a lock and panics on
// an invalid or duplicate name — both are programmer errors, caught at
// startup. Metric updates after registration never touch the registry lock.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is one named metric with its help, type and (for Vecs) label
// dimensions. Unlabeled metrics hold a single series with no label values.
type family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series

	// fn, when non-nil, makes this a Func metric: the value is read at
	// Gather time instead of being stored.
	fn func() float64
}

// series is one labeled instance of a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates and inserts a family, panicking on duplicates — two
// subsystems claiming one name would silently sum in the exposition.
func (r *Registry) register(f *family) {
	if !validMetricName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labelNames {
		if !validLabelName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	f.byKey = make(map[string]*series)
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := &family{name: name, help: help, typ: TypeCounter}
	r.register(f)
	return f.get(nil).counter
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := &family{name: name, help: help, typ: TypeGauge}
	r.register(f)
	return f.get(nil).gauge
}

// Histogram registers and returns an unlabeled histogram with the given
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := &family{name: name, help: help, typ: TypeHistogram, buckets: buckets}
	r.register(f)
	return f.get(nil).hist
}

// CounterFunc registers a counter whose value is produced by fn at Gather
// time — for exposing a counter another subsystem already maintains (e.g.
// the pool's completed-task count) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeCounter, fn: fn})
}

// GaugeFunc registers a gauge whose value is produced by fn at Gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeGauge, fn: fn})
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs at least one label", name))
	}
	f := &family{name: name, help: help, typ: TypeCounter, labelNames: labelNames}
	r.register(f)
	return &CounterVec{f}
}

// With returns the counter for the given label values (one per label name,
// in registration order), creating it on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).counter
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs at least one label", name))
	}
	f := &family{name: name, help: help, typ: TypeGauge, labelNames: labelNames}
	r.register(f)
	return &GaugeVec{f}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).gauge
}

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family with shared buckets
// (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: HistogramVec %q needs at least one label", name))
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := &family{name: name, help: help, typ: TypeHistogram, labelNames: labelNames, buckets: buckets}
	r.register(f)
	return &HistogramVec{f}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).hist
}

// get returns the series for the label values, creating it on first use.
// The first Gather (or With) fixes a series in place; series are never
// removed, matching Prometheus' model of monotone series sets.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case TypeCounter:
		s.counter = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.hist = NewHistogram(f.buckets)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Snapshot is a point-in-time copy of a registry's families, the unit both
// the text encoder and consistency-sensitive scrapers work from: gather
// once, then format or inspect without racing further updates.
type Snapshot struct {
	Families []FamilySnapshot
}

// FamilySnapshot is one family's state at Gather time.
type FamilySnapshot struct {
	Name       string
	Help       string
	Type       MetricType
	LabelNames []string
	Series     []SeriesSnapshot
}

// SeriesSnapshot is one series' state at Gather time. Value holds counters
// and gauges; Hist holds histograms.
type SeriesSnapshot struct {
	LabelValues []string
	Value       float64
	Hist        *HistogramSnapshot
}

// Gather copies every family into a Snapshot. Families appear in
// registration order; series within a family are sorted by label values so
// the exposition is deterministic.
func (r *Registry) Gather() *Snapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	snap := &Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ, LabelNames: f.labelNames}
		if f.fn != nil {
			fs.Series = []SeriesSnapshot{{Value: f.fn()}}
			snap.Families = append(snap.Families, fs)
			continue
		}
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		for _, s := range series {
			ss := SeriesSnapshot{LabelValues: s.labelValues}
			switch {
			case s.counter != nil:
				ss.Value = float64(s.counter.Value())
			case s.gauge != nil:
				ss.Value = float64(s.gauge.Value())
			case s.hist != nil:
				h := s.hist.Snapshot()
				ss.Hist = &h
			}
			fs.Series = append(fs.Series, ss)
		}
		sort.Slice(fs.Series, func(i, j int) bool {
			return lessLabels(fs.Series[i].LabelValues, fs.Series[j].LabelValues)
		})
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// lessLabels orders label-value tuples lexicographically.
func lessLabels(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// validMetricName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
