package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter.Value = %d, want 5", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Counter.Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Gauge.Value = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5 (NaN dropped)", s.Count)
	}
	want := []int64{2, 1, 1, 1} // <=1: {0.5, 1}; <=2: {1.5}; <=4: {3}; +Inf: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts[%d] = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-106) > 1e-12 {
		t.Fatalf("Sum = %g, want 106", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in first bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 0 || q > 1 {
		t.Fatalf("Quantile(0.5) = %g, want within first bucket [0,1]", q)
	}
	if q := s.Quantile(1); q != 1 {
		t.Fatalf("Quantile(1) = %g, want 1 (first bucket upper bound)", q)
	}
	empty := NewHistogram(nil).Snapshot()
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("Quantile on empty histogram should be NaN")
	}
	over := NewHistogram([]float64{1})
	over.Observe(50)
	if q := over.Snapshot().Quantile(0.99); q != 1 {
		t.Fatalf("+Inf-bucket quantile = %g, want clamp to last bound 1", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryDuplicateAndInvalidNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.Counter("ok_total", "again") },
		"invalid name": func() { r.Counter("bad-name", "dash") },
		"bad label":    func() { r.CounterVec("v_total", "h", "bad-label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVecSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "op")
	v.With("lu").Inc()
	v.With("lu").Inc()
	v.With("qr").Inc()
	snap := r.Gather()
	if len(snap.Families) != 1 || len(snap.Families[0].Series) != 2 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	// Sorted by label value: lu before qr.
	if got := snap.Families[0].Series[0]; got.LabelValues[0] != "lu" || got.Value != 2 {
		t.Fatalf("lu series = %+v, want value 2", got)
	}
	if got := snap.Families[0].Series[1]; got.LabelValues[0] != "qr" || got.Value != 1 {
		t.Fatalf("qr series = %+v, want value 1", got)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("derived_total", "from elsewhere", func() float64 { return n })
	r.GaugeFunc("depth", "live depth", func() float64 { return -2 })
	n++
	snap := r.Gather()
	if got := snap.Families[0].Series[0].Value; got != 42 {
		t.Fatalf("CounterFunc value = %g, want 42 (read at Gather)", got)
	}
	if got := snap.Families[1].Series[0].Value; got != -2 {
		t.Fatalf("GaugeFunc value = %g, want -2", got)
	}
}

// TestExpositionRoundTrip is the satellite-mandated encoder test: everything
// the encoder writes must satisfy the strict parser, and the parsed values
// must match what was recorded.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "a plain counter").Add(3)
	r.Gauge("in_flight", "current in-flight").Set(-1)
	v := r.CounterVec("http_requests_total", "requests by op and status", "op", "status")
	v.With("lu", "200").Add(10)
	v.With("qr", "429").Inc()
	h := r.HistogramVec("request_seconds", "latency with \"quotes\" and \\slash\nnewline", nil, "op")
	for i := 0; i < 50; i++ {
		h.With("lu").Observe(float64(i) / 100)
	}
	h.With("weird\"op\\x").Observe(0.2)
	r.Histogram("empty_seconds", "never observed", []float64{1, 2})

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParseText rejected encoder output: %v\n%s", err, b.String())
	}
	if len(fams) != 5 {
		t.Fatalf("parsed %d families, want 5", len(fams))
	}
	byName := map[string]*ParsedFamily{}
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	if f := byName["plain_total"]; f == nil || f.Type != TypeCounter || f.Samples[0].Value != 3 {
		t.Fatalf("plain_total mismatch: %+v", f)
	}
	if f := byName["in_flight"]; f == nil || f.Type != TypeGauge || f.Samples[0].Value != -1 {
		t.Fatalf("in_flight mismatch: %+v", f)
	}
	req := byName["http_requests_total"]
	if req == nil || len(req.Samples) != 2 {
		t.Fatalf("http_requests_total mismatch: %+v", req)
	}
	for _, s := range req.Samples {
		if s.Label("op") == "lu" && (s.Label("status") != "200" || s.Value != 10) {
			t.Fatalf("lu sample mismatch: %+v", s)
		}
	}
	lat := byName["request_seconds"]
	if lat == nil || !strings.Contains(lat.Help, "\"quotes\"") || !strings.Contains(lat.Help, "\\n") {
		t.Fatalf("help escaping lost: %+v", lat)
	}
	var counts, sums int
	for _, s := range lat.Samples {
		if s.Name == "request_seconds_count" {
			counts++
			switch s.Label("op") {
			case "lu":
				if s.Value != 50 {
					t.Fatalf("lu _count = %g, want 50", s.Value)
				}
			case "weird\"op\\x":
				if s.Value != 1 {
					t.Fatalf("escaped-label _count = %g, want 1", s.Value)
				}
			default:
				t.Fatalf("unexpected op %q", s.Label("op"))
			}
		}
		if s.Name == "request_seconds_sum" {
			sums++
		}
	}
	if counts != 2 || sums != 2 {
		t.Fatalf("got %d _count / %d _sum samples, want 2/2", counts, sums)
	}
	if f := byName["empty_seconds"]; f == nil || len(f.Samples) != 5 {
		// 2 finite buckets + +Inf + _sum + _count even with zero observations.
		t.Fatalf("empty histogram exposition mismatch: %+v", f)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 3\n",
		"TYPE without HELP":   "# TYPE x counter\nx 1\n",
		"duplicate series": "# HELP x h\n# TYPE x counter\n" +
			"x{op=\"a\"} 1\nx{op=\"a\"} 2\n",
		"negative counter": "# HELP x h\n# TYPE x counter\nx -1\n",
		"non-monotone buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"missing sum": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 0\nh_count 0\n",
		"bad value":      "# HELP x h\n# TYPE x gauge\nx pants\n",
		"unknown type":   "# HELP x h\n# TYPE x summary\nx 1\n",
		"trailing junk":  "# HELP x h\n# TYPE x gauge\nx 1 1700000000\n",
		"unclosed label": "# HELP x h\n# TYPE x gauge\nx{op=\"a 1\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseText accepted malformed input:\n%s", name, text)
		}
	}
}

// TestConcurrentObserveGather hammers one histogram and one vec from many
// goroutines while gathering; the race detector checks the synchronization
// and the final snapshot checks no observation was lost.
func TestConcurrentObserveGather(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", nil)
	v := r.CounterVec("ops_total", "ops", "op")
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := string(rune('a' + w%4))
			for i := 0; i < perW; i++ {
				h.Observe(float64(i) * 1e-6)
				v.With(op).Inc()
				if i%500 == 0 {
					snap := r.Gather()
					// Mid-burst invariant: derived Count equals the bucket sum
					// by construction; spot-check it is non-decreasing-sane.
					hs := snap.Families[0].Series[0].Hist
					var sum int64
					for _, c := range hs.Counts {
						sum += c
					}
					if sum != hs.Count {
						t.Errorf("Count %d != bucket sum %d", hs.Count, sum)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("histogram Count = %d, want %d", s.Count, workers*perW)
	}
	var total int64
	for _, fam := range r.Gather().Families {
		if fam.Name == "ops_total" {
			for _, ser := range fam.Series {
				total += int64(ser.Value)
			}
		}
	}
	if total != workers*perW {
		t.Fatalf("ops_total sum = %d, want %d", total, workers*perW)
	}
}
