// Package obs is the repository's zero-dependency observability core: lock-free
// counters, gauges and fixed-bucket latency histograms, grouped into a Registry
// that encodes itself in the Prometheus text exposition format (encode.go) and
// validates such output with a strict parser (parse.go).
//
// The package exists so that every layer of the stack — the scheduler pool
// (sched.Pool.Metrics), the self-healing engine (factor.Engine.Stats) and the
// HTTP front end (cmd/facsvc /metrics) — shares one metrics code path instead
// of hand-rolled atomic fields and fmt.Fprintf exposition. The paper's
// execution-trace evidence (Figs. 3-4) is about where time goes; obs is the
// always-on numeric side of that story: cheap enough to leave enabled in
// production (a handful of atomic adds per event), rich enough to answer
// "where did the time go" without attaching a tracer.
//
// Concurrency model: all write paths (Add, Inc, Set, Observe) are lock-free
// atomics safe for any number of goroutines. Reads (Value, Snapshot, Gather)
// are atomic per metric; a Gather taken during a burst is per-metric exact but
// not a cross-metric transaction — callers that need cross-metric invariants
// order their reads (see cmd/facsvc's snapshot ordering) or read under the
// mutex that owns the fields (see sched.Pool.Metrics).
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing value (events since process start).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by n. Counters are monotonic: a negative n
// panics, since a decreasing counter silently corrupts every rate() computed
// from it.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: negative Counter.Add(%d)", n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// SetMax raises the gauge to n if n exceeds the current value — a lock-free
// high-water mark.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// DefBuckets is the default latency bucket layout, in seconds: log-spaced
// from 1µs (a tiny tree-reduction task) to 10s (a full paper-scale
// factorization), which covers every task kind and request class in the
// repository with 9 buckets.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 2.5, 10}

// Histogram is a fixed-bucket histogram of float64 observations (seconds, by
// convention). Buckets are chosen at construction and never change, so
// Observe is a bounded scan plus two atomic adds — cheap enough for per-task
// recording on the pool's hot path.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending. An
	// implicit +Inf bucket catches everything above the last bound.
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64  // float64 bits of the running sum
}

// NewHistogram builds an unregistered histogram with the given ascending
// bucket upper bounds (nil means DefBuckets). Use Registry.Histogram for a
// registered one.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped — a NaN sum poisons
// the exposition forever, and a NaN latency is always a caller bug.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Count is derived
// from the bucket counts at snapshot time, so the cumulative +Inf bucket and
// the count always agree even when the snapshot races concurrent Observes.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] holds the observations in
	// bucket i (NOT cumulative), with Counts[len(Bounds)] the +Inf overflow.
	Bounds []float64
	Counts []int64
	// Count is the total number of observations (the sum of Counts).
	Count int64
	// Sum is the running total of observed values. Bucket and sum are updated
	// independently, so during a concurrent Observe a snapshot may see one
	// side before the other; the skew is at most the in-flight observations.
	Sum float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the snapshot's
// buckets by linear interpolation within the winning bucket, the same way
// Prometheus' histogram_quantile does. It returns NaN for an empty snapshot;
// estimates in the +Inf bucket clamp to the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
