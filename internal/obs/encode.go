package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type a /metrics handler serving
// WriteText output should set.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText encodes the snapshot in the Prometheus text exposition format
// (version 0.0.4): a # HELP and # TYPE line per family, one sample line per
// series, histograms expanded into cumulative _bucket series plus _sum and
// _count. Families keep registration order; series are already sorted by
// Gather, so output is deterministic for a given state.
func (s *Snapshot) WriteText(w io.Writer) error {
	for i := range s.Families {
		if err := writeFamily(w, &s.Families[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteText gathers the registry and encodes it; shorthand for HTTP
// handlers that don't need to inspect the snapshot.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Gather().WriteText(w)
}

func writeFamily(w io.Writer, f *FamilySnapshot) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
		return err
	}
	for i := range f.Series {
		ser := &f.Series[i]
		if f.Type == TypeHistogram && ser.Hist != nil {
			if err := writeHistogram(w, f, ser); err != nil {
				return err
			}
			continue
		}
		labels := formatLabels(f.LabelNames, ser.LabelValues, "", "")
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labels, formatValue(ser.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, f *FamilySnapshot, ser *SeriesSnapshot) error {
	h := ser.Hist
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		labels := formatLabels(f.LabelNames, ser.LabelValues, "le", formatValue(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labels, cum); err != nil {
			return err
		}
	}
	// The +Inf bucket is cumulative over everything, so it always equals
	// _count (Count is derived from the same bucket reads in Snapshot).
	labels := formatLabels(f.LabelNames, ser.LabelValues, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labels, h.Count); err != nil {
		return err
	}
	plain := formatLabels(f.LabelNames, ser.LabelValues, "", "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, plain, formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, plain, h.Count)
	return err
}

// formatLabels renders {a="x",b="y"} from parallel name/value slices, with
// an optional extra pair (the histogram "le" label) appended. Returns ""
// when there are no labels at all.
func formatLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do:
// integers without an exponent, everything else via strconv 'g'.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text, per the format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double-quote and newline in a label
// value, per the format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
