package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// parse.go is the strict side of the exposition round trip: a validating
// parser for the Prometheus text format that the tests (and cmd/promlint)
// run over everything the encoder emits. It is deliberately stricter than
// a scraping Prometheus server — HELP and TYPE are mandatory, histogram
// buckets must be cumulative and agree with _count, and duplicate series
// are errors — because its job is to fail the build on malformed
// exposition, not to tolerate it.

// ParsedSample is one sample line, with labels in appearance order.
type ParsedSample struct {
	Name        string // full sample name, including _bucket/_sum/_count suffixes
	LabelNames  []string
	LabelValues []string
	Value       float64
}

// ParsedFamily is one metric family reassembled from its HELP, TYPE and
// sample lines.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []ParsedSample
}

// Label returns the sample's value for the named label, or "".
func (s *ParsedSample) Label(name string) string {
	for i, n := range s.LabelNames {
		if n == name {
			return s.LabelValues[i]
		}
	}
	return ""
}

// ParseText parses and validates a text exposition. It returns the families
// in order of appearance, or the first validation error with its line
// number. The checks, beyond line-grammar:
//
//   - every sample belongs to a family with both # HELP and # TYPE
//   - no family or series appears twice
//   - counter and gauge samples are single plain lines; counters are >= 0
//   - each histogram series has _bucket lines with cumulative
//     (non-decreasing) counts over strictly increasing le bounds, ends in an
//     le="+Inf" bucket, and carries exactly one _sum and one _count whose
//     count equals the +Inf bucket
func ParseText(r io.Reader) ([]ParsedFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var fams []ParsedFamily
	byName := make(map[string]*ParsedFamily)
	help := make(map[string]string)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, h, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP with no metric name", lineNo)
			}
			if _, dup := help[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
			}
			help[name] = h
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			switch MetricType(typ) {
			case TypeCounter, TypeGauge, TypeHistogram:
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, typ, name)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			h, ok := help[name]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, name)
			}
			fams = append(fams, ParsedFamily{Name: name, Help: h, Type: MetricType(typ)})
			byName[name] = &fams[len(fams)-1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := byName[sample.Name]
		if fam == nil {
			// Histogram samples attach to the base family name.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(sample.Name, suf); ok {
					if f := byName[base]; f != nil && f.Type == TypeHistogram {
						fam = f
						break
					}
				}
			}
		}
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if err := validateFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

// parseSampleLine parses `name{label="v",...} value`.
func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, &s)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp after the value would split here; the encoder never emits
	// one, and the strict parser rejects it.
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return s, fmt.Errorf("expected exactly one value after %q, got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {a="b",...} block at the start of rest, filling
// the sample's labels, and returns the index just past the closing brace.
func parseLabels(rest string, s *ParsedSample) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(rest) && rest[j] != '=' {
			j++
		}
		name := rest[i:j]
		if !validLabelName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(rest) || rest[j+1] != '"' {
			return 0, fmt.Errorf("label %q missing quoted value", name)
		}
		val, next, err := parseQuoted(rest, j+1)
		if err != nil {
			return 0, err
		}
		s.LabelNames = append(s.LabelNames, name)
		s.LabelValues = append(s.LabelValues, val)
		i = next
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

// parseQuoted reads a double-quoted, backslash-escaped string starting at
// rest[start] == '"', returning the unescaped value and the index after the
// closing quote.
func parseQuoted(rest string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(rest) {
		c := rest[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(rest) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch rest[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", rest[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateFamily applies the per-type consistency checks.
func validateFamily(f *ParsedFamily) error {
	switch f.Type {
	case TypeCounter, TypeGauge:
		return validateScalar(f)
	case TypeHistogram:
		return validateHistogram(f)
	}
	return nil
}

func validateScalar(f *ParsedFamily) error {
	seen := make(map[string]bool)
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != f.Name {
			return fmt.Errorf("%s: unexpected sample name %q for %s family", f.Name, s.Name, f.Type)
		}
		key := seriesKey(s, "")
		if seen[key] {
			return fmt.Errorf("%s: duplicate series %s", f.Name, key)
		}
		seen[key] = true
		if f.Type == TypeCounter && s.Value < 0 {
			return fmt.Errorf("%s: counter sample %s is negative (%g)", f.Name, key, s.Value)
		}
	}
	return nil
}

// histSeries accumulates one labeled histogram series during validation.
type histSeries struct {
	bounds []float64
	counts []float64
	sum    *float64
	count  *float64
}

func validateHistogram(f *ParsedFamily) error {
	series := make(map[string]*histSeries)
	var order []string
	get := func(s *ParsedSample) *histSeries {
		key := seriesKey(s, "le")
		hs := series[key]
		if hs == nil {
			hs = &histSeries{}
			series[key] = hs
			order = append(order, key)
		}
		return hs
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("%s: _bucket sample without le label", f.Name)
			}
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q: %v", f.Name, le, err)
			}
			hs := get(s)
			hs.bounds = append(hs.bounds, bound)
			hs.counts = append(hs.counts, s.Value)
		case f.Name + "_sum":
			hs := get(s)
			if hs.sum != nil {
				return fmt.Errorf("%s: duplicate _sum for series %s", f.Name, seriesKey(s, "le"))
			}
			v := s.Value
			hs.sum = &v
		case f.Name + "_count":
			hs := get(s)
			if hs.count != nil {
				return fmt.Errorf("%s: duplicate _count for series %s", f.Name, seriesKey(s, "le"))
			}
			v := s.Value
			hs.count = &v
		default:
			return fmt.Errorf("%s: unexpected sample name %q in histogram family", f.Name, s.Name)
		}
	}
	for _, key := range order {
		hs := series[key]
		if len(hs.bounds) == 0 {
			return fmt.Errorf("%s%s: histogram series with no _bucket lines", f.Name, key)
		}
		for i := 1; i < len(hs.bounds); i++ {
			if hs.bounds[i] <= hs.bounds[i-1] {
				return fmt.Errorf("%s%s: le bounds not increasing at %g", f.Name, key, hs.bounds[i])
			}
			if hs.counts[i] < hs.counts[i-1] {
				return fmt.Errorf("%s%s: bucket counts not cumulative at le=%g (%g < %g)",
					f.Name, key, hs.bounds[i], hs.counts[i], hs.counts[i-1])
			}
		}
		last := hs.bounds[len(hs.bounds)-1]
		if !math.IsInf(last, 1) {
			return fmt.Errorf("%s%s: histogram missing le=\"+Inf\" bucket", f.Name, key)
		}
		if hs.sum == nil {
			return fmt.Errorf("%s%s: histogram missing _sum", f.Name, key)
		}
		if hs.count == nil {
			return fmt.Errorf("%s%s: histogram missing _count", f.Name, key)
		}
		if inf := hs.counts[len(hs.counts)-1]; *hs.count != inf {
			return fmt.Errorf("%s%s: _count %g != +Inf bucket %g", f.Name, key, *hs.count, inf)
		}
	}
	return nil
}

// seriesKey canonicalizes a sample's labels (minus an excluded label, for
// histogram le) into a map key, sorted so label order doesn't matter.
func seriesKey(s *ParsedSample, exclude string) string {
	pairs := make([]string, 0, len(s.LabelNames))
	for i, n := range s.LabelNames {
		if n == exclude {
			continue
		}
		pairs = append(pairs, n+"="+strconv.Quote(s.LabelValues[i]))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}
