package scratch

import (
	"sync"
	"testing"
)

func TestGetLenAndReuse(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 1 << 12, 1<<12 + 1} {
		s := Get(n)
		if len(s) != n {
			t.Fatalf("Get(%d) len = %d", n, len(s))
		}
		if cap(s) < n {
			t.Fatalf("Get(%d) cap = %d", n, cap(s))
		}
		Put(s)
	}
	if Get(0) != nil || Get(-3) != nil {
		t.Fatal("nonpositive Get must return nil")
	}
}

func TestPutGetRoundTripKeepsCapacityInvariant(t *testing.T) {
	// A slice Put into a bucket must satisfy every later Get from that
	// bucket, including the largest request the bucket serves.
	s := make([]float64, 100) // cap 100: floored into the 64-bucket
	Put(s)
	g := Get(64)
	if len(g) != 64 {
		t.Fatalf("len = %d", len(g))
	}
	Put(g)
}

func TestDenseRelease(t *testing.T) {
	d := Dense(7, 5)
	if d.Rows != 7 || d.Cols != 5 || d.Stride != 7 {
		t.Fatalf("Dense shape: %dx%d stride %d", d.Rows, d.Cols, d.Stride)
	}
	for j := 0; j < 5; j++ {
		for i := 0; i < 7; i++ {
			d.Set(i, j, float64(i+10*j))
		}
	}
	if d.At(6, 4) != 46 {
		t.Fatal("Dense not writable")
	}
	Release(d)
	if d.Data != nil {
		t.Fatal("Release must clear Data")
	}
	Release(nil) // must not panic
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 32 + (seed*131+i*17)%4096
				s := Get(n)
				for k := range s {
					s[k] = float64(k)
				}
				for k := range s {
					if s[k] != float64(k) {
						t.Errorf("buffer clobbered at %d", k)
						return
					}
				}
				Put(s)
			}
		}(g)
	}
	wg.Wait()
}
