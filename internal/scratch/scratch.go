// Package scratch pools the short-lived float64 workspaces of the panel
// kernels: the GEPP copies of TSLU's tournament rounds and the stacked
// apply buffer of TSQR's tree nodes. Every CALU/CAQR iteration allocates a
// handful of these per tournament node; under a persistent factor.Engine
// serving many small factorizations they dominate the allocation profile,
// so they are recycled through size-bucketed sync.Pools instead.
//
// Buffers come back with arbitrary contents. Callers must fully overwrite
// a workspace before reading it — every current use sites a CopyFrom over
// the whole buffer first — and must not retain it past Put/Release (views
// handed to callers are always Clone()d out first).
package scratch

import (
	"math/bits"
	"sync"

	"repro/internal/matrix"
)

// minBits is the smallest bucket: slices below 1<<minBits elements are not
// worth pooling (the header boxing costs as much as the allocation).
const minBits = 6

// pools[i] holds *[]float64 with capacity >= 1<<(i+minBits). Get rounds the
// request up to the bucket's power-of-two capacity, so a recycled buffer
// always fits.
var pools [64 - minBits]sync.Pool

// boxes recycles the *[]float64 headers the buffers are stored through:
// without it every Put would heap-allocate a fresh header (&s escapes into
// the pool), which is exactly the per-call allocation this package exists
// to remove. Get drains a header into boxes; Put takes one back out, so the
// steady state allocates nothing (the AllocsPerRun gate in internal/blas
// holds the packed Dgemm path to zero).
var boxes sync.Pool

// bucket returns the index of the smallest bucket whose capacity holds n.
func bucket(n int) int {
	b := bits.Len(uint(n-1)) - minBits
	if b < 0 {
		return 0
	}
	return b
}

// Get returns a length-n slice with arbitrary contents, recycled from the
// pool when possible. n <= 0 returns nil.
func Get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := bucket(n)
	if v := pools[b].Get(); v != nil {
		bp := v.(*[]float64)
		s := (*bp)[:n]
		*bp = nil
		boxes.Put(bp)
		return s
	}
	return make([]float64, n, 1<<(b+minBits))
}

// Put recycles a slice previously returned by Get (or any slice — the
// bucket is derived from its capacity). Small slices are dropped. The
// caller must not use s afterwards.
func Put(s []float64) {
	c := cap(s)
	if c < 1<<minBits {
		return
	}
	// Floor to the largest bucket the capacity fully covers, so Get's
	// round-up guarantee holds for everything stored in a bucket.
	b := bits.Len(uint(c)) - 1 - minBits
	var bp *[]float64
	if v := boxes.Get(); v != nil {
		bp = v.(*[]float64)
	} else {
		bp = new([]float64)
	}
	*bp = s[:c]
	pools[b].Put(bp)
}

// Dense returns an r x c column-major matrix (stride r) backed by a pooled
// buffer, with arbitrary contents: the caller must overwrite it (CopyFrom)
// before reading, and hand it back with Release when done.
func Dense(r, c int) *matrix.Dense {
	return matrix.FromColMajor(r, c, r, Get(r*c))
}

// Release recycles a matrix obtained from Dense. The matrix (and any views
// of it) must not be used afterwards.
func Release(d *matrix.Dense) {
	if d == nil {
		return
	}
	Put(d.Data)
	d.Data = nil
}
