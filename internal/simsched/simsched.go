// Package simsched executes task graphs in virtual time on a modeled
// multicore machine.
//
// It implements the same greedy list-scheduling policy as the real runner in
// package sched — whenever a core is free, it takes the highest-priority
// ready task — but instead of running the task's closure it advances a
// virtual clock by the task's modeled duration. Because the task graphs fed
// to it are built by the very same builders the real algorithms use
// (core.BuildCALUGraph, tiled.BuildGETRFGraph, ...), the simulated makespan
// preserves the structural properties the paper measures: panel critical
// paths, synchronization counts, idle bubbles, and look-ahead overlap. This
// is how the paper-scale experiments (10^5..10^6-row matrices on 8 and 16
// core machines) are reproduced deterministically on a small host.
package simsched

import (
	"container/heap"

	"repro/internal/machine"
	"repro/internal/sched"
)

// Event records one simulated task execution.
type Event struct {
	TaskID int
	Core   int
	Start  float64 // virtual seconds
	End    float64
}

// Result summarizes a simulated run.
type Result struct {
	// Makespan is the virtual completion time of the whole graph (seconds).
	Makespan float64
	// Busy is the per-core busy time.
	Busy []float64
	// TotalFlops is the sum of task flop counts.
	TotalFlops float64
	// Events traces every task (task, core, virtual start/end), in
	// completion order.
	Events []Event
}

// GFlops returns the achieved rate for the given canonical operation count
// (which may differ from TotalFlops when the algorithm does redundant work,
// as CALU/CAQR do: the paper reports GFlop/s against canonical counts).
func (r *Result) GFlops(canonicalFlops float64) float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return canonicalFlops / r.Makespan / 1e9
}

// Utilization returns mean core busy fraction.
func (r *Result) Utilization() float64 {
	if r.Makespan <= 0 || len(r.Busy) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.Busy {
		sum += b
	}
	return sum / (r.Makespan * float64(len(r.Busy)))
}

// readyHeap mirrors the real runner's policy: max priority, then min ID.
type readyHeap []*sched.Task

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*sched.Task)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// completion is a running task's finish event.
type completion struct {
	end  float64
	task *sched.Task
	core int
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	return h[i].task.ID < h[j].task.ID
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Run simulates the execution of g on the modeled machine and returns the
// virtual-time result. The graph must be valid (acyclic, consistent
// dependency counts); Run panics otherwise, as the real runner does.
func Run(g *sched.Graph, m *machine.Model) *Result {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	n := g.Len()
	res := &Result{Busy: make([]float64, m.Cores)}
	if n == 0 {
		return res
	}

	deps := make([]int, n)
	var ready readyHeap
	for _, t := range g.Tasks() {
		res.TotalFlops += t.Flops
		deps[t.ID] = t.NumDeps()
		if deps[t.ID] == 0 {
			ready = append(ready, t)
		}
	}
	heap.Init(&ready)

	freeCores := make([]int, 0, m.Cores)
	for c := m.Cores - 1; c >= 0; c-- {
		freeCores = append(freeCores, c)
	}
	var running completionHeap
	now := 0.0
	res.Events = make([]Event, 0, n)

	assign := func() {
		for len(freeCores) > 0 && ready.Len() > 0 {
			t := heap.Pop(&ready).(*sched.Task)
			core := freeCores[len(freeCores)-1]
			freeCores = freeCores[:len(freeCores)-1]
			d := m.Duration(t)
			heap.Push(&running, completion{end: now + d, task: t, core: core})
		}
	}
	assign()
	for running.Len() > 0 {
		c := heap.Pop(&running).(completion)
		start := c.end - m.Duration(c.task)
		now = c.end
		res.Busy[c.core] += c.end - start
		res.Events = append(res.Events, Event{TaskID: c.task.ID, Core: c.core, Start: start, End: c.end})
		freeCores = append(freeCores, c.core)
		for _, s := range c.task.Succs() {
			deps[s]--
			if deps[s] == 0 {
				heap.Push(&ready, g.Task(s))
			}
		}
		assign()
	}
	res.Makespan = now
	return res
}
