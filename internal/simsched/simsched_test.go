package simsched

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
)

// testModel returns a trivial machine: 1 flop/s for every class, no
// overhead, so durations equal flop counts.
func testModel(cores int) *machine.Model {
	return &machine.Model{
		Name: "unit", Cores: cores,
		RateBLAS3: 1, RateRecursive: 1, RateBLAS2: 1, RateSmall: 1,
		MemPorts: 1, TaskOverhead: 0, GranularityFlops: 0,
	}
}

func unitTask(g *sched.Graph, flops float64) *sched.Task {
	return g.Add(&sched.Task{Flops: flops, Class: sched.ClassBLAS2})
}

func TestRunChainIsSequential(t *testing.T) {
	g := sched.NewGraph()
	var prev *sched.Task
	for i := 0; i < 5; i++ {
		cur := unitTask(g, 2)
		if prev != nil {
			g.AddDep(prev, cur)
		}
		prev = cur
	}
	res := Run(g, testModel(4))
	if res.Makespan != 10 {
		t.Fatalf("makespan = %v want 10", res.Makespan)
	}
	if res.TotalFlops != 10 {
		t.Fatalf("total flops = %v", res.TotalFlops)
	}
}

func TestRunIndependentTasksParallel(t *testing.T) {
	g := sched.NewGraph()
	for i := 0; i < 8; i++ {
		unitTask(g, 3)
	}
	if res := Run(g, testModel(4)); res.Makespan != 6 {
		t.Fatalf("8 tasks on 4 cores: makespan %v want 6", res.Makespan)
	}
	if res := Run(g, testModel(8)); res.Makespan != 3 {
		t.Fatalf("8 tasks on 8 cores: makespan %v want 3", res.Makespan)
	}
	if res := Run(g, testModel(1)); res.Makespan != 24 {
		t.Fatalf("8 tasks on 1 core: makespan %v want 24", res.Makespan)
	}
}

func TestRunRespectsPriorities(t *testing.T) {
	// One core; the high-priority task must be first in the event order.
	g := sched.NewGraph()
	lo := g.Add(&sched.Task{Flops: 1, Class: sched.ClassBLAS2, Priority: 1})
	hi := g.Add(&sched.Task{Flops: 1, Class: sched.ClassBLAS2, Priority: 9})
	res := Run(g, testModel(1))
	if res.Events[0].TaskID != hi.ID || res.Events[1].TaskID != lo.ID {
		t.Fatalf("priority order violated: %+v", res.Events)
	}
}

func TestRunDiamondDependency(t *testing.T) {
	// a(1) -> b(5), c(1) -> d(1): span = 1+5+1 = 7 on 2 cores.
	g := sched.NewGraph()
	a := unitTask(g, 1)
	b := unitTask(g, 5)
	c := unitTask(g, 1)
	d := unitTask(g, 1)
	g.AddDep(a, b)
	g.AddDep(a, c)
	g.AddDep(b, d)
	g.AddDep(c, d)
	res := Run(g, testModel(2))
	if res.Makespan != 7 {
		t.Fatalf("makespan = %v want 7", res.Makespan)
	}
}

func TestRunBusyAccounting(t *testing.T) {
	g := sched.NewGraph()
	for i := 0; i < 6; i++ {
		unitTask(g, 4)
	}
	res := Run(g, testModel(3))
	sum := 0.0
	for _, b := range res.Busy {
		sum += b
	}
	if sum != 24 {
		t.Fatalf("busy sum = %v want 24", sum)
	}
	if u := res.Utilization(); math.Abs(u-1) > 1e-12 {
		t.Fatalf("utilization = %v want 1", u)
	}
}

func TestRunEventsConsistent(t *testing.T) {
	g := sched.NewGraph()
	tasks := make([]*sched.Task, 20)
	for i := range tasks {
		tasks[i] = unitTask(g, float64(i%3+1))
	}
	for i := 5; i < 20; i++ {
		g.AddDep(tasks[i-5], tasks[i])
	}
	res := Run(g, testModel(3))
	if len(res.Events) != 20 {
		t.Fatalf("%d events", len(res.Events))
	}
	// No two events on the same core may overlap.
	for i, e1 := range res.Events {
		for _, e2 := range res.Events[i+1:] {
			if e1.Core == e2.Core && e1.Start < e2.End && e2.Start < e1.End {
				t.Fatalf("core %d overlap: %+v %+v", e1.Core, e1, e2)
			}
		}
	}
	// Dependencies respected in virtual time.
	end := make(map[int]float64)
	for _, e := range res.Events {
		end[e.TaskID] = e.End
	}
	start := make(map[int]float64)
	for _, e := range res.Events {
		start[e.TaskID] = e.Start
	}
	for i := 5; i < 20; i++ {
		if start[tasks[i].ID] < end[tasks[i-5].ID]-1e-12 {
			t.Fatalf("task %d started before dep finished", i)
		}
	}
}

func TestRunEmptyGraph(t *testing.T) {
	res := Run(sched.NewGraph(), testModel(2))
	if res.Makespan != 0 || len(res.Events) != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
}

func TestGFlops(t *testing.T) {
	r := &Result{Makespan: 2}
	if g := r.GFlops(4e9); g != 2 {
		t.Fatalf("GFlops = %v", g)
	}
	zero := &Result{}
	if zero.GFlops(1) != 0 {
		t.Fatal("zero makespan must give 0")
	}
}

func TestMachineDurationClasses(t *testing.T) {
	m := machine.Intel8()
	// BLAS3 must be much faster than BLAS2 for the same flops.
	big := 1e9
	d3 := m.Duration(&sched.Task{Flops: big, Class: sched.ClassBLAS3})
	d2 := m.Duration(&sched.Task{Flops: big, Class: sched.ClassBLAS2})
	dr := m.Duration(&sched.Task{Flops: big, Class: sched.ClassRecursive})
	if !(d3 < dr && dr < d2) {
		t.Fatalf("expected BLAS3 < recursive < BLAS2, got %v %v %v", d3, dr, d2)
	}
	// Granularity: a tiny BLAS3 task runs at well under the asymptotic rate.
	small := 1e5
	dSmall := m.Duration(&sched.Task{Flops: small, Class: sched.ClassBLAS3})
	effRate := small / (dSmall - m.TaskOverhead)
	if effRate > m.RateBLAS3/5 {
		t.Fatalf("small-task rate %v not penalized (asymptotic %v)", effRate, m.RateBLAS3)
	}
}

func TestMachineWithCores(t *testing.T) {
	m := machine.Intel8().WithCores(4)
	if m.Cores != 4 {
		t.Fatalf("cores = %d", m.Cores)
	}
	if machine.Intel8().Cores != 8 {
		t.Fatal("WithCores mutated the base model")
	}
}

func TestMachineBLAS2ParallelRateCapped(t *testing.T) {
	m := machine.Intel8()
	r1 := m.BLAS2ParallelRate(1)
	r8 := m.BLAS2ParallelRate(8)
	if r8 > float64(m.MemPorts)*r1+1e-9 {
		t.Fatalf("BLAS2 rate not capped: %v vs %v", r8, r1)
	}
}
