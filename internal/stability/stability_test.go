package stability

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tiled"
	"repro/internal/tslu"
)

func TestGEPPReference(t *testing.T) {
	a := matrix.Random(100, 100, 1)
	r := MeasureGEPP(a)
	if r.Residual > 1e-13 {
		t.Fatalf("GEPP residual %g", r.Residual)
	}
	if r.Growth < 1 || r.Growth > 1000 {
		t.Fatalf("GEPP growth %g out of expected range", r.Growth)
	}
}

// TestCALUAsStableAsGEPP is the paper's Section II claim: on a spread of
// matrix classes, CALU's growth factor and residual stay within a small
// multiple of partial pivoting's.
func TestCALUAsStableAsGEPP(t *testing.T) {
	cases := map[string]*matrix.Dense{
		"random":     matrix.Random(128, 128, 2),
		"normal":     matrix.RandomNormal(128, 128, 3),
		"graded":     matrix.Graded(128, 128, 1.2, 4),
		"orthoish":   matrix.Orthogonalish(128, 128, 5),
		"dominant":   matrix.DiagonallyDominant(128, 6),
		"nearlySing": matrix.NearSingular(128, 128, 1e-4, 7),
	}
	opt := core.Options{BlockSize: 16, PanelThreads: 4, Workers: 4, Lookahead: true}
	for name, a := range cases {
		ref := MeasureGEPP(a)
		got, err := MeasureCALU(a, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Residual > 1e-12 {
			t.Errorf("%s: CALU residual %g", name, got.Residual)
		}
		// Tournament pivoting growth is bounded by 2^(b*height) in theory
		// but stays close to GEPP in practice; allow an order of magnitude.
		if got.Growth > 20*ref.Growth+10 {
			t.Errorf("%s: CALU growth %g vs GEPP %g", name, got.Growth, ref.Growth)
		}
	}
}

func TestTSLUStability(t *testing.T) {
	a := matrix.Random(512, 32, 8)
	for _, tree := range []tslu.Tree{tslu.Binary, tslu.Flat} {
		for _, tr := range []int{2, 4, 8} {
			r, err := MeasureTSLU(a, tr, tree)
			if err != nil {
				t.Fatal(err)
			}
			if r.Residual > 1e-13 {
				t.Errorf("tr=%d %v: residual %g", tr, tree, r.Residual)
			}
			if r.Growth > 100 {
				t.Errorf("tr=%d %v: growth %g", tr, tree, r.Growth)
			}
		}
	}
}

func TestSolveErrorCALUAndTiled(t *testing.T) {
	a := matrix.DiagonallyDominant(96, 9)
	caluErr := SolveError(a, 10, func(rhs *matrix.Dense) error {
		lu := a.Clone()
		res, err := core.CALU(lu, core.Options{BlockSize: 16, PanelThreads: 4, Workers: 2, Lookahead: true})
		if err != nil {
			return err
		}
		res.Solve(rhs)
		return nil
	})
	tiledErr := SolveError(a, 10, func(rhs *matrix.Dense) error {
		lu, err := tiled.GETRF(a.Clone(), tiled.Options{TileSize: 16, Workers: 2})
		if err != nil {
			return err
		}
		lu.Solve(rhs)
		return nil
	})
	if caluErr > 1e-10 {
		t.Fatalf("CALU solve error %g", caluErr)
	}
	if tiledErr > 1e-10 {
		t.Fatalf("tiled solve error %g", tiledErr)
	}
}

// TestIncrementalPivotingWorseGrowth demonstrates why ca-pivoting matters:
// on adversarial graded matrices incremental pivoting (tiled LU) admits
// larger growth than CALU, which tracks GEPP.
func TestIncrementalPivotingGrowthComparison(t *testing.T) {
	a := matrix.Graded(96, 96, 1.35, 11)
	ref := MeasureGEPP(a)
	calu, err := MeasureCALU(a, core.Options{BlockSize: 16, PanelThreads: 4, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := tiled.GETRF(a.Clone(), tiled.Options{TileSize: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Tiled LU has no global P, so growth comes straight from its in-place
	// U against the original — the shared helper, not a hand-rolled loop.
	tiledGrowth := Growth(lu.A, a)
	t.Logf("growth: GEPP %.3g  CALU %.3g  tiled %.3g", ref.Growth, calu.Growth, tiledGrowth)
	if calu.Growth > 50*ref.Growth+10 {
		t.Errorf("CALU growth %g far from GEPP %g", calu.Growth, ref.Growth)
	}
	// No hard assertion that tiled is worse (it depends on the matrix),
	// but it must at least be finite/sane.
	if math.IsNaN(tiledGrowth) || tiledGrowth > 1e8 {
		t.Errorf("tiled growth %g unreasonable", tiledGrowth)
	}
}

// TestGrowthExceeded pins the helper's contract: it agrees with the
// measured growth factor, and a threshold <= 0 disables the check (the
// same convention as core.Options.GrowthThreshold).
func TestGrowthExceeded(t *testing.T) {
	a := matrix.Random(64, 64, 13)
	lu := a.Clone()
	ipiv := make([]int, 64)
	if err := lapack.GETF2(lu, ipiv); err != nil {
		t.Fatal(err)
	}
	g := Growth(lu, a)
	if g < 1 {
		t.Fatalf("GEPP growth %g < 1", g)
	}
	if !GrowthExceeded(lu, a, g/2) {
		t.Errorf("threshold %g below growth %g not exceeded", g/2, g)
	}
	if GrowthExceeded(lu, a, 2*g) {
		t.Errorf("threshold %g above growth %g exceeded", 2*g, g)
	}
	for _, off := range []float64{0, -1} {
		if GrowthExceeded(lu, a, off) {
			t.Errorf("threshold %g should disable the check", off)
		}
	}
}

func TestMeasureQRSanity(t *testing.T) {
	a := matrix.Random(80, 20, 12)
	res, err := core.CAQR(a.Clone(), core.Options{BlockSize: 5, PanelThreads: 4, Workers: 2, Lookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := MeasureQR(a, res.ExplicitQ(), res.R())
	if rep.Residual > 1e-13*80 {
		t.Fatalf("residual %g", rep.Residual)
	}
	if rep.Orthogonality > 1e-13*80 {
		t.Fatalf("orthogonality %g", rep.Orthogonality)
	}
}
