// Package stability measures the numerical quality of the factorizations:
// element growth and normwise backward error for LU variants, residual and
// loss of orthogonality for QR variants. It backs the paper's Section II
// claim (via Grigori, Demmel and Xiang) that CALU's ca-pivoting is as
// stable as Gaussian elimination with partial pivoting in practice, and
// lets the repository contrast both with the incremental pivoting used by
// the tiled (PLASMA-style) LU.
package stability

import (
	"math"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/tslu"
)

// LUReport holds the stability metrics of one LU factorization.
type LUReport struct {
	// Growth is the element growth factor max|U| / max|A|.
	Growth float64
	// Residual is ||P*A - L*U||_F / ||A||_F (or ||A - L~U~|| for
	// factorizations without a global permutation).
	Residual float64
	// SolveError is ||x - x*||_inf / ||x*||_inf for a solve against a known
	// solution, when measured (zero otherwise).
	SolveError float64
}

// MeasureGEPP factors a copy of a with partial pivoting (the reference
// algorithm) and reports its stability metrics.
func MeasureGEPP(a *matrix.Dense) LUReport {
	lu := a.Clone()
	ipiv := make([]int, min(a.Rows, a.Cols))
	_ = lapack.GETF2(lu, ipiv)
	pa := a.Clone()
	lapack.LASWP(pa, ipiv, 0, len(ipiv))
	return luMetrics(lu, pa, a)
}

// MeasureCALU factors a copy of a with CALU (tournament pivoting) and
// reports its stability metrics.
func MeasureCALU(a *matrix.Dense, opt core.Options) (LUReport, error) {
	lu := a.Clone()
	res, err := core.CALU(lu, opt)
	if err != nil {
		return LUReport{}, err
	}
	pa := a.Clone()
	res.ApplyPerm(pa)
	return luMetrics(lu, pa, a), nil
}

// MeasureTSLU factors a copy of the panel with standalone TSLU.
func MeasureTSLU(a *matrix.Dense, tr int, tree tslu.Tree) (LUReport, error) {
	lu := a.Clone()
	sw, err := tslu.Factor(lu, tr, tree)
	if err != nil {
		return LUReport{}, err
	}
	pa := a.Clone()
	tslu.ApplyPivots(pa, sw, 0)
	return luMetrics(lu, pa, a), nil
}

// luMetrics computes growth and residual from an in-place factor, the
// permuted original, and the original.
func luMetrics(lu, pa, orig *matrix.Dense) LUReport {
	l, u := lapack.ExtractLU(lu)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	diff := 0.0
	for j := 0; j < pa.Cols; j++ {
		x, y := pa.Col(j), prod.Col(j)
		for i := range x {
			d := x[i] - y[i]
			diff += d * d
		}
	}
	return LUReport{
		Growth:   lapack.GrowthFactor(lu, orig),
		Residual: math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300),
	}
}

// Growth returns the element growth factor max|U| / max|A| of an in-place
// LU factor against the original matrix. It is lapack.GrowthFactor under a
// stability-centric name, shared by the post-hoc measurements here and by
// tests that previously open-coded the upper-triangle max.
func Growth(lu, orig *matrix.Dense) float64 {
	return lapack.GrowthFactor(lu, orig)
}

// GrowthExceeded reports whether the factorization's element growth
// max|U| / max|A| exceeds threshold. A threshold <= 0 means "no limit" and
// always reports false — the same convention core.Options.GrowthThreshold
// uses to disable CALU's runtime guardrail, so post-hoc checks and the
// online monitor agree on what a given threshold means.
func GrowthExceeded(lu, orig *matrix.Dense, threshold float64) bool {
	if threshold <= 0 {
		return false
	}
	return Growth(lu, orig) > threshold
}

// SolveError factors a (square) with the given factor-and-solve closure and
// returns the relative infinity-norm error against a known random solution.
func SolveError(a *matrix.Dense, seed int64, solve func(rhs *matrix.Dense) error) float64 {
	n := a.Rows
	xWant := matrix.Random(n, 1, seed)
	rhs := blas.Mul(blas.NoTrans, blas.NoTrans, a, xWant)
	if err := solve(rhs); err != nil {
		return math.Inf(1)
	}
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		num = math.Max(num, math.Abs(rhs.At(i, 0)-xWant.At(i, 0)))
		den = math.Max(den, math.Abs(xWant.At(i, 0)))
	}
	return num / (den + 1e-300)
}

// QRReport holds the stability metrics of one QR factorization.
type QRReport struct {
	// Residual is ||A - Q*R||_F / ||A||_F.
	Residual float64
	// Orthogonality is ||Q^T Q - I||_max.
	Orthogonality float64
}

// MeasureQR evaluates any QR factorization given its explicit thin Q and R.
func MeasureQR(orig, q, r *matrix.Dense) QRReport {
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, q, r)
	diff := 0.0
	for j := 0; j < orig.Cols; j++ {
		x, y := orig.Col(j), prod.Col(j)
		for i := range x {
			d := x[i] - y[i]
			diff += d * d
		}
	}
	qtq := blas.Mul(blas.Trans, blas.NoTrans, q, q)
	for i := 0; i < qtq.Rows; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	return QRReport{
		Residual:      math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300),
		Orthogonality: qtq.MaxAbs(),
	}
}
