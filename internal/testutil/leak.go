// Package testutil holds small helpers shared by the packages' test
// suites. It must stay stdlib-only.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// LeakCheckMain wraps testing.M.Run with a goroutine-leak guard for
// packages that spawn worker goroutines (internal/sched, factor): it
// snapshots the goroutine count before the tests, runs them, then gives
// finished pools a bounded settle window to join their workers. If the
// count never returns to the baseline, the full stack dump is written to
// stderr and a non-zero exit code is returned, failing the package.
//
// Use it from a TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.LeakCheckMain(m)) }
//
// The settle loop (rather than a single check) absorbs the benign lag
// between a pool's Close returning and the runtime unwinding its workers;
// a real leak — a pool never closed, a watcher goroutine waiting on a
// context that never fires — survives the full window and is reported.
func LeakCheckMain(m *testing.M) int {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code != 0 {
		return code
	}
	const (
		settle = 5 * time.Second
		step   = 20 * time.Millisecond
	)
	deadline := time.Now().Add(settle)
	for {
		if runtime.NumGoroutine() <= before {
			return code
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(step)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(os.Stderr, "testutil: goroutine leak: %d goroutines before tests, %d after settle window\n%s\n",
		before, runtime.NumGoroutine(), buf[:n])
	return 1
}
