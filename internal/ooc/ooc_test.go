package ooc

import "testing"

func TestCacheHitsAndEviction(t *testing.T) {
	c := NewCache(100)
	c.Touch(1, 60)
	if c.Moved != 60 || c.Hits != 0 {
		t.Fatalf("first touch: moved %d hits %d", c.Moved, c.Hits)
	}
	c.Touch(1, 60) // resident
	if c.Hits != 1 || c.Moved != 60 {
		t.Fatalf("re-touch: moved %d hits %d", c.Moved, c.Hits)
	}
	c.Touch(2, 60) // evicts 1
	if c.Moved != 120 {
		t.Fatalf("after eviction: moved %d", c.Moved)
	}
	c.Touch(1, 60) // 1 was evicted: miss again
	if c.Moved != 180 {
		t.Fatalf("re-load: moved %d", c.Moved)
	}
	if c.Resident() != 60 {
		t.Fatalf("resident %d", c.Resident())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(100)
	c.Touch(1, 40)
	c.Touch(2, 40)
	c.Touch(1, 40) // refresh 1: 2 becomes LRU
	c.Touch(3, 40) // evicts 2
	c.Touch(1, 40)
	if c.Hits != 2 { // the refresh and the last touch of 1
		t.Fatalf("hits %d", c.Hits)
	}
	c.Touch(2, 40) // must be a miss
	if c.Moved != 40*4 {
		t.Fatalf("moved %d", c.Moved)
	}
}

func TestOversizedBlockStreams(t *testing.T) {
	c := NewCache(10)
	c.Touch(1, 100)
	c.Touch(1, 100)
	if c.Moved != 200 || c.Hits != 0 {
		t.Fatalf("oversized: moved %d hits %d", c.Moved, c.Hits)
	}
	if c.Resident() != 0 {
		t.Fatal("oversized block should not be resident")
	}
}

// TestSequentialOptimalityGap is the paper's Section II sequential claim in
// numbers: on a panel that exceeds fast memory, flat-tree TSLU moves ~m*b
// words (one streaming pass) while column-wise GEPP moves ~b*m*b.
func TestSequentialOptimalityGap(t *testing.T) {
	m, b, rows := 100000, 100, 12500 // 8 blocks of 12500x100
	panelWords := int64(m) * int64(b)
	cacheWords := panelWords / 10 // fast memory holds 10% of the panel

	tslu := NewCache(cacheWords)
	PanelTraceTSLU(tslu, m, b, rows)
	// One compulsory pass plus the candidate stacks.
	if tslu.Moved > panelWords+int64(8*b*b) {
		t.Fatalf("TSLU moved %d words, want about %d", tslu.Moved, panelWords)
	}

	gepp := NewCache(cacheWords)
	PanelTraceGEPP(gepp, m, b, rows)
	// b passes over an uncacheable panel.
	if gepp.Moved < int64(b)*panelWords*9/10 {
		t.Fatalf("GEPP moved %d words, want about %d", gepp.Moved, int64(b)*panelWords)
	}

	ratio := float64(gepp.Moved) / float64(tslu.Moved)
	if ratio < float64(b)/2 {
		t.Fatalf("sequential I/O gap only %.1fx, want ~b = %d", ratio, b)
	}
	t.Logf("words moved: TSLU %d vs GEPP %d (%.0fx)", tslu.Moved, gepp.Moved, ratio)
}

// TestBlockedGEPPBetweenExtremes: a blocked panel (inner width nb) moves
// ~(b/nb) passes — between TSLU's 1 and unblocked GEPP's b.
func TestBlockedGEPPBetweenExtremes(t *testing.T) {
	m, b, rows, nb := 100000, 100, 12500, 25
	cacheWords := int64(m) * int64(b) / 10

	blocked := NewCache(cacheWords)
	PanelTraceBlockedGEPP(blocked, m, b, rows, nb)
	wantPasses := int64(b / nb)
	panelWords := int64(m) * int64(b)
	if blocked.Moved < wantPasses*panelWords*9/10 || blocked.Moved > wantPasses*panelWords*11/10 {
		t.Fatalf("blocked GEPP moved %d, want ~%d", blocked.Moved, wantPasses*panelWords)
	}
}

// TestCacheResidentPanelIsFree: when the panel fits in fast memory, even
// column-wise GEPP pays only the compulsory pass — the regime where the
// classic algorithm is fine, matching the paper's square-matrix results.
func TestCacheResidentPanelIsFree(t *testing.T) {
	m, b, rows := 4000, 100, 500
	panelWords := int64(m) * int64(b)
	c := NewCache(2 * panelWords)
	PanelTraceGEPP(c, m, b, rows)
	if c.Moved != panelWords {
		t.Fatalf("resident panel moved %d, want compulsory %d", c.Moved, panelWords)
	}
}
