// Package ooc models the sequential (out-of-core / memory-hierarchy) side
// of the paper's Section II claim: "with a flat reduction tree, the
// algorithms are optimal in the amount of communication they perform in
// sequential, that is the amount of data transferred between different
// levels of memory."
//
// It provides an LRU cache simulator that counts words moved between a
// fast memory of W words and slow memory, and block-access trace generators
// for the panel factorization algorithms:
//
//   - Flat-tree TSLU streams each panel block exactly once (leaf GEPP),
//     then touches only the b x b candidate sets: ~m*b compulsory words.
//   - Classic column-by-column GEPP re-scans the entire panel once per
//     column: ~b * m*b words when the panel exceeds fast memory.
//
// The tests assert both counts, quantifying the sequential optimality gap.
package ooc

import "fmt"

// Cache simulates a fully associative LRU cache over data blocks. Counts
// are in words (float64 elements).
type Cache struct {
	capacity int64
	used     int64
	// LRU bookkeeping: blocks keyed by id, with a monotonically increasing
	// clock for recency.
	blocks map[int]*cacheBlock
	clock  int64
	// Moved is the total words transferred from slow to fast memory
	// (misses, weighted by block size); Accesses counts Touch calls and
	// Hits the ones fully served from fast memory.
	Moved    int64
	Accesses int64
	Hits     int64
}

type cacheBlock struct {
	words int64
	last  int64
}

// NewCache creates a cache holding capacity words.
func NewCache(capacity int64) *Cache {
	if capacity < 1 {
		panic(fmt.Sprintf("ooc: cache capacity %d", capacity))
	}
	return &Cache{capacity: capacity, blocks: map[int]*cacheBlock{}}
}

// Touch accesses a block of the given size. If the block is resident it is
// a hit; otherwise its words are charged to Moved and older blocks are
// evicted LRU-first to make room. Blocks larger than the cache stream
// through (charged fully, never resident).
func (c *Cache) Touch(id int, words int64) {
	c.Accesses++
	c.clock++
	if b, ok := c.blocks[id]; ok {
		if b.words >= words {
			b.last = c.clock
			c.Hits++
			return
		}
		// Block grew (shouldn't happen in our traces): treat as miss.
		c.used -= b.words
		delete(c.blocks, id)
	}
	c.Moved += words
	if words > c.capacity {
		return // streams through, never resident
	}
	for c.used+words > c.capacity {
		c.evictLRU()
	}
	c.blocks[id] = &cacheBlock{words: words, last: c.clock}
	c.used += words
}

func (c *Cache) evictLRU() {
	var victim int
	var oldest int64 = 1<<63 - 1
	for id, b := range c.blocks {
		if b.last < oldest {
			oldest = b.last
			victim = id
		}
	}
	c.used -= c.blocks[victim].words
	delete(c.blocks, victim)
}

// Resident returns the words currently held in fast memory.
func (c *Cache) Resident() int64 { return c.used }

// PanelTraceTSLU replays the block-access pattern of a flat-tree TSLU on an
// m x b panel split into blocks of `rows` rows against the cache: each
// block is read once for its leaf GEPP, then the b x b candidate sets are
// stacked and factored (they fit together in fast memory by construction of
// the algorithm: Tr*b*b words).
func PanelTraceTSLU(c *Cache, m, b, rows int) {
	id := 0
	for at := 0; at < m; at += rows {
		h := min(rows, m-at)
		c.Touch(id, int64(h)*int64(b)) // leaf block, read once
		id++
	}
	// The stacked candidates: Tr blocks of b x b.
	for at := 0; at < m; at += rows {
		c.Touch(1<<20+at/rows, int64(b)*int64(b))
	}
}

// PanelTraceGEPP replays classic column-by-column partial pivoting: every
// column step scans the whole panel (pivot search + rank-1 update), so each
// block is touched b times.
func PanelTraceGEPP(c *Cache, m, b, rows int) {
	for col := 0; col < b; col++ {
		id := 0
		for at := 0; at < m; at += rows {
			h := min(rows, m-at)
			c.Touch(id, int64(h)*int64(b))
			id++
		}
	}
}

// PanelTraceBlockedGEPP replays a blocked right-looking GEPP panel with
// inner block width nb: the panel is scanned once per inner block rather
// than once per column — b/nb passes.
func PanelTraceBlockedGEPP(c *Cache, m, b, rows, nb int) {
	for j := 0; j < b; j += nb {
		id := 0
		for at := 0; at < m; at += rows {
			h := min(rows, m-at)
			c.Touch(id, int64(h)*int64(b))
			id++
		}
	}
}
