package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sched"
)

func info(label string) sched.TaskInfo {
	return sched.TaskInfo{Label: label, Kind: sched.KindS}
}

// TestSelectionDeterministic pins the core reproducibility property: the
// set of labels a rule hits depends only on (seed, label, rate).
func TestSelectionDeterministic(t *testing.T) {
	labels := []string{"P k=0 leaf=0", "L k=0 i=1", "U k=1 j=2", "S k=1 i=0 j=2", "F k=3"}
	first := make([]bool, len(labels))
	for i, l := range labels {
		first[i] = selected(42, l, 0.5)
	}
	for run := 0; run < 3; run++ {
		for i, l := range labels {
			if selected(42, l, 0.5) != first[i] {
				t.Fatalf("selection of %q changed across runs", l)
			}
		}
	}
	// A different seed must change at least one decision at rate 0.5 over a
	// larger label population.
	diff := false
	for i := 0; i < 64 && !diff; i++ {
		l := labels[i%len(labels)] + string(rune('a'+i))
		diff = selected(42, l, 0.5) != selected(43, l, 0.5)
	}
	if !diff {
		t.Fatal("seed has no effect on selection")
	}
}

// TestSelectionRate sanity-checks the hash-to-rate mapping: at rate r,
// roughly r of a large label population is selected.
func TestSelectionRate(t *testing.T) {
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if selected(7, "task "+string(rune(i%26+'a'))+string(rune(i/26%26+'a'))+string(rune(i/676+'0')), 0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("rate 0.25 selected %.3f of labels", frac)
	}
}

func TestErrorInjection(t *testing.T) {
	in := New(1, Rule{Kind: Error, Rate: 1})
	err := in.Intercept(info("S k=0"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Intercept = %v, want ErrInjected", err)
	}
	if in.Injected(Error) != 1 {
		t.Fatalf("Injected(Error) = %d", in.Injected(Error))
	}
}

func TestPanicInjectionWrapsSentinel(t *testing.T) {
	in := New(1, Rule{Kind: Panic, Rate: 1})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not wrap ErrInjected", p)
		}
	}()
	_ = in.Intercept(info("P k=0"))
}

func TestCountCapAndMatch(t *testing.T) {
	in := New(1, Rule{Kind: Error, Match: "S ", Rate: 1, Count: 2})
	if err := in.Intercept(info("P k=0")); err != nil {
		t.Fatalf("non-matching label hit: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := in.Intercept(info("S k=0")); err == nil {
			t.Fatalf("firing %d did not inject", i)
		}
	}
	if err := in.Intercept(info("S k=0")); err != nil {
		t.Fatalf("count cap not enforced: %v", err)
	}
	if in.Injected(Error) != 2 {
		t.Fatalf("Injected(Error) = %d, want 2", in.Injected(Error))
	}
}

func TestCancelOnceFiresOnce(t *testing.T) {
	in := New(1, Rule{Kind: CancelOnce, Rate: 1})
	fired := 0
	in.OnCancel(func() { fired++ })
	for i := 0; i < 3; i++ {
		if err := in.Intercept(info("U k=0")); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 1 {
		t.Fatalf("cancel fired %d times, want 1", fired)
	}
}

func TestDelayInjection(t *testing.T) {
	in := New(1, Rule{Kind: Delay, Rate: 1, Delay: 20 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := in.Intercept(info("S k=0")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay injection slept only %v", d)
	}
}
