// Package fault is a deterministic, seed-driven fault injector for the
// executor stack's chaos tests. An Injector plugs into sched.Pool's
// per-task Interceptor hook and perturbs task execution according to a set
// of Rules: panic the task, delay it, fail it with a spurious error, or
// fire a one-shot cancellation callback.
//
// Target selection is deterministic: whether a rule hits a task depends
// only on the injector's seed and the task's label (a 64-bit FNV-1a hash
// mapped to [0, 1) and compared against the rule's Rate), never on
// wall-clock interleaving. Re-running a chaos test with the same seed,
// rules and graph therefore injects faults into exactly the same tasks —
// what differs between runs is only the schedule around them. Rules with a
// Count cap are the one exception: once the cap is spent, later matching
// tasks pass through, and which concurrent task spends the last slot is a
// race (by design — a one-shot fault models a transient event, not a
// property of a task).
//
// Production builds never import this package; the only cost they pay for
// the hook's existence is sched.Pool's single nil-check per task.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// ErrInjected marks every failure manufactured by an Injector — both
// spurious task errors and injected panics wrap it, and the wrapping
// survives sched's panic-to-error recovery, so chaos tests can
// errors.Is(err, fault.ErrInjected) on whatever surfaces from
// Submission.Wait or factor.Engine.
var ErrInjected = errors.New("fault: injected failure")

// Kind enumerates the fault types an Injector can produce.
type Kind int

// Fault kinds.
const (
	// Panic makes the selected task panic (with an error wrapping
	// ErrInjected) before its Run executes, exercising the pool's
	// panic-to-error isolation.
	Panic Kind = iota
	// Delay sleeps for Rule.Delay before the task runs, simulating a
	// straggler kernel or a descheduled worker; the task then succeeds.
	Delay
	// Error fails the selected task with a spurious error wrapping
	// ErrInjected, without running it — a transient failure with no
	// numerical cause, the shape retry policies exist for.
	Error
	// CancelOnce invokes the callback registered with OnCancel the first
	// time a selected task is dispatched, then lets the task run. Chaos
	// tests register a context.CancelFunc to model an external
	// cancellation landing mid-factorization.
	CancelOnce
	// Corrupt silently perturbs the selected task's output buffer after
	// its Run completes — a single element gets a bit flipped (Rule.Bit) or
	// a value added (Rule.Perturb). The task itself succeeds; only the data
	// is wrong, which is exactly the silent-corruption failure mode ABFT
	// verification exists to catch. Corrupt rules fire from InterceptPost
	// (sched.PostInterceptor), never from Intercept, and only on tasks that
	// declare an output buffer.
	Corrupt
)

// String names the kind in stats and errors.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case CancelOnce:
		return "cancel-once"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// nKinds is the size of the per-kind counter array.
const nKinds = int(Corrupt) + 1

// Rule selects tasks and the fault applied to them.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind
	// Match restricts the rule to tasks whose label contains this
	// substring ("P k=" targets panel tasks). Empty matches every task.
	Match string
	// Rate in (0, 1] is the fraction of matching tasks hit, selected by
	// the deterministic label hash. 1 hits every matching task.
	Rate float64
	// Count caps the number of firings; 0 means unlimited. CancelOnce
	// fires at most once regardless.
	Count int
	// Delay is the sleep duration for Kind Delay.
	Delay time.Duration
	// Bit is the bit index (0-62) flipped in the targeted float64 for Kind
	// Corrupt when Perturb is zero. The default 0 is remapped to 62 — the
	// top exponent bit — so a default-configured corruption is numerically
	// enormous and unmistakably wrong, never a plausible value. Bit 63
	// (the sign) is excluded: flipping the sign of a zero is invisible.
	Bit int
	// Perturb, when non-zero, is added to the targeted element instead of
	// flipping a bit — it models a small-magnitude silent error near the
	// detection tolerance rather than a catastrophic one.
	Perturb float64
}

// rule is a Rule plus its firing budget.
type rule struct {
	Rule
	remaining atomic.Int64 // <0 when unlimited
}

// Injector injects the configured faults through sched.Pool's Interceptor
// hook. Safe for concurrent use by every pool worker.
type Injector struct {
	seed  int64
	rules []*rule

	mu       sync.Mutex
	onCancel func()

	counts [nKinds]atomic.Int64
}

// New builds an injector with the given seed and rules. The seed
// perturbs target selection: different seeds hit different task subsets
// at the same Rate.
func New(seed int64, rules ...Rule) *Injector {
	in := &Injector{seed: seed}
	for _, r := range rules {
		if r.Rate <= 0 {
			panic(fmt.Sprintf("fault: rule with rate %g", r.Rate))
		}
		rr := &rule{Rule: r}
		limit := int64(r.Count)
		if r.Kind == CancelOnce && (limit == 0 || limit > 1) {
			limit = 1
		}
		if limit == 0 {
			limit = -1 // unlimited
		}
		rr.remaining.Store(limit)
		in.rules = append(in.rules, rr)
	}
	return in
}

// OnCancel registers the callback CancelOnce rules invoke, typically a
// context.CancelFunc for the request under test.
func (in *Injector) OnCancel(fn func()) {
	in.mu.Lock()
	in.onCancel = fn
	in.mu.Unlock()
}

// Injected returns how many faults of the given kind have fired.
func (in *Injector) Injected(k Kind) int64 { return in.counts[k].Load() }

// Intercept is the sched.Interceptor: install it with
// pool.SetInterceptor(inj.Intercept) or factor.EngineConfig.Interceptor.
func (in *Injector) Intercept(info sched.TaskInfo) error {
	for _, r := range in.rules {
		if r.Kind == Corrupt {
			continue // output corruption fires post-run, from InterceptPost
		}
		if r.Match != "" && !strings.Contains(info.Label, r.Match) {
			continue
		}
		if !selected(in.seed, info.Label, r.Rate) {
			continue
		}
		if !r.spend() {
			continue
		}
		in.counts[r.Kind].Add(1)
		switch r.Kind {
		case Panic:
			panic(fmt.Errorf("%w: injected panic in task %q", ErrInjected, info.Label))
		case Delay:
			time.Sleep(r.Delay)
		case Error:
			return fmt.Errorf("%w: injected error in task %q", ErrInjected, info.Label)
		case CancelOnce:
			in.mu.Lock()
			fn := in.onCancel
			in.mu.Unlock()
			if fn != nil {
				fn()
			}
		}
	}
	return nil
}

// InterceptPost is the sched.PostInterceptor: install it with
// pool.SetPostInterceptor(inj.InterceptPost) or
// factor.EngineConfig.PostInterceptor. It applies the injector's Corrupt
// rules to the finished task's output buffer. The corrupted element index
// is derived from the same (seed, label) hash as target selection, so a
// given seed corrupts the same element of the same tasks on every run.
func (in *Injector) InterceptPost(info sched.TaskInfo) {
	for _, r := range in.rules {
		if r.Kind != Corrupt {
			continue
		}
		if r.Match != "" && !strings.Contains(info.Label, r.Match) {
			continue
		}
		if !selected(in.seed, info.Label, r.Rate) {
			continue
		}
		buf := info.Output()
		if len(buf) == 0 {
			continue
		}
		if !r.spend() {
			continue
		}
		in.counts[Corrupt].Add(1)
		idx := int(labelHash(in.seed, info.Label) % uint64(len(buf)))
		if r.Perturb != 0 {
			buf[idx] += r.Perturb
		} else {
			bit := uint(r.Bit)
			if bit == 0 || bit > 62 {
				bit = 62
			}
			buf[idx] = math.Float64frombits(math.Float64bits(buf[idx]) ^ (1 << bit))
		}
	}
}

// spend consumes one firing slot, returning false when the budget is gone.
func (r *rule) spend() bool {
	for {
		cur := r.remaining.Load()
		if cur < 0 {
			return true // unlimited
		}
		if cur == 0 {
			return false
		}
		if r.remaining.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// selected maps (seed, label) to a uniform value in [0, 1) via FNV-1a and
// compares it against rate. Deterministic across runs and platforms.
func selected(seed int64, label string, rate float64) bool {
	if rate >= 1 {
		return true
	}
	// Top 53 bits give a uniform double in [0, 1).
	u := float64(labelHash(seed, label)>>11) / (1 << 53)
	return u < rate
}

// labelHash is the 64-bit FNV-1a hash of the seed bytes followed by the
// label bytes — the deterministic source for both target selection and
// corrupted-element choice.
func labelHash(seed int64, label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	s := uint64(seed)
	for i := 0; i < 8; i++ {
		h ^= (s >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return h
}
