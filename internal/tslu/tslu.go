// Package tslu implements TSLU, the communication-avoiding LU factorization
// of tall-and-skinny panels by tournament pivoting (ca-pivoting), the panel
// kernel of CALU.
//
// Tournament pivoting runs in two steps. A preprocessing reduction selects b
// pivot rows for the whole panel: the panel is split into Tr block rows, each
// block elects b candidate rows with Gaussian elimination with partial
// pivoting (GEPP), and a reduction tree (binary or height-1 "flat") plays
// candidates against each other with further GEPPs until b winners remain.
// The winners are then swapped to the top of the panel and the panel is
// factored without any further pivoting — the winners' composite LU already
// fell out of the final tournament round.
//
// The package exposes both a sequential driver (Factor) and the individual
// reduction steps (Leaf, Merge, MergeMany, BuildSwaps, ApplyPivots) so the
// multithreaded CALU in package core can schedule each tournament node as an
// independent task, exactly as the paper's Algorithm 1 does.
package tslu

import (
	"errors"
	"fmt"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/scratch"
)

// Tree selects the reduction tree shape used by the tournament.
type Tree int

// Reduction tree shapes. Binary is communication-optimal in parallel; Flat
// (a tree of height one, all leaves merged in a single round) trades one
// larger GEPP for fewer synchronization points and is the alternative the
// paper evaluates. Hybrid — flat groups at the leaves followed by a binary
// tree over the group winners — is the shape of Hadri et al. (LAWN 222)
// that the paper's conclusion singles out for comparison.
const (
	Binary Tree = iota
	Flat
	Hybrid
)

// hybridGroup is the flat fan-in at the bottom level of the Hybrid tree.
const hybridGroup = 4

// String names the tree shape.
func (t Tree) String() string {
	switch t {
	case Binary:
		return "binary"
	case Flat:
		return "flat"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Tree(%d)", int(t))
	}
}

// MergeStep is one node of a reduction plan: the candidate sets at indices
// In are merged, and the result is referred to by index Out in later steps.
// Indices 0..nLeaves-1 denote the leaves; each step's Out is the next free
// index (nLeaves + step number).
type MergeStep struct {
	In  []int
	Out int
}

// PlanReduction returns the merge schedule of a tournament over nLeaves
// leaf candidate sets for the given tree shape. The last step's Out (or
// leaf 0, if nLeaves == 1) is the tournament root. Steps whose In sets are
// disjoint are independent and may run concurrently; a step depends only on
// the producers of its In indices.
func PlanReduction(nLeaves int, tree Tree) []MergeStep {
	if nLeaves < 1 {
		panic(fmt.Sprintf("tslu: reduction over %d leaves", nLeaves))
	}
	if nLeaves == 1 {
		return nil
	}
	var steps []MergeStep
	next := nLeaves
	emit := func(in []int) int {
		steps = append(steps, MergeStep{In: in, Out: next})
		next++
		return next - 1
	}
	switch tree {
	case Flat:
		in := make([]int, nLeaves)
		for i := range in {
			in[i] = i
		}
		emit(in)
	case Hybrid:
		// Flat groups of hybridGroup leaves, then binary over the winners.
		var level []int
		for at := 0; at < nLeaves; at += hybridGroup {
			hi := min(nLeaves, at+hybridGroup)
			if hi-at == 1 {
				level = append(level, at)
				continue
			}
			in := make([]int, 0, hi-at)
			for i := at; i < hi; i++ {
				in = append(in, i)
			}
			level = append(level, emit(in))
		}
		steps = append(steps, binarySteps(level, &next)...)
	default: // Binary
		level := make([]int, nLeaves)
		for i := range level {
			level[i] = i
		}
		steps = append(steps, binarySteps(level, &next)...)
	}
	return steps
}

// binarySteps pairs up the given node indices level by level.
func binarySteps(level []int, next *int) []MergeStep {
	var steps []MergeStep
	for len(level) > 1 {
		var up []int
		for i := 0; i < len(level); i += 2 {
			if i+1 >= len(level) {
				up = append(up, level[i])
				continue
			}
			steps = append(steps, MergeStep{In: []int{level[i], level[i+1]}, Out: *next})
			up = append(up, *next)
			*next++
		}
		level = up
	}
	return steps
}

// ErrSingular is returned when the tournament cannot find enough nonzero
// pivots: the panel is rank deficient.
var ErrSingular = errors.New("tslu: panel is rank deficient")

// Candidates is the state flowing through the tournament reduction tree:
// the currently selected pivot rows of one subtree.
//
// Rank deficiency at a leaf or inner node is not an error: a single block
// row may be singular while the panel as a whole is not. Only the tournament
// root's composite factor is checked for zero pivots, by Finalize.
type Candidates struct {
	// Rows holds the original (unfactored) values of the selected rows,
	// k x b, in pivot order.
	Rows *matrix.Dense
	// Idx maps each row of Rows to its global row index in the panel's
	// parent matrix, in the same pivot order.
	Idx []int
	// Fac is the k x b in-place GEPP factor of Rows (L strictly below the
	// diagonal, U on and above). At the tournament root its leading b x b
	// block is the panel's composite L\U factor.
	Fac *matrix.Dense
}

// Leaf elects up to b candidate pivot rows from one block row of the panel.
// block is the mb x b block; rowOffset is the global row index of its first
// row, used to keep Idx global.
func Leaf(block *matrix.Dense, rowOffset int) *Candidates {
	mb, b := block.Rows, block.Cols
	fac := scratch.Dense(mb, b)
	fac.CopyFrom(block)
	k := min(mb, b)
	ipiv := make([]int, k)
	_ = lapack.RGETF2(fac, ipiv) // leaf rank deficiency is handled at the root
	idx := make([]int, mb)
	for i := range idx {
		idx[i] = rowOffset + i
	}
	applyIpivToIndex(idx, ipiv)
	c := buildCandidates(block, fac, ipiv, idx, k)
	scratch.Release(fac)
	return c
}

// Merge plays two candidate sets against each other: their rows are stacked
// (c1 atop c2) and GEPP selects the b winners of the round.
func Merge(c1, c2 *Candidates) *Candidates {
	return MergeMany([]*Candidates{c1, c2})
}

// MergeMany merges any number of candidate sets in one GEPP round; with all
// leaves passed at once it realizes the flat (height-1) reduction tree.
func MergeMany(cs []*Candidates) *Candidates {
	if len(cs) == 0 {
		panic("tslu: MergeMany with no candidates")
	}
	if len(cs) == 1 {
		return cs[0]
	}
	b := cs[0].Rows.Cols
	total := 0
	for _, c := range cs {
		if c.Rows.Cols != b {
			panic(fmt.Sprintf("tslu: merge width mismatch %d vs %d", c.Rows.Cols, b))
		}
		total += c.Rows.Rows
	}
	stacked := scratch.Dense(total, b)
	idx := make([]int, total)
	at := 0
	for _, c := range cs {
		stacked.View(at, 0, c.Rows.Rows, b).CopyFrom(c.Rows)
		copy(idx[at:], c.Idx)
		at += c.Rows.Rows
	}
	fac := scratch.Dense(total, b)
	fac.CopyFrom(stacked)
	k := min(total, b)
	ipiv := make([]int, k)
	_ = lapack.RGETF2(fac, ipiv)
	applyIpivToIndex(idx, ipiv)
	c := buildCandidates(stacked, fac, ipiv, idx, k)
	scratch.Release(fac)
	scratch.Release(stacked)
	return c
}

// buildCandidates assembles the result of one tournament round. input holds
// the round's rows in pre-pivot order, fac the in-place GEPP factor, ipiv
// the interchanges GEPP performed, and idx the global indices already in
// pivot order. The winners' original values are obtained by replaying the
// same interchanges on a copy of input.
// The workspaces are pooled: perm is released here, while input and fac
// belong to the caller (everything retained in the result is Clone()d out).
func buildCandidates(input, fac *matrix.Dense, ipiv, idx []int, k int) *Candidates {
	b := input.Cols
	perm := scratch.Dense(input.Rows, b)
	perm.CopyFrom(input)
	lapack.LASWP(perm, ipiv, 0, len(ipiv))
	c := &Candidates{
		Rows: perm.View(0, 0, k, b).Clone(),
		Idx:  idx[:k:k],
		Fac:  fac.View(0, 0, k, b).Clone(),
	}
	scratch.Release(perm)
	return c
}

// applyIpivToIndex replays LAPACK-style sequential row interchanges on an
// index array.
func applyIpivToIndex(idx []int, ipiv []int) {
	for k, p := range ipiv {
		idx[k], idx[p] = idx[p], idx[k]
	}
}

// Partition splits rows [0, m) into tr contiguous block rows using the
// paper's ceiling formula I1 = (I-1)*ceil(m/Tr), I2 = min(m, I*ceil(m/Tr)).
// Empty trailing blocks (possible when ceil rounds up) are dropped, so the
// returned slice may be shorter than tr. Each element is {start, end}.
func Partition(m, tr int) [][2]int {
	if tr < 1 {
		panic(fmt.Sprintf("tslu: partition into %d blocks", tr))
	}
	if tr > m {
		tr = m
	}
	chunk := (m + tr - 1) / tr
	var blocks [][2]int
	for i1 := 0; i1 < m; i1 += chunk {
		i2 := min(m, i1+chunk)
		blocks = append(blocks, [2]int{i1, i2})
	}
	return blocks
}

// Reduce plays a full tournament over the given leaf candidates with the
// chosen tree shape and returns the root.
func Reduce(leaves []*Candidates, tree Tree) *Candidates {
	if len(leaves) == 0 {
		panic("tslu: Reduce with no leaves")
	}
	steps := PlanReduction(len(leaves), tree)
	nodes := append([]*Candidates(nil), leaves...)
	for _, st := range steps {
		in := make([]*Candidates, len(st.In))
		for i, idx := range st.In {
			in[i] = nodes[idx]
		}
		nodes = append(nodes, MergeMany(in))
	}
	return nodes[len(nodes)-1]
}

// BuildSwaps converts the tournament winners' row indices (relative to the
// same origin as ApplyPivots will use) into a LAPACK-style sequential swap
// list: applying SwapRows(r0+j, sw[j]) for j = 0.. moves winner j into
// position r0+j. The winners must be distinct.
func BuildSwaps(winners []int, r0 int) []int {
	sw := make([]int, len(winners))
	// loc tracks where each displaced original row currently lives; rows
	// not present are still at their home position.
	loc := make(map[int]int, 2*len(winners))
	at := make(map[int]int, 2*len(winners))
	cur := func(orig int) int {
		if p, ok := loc[orig]; ok {
			return p
		}
		return orig
	}
	occupant := func(pos int) int {
		if o, ok := at[pos]; ok {
			return o
		}
		return pos
	}
	for j, w := range winners {
		target := r0 + j
		p := cur(w)
		sw[j] = p
		if p != target {
			other := occupant(target)
			loc[w], at[target] = target, w
			loc[other], at[p] = p, other
		}
	}
	return sw
}

// ApplyPivots applies the swap list from BuildSwaps to a: for j in order,
// rows r0+j and sw[j] are exchanged. Row indices in sw are relative to a's
// row 0.
func ApplyPivots(a *matrix.Dense, sw []int, r0 int) {
	for j, p := range sw {
		if p != r0+j {
			a.SwapRows(r0+j, p)
		}
	}
}

// UndoPivots reverses ApplyPivots with the same arguments.
func UndoPivots(a *matrix.Dense, sw []int, r0 int) {
	for j := len(sw) - 1; j >= 0; j-- {
		if p := sw[j]; p != r0+j {
			a.SwapRows(r0+j, p)
		}
	}
}

// Finalize completes the panel factorization after the tournament: it
// applies the winners' swaps to the panel, writes the root's composite L\U
// into the leading rows, and computes the remaining rows of L by triangular
// solve against U. It returns the swap list (panel-local) and ErrSingular if
// the composite has a zero pivot.
func Finalize(panel *matrix.Dense, root *Candidates) ([]int, error) {
	m, w := panel.Rows, panel.Cols
	k := root.Fac.Rows
	sw := BuildSwaps(root.Idx, 0)
	ApplyPivots(panel, sw, 0)
	// Leading k rows become the composite L\U from the tournament root.
	panel.View(0, 0, k, w).CopyFrom(root.Fac)
	var err error
	for i := 0; i < min(k, w); i++ {
		if root.Fac.At(i, i) == 0 {
			err = ErrSingular
		}
	}
	if k < min(m, w) {
		// Not enough independent rows were found.
		err = ErrSingular
	}
	// L blocks below the composite: L = A * U^{-1}.
	if m > k && err == nil {
		ukk := root.Fac.View(0, 0, k, k)
		rest := panel.View(k, 0, m-k, w)
		blas.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit, 1, ukk, rest)
	}
	return sw, err
}

// Factor performs the complete sequential TSLU factorization of a panel
// (m x w, m >= w): tournament pivoting over tr block rows with the given
// reduction tree, followed by the pivoted panel factorization. On return
// the panel holds L (unit lower, below the diagonal) and U (on and above),
// and the returned swap list reproduces the row permutation via ApplyPivots.
//
// With tr == 1 TSLU degenerates to plain GEPP on the panel, selecting the
// same pivots as partial pivoting — a property the tests rely on.
func Factor(panel *matrix.Dense, tr int, tree Tree) ([]int, error) {
	m, w := panel.Rows, panel.Cols
	if m < w {
		panic(fmt.Sprintf("tslu: panel must be tall, got %dx%d", m, w))
	}
	if w == 0 {
		return nil, nil
	}
	blocks := Partition(m, tr)
	leaves := make([]*Candidates, len(blocks))
	for i, blk := range blocks {
		leaves[i] = Leaf(panel.View(blk[0], 0, blk[1]-blk[0], w), blk[0])
	}
	root := Reduce(leaves, tree)
	return Finalize(panel, root)
}
