package tslu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// checkPlan validates the structural invariants of a reduction plan: every
// leaf feeds exactly one merge path, every step consumes only already-
// produced indices, and the final output is the last index.
func checkPlan(t *testing.T, nLeaves int, tree Tree) {
	t.Helper()
	steps := PlanReduction(nLeaves, tree)
	if nLeaves == 1 {
		if steps != nil {
			t.Fatalf("1 leaf must need no merges, got %v", steps)
		}
		return
	}
	consumed := map[int]bool{}
	produced := map[int]bool{}
	next := nLeaves
	for _, st := range steps {
		if len(st.In) < 2 {
			t.Fatalf("tree=%v leaves=%d: step with %d inputs", tree, nLeaves, len(st.In))
		}
		if st.Out != next {
			t.Fatalf("tree=%v leaves=%d: out %d want %d", tree, nLeaves, st.Out, next)
		}
		next++
		for _, in := range st.In {
			if in >= st.Out {
				t.Fatalf("step consumes not-yet-produced index %d", in)
			}
			if in >= nLeaves && !produced[in] {
				t.Fatalf("step consumes unproduced merge output %d", in)
			}
			if consumed[in] {
				t.Fatalf("index %d consumed twice", in)
			}
			consumed[in] = true
		}
		produced[st.Out] = true
	}
	// Every leaf and every intermediate except the root must be consumed.
	root := next - 1
	for i := 0; i < next-1; i++ {
		if !consumed[i] {
			t.Fatalf("tree=%v leaves=%d: index %d never consumed (root=%d)", tree, nLeaves, i, root)
		}
	}
	if consumed[root] {
		t.Fatalf("root %d consumed", root)
	}
}

func TestPlanReductionStructures(t *testing.T) {
	for _, tree := range []Tree{Binary, Flat, Hybrid} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33} {
			checkPlan(t, n, tree)
		}
	}
}

func TestPlanReductionShapeCounts(t *testing.T) {
	// Flat: exactly one step with all leaves.
	steps := PlanReduction(8, Flat)
	if len(steps) != 1 || len(steps[0].In) != 8 {
		t.Fatalf("flat plan: %v", steps)
	}
	// Binary over 8: 4+2+1 = 7 pairwise steps.
	steps = PlanReduction(8, Binary)
	if len(steps) != 7 {
		t.Fatalf("binary plan has %d steps", len(steps))
	}
	for _, st := range steps {
		if len(st.In) != 2 {
			t.Fatalf("binary step with fan-in %d", len(st.In))
		}
	}
	// Hybrid over 16: 4 flat groups of 4, then 3 binary merges.
	steps = PlanReduction(16, Hybrid)
	if len(steps) != 7 {
		t.Fatalf("hybrid plan has %d steps: %v", len(steps), steps)
	}
	for i := 0; i < 4; i++ {
		if len(steps[i].In) != 4 {
			t.Fatalf("hybrid group %d fan-in %d", i, len(steps[i].In))
		}
	}
	for i := 4; i < 7; i++ {
		if len(steps[i].In) != 2 {
			t.Fatalf("hybrid binary step %d fan-in %d", i, len(steps[i].In))
		}
	}
}

// TestPlanDepth verifies the synchronization-count claims: binary depth is
// log2(Tr), flat is 1, hybrid is 1 + log2(Tr/4).
func TestPlanDepth(t *testing.T) {
	depth := func(nLeaves int, tree Tree) int {
		steps := PlanReduction(nLeaves, tree)
		d := make(map[int]int)
		maxD := 0
		for _, st := range steps {
			lvl := 0
			for _, in := range st.In {
				if d[in] > lvl {
					lvl = d[in]
				}
			}
			d[st.Out] = lvl + 1
			if lvl+1 > maxD {
				maxD = lvl + 1
			}
		}
		return maxD
	}
	if got := depth(16, Binary); got != 4 {
		t.Errorf("binary depth(16) = %d want 4", got)
	}
	if got := depth(16, Flat); got != 1 {
		t.Errorf("flat depth(16) = %d want 1", got)
	}
	if got := depth(16, Hybrid); got != 3 {
		t.Errorf("hybrid depth(16) = %d want 3 (1 flat + 2 binary)", got)
	}
}

func TestFactorHybridTree(t *testing.T) {
	for _, tc := range []struct{ m, w, tr int }{
		{64, 8, 4}, {200, 25, 16}, {100, 10, 7}, {90, 9, 9},
	} {
		orig := matrix.Random(tc.m, tc.w, int64(tc.m+tc.tr))
		if res := factorResidual(t, orig, tc.tr, Hybrid); res > 1e-12*float64(tc.m) {
			t.Errorf("hybrid m=%d w=%d tr=%d residual %g", tc.m, tc.w, tc.tr, res)
		}
	}
}

func TestHybridSelectsGoodPivots(t *testing.T) {
	// The dominant row must always win the tournament, whatever the tree.
	for _, tree := range []Tree{Binary, Flat, Hybrid} {
		panel := matrix.Random(128, 4, 9)
		panel.Set(77, 0, 1e6)
		leaves := []*Candidates{}
		for _, blk := range Partition(128, 8) {
			leaves = append(leaves, Leaf(panel.View(blk[0], 0, blk[1]-blk[0], 4), blk[0]))
		}
		root := Reduce(leaves, tree)
		if root.Idx[0] != 77 {
			t.Errorf("tree=%v: dominant row lost the tournament: %v", tree, root.Idx)
		}
		if math.Abs(root.Rows.At(0, 0)) != 1e6 {
			t.Errorf("tree=%v: winner values wrong", tree)
		}
	}
}

func TestPlanReductionProperty(t *testing.T) {
	f := func(nRaw, treeRaw uint8) bool {
		n := int(nRaw)%30 + 1
		tree := Tree(int(treeRaw) % 3)
		steps := PlanReduction(n, tree)
		// Total fan-in must equal number of consumed indices =
		// (n + len(steps)) - 1 (everything except the root).
		fanIn := 0
		for _, st := range steps {
			fanIn += len(st.In)
		}
		return fanIn == n+len(steps)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
