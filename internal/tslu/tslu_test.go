package tslu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
)

// factorResidual runs Factor and returns ||P*A - L*U||_F / ||A||_F.
func factorResidual(t *testing.T, orig *matrix.Dense, tr int, tree Tree) float64 {
	t.Helper()
	panel := orig.Clone()
	sw, err := Factor(panel, tr, tree)
	if err != nil {
		t.Fatalf("Factor(tr=%d, %v): %v", tr, tree, err)
	}
	l, u := lapack.ExtractLU(panel)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	pa := orig.Clone()
	ApplyPivots(pa, sw, 0)
	diff := 0.0
	for j := 0; j < pa.Cols; j++ {
		a, b := pa.Col(j), prod.Col(j)
		for i := range a {
			d := a[i] - b[i]
			diff += d * d
		}
	}
	return math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300)
}

func TestFactorShapesAndTrees(t *testing.T) {
	for _, tree := range []Tree{Binary, Flat} {
		for _, tc := range []struct{ m, w, tr int }{
			{8, 8, 1}, {8, 8, 2}, {64, 8, 4}, {64, 8, 8},
			{100, 10, 3}, {100, 10, 7}, {33, 5, 4}, {200, 25, 16},
			{5, 5, 10}, // tr > m must degrade gracefully
			{17, 1, 4}, // single column
		} {
			orig := matrix.Random(tc.m, tc.w, int64(tc.m*1000+tc.w*10+tc.tr))
			if res := factorResidual(t, orig, tc.tr, tree); res > 1e-12*float64(tc.m) {
				t.Errorf("tree=%v m=%d w=%d tr=%d residual %g", tree, tc.m, tc.w, tc.tr, res)
			}
		}
	}
}

func TestFactorTr1MatchesGEPP(t *testing.T) {
	// With a single block row, ca-pivoting IS partial pivoting: identical
	// pivots and identical factors.
	orig := matrix.Random(60, 12, 5)
	panel := orig.Clone()
	sw, err := Factor(panel, 1, Binary)
	if err != nil {
		t.Fatal(err)
	}
	ref := orig.Clone()
	ipiv := make([]int, 12)
	if err := lapack.GETF2(ref, ipiv); err != nil {
		t.Fatal(err)
	}
	// Same permutation: apply both to a labeled matrix and compare.
	lab1 := labelMatrix(60)
	ApplyPivots(lab1, sw, 0)
	lab2 := labelMatrix(60)
	lapack.LASWP(lab2, ipiv, 0, 12)
	if !lab1.Equal(lab2) {
		t.Fatal("tr=1 permutation differs from GEPP")
	}
	if !panel.EqualApprox(ref, 1e-11) {
		t.Fatal("tr=1 factor differs from GEPP")
	}
}

func labelMatrix(m int) *matrix.Dense {
	lab := matrix.New(m, 1)
	for i := 0; i < m; i++ {
		lab.Set(i, 0, float64(i))
	}
	return lab
}

func TestPartition(t *testing.T) {
	blocks := Partition(10, 4)
	// ceil(10/4) = 3 -> [0,3) [3,6) [6,9) [9,10)
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v want %v", blocks, want)
		}
	}
	// tr > m clamps to one row per block.
	if got := Partition(3, 8); len(got) != 3 {
		t.Fatalf("clamped blocks = %v", got)
	}
	// Exact division.
	if got := Partition(8, 4); len(got) != 4 || got[3] != [2]int{6, 8} {
		t.Fatalf("even blocks = %v", got)
	}
	// Degenerate rounding: Partition(7,6) -> chunk=2 -> 4 blocks, all non-empty.
	for _, blk := range Partition(7, 6) {
		if blk[0] >= blk[1] {
			t.Fatalf("empty block in %v", Partition(7, 6))
		}
	}
}

func TestBuildSwapsMovesWinnersToTop(t *testing.T) {
	cases := [][]int{
		{5, 2, 8},
		{0, 1, 2},
		{2, 0, 1},
		{9, 8, 7, 6},
		{3, 4, 0, 1}, // winners displace each other
	}
	for _, winners := range cases {
		lab := labelMatrix(10)
		sw := BuildSwaps(winners, 0)
		ApplyPivots(lab, sw, 0)
		for j, w := range winners {
			if int(lab.At(j, 0)) != w {
				t.Fatalf("winners %v: row %d is %v want %d (swaps %v)", winners, j, lab.At(j, 0), w, sw)
			}
		}
		// Permutation must be a bijection: all labels still present.
		seen := map[int]bool{}
		for i := 0; i < 10; i++ {
			seen[int(lab.At(i, 0))] = true
		}
		if len(seen) != 10 {
			t.Fatalf("winners %v: rows lost, %v", winners, lab)
		}
	}
}

func TestBuildSwapsWithOffset(t *testing.T) {
	lab := labelMatrix(12)
	winners := []int{7, 11, 4}
	sw := BuildSwaps(winners, 4)
	ApplyPivots(lab, sw, 4)
	for j, w := range winners {
		if int(lab.At(4+j, 0)) != w {
			t.Fatalf("offset swaps wrong: %v", lab)
		}
	}
}

func TestUndoPivots(t *testing.T) {
	orig := matrix.Random(15, 3, 9)
	a := orig.Clone()
	sw := BuildSwaps([]int{9, 3, 12}, 0)
	ApplyPivots(a, sw, 0)
	UndoPivots(a, sw, 0)
	if !a.Equal(orig) {
		t.Fatal("UndoPivots did not restore")
	}
}

func TestLeafSelectsLocalPivots(t *testing.T) {
	// A block whose largest first-column element is row 3 must elect row 3
	// (global index rowOffset+3) as first winner.
	block := matrix.New(5, 2)
	for i := 0; i < 5; i++ {
		block.Set(i, 0, float64(i))
		block.Set(i, 1, 1)
	}
	block.Set(3, 0, 100)
	c := Leaf(block, 20)
	if c.Idx[0] != 23 {
		t.Fatalf("first winner = %d, want 23 (Idx %v)", c.Idx[0], c.Idx)
	}
	if c.Rows.At(0, 0) != 100 {
		t.Fatalf("winner original value = %v, want 100", c.Rows.At(0, 0))
	}
}

func TestMergePrefersLargerPivots(t *testing.T) {
	// Two leaves; the second has the dominant row. The merge must rank it
	// first.
	a := matrix.New(3, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	a.Set(2, 0, 0.5)
	b := matrix.New(3, 2)
	b.Set(0, 0, 50)
	b.Set(1, 1, 2)
	b.Set(2, 1, 0.1)
	c := Merge(Leaf(a, 0), Leaf(b, 3))
	if c.Idx[0] != 3 {
		t.Fatalf("merge winner = %v, want row 3 first", c.Idx)
	}
}

func TestReduceBinaryOddLeafCount(t *testing.T) {
	// 5 leaves: the binary reduction must handle the odd tail.
	panel := matrix.Random(50, 6, 13)
	blocks := Partition(50, 5)
	leaves := make([]*Candidates, len(blocks))
	for i, blk := range blocks {
		leaves[i] = Leaf(panel.View(blk[0], 0, blk[1]-blk[0], 6), blk[0])
	}
	root := Reduce(leaves, Binary)
	if len(root.Idx) != 6 {
		t.Fatalf("root has %d winners, want 6", len(root.Idx))
	}
	seen := map[int]bool{}
	for _, w := range root.Idx {
		if w < 0 || w >= 50 || seen[w] {
			t.Fatalf("bad winner set %v", root.Idx)
		}
		seen[w] = true
	}
}

func TestFactorSingularPanel(t *testing.T) {
	panel := matrix.New(20, 4) // identically zero
	if _, err := Factor(panel, 4, Binary); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	// Rank-1 panel: also deficient.
	p2 := matrix.New(20, 4)
	for i := 0; i < 20; i++ {
		for j := 0; j < 4; j++ {
			p2.Set(i, j, float64(i+1))
		}
	}
	if _, err := Factor(p2, 4, Binary); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular for rank-1, got %v", err)
	}
}

func TestFactorGrowthWilkinsonTr1(t *testing.T) {
	n := 12
	w := matrix.Wilkinson(n)
	panel := w.Clone()
	if _, err := Factor(panel, 1, Binary); err != nil {
		t.Fatal(err)
	}
	g := lapack.GrowthFactor(panel, w)
	want := math.Pow(2, float64(n-1))
	if math.Abs(g-want)/want > 1e-12 {
		t.Fatalf("growth %v want %v", g, want)
	}
}

func TestFactorGrowthModestOnRandom(t *testing.T) {
	// Tournament pivoting should keep growth small on random matrices
	// (stability claim of the paper via [12]).
	for _, tr := range []int{2, 4, 8} {
		orig := matrix.Random(256, 32, int64(tr))
		panel := orig.Clone()
		if _, err := Factor(panel, tr, Binary); err != nil {
			t.Fatal(err)
		}
		if g := lapack.GrowthFactor(panel, orig); g > 100 {
			t.Errorf("tr=%d growth %v too large", tr, g)
		}
	}
}

func TestFactorDistinctWinnersProperty(t *testing.T) {
	f := func(seed int64, trRaw, treeRaw uint8) bool {
		tr := int(trRaw)%8 + 1
		tree := Tree(int(treeRaw) % 2)
		m := 30 + int(uint64(seed)%40)
		w := 4 + int(uint64(seed)%6)
		orig := matrix.Random(m, w, seed)
		panel := orig.Clone()
		sw, err := Factor(panel, tr, tree)
		if err != nil {
			return false
		}
		if len(sw) != w {
			return false
		}
		// Residual check.
		l, u := lapack.ExtractLU(panel)
		prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
		pa := orig.Clone()
		ApplyPivots(pa, sw, 0)
		return pa.EqualApprox(prod, 1e-10*float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
