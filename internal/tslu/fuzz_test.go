package tslu

import (
	"testing"

	"repro/internal/matrix"
)

// FuzzBuildSwaps checks that for any list of distinct winner rows, the
// generated swap sequence is a valid permutation that places the winners at
// the target positions, and that UndoPivots inverts it.
func FuzzBuildSwaps(f *testing.F) {
	f.Add(uint16(0x1234), uint8(3), uint8(2))
	f.Add(uint16(0xffff), uint8(8), uint8(0))
	f.Add(uint16(1), uint8(1), uint8(5))
	f.Add(uint16(0xbeef), uint8(6), uint8(3))
	f.Fuzz(func(t *testing.T, seedRaw uint16, countRaw, offRaw uint8) {
		const rows = 24
		count := int(countRaw)%8 + 1
		r0 := int(offRaw) % (rows - count)
		// Derive `count` distinct winners in [r0, rows) from the seed.
		winners := make([]int, 0, count)
		used := map[int]bool{}
		s := uint64(seedRaw) + 1
		for len(winners) < count {
			s = s*6364136223846793005 + 1442695040888963407
			w := r0 + int(s%uint64(rows-r0))
			if !used[w] {
				used[w] = true
				winners = append(winners, w)
			}
		}
		lab := matrix.New(rows, 1)
		for i := 0; i < rows; i++ {
			lab.Set(i, 0, float64(i))
		}
		orig := lab.Clone()
		sw := BuildSwaps(winners, r0)
		if len(sw) != count {
			t.Fatalf("swap list length %d want %d", len(sw), count)
		}
		ApplyPivots(lab, sw, r0)
		for j, w := range winners {
			if int(lab.At(r0+j, 0)) != w {
				t.Fatalf("winner %d not at position %d: %v (winners %v, sw %v)",
					w, r0+j, lab, winners, sw)
			}
		}
		// Must remain a permutation.
		seen := map[int]bool{}
		for i := 0; i < rows; i++ {
			seen[int(lab.At(i, 0))] = true
		}
		if len(seen) != rows {
			t.Fatalf("rows lost: %v", lab)
		}
		UndoPivots(lab, sw, r0)
		if !lab.Equal(orig) {
			t.Fatal("UndoPivots did not invert")
		}
	})
}

// FuzzPartition checks the paper's ceiling partition formula for any (m, tr).
func FuzzPartition(f *testing.F) {
	f.Add(10, 4)
	f.Add(1, 1)
	f.Add(100, 7)
	f.Add(7, 100)
	f.Fuzz(func(t *testing.T, m, tr int) {
		if m < 1 || m > 1<<20 || tr < 1 || tr > 1<<16 {
			t.Skip()
		}
		blocks := Partition(m, tr)
		if len(blocks) == 0 {
			t.Fatal("no blocks")
		}
		at := 0
		for _, blk := range blocks {
			if blk[0] != at || blk[1] <= blk[0] {
				t.Fatalf("bad block %v at %d (m=%d tr=%d)", blk, at, m, tr)
			}
			at = blk[1]
		}
		if at != m {
			t.Fatalf("blocks cover %d of %d rows", at, m)
		}
		if len(blocks) > tr {
			t.Fatalf("%d blocks for tr=%d", len(blocks), tr)
		}
	})
}

// FuzzPlanReduction checks plan validity for arbitrary leaf counts/trees.
func FuzzPlanReduction(f *testing.F) {
	f.Add(8, 0)
	f.Add(5, 1)
	f.Add(16, 2)
	f.Fuzz(func(t *testing.T, n, treeRaw int) {
		if n < 1 || n > 4096 {
			t.Skip()
		}
		tree := Tree(((treeRaw % 3) + 3) % 3)
		steps := PlanReduction(n, tree)
		consumed := map[int]bool{}
		next := n
		for _, st := range steps {
			if st.Out != next {
				t.Fatalf("out %d want %d", st.Out, next)
			}
			next++
			for _, in := range st.In {
				if in >= st.Out || consumed[in] {
					t.Fatalf("bad input %d in step to %d", in, st.Out)
				}
				consumed[in] = true
			}
		}
		// Everything except the root is consumed exactly once.
		if len(consumed) != next-1 {
			t.Fatalf("consumed %d of %d nodes", len(consumed), next-1)
		}
	})
}
