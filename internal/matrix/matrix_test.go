package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 5)
	if m.Rows != 3 || m.Cols != 5 || m.Stride != 3 {
		t.Fatalf("got %dx%d stride %d", m.Rows, m.Cols, m.Stride)
	}
	for j := 0; j < 5; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewEmpty(t *testing.T) {
	m := New(0, 0)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("got %dx%d", m.Rows, m.Cols)
	}
	if m.NormFrobenius() != 0 || m.MaxAbs() != 0 || m.NormInf() != 0 || m.NormOne() != 0 {
		t.Fatal("norms of empty matrix should be 0")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestSetAt(t *testing.T) {
	m := New(4, 3)
	m.Set(2, 1, 7.5)
	if got := m.At(2, 1); got != 7.5 {
		t.Fatalf("got %v", got)
	}
	// Column-major layout: element (2,1) is at Data[1*4+2].
	if m.Data[6] != 7.5 {
		t.Fatalf("storage not column-major: %v", m.Data)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("got %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 || m.At(0, 2) != 3 {
		t.Fatalf("wrong contents: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromColMajor(t *testing.T) {
	data := []float64{1, 2, 99, 3, 4, 99}
	m := FromColMajor(2, 2, 3, data)
	if m.At(0, 0) != 1 || m.At(1, 0) != 2 || m.At(0, 1) != 3 || m.At(1, 1) != 4 {
		t.Fatalf("wrong view: %v", m)
	}
	m.Set(1, 1, -4)
	if data[4] != -4 {
		t.Fatal("view did not alias underlying data")
	}
}

func TestFromColMajorShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromColMajor(3, 2, 3, make([]float64, 5))
}

func TestViewAliases(t *testing.T) {
	m := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	v := m.View(1, 1, 2, 2)
	if v.At(0, 0) != 6 || v.At(1, 1) != 11 {
		t.Fatalf("wrong view contents: %v", v)
	}
	v.Set(0, 1, 70)
	if m.At(1, 2) != 70 {
		t.Fatal("view write did not reach parent")
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.View(1, 1, 3, 2)
}

func TestCloneIndependent(t *testing.T) {
	m := Random(5, 4, 1)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 1234)
	if m.At(0, 0) == 1234 {
		t.Fatal("clone aliases original")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).CopyFrom(New(3, 2))
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("got %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSwapRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	m.SwapRows(0, 2)
	want := FromRows([][]float64{{5, 6}, {3, 4}, {1, 2}})
	if !m.Equal(want) {
		t.Fatalf("got %v", m)
	}
	m.SwapRows(1, 1) // no-op
	if !m.Equal(want) {
		t.Fatal("self-swap changed matrix")
	}
}

func TestRowSetRow(t *testing.T) {
	m := New(3, 3)
	m.SetRow(1, []float64{7, 8, 9})
	got := m.Row(1)
	for j, want := range []float64{7, 8, 9} {
		if got[j] != want {
			t.Fatalf("row = %v", got)
		}
	}
}

func TestColAliases(t *testing.T) {
	m := New(3, 2)
	col := m.Col(1)
	col[2] = 42
	if m.At(2, 1) != 42 {
		t.Fatal("Col does not alias storage")
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	if got := m.NormOne(); got != 6 {
		t.Fatalf("NormOne = %v", got)
	}
	if got := m.NormInf(); got != 7 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if got := m.NormFrobenius(); math.Abs(got-want) > 1e-14 {
		t.Fatalf("NormFrobenius = %v want %v", got, want)
	}
}

func TestNormFrobeniusScaling(t *testing.T) {
	// Entries near overflow must not overflow the norm computation.
	m := New(2, 1)
	m.Set(0, 0, 1e300)
	m.Set(1, 0, 1e300)
	want := 1e300 * math.Sqrt(2)
	if got := m.NormFrobenius(); math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("NormFrobenius = %v want %v", got, want)
	}
}

func TestEqualApprox(t *testing.T) {
	a := Random(4, 4, 2)
	b := a.Clone()
	b.Set(3, 3, b.At(3, 3)+1e-12)
	if !a.EqualApprox(b, 1e-10) {
		t.Fatal("should be approx equal")
	}
	if a.EqualApprox(b, 1e-14) {
		t.Fatal("should not be equal at tight tol")
	}
	if a.EqualApprox(New(4, 3), 1) {
		t.Fatal("shape mismatch should not be equal")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(6, 5, 42)
	b := Random(6, 5, 42)
	if !a.Equal(b) {
		t.Fatal("same seed must give same matrix")
	}
	c := Random(6, 5, 43)
	if a.Equal(c) {
		t.Fatal("different seeds gave identical matrix")
	}
}

func TestDiagonallyDominant(t *testing.T) {
	m := DiagonallyDominant(20, 7)
	for i := 0; i < 20; i++ {
		off := 0.0
		for j := 0; j < 20; j++ {
			if i != j {
				off += math.Abs(m.At(i, j))
			}
		}
		if math.Abs(m.At(i, i)) <= off {
			t.Fatalf("row %d not dominant", i)
		}
	}
}

func TestWilkinson(t *testing.T) {
	m := Wilkinson(4)
	want := FromRows([][]float64{
		{1, 0, 0, 1},
		{-1, 1, 0, 1},
		{-1, -1, 1, 1},
		{-1, -1, -1, 1},
	})
	if !m.Equal(want) {
		t.Fatalf("got %v", m)
	}
}

func TestGraded(t *testing.T) {
	m := Graded(5, 3, 10, 3)
	// Later rows should be much larger in magnitude.
	first, last := 0.0, 0.0
	for j := 0; j < 3; j++ {
		first += math.Abs(m.At(0, j))
		last += math.Abs(m.At(4, j))
	}
	if last < 100*first {
		t.Fatalf("grading not applied: first %v last %v", first, last)
	}
}

func TestNearSingularShape(t *testing.T) {
	m := NearSingular(10, 4, 1e-10, 5)
	if m.Rows != 10 || m.Cols != 4 {
		t.Fatalf("got %dx%d", m.Rows, m.Cols)
	}
	one := NearSingular(5, 1, 1e-10, 5)
	if one.Cols != 1 {
		t.Fatal("single-column fallback broken")
	}
}

func TestOrthogonalishColumnsUnitNorm(t *testing.T) {
	m := Orthogonalish(50, 5, 9)
	for j := 0; j < 5; j++ {
		s := 0.0
		for _, v := range m.Col(j) {
			s += v * v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("column %d norm^2 = %v", j, s)
		}
	}
}

func TestStringElides(t *testing.T) {
	small := Identity(2).String()
	if small == "" {
		t.Fatal("empty string")
	}
	big := New(100, 100).String()
	if len(big) > 20000 {
		t.Fatalf("String did not elide: %d bytes", len(big))
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := int(seed%7)*3 + 1
		c := int(seed%5)*2 + 1
		if r < 0 {
			r = -r + 1
		}
		if c < 0 {
			c = -c + 1
		}
		m := Random(r, c, seed)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: norms satisfy maxAbs <= frobenius and triangle-style bounds.
func TestNormOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := Random(8, 6, seed)
		maxAbs := m.MaxAbs()
		fro := m.NormFrobenius()
		one := m.NormOne()
		inf := m.NormInf()
		return maxAbs <= fro+1e-12 && maxAbs <= one+1e-12 && maxAbs <= inf+1e-12 &&
			fro <= math.Sqrt(float64(m.Rows*m.Cols))*maxAbs+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SwapRows twice restores the matrix.
func TestSwapRowsInvolutionProperty(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		m := Random(10, 4, seed)
		orig := m.Clone()
		i1, i2 := int(a)%10, int(b)%10
		m.SwapRows(i1, i2)
		m.SwapRows(i1, i2)
		return m.Equal(orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKahan(t *testing.T) {
	k := Kahan(5, 1.2)
	// Upper triangular with positive decreasing diagonal.
	for i := 0; i < 5; i++ {
		for j := 0; j < i; j++ {
			if k.At(i, j) != 0 {
				t.Fatalf("Kahan not upper triangular at (%d,%d)", i, j)
			}
		}
		if k.At(i, i) <= 0 {
			t.Fatalf("Kahan diagonal %v at %d", k.At(i, i), i)
		}
		if i > 0 && k.At(i, i) >= k.At(i-1, i-1) {
			t.Fatal("Kahan diagonal not decreasing")
		}
	}
	// Off-diagonal entries are negative (for theta in (0, pi/2)).
	if k.At(0, 1) >= 0 {
		t.Fatalf("Kahan off-diagonal %v", k.At(0, 1))
	}
}

func TestHilbert(t *testing.T) {
	h := Hilbert(4)
	if h.At(0, 0) != 1 || h.At(1, 2) != 1.0/4 || h.At(3, 3) != 1.0/7 {
		t.Fatalf("Hilbert entries wrong: %v", h)
	}
	// Symmetric.
	if !h.Equal(h.Transpose()) {
		t.Fatal("Hilbert not symmetric")
	}
}
