// Package matrix provides the dense column-major matrix type used by every
// numerical kernel in this repository, together with views, copies, norms
// and comparison helpers.
//
// Storage follows the LAPACK convention: a matrix with r rows and c columns
// is stored in a []float64 where element (i, j) lives at Data[j*Stride+i]
// and Stride >= r is the leading dimension. Column-major storage keeps the
// panels factored by TSLU/TSQR contiguous in memory, which is the layout the
// communication-avoiding algorithms in the paper are designed around.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a column-major matrix of float64 values.
//
// A Dense may be a view into a larger matrix: mutating a view mutates the
// parent. The zero value is an empty (0x0) matrix.
type Dense struct {
	// Rows and Cols are the dimensions of the matrix.
	Rows, Cols int
	// Stride is the leading dimension: the offset in Data between
	// horizontally adjacent elements (i, j) and (i, j+1).
	Stride int
	// Data holds the elements; element (i, j) is Data[j*Stride+i].
	Data []float64
}

// New allocates a zeroed r x c matrix with a tight leading dimension.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	stride := r
	if stride == 0 {
		stride = 1
	}
	return &Dense{Rows: r, Cols: c, Stride: stride, Data: make([]float64, stride*c)}
}

// FromColMajor wraps an existing column-major slice without copying.
// The slice must hold at least stride*(c-1)+r elements.
func FromColMajor(r, c, stride int, data []float64) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	if stride < r || (stride < 1 && c > 0) {
		panic(fmt.Sprintf("matrix: stride %d < rows %d", stride, r))
	}
	if c > 0 && len(data) < stride*(c-1)+r {
		panic(fmt.Sprintf("matrix: data length %d too short for %dx%d stride %d", len(data), r, c, stride))
	}
	return &Dense{Rows: r, Cols: c, Stride: stride, Data: data}
}

// FromRows builds a matrix from row slices (convenient in tests and
// examples). All rows must have equal length.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged row %d: got %d want %d", i, len(row), c))
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j). Bounds are checked.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[j*m.Stride+i]
}

// Set assigns element (i, j). Bounds are checked.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[j*m.Stride+i] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Col returns the contiguous storage of column j, length Rows.
// Mutating the returned slice mutates the matrix.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: column %d out of range %d", j, m.Cols))
	}
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// View returns an r x c sub-matrix view rooted at (i, j). The view shares
// storage with m.
func (m *Dense) View(i, j, r, c int) *Dense {
	if r < 0 || c < 0 || i < 0 || j < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%dx%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[j*m.Stride+i:]}
}

// Clone returns a deep copy of m with a tight leading dimension.
func (m *Dense) Clone() *Dense {
	n := New(m.Rows, m.Cols)
	n.CopyFrom(m)
	return n
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: copy dimension mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	t := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := 0; i < m.Rows; i++ {
			t.Set(j, i, col[i])
		}
	}
	return t
}

// SwapRows exchanges rows i1 and i2 across all columns.
func (m *Dense) SwapRows(i1, i2 int) {
	if i1 == i2 {
		return
	}
	if i1 < 0 || i1 >= m.Rows || i2 < 0 || i2 >= m.Rows {
		panic(fmt.Sprintf("matrix: swap rows (%d, %d) out of range %d", i1, i2, m.Rows))
	}
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		col[i1], col[i2] = col[i2], col[i1]
	}
}

// Row copies row i into a new slice.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.Rows))
	}
	row := make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		row[j] = m.Data[j*m.Stride+i]
	}
	return row
}

// SetRow overwrites row i with v (len(v) must equal Cols).
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("matrix: SetRow length %d want %d", len(v), m.Cols))
	}
	for j, x := range v {
		m.Set(i, j, x)
	}
}

// Equal reports whether m and n have the same shape and identical elements.
func (m *Dense) Equal(n *Dense) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		a, b := m.Col(j), n.Col(j)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports whether m and n have the same shape and elements that
// differ by at most tol in absolute value.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		a, b := m.Col(j), n.Col(j)
		for i := range a {
			if math.Abs(a[i]-b[i]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns max |m(i,j)|, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// NormFrobenius returns the Frobenius norm of m, computed with scaling to
// avoid overflow.
func (m *Dense) NormFrobenius() float64 {
	scale, ssq := 0.0, 1.0
	for j := 0; j < m.Cols; j++ {
		for _, v := range m.Col(j) {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				ssq = 1 + ssq*(scale/a)*(scale/a)
				scale = a
			} else {
				ssq += (a / scale) * (a / scale)
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormOne returns the 1-norm (max column sum of absolute values).
func (m *Dense) NormOne() float64 {
	max := 0.0
	for j := 0; j < m.Cols; j++ {
		sum := 0.0
		for _, v := range m.Col(j) {
			sum += math.Abs(v)
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// NormInf returns the infinity norm (max row sum of absolute values).
func (m *Dense) NormInf() float64 {
	if m.Rows == 0 {
		return 0
	}
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			sums[i] += math.Abs(v)
		}
	}
	max := 0.0
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxDim = 12
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d", m.Rows, m.Cols)
	r, c := m.Rows, m.Cols
	er, ec := false, false
	if r > maxDim {
		r, er = maxDim, true
	}
	if c > maxDim {
		c, ec = maxDim, true
	}
	for i := 0; i < r; i++ {
		b.WriteString("\n[")
		for j := 0; j < c; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "% .4g", m.At(i, j))
		}
		if ec {
			b.WriteString(" ...")
		}
		b.WriteString("]")
	}
	if er {
		b.WriteString("\n...")
	}
	return b.String()
}
