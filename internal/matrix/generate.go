package matrix

import (
	"math"
	"math/rand"
)

// RNG returns a deterministic pseudo-random source for the given seed.
// All generators in this repository derive randomness from explicit seeds so
// that every test, example and experiment is reproducible.
func RNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Random returns an r x c matrix with entries uniform in [-1, 1).
func Random(r, c int, seed int64) *Dense {
	rng := RNG(seed)
	m := New(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 2*rng.Float64() - 1
		}
	}
	return m
}

// RandomNormal returns an r x c matrix with standard normal entries.
func RandomNormal(r, c int, seed int64) *Dense {
	rng := RNG(seed)
	m := New(r, c)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
	}
	return m
}

// DiagonallyDominant returns a random square matrix made strictly row
// diagonally dominant, guaranteeing that LU factorization without pivoting
// is stable and every pivot is nonzero.
func DiagonallyDominant(n int, seed int64) *Dense {
	m := Random(n, n, seed)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += math.Abs(m.At(i, j))
		}
		m.Set(i, i, sum+1)
	}
	return m
}

// Wilkinson returns the classic n x n growth-factor matrix: 1 on the
// diagonal, -1 strictly below, 1 in the last column. Partial pivoting on it
// produces the worst-case element growth 2^(n-1); tournament pivoting is
// expected to behave comparably in practice, which the stability experiments
// check.
func Wilkinson(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				m.Set(i, j, 1)
			case j == n-1:
				m.Set(i, j, 1)
			case i > j:
				m.Set(i, j, -1)
			}
		}
	}
	return m
}

// Graded returns a random matrix whose rows are scaled geometrically by
// ratio^i, exercising pivoting decisions across widely varying magnitudes.
func Graded(r, c int, ratio float64, seed int64) *Dense {
	m := Random(r, c, seed)
	scale := 1.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, m.At(i, j)*scale)
		}
		scale *= ratio
	}
	return m
}

// NearSingular returns a random r x c matrix whose last column is a tiny
// perturbation of a linear combination of the others, giving a large
// condition number without exact singularity.
func NearSingular(r, c int, eps float64, seed int64) *Dense {
	if c < 2 {
		return Random(r, c, seed)
	}
	m := Random(r, c, seed)
	rng := RNG(seed + 1)
	last := m.Col(c - 1)
	for i := range last {
		last[i] = 0
	}
	for j := 0; j < c-1; j++ {
		w := rng.Float64()
		col := m.Col(j)
		for i := range last {
			last[i] += w * col[i]
		}
	}
	for i := range last {
		last[i] += eps * (2*rng.Float64() - 1)
	}
	return m
}

// Orthogonalish returns a tall-and-skinny matrix whose columns are nearly
// orthonormal (random matrix with re-scaled columns), a typical input for
// block-iterative orthogonalization workloads.
func Orthogonalish(r, c int, seed int64) *Dense {
	m := RandomNormal(r, c, seed)
	for j := 0; j < c; j++ {
		col := m.Col(j)
		norm := 0.0
		for _, v := range col {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for i := range col {
			col[i] /= norm
		}
	}
	return m
}

// Kahan returns the n x n Kahan matrix with parameter theta: an upper
// triangular matrix R(i,j) = -cos(theta) * s^i for j > i, s^i on the
// diagonal (s = sin(theta)). It is the classic example where QR with
// column pivoting misjudges rank; here it exercises the QR paths with a
// graded, ill-conditioned triangle.
func Kahan(n int, theta float64) *Dense {
	s, c := math.Sin(theta), math.Cos(theta)
	m := New(n, n)
	scale := 1.0
	for i := 0; i < n; i++ {
		m.Set(i, i, scale)
		for j := i + 1; j < n; j++ {
			m.Set(i, j, -c*scale)
		}
		scale *= s
	}
	return m
}

// Hilbert returns the n x n Hilbert matrix H(i,j) = 1/(i+j+1), the
// canonical ill-conditioned symmetric positive definite test matrix.
func Hilbert(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, 1/float64(i+j+1))
		}
	}
	return m
}
