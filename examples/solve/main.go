// Solve: dense linear system via CALU with iterative refinement.
//
// Discretizes a 2-D integral-equation-style kernel into a dense system
// A x = b, factors it once with communication-avoiding LU, and improves the
// solution with a few steps of iterative refinement — the standard pattern
// for dense direct solvers. Demonstrates that the tournament-pivoted
// factorization is accurate enough that refinement converges to machine
// precision in one or two steps.
//
//	go run ./examples/solve
package main

import (
	"fmt"
	"math"

	"repro/factor"
)

const n = 800

func main() {
	// Dense kernel matrix: K(s, t) = exp(-|s-t|) on a uniform grid plus a
	// diagonal shift (a discretized second-kind Fredholm equation, a
	// classic source of dense well-conditioned systems).
	a := factor.NewMatrix(n, n)
	h := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s, t := float64(i)*h, float64(j)*h
			a.Set(i, j, h*math.Exp(-math.Abs(s-t)))
		}
		a.Set(i, i, a.At(i, i)+1)
	}

	// Right-hand side for a known smooth solution x*(t) = sin(pi t).
	xStar := factor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		xStar.Set(i, 0, math.Sin(math.Pi*float64(i)*h))
	}
	b := matVec(a, xStar)

	// Factor once.
	fac := a.Clone()
	lu, err := factor.LU(fac, factor.Options{PanelThreads: 4, BlockSize: 64})
	if err != nil {
		panic(err)
	}

	// Initial solve.
	x := b.Clone()
	lu.Solve(x)
	fmt.Printf("initial solve:      error = %.3e\n", maxErr(x, xStar))

	// Iterative refinement: r = b - A x, correct with the same factors.
	for it := 1; it <= 3; it++ {
		r := b.Clone()
		ax := matVec(a, x)
		for i := 0; i < n; i++ {
			r.Set(i, 0, r.At(i, 0)-ax.At(i, 0))
		}
		lu.Solve(r)
		for i := 0; i < n; i++ {
			x.Set(i, 0, x.At(i, 0)+r.At(i, 0))
		}
		fmt.Printf("refinement step %d:  error = %.3e, correction = %.3e\n",
			it, maxErr(x, xStar), r.MaxAbs())
	}
	fmt.Println("\nThe correction shrinking to ~1e-16 per step shows the CALU")
	fmt.Println("factorization is backward stable on this system.")
}

func matVec(a, x *factor.Matrix) *factor.Matrix {
	y := factor.NewMatrix(a.Rows, 1)
	for j := 0; j < a.Cols; j++ {
		xj := x.At(j, 0)
		col := a.Col(j)
		yc := y.Col(0)
		for i := range col {
			yc[i] += col[i] * xj
		}
	}
	return y
}

func maxErr(x, ref *factor.Matrix) float64 {
	worst := 0.0
	for i := 0; i < x.Rows; i++ {
		if d := math.Abs(x.At(i, 0) - ref.At(i, 0)); d > worst {
			worst = d
		}
	}
	return worst
}
