// Mixed precision: solve the same dense system with plain double-precision
// CALU and with float32-factorization + float64 iterative refinement, and
// compare accuracy and time. Single precision halves memory traffic and
// (on real hardware) roughly doubles kernel throughput; refinement buys
// the accuracy back when the matrix is reasonably conditioned — the
// companion technique of the paper's research group (Langou et al. 2006).
//
//	go run ./examples/mixedprecision
package main

import (
	"fmt"
	"math"
	"time"

	"repro/factor"
)

const n = 1200

func main() {
	// A well-conditioned dense system.
	a := factor.Random(n, n, 17)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+12)
	}
	xStar := factor.Random(n, 1, 18)
	b := factor.NewMatrix(n, 1)
	for j := 0; j < n; j++ {
		xj := xStar.At(j, 0)
		col := a.Col(j)
		dst := b.Col(0)
		for i := range col {
			dst[i] += col[i] * xj
		}
	}

	// Double-precision CALU solve.
	lu64 := a.Clone()
	rhs64 := b.Clone()
	t0 := time.Now()
	f, err := factor.LU(lu64, factor.Options{})
	if err != nil {
		panic(err)
	}
	f.Solve(rhs64)
	t64 := time.Since(t0)
	fmt.Printf("float64 CALU:    %8.1f ms   error %.2e\n",
		t64.Seconds()*1e3, maxErr(rhs64, xStar))

	// Mixed-precision solve.
	rhsMx := b.Clone()
	t0 = time.Now()
	iters, err := factor.SolveMixed(a, rhsMx, 10)
	if err != nil {
		panic(err)
	}
	tMx := time.Since(t0)
	fmt.Printf("mixed precision: %8.1f ms   error %.2e   (%d refinement steps)\n",
		tMx.Seconds()*1e3, maxErr(rhsMx, xStar), iters)

	fmt.Println()
	fmt.Println("Both reach double-precision accuracy; the mixed solver does its")
	fmt.Println("O(n^3) work in float32 (half the memory traffic, and on real")
	fmt.Println("SIMD hardware about twice the flop rate), paying only a few")
	fmt.Println("cheap O(n^2) refinement sweeps in float64.")
}

func maxErr(x, ref *factor.Matrix) float64 {
	worst := 0.0
	for i := 0; i < x.Rows; i++ {
		if d := math.Abs(x.At(i, 0) - ref.At(i, 0)); d > worst {
			worst = d
		}
	}
	return worst
}
