// Least squares: fit an overdetermined model with tall-skinny QR.
//
// A classic data-fitting task: 50,000 noisy observations of a polynomial
// plus sinusoid model with 12 parameters. The design matrix is 50000 x 12 —
// the extreme tall-and-skinny shape for which the paper's TSQR panel
// factorization was designed. The example solves the normal-equations-free
// least squares problem min ||A x - b|| via CAQR and reports the recovered
// coefficients and residual.
//
//	go run ./examples/leastsquares
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/factor"
)

const (
	samples = 50000
	params  = 12
	noise   = 0.05
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Ground-truth coefficients.
	truth := make([]float64, params)
	for i := range truth {
		truth[i] = float64(i%5) - 2 + 0.25*float64(i)
	}

	// Design matrix: Chebyshev polynomial basis up to degree 7 (well
	// conditioned, unlike raw monomials) plus 4 Fourier terms on t in
	// [0, 1); observations with Gaussian noise.
	a := factor.NewMatrix(samples, params)
	b := factor.NewMatrix(samples, 1)
	for i := 0; i < samples; i++ {
		t := float64(i) / samples
		u := 2*t - 1 // map to [-1, 1] for the Chebyshev recurrence
		row := make([]float64, params)
		row[0], row[1] = 1, u
		for d := 2; d < 8; d++ {
			row[d] = 2*u*row[d-1] - row[d-2]
		}
		row[8] = math.Sin(6 * math.Pi * t)
		row[9] = math.Cos(6 * math.Pi * t)
		row[10] = math.Sin(10 * math.Pi * t)
		row[11] = math.Cos(10 * math.Pi * t)
		y := 0.0
		for j, c := range truth {
			a.Set(i, j, row[j])
			y += c * row[j]
		}
		b.Set(i, 0, y+noise*rng.NormFloat64())
	}

	design := a.Clone()
	qr, err := factor.QR(a, factor.Options{PanelThreads: 8})
	if err != nil {
		log.Fatal(err)
	}
	x := qr.LeastSquares(b.Clone())

	fmt.Println("coefficient   truth     estimate   error")
	worst := 0.0
	for i := 0; i < params; i++ {
		err := math.Abs(x.At(i, 0) - truth[i])
		if err > worst {
			worst = err
		}
		fmt.Printf("  x[%2d]     %8.4f   %8.4f   %.2e\n", i, truth[i], x.At(i, 0), err)
	}

	// Residual norm of the fit.
	resid := 0.0
	for i := 0; i < samples; i++ {
		pred := 0.0
		for j := 0; j < params; j++ {
			pred += design.At(i, j) * x.At(j, 0)
		}
		d := pred - b.At(i, 0)
		resid += d * d
	}
	fmt.Printf("\nRMS residual: %.4f (noise level %.2f)\n", math.Sqrt(resid/samples), noise)
	fmt.Printf("worst coefficient error: %.2e\n", worst)
}
