// Orthogonalize: the paper's motivating tall-and-skinny workload — block
// orthogonalization inside a block iterative method.
//
// A Krylov-style iteration produces a few new basis vectors per step; each
// batch must be orthogonalized against itself (and previous blocks) before
// the next matrix-vector products. The batch is an m x k matrix with
// m >> k, exactly the shape where TSQR/CAQR beats column-by-column
// Gram-Schmidt and classic Householder QR. This example runs a simple
// block-power iteration on a synthetic operator and uses CAQR for the
// orthogonalization step, tracking subspace convergence.
//
//	go run ./examples/orthogonalize
package main

import (
	"fmt"
	"log"
	"math"

	"repro/factor"
)

const (
	dim       = 4000 // operator dimension (m of the tall-skinny QR)
	blockSize = 8    // basis vectors per batch (n of the tall-skinny QR)
	steps     = 30
)

func main() {
	// Synthetic symmetric operator with known spectrum: diagonal decay
	// lambda_i = 1/i plus a mild random orthogonal mixing is overkill for
	// a demo, so use the diagonal directly — convergence rates are what
	// the orthogonalization quality shows.
	lambda := make([]float64, dim)
	for i := range lambda {
		lambda[i] = 1 / float64(i+1)
	}

	// Start from a random block.
	v := factor.Random(dim, blockSize, 3)
	orthonormalize(v)

	for step := 1; step <= steps; step++ {
		// V <- A V (diagonal operator).
		for j := 0; j < blockSize; j++ {
			col := v.Col(j)
			for i := range col {
				col[i] *= lambda[i]
			}
		}
		// Re-orthogonalize the block with tall-skinny QR. Without this the
		// columns collapse onto the dominant eigenvector within a few steps.
		orthonormalize(v)

		if step%10 == 0 {
			fmt.Printf("step %2d: subspace residual = %.3e, orthogonality = %.3e\n",
				step, subspaceResidual(v, lambda), orthoError(v))
		}
	}
	fmt.Println()
	fmt.Println("The dominant eigenvectors of the diagonal operator are the")
	fmt.Println("coordinate directions e_1..e_k; the residual above measures")
	fmt.Println("how far the computed block is from spanning them.")
}

// orthonormalize replaces v's columns with an orthonormal basis of their
// span using communication-avoiding QR (Q overwrites v).
func orthonormalize(v *factor.Matrix) {
	work := v.Clone()
	qr, err := factor.QR(work, factor.Options{PanelThreads: 8, BlockSize: blockSize})
	if err != nil {
		log.Fatal(err)
	}
	v.CopyFrom(qr.Q())
}

// subspaceResidual measures || (I - V V^T) e_i || summed over the dominant
// directions e_1..e_k.
func subspaceResidual(v *factor.Matrix, lambda []float64) float64 {
	_ = lambda
	k := v.Cols
	total := 0.0
	for target := 0; target < k; target++ {
		// Projection of e_target onto span(V) has coefficients = row
		// `target` of V; residual norm^2 = 1 - sum of squares of that row.
		row := v.Row(target)
		s := 0.0
		for _, x := range row {
			s += x * x
		}
		if s > 1 {
			s = 1
		}
		total += math.Sqrt(1 - s)
	}
	return total
}

// orthoError returns ||V^T V - I||_max.
func orthoError(v *factor.Matrix) float64 {
	k := v.Cols
	worst := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			s := 0.0
			ci, cj := v.Col(i), v.Col(j)
			for r := range ci {
				s += ci[r] * cj[r]
			}
			if i == j {
				s -= 1
			}
			if a := math.Abs(s); a > worst {
				worst = a
			}
		}
	}
	return worst
}
