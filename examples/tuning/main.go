// Tuning: find the best (b, Tr, tree) for CALU on *this* machine and
// matrix shape — the exercise Section IV of the paper performs on its two
// testbeds ("the optimal choice of parameters b and Tr depends on the size
// of the input matrix and on the architecture").
//
// The sweep times real factorizations at a reduced size, prints the grid,
// and reports the winner. On a multicore host, run with different
// GOMAXPROCS to watch the optimum shift toward larger Tr.
//
//	go run ./examples/tuning [-m rows] [-n cols]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/factor"
)

func main() {
	m := flag.Int("m", 6000, "rows")
	n := flag.Int("n", 300, "columns")
	flag.Parse()

	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("tuning CALU on %dx%d with %d workers\n\n", *m, *n, workers)

	orig := factor.Random(*m, *n, 99)
	flops := float64(*m)*float64(*n)*float64(*n) - float64(*n)*float64(*n)*float64(*n)/3

	type result struct {
		b, tr int
		tree  factor.Tree
		gf    float64
	}
	var best result

	trees := map[factor.Tree]string{factor.Binary: "binary", factor.Flat: "flat", factor.Hybrid: "hybrid"}
	fmt.Printf("%-8s %-4s %-8s %10s\n", "tree", "Tr", "b", "GFlop/s")
	for tree, name := range trees {
		for _, tr := range []int{1, 2, 4, 8} {
			if tr > 1 && tree == factor.Binary && tr > 2*workers {
				continue
			}
			for _, b := range []int{50, 100, 200} {
				if b > *n {
					continue
				}
				a := orig.Clone()
				opt := factor.Options{BlockSize: b, PanelThreads: tr, Tree: tree, Workers: workers}
				start := time.Now()
				if _, err := factor.LU(a, opt); err != nil {
					panic(err)
				}
				gf := flops / time.Since(start).Seconds() / 1e9
				fmt.Printf("%-8s %-4d %-8d %10.2f\n", name, tr, b, gf)
				if gf > best.gf {
					best = result{b: b, tr: tr, tree: tree, gf: gf}
				}
			}
		}
	}
	fmt.Printf("\nbest: tree=%s Tr=%d b=%d at %.2f GFlop/s\n",
		trees[best.tree], best.tr, best.b, best.gf)
	fmt.Println("\nExpected pattern (paper Section IV): on a tall-skinny shape the")
	fmt.Println("optimum sits at Tr = cores; on squares, Tr = 2-4 with larger b.")
}
