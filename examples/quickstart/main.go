// Quickstart: factor a matrix with communication-avoiding LU and QR via the
// public API, and verify both results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/factor"
)

func main() {
	// --- LU with tournament pivoting (CALU) ---
	n := 500
	a := factor.Random(n, n, 7)
	orig := a.Clone()

	lu, err := factor.LU(a, factor.Options{}) // paper defaults
	if err != nil {
		log.Fatal(err)
	}

	// Solve A x = b for a known x and check we get it back.
	xWant := factor.Random(n, 1, 8)
	b := mul(orig, xWant)
	lu.Solve(b)
	fmt.Printf("CALU solve:   max |x - x*| = %.3g\n", maxDiff(b, xWant))

	// --- QR over TSQR reduction trees (CAQR) ---
	m := 2000
	ts := factor.Random(m, 50, 9) // tall and skinny: CAQR's home turf
	tsOrig := ts.Clone()
	qr, err := factor.QR(ts, factor.Options{PanelThreads: 4})
	if err != nil {
		log.Fatal(err)
	}

	q, r := qr.Q(), qr.R()
	fmt.Printf("CAQR:         ||A - QR||_max = %.3g\n", maxDiff(mul(q, r), tsOrig))

	// Orthogonality of the computed basis.
	qtq := factor.NewMatrix(50, 50)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			s := 0.0
			for k := 0; k < m; k++ {
				s += q.At(k, i) * q.At(k, j)
			}
			qtq.Set(i, j, s)
		}
	}
	for i := 0; i < 50; i++ {
		qtq.Set(i, i, qtq.At(i, i)-1)
	}
	fmt.Printf("CAQR:         ||Q'Q - I||_max = %.3g\n", qtq.MaxAbs())
}

// mul returns a*b for small examples.
func mul(a, b *factor.Matrix) *factor.Matrix {
	c := factor.NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func maxDiff(a, b *factor.Matrix) float64 {
	d := a.Clone()
	for j := 0; j < d.Cols; j++ {
		col, ref := d.Col(j), b.Col(j)
		for i := range col {
			col[i] -= ref[i]
		}
	}
	return d.MaxAbs()
}
