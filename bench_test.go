package repro

// Benchmarks regenerating every table and figure of the paper, plus
// measured micro-benchmarks of the real kernels.
//
// The BenchmarkFig*/BenchmarkTable* benches run the modeled experiments
// (paper-scale task graphs on the calibrated virtual machines) and report
// the headline GFlop/s as custom metrics, so `go test -bench=.` reproduces
// the entire evaluation section in one run. The BenchmarkMeasured* benches
// run the real factorizations at reduced sizes.

import (
	"testing"

	"repro/factor"
	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/simsched"
	"repro/internal/tiled"
	"repro/internal/tslu"
	"repro/internal/tsqr"
)

// benchExperiment runs a registered experiment once per iteration and
// reports selected row/column values as custom metrics.
func benchExperiment(b *testing.B, id string, metrics map[string][2]string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = e.Run(bench.Config{Mode: bench.Modeled})
	}
	for name, rc := range metrics {
		for _, r := range tb.Rows {
			if r.Label == rc[0] {
				b.ReportMetric(r.Values[rc[1]], name)
			}
		}
	}
}

// --- One benchmark per paper table/figure. ---

func BenchmarkFig3Trace(b *testing.B) {
	benchExperiment(b, "fig3", map[string][2]string{
		"idle-frac": {"share", "idle"},
	})
}

func BenchmarkFig4Trace(b *testing.B) {
	benchExperiment(b, "fig4", map[string][2]string{
		"idle-frac": {"share", "idle"},
	})
}

func BenchmarkFig5TallSkinnyLU(b *testing.B) {
	benchExperiment(b, "fig5", map[string][2]string{
		"calu8-n100-GF":  {"100000x100", "CALU(Tr=8)"},
		"dgetrf-n100-GF": {"100000x100", "dgetrf"},
		"plasma-n100-GF": {"100000x100", "PLASMA"},
	})
}

func BenchmarkFig6TallSkinnyLU(b *testing.B) {
	benchExperiment(b, "fig6", map[string][2]string{
		"calu8-n500-GF":  {"1000000x500", "CALU(Tr=8)"},
		"dgetrf-n500-GF": {"1000000x500", "dgetrf"},
		"dgetf2-n100-GF": {"1000000x100", "dgetf2"},
	})
}

func BenchmarkFig7TallSkinnyLUAMD(b *testing.B) {
	benchExperiment(b, "fig7", map[string][2]string{
		"calu16-n100-GF": {"100000x100", "CALU(Tr=16)"},
		"acml-n100-GF":   {"100000x100", "dgetrf"},
	})
}

func BenchmarkTable1SquareLU(b *testing.B) {
	benchExperiment(b, "table1", map[string][2]string{
		"mkl-10000-GF":   {"m=n=10000", "MKL"},
		"calu2-10000-GF": {"m=n=10000", "CALU(Tr=2)"},
		"mkl-1000-GF":    {"m=n=1000", "MKL"},
		"calu8-1000-GF":  {"m=n=1000", "CALU(Tr=8)"},
	})
}

func BenchmarkTable2SquareLUAMD(b *testing.B) {
	benchExperiment(b, "table2", map[string][2]string{
		"acml-5000-GF":  {"m=n=5000", "ACML"},
		"calu4-5000-GF": {"m=n=5000", "CALU(Tr=4)"},
	})
}

func BenchmarkFig8TallSkinnyQR(b *testing.B) {
	benchExperiment(b, "fig8", map[string][2]string{
		"tsqr-n200-GF":   {"100000x200", "TSQR"},
		"dgeqrf-n200-GF": {"100000x200", "dgeqrf"},
		"plasma-n200-GF": {"100000x200", "PLASMA"},
	})
}

func BenchmarkTable3SquareQR(b *testing.B) {
	benchExperiment(b, "table3", map[string][2]string{
		"mkl-5000-GF":   {"m=n=5000", "MKL"},
		"caqr4-5000-GF": {"m=n=5000", "CAQR(Tr=4)"},
	})
}

func BenchmarkStabilityStudy(b *testing.B) {
	benchExperiment(b, "stability", map[string][2]string{
		"calu-random-growth": {"random-uniform", "CALU"},
		"gepp-random-growth": {"random-uniform", "GEPP"},
	})
}

// --- Ablation benches for the design choices in DESIGN.md. ---

func BenchmarkAblationTree(b *testing.B) {
	benchExperiment(b, "ablation-tree", map[string][2]string{
		"calu-binary-GF": {"tall 1e6x100", "CALU-binary"},
		"calu-flat-GF":   {"tall 1e6x100", "CALU-flat"},
	})
}

func BenchmarkAblationLookahead(b *testing.B) {
	benchExperiment(b, "ablation-lookahead", map[string][2]string{
		"lookahead-GF":    {"tall 1e5x1000", "lookahead"},
		"no-lookahead-GF": {"tall 1e5x1000", "no-lookahead"},
	})
}

func BenchmarkAblationBlockSize(b *testing.B) {
	benchExperiment(b, "ablation-blocksize", map[string][2]string{
		"b50-GF":  {"tall 1e5x1000", "b=50"},
		"b100-GF": {"tall 1e5x1000", "b=100"},
		"b200-GF": {"tall 1e5x1000", "b=200"},
	})
}

func BenchmarkAblationTwoLevel(b *testing.B) {
	benchExperiment(b, "ablation-twolevel", map[string][2]string{
		"c1-GF": {"square 5000", "c=1"},
		"c4-GF": {"square 5000", "c=4"},
	})
}

func BenchmarkAblationTr(b *testing.B) {
	benchExperiment(b, "ablation-tr", map[string][2]string{
		"tr1-GF": {"tall 1e6x100", "Tr=1"},
		"tr8-GF": {"tall 1e6x100", "Tr=8"},
	})
}

func BenchmarkAblationSync(b *testing.B) {
	benchExperiment(b, "ablation-sync", map[string][2]string{
		"calu-edges":   {"tall 1e5x1000", "CALU-edges"},
		"vendor-edges": {"tall 1e5x1000", "vendor-edges"},
	})
}

// --- Measured micro-benchmarks of the real kernels (host-dependent). ---

func BenchmarkMeasuredCALUTallSkinny(b *testing.B) {
	orig := matrix.Random(8000, 100, 1)
	opt := core.Options{BlockSize: 100, PanelThreads: 4, Workers: 4, Lookahead: true}
	canon := baseline.LUFlops(8000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if _, err := core.CALU(a, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(canon*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkMeasuredGETF2TallSkinny(b *testing.B) {
	orig := matrix.Random(8000, 100, 1)
	canon := baseline.LUFlops(8000, 100)
	ipiv := make([]int, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if err := lapack.GETF2(a, ipiv); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(canon*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkMeasuredPGETRFTallSkinny(b *testing.B) {
	orig := matrix.Random(8000, 100, 1)
	canon := baseline.LUFlops(8000, 100)
	ipiv := make([]int, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if err := lapack.PGETRF(a, ipiv, 64, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(canon*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkMeasuredTiledLU(b *testing.B) {
	orig := matrix.Random(1024, 1024, 2)
	canon := baseline.LUFlops(1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if _, err := tiled.GETRF(a, tiled.Options{TileSize: 128, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(canon*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkMeasuredTSQR(b *testing.B) {
	orig := matrix.Random(8000, 64, 3)
	canon := baseline.QRFlops(8000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		tsqr.Factor(a, 4, tslu.Binary)
	}
	b.ReportMetric(canon*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkMeasuredCAQRSquare(b *testing.B) {
	orig := matrix.Random(512, 512, 4)
	canon := baseline.QRFlops(512, 512)
	opt := core.Options{BlockSize: 64, PanelThreads: 4, Workers: 4, Tree: tslu.Flat, Lookahead: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if _, err := core.CAQR(a, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(canon*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkMeasuredPublicAPISolve(b *testing.B) {
	orig := factor.Random(512, 512, 5)
	rhs := factor.Random(512, 1, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		r := rhs.Clone()
		b.StartTimer()
		lu, err := factor.LU(a, factor.Options{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		lu.Solve(r)
	}
}

// BenchmarkSimulatorThroughput measures the virtual-time scheduler itself
// (tasks simulated per second), since every modeled experiment rides on it.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g := core.BuildCALUGraph(100000, 1000, core.Options{BlockSize: 100, PanelThreads: 8, Lookahead: true})
	mach := machine.Intel8()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simsched.Run(g, mach)
	}
	b.ReportMetric(float64(g.Len()), "tasks")
}

func BenchmarkCommStructure(b *testing.B) {
	benchExperiment(b, "comm", map[string][2]string{
		"panel-syncs-classic": {"tall 1e5x1000", "panel-syncs-classic"},
		"panel-syncs-binary":  {"tall 1e5x1000", "panel-syncs-binary"},
	})
}

func BenchmarkDistMessages(b *testing.B) {
	benchExperiment(b, "dist", map[string][2]string{
		"tslu-msgs-P8": {"P=8", "TSLU"},
		"gepp-msgs-P8": {"P=8", "GEPP"},
	})
}

func BenchmarkOOCTraffic(b *testing.B) {
	benchExperiment(b, "ooc", map[string][2]string{
		"gap-1e5": {"m=100000", "GEPP/TSLU"},
	})
}

func BenchmarkScaling(b *testing.B) {
	benchExperiment(b, "scaling", map[string][2]string{
		"calu-tall-8c": {"cores=8", "CALU-tall"},
	})
}

func BenchmarkStabilitySweep(b *testing.B) {
	benchExperiment(b, "stability-sweep", map[string][2]string{
		"ratio-tr8": {"Tr=8", "ratio-mean"},
	})
}

func BenchmarkAblationStructuredTree(b *testing.B) {
	benchExperiment(b, "ablation-structured", map[string][2]string{
		"dense-GF":      {"square 5000", "dense-tree"},
		"structured-GF": {"square 5000", "structured-tree"},
	})
}

func BenchmarkParity(b *testing.B) {
	benchExperiment(b, "parity", map[string][2]string{
		"mean-rel-dev": {"MEAN", "rel-dev"},
	})
}

// BenchmarkOneShot and BenchmarkEngineReuse compare the per-call cost of
// the one-shot public API (a private worker pool per factorization) against
// a persistent factor.Engine (one shared pool reused across calls) on the
// same repeated 1000 x 200 CALU. The interesting column is allocs/op: the
// engine saves the per-call pool construction, goroutine spawn/teardown and
// — via the scratch pools warmed by earlier calls — most panel workspaces.
func BenchmarkOneShot(b *testing.B) {
	orig := factor.Random(1000, 200, 3)
	opt := factor.Options{BlockSize: 100, PanelThreads: 4, Workers: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if _, err := factor.LU(a, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineReuse(b *testing.B) {
	orig := factor.Random(1000, 200, 3)
	opt := factor.Options{BlockSize: 100, PanelThreads: 4}
	eng := factor.NewEngine(4)
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := orig.Clone()
		b.StartTimer()
		if _, err := eng.LU(a, opt); err != nil {
			b.Fatal(err)
		}
	}
}
