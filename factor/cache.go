package factor

// Content-addressed result cache: the LUCachedCtx/QRCachedCtx entry points
// key a factorization by the input's bytes and its numeric options, so a
// serving front end can answer repeated identical requests without paying
// another factorization (or even another pool submission). The cache is a
// bounded LRU with single-flight coalescing: concurrent identical misses
// factor once and share the result.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// cacheEntry is one resident result; val holds a *LUFactorization or
// *QRFactorization shared by every hit (callers must treat it read-only).
type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress fill that identical concurrent requests join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// resultCache is the bounded LRU + single-flight store behind the cached
// entry points.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recent
	entries  map[string]*list.Element
	inflight map[string]*flight

	// hits/misses/evictions are the engine's registered cache metrics
	// (newEngineMetrics); the cache increments them, Stats and /metrics read
	// them.
	hits, misses, evictions *obs.Counter
}

func newResultCache(capacity int, met *engineMetrics) *resultCache {
	return &resultCache{
		cap:       capacity,
		ll:        list.New(),
		entries:   make(map[string]*list.Element),
		inflight:  make(map[string]*flight),
		hits:      met.cacheHits,
		misses:    met.cacheMisses,
		evictions: met.cacheEvictions,
	}
}

// do returns the cached value for key, joining an identical in-flight fill
// when one exists, and otherwise filling via fn. The boolean reports a hit
// (including joining a fill — the request did not factor). Failed fills are
// not cached; every joiner of a failed fill gets the leader's error.
func (c *resultCache) do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.hits.Inc()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, false, f.err
			}
			c.hits.Inc()
			return f.val, true, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("%w waiting for cached result: %w", ErrCancelled, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val})
		for c.ll.Len() > c.cap {
			tail := c.ll.Back()
			c.ll.Remove(tail)
			delete(c.entries, tail.Value.(*cacheEntry).key)
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
	close(f.done)
	c.misses.Inc()
	return f.val, false, f.err
}

// cacheKey hashes everything that determines a factorization's bits: the
// operation, the shape, the numeric options (block size, panel threads,
// tree shape, structured merges, growth guardrail — scheduling-only knobs
// like Workers or Lookahead are deliberately excluded), and the matrix
// contents column by column.
func cacheKey(op byte, a *Matrix, opt core.Options) string {
	h := sha256.New()
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	h.Write([]byte{op})
	put(uint64(a.Rows))
	put(uint64(a.Cols))
	put(uint64(opt.BlockSize))
	put(uint64(opt.PanelThreads))
	put(uint64(opt.Tree))
	if opt.StructuredTree {
		put(1)
	} else {
		put(0)
	}
	put(math.Float64bits(opt.GrowthThreshold))
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for _, v := range col {
			put(math.Float64bits(v))
		}
	}
	return string(h.Sum(nil))
}

// LUCachedCtx is Engine.LUCtx behind the content-addressed result cache: it
// never modifies a (misses factor a private clone), and on a hit returns
// the shared cached handle, which the caller must treat as read-only. The
// boolean reports whether the result came from the cache (or an identical
// in-flight request). With EngineConfig.CacheEntries zero the call always
// factors and reports false.
func (e *Engine) LUCachedCtx(ctx context.Context, a *Matrix, opt Options) (*LUFactorization, bool, error) {
	if e.cache == nil || a == nil {
		f, err := e.LUCtx(ctx, cloneForCache(a), opt)
		return f, false, err
	}
	key := cacheKey('L', a, e.engineOptions(opt))
	v, hit, err := e.cache.do(ctx, key, func() (any, error) {
		return e.LUCtx(ctx, a.Clone(), opt)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*LUFactorization), hit, nil
}

// QRCachedCtx is Engine.QRCtx behind the result cache, with the same
// contract as LUCachedCtx.
func (e *Engine) QRCachedCtx(ctx context.Context, a *Matrix, opt Options) (*QRFactorization, bool, error) {
	if e.cache == nil || a == nil {
		f, err := e.QRCtx(ctx, cloneForCache(a), opt)
		return f, false, err
	}
	key := cacheKey('Q', a, e.engineOptions(opt))
	v, hit, err := e.cache.do(ctx, key, func() (any, error) {
		return e.QRCtx(ctx, a.Clone(), opt)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*QRFactorization), hit, nil
}

// cloneForCache preserves the never-modifies-a contract on the uncached
// fallback path; nil passes through so shape validation reports it.
func cloneForCache(a *Matrix) *Matrix {
	if a == nil {
		return nil
	}
	return a.Clone()
}
