package factor

// Content-addressed result cache: the LUCachedCtx/QRCachedCtx entry points
// key a factorization by the input's bytes and its numeric options, so a
// serving front end can answer repeated identical requests without paying
// another factorization (or even another pool submission). The cache is a
// bounded LRU with single-flight coalescing: concurrent identical misses
// factor once and share the result.

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// ckey is a cache key: a raw sha256 digest. A fixed-size array (rather than
// a string of the digest bytes) keeps the hit path allocation-free — map
// lookups on array keys don't materialize anything.
type ckey [sha256.Size]byte

// cacheEntry is one resident result; val holds a *LUFactorization or
// *QRFactorization shared by every hit (callers must treat it read-only).
// sum is the FNV-1a digest of the resident factor matrix at insertion,
// rechecked on every hit: a long-lived cache is exactly the memory a
// slow bit rot accumulates in, so a mismatching entry is evicted and the
// request refactors instead of serving corrupted factors forever.
type cacheEntry struct {
	key ckey
	val any
	sum uint64
}

// factorChecksum digests the result's in-place factor matrix (the payload
// every hit hands out) word by word with FNV-1a. Allocation-free, so the
// hit path stays pinned by the AllocsPerRun gate in alloc_test.go.
func factorChecksum(v any) uint64 {
	var a *Matrix
	switch f := v.(type) {
	case *LUFactorization:
		a = f.res.A
	case *QRFactorization:
		a = f.res.A
	default:
		return 0
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for _, x := range col {
			h ^= math.Float64bits(x)
			h *= prime
		}
	}
	return h
}

// flight is one in-progress fill that identical concurrent requests join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// resultCache is the bounded LRU + single-flight store behind the cached
// entry points.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recent
	entries  map[ckey]*list.Element
	inflight map[ckey]*flight

	// hits/misses/evictions are the engine's registered cache metrics
	// (newEngineMetrics); the cache increments them, Stats and /metrics read
	// them. integrityEvictions counts entries dropped on a checksum
	// mismatch.
	hits, misses, evictions, integrityEvictions *obs.Counter
}

func newResultCache(capacity int, met *engineMetrics) *resultCache {
	return &resultCache{
		cap:                capacity,
		ll:                 list.New(),
		entries:            make(map[ckey]*list.Element),
		inflight:           make(map[ckey]*flight),
		hits:               met.cacheHits,
		misses:             met.cacheMisses,
		evictions:          met.cacheEvictions,
		integrityEvictions: met.integrityEvictions,
	}
}

// get returns the resident value for key, if any — the allocation-free hit
// path. The cached entry points call it before constructing the fill
// closure, so a steady-state hit performs no allocation at all (the
// AllocsPerRun gate in alloc_test.go pins this). The entry's checksum is
// rechecked outside the lock; a mismatch evicts it and reports a miss, so
// the caller refactors.
func (c *resultCache) get(key ckey) (any, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	v, want := ent.val, ent.sum
	c.mu.Unlock()
	if factorChecksum(v) != want {
		c.dropCorrupted(key, el)
		return nil, false
	}
	c.hits.Inc()
	return v, true
}

// dropCorrupted evicts an entry whose resident factors no longer match
// their insertion-time checksum. The element identity check tolerates the
// race where a concurrent fill already replaced the entry.
func (c *resultCache) dropCorrupted(key ckey, el *list.Element) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == el {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
	c.integrityEvictions.Inc()
}

// do returns the cached value for key, joining an identical in-flight fill
// when one exists, and otherwise filling via fn. The boolean reports a hit
// (including joining a fill — the request did not factor). Failed fills are
// not cached; every joiner of a failed fill gets the leader's error.
func (c *resultCache) do(ctx context.Context, key ckey, fn func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		v, want := ent.val, ent.sum
		c.mu.Unlock()
		if factorChecksum(v) == want {
			c.hits.Inc()
			return v, true, nil
		}
		// Resident entry failed its integrity check: evict it and fall
		// through to the fill path as a miss.
		c.dropCorrupted(key, el)
		c.mu.Lock()
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, false, f.err
			}
			c.hits.Inc()
			return f.val, true, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("%w waiting for cached result: %w", ErrCancelled, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	sum := uint64(0)
	if f.err == nil {
		sum = factorChecksum(f.val)
	}
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val, sum: sum})
		for c.ll.Len() > c.cap {
			tail := c.ll.Back()
			c.ll.Remove(tail)
			delete(c.entries, tail.Value.(*cacheEntry).key)
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
	close(f.done)
	c.misses.Inc()
	return f.val, false, f.err
}

// keyHasher is a pooled sha256 state plus the scratch buffers cacheKey
// writes through; pooling it (and summing into the fixed array) keeps key
// computation allocation-free after warmup.
type keyHasher struct {
	h   hash.Hash
	w   [8]byte
	op  [1]byte
	sum [sha256.Size]byte
}

func (hs *keyHasher) put(v uint64) {
	binary.LittleEndian.PutUint64(hs.w[:], v)
	hs.h.Write(hs.w[:])
}

var keyHashers = sync.Pool{New: func() any { return &keyHasher{h: sha256.New()} }}

// cacheKey hashes everything that determines a factorization's bits: the
// operation, the shape, the numeric options (block size, panel threads,
// tree shape, structured merges, growth guardrail — scheduling-only knobs
// like Workers or Lookahead are deliberately excluded), and the matrix
// contents column by column.
func cacheKey(op byte, a *Matrix, opt core.Options) (k ckey) {
	hs := keyHashers.Get().(*keyHasher)
	hs.h.Reset()
	hs.op[0] = op
	hs.h.Write(hs.op[:])
	hs.put(uint64(a.Rows))
	hs.put(uint64(a.Cols))
	hs.put(uint64(opt.BlockSize))
	hs.put(uint64(opt.PanelThreads))
	hs.put(uint64(opt.Tree))
	if opt.StructuredTree {
		hs.put(1)
	} else {
		hs.put(0)
	}
	hs.put(math.Float64bits(opt.GrowthThreshold))
	for j := 0; j < a.Cols; j++ {
		col := a.Data[j*a.Stride : j*a.Stride+a.Rows]
		for _, v := range col {
			hs.put(math.Float64bits(v))
		}
	}
	copy(k[:], hs.h.Sum(hs.sum[:0]))
	keyHashers.Put(hs)
	return k
}

// LUCachedCtx is Engine.LUCtx behind the content-addressed result cache: it
// never modifies a (misses factor a private clone), and on a hit returns
// the shared cached handle, which the caller must treat as read-only. The
// boolean reports whether the result came from the cache (or an identical
// in-flight request). With EngineConfig.CacheEntries zero the call always
// factors and reports false.
func (e *Engine) LUCachedCtx(ctx context.Context, a *Matrix, opt Options) (*LUFactorization, bool, error) {
	if e.cache == nil || a == nil {
		f, err := e.LUCtx(ctx, cloneForCache(a), opt)
		return f, false, err
	}
	key := cacheKey('L', a, e.engineOptions(opt))
	// Resident-hit fast path first: no fill closure, no allocation.
	if v, ok := e.cache.get(key); ok {
		return v.(*LUFactorization), true, nil
	}
	v, hit, err := e.cache.do(ctx, key, func() (any, error) {
		return e.LUCtx(ctx, a.Clone(), opt)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*LUFactorization), hit, nil
}

// QRCachedCtx is Engine.QRCtx behind the result cache, with the same
// contract as LUCachedCtx.
func (e *Engine) QRCachedCtx(ctx context.Context, a *Matrix, opt Options) (*QRFactorization, bool, error) {
	if e.cache == nil || a == nil {
		f, err := e.QRCtx(ctx, cloneForCache(a), opt)
		return f, false, err
	}
	key := cacheKey('Q', a, e.engineOptions(opt))
	if v, ok := e.cache.get(key); ok {
		return v.(*QRFactorization), true, nil
	}
	v, hit, err := e.cache.do(ctx, key, func() (any, error) {
		return e.QRCtx(ctx, a.Clone(), opt)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*QRFactorization), hit, nil
}

// cloneForCache preserves the never-modifies-a contract on the uncached
// fallback path; nil passes through so shape validation reports it.
func cloneForCache(a *Matrix) *Matrix {
	if a == nil {
		return nil
	}
	return a.Clone()
}
