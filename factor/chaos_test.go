package factor

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// chaosVerify factors a fresh copy of a known system on eng and checks the
// solve, proving the engine is healthy after whatever the test injected.
func chaosVerify(t *testing.T, eng *Engine) {
	t.Helper()
	const n = 24
	orig := Random(n, n, 99)
	xWant := Random(n, 1, 100)
	rhs := NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * xWant.At(j, 0)
		}
		rhs.Set(i, 0, s)
	}
	lu, err := eng.LU(orig.Clone(), Options{BlockSize: 6})
	if err != nil {
		t.Fatalf("engine unusable after chaos: %v", err)
	}
	lu.Solve(rhs)
	for i := 0; i < n; i++ {
		if d := rhs.At(i, 0) - xWant.At(i, 0); d > 1e-8 || d < -1e-8 {
			t.Fatalf("solve after chaos off by %g at row %d", d, i)
		}
	}
}

// TestChaosPanicRetrySucceeds is the acceptance scenario: two injected
// task panics, an engine with retries — the request must succeed via
// retry, the pool must survive, and the engine must serve the next
// request cleanly.
func TestChaosPanicRetrySucceeds(t *testing.T) {
	inj := fault.New(17, fault.Rule{Kind: fault.Panic, Rate: 1, Count: 2})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 4, MaxRetries: 3, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	a := Random(40, 40, 1)
	if _, err := eng.LUCtx(context.Background(), a, Options{BlockSize: 8}); err != nil {
		t.Fatalf("LU with retries: %v", err)
	}
	if got := inj.Injected(fault.Panic); got != 2 {
		t.Fatalf("injected %d panics, want 2", got)
	}
	if st := eng.Stats(); st.Retries != 2 {
		t.Fatalf("Stats.Retries = %d, want 2", st.Retries)
	}
	chaosVerify(t, eng)
}

// TestChaosPanicNoRetriesTyped checks the other half of the contract:
// without retries the injected panic surfaces as a typed error —
// errors.Is finds the injected sentinel through the panic-to-error
// recovery — and the engine stays usable.
func TestChaosPanicNoRetriesTyped(t *testing.T) {
	inj := fault.New(17, fault.Rule{Kind: fault.Panic, Rate: 1, Count: 1})
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, Interceptor: inj.Intercept})
	defer eng.Close()
	_, err := eng.LU(Random(30, 30, 2), Options{BlockSize: 6})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want wrapped fault.ErrInjected", err)
	}
	chaosVerify(t, eng)
}

// TestChaosSpuriousErrorRetried injects a one-shot spurious task error and
// checks it is classified transient and healed by a single retry.
func TestChaosSpuriousErrorRetried(t *testing.T) {
	inj := fault.New(5, fault.Rule{Kind: fault.Error, Match: "U k=", Rate: 1, Count: 1})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxRetries: 1, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	if _, err := eng.LU(Random(40, 40, 3), Options{BlockSize: 8}); err != nil {
		t.Fatalf("LU: %v", err)
	}
	if st := eng.Stats(); st.Retries != 1 {
		t.Fatalf("Stats.Retries = %d, want 1", st.Retries)
	}
	chaosVerify(t, eng)
}

// TestChaosStallWatchdog wedges the engine's only worker with an injected
// delay much longer than the stall timeout and checks the watchdog
// converts the silent stall into a typed ErrStalled failure, counts it,
// and leaves the engine serving.
func TestChaosStallWatchdog(t *testing.T) {
	inj := fault.New(9, fault.Rule{Kind: fault.Delay, Rate: 1, Count: 1, Delay: 200 * time.Millisecond})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 1, StallTimeout: 25 * time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	_, err := eng.LUCtx(context.Background(), Random(30, 30, 4), Options{BlockSize: 6})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want wrapped ErrStalled", err)
	}
	if st := eng.Stats(); st.Stalled != 1 {
		t.Fatalf("Stats.Stalled = %d, want 1", st.Stalled)
	}
	chaosVerify(t, eng)
}

// TestChaosStallRetried is the self-healing composition: the stall is
// transient (the delay rule is one-shot), so a retrying engine recovers
// from it without caller involvement.
func TestChaosStallRetried(t *testing.T) {
	inj := fault.New(9, fault.Rule{Kind: fault.Delay, Rate: 1, Count: 1, Delay: 200 * time.Millisecond})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 1, StallTimeout: 25 * time.Millisecond,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	if _, err := eng.LUCtx(context.Background(), Random(30, 30, 4), Options{BlockSize: 6}); err != nil {
		t.Fatalf("LU with stall retry: %v", err)
	}
	st := eng.Stats()
	if st.Stalled < 1 || st.Retries < 1 {
		t.Fatalf("Stats = %+v, want at least one stall and one retry", st)
	}
	chaosVerify(t, eng)
}

// TestChaosCancelOnceNotRetried models an external cancellation landing
// mid-factorization: the caller's context is cancelled by the injector,
// and the engine must NOT retry — the caller asked to stop.
func TestChaosCancelOnceNotRetried(t *testing.T) {
	// The per-task delay keeps yield points in the schedule so the pool's
	// cancellation watcher gets the (possibly single) CPU even when the
	// numeric tasks alone would drain the graph without ever blocking.
	inj := fault.New(3,
		fault.Rule{Kind: fault.CancelOnce, Match: "S ", Rate: 1},
		fault.Rule{Kind: fault.Delay, Match: "S ", Rate: 1, Delay: 500 * time.Microsecond},
	)
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxRetries: 3, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj.OnCancel(cancel)
	_, err := eng.LUCtx(ctx, Random(96, 96, 5), Options{BlockSize: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want wrapped ErrCancelled", err)
	}
	if st := eng.Stats(); st.Retries != 0 {
		t.Fatalf("Stats.Retries = %d, caller cancellation must not be retried", st.Retries)
	}
	chaosVerify(t, eng)
}

// TestChaosOverloadSheds checks admission control: with one slot occupied
// by a request blocked inside the pool, the next request is shed
// immediately with ErrOverloaded, and the slot frees once the first
// completes.
func TestChaosOverloadSheds(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxInFlight: 1,
		Interceptor: func(info TaskInfo) error {
			// Block the first request's first task until the gate opens.
			<-gate
			return nil
		},
	})
	defer eng.Close()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- errors.New("first request panicked")
			}
		}()
		_, err := eng.LU(Random(20, 20, 6), Options{BlockSize: 5})
		done <- err
	}()
	// Wait for the first request to occupy the slot.
	for i := 0; eng.Stats().InFlight == 0; i++ {
		if i > 2000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := eng.LU(Random(20, 20, 7), Options{BlockSize: 5})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request err = %v, want ErrOverloaded", err)
	}
	if st := eng.Stats(); st.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Shed)
	}
	once.Do(func() { close(gate) })
	if err := <-done; err != nil {
		t.Fatalf("first request: %v", err)
	}
	chaosVerify(t, eng)
}

// TestChaosConcurrentMixed drives concurrent LU and QR requests through an
// engine with low-rate panic and error injection under the race detector:
// every request must either succeed (via retry) or fail with a typed,
// recognisable error; the engine must survive all of it.
func TestChaosConcurrentMixed(t *testing.T) {
	inj := fault.New(23,
		fault.Rule{Kind: fault.Panic, Match: "S ", Rate: 0.05},
		fault.Rule{Kind: fault.Error, Match: "U ", Rate: 0.05},
	)
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 4, MaxRetries: 4, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	const requests = 12
	errs := make(chan error, requests)
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					errs <- errors.New("request goroutine panicked")
				}
				wg.Done()
			}()
			opt := Options{BlockSize: 8}
			var err error
			if r%2 == 0 {
				_, err = eng.LUCtx(context.Background(), Random(48, 48, int64(r)), opt)
			} else {
				_, err = eng.QRCtx(context.Background(), Random(48, 32, int64(r)), opt)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("request failed untyped: %v", err)
		}
	}
	chaosVerify(t, eng)
}

// luSolveCheck verifies a factorization of orig by solving against a known
// solution — the ground truth a corruption campaign measures recovery by.
func luSolveCheck(t *testing.T, orig *Matrix, lu *LUFactorization) {
	t.Helper()
	n := orig.Cols
	xWant := Random(n, 1, 77)
	rhs := NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * xWant.At(j, 0)
		}
		rhs.Set(i, 0, s)
	}
	lu.Solve(rhs)
	for i := 0; i < n; i++ {
		if d := rhs.At(i, 0) - xWant.At(i, 0); d > 1e-7 || d < -1e-7 {
			t.Fatalf("recovered solve off by %g at row %d", d, i)
		}
	}
}

// TestChaosCorruptionCampaignLU seeds one guaranteed-consequential
// corruption (a large perturbation) into each LU task class in turn and
// requires the verified engine to detect every single one and heal it —
// locally (panel recompute) or by full retry — ending with a correct
// factorization. 100% detection, 100% recovery.
func TestChaosCorruptionCampaignLU(t *testing.T) {
	targets := []string{"P k=", "F k=", "L k=", "U k=", "S k="}
	for _, target := range targets {
		t.Run(strings.TrimSuffix(target, " k="), func(t *testing.T) {
			inj := fault.New(31, fault.Rule{Kind: fault.Corrupt, Match: target, Rate: 1, Count: 1, Perturb: 1e6})
			eng := NewEngineWithConfig(EngineConfig{
				Workers: 4, MaxRetries: 3, RetryBackoff: time.Millisecond,
				VerifyChecksums: true,
				PostInterceptor: inj.InterceptPost,
			})
			defer eng.Close()
			orig := Random(64, 64, 41)
			lu, err := eng.LU(orig.Clone(), Options{BlockSize: 16, PanelThreads: 2})
			if err != nil {
				t.Fatalf("corrupted %q not healed: %v", target, err)
			}
			if got := inj.Injected(fault.Corrupt); got != 1 {
				t.Fatalf("injected %d corruptions for %q, want 1", got, target)
			}
			st := eng.Stats()
			if st.CorruptionsDetected == 0 {
				t.Fatalf("corruption in %q went undetected: %+v", target, st)
			}
			luSolveCheck(t, orig, lu)
			chaosVerify(t, eng)
		})
	}
}

// TestChaosCorruptionCampaignQR is the QR campaign: QR panels are factored
// in place, so every detection escalates to a full retry — which must heal
// the request to a result identical to a clean run's.
func TestChaosCorruptionCampaignQR(t *testing.T) {
	clean, err := QR(Random(64, 32, 43), Options{BlockSize: 16, PanelThreads: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cleanR := clean.R()
	targets := []string{"P k=0 leaf", "P k=0 tree", "S k=0 leaf", "S k=0 tree"}
	for _, target := range targets {
		t.Run(strings.ReplaceAll(target, " ", "_"), func(t *testing.T) {
			inj := fault.New(37, fault.Rule{Kind: fault.Corrupt, Match: target, Rate: 1, Count: 1, Perturb: 1e6})
			eng := NewEngineWithConfig(EngineConfig{
				Workers: 4, MaxRetries: 3, RetryBackoff: time.Millisecond,
				VerifyChecksums: true,
				PostInterceptor: inj.InterceptPost,
			})
			defer eng.Close()
			qr, err := eng.QR(Random(64, 32, 43), Options{BlockSize: 16, PanelThreads: 4})
			if err != nil {
				t.Fatalf("corrupted %q not healed: %v", target, err)
			}
			if got := inj.Injected(fault.Corrupt); got != 1 {
				t.Fatalf("injected %d corruptions for %q, want 1", got, target)
			}
			st := eng.Stats()
			if st.CorruptionsDetected == 0 || st.VerifyFailRetries == 0 {
				t.Fatalf("QR corruption in %q not detected+retried: %+v", target, st)
			}
			if !qr.R().EqualApprox(cleanR, 0) {
				t.Fatalf("healed R differs from clean run for %q", target)
			}
			chaosVerify(t, eng)
		})
	}
}

// TestChaosCorruptionBitFlips is the silent-data-corruption sweep with
// realistic faults: single bit flips (exponent bit 62) across task outputs
// and seeds. A flip either perturbs data that reaches the result — then it
// MUST be detected and healed — or dies in a lost tournament candidate.
// Either way the final factors must be identical to a clean run's: no
// silent corruption, ever.
func TestChaosCorruptionBitFlips(t *testing.T) {
	orig := Random(64, 64, 53)
	clean, err := LU(orig.Clone(), Options{BlockSize: 16, PanelThreads: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cleanFac := clean.Factors()
	for _, target := range []string{"P k=", "L k=", "S k="} {
		for seed := int64(1); seed <= 3; seed++ {
			inj := fault.New(seed, fault.Rule{Kind: fault.Corrupt, Match: target, Rate: 1, Count: 1})
			eng := NewEngineWithConfig(EngineConfig{
				Workers: 4, MaxRetries: 3, RetryBackoff: time.Millisecond,
				VerifyChecksums: true,
				PostInterceptor: inj.InterceptPost,
			})
			lu, err := eng.LU(orig.Clone(), Options{BlockSize: 16, PanelThreads: 2})
			if err != nil {
				t.Fatalf("bit flip in %q seed %d not healed: %v", target, seed, err)
			}
			if got := inj.Injected(fault.Corrupt); got != 1 {
				t.Fatalf("injected %d bit flips for %q seed %d, want 1", got, target, seed)
			}
			// A locally recomputed panel legitimately carries GEPP pivots
			// instead of tournament pivots, so bit-identity with the clean
			// run is only required when nothing was repaired; a repaired
			// factorization must still solve correctly.
			if eng.Stats().PanelsRecomputed == 0 && !lu.Factors().EqualApprox(cleanFac, 0) {
				t.Fatalf("factors differ from clean run after bit flip in %q seed %d (undetected corruption shipped)", target, seed)
			}
			luSolveCheck(t, orig, lu)
			eng.Close()
		}
	}
}

// TestChaosVerifyNoFalsePositives reruns the concurrent mixed chaos
// workload — panics and spurious errors, NO data corruption — with
// checksum verification armed on every request: nothing may be flagged as
// corrupted, and the healing behavior must be unchanged.
func TestChaosVerifyNoFalsePositives(t *testing.T) {
	inj := fault.New(23,
		fault.Rule{Kind: fault.Panic, Match: "S ", Rate: 0.05},
		fault.Rule{Kind: fault.Error, Match: "U ", Rate: 0.05},
	)
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 4, MaxRetries: 4, RetryBackoff: time.Millisecond,
		VerifyChecksums: true,
		Interceptor:     inj.Intercept,
	})
	defer eng.Close()
	const requests = 12
	errs := make(chan error, requests)
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					errs <- errors.New("request goroutine panicked")
				}
				wg.Done()
			}()
			opt := Options{BlockSize: 8}
			var err error
			if r%2 == 0 {
				_, err = eng.LUCtx(context.Background(), Random(48, 48, int64(r)), opt)
			} else {
				_, err = eng.QRCtx(context.Background(), Random(48, 32, int64(r)), opt)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, fault.ErrInjected) {
			t.Errorf("request failed untyped under verify: %v", err)
		}
	}
	st := eng.Stats()
	if st.CorruptionsDetected != 0 || st.PanelsRecomputed != 0 || st.VerifyFailRetries != 0 {
		t.Fatalf("verify flagged false positives on clean data: %+v", st)
	}
	chaosVerify(t, eng)
}

// TestChaosCacheIntegrity corrupts a resident result-cache entry in place
// (memory rot in exactly the bytes a hit would serve) and checks the next
// hit detects the mismatch, evicts the entry, refactors, and counts it.
func TestChaosCacheIntegrity(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, CacheEntries: 8})
	defer eng.Close()
	a := Random(24, 24, 61)
	opt := Options{BlockSize: 8}

	f1, hit, err := eng.LUCachedCtx(context.Background(), a, opt)
	if err != nil || hit {
		t.Fatalf("first cached request: hit=%v err=%v", hit, err)
	}
	if _, hit, err = eng.LUCachedCtx(context.Background(), a, opt); err != nil || !hit {
		t.Fatalf("second cached request: hit=%v err=%v", hit, err)
	}

	// Rot one bit of the resident factors through the shared handle.
	f1.Factors().Data[5] += 1e-3

	f3, hit, err := eng.LUCachedCtx(context.Background(), a, opt)
	if err != nil {
		t.Fatalf("request after cache rot: %v", err)
	}
	if hit {
		t.Fatal("corrupted cache entry served as a hit")
	}
	st := eng.Stats()
	if st.CacheIntegrityEvictions != 1 {
		t.Fatalf("Stats.CacheIntegrityEvictions = %d, want 1", st.CacheIntegrityEvictions)
	}
	luSolveCheck(t, a, f3)

	// The refilled entry serves hits again.
	if _, hit, err = eng.LUCachedCtx(context.Background(), a, opt); err != nil || !hit {
		t.Fatalf("request after refill: hit=%v err=%v", hit, err)
	}
	chaosVerify(t, eng)
}
