package factor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// chaosVerify factors a fresh copy of a known system on eng and checks the
// solve, proving the engine is healthy after whatever the test injected.
func chaosVerify(t *testing.T, eng *Engine) {
	t.Helper()
	const n = 24
	orig := Random(n, n, 99)
	xWant := Random(n, 1, 100)
	rhs := NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * xWant.At(j, 0)
		}
		rhs.Set(i, 0, s)
	}
	lu, err := eng.LU(orig.Clone(), Options{BlockSize: 6})
	if err != nil {
		t.Fatalf("engine unusable after chaos: %v", err)
	}
	lu.Solve(rhs)
	for i := 0; i < n; i++ {
		if d := rhs.At(i, 0) - xWant.At(i, 0); d > 1e-8 || d < -1e-8 {
			t.Fatalf("solve after chaos off by %g at row %d", d, i)
		}
	}
}

// TestChaosPanicRetrySucceeds is the acceptance scenario: two injected
// task panics, an engine with retries — the request must succeed via
// retry, the pool must survive, and the engine must serve the next
// request cleanly.
func TestChaosPanicRetrySucceeds(t *testing.T) {
	inj := fault.New(17, fault.Rule{Kind: fault.Panic, Rate: 1, Count: 2})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 4, MaxRetries: 3, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	a := Random(40, 40, 1)
	if _, err := eng.LUCtx(context.Background(), a, Options{BlockSize: 8}); err != nil {
		t.Fatalf("LU with retries: %v", err)
	}
	if got := inj.Injected(fault.Panic); got != 2 {
		t.Fatalf("injected %d panics, want 2", got)
	}
	if st := eng.Stats(); st.Retries != 2 {
		t.Fatalf("Stats.Retries = %d, want 2", st.Retries)
	}
	chaosVerify(t, eng)
}

// TestChaosPanicNoRetriesTyped checks the other half of the contract:
// without retries the injected panic surfaces as a typed error —
// errors.Is finds the injected sentinel through the panic-to-error
// recovery — and the engine stays usable.
func TestChaosPanicNoRetriesTyped(t *testing.T) {
	inj := fault.New(17, fault.Rule{Kind: fault.Panic, Rate: 1, Count: 1})
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, Interceptor: inj.Intercept})
	defer eng.Close()
	_, err := eng.LU(Random(30, 30, 2), Options{BlockSize: 6})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want wrapped fault.ErrInjected", err)
	}
	chaosVerify(t, eng)
}

// TestChaosSpuriousErrorRetried injects a one-shot spurious task error and
// checks it is classified transient and healed by a single retry.
func TestChaosSpuriousErrorRetried(t *testing.T) {
	inj := fault.New(5, fault.Rule{Kind: fault.Error, Match: "U k=", Rate: 1, Count: 1})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxRetries: 1, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	if _, err := eng.LU(Random(40, 40, 3), Options{BlockSize: 8}); err != nil {
		t.Fatalf("LU: %v", err)
	}
	if st := eng.Stats(); st.Retries != 1 {
		t.Fatalf("Stats.Retries = %d, want 1", st.Retries)
	}
	chaosVerify(t, eng)
}

// TestChaosStallWatchdog wedges the engine's only worker with an injected
// delay much longer than the stall timeout and checks the watchdog
// converts the silent stall into a typed ErrStalled failure, counts it,
// and leaves the engine serving.
func TestChaosStallWatchdog(t *testing.T) {
	inj := fault.New(9, fault.Rule{Kind: fault.Delay, Rate: 1, Count: 1, Delay: 200 * time.Millisecond})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 1, StallTimeout: 25 * time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	_, err := eng.LUCtx(context.Background(), Random(30, 30, 4), Options{BlockSize: 6})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want wrapped ErrStalled", err)
	}
	if st := eng.Stats(); st.Stalled != 1 {
		t.Fatalf("Stats.Stalled = %d, want 1", st.Stalled)
	}
	chaosVerify(t, eng)
}

// TestChaosStallRetried is the self-healing composition: the stall is
// transient (the delay rule is one-shot), so a retrying engine recovers
// from it without caller involvement.
func TestChaosStallRetried(t *testing.T) {
	inj := fault.New(9, fault.Rule{Kind: fault.Delay, Rate: 1, Count: 1, Delay: 200 * time.Millisecond})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 1, StallTimeout: 25 * time.Millisecond,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	if _, err := eng.LUCtx(context.Background(), Random(30, 30, 4), Options{BlockSize: 6}); err != nil {
		t.Fatalf("LU with stall retry: %v", err)
	}
	st := eng.Stats()
	if st.Stalled < 1 || st.Retries < 1 {
		t.Fatalf("Stats = %+v, want at least one stall and one retry", st)
	}
	chaosVerify(t, eng)
}

// TestChaosCancelOnceNotRetried models an external cancellation landing
// mid-factorization: the caller's context is cancelled by the injector,
// and the engine must NOT retry — the caller asked to stop.
func TestChaosCancelOnceNotRetried(t *testing.T) {
	// The per-task delay keeps yield points in the schedule so the pool's
	// cancellation watcher gets the (possibly single) CPU even when the
	// numeric tasks alone would drain the graph without ever blocking.
	inj := fault.New(3,
		fault.Rule{Kind: fault.CancelOnce, Match: "S ", Rate: 1},
		fault.Rule{Kind: fault.Delay, Match: "S ", Rate: 1, Delay: 500 * time.Microsecond},
	)
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxRetries: 3, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj.OnCancel(cancel)
	_, err := eng.LUCtx(ctx, Random(96, 96, 5), Options{BlockSize: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want wrapped ErrCancelled", err)
	}
	if st := eng.Stats(); st.Retries != 0 {
		t.Fatalf("Stats.Retries = %d, caller cancellation must not be retried", st.Retries)
	}
	chaosVerify(t, eng)
}

// TestChaosOverloadSheds checks admission control: with one slot occupied
// by a request blocked inside the pool, the next request is shed
// immediately with ErrOverloaded, and the slot frees once the first
// completes.
func TestChaosOverloadSheds(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxInFlight: 1,
		Interceptor: func(info TaskInfo) error {
			// Block the first request's first task until the gate opens.
			<-gate
			return nil
		},
	})
	defer eng.Close()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- errors.New("first request panicked")
			}
		}()
		_, err := eng.LU(Random(20, 20, 6), Options{BlockSize: 5})
		done <- err
	}()
	// Wait for the first request to occupy the slot.
	for i := 0; eng.Stats().InFlight == 0; i++ {
		if i > 2000 {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := eng.LU(Random(20, 20, 7), Options{BlockSize: 5})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request err = %v, want ErrOverloaded", err)
	}
	if st := eng.Stats(); st.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Shed)
	}
	once.Do(func() { close(gate) })
	if err := <-done; err != nil {
		t.Fatalf("first request: %v", err)
	}
	chaosVerify(t, eng)
}

// TestChaosConcurrentMixed drives concurrent LU and QR requests through an
// engine with low-rate panic and error injection under the race detector:
// every request must either succeed (via retry) or fail with a typed,
// recognisable error; the engine must survive all of it.
func TestChaosConcurrentMixed(t *testing.T) {
	inj := fault.New(23,
		fault.Rule{Kind: fault.Panic, Match: "S ", Rate: 0.05},
		fault.Rule{Kind: fault.Error, Match: "U ", Rate: 0.05},
	)
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 4, MaxRetries: 4, RetryBackoff: time.Millisecond,
		Interceptor: inj.Intercept,
	})
	defer eng.Close()
	const requests = 12
	errs := make(chan error, requests)
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					errs <- errors.New("request goroutine panicked")
				}
				wg.Done()
			}()
			opt := Options{BlockSize: 8}
			var err error
			if r%2 == 0 {
				_, err = eng.LUCtx(context.Background(), Random(48, 48, int64(r)), opt)
			} else {
				_, err = eng.QRCtx(context.Background(), Random(48, 32, int64(r)), opt)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("request failed untyped: %v", err)
		}
	}
	chaosVerify(t, eng)
}
