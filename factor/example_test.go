package factor_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/factor"
)

// ExampleLU factors a small system with CALU and solves it.
func ExampleLU() {
	// A 3x3 system with known solution x = (1, 2, 3).
	a := factor.FromRows([][]float64{
		{4, 1, 0},
		{1, 5, 2},
		{0, 2, 6},
	})
	rhs := factor.FromRows([][]float64{{6}, {17}, {22}})

	lu, err := factor.LU(a, factor.Options{})
	if err != nil {
		panic(err)
	}
	lu.Solve(rhs)
	fmt.Printf("x = (%.0f, %.0f, %.0f)\n", rhs.At(0, 0), rhs.At(1, 0), rhs.At(2, 0))
	// Output: x = (1, 2, 3)
}

// ExampleQR solves a tiny least-squares problem with CAQR.
func ExampleQR() {
	// Fit y = c0 + c1*t through (0,1), (1,3), (2,5), (3,7): exactly
	// y = 1 + 2t.
	a := factor.FromRows([][]float64{
		{1, 0},
		{1, 1},
		{1, 2},
		{1, 3},
	})
	obs := factor.FromRows([][]float64{{1}, {3}, {5}, {7}})

	qr, err := factor.QR(a, factor.Options{})
	if err != nil {
		panic(err)
	}
	x := qr.LeastSquares(obs)
	fmt.Printf("y = %.0f + %.0f t\n", x.At(0, 0), x.At(1, 0))
	// Output: y = 1 + 2 t
}

// ExampleEngine_LUCtx shows request cancellation on a shared engine: a
// caller that has given up (closed connection, expired deadline) gets a
// wrapped context error and never a partial factorization, while the
// engine keeps serving other requests.
func ExampleEngine_LUCtx() {
	eng := factor.NewEngine(2)
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client has already gone away

	_, err := eng.LUCtx(ctx, factor.Random(500, 100, 7), factor.Options{})
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))

	// The engine is unaffected: the next request factors normally.
	lu, err := eng.LU(factor.Random(500, 100, 8), factor.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("next request factored:", lu.Factors().Rows, "x", lu.Factors().Cols)
	// Output:
	// cancelled: true
	// next request factored: 500 x 100
}

// ExampleEngine_CloseWithTimeout bounds service shutdown: stop waiting for
// stragglers after the grace period and cancel whatever is still queued.
func ExampleEngine_CloseWithTimeout() {
	eng := factor.NewEngine(2)
	if _, err := eng.LU(factor.Random(200, 80, 9), factor.Options{}); err != nil {
		panic(err)
	}
	// Nothing in flight, so the close drains cleanly within the budget.
	err := eng.CloseWithTimeout(5 * time.Second)
	fmt.Println("clean shutdown:", err == nil)
	// Output: clean shutdown: true
}

// ExampleOptions shows the paper's tuning knobs.
func ExampleOptions() {
	a := factor.Random(1000, 50, 7) // tall and skinny
	opt := factor.Options{
		BlockSize:    50,            // panel width b
		PanelThreads: 4,             // Tr block rows in the tournament
		Tree:         factor.Binary, // reduction tree shape
		Workers:      4,             // scheduler goroutines
	}
	lu, err := factor.LU(a, opt)
	if err != nil {
		panic(err)
	}
	fmt.Println("factored:", lu.Factors().Rows, "x", lu.Factors().Cols)
	// Output: factored: 1000 x 50
}
