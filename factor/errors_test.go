package factor

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/sched"
)

// TestMapErr pins the engine's error vocabulary: internal sentinels are
// rewritten into public ones, and errors that are already public — the
// self-healing sentinels included — pass through with their chains intact.
func TestMapErr(t *testing.T) {
	cases := []struct {
		name string
		in   error
		want error // sentinel the mapped error must satisfy errors.Is against
	}{
		{"pool closed", sched.ErrPoolClosed, ErrEngineClosed},
		{"wrapped pool closed", fmt.Errorf("submit: %w", sched.ErrPoolClosed), ErrEngineClosed},
		{"overloaded", fmt.Errorf("%w: 4 in flight", ErrOverloaded), ErrOverloaded},
		{"stalled", fmt.Errorf("%w: no progress", ErrStalled), ErrStalled},
		{"non-finite", fmt.Errorf("core: %w: A(0,0)", ErrNonFinite), ErrNonFinite},
		{"wrapped cancellation", fmt.Errorf("sched: %w: %w", sched.ErrCancelled, context.Canceled), ErrCancelled},
		{"singular", fmt.Errorf("panel 2: %w", ErrSingular), ErrSingular},
		{"shape", fmt.Errorf("%w: nil", ErrShape), ErrShape},
	}
	for _, tc := range cases {
		got := mapErr(tc.in)
		if !errors.Is(got, tc.want) {
			t.Errorf("%s: mapErr(%v) = %v, want errors.Is(_, %v)", tc.name, tc.in, got, tc.want)
		}
	}
	if got := mapErr(nil); got != nil {
		t.Errorf("mapErr(nil) = %v", got)
	}
}

// TestRetryable pins the retry classifier: input and shutdown errors are
// permanent, caller cancellations are final, and everything transient —
// stalls, injected faults, task panics — is retried.
func TestRetryable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"shape", fmt.Errorf("%w: 0x3", ErrShape), false},
		{"singular", fmt.Errorf("panel 0: %w", ErrSingular), false},
		{"non-finite", fmt.Errorf("%w: A(1,2)", ErrNonFinite), false},
		{"engine closed", ErrEngineClosed, false},
		{"pool closed", fmt.Errorf("x: %w", sched.ErrPoolClosed), false},
		{"caller cancel", fmt.Errorf("%w: %w", sched.ErrCancelled, context.Canceled), false},
		{"deadline", fmt.Errorf("%w: %w", sched.ErrCancelled, context.DeadlineExceeded), false},
		{"stalled", fmt.Errorf("%w: no task completed", ErrStalled), true},
		{"task panic", errors.New("sched: task 3 (S k=0) panicked: boom"), true},
		{"spurious", fmt.Errorf("sched: task 1 failed: %w", errors.New("injected")), true},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("%s: retryable(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}
