package factor

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestEngineStatsAndRegistryShareStorage checks the rebuilt Stats(): the
// struct fields and the Prometheus exposition read the same metrics, under
// a custom namespace.
func TestEngineStatsAndRegistryShareStorage(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{
		Workers:          2,
		CacheEntries:     4,
		MetricsNamespace: "svc_engine",
	})
	defer eng.Close()

	a := Random(64, 32, 7)
	opt := Options{BlockSize: 8, PanelThreads: 2}
	if _, _, err := eng.LUCachedCtx(context.Background(), a, opt); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := eng.LUCachedCtx(context.Background(), a, opt); err != nil || !hit {
		t.Fatalf("second identical request: hit=%v err=%v", hit, err)
	}

	st := eng.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("Stats cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.PoolTasks == 0 {
		t.Fatal("Stats.PoolTasks = 0 after a factorization")
	}

	var b strings.Builder
	if err := eng.Registry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("engine exposition invalid: %v\n%s", err, b.String())
	}
	vals := map[string]float64{}
	var sawLatency bool
	for _, f := range fams {
		if !strings.HasPrefix(f.Name, "svc_engine_") {
			t.Fatalf("metric %q missing namespace prefix", f.Name)
		}
		for _, s := range f.Samples {
			if s.Name == "svc_engine_request_seconds_count" && s.Label("op") == "lu" {
				sawLatency = true
				if s.Value < 1 {
					t.Fatalf("lu request_seconds count = %g, want >= 1", s.Value)
				}
			}
			if len(s.LabelNames) == 0 {
				vals[s.Name] = s.Value
			}
		}
	}
	if !sawLatency {
		t.Fatal("no svc_engine_request_seconds series for op=lu")
	}
	if got := vals["svc_engine_cache_hits_total"]; got != float64(st.CacheHits) {
		t.Fatalf("exposition cache hits %g != Stats %d", got, st.CacheHits)
	}
	if got := vals["svc_engine_cache_misses_total"]; got != float64(st.CacheMisses) {
		t.Fatalf("exposition cache misses %g != Stats %d", got, st.CacheMisses)
	}
	if got := vals["svc_engine_pool_tasks_total"]; got < 1 {
		t.Fatalf("exposition pool tasks %g, want >= 1", got)
	}
	if got := vals["svc_engine_in_flight"]; got != 0 {
		t.Fatalf("exposition in_flight %g after drain, want 0", got)
	}
}

// TestEnginePoolMetrics checks the pool instrumentation surfaces through
// the engine.
func TestEnginePoolMetrics(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	a := Random(64, 32, 3)
	if _, err := eng.LU(a, Options{BlockSize: 8, PanelThreads: 2}); err != nil {
		t.Fatal(err)
	}
	pm := eng.PoolMetrics()
	if pm.Workers != 2 || pm.Completed == 0 || pm.Submissions == 0 {
		t.Fatalf("PoolMetrics = %+v", pm)
	}
}

// TestCriticalPathSummary checks the public critical-path API on a traced
// engine run.
func TestCriticalPathSummary(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	a := Random(120, 60, 9)
	f, err := eng.LU(a, Options{BlockSize: 12, PanelThreads: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := f.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length <= 0 || cp.Fraction <= 0 || cp.Fraction > 1.000001 {
		t.Fatalf("summary = %+v", cp)
	}
	if len(cp.PathTasks) == 0 || len(cp.WorkerIdle) != 4 {
		t.Fatalf("summary shape = %+v", cp)
	}
	var b strings.Builder
	cp.Report(&b)
	if !strings.Contains(b.String(), "critical path:") {
		t.Fatalf("report = %q", b.String())
	}

	// Untraced runs must error, not panic.
	f2, err := eng.LU(Random(64, 32, 3), Options{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.CriticalPath(); err == nil {
		t.Fatal("CriticalPath on untraced run should error")
	}
}
