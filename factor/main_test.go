package factor

import (
	"os"
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine: Engine owns a
// persistent pool, and every test that opens one must Close it.
func TestMain(m *testing.M) {
	os.Exit(testutil.LeakCheckMain(m))
}
