//go:build !race

// The race detector instruments allocations, so the zero-alloc gates only
// run in the regular test job; the CI alloc-gate step invokes them by name
// (-run ZeroAlloc).

package factor

import (
	"context"
	"testing"
)

// TestLUCacheHitZeroAlloc pins the content-addressed cache's hit path to
// zero heap allocations: the [32]byte key is computed through a pooled
// hasher, the LRU lookup is a map probe on an array key, and the fill
// closure is never constructed on a resident hit.
func TestLUCacheHitZeroAlloc(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, CacheEntries: 4})
	defer eng.Close()
	ctx := context.Background()
	opt := Options{BlockSize: 8}
	a := Random(64, 64, 3)

	// Fill the cache, then warm the key-hasher pool with a hit.
	if _, hit, err := eng.LUCachedCtx(ctx, a, opt); err != nil || hit {
		t.Fatalf("fill: hit=%v err=%v", hit, err)
	}
	if _, hit, err := eng.LUCachedCtx(ctx, a, opt); err != nil || !hit {
		t.Fatalf("warmup: hit=%v err=%v", hit, err)
	}

	avg := testing.AllocsPerRun(50, func() {
		if _, hit, err := eng.LUCachedCtx(ctx, a, opt); err != nil || !hit {
			t.Fatalf("measured run: hit=%v err=%v", hit, err)
		}
	})
	if avg != 0 {
		t.Fatalf("cache-hit LU allocates %.1f objects per call, want 0", avg)
	}
}
