package factor_test

import (
	"errors"
	"math"
	"testing"

	"repro/factor"
)

func TestLUSolveRoundTrip(t *testing.T) {
	n := 40
	a := factor.Random(n, n, 1)
	orig := a.Clone()
	xWant := factor.Random(n, 1, 2)
	// rhs = A * x.
	rhs := factor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * xWant.At(j, 0)
		}
		rhs.Set(i, 0, s)
	}
	lu, err := factor.LU(a, factor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lu.Solve(rhs)
	if !rhs.EqualApprox(xWant, 1e-8) {
		t.Fatal("wrong solution")
	}
}

func TestLUDefaultsAndOptions(t *testing.T) {
	a := factor.Random(60, 30, 3)
	lu, err := factor.LU(a, factor.Options{
		BlockSize: 10, PanelThreads: 4, Tree: factor.Flat, Workers: 2, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lu.Factors() != a {
		t.Fatal("Factors should be the in-place matrix")
	}
	if len(lu.Events()) == 0 {
		t.Fatal("trace requested but no events")
	}
}

func TestLUSingular(t *testing.T) {
	a := factor.NewMatrix(10, 10)
	if _, err := factor.LU(a, factor.Options{}); !errors.Is(err, factor.ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLUPermute(t *testing.T) {
	n := 12
	a := factor.Random(n, n, 4)
	orig := a.Clone()
	lu, err := factor.LU(a, factor.Options{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// P*orig must equal L*U: check via solving instead of reconstructing —
	// permute a labeled vector and verify it is a permutation.
	lab := factor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		lab.Set(i, 0, float64(i))
	}
	lu.Permute(lab)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		seen[int(lab.At(i, 0))] = true
	}
	if len(seen) != n {
		t.Fatalf("Permute is not a permutation: %v", lab)
	}
	_ = orig
}

func TestQRLeastSquares(t *testing.T) {
	m, n := 200, 8
	a := factor.Random(m, n, 5)
	orig := a.Clone()
	xWant := factor.Random(n, 1, 6)
	rhs := factor.NewMatrix(m, 1)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * xWant.At(j, 0)
		}
		rhs.Set(i, 0, s)
	}
	qr := mustQR(t, a, factor.Options{PanelThreads: 4})
	x := qr.LeastSquares(rhs)
	if !x.EqualApprox(xWant, 1e-8) {
		t.Fatal("wrong least-squares solution")
	}
}

func TestQRFactorsOrthonormal(t *testing.T) {
	m, n := 80, 12
	a := factor.Random(m, n, 7)
	orig := a.Clone()
	qr := mustQR(t, a, factor.Options{BlockSize: 4, Workers: 3})
	q := qr.Q()
	r := qr.R()
	// Q^T Q == I.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < m; k++ {
				s += q.At(k, i) * q.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-11 {
				t.Fatalf("Q^T Q (%d,%d) = %v", i, j, s)
			}
		}
	}
	// Q*R == orig.
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += q.At(i, k) * r.At(k, j)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-10 {
				t.Fatalf("QR (%d,%d) = %v want %v", i, j, s, orig.At(i, j))
			}
		}
	}
}

func TestQRApplyRoundTrip(t *testing.T) {
	a := factor.Random(60, 20, 8)
	qr := mustQR(t, a, factor.Options{})
	c := factor.Random(60, 2, 9)
	orig := c.Clone()
	qr.ApplyQT(c)
	qr.ApplyQ(c)
	if !c.EqualApprox(orig, 1e-9) {
		t.Fatal("Q Q^T round trip failed")
	}
}

func TestFromRowsAndColMajor(t *testing.T) {
	m := factor.FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	data := []float64{1, 2, 3, 4}
	v := factor.FromColMajor(2, 2, 2, data)
	if v.At(0, 1) != 3 {
		t.Fatal("FromColMajor wrong")
	}
}

func TestHybridTreePublicAPI(t *testing.T) {
	a := factor.Random(120, 24, 13)
	orig := a.Clone()
	qr := mustQR(t, a, factor.Options{Tree: factor.Hybrid, PanelThreads: 8, BlockSize: 8})
	q, r := qr.Q(), qr.R()
	for i := 0; i < 120; i++ {
		for j := 0; j < 24; j++ {
			s := 0.0
			for k := 0; k < 24; k++ {
				s += q.At(i, k) * r.At(k, j)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-10 {
				t.Fatalf("hybrid QR reconstruction failed at (%d,%d)", i, j)
			}
		}
	}
}

func TestConditionAndRefinementPublicAPI(t *testing.T) {
	n := 50
	orig := factor.Random(n, n, 21)
	// Make it comfortably nonsingular.
	for i := 0; i < n; i++ {
		orig.Set(i, i, orig.At(i, i)+float64(n))
	}
	anorm := orig.NormOne()
	a := orig.Clone()
	lu, err := factor.LU(a, factor.Options{BlockSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	rc := lu.Condition(anorm)
	if rc <= 0 || rc > 1 {
		t.Fatalf("rcond = %v out of (0, 1]", rc)
	}
	// Transpose solve round trip.
	xWant := factor.Random(n, 1, 22)
	rhs := factor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(j, i) * xWant.At(j, 0) // A^T x
		}
		rhs.Set(i, 0, s)
	}
	lu.SolveTranspose(rhs)
	if !rhs.EqualApprox(xWant, 1e-8) {
		t.Fatal("SolveTranspose wrong through public API")
	}
	// Refinement converges.
	rhs2 := factor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += orig.At(i, j) * xWant.At(j, 0)
		}
		rhs2.Set(i, 0, s)
	}
	if corr := lu.SolveRefined(orig, rhs2, 2); corr > 1e-10 {
		t.Fatalf("refinement correction %g", corr)
	}
	if !rhs2.EqualApprox(xWant, 1e-9) {
		t.Fatal("SolveRefined wrong")
	}
}

func TestSolveMixedPublicAPI(t *testing.T) {
	n := 60
	a := factor.Random(n, n, 31)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xWant := factor.Random(n, 1, 32)
	rhs := factor.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xWant.At(j, 0)
		}
		rhs.Set(i, 0, s)
	}
	iters, err := factor.SolveMixed(a, rhs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 || iters > 6 {
		t.Fatalf("iterations = %d", iters)
	}
	if !rhs.EqualApprox(xWant, 1e-11) {
		t.Fatal("mixed solve inaccurate")
	}
}

func TestPermutationVector(t *testing.T) {
	n := 24
	orig := factor.Random(n, n, 41)
	a := orig.Clone()
	lu, err := factor.LU(a, factor.Options{BlockSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := lu.PermutationVector()
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
	// P*orig rows must follow p: verify the first column of P*orig.
	pa := orig.Clone()
	lu.Permute(pa)
	for i := 0; i < n; i++ {
		if pa.At(i, 0) != orig.At(p[i], 0) {
			t.Fatalf("row %d: permutation vector inconsistent", i)
		}
	}
}

// mustQR wraps factor.QR for the happy-path tests; error returns are
// covered by TestQRShapeError and the engine tests.
func mustQR(t *testing.T, a *factor.Matrix, opt factor.Options) *factor.QRFactorization {
	t.Helper()
	qr, err := factor.QR(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	return qr
}
